// Quickstart: secure a small document with rule-based policies, then run
// twig queries as different users.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dolxml/securexml"
)

const doc = `<hospital>
  <ward name="A">
    <patient id="p1"><name>Ann</name><diagnosis>flu</diagnosis><billing><amount>100</amount></billing></patient>
    <patient id="p2"><name>Bob</name><diagnosis>cold</diagnosis><billing><amount>50</amount></billing></patient>
  </ward>
  <ward name="B">
    <patient id="p3"><name>Cid</name><diagnosis>cough</diagnosis><billing><amount>75</amount></billing></patient>
  </ward>
</hospital>`

func main() {
	store, err := securexml.NewBuilder().
		LoadXMLString(doc).
		AddGroup("doctors").
		AddGroup("billing").
		AddUser("dave").
		AddUser("betty").
		AddUser("alice").
		AddMember("doctors", "dave").
		AddMember("billing", "betty").
		// Doctors read everything except billing records.
		Grant("doctors", "read", "/hospital").
		Revoke("doctors", "read", "//billing").
		// Billing staff read the tree but not medical details.
		Grant("billing", "read", "/hospital").
		Revoke("billing", "read", "//diagnosis").
		// Nurse alice reads ward A only.
		Grant("alice", "read", `/hospital/ward[@name='A']`).
		Seal(securexml.StoreOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	show := func(user, xpath string) {
		matches, err := store.Query(user, "read", xpath)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6s %-22s ->", user, xpath)
		for _, m := range matches {
			if m.Value != "" {
				fmt.Printf(" <%s>%s", m.Tag, m.Value)
			} else {
				fmt.Printf(" <%s:%d>", m.Tag, m.Node)
			}
		}
		fmt.Printf("  (%d answers)\n", len(matches))
	}

	fmt.Println("Secure twig queries (Cho et al. semantics):")
	show("dave", "//patient/name")
	show("dave", "//billing/amount")
	show("betty", "//billing/amount")
	show("betty", "//diagnosis")
	show("alice", "//patient/name")

	st, err := store.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nDOL encoding: %d nodes, %d transition nodes, %d codebook entries (%d bytes)\n",
		st.Nodes, st.Transitions, st.CodebookEntries, st.CodebookBytes)
}
