// Updates: demonstrates the paper's §3.4 update operations on a sealed
// store — node and subtree accessibility changes, structural inserts,
// deletes and moves — and verifies Proposition 1 (each update adds at most
// two transition nodes) as it goes.
//
//	go run ./examples/updates
package main

import (
	"fmt"
	"log"

	"dolxml/securexml"
)

const doc = `<library>
  <shelf topic="databases">
    <book><title>Transaction Processing</title></book>
    <book><title>Readings in DB Systems</title></book>
  </shelf>
  <shelf topic="security">
    <book><title>Applied Cryptography</title></book>
  </shelf>
</library>`

func transitions(s *securexml.Store) int {
	st, err := s.Stats()
	if err != nil {
		log.Fatal(err)
	}
	return st.Transitions
}

func main() {
	store, err := securexml.NewBuilder().
		LoadXMLString(doc).
		AddUser("reader").
		Grant("reader", "read", "/library").
		Seal(securexml.StoreOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	count := func(label string) {
		ms, err := store.Query("reader", "read", "//book")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-46s -> reader sees %d books, %d transition nodes\n",
			label, len(ms), transitions(store))
	}
	checkProp1 := func(before int, op string) {
		after := transitions(store)
		if after > before+2 {
			log.Fatalf("Proposition 1 violated by %s: %d -> %d", op, before, after)
		}
	}

	count("initial state")

	// Revoke one shelf's subtree (accessibility update).
	shelves, err := store.QueryUnrestricted("//shelf")
	if err != nil {
		log.Fatal(err)
	}
	before := transitions(store)
	if err := store.SetAccess("reader", "read", shelves[1].Node, false, true); err != nil {
		log.Fatal(err)
	}
	checkProp1(before, "subtree revoke")
	count("after revoking the security shelf")

	// Insert a new book (structural update; inherits the shelf's ACL).
	before = transitions(store)
	if err := store.InsertXML(shelves[0].Node, securexml.InvalidNode,
		"<book><title>The DOL Paper</title></book>"); err != nil {
		log.Fatal(err)
	}
	checkProp1(before, "insert")
	count("after inserting a book into databases")

	// Move a book between shelves: its ACL travels with it, so it stays
	// readable even though the target shelf is revoked... no: moving INTO
	// the revoked shelf keeps the book's own accessible label.
	books, err := store.QueryUnrestricted("//book")
	if err != nil {
		log.Fatal(err)
	}
	shelves, _ = store.QueryUnrestricted("//shelf")
	before = transitions(store)
	if err := store.Move(books[0].Node, shelves[1].Node, securexml.InvalidNode); err != nil {
		log.Fatal(err)
	}
	count("after moving a book to the revoked shelf")

	// Delete a subtree.
	books, _ = store.QueryUnrestricted("//book")
	before = transitions(store)
	if err := store.Delete(books[len(books)-1].Node); err != nil {
		log.Fatal(err)
	}
	checkProp1(before, "delete")
	count("after deleting the last book")

	// Subject updates are codebook-only.
	if err := store.AddUserLike("reader2", "reader"); err != nil {
		log.Fatal(err)
	}
	ms, err := store.Query("reader2", "read", "//book")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-46s -> reader2 sees %d books (cloned rights, no page writes)\n",
		"after AddUserLike(reader2, reader)", len(ms))
}
