// Dissemination: the paper's conclusion (§7) notes that DOL's document-
// order layout makes one-pass algorithms on streaming XML securable and
// suits selective dissemination. This example shows both forms:
//
//  1. Store-side: ExportVisible materializes each subscriber's authorized
//     (pruned-subtree) view directly from the physical store.
//
//  2. Stream-side: dissem.Filter trims a flowing XML document to a
//     subject's view in a single pass with O(depth) memory.
//
//     go run ./examples/dissemination
package main

import (
	"fmt"
	"log"
	"strings"

	"dolxml/internal/acl"
	"dolxml/internal/dissem"
	"dolxml/internal/dol"
	"dolxml/internal/xmltree"
	"dolxml/securexml"
)

const feed = `<newsfeed>
  <public><story>Local team wins</story><story>Weather sunny</story></public>
  <business><story>Quarterly numbers</story><analysis>Deep dive</analysis></business>
  <internal><draft>Unpublished investigation</draft></internal>
</newsfeed>`

func main() {
	// --- Store-side dissemination.
	store, err := securexml.NewBuilder().
		LoadXMLString(feed).
		AddGroup("subscribers").
		AddGroup("premium").
		AddUser("sam").
		AddUser("pat").
		AddMember("subscribers", "sam").
		AddMember("premium", "pat").
		AddMember("subscribers", "pat").
		Grant("subscribers", "read", "/newsfeed").
		Revoke("subscribers", "read", "//business").
		Revoke("subscribers", "read", "//internal").
		Grant("premium", "read", "//business").
		Seal(securexml.StoreOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	for _, user := range []string{"sam", "pat"} {
		var out strings.Builder
		if err := store.ExportVisible(user, "read", &out); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s's authorized view:\n  %s\n\n", user, out.String())
	}

	// --- Stream-side dissemination: build a labeling once, then filter
	// the raw stream per subscriber in one pass.
	doc := xmltree.MustParseString(feed)
	m := acl.NewMatrix(doc.Len(), 2) // subject 0 = basic, 1 = premium
	for n := 0; n < doc.Len(); n++ {
		m.Set(xmltree.NodeID(n), 1, true) // premium sees all
	}
	// Basic sees everything outside business and internal.
	deny := map[string]bool{"business": true, "internal": true, "draft": true, "analysis": true}
	for n := 0; n < doc.Len(); n++ {
		inDenied := false
		for v := xmltree.NodeID(n); v != xmltree.InvalidNode; v = doc.Parent(v) {
			if deny[doc.Tag(v)] {
				inDenied = true
			}
		}
		m.Set(xmltree.NodeID(n), 0, !inDenied)
	}
	lab := dol.FromMatrix(m)
	fmt.Printf("stream labeling: %d transitions, %d codebook entries for %d nodes\n\n",
		lab.NumTransitions(), lab.Codebook().Len(), doc.Len())

	for s, name := range []string{"basic", "premium"} {
		var out strings.Builder
		err := dissem.Filter(strings.NewReader(feed), &out,
			dissem.SubjectAccess(lab, acl.SubjectID(s)))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s stream:\n  %s\n\n", name, strings.Join(strings.Fields(out.String()), " "))
	}
}
