// Securequery: runs the paper's Table 1 benchmark queries (Q1–Q6) over a
// generated XMark-like document, comparing unrestricted evaluation with
// secure evaluation for a user whose rights come from synthetic rules, and
// showing both secure semantics on the join queries.
//
//	go run ./examples/securequery
package main

import (
	"fmt"
	"log"
	"strings"

	"dolxml/internal/xmark"
	"dolxml/securexml"
)

var queries = []struct{ name, expr string }{
	{"Q1", "/site/regions/africa/item[location][name][quantity]"},
	{"Q2", "/site/categories/category[name]/description/text/bold"},
	{"Q3", "/site/categories/category/description/text/bold"},
	{"Q4", "//parlist//parlist"},
	{"Q5", "//listitem//keyword"},
	{"Q6", "//item//emph"},
}

func main() {
	// Generate an XMark-like instance and serialize it through the public
	// loader.
	doc := xmark.Generate(xmark.Scaled(7, 30000))
	var xml strings.Builder
	if err := doc.WriteXML(&xml); err != nil {
		log.Fatal(err)
	}

	store, err := securexml.NewBuilder().
		LoadXMLString(xml.String()).
		AddUser("analyst").
		// The analyst may read the whole site except the africa region
		// and all auction annotations.
		Grant("analyst", "read", "/site").
		Revoke("analyst", "read", "/site/regions/africa").
		Revoke("analyst", "read", "//annotation").
		Seal(securexml.StoreOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	fmt.Printf("%-4s %-55s %8s %8s %8s\n", "", "query", "admin", "secure", "pruned")
	for _, q := range queries {
		admin, err := store.QueryUnrestricted(q.expr)
		if err != nil {
			log.Fatal(err)
		}
		secure, err := store.Query("analyst", "read", q.expr)
		if err != nil {
			log.Fatal(err)
		}
		pruned, err := store.QueryPruned("analyst", "read", q.expr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-4s %-55s %8d %8d %8d\n", q.name, q.expr, len(admin), len(secure), len(pruned))
	}
	fmt.Println("\nadmin  = unrestricted evaluation")
	fmt.Println("secure = ε-NoK, Cho et al. bindings semantics (§4)")
	fmt.Println("pruned = ε-STD, Gabillon-Bruno pruned-subtree semantics (§4.2)")
}
