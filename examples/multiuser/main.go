// Multiuser: demonstrates the paper's headline result — in a multi-user
// organization with correlated access rights, the DOL codebook stays tiny
// and the transition count grows far slower than the subject count.
//
// The example builds a department-structured document, grants each
// department group its subtree, puts many users in each group with small
// personal deviations, and reports the DOL storage statistics as the user
// population grows.
//
//	go run ./examples/multiuser
package main

import (
	"fmt"
	"log"
	"strings"

	"dolxml/securexml"
)

func buildDoc(departments, foldersPerDept int) string {
	var sb strings.Builder
	sb.WriteString("<org>")
	for d := 0; d < departments; d++ {
		fmt.Fprintf(&sb, `<dept name="d%d">`, d)
		for f := 0; f < foldersPerDept; f++ {
			fmt.Fprintf(&sb, "<folder><doc>file-%d-%d</doc><doc>memo</doc></folder>", d, f)
		}
		sb.WriteString("</dept>")
	}
	sb.WriteString("</org>")
	return sb.String()
}

func main() {
	const departments = 6
	doc := buildDoc(departments, 40)

	for _, usersPerDept := range []int{2, 8, 32} {
		b := securexml.NewBuilder().LoadXMLString(doc)
		for d := 0; d < departments; d++ {
			group := fmt.Sprintf("dept%d", d)
			b.AddGroup(group)
			b.Grant(group, "read", fmt.Sprintf(`/org/dept[@name='d%d']`, d))
			for u := 0; u < usersPerDept; u++ {
				user := fmt.Sprintf("u%d-%d", d, u)
				b.AddUser(user)
				b.AddMember(group, user)
				// Personal rights: each user also gets their own grant on
				// the department (correlated!) and every third user a
				// small personal deviation.
				b.Grant(user, "read", fmt.Sprintf(`/org/dept[@name='d%d']`, d))
				if u%3 == 0 {
					b.Revoke(user, "read", fmt.Sprintf(`/org/dept[@name='d%d']/folder/doc`, d))
				}
			}
		}
		store, err := b.Seal(securexml.StoreOptions{})
		if err != nil {
			log.Fatal(err)
		}
		st, err := store.Stats()
		if err != nil {
			log.Fatal(err)
		}
		subjects := len(store.Subjects())
		fmt.Printf("subjects=%4d  nodes=%5d  transitions=%5d  codebookEntries=%4d  codebookBytes=%6d\n",
			subjects, st.Nodes, st.Transitions, st.CodebookEntries, st.CodebookBytes)
		if err := store.Close(); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("\nNote how the codebook and transition counts grow far slower than the")
	fmt.Println("subject count: correlated rights compress (paper Figures 5 and 6).")
}
