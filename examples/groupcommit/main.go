// Groupcommit: demonstrates the durability modes on a file-backed store
// under a burst of accessibility toggles. The same burst — several
// goroutines flipping ACL bits on their own nodes — runs once per mode:
//
//   - sync: every SetAccess seals AND flushes its own WAL batch (three
//     fsyncs per update);
//   - grouped: updates seal, then block until the shared background flush
//     covers their batch — concurrent committers split one flush's fsyncs;
//   - async: SetAccessAsync returns as soon as the update is applied and
//     sealed (already visible to queries); the returned Commit handle
//     reports durability, and AwaitDurable is the collective barrier.
//
// The printed updates/sec per mode shows the group-commit bargain, and the
// async run demonstrates the notification API: the burst fires a few
// hundred toggles, then waits on every handle before trusting the clock.
//
//	go run ./examples/groupcommit
package main

import (
	"fmt"
	"log"
	"os"
	"strings"
	"sync"
	"time"

	"dolxml/securexml"
)

const (
	updaters     = 4
	opsPerWorker = 40
)

func buildStore(dir string, d securexml.Durability) *securexml.Store {
	var doc strings.Builder
	doc.WriteString("<site>")
	for i := 0; i < updaters; i++ {
		fmt.Fprintf(&doc, "<region id=\"%d\"><item><name>item %d</name></item></region>", i, i)
	}
	doc.WriteString("</site>")
	s, err := securexml.NewBuilder().
		LoadXMLString(doc.String()).
		AddGroup("staff").
		AddUser("alice").
		AddMember("staff", "alice").
		Grant("staff", "read", "/site").
		Seal(securexml.StoreOptions{Path: dir + "/pages.db"})
	if err != nil {
		log.Fatal(err)
	}
	// Save attaches the WAL's metadata sink to the directory; from here on
	// every committed update keeps the on-disk sidecar current.
	if err := s.Save(dir); err != nil {
		log.Fatal(err)
	}
	// Reopen in the durability mode under test.
	if err := s.Close(); err != nil {
		log.Fatal(err)
	}
	s, err = securexml.Open(dir, securexml.StoreOptions{Durability: d})
	if err != nil {
		log.Fatal(err)
	}
	return s
}

// burst flips each worker's node opsPerWorker times and returns the elapsed
// time to full durability.
func burst(s *securexml.Store, async bool) time.Duration {
	targets, err := s.QueryUnrestricted("//name")
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < updaters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			node := targets[w%len(targets)].Node
			var handles []*securexml.Commit
			for i := 0; i < opsPerWorker; i++ {
				allowed := i%2 == 1 // revoke, grant, … — ends granted
				if async {
					c, err := s.SetAccessAsync("staff", "read", node, allowed, false)
					if err != nil {
						log.Fatal(err)
					}
					handles = append(handles, c)
					continue
				}
				if err := s.SetAccess("staff", "read", node, allowed, false); err != nil {
					log.Fatal(err)
				}
			}
			// The async commits are already visible to queries; the handles
			// tell us when they are on disk.
			for _, c := range handles {
				if err := c.Wait(); err != nil {
					log.Fatal(err)
				}
			}
		}(w)
	}
	wg.Wait()
	// Collective barrier: a no-op for sync/grouped, and already satisfied
	// here for async (every handle resolved), but this is the call a server
	// would make before acknowledging a snapshot.
	if err := s.AwaitDurable(); err != nil {
		log.Fatal(err)
	}
	return time.Since(start)
}

func main() {
	fmt.Printf("%d updaters x %d ACL toggles each, file-backed store:\n\n", updaters, opsPerWorker)
	for _, m := range []struct {
		name  string
		d     securexml.Durability
		async bool
	}{
		{"sync", securexml.DurabilitySync, false},
		{"grouped", securexml.DurabilityGrouped, false},
		{"async", securexml.DurabilityAsync, true},
	} {
		dir, err := os.MkdirTemp("", "groupcommit-"+m.name)
		if err != nil {
			log.Fatal(err)
		}
		s := buildStore(dir, m.d)
		elapsed := burst(s, m.async)
		snap := s.MetricsSnapshot()
		updates := updaters * opsPerWorker
		fmt.Printf("  %-8s %6.0f updates/s  (%.2f fsyncs/update)\n",
			m.name,
			float64(updates)/elapsed.Seconds(),
			float64(snap.Get("wal_fsyncs"))/float64(updates))
		if err := s.Close(); err != nil {
			log.Fatal(err)
		}
		os.RemoveAll(dir)
	}
	fmt.Println("\nsync flushes per update; grouped and async amortize one flush across the burst")
}
