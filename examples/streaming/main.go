// Streaming: demonstrates the paper's single-pass construction property
// (§2, §7): the DOL labeling of a labeled XML stream is built on the fly,
// in document order, without materializing the accessibility matrix — the
// basis for applying DOL to streaming dissemination.
//
// The stream carries per-element "acl" attributes naming the subjects that
// may read the element (inherited by descendants unless overridden, i.e.
// Most-Specific-Override at the source). The example parses the stream
// once, feeding the DOL stream builder as elements open.
//
//	go run ./examples/streaming
package main

import (
	"encoding/xml"
	"fmt"
	"io"
	"log"
	"strings"

	"dolxml/internal/acl"
	"dolxml/internal/bitset"
	"dolxml/internal/dol"
	"dolxml/internal/xmltree"
)

const stream = `<feed acl="alice,bob,carol">
  <public><headline>markets up</headline><headline>weather fine</headline></public>
  <premium acl="alice,bob">
    <article><body>deep analysis</body></article>
    <article acl="alice"><body>alice-only scoop</body></article>
  </premium>
  <internal acl=""><draft>unpublished</draft></internal>
</feed>`

var subjects = []string{"alice", "bob", "carol"}

func aclBits(attr string) *bitset.Bitset {
	b := bitset.New(len(subjects))
	for _, name := range strings.Split(attr, ",") {
		for i, s := range subjects {
			if strings.TrimSpace(name) == s {
				b.Set(i)
			}
		}
	}
	return b
}

func main() {
	dec := xml.NewDecoder(strings.NewReader(stream))
	cb := dol.NewCodebook(len(subjects))
	sb := dol.NewStreamBuilder(cb)

	// Stack of inherited ACLs; elements without an acl attribute inherit.
	var stack []*bitset.Bitset
	var tags []string
	count := 0
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			cur := bitset.New(len(subjects))
			if len(stack) > 0 {
				cur = stack[len(stack)-1].Clone()
			}
			for _, a := range t.Attr {
				if a.Name.Local == "acl" {
					cur = aclBits(a.Value)
				}
			}
			stack = append(stack, cur)
			tags = append(tags, t.Name.Local)
			sb.Append(cur) // single pass: one Append per element, in document order
			count++
		case xml.EndElement:
			stack = stack[:len(stack)-1]
		}
	}
	lab := sb.Finish()

	fmt.Printf("streamed %d elements in one pass\n", count)
	fmt.Printf("DOL: %d transition nodes, %d codebook entries (%d bytes)\n\n",
		lab.NumTransitions(), lab.Codebook().Len(), lab.Codebook().Bytes())

	fmt.Printf("%-4s %-10s", "node", "tag")
	for _, s := range subjects {
		fmt.Printf(" %-6s", s)
	}
	fmt.Println(" transition")
	for n := 0; n < lab.NumNodes(); n++ {
		fmt.Printf("%-4d %-10s", n, tags[n])
		for i := range subjects {
			if lab.Accessible(xmltree.NodeID(n), acl.SubjectID(i)) {
				fmt.Printf(" %-6s", "yes")
			} else {
				fmt.Printf(" %-6s", "-")
			}
		}
		if lab.IsTransition(xmltree.NodeID(n)) {
			fmt.Println(" *")
		} else {
			fmt.Println()
		}
	}
}
