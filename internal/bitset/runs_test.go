package bitset

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestRunsRoundTrip(t *testing.T) {
	cases := []string{
		"",
		"0",
		"1",
		"1111",
		"0110",
		"101010101",
		"111000111000111",
		"000000000000000000000000000000000000000000000000000000000000000011",
		"110000000000000000000000000000000000000000000000000000000000000011",
	}
	for _, s := range cases {
		b, err := Parse(s)
		if err != nil {
			t.Fatal(err)
		}
		runs := b.Runs()
		back := FromRuns(b.Len(), runs)
		if !b.Equal(back) {
			t.Errorf("FromRuns(Runs(%q)) = %q", s, back.String())
		}
		enc := AppendRuns(nil, runs)
		if len(enc) != RunsSize(runs) {
			t.Errorf("RunsSize(%q) = %d, encoded %d bytes", s, RunsSize(runs), len(enc))
		}
		dec, rest, err := DecodeRuns(enc, uint32(b.Len()))
		if err != nil {
			t.Fatalf("DecodeRuns(%q): %v", s, err)
		}
		if len(rest) != 0 {
			t.Errorf("DecodeRuns(%q) left %d bytes", s, len(rest))
		}
		if !reflect.DeepEqual(dec, runs) && !(len(dec) == 0 && len(runs) == 0) {
			t.Errorf("DecodeRuns(%q) = %v, want %v", s, dec, runs)
		}
	}
}

func TestRunsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(400)
		b := New(n)
		for i := 0; i < n; i++ {
			if rng.Intn(3) == 0 {
				b.Set(i)
			}
		}
		runs := b.Runs()
		// Runs are maximal: separated by at least one clear bit.
		for i, r := range runs {
			if r.Len == 0 {
				t.Fatalf("zero-length run %v", r)
			}
			if i > 0 && runs[i-1].End() >= r.Start {
				t.Fatalf("runs not separated: %v then %v", runs[i-1], r)
			}
		}
		if got := FromRuns(n, runs); !got.EqualBits(b) {
			t.Fatalf("trial %d: FromRuns mismatch", trial)
		}
		enc := AppendRuns(nil, runs)
		dec, _, err := DecodeRuns(enc, uint32(n))
		if err != nil {
			t.Fatal(err)
		}
		if !FromRuns(n, dec).EqualBits(b) {
			t.Fatalf("trial %d: decode mismatch", trial)
		}
	}
}

func TestSetRange(t *testing.T) {
	for _, c := range []struct{ lo, hi, n int }{
		{0, 0, 10}, {0, 1, 10}, {3, 7, 10}, {0, 64, 64}, {63, 65, 100},
		{10, 200, 100}, {64, 128, 128}, {1, 127, 128},
	} {
		b := New(c.n)
		b.SetRange(c.lo, c.hi)
		want := New(c.n)
		for i := c.lo; i < c.hi; i++ {
			want.Set(i)
		}
		if !b.EqualBits(want) {
			t.Errorf("SetRange(%d,%d) over %d bits = %s", c.lo, c.hi, c.n, b.String())
		}
	}
}

func TestAddRunBit(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(300)
		b := New(n)
		for i := 0; i < n; i++ {
			if rng.Intn(4) == 0 {
				b.Set(i)
			}
		}
		runs := b.Runs()
		s := uint32(rng.Intn(n))
		got := AddRunBit(runs, s)
		if b.Test(int(s)) {
			if &got[0] != &runs[0] || len(got) != len(runs) {
				// Same-slice identity only matters when non-empty; a set bit
				// always implies a non-empty run list.
				t.Fatalf("AddRunBit of set bit %d did not return the input", s)
			}
		}
		want := b.Clone()
		want.Set(int(s))
		if !FromRuns(n, got).EqualBits(want) {
			t.Fatalf("AddRunBit(%v, %d) = %v", runs, s, got)
		}
		// Result stays canonical.
		for i, r := range got {
			if r.Len == 0 || (i > 0 && got[i-1].End() >= r.Start) {
				t.Fatalf("AddRunBit produced non-canonical %v", got)
			}
		}
		// TestRun agrees with the dense bitset on every position.
		for i := 0; i < n; i++ {
			if TestRun(runs, uint32(i)) != b.Test(i) {
				t.Fatalf("TestRun(%d) = %v, dense says %v", i, !b.Test(i), b.Test(i))
			}
		}
	}
}

func TestDecodeRunsRejectsMalformed(t *testing.T) {
	// Runs beyond maxBit.
	enc := AppendRuns(nil, []Run{{Start: 10, Len: 5}})
	if _, _, err := DecodeRuns(enc, 12); err == nil {
		t.Error("runs beyond maxBit accepted")
	}
	// Adjacent (non-maximal) runs.
	bad := AppendRuns(nil, []Run{{Start: 0, Len: 2}})
	bad = bad[:0]
	bad = append(bad, 2)    // count
	bad = append(bad, 0, 1) // run [0,2)
	bad = append(bad, 0, 0) // gap 0: adjacent run [2,3)
	if _, _, err := DecodeRuns(bad, 100); err == nil {
		t.Error("adjacent runs accepted")
	}
	// Truncated.
	good := AppendRuns(nil, []Run{{Start: 3, Len: 4}})
	if _, _, err := DecodeRuns(good[:1], 100); err == nil {
		t.Error("truncated encoding accepted")
	}
}
