package bitset

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"sort"
)

// Run is a maximal interval of consecutive set bits: bits
// [Start, Start+Len) are set. Subject populations are heavily
// group-correlated, so access control lists over large subject spaces
// decompose into a handful of runs; the sparse codebook rows introduced for
// million-subject stores store runs instead of dense words.
type Run struct {
	Start uint32
	Len   uint32
}

// End returns the exclusive end of the run.
func (r Run) End() uint32 { return r.Start + r.Len }

// Runs returns the maximal runs of set bits in increasing order. An empty
// bitset returns nil.
func (b *Bitset) Runs() []Run {
	var runs []Run
	i := b.NextSet(0)
	for i >= 0 {
		j := b.nextClear(i + 1)
		runs = append(runs, Run{Start: uint32(i), Len: uint32(j - i)})
		if j >= b.n {
			break
		}
		i = b.NextSet(j + 1)
	}
	return runs
}

// nextClear returns the index of the first clear bit at or after i, or b.n
// when every remaining bit is set.
func (b *Bitset) nextClear(i int) int {
	if i < 0 {
		i = 0
	}
	for i < b.n {
		inv := ^b.words[i/wordBits] >> uint(i%wordBits)
		if inv != 0 {
			j := i + bits.TrailingZeros64(inv)
			if j > b.n {
				j = b.n
			}
			return j
		}
		i = (i/wordBits + 1) * wordBits
	}
	return b.n
}

// FromRuns returns a bitset of logical length at least n with exactly the
// given runs set. Runs beyond n grow the bitset, mirroring Set.
func FromRuns(n int, runs []Run) *Bitset {
	b := New(n)
	for _, r := range runs {
		if r.Len == 0 {
			continue
		}
		b.SetRange(int(r.Start), int(r.Start+r.Len))
	}
	return b
}

// SetRange sets bits [lo, hi), growing the bitset if necessary. It fills
// whole words at a time, so granting a contiguous subject range costs
// O(words touched) rather than O(bits).
func (b *Bitset) SetRange(lo, hi int) {
	if lo < 0 {
		panic("bitset: negative SetRange bound")
	}
	if hi <= lo {
		return
	}
	b.grow(hi)
	lw, hw := lo/wordBits, (hi-1)/wordBits
	loMask := ^uint64(0) << uint(lo%wordBits)
	hiMask := ^uint64(0) >> uint(wordBits-1-(hi-1)%wordBits)
	if lw == hw {
		b.words[lw] |= loMask & hiMask
		return
	}
	b.words[lw] |= loMask
	for w := lw + 1; w < hw; w++ {
		b.words[w] = ^uint64(0)
	}
	b.words[hw] |= hiMask
}

// TestRun reports whether bit i is set in the sorted run list. It is the
// sparse equivalent of Test, used by run-encoded codebook rows.
func TestRun(runs []Run, i uint32) bool {
	k := sort.Search(len(runs), func(k int) bool { return runs[k].End() > i })
	return k < len(runs) && runs[k].Start <= i
}

// AddRunBit returns a sorted run list equal to runs plus bit s, coalescing
// with adjacent runs. When s is already set it returns runs unchanged (the
// same slice); otherwise it returns a fresh slice and leaves runs intact.
func AddRunBit(runs []Run, s uint32) []Run {
	k := sort.Search(len(runs), func(k int) bool { return runs[k].End() >= s })
	if k < len(runs) && runs[k].Start <= s && s < runs[k].End() {
		return runs // already set
	}
	// Every run before k ends strictly below s.
	switch {
	case k < len(runs) && runs[k].End() == s:
		// Extends run k upward; may bridge to run k+1.
		if k+1 < len(runs) && runs[k+1].Start == s+1 {
			out := make([]Run, 0, len(runs)-1)
			out = append(out, runs[:k]...)
			out = append(out, Run{Start: runs[k].Start, Len: runs[k].Len + 1 + runs[k+1].Len})
			out = append(out, runs[k+2:]...)
			return out
		}
		out := make([]Run, len(runs))
		copy(out, runs)
		out[k].Len++
		return out
	case k < len(runs) && runs[k].Start == s+1:
		// Extends run k downward.
		out := make([]Run, len(runs))
		copy(out, runs)
		out[k].Start = s
		out[k].Len++
		return out
	default:
		out := make([]Run, 0, len(runs)+1)
		out = append(out, runs[:k]...)
		out = append(out, Run{Start: s, Len: 1})
		out = append(out, runs[k:]...)
		return out
	}
}

// AppendRuns appends a compact encoding of the sorted run list to dst and
// returns the result: a uvarint run count, then per run the uvarint gap
// from the previous run's end (the start itself for the first run) and the
// uvarint length minus one. Group-correlated ACLs encode in a few bytes per
// run regardless of the subject population.
func AppendRuns(dst []byte, runs []Run) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(runs)))
	prev := uint32(0)
	for _, r := range runs {
		dst = binary.AppendUvarint(dst, uint64(r.Start-prev))
		dst = binary.AppendUvarint(dst, uint64(r.Len-1))
		prev = r.End()
	}
	return dst
}

// RunsSize returns len(AppendRuns(nil, runs)) without building the slice.
func RunsSize(runs []Run) int {
	sz := uvarintLen(uint64(len(runs)))
	prev := uint32(0)
	for _, r := range runs {
		sz += uvarintLen(uint64(r.Start-prev)) + uvarintLen(uint64(r.Len-1))
		prev = r.End()
	}
	return sz
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// DecodeRuns decodes a run list produced by AppendRuns from the front of
// data, returning the runs, the unconsumed remainder, and an error on
// malformed input. maxBit bounds the exclusive end of the last run (pass
// the subject population); it rejects encodings whose runs overflow the
// bitset they are destined for.
func DecodeRuns(data []byte, maxBit uint32) ([]Run, []byte, error) {
	count, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, nil, fmt.Errorf("bitset: corrupt run count")
	}
	data = data[n:]
	var runs []Run
	prev := uint64(0)
	for i := uint64(0); i < count; i++ {
		gap, n := binary.Uvarint(data)
		if n <= 0 {
			return nil, nil, fmt.Errorf("bitset: corrupt run %d gap", i)
		}
		data = data[n:]
		lenM1, n := binary.Uvarint(data)
		if n <= 0 {
			return nil, nil, fmt.Errorf("bitset: corrupt run %d length", i)
		}
		data = data[n:]
		start := prev + gap
		end := start + lenM1 + 1
		if i > 0 && gap == 0 {
			return nil, nil, fmt.Errorf("bitset: run %d not separated from predecessor", i)
		}
		if end > uint64(maxBit) {
			return nil, nil, fmt.Errorf("bitset: run %d ends at %d beyond %d bits", i, end, maxBit)
		}
		runs = append(runs, Run{Start: uint32(start), Len: uint32(lenM1 + 1)})
		prev = end
	}
	return runs, data, nil
}
