// Package bitset provides dynamic bit vectors used throughout the DOL
// implementation to represent per-node access control lists: bit i is set
// when subject i may access the node under the action mode at hand.
//
// The representation is a little-endian slice of 64-bit words. A Bitset of
// length n owns bits [0, n); out-of-range reads return false and
// out-of-range writes grow the vector. The zero value is an empty, usable
// bitset.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Bitset is a growable bit vector. The zero value is empty and ready to use.
type Bitset struct {
	words []uint64
	n     int // logical length in bits
}

// New returns a bitset with logical length n, all bits clear.
func New(n int) *Bitset {
	if n < 0 {
		panic("bitset: negative length")
	}
	return &Bitset{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// FromIndices returns a bitset of length n with exactly the given bits set.
// Indices at or beyond n grow the bitset.
func FromIndices(n int, idx ...int) *Bitset {
	b := New(n)
	for _, i := range idx {
		b.Set(i)
	}
	return b
}

// Len reports the logical length of the bitset in bits.
func (b *Bitset) Len() int { return b.n }

// grow extends the logical length to at least n bits.
func (b *Bitset) grow(n int) {
	if n <= b.n {
		return
	}
	need := (n + wordBits - 1) / wordBits
	for len(b.words) < need {
		b.words = append(b.words, 0)
	}
	b.n = n
}

// Resize sets the logical length to n bits, clearing any bits at or beyond n.
func (b *Bitset) Resize(n int) {
	if n < 0 {
		panic("bitset: negative length")
	}
	if n < b.n {
		need := (n + wordBits - 1) / wordBits
		b.words = b.words[:need]
		if rem := n % wordBits; rem != 0 && need > 0 {
			b.words[need-1] &= (1 << uint(rem)) - 1
		}
		b.n = n
		return
	}
	b.grow(n)
}

// Set sets bit i, growing the bitset if necessary.
func (b *Bitset) Set(i int) {
	if i < 0 {
		panic("bitset: negative index")
	}
	b.grow(i + 1)
	b.words[i/wordBits] |= 1 << uint(i%wordBits)
}

// Clear clears bit i. Clearing beyond the current length grows the bitset.
func (b *Bitset) Clear(i int) {
	if i < 0 {
		panic("bitset: negative index")
	}
	b.grow(i + 1)
	b.words[i/wordBits] &^= 1 << uint(i%wordBits)
}

// SetTo sets bit i to v.
func (b *Bitset) SetTo(i int, v bool) {
	if v {
		b.Set(i)
	} else {
		b.Clear(i)
	}
}

// Test reports whether bit i is set. Out-of-range indices read as false.
func (b *Bitset) Test(i int) bool {
	if i < 0 || i >= b.n {
		return false
	}
	return b.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

// Count returns the number of set bits.
func (b *Bitset) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Any reports whether at least one bit is set.
func (b *Bitset) Any() bool {
	for _, w := range b.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// Equal reports whether b and o have identical logical length and bits.
func (b *Bitset) Equal(o *Bitset) bool {
	if b.n != o.n {
		return false
	}
	return b.EqualBits(o)
}

// EqualBits reports whether b and o have the same set bits, ignoring
// logical length. Two bitsets of different lengths whose set bits coincide
// compare equal under EqualBits but not under Equal.
func (b *Bitset) EqualBits(o *Bitset) bool {
	long, short := b.words, o.words
	if len(long) < len(short) {
		long, short = short, long
	}
	for i, w := range short {
		if w != long[i] {
			return false
		}
	}
	for _, w := range long[len(short):] {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of b.
func (b *Bitset) Clone() *Bitset {
	w := make([]uint64, len(b.words))
	copy(w, b.words)
	return &Bitset{words: w, n: b.n}
}

// CopyFrom overwrites b with the contents of o.
func (b *Bitset) CopyFrom(o *Bitset) {
	b.words = append(b.words[:0], o.words...)
	b.n = o.n
}

// Key returns a compact string usable as a map key identifying the set of
// bits (independent of logical length: trailing zero words are dropped).
// DOL codebooks key their entries by this value.
func (b *Bitset) Key() string {
	w := b.words
	for len(w) > 0 && w[len(w)-1] == 0 {
		w = w[:len(w)-1]
	}
	var sb strings.Builder
	sb.Grow(len(w) * 8)
	for _, word := range w {
		var buf [8]byte
		for i := 0; i < 8; i++ {
			buf[i] = byte(word >> uint(8*i))
		}
		sb.Write(buf[:])
	}
	return sb.String()
}

// Intersects reports whether b and o share at least one set bit. It is the
// allocation-free equivalent of Clone+And+Any, used on the access-decision
// hot path.
func (b *Bitset) Intersects(o *Bitset) bool {
	n := len(b.words)
	if len(o.words) < n {
		n = len(o.words)
	}
	for i := 0; i < n; i++ {
		if b.words[i]&o.words[i] != 0 {
			return true
		}
	}
	return false
}

// And sets b to the bitwise AND of b and o, keeping b's logical length.
func (b *Bitset) And(o *Bitset) {
	for i := range b.words {
		if i < len(o.words) {
			b.words[i] &= o.words[i]
		} else {
			b.words[i] = 0
		}
	}
}

// Or sets b to the bitwise OR of b and o, growing b if o is longer.
func (b *Bitset) Or(o *Bitset) {
	b.grow(o.n)
	for i := range o.words {
		b.words[i] |= o.words[i]
	}
}

// AndNot clears every bit of b that is set in o.
func (b *Bitset) AndNot(o *Bitset) {
	for i := range b.words {
		if i < len(o.words) {
			b.words[i] &^= o.words[i]
		}
	}
}

// NextSet returns the index of the first set bit at or after i, or -1 if
// there is none.
func (b *Bitset) NextSet(i int) int {
	if i < 0 {
		i = 0
	}
	for w := i / wordBits; w < len(b.words); w++ {
		word := b.words[w]
		if w == i/wordBits {
			word &= ^uint64(0) << uint(i%wordBits)
		}
		if word != 0 {
			idx := w*wordBits + bits.TrailingZeros64(word)
			if idx >= b.n {
				return -1
			}
			return idx
		}
	}
	return -1
}

// Indices returns the indices of all set bits in increasing order.
func (b *Bitset) Indices() []int {
	idx := make([]int, 0, b.Count())
	for i := b.NextSet(0); i >= 0; i = b.NextSet(i + 1) {
		idx = append(idx, i)
	}
	return idx
}

// RemoveBit deletes bit position i, shifting all higher bits down by one and
// shrinking the logical length. It is used when a subject is deleted from a
// DOL codebook.
func (b *Bitset) RemoveBit(i int) {
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("bitset: RemoveBit(%d) out of range [0,%d)", i, b.n))
	}
	w, off := i/wordBits, uint(i%wordBits)
	low := b.words[w] & ((1 << off) - 1)
	high := b.words[w] >> (off + 1) << off
	b.words[w] = low | high
	for j := w + 1; j < len(b.words); j++ {
		b.words[j-1] |= (b.words[j] & 1) << (wordBits - 1)
		b.words[j] >>= 1
	}
	b.Resize(b.n - 1)
}

// String renders the bitset as a left-to-right bit string ("10110"),
// bit 0 first; useful in tests and debugging.
func (b *Bitset) String() string {
	var sb strings.Builder
	sb.Grow(b.n)
	for i := 0; i < b.n; i++ {
		if b.Test(i) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// Parse builds a bitset from a String-formatted bit string. It accepts only
// '0' and '1' characters.
func Parse(s string) (*Bitset, error) {
	b := New(len(s))
	for i, c := range s {
		switch c {
		case '1':
			b.Set(i)
		case '0':
		default:
			return nil, fmt.Errorf("bitset: invalid character %q at %d", c, i)
		}
	}
	return b, nil
}

// MarshalBinary encodes the bitset as 4 bytes of little-endian length
// followed by the word data.
func (b *Bitset) MarshalBinary() ([]byte, error) {
	out := make([]byte, 4+len(b.words)*8)
	putU32(out, uint32(b.n))
	for i, w := range b.words {
		putU64(out[4+8*i:], w)
	}
	return out, nil
}

// UnmarshalBinary decodes data produced by MarshalBinary.
func (b *Bitset) UnmarshalBinary(data []byte) error {
	if len(data) < 4 {
		return fmt.Errorf("bitset: truncated header (%d bytes)", len(data))
	}
	n := int(getU32(data))
	words := (n + wordBits - 1) / wordBits
	if len(data) < 4+8*words {
		return fmt.Errorf("bitset: truncated body: need %d bytes, have %d", 4+8*words, len(data))
	}
	b.n = n
	b.words = make([]uint64, words)
	for i := range b.words {
		b.words[i] = getU64(data[4+8*i:])
	}
	return nil
}

func putU32(p []byte, v uint32) {
	p[0], p[1], p[2], p[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

func getU32(p []byte) uint32 {
	return uint32(p[0]) | uint32(p[1])<<8 | uint32(p[2])<<16 | uint32(p[3])<<24
}

func putU64(p []byte, v uint64) {
	for i := 0; i < 8; i++ {
		p[i] = byte(v >> uint(8*i))
	}
}

func getU64(p []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(p[i]) << uint(8*i)
	}
	return v
}
