package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestZeroValue(t *testing.T) {
	var b Bitset
	if b.Len() != 0 {
		t.Fatalf("zero value Len = %d, want 0", b.Len())
	}
	if b.Test(0) || b.Test(100) {
		t.Fatal("zero value should have no bits set")
	}
	b.Set(5)
	if !b.Test(5) {
		t.Fatal("Set(5) not visible")
	}
	if b.Len() != 6 {
		t.Fatalf("Len after Set(5) = %d, want 6", b.Len())
	}
}

func TestSetClearTest(t *testing.T) {
	b := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		b.Set(i)
		if !b.Test(i) {
			t.Errorf("bit %d not set", i)
		}
	}
	if got := b.Count(); got != 8 {
		t.Fatalf("Count = %d, want 8", got)
	}
	b.Clear(64)
	if b.Test(64) {
		t.Error("bit 64 still set after Clear")
	}
	if got := b.Count(); got != 7 {
		t.Fatalf("Count after clear = %d, want 7", got)
	}
}

func TestSetTo(t *testing.T) {
	b := New(10)
	b.SetTo(3, true)
	b.SetTo(4, true)
	b.SetTo(3, false)
	if b.Test(3) || !b.Test(4) {
		t.Fatalf("SetTo sequence wrong: %s", b)
	}
}

func TestOutOfRangeReads(t *testing.T) {
	b := New(8)
	if b.Test(-1) || b.Test(8) || b.Test(1000) {
		t.Fatal("out-of-range Test should be false")
	}
}

func TestGrowViaSet(t *testing.T) {
	b := New(0)
	b.Set(200)
	if b.Len() != 201 {
		t.Fatalf("Len = %d, want 201", b.Len())
	}
	if b.Count() != 1 || !b.Test(200) {
		t.Fatal("bit 200 lost after grow")
	}
}

func TestResizeShrinkClearsBits(t *testing.T) {
	b := New(128)
	b.Set(100)
	b.Set(10)
	b.Resize(50)
	if b.Len() != 50 {
		t.Fatalf("Len = %d, want 50", b.Len())
	}
	if b.Test(100) {
		t.Fatal("bit 100 should be gone")
	}
	b.Resize(128)
	if b.Test(100) {
		t.Fatal("bit 100 must not reappear after re-grow")
	}
	if !b.Test(10) {
		t.Fatal("bit 10 lost")
	}
}

func TestResizeWithinWordClearsHighBits(t *testing.T) {
	b := New(64)
	b.Set(40)
	b.Set(20)
	b.Resize(30)
	b.Resize(64)
	if b.Test(40) {
		t.Fatal("bit 40 survived shrink within word")
	}
	if !b.Test(20) {
		t.Fatal("bit 20 lost")
	}
}

func TestEqualAndEqualBits(t *testing.T) {
	a := FromIndices(10, 1, 3)
	b := FromIndices(10, 1, 3)
	c := FromIndices(200, 1, 3)
	d := FromIndices(10, 1, 4)
	if !a.Equal(b) {
		t.Fatal("identical bitsets not Equal")
	}
	if a.Equal(c) {
		t.Fatal("different lengths should not be Equal")
	}
	if !a.EqualBits(c) {
		t.Fatal("same bits different length should be EqualBits")
	}
	if a.EqualBits(d) {
		t.Fatal("different bits should not be EqualBits")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := FromIndices(10, 2)
	b := a.Clone()
	b.Set(5)
	if a.Test(5) {
		t.Fatal("Clone shares storage")
	}
	if !b.Test(2) {
		t.Fatal("Clone lost bit")
	}
}

func TestCopyFrom(t *testing.T) {
	a := FromIndices(10, 2, 9)
	b := FromIndices(300, 100)
	b.CopyFrom(a)
	if !b.Equal(a) {
		t.Fatalf("CopyFrom mismatch: %s vs %s", b, a)
	}
	if b.Test(100) {
		t.Fatal("stale bit after CopyFrom")
	}
}

func TestKeyIgnoresTrailingZeros(t *testing.T) {
	a := FromIndices(10, 1, 3)
	b := FromIndices(500, 1, 3)
	if a.Key() != b.Key() {
		t.Fatal("Key should be independent of logical length")
	}
	c := FromIndices(10, 1, 4)
	if a.Key() == c.Key() {
		t.Fatal("different bit patterns must have different keys")
	}
}

func TestLogicOps(t *testing.T) {
	a := FromIndices(8, 0, 1, 2)
	b := FromIndices(8, 1, 2, 3)

	and := a.Clone()
	and.And(b)
	if got, want := and.String(), "01100000"; got != want {
		t.Errorf("And = %s, want %s", got, want)
	}

	or := a.Clone()
	or.Or(b)
	if got, want := or.String(), "11110000"; got != want {
		t.Errorf("Or = %s, want %s", got, want)
	}

	an := a.Clone()
	an.AndNot(b)
	if got, want := an.String(), "10000000"; got != want {
		t.Errorf("AndNot = %s, want %s", got, want)
	}
}

func TestAndWithShorter(t *testing.T) {
	a := FromIndices(200, 1, 100, 150)
	b := FromIndices(8, 1)
	a.And(b)
	if a.Count() != 1 || !a.Test(1) {
		t.Fatalf("And with shorter operand wrong: count=%d", a.Count())
	}
}

func TestNextSetAndIndices(t *testing.T) {
	b := FromIndices(200, 3, 64, 130)
	if got := b.NextSet(0); got != 3 {
		t.Errorf("NextSet(0) = %d, want 3", got)
	}
	if got := b.NextSet(4); got != 64 {
		t.Errorf("NextSet(4) = %d, want 64", got)
	}
	if got := b.NextSet(131); got != -1 {
		t.Errorf("NextSet(131) = %d, want -1", got)
	}
	idx := b.Indices()
	want := []int{3, 64, 130}
	if len(idx) != len(want) {
		t.Fatalf("Indices = %v, want %v", idx, want)
	}
	for i := range want {
		if idx[i] != want[i] {
			t.Fatalf("Indices = %v, want %v", idx, want)
		}
	}
}

func TestNextSetRespectsLogicalLength(t *testing.T) {
	b := New(10)
	b.Set(5)
	b.Resize(3)
	if got := b.NextSet(0); got != -1 {
		t.Fatalf("NextSet found bit beyond logical length: %d", got)
	}
}

func TestRemoveBit(t *testing.T) {
	// bits: 1 0 1 1 0 1 -> remove index 2 -> 1 0 1 0 1
	b, err := Parse("101101")
	if err != nil {
		t.Fatal(err)
	}
	b.RemoveBit(2)
	if got, want := b.String(), "10101"; got != want {
		t.Fatalf("RemoveBit = %s, want %s", got, want)
	}
}

func TestRemoveBitAcrossWords(t *testing.T) {
	b := New(130)
	b.Set(0)
	b.Set(64)
	b.Set(129)
	b.RemoveBit(0)
	if b.Len() != 129 {
		t.Fatalf("Len = %d, want 129", b.Len())
	}
	if !b.Test(63) || !b.Test(128) || b.Test(0) {
		t.Fatalf("RemoveBit shift wrong: %v", b.Indices())
	}
}

func TestRemoveBitPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(5).RemoveBit(5)
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse("10x"); err == nil {
		t.Fatal("Parse should reject non-binary characters")
	}
}

func TestStringRoundTrip(t *testing.T) {
	cases := []string{"", "0", "1", "10110", "0000000001"}
	for _, s := range cases {
		b, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if got := b.String(); got != s {
			t.Errorf("round trip %q -> %q", s, got)
		}
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	b := FromIndices(100, 0, 50, 99)
	data, err := b.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var c Bitset
	if err := c.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if !b.Equal(&c) {
		t.Fatalf("round trip mismatch: %s vs %s", b, &c)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	var b Bitset
	if err := b.UnmarshalBinary([]byte{1, 2}); err == nil {
		t.Fatal("want error on truncated header")
	}
	if err := b.UnmarshalBinary([]byte{200, 0, 0, 0, 1}); err == nil {
		t.Fatal("want error on truncated body")
	}
}

// Property: RemoveBit(i) behaves like deleting position i from the bit string.
func TestRemoveBitProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(300)
		b := New(n)
		ref := make([]bool, n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 1 {
				b.Set(i)
				ref[i] = true
			}
		}
		i := rng.Intn(n)
		b.RemoveBit(i)
		ref = append(ref[:i], ref[i+1:]...)
		if b.Len() != len(ref) {
			return false
		}
		for j, v := range ref {
			if b.Test(j) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: marshal/unmarshal is the identity.
func TestMarshalProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(400)
		b := New(n)
		for i := 0; i < n; i++ {
			if rng.Intn(3) == 0 {
				b.Set(i)
			}
		}
		data, err := b.MarshalBinary()
		if err != nil {
			return false
		}
		var c Bitset
		if err := c.UnmarshalBinary(data); err != nil {
			return false
		}
		return b.Equal(&c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Key is injective on bit patterns (modulo trailing zeros) for
// random pairs.
func TestKeyProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := New(128)
		b := New(128)
		for i := 0; i < 128; i++ {
			if rng.Intn(2) == 1 {
				a.Set(i)
			}
			if rng.Intn(2) == 1 {
				b.Set(i)
			}
		}
		return (a.Key() == b.Key()) == a.EqualBits(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSet(b *testing.B) {
	bs := New(4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bs.Set(i % 4096)
	}
}

func BenchmarkKey(b *testing.B) {
	bs := FromIndices(8639, 1, 100, 5000, 8000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = bs.Key()
	}
}
