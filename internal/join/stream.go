package join

import (
	"context"

	"dolxml/internal/bitset"
	"dolxml/internal/dol"
	"dolxml/internal/nok"
	"dolxml/internal/xmltree"
)

// STDJoiner is the incremental form of the Stack-Tree-Desc join used by the
// streaming query pipeline: the ancestor list is fixed up front, and
// descendants arrive one at a time via Probe, in strictly increasing
// document order. Probing every descendant of a sorted list reproduces
// STD(ancs, descs) exactly.
type STDJoiner struct {
	ancs  []Item
	ai    int
	stack []Item
}

// NewSTDJoiner returns an incremental STD join over the sorted ancestor
// candidates (use SortItems).
func NewSTDJoiner(ancs []Item) *STDJoiner {
	return &STDJoiner{ancs: ancs}
}

// Probe advances the join to descendant d and returns the (a, d) pairs for
// every stacked ancestor enclosing it. Descendants must be probed in
// strictly increasing Node order.
func (j *STDJoiner) Probe(d Item) []Pair {
	for j.ai < len(j.ancs) && j.ancs[j.ai].Node <= d.Node {
		a := j.ancs[j.ai]
		j.ai++
		for len(j.stack) > 0 && j.stack[len(j.stack)-1].End < a.Node {
			j.stack = j.stack[:len(j.stack)-1]
		}
		j.stack = append(j.stack, a)
	}
	for len(j.stack) > 0 && j.stack[len(j.stack)-1].End < d.Node {
		j.stack = j.stack[:len(j.stack)-1]
	}
	var out []Pair
	for _, a := range j.stack {
		if a.Node < d.Node && d.Node <= a.End {
			out = append(out, Pair{Anc: a.Node, Desc: d.Node})
		}
	}
	return out
}

// EpsJoiner is the incremental form of the secure ε-STD join (paper §4.2,
// Gabillon–Bruno semantics): the sorted ancestor list is fixed up front and
// descendants arrive one at a time via Probe, in strictly increasing Node
// order. The single document-order page pass of SecureSTD becomes a
// resumable scan: each Probe advances the pass exactly up to its
// descendant, so early-terminated queries never touch the pages beyond
// their last descendant. Pages that the in-memory directory proves uniform
// are still never physically read; only mixed pages (change bit set) incur
// I/O, and each at most once.
type EpsJoiner struct {
	st  *nok.Store
	cb  *dol.Codebook
	eff *bitset.Bitset

	ancs []Item
	ai   int

	ancStack  []Item
	inaccLvls []int // increasing levels of inaccessible ancestors

	numPages int
	pageIdx  int // next (or partially consumed) page of the scan

	// Mixed-page cursor; entries is non-nil while a mixed page is being
	// consumed entry by entry.
	entries  []nok.Entry
	entryIdx int
	level    int
	code     uint32
	node     xmltree.NodeID
}

// NewEpsJoiner returns an incremental ε-STD join for the effective subject
// set over the sorted ancestor candidates.
func NewEpsJoiner(ss *dol.SecureStore, effective *bitset.Bitset, ancs []Item) *EpsJoiner {
	st := ss.Store()
	return &EpsJoiner{
		st:       st,
		cb:       ss.Codebook(),
		eff:      effective,
		ancs:     ancs,
		numPages: st.NumPages(),
	}
}

func (j *EpsJoiner) popInacc(level int) {
	for len(j.inaccLvls) > 0 && j.inaccLvls[len(j.inaccLvls)-1] >= level {
		j.inaccLvls = j.inaccLvls[:len(j.inaccLvls)-1]
	}
}

func (j *EpsJoiner) deepestInacc() int {
	if len(j.inaccLvls) == 0 {
		return -1
	}
	return j.inaccLvls[len(j.inaccLvls)-1]
}

func (j *EpsJoiner) pushAnc(a Item) {
	for len(j.ancStack) > 0 && j.ancStack[len(j.ancStack)-1].End < a.Node {
		j.ancStack = j.ancStack[:len(j.ancStack)-1]
	}
	j.ancStack = append(j.ancStack, a)
}

// advance outcomes: how the scan reached the probe target.
const (
	advMixed   = iota // target's entry was consumed in a mixed page
	advAcc            // target lies in a uniformly accessible page
	advDropped        // target lies in a uniformly inaccessible page
)

// advance runs the document-order pass up to and including node target,
// applying ancestor pushes and inaccessible-level bookkeeping on the way.
func (j *EpsJoiner) advance(ctx context.Context, target xmltree.NodeID) (int, error) {
	for {
		if j.entries != nil {
			// Resume a partially consumed mixed page.
			for j.entryIdx < len(j.entries) && j.node <= target {
				e := j.entries[j.entryIdx]
				if e.HasCode {
					j.code = e.Code
				}
				j.popInacc(j.level)
				if !j.cb.AccessibleAny(j.code, j.eff) {
					j.inaccLvls = append(j.inaccLvls, j.level)
				}
				if j.ai < len(j.ancs) && j.ancs[j.ai].Node == j.node {
					j.pushAnc(j.ancs[j.ai])
					j.ai++
				}
				j.level = j.level + 1 - e.CloseCount
				j.node++
				j.entryIdx++
			}
			if j.node > target {
				return advMixed, nil
			}
			j.entries = nil
			j.pageIdx++
			continue
		}
		if j.pageIdx >= j.numPages {
			// Target beyond the last page (defensive; descendants always
			// lie inside some page).
			return advAcc, nil
		}
		pi := j.st.PageInfoAt(j.pageIdx)
		first := pi.FirstNode
		last := first + xmltree.NodeID(pi.Count) - 1
		if !pi.ChangeBit {
			if j.cb.AccessibleAny(pi.AccessCode, j.eff) {
				// Uniformly accessible: candidates are processed from
				// their own region encodings; the page is not read.
				for j.ai < len(j.ancs) && j.ancs[j.ai].Node <= last && j.ancs[j.ai].Node <= target {
					a := j.ancs[j.ai]
					j.ai++
					j.popInacc(a.Level)
					j.pushAnc(a)
				}
				if target <= last {
					return advAcc, nil
				}
				j.pageIdx++
				continue
			}
			// Uniformly inaccessible: skip candidates (their pairs would
			// be invalid) and, once the scan moves past the page, record
			// its still-open nodes as inaccessible path levels, all
			// derived from the directory.
			for j.ai < len(j.ancs) && j.ancs[j.ai].Node <= last {
				j.ai++
			}
			if target <= last {
				return advDropped, nil
			}
			nextStart := 0
			if j.pageIdx+1 < j.numPages {
				nextStart = int(j.st.PageInfoAt(j.pageIdx + 1).StartDepth)
			}
			j.popInacc(nextStart)
			for l := int(pi.StartDepth); l < nextStart; l++ {
				if len(j.inaccLvls) == 0 || j.inaccLvls[len(j.inaccLvls)-1] < l {
					j.inaccLvls = append(j.inaccLvls, l)
				}
			}
			j.pageIdx++
			continue
		}
		// Mixed page: read and process node by node.
		es, err := j.st.BlockEntriesCtx(ctx, j.pageIdx)
		if err != nil {
			return 0, err
		}
		j.entries = es
		j.entryIdx = 0
		j.level = int(pi.StartDepth)
		j.code = pi.AccessCode
		j.node = first
	}
}

// Probe advances the join to descendant d and returns its valid (a, d)
// pairs: a is a proper ancestor of d and every node on the path from a to
// d, endpoints included, is accessible. Descendants must be probed in
// strictly increasing Node order.
func (j *EpsJoiner) Probe(ctx context.Context, d Item) ([]Pair, error) {
	state, err := j.advance(ctx, d.Node)
	if err != nil {
		return nil, err
	}
	if state == advDropped {
		return nil, nil
	}
	if state == advAcc {
		j.popInacc(d.Level)
	}
	for len(j.ancStack) > 0 && j.ancStack[len(j.ancStack)-1].End < d.Node {
		j.ancStack = j.ancStack[:len(j.ancStack)-1]
	}
	m := j.deepestInacc()
	var out []Pair
	for _, a := range j.ancStack {
		if a.Node < d.Node && d.Node <= a.End && m < a.Level {
			out = append(out, Pair{Anc: a.Node, Desc: d.Node})
		}
	}
	return out, nil
}
