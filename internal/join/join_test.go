package join

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"dolxml/internal/acl"
	"dolxml/internal/bitset"
	"dolxml/internal/dol"
	"dolxml/internal/nok"
	"dolxml/internal/storage"
	"dolxml/internal/xmltree"
)

func randomDoc(rng *rand.Rand, n int) *xmltree.Document {
	b := xmltree.NewBuilder()
	b.Begin("r")
	open := 1
	for i := 1; i < n; i++ {
		for open > 1 && rng.Intn(3) == 0 {
			b.End()
			open--
		}
		b.Begin([]string{"x", "y"}[rng.Intn(2)])
		open++
	}
	for ; open > 0; open-- {
		b.End()
	}
	return b.MustFinish()
}

func itemsFor(doc *xmltree.Document, nodes []xmltree.NodeID) []Item {
	var out []Item
	for _, n := range nodes {
		out = append(out, Item{Node: n, End: doc.End(n), Level: doc.Level(n)})
	}
	SortItems(out)
	return out
}

func TestSTDBasic(t *testing.T) {
	doc := xmltree.MustParseString(`<a><b><c/><b><c/></b></b><c/></a>`)
	// nodes: a0 b1 c2 b3 c4 c5
	ancs := itemsFor(doc, doc.NodesWithTag("b"))
	descs := itemsFor(doc, doc.NodesWithTag("c"))
	pairs := STD(ancs, descs)
	want := map[Pair]bool{
		{1, 2}: true, {1, 4}: true, {3, 4}: true,
	}
	if len(pairs) != len(want) {
		t.Fatalf("pairs = %v", pairs)
	}
	for _, p := range pairs {
		if !want[p] {
			t.Fatalf("unexpected pair %v", p)
		}
	}
}

func TestSTDEmptyInputs(t *testing.T) {
	if got := STD(nil, []Item{{Node: 1}}); got != nil {
		t.Fatal("empty ancestors should produce no pairs")
	}
	if got := STD([]Item{{Node: 1, End: 5}}, nil); got != nil {
		t.Fatal("empty descendants should produce no pairs")
	}
}

func TestSelfOrDescendantSTD(t *testing.T) {
	doc := xmltree.MustParseString(`<a><b><b/></b></a>`)
	bs := itemsFor(doc, doc.NodesWithTag("b"))
	pairs := SelfOrDescendantSTD(bs, bs)
	// (1,1), (1,2), (2,2)
	if len(pairs) != 3 {
		t.Fatalf("pairs = %v", pairs)
	}
}

// Property: STD matches the quadratic oracle.
func TestSTDMatchesOracle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		doc := randomDoc(rng, 2+rng.Intn(150))
		ancs := itemsFor(doc, doc.NodesWithTag("x"))
		descs := itemsFor(doc, doc.NodesWithTag("y"))
		got := STD(ancs, descs)
		want := map[Pair]bool{}
		for _, a := range ancs {
			for _, d := range descs {
				if doc.IsAncestor(a.Node, d.Node) {
					want[Pair{a.Node, d.Node}] = true
				}
			}
		}
		if len(got) != len(want) {
			return false
		}
		for _, p := range got {
			if !want[p] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func buildSecure(t testing.TB, doc *xmltree.Document, m *acl.Matrix, pageSize int) *dol.SecureStore {
	t.Helper()
	pool := storage.NewBufferPool(storage.NewMemPager(pageSize), 512)
	ss, err := dol.BuildSecureStore(pool, doc, m, nok.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return ss
}

// secureOracle computes the valid pairs by brute force: AD relationship
// plus an all-accessible path including endpoints.
func secureOracle(doc *xmltree.Document, m *acl.Matrix, eff *bitset.Bitset, ancs, descs []Item) map[Pair]bool {
	want := map[Pair]bool{}
	for _, a := range ancs {
		for _, d := range descs {
			if !doc.IsAncestor(a.Node, d.Node) {
				continue
			}
			ok := true
			for v := d.Node; v != xmltree.InvalidNode; v = doc.Parent(v) {
				if !m.AccessibleAny(v, eff) {
					ok = false
				}
				if v == a.Node {
					break
				}
			}
			if ok {
				want[Pair{a.Node, d.Node}] = true
			}
		}
	}
	return want
}

func TestSecureSTDBasic(t *testing.T) {
	doc := xmltree.MustParseString(`<a><b><c/><d><c/></d></b></a>`)
	// nodes: a0 b1 c2 d3 c4
	m := acl.NewMatrix(doc.Len(), 1)
	for n := 0; n < doc.Len(); n++ {
		m.Set(xmltree.NodeID(n), 0, true)
	}
	m.Set(3, 0, false) // d inaccessible: path b -> inner c blocked
	ss := buildSecure(t, doc, m, 4096)
	eff := bitset.FromIndices(1, 0)
	ancs := itemsFor(doc, doc.NodesWithTag("b"))
	descs := itemsFor(doc, doc.NodesWithTag("c"))
	pairs, err := SecureSTD(context.Background(), ss, eff, ancs, descs)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 1 || pairs[0] != (Pair{1, 2}) {
		t.Fatalf("pairs = %v, want only (1,2)", pairs)
	}
}

func TestSecureSTDEndpointInaccessible(t *testing.T) {
	doc := xmltree.MustParseString(`<a><b><c/></b></a>`)
	m := acl.NewMatrix(doc.Len(), 1)
	m.Set(0, 0, true)
	m.Set(2, 0, true) // b (node 1) inaccessible
	ss := buildSecure(t, doc, m, 4096)
	eff := bitset.FromIndices(1, 0)
	pairs, err := SecureSTD(context.Background(), ss, eff, itemsFor(doc, doc.NodesWithTag("b")), itemsFor(doc, doc.NodesWithTag("c")))
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 0 {
		t.Fatalf("inaccessible ancestor endpoint must not join: %v", pairs)
	}
}

// Property: SecureSTD matches the brute-force oracle across page sizes and
// accessibility distributions.
func TestSecureSTDMatchesOracle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		doc := randomDoc(rng, 2+rng.Intn(200))
		numSubjects := 1 + rng.Intn(3)
		m := acl.NewMatrix(doc.Len(), numSubjects)
		for n := 0; n < doc.Len(); n++ {
			for s := 0; s < numSubjects; s++ {
				if rng.Intn(4) > 0 {
					m.Set(xmltree.NodeID(n), acl.SubjectID(s), true)
				}
			}
		}
		pageSize := 64 + rng.Intn(200)
		pool := storage.NewBufferPool(storage.NewMemPager(pageSize), 512)
		ss, err := dol.BuildSecureStore(pool, doc, m, nok.BuildOptions{})
		if err != nil {
			return false
		}
		eff := bitset.FromIndices(numSubjects, rng.Intn(numSubjects))
		ancs := itemsFor(doc, doc.NodesWithTag("x"))
		descs := itemsFor(doc, doc.NodesWithTag("y"))
		got, err := SecureSTD(context.Background(), ss, eff, ancs, descs)
		if err != nil {
			return false
		}
		want := secureOracle(doc, m, eff, ancs, descs)
		if len(got) != len(want) {
			return false
		}
		for _, p := range got {
			if !want[p] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// SecureSTD must physically read only pages whose change bit is set.
func TestSecureSTDReadsOnlyMixedPages(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	doc := randomDoc(rng, 3000)
	m := acl.NewMatrix(doc.Len(), 1)
	// Long uniform runs: grant access to the first half only.
	for n := 0; n < doc.Len()/2; n++ {
		m.Set(xmltree.NodeID(n), 0, true)
	}
	pool := storage.NewBufferPool(storage.NewMemPager(256), 512)
	ss, err := dol.BuildSecureStore(pool, doc, m, nok.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mixed := 0
	for k := 0; k < ss.Store().NumPages(); k++ {
		if ss.Store().PageInfoAt(k).ChangeBit {
			mixed++
		}
	}
	if mixed == 0 || mixed > 2 {
		t.Fatalf("workload should have one or two mixed pages, got %d", mixed)
	}
	if err := pool.DropAll(); err != nil {
		t.Fatal(err)
	}
	pool.ResetStats()
	eff := bitset.FromIndices(1, 0)
	ancs := itemsFor(doc, doc.NodesWithTag("x"))
	descs := itemsFor(doc, doc.NodesWithTag("y"))
	if _, err := SecureSTD(context.Background(), ss, eff, ancs, descs); err != nil {
		t.Fatal(err)
	}
	if misses := pool.Stats().Misses; misses > int64(mixed) {
		t.Fatalf("SecureSTD read %d pages; only %d mixed pages should require I/O", misses, mixed)
	}
}

func BenchmarkSTD(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	doc := benchDoc(rng, 50000)
	ancs := itemsFor(doc, doc.NodesWithTag("x"))
	descs := itemsFor(doc, doc.NodesWithTag("y"))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		STD(ancs, descs)
	}
}

func BenchmarkSecureSTD(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	doc := benchDoc(rng, 50000)
	m := acl.NewMatrix(doc.Len(), 4)
	for n := 0; n < doc.Len(); n++ {
		if rng.Intn(5) > 0 {
			m.Set(xmltree.NodeID(n), acl.SubjectID(rng.Intn(4)), true)
		}
	}
	pool := storage.NewBufferPool(storage.NewMemPager(4096), 4096)
	ss, err := dol.BuildSecureStore(pool, doc, m, nok.BuildOptions{})
	if err != nil {
		b.Fatal(err)
	}
	eff := bitset.FromIndices(4, 0)
	ancs := itemsFor(doc, doc.NodesWithTag("x"))
	descs := itemsFor(doc, doc.NodesWithTag("y"))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SecureSTD(context.Background(), ss, eff, ancs, descs); err != nil {
			b.Fatal(err)
		}
	}
}

// benchDoc builds a random document with realistic bounded depth (~12) for
// benchmarks; the unconstrained randomDoc drifts toward path-shaped trees
// whose depth grows linearly with size, which misrepresents join and
// navigation costs on document-shaped data.
func benchDoc(rng *rand.Rand, n int) *xmltree.Document {
	b := xmltree.NewBuilder()
	b.Begin("r")
	depth := 1
	tags := []string{"x", "y", "z"}
	for i := 1; i < n; i++ {
		for depth > 1 && (depth >= 12 || rng.Intn(3) == 0) {
			b.End()
			depth--
		}
		b.Begin(tags[rng.Intn(len(tags))])
		depth++
	}
	for ; depth > 0; depth-- {
		b.End()
	}
	return b.MustFinish()
}
