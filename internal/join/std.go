// Package join implements structural joins on the ancestor-descendant
// relationship: the Stack-Tree-Desc (STD) algorithm of Al-Khalifa et al.
// (ICDE 2002) that the NoK query processor uses to combine NoK subtree
// matches (paper §3.1), and the secure ε-STD variant of paper §4.2, which
// additionally requires every node on the path from the ancestor to the
// descendant to be accessible (the Gabillon–Bruno semantics) while loading
// each document page at most once.
package join

import (
	"sort"
	"sync"

	"dolxml/internal/xmltree"
)

// stackPool recycles the ancestor stacks of the join algorithms: structural
// joins run once per cut pattern edge per query, and under parallel query
// traffic the per-join stack allocation shows up. Pooled as *[]Item so the
// slice header itself does not escape on Put.
var stackPool = sync.Pool{
	New: func() any {
		s := make([]Item, 0, 32)
		return &s
	},
}

func getStack() *[]Item {
	s := stackPool.Get().(*[]Item)
	*s = (*s)[:0]
	return s
}

func putStack(s *[]Item) { stackPool.Put(s) }

// Item is a join input: a candidate node with its region encoding.
type Item struct {
	// Node is the candidate's document-order ID (region start).
	Node xmltree.NodeID
	// End is the last node of the candidate's subtree (region end).
	End xmltree.NodeID
	// Level is the candidate's depth.
	Level int
}

// Pair is one join output: anc is a proper ancestor of desc.
type Pair struct {
	Anc  xmltree.NodeID
	Desc xmltree.NodeID
}

// SortItems sorts candidates by document order, as the stack-based joins
// require.
func SortItems(items []Item) {
	sort.Slice(items, func(i, j int) bool { return items[i].Node < items[j].Node })
}

// STD performs the Stack-Tree-Desc structural join: it returns every pair
// (a, d) with a ∈ ancs, d ∈ descs and a a proper ancestor of d. Both inputs
// must be sorted by Node (use SortItems). Output is ordered by descendant.
//
// The algorithm merges the two sorted lists, maintaining a stack of nested
// ancestors that enclose the current position; each descendant emits one
// pair per stacked ancestor.
func STD(ancs, descs []Item) []Pair {
	var out []Pair
	stackBuf := getStack()
	defer func() { putStack(stackBuf) }()
	j := STDJoiner{ancs: ancs, stack: *stackBuf}
	defer func() { *stackBuf = j.stack[:0] }()
	for _, d := range descs {
		out = append(out, j.Probe(d)...)
	}
	return out
}

// SelfOrDescendantSTD is STD with the descendant-or-self axis: pairs where
// a == d are also emitted when both lists contain the node.
func SelfOrDescendantSTD(ancs, descs []Item) []Pair {
	out := STD(ancs, descs)
	// Add the a == d pairs by merging.
	ai := 0
	for _, d := range descs {
		for ai < len(ancs) && ancs[ai].Node < d.Node {
			ai++
		}
		if ai < len(ancs) && ancs[ai].Node == d.Node {
			out = append(out, Pair{Anc: d.Node, Desc: d.Node})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Desc != out[j].Desc {
			return out[i].Desc < out[j].Desc
		}
		return out[i].Anc < out[j].Anc
	})
	return out
}
