package join

import (
	"context"

	"dolxml/internal/bitset"
	"dolxml/internal/dol"
)

// SecureSTD performs the secure structural join of paper §4.2 under the
// Gabillon–Bruno semantics: it returns the pairs (a, d) such that a is a
// proper ancestor of d and *every* node on the path from a to d, endpoints
// included, is accessible to the effective subject set.
//
// The algorithm makes one document-order pass. A stack of the levels of
// inaccessible ancestors of the current position is maintained; a pair
// (a, d) is valid exactly when the deepest such level at d is shallower
// than a's level. Pages whose in-memory directory header shows them to be
// uniformly accessible or uniformly inaccessible are never physically read
// — uniform pages contribute only directory-derivable stack updates — so
// each page is loaded at most once, and only when its change bit is set.
//
// SecureSTD is the drain-everything form of EpsJoiner: it probes every
// descendant in order, honoring ctx at each page-fetch boundary. The
// streaming query pipeline holds an EpsJoiner directly so it can stop the
// pass at its last descendant.
func SecureSTD(ctx context.Context, ss *dol.SecureStore, effective *bitset.Bitset, ancs, descs []Item) ([]Pair, error) {
	if len(ancs) == 0 || len(descs) == 0 {
		return nil, nil
	}
	j := NewEpsJoiner(ss, effective, ancs)
	var out []Pair
	for _, d := range descs {
		pairs, err := j.Probe(ctx, d)
		if err != nil {
			return nil, err
		}
		out = append(out, pairs...)
	}
	return out, nil
}
