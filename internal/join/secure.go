package join

import (
	"sync"

	"dolxml/internal/bitset"
	"dolxml/internal/dol"
	"dolxml/internal/xmltree"
)

// levelPool recycles the inaccessible-ancestor level stacks of ε-STD.
var levelPool = sync.Pool{
	New: func() any {
		s := make([]int, 0, 32)
		return &s
	},
}

// SecureSTD performs the secure structural join of paper §4.2 under the
// Gabillon–Bruno semantics: it returns the pairs (a, d) such that a is a
// proper ancestor of d and *every* node on the path from a to d, endpoints
// included, is accessible to the effective subject set.
//
// The algorithm makes one document-order pass. A stack of the levels of
// inaccessible ancestors of the current position is maintained; a pair
// (a, d) is valid exactly when the deepest such level at d is shallower
// than a's level. Pages whose in-memory directory header shows them to be
// uniformly accessible or uniformly inaccessible are never physically read
// — uniform pages contribute only directory-derivable stack updates — so
// each page is loaded at most once, and only when its change bit is set.
func SecureSTD(ss *dol.SecureStore, effective *bitset.Bitset, ancs, descs []Item) ([]Pair, error) {
	if len(ancs) == 0 || len(descs) == 0 {
		return nil, nil
	}
	st := ss.Store()
	cb := ss.Codebook()
	ancBuf := getStack()
	defer func() { putStack(ancBuf) }()
	lvlBuf := levelPool.Get().(*[]int)
	defer func() { levelPool.Put(lvlBuf) }()
	var (
		out        []Pair
		ancStack   = (*ancBuf)[:0]
		inaccLvls  = (*lvlBuf)[:0] // increasing levels of inaccessible ancestors
		aIdx, dIdx int
	)
	defer func() { *ancBuf, *lvlBuf = ancStack, inaccLvls }()
	popInacc := func(level int) {
		for len(inaccLvls) > 0 && inaccLvls[len(inaccLvls)-1] >= level {
			inaccLvls = inaccLvls[:len(inaccLvls)-1]
		}
	}
	deepestInacc := func() int {
		if len(inaccLvls) == 0 {
			return -1
		}
		return inaccLvls[len(inaccLvls)-1]
	}
	pushAnc := func(a Item) {
		for len(ancStack) > 0 && ancStack[len(ancStack)-1].End < a.Node {
			ancStack = ancStack[:len(ancStack)-1]
		}
		ancStack = append(ancStack, a)
	}
	emit := func(d Item) {
		for len(ancStack) > 0 && ancStack[len(ancStack)-1].End < d.Node {
			ancStack = ancStack[:len(ancStack)-1]
		}
		m := deepestInacc()
		for _, a := range ancStack {
			if a.Node < d.Node && d.Node <= a.End && m < a.Level {
				out = append(out, Pair{Anc: a.Node, Desc: d.Node})
			}
		}
	}

	numPages := st.NumPages()
	for k := 0; k < numPages && dIdx < len(descs); k++ {
		pi := st.PageInfoAt(k)
		first := pi.FirstNode
		last := first + xmltree.NodeID(pi.Count) - 1
		if !pi.ChangeBit {
			if cb.AccessibleAny(pi.AccessCode, effective) {
				// Uniformly accessible: candidates are processed from
				// their own region encodings; the page is not read.
				for {
					var nextA, nextD xmltree.NodeID = -1, -1
					if aIdx < len(ancs) && ancs[aIdx].Node <= last {
						nextA = ancs[aIdx].Node
					}
					if dIdx < len(descs) && descs[dIdx].Node <= last {
						nextD = descs[dIdx].Node
					}
					if nextA < 0 && nextD < 0 {
						break
					}
					if nextA >= 0 && (nextD < 0 || nextA <= nextD) {
						a := ancs[aIdx]
						aIdx++
						popInacc(a.Level)
						pushAnc(a)
					} else {
						d := descs[dIdx]
						dIdx++
						popInacc(d.Level)
						emit(d)
					}
				}
			} else {
				// Uniformly inaccessible: skip candidates (their pairs
				// would be invalid) and record the page's still-open
				// nodes as inaccessible path levels, all derived from
				// the directory.
				for aIdx < len(ancs) && ancs[aIdx].Node <= last {
					aIdx++
				}
				for dIdx < len(descs) && descs[dIdx].Node <= last {
					dIdx++
				}
				nextStart := 0
				if k+1 < numPages {
					nextStart = int(st.PageInfoAt(k + 1).StartDepth)
				}
				popInacc(nextStart)
				for l := int(pi.StartDepth); l < nextStart; l++ {
					if len(inaccLvls) == 0 || inaccLvls[len(inaccLvls)-1] < l {
						inaccLvls = append(inaccLvls, l)
					}
				}
			}
			continue
		}
		// Mixed page: read and process node by node.
		entries, err := st.BlockEntries(k)
		if err != nil {
			return nil, err
		}
		level := int(pi.StartDepth)
		code := pi.AccessCode
		node := first
		for _, e := range entries {
			if e.HasCode {
				code = e.Code
			}
			popInacc(level)
			if !cb.AccessibleAny(code, effective) {
				inaccLvls = append(inaccLvls, level)
			}
			if aIdx < len(ancs) && ancs[aIdx].Node == node {
				pushAnc(ancs[aIdx])
				aIdx++
			}
			if dIdx < len(descs) && descs[dIdx].Node == node {
				emit(descs[dIdx])
				dIdx++
			}
			level = level + 1 - e.CloseCount
			node++
		}
	}
	return out, nil
}
