package bench

import (
	"context"
	"fmt"
	"strings"
	"time"

	"dolxml/internal/acl"
	"dolxml/internal/btree"
	"dolxml/internal/dol"
	"dolxml/internal/nok"
	"dolxml/internal/obs"
	"dolxml/internal/query"
	"dolxml/internal/storage"
	"dolxml/internal/xmark"
	"dolxml/internal/xmltree"
	"dolxml/securexml"
)

// buildExplainEnv builds a query environment whose index lives on its own
// buffer pool: index postings are served without trace events, so giving
// the index a private pool makes the store pool's Gets counter exactly the
// set of page pins ANALYZE must attribute.
func buildExplainEnv(cfg Config, doc *xmltree.Document, m *acl.Matrix) (*queryEnv, error) {
	pool := storage.NewBufferPool(storage.NewMemPager(cfg.PageSize), cfg.PoolPages)
	ss, err := dol.BuildSecureStore(pool, doc, m, nok.BuildOptions{})
	if err != nil {
		return nil, err
	}
	idxPool := storage.NewBufferPool(storage.NewMemPager(cfg.PageSize), cfg.PoolPages)
	idx, err := btree.BuildFromDocument(idxPool, doc)
	if err != nil {
		return nil, err
	}
	return &queryEnv{doc: doc, pool: pool, ss: ss, ev: query.NewEvaluator(ss.Store(), idx)}, nil
}

// Explain gates the EXPLAIN/ANALYZE introspection layer on the Table 1
// workload plus the structurally unsatisfiable query. Three claims are
// under test, each breach a "VIOLATION:" note (failing `dolbench
// -strict`):
//
//   - exact attribution: for every query × semantics × parallelism, the
//     per-operator page buckets ANALYZE folds out of the trace must sum
//     to precisely the store pool's Gets/Hits deltas — nothing
//     double-counted, nothing lost — with zero dropped events;
//   - EXPLAIN is free: rendering a plan pins no store page, and the
//     unsatisfiable query's plan reports the compile-time empty
//     short-circuit with a zero page budget;
//   - the always-on flight recorder and SLO accounting cost under 3 % of
//     warm facade query time (estimated from per-op microbenchmarks, only
//     gated once a query does at least a millisecond of real work).
func Explain(cfg Config) []*Table {
	doc := xmark.Generate(xmark.Scaled(cfg.Seed, cfg.XMarkNodes))
	m := singleSubjectACL(doc, cfg.Seed+23, 70)

	t := &Table{
		ID: "explain",
		Title: fmt.Sprintf("ANALYZE attribution reconciliation, Q1–Q6 + Qunsat × semantics × parallelism (XMark, %d nodes, %d B pages)",
			doc.Len(), cfg.PageSize),
		Columns: []string{"query", "semantics", "par", "pages", "attrPins",
			"attrHits", "ops", "events", "answers"},
	}

	env, err := buildExplainEnv(cfg, doc, m)
	if err != nil {
		t.Notes = append(t.Notes, "ERROR: "+err.Error())
		return []*Table{t}
	}
	view := env.ss.ViewSubject(0)
	bg := context.Background()

	semantics := []struct {
		name string
		opts query.Options
	}{
		{"bindings", query.Options{View: view}},
		{"pruned", query.Options{View: view, Semantics: query.SemanticsPrunedSubtree}},
	}
	workload := append(append([]struct{ Name, Expr string }{}, Table1...),
		struct{ Name, Expr string }{"Qunsat", unsatisfiableQuery})

	for _, q := range workload {
		pt := query.MustParse(q.Expr)
		for _, sem := range semantics {
			for _, par := range []int{1, 0} {
				if err := env.pool.DropAll(); err != nil {
					t.Notes = append(t.Notes, "ERROR: "+err.Error())
					return []*Table{t}
				}
				env.pool.ResetStats()
				tr := obs.NewTrace()
				opts := sem.opts
				opts.Parallelism = par
				opts.Trace = tr
				res, err := env.ev.EvaluateCtx(obs.WithTrace(bg, tr), pt, opts)
				if err != nil {
					t.Notes = append(t.Notes, "ERROR: "+err.Error())
					return []*Table{t}
				}
				gets, hits := env.pool.Stats().Gets, env.pool.Stats().Hits

				opts.Trace = nil
				plan, err := env.ev.Explain(bg, pt, opts)
				if err != nil {
					t.Notes = append(t.Notes, "ERROR: "+err.Error())
					return []*Table{t}
				}
				an := query.AnalyzeTrace(plan, tr.Events(), tr.Dropped())
				tot := an.Totals()

				t.AddRow(q.Name, sem.name, fmt.Sprintf("%d", par),
					fmt.Sprintf("%d", gets),
					fmt.Sprintf("%d", tot.Pins),
					fmt.Sprintf("%d", tot.Hits),
					fmt.Sprintf("%d", len(an.Ops)),
					fmt.Sprintf("%d", an.Events),
					fmt.Sprintf("%d", len(res.Nodes)))

				tag := fmt.Sprintf("%s/%s/par=%d", q.Name, sem.name, par)
				if an.Dropped != 0 {
					t.Notes = append(t.Notes, fmt.Sprintf(
						"VIOLATION: %s dropped %d trace events; attribution not exact", tag, an.Dropped))
				}
				if tot.Pins != gets || tot.Hits != hits {
					t.Notes = append(t.Notes, fmt.Sprintf(
						"VIOLATION: %s attributed pins/hits %d/%d != pool delta %d/%d",
						tag, tot.Pins, tot.Hits, gets, hits))
				}
				if q.Name == "Qunsat" {
					if !plan.Unsatisfiable {
						t.Notes = append(t.Notes, fmt.Sprintf(
							"VIOLATION: %s plan does not report the unsatisfiable short-circuit", tag))
					}
					if gets != 0 || len(res.Nodes) != 0 {
						t.Notes = append(t.Notes, fmt.Sprintf(
							"VIOLATION: %s pinned %d pages / returned %d answers; want 0/0",
							tag, gets, len(res.Nodes)))
					}
				}
			}
		}
	}

	// EXPLAIN alone must pin nothing: plans render from the in-memory
	// directory, summaries and codebook.
	if err := env.pool.DropAll(); err == nil {
		env.pool.ResetStats()
		for _, q := range workload {
			if _, err := env.ev.Explain(bg, query.MustParse(q.Expr), query.Options{View: view}); err != nil {
				t.Notes = append(t.Notes, "ERROR: "+err.Error())
				return []*Table{t}
			}
		}
		if gets := env.pool.Stats().Gets; gets != 0 {
			t.Notes = append(t.Notes, fmt.Sprintf(
				"VIOLATION: EXPLAIN of the full workload pinned %d store pages; want 0", gets))
		}
	}

	t.Notes = append(t.Notes,
		"attrPins/attrHits sum ANALYZE's per-operator buckets plus the residual; pages is the store pool's Gets delta over the same run",
		"the index lives on a private pool so untraced posting reads cannot blur the reconciliation")
	return []*Table{t, explainOverhead(cfg, doc)}
}

// explainOverhead bounds what the always-on flight recorder and SLO
// accounting add to an untraced facade query: per query, one digest
// filing plus two SLO counter increments; per page, two atomic counting-
// trace increments. As in the obs experiment, the bound is estimated from
// per-op microbenchmarks times the operation counts the query actually
// performed, and only gated once the query does a millisecond of work.
func explainOverhead(cfg Config, doc *xmltree.Document) *Table {
	t := &Table{
		ID: "explain_overhead",
		Title: fmt.Sprintf("always-on recorder + SLO overhead, Q1–Q6 warm facade (XMark, %d nodes, %d B pages)",
			doc.Len(), cfg.PageSize),
		Columns: []string{"query", "time", "pages", "estOverhead"},
	}
	fail := func(err error) *Table {
		t.Notes = append(t.Notes, "ERROR: "+err.Error())
		return t
	}

	var xb strings.Builder
	if err := doc.WriteXML(&xb); err != nil {
		return fail(err)
	}
	s, err := securexml.NewBuilder().
		LoadXMLString(xb.String()).
		AddUser("u").
		Grant("u", "read", "/site").
		Revoke("u", "read", "//description").
		Seal(securexml.StoreOptions{PageSize: cfg.PageSize, PoolPages: cfg.PoolPages,
			SLOLatency: 250 * time.Millisecond})
	if err != nil {
		return fail(err)
	}
	defer s.Close()

	// Per-op costs of what the always-on path adds.
	const ops = 1 << 19
	var c obs.Counter
	incCost := timePerOp(ops, func() { c.Inc() })
	rec := obs.NewRecorder(0, 0, 0)
	ctr := obs.NewCountingTrace()
	d := obs.QueryDigest{Fingerprint: "/site/x/y|bindings", XPath: "/site/x/y", LatencyUs: 120, Pages: 40}
	recordCost := timePerOp(1<<16, func() { rec.Record(d, ctr) })
	t.Notes = append(t.Notes, fmt.Sprintf(
		"primitive costs: counter inc %s, recorder record %s", incCost, recordCost))

	runs := cfg.QueryRuns
	if runs < 3 {
		runs = 3
	}
	for _, q := range Table1 {
		// Warm, then meter pages and take the best timing.
		if _, err := s.Query("u", "read", q.Expr); err != nil {
			return fail(err)
		}
		before := s.MetricsSnapshot()
		best := time.Duration(1<<62 - 1)
		for i := 0; i < runs; i++ {
			start := time.Now()
			if _, err := s.Query("u", "read", q.Expr); err != nil {
				return fail(err)
			}
			if e := time.Since(start); e < best {
				best = e
			}
		}
		pages := (s.MetricsSnapshot().Get("pool_gets") - before.Get("pool_gets")) / int64(runs)

		// Per query: the digest filing, two SLO increments and the
		// latency observation (≈ one inc); per page: the counting
		// trace's pin and hit-or-miss increments.
		est := recordCost + 3*incCost + time.Duration(2*pages)*incCost
		estPct := 100 * float64(est) / float64(best)
		t.AddRow(q.Name, best.Round(time.Microsecond).String(),
			fmt.Sprintf("%d", pages), fmt.Sprintf("%.2f%%", estPct))
		if estPct >= 3 && best >= time.Millisecond {
			t.Notes = append(t.Notes, fmt.Sprintf(
				"VIOLATION: %s estimated recorder+SLO share %.2f%% >= 3%%", q.Name, estPct))
		}
	}
	t.Notes = append(t.Notes,
		"estOverhead = (recorder record + 3 counter incs + 2 incs per page) / best warm query time",
		"the recorder and SLO gauges are always on; there is no disabled arm to diff against")
	return t
}
