package bench

import (
	"fmt"
	"time"

	"dolxml/internal/dol"
	"dolxml/internal/synthacl"
)

// CodebookScaling reproduces the paper's central compactness claim at
// populations the materializing generators cannot reach: codebook size is
// a function of the *rule vocabulary* (groups × folders), not of the
// subject population. The streamed synthacl generator scales subjects from
// thousands to a million under a √S group structure (ceil(sqrt(S))-member
// groups, a fixed number of folders per group, a constant per-subject
// deviation rate), so the distinct-ACL vocabulary grows like √S while the
// population grows like S.
//
// Self-checks, each breach recorded as a "VIOLATION:" note (failing
// `dolbench -strict`):
//
//   - Sublinearity: between consecutive population points with subject
//     ratio R, the live-entry count may grow by at most R/2. Under the √S
//     model the observed factor is ~√R (≈3.2 per decade); a linear
//     codebook (the §2.1 worst case) would grow by R and fail the gate.
//   - Row compaction: at the largest point, the run-length encoding of the
//     live dictionary must be at most 10 % of its dense bit-matrix size —
//     the reason the v2 sparse rows exist.
//   - Oracle: at the smallest point the sparse streamed build must agree
//     with a dense replay of the same grant stream (entry count and every
//     folder's ACL bits).
//   - Persistence: the dense replay's codebook must round-trip through
//     MarshalBinary/UnmarshalBinary as a byte fixpoint, choosing the v2
//     sparse framing once the population crosses the sparse threshold.
func CodebookScaling(cfg Config) *Table {
	t := &Table{
		ID:    "codebook",
		Title: "codebook growth vs subject population (streamed √S-group ACLs)",
		Columns: []string{"subjects", "groups", "folders", "entries", "entry growth",
			"max runs", "sparse B", "dense B", "sparse/dense", "build"},
	}
	sizes := cfg.CodebookSubjects
	if len(sizes) == 0 {
		sizes = []int{10000, 100000, 1000000}
	}

	var results []*synthacl.StreamResult
	for _, n := range sizes {
		res := synthacl.StreamCodebook(synthacl.DefaultStream(cfg.Seed, n))
		results = append(results, res)
		s := res.Stats
		growth := "-"
		if len(results) > 1 {
			prev := results[len(results)-2].Stats
			growth = fmt.Sprintf("%.2fx", float64(s.Entries)/float64(prev.Entries))
		}
		ratio := float64(s.SparseBytes) / float64(s.DenseBytes)
		t.AddRow(
			fmt.Sprintf("%d", s.Subjects),
			fmt.Sprintf("%d", s.Groups),
			fmt.Sprintf("%d", s.Folders),
			fmt.Sprintf("%d", s.Entries),
			growth,
			fmt.Sprintf("%d", s.MaxRuns),
			fmt.Sprintf("%d", s.SparseBytes),
			fmt.Sprintf("%d", s.DenseBytes),
			fmt.Sprintf("%.4f", ratio),
			s.BuildTime.Round(time.Millisecond).String(),
		)
	}

	// Gate 1: sublinear entry growth between consecutive points.
	for i := 1; i < len(results); i++ {
		prev, cur := results[i-1].Stats, results[i].Stats
		subjectFactor := float64(cur.Subjects) / float64(prev.Subjects)
		entryFactor := float64(cur.Entries) / float64(prev.Entries)
		if entryFactor > subjectFactor/2 {
			t.Notes = append(t.Notes, fmt.Sprintf(
				"VIOLATION: entries grew %.2fx over a %.0fx subject increase (%d -> %d subjects); want <= %.1fx",
				entryFactor, subjectFactor, prev.Subjects, cur.Subjects, subjectFactor/2))
		}
	}

	// Gate 2: the sparse dictionary must stay small next to its dense form.
	top := results[len(results)-1].Stats
	if ratio := float64(top.SparseBytes) / float64(top.DenseBytes); ratio > 0.10 {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"VIOLATION: sparse dictionary is %.2f%% of dense at %d subjects; want <= 10%%",
			ratio*100, top.Subjects))
	}

	// Gate 3: dense oracle agreement at the smallest point.
	smallCfg := synthacl.DefaultStream(cfg.Seed, sizes[0])
	sparse := results[0]
	denseCB, denseCodes := synthacl.StreamCodebookDense(smallCfg)
	if got, want := sparse.Codebook.Len(), denseCB.Len(); got != want {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"VIOLATION: sparse build has %d entries, dense oracle %d", got, want))
	}
	mismatches := 0
	for i := range sparse.Codes {
		if !sparse.Codebook.ACL(sparse.Codes[i]).EqualBits(denseCB.ACL(denseCodes[i])) {
			mismatches++
		}
	}
	if mismatches > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"VIOLATION: %d of %d folder ACLs differ between sparse build and dense oracle",
			mismatches, len(sparse.Codes)))
	}

	// Gate 4: persistence round-trip with the expected framing.
	blob, err := denseCB.MarshalBinary()
	if err != nil {
		t.Notes = append(t.Notes, "VIOLATION: codebook marshal failed: "+err.Error())
		return t
	}
	if v := dol.CodebookFormatVersion(blob); v != 2 {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"VIOLATION: %d-subject codebook marshaled as v%d; want the v2 sparse framing",
			sizes[0], v))
	}
	var re dol.Codebook
	if err := re.UnmarshalBinary(blob); err != nil {
		t.Notes = append(t.Notes, "VIOLATION: codebook unmarshal failed: "+err.Error())
		return t
	}
	blob2, err := re.MarshalBinary()
	if err != nil || string(blob) != string(blob2) {
		t.Notes = append(t.Notes, "VIOLATION: codebook round-trip is not a byte fixpoint")
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"entries follow the rule vocabulary (~sqrt of subjects): %d subjects need %d entries (%d B sparse)",
		top.Subjects, top.Entries, top.SparseBytes))
	return t
}
