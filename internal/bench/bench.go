// Package bench regenerates every table and figure of the paper's
// evaluation (§5) as printable tables: the CAM-vs-DOL single-subject
// comparisons (Figure 4), multi-subject codebook and transition scaling
// (Figures 5 and 6), the §5.1.1 storage comparison, the ε-NoK vs NoK query
// experiments over the Table 1 workload (Figure 7), the ε-STD structural
// join experiments (§4.2, Q4–Q6), the update-cost and Proposition 1
// checks (§3.4), and the §2.1 uncorrelated worst case.
//
// Absolute numbers depend on the machine and on the simulated datasets
// standing in for the paper's proprietary ones; the shapes — who wins, by
// roughly what factor, where the curves bend — are the reproduction
// targets (see EXPERIMENTS.md).
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"

	"dolxml/internal/synthacl"
)

// Config scales the experiments.
type Config struct {
	// Seed drives all generators.
	Seed int64
	// XMarkNodes sizes the synthetic-ACL documents (Figures 4a, 7).
	XMarkNodes int
	// LiveLink and UnixFS configure the multi-user simulators.
	LiveLink synthacl.LiveLinkConfig
	UnixFS   synthacl.UnixFSConfig
	// QueryRuns is the number of timed repetitions per query point.
	QueryRuns int
	// PageSize and PoolPages configure the storage layer.
	PageSize  int
	PoolPages int
	// SampledUsers is how many users Figure 4(b) averages over per mode.
	SampledUsers int
	// ACLTrials is how many independent ACL labelings the query
	// experiments average over (the synthetic generator has high
	// variance at a single draw).
	ACLTrials int
	// Tenants is how many stores the multitenant experiment serves
	// through one registry.
	Tenants int
	// CodebookSubjects are the population points of the codebook
	// subject-scaling sweep (ascending).
	CodebookSubjects []int
}

// DefaultConfig returns a laptop-scale configuration: every experiment
// completes in seconds while preserving the paper's proportions.
func DefaultConfig() Config {
	return Config{
		Seed:         1,
		XMarkNodes:   100000,
		LiveLink:     synthacl.DefaultLiveLink(1),
		UnixFS:       synthacl.DefaultUnixFS(1),
		QueryRuns:    5,
		PageSize:     4096,
		PoolPages:    8192,
		SampledUsers: 10,
		ACLTrials:    3,
		Tenants:      24,
		CodebookSubjects: []int{
			10000, 100000, 1000000,
		},
	}
}

// QuickConfig returns a configuration small enough for unit tests.
func QuickConfig() Config {
	cfg := DefaultConfig()
	cfg.XMarkNodes = 12000
	cfg.LiveLink = synthacl.LiveLinkConfig{
		Seed: 1, Folders: 4000, Departments: 4, GroupsPerDept: 3,
		UsersPerGroup: 5, Modes: 3, UserNoise: 0.3, CrossDept: 0.1,
	}
	cfg.UnixFS = synthacl.UnixFSConfig{Seed: 1, Files: 4000, Users: 20, Groups: 8}
	cfg.QueryRuns = 2
	cfg.SampledUsers = 4
	cfg.ACLTrials = 2
	cfg.Tenants = 8
	cfg.CodebookSubjects = []int{1000, 10000, 100000}
	return cfg
}

// PaperConfig approaches the paper's dataset sizes (an 830 K-node XMark
// instance, thousands of subjects, a 100 K-item folder tree). Expect
// minutes, not seconds.
func PaperConfig() Config {
	cfg := DefaultConfig()
	cfg.XMarkNodes = 830000
	cfg.LiveLink = synthacl.LiveLinkConfig{
		Seed: 1, Folders: 100000, Departments: 20, GroupsPerDept: 6,
		UsersPerGroup: 20, Modes: 10, UserNoise: 0.3, CrossDept: 0.1,
	}
	cfg.UnixFS = synthacl.UnixFSConfig{Seed: 1, Files: 400000, Users: 182, Groups: 65}
	cfg.QueryRuns = 5
	cfg.PoolPages = 65536
	cfg.Tenants = 32
	return cfg
}

// Env records the execution environment and configuration a table was
// produced under. Run stamps it onto every table, so a BENCH_*.json entry
// is interpretable without knowing which machine or scale produced it.
type Env struct {
	GoVersion  string
	GOOS       string
	GOARCH     string
	NumCPU     int
	GOMAXPROCS int
	PageSize   int
	PoolPages  int
	XMarkNodes int
	Seed       int64
}

// CaptureEnv snapshots the environment for cfg.
func CaptureEnv(cfg Config) *Env {
	return &Env{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		PageSize:   cfg.PageSize,
		PoolPages:  cfg.PoolPages,
		XMarkNodes: cfg.XMarkNodes,
		Seed:       cfg.Seed,
	}
}

// Table is one experiment's printable result.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
	// Env is the environment stamp Run applies; nil only for tables built
	// outside Run.
	Env *Env `json:",omitempty"`
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	printRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%-*s", widths[i], cell)
		}
		fmt.Fprintln(w)
	}
	printRow(t.Columns)
	total := len(widths) - 1
	for _, wd := range widths {
		total += wd + 1
	}
	fmt.Fprintln(w, strings.Repeat("-", total))
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// TablesJSON renders tables as indented JSON — the machine-readable twin of
// Fprint, consumed by tooling that diffs benchmark results across commits.
func TablesJSON(tables []*Table) ([]byte, error) {
	return json.MarshalIndent(tables, "", "  ")
}

// WriteTablesJSON writes tables as JSON to the named file.
func WriteTablesJSON(path string, tables []*Table) error {
	data, err := TablesJSON(tables)
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Experiment names accepted by Run.
var Experiments = []string{
	"fig4a", "fig4b", "fig5", "fig6", "storage", "fig7", "joins",
	"updates", "worstcase", "ablation", "modes", "parallel", "streaming",
	"pageskip", "pathsummary", "wal", "writeload", "obs",
	"codebook", "multitenant", "explain",
}

// Run executes the named experiment and returns its tables, each stamped
// with the environment it ran under.
func Run(name string, cfg Config) ([]*Table, error) {
	tables, err := run(name, cfg)
	if err != nil {
		return nil, err
	}
	env := CaptureEnv(cfg)
	for _, t := range tables {
		t.Env = env
	}
	return tables, nil
}

func run(name string, cfg Config) ([]*Table, error) {
	switch name {
	case "fig4a":
		return []*Table{Fig4a(cfg)}, nil
	case "fig4b":
		return []*Table{Fig4b(cfg)}, nil
	case "fig5":
		return Fig5(cfg), nil
	case "fig6":
		return Fig6(cfg), nil
	case "storage":
		return []*Table{Storage(cfg)}, nil
	case "fig7":
		return Fig7(cfg), nil
	case "joins":
		return Joins(cfg), nil
	case "updates":
		return []*Table{Updates(cfg)}, nil
	case "worstcase":
		return []*Table{WorstCase(cfg)}, nil
	case "ablation":
		return []*Table{Ablation(cfg)}, nil
	case "modes":
		return []*Table{Modes(cfg)}, nil
	case "parallel":
		return Parallel(cfg), nil
	case "streaming":
		return Streaming(cfg), nil
	case "pageskip":
		return PageSkip(cfg), nil
	case "pathsummary":
		return PathSummary(cfg), nil
	case "wal":
		return WAL(cfg), nil
	case "writeload":
		return Writeload(cfg), nil
	case "obs":
		return Obs(cfg), nil
	case "codebook":
		return []*Table{CodebookScaling(cfg)}, nil
	case "multitenant":
		return Multitenant(cfg), nil
	case "explain":
		return Explain(cfg), nil
	default:
		return nil, fmt.Errorf("bench: unknown experiment %q (have %v)", name, Experiments)
	}
}

// RunAll executes every experiment.
func RunAll(cfg Config) ([]*Table, error) {
	var out []*Table
	for _, name := range Experiments {
		ts, err := Run(name, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, ts...)
	}
	return out, nil
}
