package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dolxml/internal/xmark"
	"dolxml/securexml"
)

// Writeload measures the write path the durability modes were built for:
// concurrent updaters committing ACL toggles against one file-backed store
// while readers keep querying. Every (mode, updaters, readers) point
// starts from an identical on-disk copy of the same store and applies the
// same per-updater toggle sequence, so the points differ only in how
// commits reach disk:
//
//   - sync: every update seals AND flushes its own batch (one log fsync,
//     one data fsync, one checkpoint fsync per update) — the historical
//     behavior, serialized across committers.
//   - grouped: updates seal under the store lock and block until the
//     shared background flush covers their batch; concurrent committers
//     split the three fsyncs of one group flush.
//   - async: updates return once sealed; the run waits for collective
//     durability (AwaitDurable) before the clock stops, so the reported
//     throughput still covers the full path to disk.
//
// Self-checks (VIOLATION notes, so -strict fails on them): every point
// must leave the store answering the Table 1 workload exactly like the
// untouched base store (each node's toggles end where they started), the
// WAL must report exactly one commit per update, no buffer-pool page may
// stay pinned, and exactly one MVCC snapshot version may be live at sweep
// end (readers that leak pins keep quarantined pages alive). The mixed
// points additionally gate reader-induced writer stalls: under grouped
// durability, 8 updaters with 4 readers must stay within 1.5x of the
// 8-updater reader-free throughput. Readers are open-loop (one query per
// 50ms each) so the stall factor measures blocking, not CPU time-slicing.
// The reader-latency columns compare p50/p99 with updaters against the
// updater-free baseline rows.
func Writeload(cfg Config) []*Table {
	t := &Table{
		ID:    "writeload",
		Title: "update throughput and reader latency by durability mode",
		Columns: []string{"mode", "updaters", "readers", "updates", "elapsed",
			"updates/s", "fsyncs/update", "mean group", "reader p50", "reader p99"},
	}
	tables := []*Table{t}
	fail := func(err error) []*Table {
		t.Notes = append(t.Notes, "ERROR: "+err.Error())
		return tables
	}

	nodes := cfg.XMarkNodes / 20
	if nodes < 1500 {
		nodes = 1500
	}
	doc := xmark.Generate(xmark.Scaled(cfg.Seed+41, nodes))
	var xb strings.Builder
	if err := doc.WriteXML(&xb); err != nil {
		return fail(err)
	}
	t.Title += fmt.Sprintf(" (XMark, %d nodes, %d B pages)", doc.Len(), cfg.PageSize)

	// Build the base store once and snapshot its files; every point
	// restores the snapshot into a fresh directory.
	baseDir, err := os.MkdirTemp("", "dolbench-writeload")
	if err != nil {
		return fail(err)
	}
	defer os.RemoveAll(baseDir)
	base, err := securexml.NewBuilder().
		LoadXMLString(xb.String()).
		AddGroup("staff").
		AddUser("u").
		AddMember("staff", "u").
		Grant("staff", "read", "/site").
		Seal(securexml.StoreOptions{
			Path:      filepath.Join(baseDir, "pages.db"),
			PageSize:  cfg.PageSize,
			PoolPages: cfg.PoolPages,
		})
	if err != nil {
		return fail(err)
	}
	if err := base.Save(baseDir); err != nil {
		base.Close()
		return fail(err)
	}
	targets, err := base.QueryUnrestricted("//keyword")
	if err != nil {
		base.Close()
		return fail(err)
	}
	if len(targets) == 0 {
		base.Close()
		return fail(fmt.Errorf("no keyword nodes to toggle"))
	}
	baseAnswers, err := writeloadFingerprint(base)
	if err != nil {
		base.Close()
		return fail(err)
	}
	if err := base.Close(); err != nil {
		return fail(err)
	}
	snap := map[string][]byte{}
	entries, err := os.ReadDir(baseDir)
	if err != nil {
		return fail(err)
	}
	for _, e := range entries {
		b, err := os.ReadFile(filepath.Join(baseDir, e.Name()))
		if err != nil {
			return fail(err)
		}
		snap[e.Name()] = b
	}

	modes := []struct {
		name string
		d    securexml.Durability
	}{
		{"sync", securexml.DurabilitySync},
		{"grouped", securexml.DurabilityGrouped},
		{"async", securexml.DurabilityAsync},
	}
	points := []struct{ updaters, readers int }{
		{0, 4}, {1, 0}, {4, 0}, {8, 0}, {4, 4}, {8, 4},
	}
	opsPerUpdater := 8 * cfg.QueryRuns

	// throughput[updaters] per mode name, for the speedup notes; mixed is
	// the same measurement with 4 readers live, for the stall-factor check.
	throughput := map[string]map[int]float64{}
	mixed := map[string]map[int]float64{}

	for _, m := range modes {
		throughput[m.name] = map[int]float64{}
		mixed[m.name] = map[int]float64{}
		for _, pt := range points {
			if pt.updaters == 0 && m.d != securexml.DurabilitySync {
				continue // the updater-free baseline is mode-independent
			}
			dir, err := os.MkdirTemp("", "dolbench-writeload-pt")
			if err != nil {
				return fail(err)
			}
			for name, b := range snap {
				if err := os.WriteFile(filepath.Join(dir, name), b, 0o644); err != nil {
					os.RemoveAll(dir)
					return fail(err)
				}
			}
			row, tput, err := writeloadPoint(dir, cfg, m.d, pt.updaters, pt.readers,
				opsPerUpdater, len(targets), baseAnswers, t)
			os.RemoveAll(dir)
			if err != nil {
				return fail(fmt.Errorf("%s u=%d r=%d: %w", m.name, pt.updaters, pt.readers, err))
			}
			label := m.name
			if pt.updaters == 0 {
				label = "(idle)"
			}
			t.AddRow(append([]string{label}, row...)...)
			if pt.readers == 0 && pt.updaters > 0 {
				throughput[m.name][pt.updaters] = tput
			}
			if pt.readers > 0 && pt.updaters > 0 {
				mixed[m.name][pt.updaters] = tput
			}
		}
	}

	for _, u := range []int{4, 8} {
		s, g, a := throughput["sync"][u], throughput["grouped"][u], throughput["async"][u]
		if s > 0 {
			t.Notes = append(t.Notes, fmt.Sprintf(
				"%d updaters: grouped %.1fx sync, async %.1fx sync", u, g/s, a/s))
		}
	}
	// Reader-induced writer stalls: with snapshot-pinned queries, updates
	// never wait for readers, so adding 4 readers must not cost updaters
	// more than scheduling noise. The 8-updater grouped point is the
	// acceptance gate (1.5x); the 4-updater ratio is reported for context.
	for _, u := range []int{4, 8} {
		solo, mix := throughput["grouped"][u], mixed["grouped"][u]
		if solo <= 0 || mix <= 0 {
			continue
		}
		stall := solo / mix
		t.Notes = append(t.Notes, fmt.Sprintf(
			"grouped %d updaters: %.0f updates/s alone vs %.0f with 4 readers (%.2fx stall factor)",
			u, solo, mix, stall))
		if u == 8 && stall > 1.5 {
			t.Notes = append(t.Notes, fmt.Sprintf(
				"VIOLATION: readers stall writers %.2fx at 8 updaters (limit 1.5x)", stall))
		}
	}
	t.Notes = append(t.Notes,
		"sync pays ~3 fsyncs per update; grouped and async amortize the 3 fsyncs of one flush across the whole group",
		"every point must answer the Table 1 workload exactly like the base store afterwards (toggles are even)")
	return tables
}

// writeloadFingerprint serializes the Table 1 answers under both secure
// semantics, like the recovery tests' fingerprint: equal strings mean
// observably identical stores.
func writeloadFingerprint(s *securexml.Store) (string, error) {
	var sb strings.Builder
	for _, q := range Table1 {
		for _, pruned := range []bool{false, true} {
			var ms []securexml.Match
			var err error
			if pruned {
				ms, err = s.QueryPruned("u", "read", q.Expr)
			} else {
				ms, err = s.Query("u", "read", q.Expr)
			}
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&sb, "%s pruned=%v:", q.Name, pruned)
			for _, m := range ms {
				fmt.Fprintf(&sb, " %d=%s=%q", m.Node, m.Tag, m.Value)
			}
			sb.WriteByte('\n')
		}
	}
	return sb.String(), nil
}

// writeloadPoint runs one (durability, updaters, readers) cell against a
// fresh copy of the base store and returns the formatted row cells (minus
// the mode label) and the measured updates/sec.
func writeloadPoint(dir string, cfg Config, d securexml.Durability, updaters, readers,
	opsPerUpdater, numTargets int, baseAnswers string, t *Table) ([]string, float64, error) {
	s, err := securexml.Open(dir, securexml.StoreOptions{
		PoolPages:  cfg.PoolPages,
		Durability: d,
	})
	if err != nil {
		return nil, 0, err
	}
	defer s.Close()
	targets, err := s.QueryUnrestricted("//keyword")
	if err != nil {
		return nil, 0, err
	}
	if len(targets) != numTargets {
		return nil, 0, fmt.Errorf("restored store holds %d keywords, base had %d", len(targets), numTargets)
	}

	before := s.MetricsSnapshot()
	var (
		done       atomic.Bool
		updWg      sync.WaitGroup
		readWg     sync.WaitGroup
		readersMu  sync.Mutex
		latencies  []time.Duration
		firstErrMu sync.Mutex
		firstErr   error
	)
	report := func(err error) {
		firstErrMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		firstErrMu.Unlock()
	}
	// Readers are open-loop: each issues one query per readerInterval
	// instead of spinning. A closed-loop reader is always runnable, so on
	// a small host the stall factor would measure fair CPU time-slicing
	// ((updaters+readers)/updaters) no matter how lock-free the read path
	// is; pacing bounds the readers' CPU share so the ratio isolates
	// blocking — which is what the MVCC gate is about.
	const readerInterval = 50 * time.Millisecond
	for r := 0; r < readers; r++ {
		readWg.Add(1)
		go func() {
			defer readWg.Done()
			var local []time.Duration
			for !done.Load() {
				start := time.Now()
				if _, err := s.Query("u", "read", Table1[4].Expr); err != nil {
					report(fmt.Errorf("reader: %w", err))
					return
				}
				took := time.Since(start)
				local = append(local, took)
				if pause := readerInterval - took; pause > 0 {
					time.Sleep(pause)
				}
			}
			readersMu.Lock()
			latencies = append(latencies, local...)
			readersMu.Unlock()
		}()
	}

	start := time.Now()
	for g := 0; g < updaters; g++ {
		updWg.Add(1)
		go func(g int) {
			defer updWg.Done()
			node := targets[g%len(targets)].Node
			var pending []*securexml.Commit
			for i := 0; i < opsPerUpdater; i++ {
				allowed := i%2 == 1 // revoke, grant, ... — ends granted
				if d == securexml.DurabilityAsync {
					c, err := s.SetAccessAsync("staff", "read", node, allowed, false)
					if err != nil {
						report(fmt.Errorf("updater %d: %w", g, err))
						return
					}
					pending = append(pending, c)
					continue
				}
				if err := s.SetAccess("staff", "read", node, allowed, false); err != nil {
					report(fmt.Errorf("updater %d: %w", g, err))
					return
				}
			}
			for _, c := range pending {
				if err := c.Wait(); err != nil {
					report(fmt.Errorf("updater %d wait: %w", g, err))
					return
				}
			}
		}(g)
	}
	updWg.Wait()
	if err := s.AwaitDurable(); err != nil {
		return nil, 0, err
	}
	elapsed := time.Since(start)
	if updaters == 0 {
		// Updater-free baseline: give the readers a fixed window.
		window := 50 * time.Millisecond * time.Duration(cfg.QueryRuns)
		time.Sleep(window)
		elapsed = window
	}
	done.Store(true)
	readWg.Wait()
	if firstErr != nil {
		return nil, 0, firstErr
	}

	updates := updaters * opsPerUpdater
	after := s.MetricsSnapshot()
	commits := after.Get("wal_commits") - before.Get("wal_commits")
	fsyncs := after.Get("wal_fsyncs") - before.Get("wal_fsyncs")
	if commits != int64(updates) {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"VIOLATION: %d updates produced %d WAL commits", updates, commits))
	}
	if pinned := after.Get("pool_pinned"); pinned != 0 {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"VIOLATION: %d pages still pinned after the run", pinned))
	}
	// Version-leak check: with updaters joined and readers drained, only
	// the current MVCC version may remain live — a higher count means a
	// query leaked its snapshot pin and quarantined pages can never be
	// reclaimed.
	if live := after.Get("snapshot_versions_live"); live != 1 {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"VIOLATION: %d snapshot versions live after the run (want 1)", live))
	}
	if got, err := writeloadFingerprint(s); err != nil {
		return nil, 0, err
	} else if got != baseAnswers {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"VIOLATION: answers diverged from the base store (updaters=%d)", updaters))
	}

	fsyncsPer, meanGroup := "-", "-"
	tput := 0.0
	if updates > 0 {
		fsyncsPer = fmt.Sprintf("%.2f", float64(fsyncs)/float64(updates))
		// Each group flush costs exactly 3 fsyncs (log, data, checkpoint).
		if groups := float64(fsyncs) / 3; groups > 0 {
			meanGroup = fmt.Sprintf("%.1f", float64(updates)/groups)
		}
		tput = float64(updates) / elapsed.Seconds()
	}
	p50, p99 := "-", "-"
	if readers > 0 && len(latencies) > 0 {
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		pct := func(p float64) time.Duration {
			i := int(p * float64(len(latencies)-1))
			return latencies[i].Round(time.Microsecond)
		}
		p50, p99 = pct(0.50).String(), pct(0.99).String()
	}
	tputCell := "-"
	if updates > 0 {
		tputCell = fmt.Sprintf("%.0f", tput)
	}
	row := []string{
		fmt.Sprintf("%d", updaters),
		fmt.Sprintf("%d", readers),
		fmt.Sprintf("%d", updates),
		elapsed.Round(time.Millisecond).String(),
		tputCell,
		fsyncsPer,
		meanGroup,
		p50,
		p99,
	}
	return row, tput, nil
}
