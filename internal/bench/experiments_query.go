package bench

import (
	"fmt"
	"math/rand"
	"time"

	"dolxml/internal/acl"
	"dolxml/internal/btree"
	"dolxml/internal/dol"
	"dolxml/internal/nok"
	"dolxml/internal/query"
	"dolxml/internal/storage"
	"dolxml/internal/synthacl"
	"dolxml/internal/xmark"
	"dolxml/internal/xmltree"
)

// Table1 is the paper's benchmark query workload. Q1–Q3 are the three NoK
// pattern-tree classes (branches at the end, in the middle, single path);
// Q4–Q6 are ancestor-descendant structural joins with close, medium and
// distant descendants.
//
// Note: the paper's text lists Q3 as
// "/site/categories/category/name[description/text/bold]" but describes it
// as "a single path"; the predicate form is Q2's class, so we take Q3 as
// the single path through the same elements (see EXPERIMENTS.md).
var Table1 = []struct {
	Name string
	Expr string
}{
	{"Q1", "/site/regions/africa/item[location][name][quantity]"},
	{"Q2", "/site/categories/category[name]/description/text/bold"},
	{"Q3", "/site/categories/category/description/text/bold"},
	{"Q4", "//parlist//parlist"},
	{"Q5", "//listitem//keyword"},
	{"Q6", "//item//emph"},
}

// queryEnv is a built store + index + evaluator over one ACL labeling.
type queryEnv struct {
	doc  *xmltree.Document
	pool *storage.BufferPool
	ss   *dol.SecureStore
	ev   *query.Evaluator
}

// singleSubjectACL labels doc for one subject with the §5 synthetic
// generator (propagation ratio 30 %, root forced accessible so anchored
// queries are not trivially empty).
func singleSubjectACL(doc *xmltree.Document, seed int64, accPct int) *acl.Matrix {
	accSet := synthacl.Synthetic(doc, synthacl.SynthConfig{
		Seed:                seed,
		PropagationRatio:    0.3,
		AccessibilityRatio:  float64(accPct) / 100,
		ForceRootAccessible: true,
	})
	m := acl.NewMatrix(doc.Len(), 1)
	for n := 0; n < doc.Len(); n++ {
		if accSet.Test(n) {
			m.Set(xmltree.NodeID(n), 0, true)
		}
	}
	return m
}

func buildQueryEnv(cfg Config, doc *xmltree.Document, m *acl.Matrix) (*queryEnv, error) {
	pool := storage.NewBufferPool(storage.NewMemPager(cfg.PageSize), cfg.PoolPages)
	ss, err := dol.BuildSecureStore(pool, doc, m, nok.BuildOptions{})
	if err != nil {
		return nil, err
	}
	idx, err := btree.BuildFromDocument(pool, doc)
	if err != nil {
		return nil, err
	}
	return &queryEnv{doc: doc, pool: pool, ss: ss, ev: query.NewEvaluator(ss.Store(), idx)}, nil
}

// timeQuery measures one evaluation configuration: cold-cache page misses
// for the first run, then the best of runs warm timings.
func (e *queryEnv) timeQuery(pt *query.PatternTree, opts query.Options, runs int) (elapsed time.Duration, answers int, pages int64, err error) {
	if err := e.pool.DropAll(); err != nil {
		return 0, 0, 0, err
	}
	e.pool.ResetStats()
	res, err := e.ev.Evaluate(pt, opts)
	if err != nil {
		return 0, 0, 0, err
	}
	pages = e.pool.Stats().Misses
	answers = len(res.Nodes)
	best := time.Duration(1<<62 - 1)
	for i := 0; i < runs; i++ {
		start := time.Now()
		if _, err := e.ev.Evaluate(pt, opts); err != nil {
			return 0, 0, 0, err
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best, answers, pages, nil
}

// Fig7 reproduces Figure 7(a–c): ε-NoK vs non-secure NoK on Q1–Q3 as the
// percentage of accessible nodes sweeps 50–80 %, reporting the
// processing-time ratio and the answers-returned ratio.
//
// Paper shape: the time ratio hovers around 1.02 (≤ ~1.2 worst case) and
// does not depend on the accessibility ratio, because access checks cost
// no extra I/O; the answers ratio tracks the accessibility ratio; at low
// accessibility the secure evaluator can even win via page skipping.
func Fig7(cfg Config) []*Table {
	doc := xmark.Generate(xmark.Scaled(cfg.Seed, cfg.XMarkNodes))
	accPcts := []int{50, 60, 70, 80}
	trials := cfg.ACLTrials
	if trials < 1 {
		trials = 1
	}
	queries := Table1[:3]

	type cell struct {
		plainTime, secTime   time.Duration
		plainAns, secAns     int
		plainPages, secPages int64
	}
	cells := make([][]cell, len(queries)) // [query][accIdx]
	for i := range cells {
		cells[i] = make([]cell, len(accPcts))
	}

	// Build each (accessibility, trial) environment once and run all
	// three queries over it.
	var buildErr error
	for ai, accPct := range accPcts {
		for trial := 0; trial < trials; trial++ {
			m := singleSubjectACL(doc, cfg.Seed+int64(accPct)+int64(trial)*1000, accPct)
			env, err := buildQueryEnv(cfg, doc, m)
			if err != nil {
				buildErr = err
				break
			}
			view := env.ss.ViewSubject(0)
			for qi, q := range queries {
				pt := query.MustParse(q.Expr)
				plainTime, plainAns, plainPages, err := env.timeQuery(pt, query.Options{}, cfg.QueryRuns)
				if err != nil {
					buildErr = err
					break
				}
				secTime, secAns, secPages, err := env.timeQuery(pt, query.Options{View: view}, cfg.QueryRuns)
				if err != nil {
					buildErr = err
					break
				}
				c := &cells[qi][ai]
				c.plainTime += plainTime
				c.secTime += secTime
				c.plainAns += plainAns
				c.secAns += secAns
				c.plainPages += plainPages
				c.secPages += secPages
			}
		}
	}

	var tables []*Table
	for qi, q := range queries {
		t := &Table{
			ID:    "fig7" + string('a'+rune(qi)),
			Title: fmt.Sprintf("ε-NoK vs NoK, %s = %s (XMark, %d nodes)", q.Name, q.Expr, doc.Len()),
			Columns: []string{"access%", "timeRatio", "answersRatio",
				"secAnswers", "plainAnswers", "secPages", "plainPages"},
		}
		if buildErr != nil {
			t.Notes = append(t.Notes, "ERROR: "+buildErr.Error())
			tables = append(tables, t)
			continue
		}
		for ai, accPct := range accPcts {
			c := cells[qi][ai]
			ansRatio := 0.0
			if c.plainAns > 0 {
				ansRatio = float64(c.secAns) / float64(c.plainAns)
			}
			t.AddRow(fmt.Sprintf("%d", accPct),
				fmt.Sprintf("%.3f", float64(c.secTime)/float64(c.plainTime)),
				fmt.Sprintf("%.3f", ansRatio),
				fmt.Sprintf("%d", c.secAns/trials),
				fmt.Sprintf("%d", c.plainAns/trials),
				fmt.Sprintf("%d", c.secPages/int64(trials)),
				fmt.Sprintf("%d", c.plainPages/int64(trials)))
		}
		t.Notes = append(t.Notes,
			"paper: time ratio ≈ 1.02, independent of accessibility; answers ratio tracks accessibility")
		tables = append(tables, t)
	}
	return tables
}

// Joins reproduces the §4.2 structural-join experiments on Q4–Q6: the
// non-secure STD baseline, secure evaluation under the bindings (Cho et
// al.) semantics, and the ε-STD pruned-subtree (Gabillon–Bruno) semantics.
//
// Paper claim: ε-STD aggressively prunes unsecured matches while loading
// each page at most once, regardless of the accessibility distribution.
func Joins(cfg Config) []*Table {
	doc := xmark.Generate(xmark.Scaled(cfg.Seed, cfg.XMarkNodes))
	var tables []*Table
	for _, q := range Table1[3:] {
		t := &Table{
			ID:    "join" + q.Name,
			Title: fmt.Sprintf("structural join, %s = %s (XMark, %d nodes)", q.Name, q.Expr, doc.Len()),
			Columns: []string{"access%", "plainAns", "bindAns", "prunedAns",
				"bindTimeRatio", "prunedTimeRatio", "prunedPages", "plainPages"},
		}
		pt := query.MustParse(q.Expr)
		for _, accPct := range []int{50, 70, 90} {
			m := singleSubjectACL(doc, cfg.Seed+int64(accPct)+7, accPct)
			env, err := buildQueryEnv(cfg, doc, m)
			if err != nil {
				t.Notes = append(t.Notes, "ERROR: "+err.Error())
				break
			}
			view := env.ss.ViewSubject(0)
			plainTime, plainAns, plainPages, err := env.timeQuery(pt, query.Options{}, cfg.QueryRuns)
			if err != nil {
				t.Notes = append(t.Notes, "ERROR: "+err.Error())
				break
			}
			bindTime, bindAns, _, err := env.timeQuery(pt, query.Options{View: view}, cfg.QueryRuns)
			if err != nil {
				t.Notes = append(t.Notes, "ERROR: "+err.Error())
				break
			}
			prunedTime, prunedAns, prunedPages, err := env.timeQuery(pt,
				query.Options{View: view, Semantics: query.SemanticsPrunedSubtree}, cfg.QueryRuns)
			if err != nil {
				t.Notes = append(t.Notes, "ERROR: "+err.Error())
				break
			}
			t.AddRow(fmt.Sprintf("%d", accPct),
				fmt.Sprintf("%d", plainAns),
				fmt.Sprintf("%d", bindAns),
				fmt.Sprintf("%d", prunedAns),
				fmt.Sprintf("%.3f", float64(bindTime)/float64(plainTime)),
				fmt.Sprintf("%.3f", float64(prunedTime)/float64(plainTime)),
				fmt.Sprintf("%d", prunedPages),
				fmt.Sprintf("%d", plainPages))
		}
		t.Notes = append(t.Notes,
			"pruned semantics answers ⊆ bindings semantics answers ⊆ plain answers")
		tables = append(tables, t)
	}
	return tables
}

// Ablation quantifies the §3.3 page-skipping optimization on its own: the
// same secure ε-NoK evaluation with and without directory-based skipping
// of fully inaccessible pages, across low accessibility ratios where whole
// pages are denied. DESIGN.md calls this design choice out; the paper
// credits it for the secure evaluator beating the non-secure one at low
// accessibility.
func Ablation(cfg Config) *Table {
	// Item-dominated instance: each region's item list spans many pages,
	// so a contiguous denied range can cover whole pages.
	doc := xmark.Generate(xmark.Config{
		Seed:            cfg.Seed,
		Items:           cfg.XMarkNodes / 90,
		Categories:      20,
		People:          20,
		OpenAuctions:    10,
		ClosedAuctions:  10,
		MaxParlistDepth: 2,
	})
	t := &Table{
		ID:    "ablation",
		Title: fmt.Sprintf("page-skip ablation, Q1 secure evaluation (XMark, %d nodes)", doc.Len()),
		Columns: []string{"access%", "pagesWithSkip", "pagesNoSkip",
			"timeWithSkip", "timeNoSkip", "answersEqual"},
	}
	pt := query.MustParse(Table1[0].Expr)
	// Page skipping pays off when a *contiguous* run of siblings spanning
	// whole pages is denied — e.g. an "archived items hidden" policy. Deny
	// the middle (100−accPct)% of every region's item list.
	for _, accPct := range []int{5, 10, 20, 40} {
		m := acl.NewMatrix(doc.Len(), 1)
		for n := 0; n < doc.Len(); n++ {
			m.Set(xmltree.NodeID(n), 0, true)
		}
		for _, region := range []string{"africa", "asia", "australia", "europe", "namerica", "samerica"} {
			for _, r := range doc.NodesWithTag(region) {
				items := doc.Children(r)
				if len(items) < 4 {
					continue
				}
				keep := len(items) * accPct / 100
				lo := items[keep/2+1]
				hi := doc.End(items[len(items)-1-keep/2-1])
				for n := lo; n <= hi; n++ {
					m.Set(n, 0, false)
				}
			}
		}
		env, err := buildQueryEnv(cfg, doc, m)
		if err != nil {
			t.Notes = append(t.Notes, "ERROR: "+err.Error())
			return t
		}
		view := env.ss.ViewSubject(0)
		skipTime, skipAns, skipPages, err := env.timeQuery(pt, query.Options{View: view}, cfg.QueryRuns)
		if err != nil {
			t.Notes = append(t.Notes, "ERROR: "+err.Error())
			return t
		}
		noTime, noAns, noPages, err := env.timeQuery(pt,
			query.Options{View: view, DisablePageSkip: true}, cfg.QueryRuns)
		if err != nil {
			t.Notes = append(t.Notes, "ERROR: "+err.Error())
			return t
		}
		t.AddRow(fmt.Sprintf("%d", accPct),
			fmt.Sprintf("%d", skipPages),
			fmt.Sprintf("%d", noPages),
			skipTime.Round(time.Microsecond).String(),
			noTime.Round(time.Microsecond).String(),
			fmt.Sprintf("%v", skipAns == noAns))
	}
	t.Notes = append(t.Notes,
		"skipping must never change answers; it saves page reads at low accessibility")
	return t
}

// Updates reproduces the §3.4 analysis: accessibility updates touch only
// the affected region's pages, subtree updates cost about N/B page writes,
// and every update grows the transition count by at most 2 (Prop. 1).
func Updates(cfg Config) *Table {
	doc := xmark.Generate(xmark.Scaled(cfg.Seed, cfg.XMarkNodes/4))
	rng := rand.New(rand.NewSource(cfg.Seed + 31))
	const subjects = 8
	m := acl.NewMatrix(doc.Len(), subjects)
	for s := 0; s < subjects; s++ {
		accSet := synthacl.Synthetic(doc, synthacl.SynthConfig{
			Seed:               cfg.Seed + int64(s),
			PropagationRatio:   0.1,
			AccessibilityRatio: 0.5,
		})
		for n := 0; n < doc.Len(); n++ {
			if accSet.Test(n) {
				m.Set(xmltree.NodeID(n), acl.SubjectID(s), true)
			}
		}
	}
	pool := storage.NewBufferPool(storage.NewMemPager(cfg.PageSize), cfg.PoolPages)
	ss, err := dol.BuildSecureStore(pool, doc, m, nok.BuildOptions{})
	t := &Table{
		ID:      "updates",
		Title:   fmt.Sprintf("update locality and Proposition 1 (XMark, %d nodes, %d subjects)", doc.Len(), subjects),
		Columns: []string{"operation", "count", "avgPagesWritten", "maxTransGrowth", "prop1Violations"},
	}
	if err != nil {
		t.Notes = append(t.Notes, "ERROR: "+err.Error())
		return t
	}

	measure := func(name string, count int, op func() (xmltree.NodeID, int)) {
		var pagesSum int64
		maxGrowth := 0
		violations := 0
		for i := 0; i < count; i++ {
			before, err := ss.TransitionCount()
			if err != nil {
				t.Notes = append(t.Notes, "ERROR: "+err.Error())
				return
			}
			w0 := pool.Pager().Stats().Writes
			if err := pool.FlushAll(); err != nil {
				t.Notes = append(t.Notes, "ERROR: "+err.Error())
				return
			}
			w0 = pool.Pager().Stats().Writes
			_, expected := op()
			if err := pool.FlushAll(); err != nil {
				t.Notes = append(t.Notes, "ERROR: "+err.Error())
				return
			}
			pagesSum += pool.Pager().Stats().Writes - w0
			after, err := ss.TransitionCount()
			if err != nil {
				t.Notes = append(t.Notes, "ERROR: "+err.Error())
				return
			}
			growth := after - before
			if growth > maxGrowth {
				maxGrowth = growth
			}
			if growth > expected {
				violations++
			}
		}
		t.AddRow(name, fmt.Sprintf("%d", count),
			fmt.Sprintf("%.1f", float64(pagesSum)/float64(count)),
			fmt.Sprintf("%d", maxGrowth),
			fmt.Sprintf("%d", violations))
	}

	measure("node accessibility flip", 50, func() (xmltree.NodeID, int) {
		n := xmltree.NodeID(rng.Intn(doc.Len()))
		s := acl.SubjectID(rng.Intn(subjects))
		if err := ss.SetNodeAccess(n, s, rng.Intn(2) == 0); err != nil {
			panic(err)
		}
		return n, 2
	})
	measure("subtree accessibility flip", 30, func() (xmltree.NodeID, int) {
		n := xmltree.NodeID(rng.Intn(doc.Len()))
		s := acl.SubjectID(rng.Intn(subjects))
		if err := ss.SetSubtreeAccess(n, s, rng.Intn(2) == 0); err != nil {
			panic(err)
		}
		return n, 2
	})
	measure("subtree delete", 10, func() (xmltree.NodeID, int) {
		n := xmltree.NodeID(1 + rng.Intn(ss.Store().NumNodes()-1))
		if err := ss.DeleteSubtree(n); err != nil {
			panic(err)
		}
		return n, 2
	})
	// The N/B claim: flipping ever-larger subtrees writes proportionally
	// many consecutive pages. Pick targets near each size bucket.
	for _, target := range []int{100, 1000, 5000} {
		target := target
		var best xmltree.NodeID
		bestDiff := 1 << 30
		for n := 0; n < doc.Len(); n++ {
			d := doc.SubtreeSize(xmltree.NodeID(n)) - target
			if d < 0 {
				d = -d
			}
			if d < bestDiff {
				bestDiff = d
				best = xmltree.NodeID(n)
			}
		}
		size := doc.SubtreeSize(best)
		measure(fmt.Sprintf("subtree flip (~%d nodes)", size), 4, func() (xmltree.NodeID, int) {
			if err := ss.SetSubtreeAccess(best, acl.SubjectID(rng.Intn(subjects)), rng.Intn(2) == 0); err != nil {
				panic(err)
			}
			return best, 2
		})
	}
	t.Notes = append(t.Notes,
		"Proposition 1: each accessibility or structural update adds at most 2 transition nodes",
		"subtree updates write ~N/B consecutive pages (N = subtree size, B = nodes/page)")
	return t
}
