package bench

import (
	"fmt"
	"time"

	"dolxml/internal/query"
	"dolxml/internal/xmark"
	"dolxml/internal/xmltree"
)

// coldQuery runs one evaluation from a cold buffer pool, returning the full
// result (including skip counters) and the physical pages read. The decoded-
// block cache deliberately stays warm: its hits still acquire the page
// through the pool, so the Misses counter remains an honest page-read count.
func (e *queryEnv) coldQuery(pt *query.PatternTree, opts query.Options) (*query.Result, int64, time.Duration, error) {
	if err := e.pool.DropAll(); err != nil {
		return nil, 0, 0, err
	}
	e.pool.ResetStats()
	start := time.Now()
	res, err := e.ev.Evaluate(pt, opts)
	if err != nil {
		return nil, 0, 0, err
	}
	return res, e.pool.Stats().Misses, time.Since(start), nil
}

func equalNodes(a, b []xmltree.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// PageSkip measures structure-aware page skipping (the per-page summary
// layer fused with the access deny bitmap) on the Table 1 workload: every
// query runs under both secure semantics with summaries enabled and
// disabled, from a cold pool each time. The guarantees under test: answers
// are byte-identical either way, and the enabled runs never read more pages
// — strictly fewer wherever a child scan crosses blocks that hold none of
// its tags (Q1–Q3 boundary pages; Q4–Q6 have no child scans below the
// root, so their delta is zero by construction). Any breach is recorded as
// a "VIOLATION:" note, which `dolbench -strict` turns into a failure.
func PageSkip(cfg Config) []*Table {
	// Quarter-size blocks sharpen page granularity: with the default 4 KiB
	// blocks a handful of pages holds entire XMark sections and there is
	// little boundary to skip at bench scale.
	small := cfg
	small.PageSize = cfg.PageSize / 4
	if small.PageSize < 256 {
		small.PageSize = 256
	}

	doc := xmark.Generate(xmark.Scaled(cfg.Seed, cfg.XMarkNodes))
	m := singleSubjectACL(doc, cfg.Seed+23, 70)

	t := &Table{
		ID: "pageskip",
		Title: fmt.Sprintf("structure-aware page skipping, Q1–Q6 × semantics × summaries (XMark, %d nodes, %d B pages)",
			doc.Len(), small.PageSize),
		Columns: []string{"query", "semantics", "summaries",
			"pages", "skipStruct", "skipAccess", "time", "answers"},
	}

	env, err := buildQueryEnv(small, doc, m)
	if err != nil {
		t.Notes = append(t.Notes, "ERROR: "+err.Error())
		return []*Table{t}
	}
	view := env.ss.ViewSubject(0)

	semantics := []struct {
		name string
		opts query.Options
	}{
		{"bindings", query.Options{View: view}},
		{"pruned", query.Options{View: view, Semantics: query.SemanticsPrunedSubtree}},
	}

	for _, q := range Table1 {
		pt := query.MustParse(q.Expr)
		for _, sem := range semantics {
			type arm struct {
				res   *query.Result
				pages int64
				time  time.Duration
			}
			var arms [2]arm // [0] = summaries on, [1] = off
			for i, disable := range []bool{false, true} {
				opts := sem.opts
				opts.Parallelism = 1
				opts.DisableSummarySkip = disable
				// This experiment isolates the per-page summaries: path
				// routing stays off in both arms (the pathsummary
				// experiment owns that ablation).
				opts.DisablePathSummary = true
				res, pages, elapsed, err := env.coldQuery(pt, opts)
				if err != nil {
					t.Notes = append(t.Notes, "ERROR: "+err.Error())
					return []*Table{t}
				}
				arms[i] = arm{res: res, pages: pages, time: elapsed}
				label := "on"
				if disable {
					label = "off"
				}
				t.AddRow(q.Name, sem.name, label,
					fmt.Sprintf("%d", pages),
					fmt.Sprintf("%d", res.Skips.StructPages),
					fmt.Sprintf("%d", res.Skips.AccessPages),
					elapsed.Round(time.Microsecond).String(),
					fmt.Sprintf("%d", len(res.Nodes)))
			}
			if !equalNodes(arms[0].res.Nodes, arms[1].res.Nodes) {
				t.Notes = append(t.Notes, fmt.Sprintf(
					"VIOLATION: %s/%s answers differ with summaries enabled", q.Name, sem.name))
			}
			if arms[0].pages > arms[1].pages {
				t.Notes = append(t.Notes, fmt.Sprintf(
					"VIOLATION: %s/%s read %d pages with summaries vs %d without",
					q.Name, sem.name, arms[0].pages, arms[1].pages))
			}
		}
	}
	t.Notes = append(t.Notes,
		"summaries on must never read more pages than off, with byte-identical answers",
		"Q4–Q6 run descendant-axis candidate matching with no child scans, so their page counts match by design")
	return []*Table{t}
}
