package bench

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"dolxml/internal/storage"
	"dolxml/internal/xmark"
	"dolxml/securexml"
)

// WAL measures what the write-ahead log costs and what it buys. Two
// identical file-backed stores — one journaled, one with the WAL disabled
// — receive the same deterministic update sequence (node ACL toggles,
// subtree ACL toggles, structural inserts and deletes), and the per-update
// latency of each arm is reported with its ratio. The self-checks: both
// arms must give identical Q1–Q6 answers under both secure semantics
// afterwards, and a crash injected between commit and page write-back must
// recover on reopen with exactly one redone batch. The recovery table
// reports that reopen time next to a clean one.
func WAL(cfg Config) []*Table {
	ops := &Table{
		ID:      "wal",
		Title:   "update latency with and without the write-ahead log",
		Columns: []string{"update", "runs", "wal", "no-wal", "wal/no-wal"},
	}
	rec := &Table{
		ID:      "walrecovery",
		Title:   "store reopen time, clean vs crash recovery",
		Columns: []string{"scenario", "time", "redone batches"},
	}
	tables := []*Table{ops, rec}
	fail := func(err error) []*Table {
		ops.Notes = append(ops.Notes, "ERROR: "+err.Error())
		return tables
	}

	nodes := cfg.XMarkNodes / 20
	if nodes < 1500 {
		nodes = 1500
	}
	doc := xmark.Generate(xmark.Scaled(cfg.Seed+31, nodes))
	var xb strings.Builder
	if err := doc.WriteXML(&xb); err != nil {
		return fail(err)
	}
	ops.Title += fmt.Sprintf(" (XMark, %d nodes, %d B pages)", doc.Len(), cfg.PageSize)

	build := func(disableWAL bool) (*securexml.Store, string, error) {
		dir, err := os.MkdirTemp("", "dolbench-wal")
		if err != nil {
			return nil, "", err
		}
		s, err := securexml.NewBuilder().
			LoadXMLString(xb.String()).
			AddGroup("staff").
			AddUser("u").
			AddMember("staff", "u").
			Grant("staff", "read", "/site").
			Seal(securexml.StoreOptions{
				Path:       filepath.Join(dir, "pages.db"),
				PageSize:   cfg.PageSize,
				PoolPages:  cfg.PoolPages,
				DisableWAL: disableWAL,
			})
		if err != nil {
			return nil, dir, err
		}
		if err := s.Save(dir); err != nil {
			s.Close()
			return nil, dir, err
		}
		return s, dir, nil
	}
	walStore, walDir, err := build(false)
	if walDir != "" {
		defer os.RemoveAll(walDir)
	}
	if err != nil {
		return fail(err)
	}
	noStore, noDir, err := build(true)
	if noDir != "" {
		defer os.RemoveAll(noDir)
	}
	if err != nil {
		walStore.Close()
		return fail(err)
	}
	defer noStore.Close()

	// first resolves the i-th (cycling) match of xpath in s, outside any
	// timed section; both arms resolve against their own store, so the
	// sequences stay identical even as structural updates shift node IDs.
	first := func(s *securexml.Store, xpath string, i int) (securexml.NodeID, error) {
		ms, err := s.QueryUnrestricted(xpath)
		if err != nil {
			return securexml.InvalidNode, err
		}
		if len(ms) == 0 {
			return securexml.InvalidNode, fmt.Errorf("no match for %s", xpath)
		}
		return ms[i%len(ms)].Node, nil
	}
	const fragment = "<parlist><listitem><text>wal bench probe</text></listitem></parlist>"
	kinds := []struct {
		name    string
		prepare func(s *securexml.Store, i int) (func() error, error)
	}{
		{"acl node toggle", func(s *securexml.Store, i int) (func() error, error) {
			n, err := first(s, "//listitem//keyword", i)
			if err != nil {
				return nil, err
			}
			return func() error { return s.SetAccess("staff", "read", n, i%2 == 0, false) }, nil
		}},
		{"acl subtree toggle", func(s *securexml.Store, i int) (func() error, error) {
			n, err := first(s, "//parlist", i)
			if err != nil {
				return nil, err
			}
			return func() error { return s.SetAccess("staff", "read", n, i%2 == 0, true) }, nil
		}},
		{"insert fragment", func(s *securexml.Store, i int) (func() error, error) {
			n, err := first(s, "/site/regions/africa/item", i)
			if err != nil {
				return nil, err
			}
			return func() error { return s.InsertXML(n, securexml.InvalidNode, fragment) }, nil
		}},
		{"delete subtree", func(s *securexml.Store, i int) (func() error, error) {
			// Deletes consume the fragments the insert kind added.
			n, err := first(s, "/site/regions/africa/item/parlist", 0)
			if err != nil {
				return nil, err
			}
			return func() error { return s.Delete(n) }, nil
		}},
	}

	runs := 2 * cfg.QueryRuns
	arms := []struct {
		name  string
		store *securexml.Store
	}{{"wal", walStore}, {"no-wal", noStore}}
	for _, k := range kinds {
		var elapsed [2]time.Duration
		for i := 0; i < runs; i++ {
			for a, arm := range arms {
				op, err := k.prepare(arm.store, i)
				if err != nil {
					return fail(fmt.Errorf("%s (%s): %w", k.name, arm.name, err))
				}
				start := time.Now()
				if err := op(); err != nil {
					return fail(fmt.Errorf("%s (%s): %w", k.name, arm.name, err))
				}
				elapsed[a] += time.Since(start)
			}
		}
		mean := func(d time.Duration) time.Duration {
			return (d / time.Duration(runs)).Round(time.Microsecond)
		}
		ops.AddRow(k.name, fmt.Sprintf("%d", runs),
			mean(elapsed[0]).String(), mean(elapsed[1]).String(),
			fmt.Sprintf("%.2f", float64(elapsed[0])/float64(elapsed[1])))
	}

	// Self-check: the journaled and unjournaled arms must be observably
	// identical after the same update sequence.
	for _, q := range Table1 {
		for _, sem := range []struct {
			name string
			eval func(s *securexml.Store) ([]securexml.Match, error)
		}{
			{"bindings", func(s *securexml.Store) ([]securexml.Match, error) { return s.Query("u", "read", q.Expr) }},
			{"pruned", func(s *securexml.Store) ([]securexml.Match, error) { return s.QueryPruned("u", "read", q.Expr) }},
		} {
			a, err := sem.eval(walStore)
			if err != nil {
				return fail(err)
			}
			b, err := sem.eval(noStore)
			if err != nil {
				return fail(err)
			}
			same := len(a) == len(b)
			for i := 0; same && i < len(a); i++ {
				same = a[i].Node == b[i].Node
			}
			if !same {
				ops.Notes = append(ops.Notes, fmt.Sprintf(
					"VIOLATION: %s/%s answers diverge between the WAL and no-WAL arms", q.Name, sem.name))
			}
		}
	}
	ops.Notes = append(ops.Notes,
		"both arms must answer the Table 1 workload identically after the sequence",
		"the wal arm pays one log write + fsync per update batch on top of the page writes")

	// Recovery: time a clean reopen, then crash an update between its
	// commit record and the page write-back and time the reopen that has
	// to redo the batch.
	if err := walStore.Close(); err != nil {
		return fail(err)
	}
	start := time.Now()
	clean, err := securexml.Open(walDir, securexml.StoreOptions{})
	if err != nil {
		return fail(err)
	}
	cleanTime := time.Since(start)
	rec.AddRow("clean open", cleanTime.Round(time.Microsecond).String(),
		fmt.Sprintf("%d", clean.Recovery().Redone))
	if clean.Recovery().Redone != 0 {
		rec.Notes = append(rec.Notes, "VIOLATION: clean reopen redid batches")
	}
	if err := clean.Close(); err != nil {
		return fail(err)
	}

	var fp *storage.FaultPager
	victim, err := securexml.Open(walDir, securexml.StoreOptions{
		WrapPager: func(p storage.Pager) storage.Pager {
			fp = storage.NewFaultPager(p)
			return fp
		},
	})
	if err != nil {
		return fail(err)
	}
	fp.Arm(storage.Fault{Op: storage.FaultWrite, N: 1})
	target, err := first(victim, "//parlist", 0)
	if err == nil {
		err = victim.SetAccess("staff", "read", target, false, true)
	}
	if !errors.Is(err, storage.ErrInjected) {
		return fail(fmt.Errorf("crash injection did not trip: %v", err))
	}
	_ = victim.Close()

	start = time.Now()
	recovered, err := securexml.Open(walDir, securexml.StoreOptions{})
	if err != nil {
		return fail(fmt.Errorf("recovery open: %w", err))
	}
	recTime := time.Since(start)
	defer recovered.Close()
	rec.AddRow("crash recovery open", recTime.Round(time.Microsecond).String(),
		fmt.Sprintf("%d", recovered.Recovery().Redone))
	if recovered.Recovery().Redone != 1 {
		rec.Notes = append(rec.Notes, fmt.Sprintf(
			"VIOLATION: crash recovery redid %d batches, want 1", recovered.Recovery().Redone))
	}
	if acc, err := recovered.UserAccessible("u", "read", target); err != nil {
		return fail(err)
	} else if acc {
		rec.Notes = append(rec.Notes,
			"VIOLATION: recovered store lost the committed revocation")
	}
	rec.Notes = append(rec.Notes,
		"recovery redoes the committed batch whose pages never reached the store, then checkpoints")
	return tables
}
