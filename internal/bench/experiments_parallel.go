package bench

import (
	"fmt"
	"runtime"
	"time"

	"dolxml/internal/query"
	"dolxml/internal/xmark"
)

// ParallelWorkerCounts are the Options.Parallelism settings the parallel
// experiment sweeps.
var ParallelWorkerCounts = []int{1, 2, 4, 8}

// Parallel measures the parallel secure-evaluation pipeline: every Table 1
// query (Q1–Q6) runs under the bindings semantics at increasing worker
// counts over one in-memory store, reporting wall-clock time and speedup
// relative to sequential (Parallelism = 1) evaluation. Answers are verified
// identical across worker counts — parallel evaluation is required to be
// result-deterministic.
//
// The emitted rows are machine-readable via the -json flag of cmd/dolbench
// (BENCH_parallel.json), so the performance trajectory can be diffed across
// changes.
func Parallel(cfg Config) []*Table {
	doc := xmark.Generate(xmark.Scaled(cfg.Seed, cfg.XMarkNodes))
	t := &Table{
		ID: "parallel",
		Title: fmt.Sprintf("parallel secure evaluation, Q1–Q6 (XMark, %d nodes, GOMAXPROCS=%d)",
			doc.Len(), runtime.GOMAXPROCS(0)),
		Columns: []string{"query", "workers", "time", "speedup", "answers"},
	}
	m := singleSubjectACL(doc, cfg.Seed+17, 70)
	env, err := buildQueryEnv(cfg, doc, m)
	if err != nil {
		t.Notes = append(t.Notes, "ERROR: "+err.Error())
		return []*Table{t}
	}
	view := env.ss.ViewSubject(0)
	runs := cfg.QueryRuns
	if runs < 3 {
		runs = 3
	}
	for _, q := range Table1 {
		pt := query.MustParse(q.Expr)
		var baseTime time.Duration
		baseAns := -1
		for _, workers := range ParallelWorkerCounts {
			opts := query.Options{View: view, Parallelism: workers}
			elapsed, answers, _, err := env.timeQuery(pt, opts, runs)
			if err != nil {
				t.Notes = append(t.Notes, "ERROR: "+err.Error())
				return []*Table{t}
			}
			if baseAns < 0 {
				baseTime, baseAns = elapsed, answers
			} else if answers != baseAns {
				t.Notes = append(t.Notes, fmt.Sprintf(
					"ERROR: %s with %d workers returned %d answers, sequential returned %d",
					q.Name, workers, answers, baseAns))
			}
			t.AddRow(q.Name,
				fmt.Sprintf("%d", workers),
				elapsed.Round(time.Microsecond).String(),
				fmt.Sprintf("%.2f", float64(baseTime)/float64(elapsed)),
				fmt.Sprintf("%d", answers))
		}
	}
	t.Notes = append(t.Notes,
		"speedup = sequential time / parallel time, best-of-runs warm timings, in-memory pager",
		"answers must be identical at every worker count (deterministic merge)")
	return []*Table{t}
}
