package bench

import (
	"context"
	"fmt"
	"time"

	"dolxml/internal/obs"
	"dolxml/internal/query"
	"dolxml/internal/xmark"
)

// timePerOp measures one primitive's cost by timing n back-to-back calls.
func timePerOp(n int, f func()) time.Duration {
	start := time.Now()
	for i := 0; i < n; i++ {
		f()
	}
	return time.Since(start) / time.Duration(n)
}

// Obs measures what the observability layer costs on the Table 1 workload.
// Two claims are under test. First, with tracing disabled (the default),
// the instrumentation left in the hot paths — atomic counter increments
// and one nil context lookup per page get — must account for under 3 % of
// warm query time; the estimate multiplies the per-op microbenchmark cost
// by the number of instrumented operations the query actually performed
// (from the same counters). Second, attaching a trace must cost an
// amortized constant per event, reported as the traced-vs-untraced delta.
// Breaches of the 3 % bound are recorded as "VIOLATION:" notes, which
// `dolbench -strict` turns into a failure.
func Obs(cfg Config) []*Table {
	doc := xmark.Generate(xmark.Scaled(cfg.Seed, cfg.XMarkNodes))
	m := singleSubjectACL(doc, cfg.Seed+23, 70)

	t := &Table{
		ID: "obs",
		Title: fmt.Sprintf("observability overhead, Q1–Q6 warm (XMark, %d nodes, %d B pages)",
			doc.Len(), cfg.PageSize),
		Columns: []string{"query", "untraced", "traced", "traceΔ",
			"events", "instrOps", "estInstr"},
	}

	env, err := buildQueryEnv(cfg, doc, m)
	if err != nil {
		t.Notes = append(t.Notes, "ERROR: "+err.Error())
		return []*Table{t}
	}
	view := env.ss.ViewSubject(0)

	// Per-op costs of the primitives the instrumentation adds. A pool get
	// pays roughly two counter increments (gets, hit-or-miss) and one
	// trace lookup on a traceless context; cache and view layers pay one
	// or two increments per touch.
	const ops = 1 << 20
	var c obs.Counter
	incCost := timePerOp(ops, func() { c.Inc() })
	bg := context.Background()
	lookupCost := timePerOp(ops, func() { obs.TraceFromContext(bg) })
	h := &obs.Histogram{}
	obsCost := timePerOp(ops, func() { h.Observe(4096) })
	t.Notes = append(t.Notes, fmt.Sprintf(
		"primitive costs: counter inc %s, nil trace lookup %s, histogram observe %s",
		incCost, lookupCost, obsCost))

	runs := cfg.QueryRuns
	if runs < 3 {
		runs = 3
	}
	for _, q := range Table1 {
		pt := query.MustParse(q.Expr)
		opts := query.Options{View: view, Parallelism: 1}

		// Warm the pool and decode cache, then count the instrumented
		// operations one evaluation performs.
		if _, err := env.ev.Evaluate(pt, opts); err != nil {
			t.Notes = append(t.Notes, "ERROR: "+err.Error())
			return []*Table{t}
		}
		env.pool.ResetStats()
		decBefore := env.ss.Store().DecodeCacheStats()
		if _, err := env.ev.Evaluate(pt, opts); err != nil {
			t.Notes = append(t.Notes, "ERROR: "+err.Error())
			return []*Table{t}
		}
		gets := env.pool.Stats().Gets
		dec := env.ss.Store().DecodeCacheStats()
		decOps := (dec.Hits - decBefore.Hits) + (dec.Misses - decBefore.Misses)
		instrOps := gets*2 + decOps

		best := func(traced bool) (time.Duration, int) {
			bestT := time.Duration(1<<62 - 1)
			events := 0
			for i := 0; i < runs; i++ {
				o := opts
				ctx := bg
				var tr *obs.Trace
				if traced {
					tr = obs.NewTrace()
					o.Trace = tr
					ctx = obs.WithTrace(bg, tr)
				}
				start := time.Now()
				if _, err := env.ev.EvaluateCtx(ctx, pt, o); err != nil {
					t.Notes = append(t.Notes, "ERROR: "+err.Error())
					return 0, 0
				}
				if d := time.Since(start); d < bestT {
					bestT = d
				}
				if traced {
					events = len(tr.Events())
				}
			}
			return bestT, events
		}
		untraced, _ := best(false)
		traced, events := best(true)
		if untraced == 0 || traced == 0 {
			return []*Table{t}
		}

		// Estimated share of the untraced run spent in instrumentation:
		// every instrumented op pays one atomic increment, and every pool
		// get additionally pays the nil trace lookup.
		instr := time.Duration(instrOps)*incCost + time.Duration(gets)*lookupCost
		estPct := 100 * float64(instr) / float64(untraced)
		deltaPct := 100 * (float64(traced) - float64(untraced)) / float64(untraced)

		t.AddRow(q.Name,
			untraced.Round(time.Microsecond).String(),
			traced.Round(time.Microsecond).String(),
			fmt.Sprintf("%+.1f%%", deltaPct),
			fmt.Sprintf("%d", events),
			fmt.Sprintf("%d", instrOps),
			fmt.Sprintf("%.2f%%", estPct))
		// The percentage bound only means something once the query does
		// real work: below a millisecond, fixed per-query costs dominate
		// and the share estimate is noise, not instrumentation.
		if estPct >= 3 && untraced >= time.Millisecond {
			t.Notes = append(t.Notes, fmt.Sprintf(
				"VIOLATION: %s estimated instrumentation share %.2f%% >= 3%% with tracing disabled",
				q.Name, estPct))
		}
	}
	t.Notes = append(t.Notes,
		"untraced/traced are best-of warm runs; estInstr = instrumented ops x microbenchmarked per-op cost / untraced time",
		"with tracing disabled the hot paths keep only atomic increments and a nil context lookup per pool get")
	return []*Table{t}
}
