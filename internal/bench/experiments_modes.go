package bench

import (
	"fmt"

	"dolxml/internal/acl"
	"dolxml/internal/dol"
	"dolxml/internal/synthacl"
	"dolxml/internal/xmltree"
)

// Modes explores the paper's footnote-2 conjecture ("there may also exist
// correlations among action modes ... we believe our approach can also
// exploit [them]"): it compares three layouts of a multi-mode LiveLink-like
// access control set —
//
//  1. separate: one DOL per action mode, each with its own codebook (the
//     paper's presentation);
//  2. shared-codebook: one DOL per mode over a single shared codebook
//     (modes reuse identical ACLs);
//  3. combined: one DOL whose codebook columns range over
//     (subject, mode) pairs, the layout the securexml facade uses —
//     transitions merge whenever *all* modes agree.
func Modes(cfg Config) *Table {
	data := synthacl.LiveLink(cfg.LiveLink)
	doc := data.Doc
	numSubjects := data.Dir.Len()
	numModes := len(data.Matrices)

	t := &Table{
		ID:      "modes",
		Title:   fmt.Sprintf("exploiting mode correlations (LiveLink-like, %d items, %d subjects, %d modes)", doc.Len(), numSubjects, numModes),
		Columns: []string{"layout", "transitions", "codebookEntries", "codebookBytes", "totalBytes"},
	}

	// 1. Separate labelings and codebooks.
	sepTrans, sepEntries, sepCBBytes := 0, 0, 0
	for _, m := range data.Matrices {
		lab := dol.FromMatrix(m)
		sepTrans += lab.NumTransitions()
		sepEntries += lab.Codebook().Len()
		sepCBBytes += lab.Codebook().Bytes()
	}
	t.AddRow("separate (one DOL+codebook per mode)",
		fmt.Sprintf("%d", sepTrans), fmt.Sprintf("%d", sepEntries),
		fmt.Sprintf("%d", sepCBBytes), fmt.Sprintf("%d", sepCBBytes+2*sepTrans))

	// 2. Per-mode labelings over one shared codebook.
	shared := dol.NewCodebook(numSubjects)
	shTrans := 0
	for _, m := range data.Matrices {
		sb := dol.NewStreamBuilder(shared)
		for n := 0; n < doc.Len(); n++ {
			sb.Append(m.Row(xmltree.NodeID(n)))
		}
		shTrans += sb.Finish().NumTransitions()
	}
	t.AddRow("shared codebook (one DOL per mode)",
		fmt.Sprintf("%d", shTrans), fmt.Sprintf("%d", shared.Len()),
		fmt.Sprintf("%d", shared.Bytes()), fmt.Sprintf("%d", shared.Bytes()+2*shTrans))

	// 3. Combined (subject, mode) columns, one DOL.
	combined := acl.NewMatrix(doc.Len(), numSubjects*numModes)
	for mi, m := range data.Matrices {
		for n := 0; n < doc.Len(); n++ {
			for s := 0; s < numSubjects; s++ {
				if m.Accessible(xmltree.NodeID(n), acl.SubjectID(s)) {
					combined.Set(xmltree.NodeID(n), acl.SubjectID(s*numModes+mi), true)
				}
			}
		}
	}
	lab := dol.FromMatrix(combined)
	t.AddRow("combined (subject x mode columns, one DOL)",
		fmt.Sprintf("%d", lab.NumTransitions()), fmt.Sprintf("%d", lab.Codebook().Len()),
		fmt.Sprintf("%d", lab.Codebook().Bytes()),
		fmt.Sprintf("%d", lab.Codebook().Bytes()+2*lab.NumTransitions()))

	t.Notes = append(t.Notes,
		"paper footnote 2: correlations among action modes can be exploited like subject correlations",
		"combined columns store each node's rights once; separate DOLs repeat structure per mode")
	return t
}
