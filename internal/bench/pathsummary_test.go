package bench

import "testing"

// The pathsummary experiment table must carry no VIOLATION notes: answers
// byte-identical across routing on/off × semantics × parallelism, routed
// runs never reading more pages, strict reductions on the descendant
// twigs, and the unsatisfiable query answered from zero pages. The CI
// smoke mirrors this via dolbench -exp pathsummary -strict.
func TestPathSummaryShape(t *testing.T) {
	tb := runQuick(t, "pathsummary")[0]
	for _, note := range tb.Notes {
		if len(note) >= 9 && note[:9] == "VIOLATION" {
			t.Error(note)
		}
	}
	// Rows interleave routing on/off per query×semantics×parallelism;
	// compare adjacent pairs.
	for i := 0; i+1 < len(tb.Rows); i += 2 {
		on, offRow := tb.Rows[i], tb.Rows[i+1]
		if on[0] != offRow[0] || on[3] != "on" || offRow[3] != "off" {
			t.Fatalf("row pairing broken at %d: %v / %v", i, on, offRow)
		}
		pOn := cellInt(t, on[4])
		pOff := cellInt(t, offRow[4])
		if on[2] == "1" && pOn > pOff {
			t.Errorf("%s/%s: %d pages with routing vs %d without", on[0], on[1], pOn, pOff)
		}
		if on[8] != offRow[8] {
			t.Errorf("%s/%s: answer counts differ (%s vs %s)", on[0], on[1], on[8], offRow[8])
		}
		if on[0] == "Qunsat" {
			if pOn != 0 {
				t.Errorf("unsatisfiable query pinned %d pages with routing; want 0", pOn)
			}
			if pOff == 0 {
				t.Error("unsatisfiable query read no pages even without routing; contrast lost")
			}
		}
	}
}
