package bench

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"dolxml/internal/xmark"
	"dolxml/securexml"
	"dolxml/securexml/registry"
)

// Multitenant validates the registry serve path at fleet scale: cfg.Tenants
// stores served through one registry with MaxOpen far below the tenant
// count, one shared buffer-pool byte budget, mixed read/update traffic, and
// LRU eviction churning stores in and out mid-workload.
//
// Two arms run the identical per-tenant update sequence:
//
//   - isolated: every tenant opened alone, updates applied sequentially —
//     the ground truth.
//   - registry: all tenants updated concurrently through registry handles
//     (one updater per tenant, acquiring per batch so the LRU churns),
//     with open-loop readers querying random tenants throughout and a
//     sampler watching the global pool budget.
//
// Self-checks, each breach a "VIOLATION:" note (failing `dolbench
// -strict`):
//
//   - After the registry arm quiesces, every tenant's query fingerprint
//     (the Table 1 workload, plain and pruned) must match its isolated-arm
//     fingerprint byte for byte — eviction, draining, and budget
//     rebalancing may never change an answer.
//   - The summed buffer-pool bytes of all open stores must stay within the
//     global budget at every sample.
//   - Evictions must actually happen (MaxOpen < Tenants makes the LRU
//     churn part of the test, not an accident of sizing).
func Multitenant(cfg Config) []*Table {
	t := &Table{
		ID:    "multitenant",
		Title: "multi-tenant registry vs isolated stores",
		Columns: []string{"arm", "tenants", "max open", "pool budget B", "peak pool B",
			"opens", "evictions", "updates", "elapsed", "fingerprints"},
	}
	tables := []*Table{t}
	fail := func(err error) []*Table {
		t.Notes = append(t.Notes, "ERROR: "+err.Error())
		return tables
	}

	tenants := cfg.Tenants
	if tenants < 2 {
		tenants = 2
	}
	nodes := cfg.XMarkNodes / 50
	if nodes < 300 {
		nodes = 300
	}
	opsPerTenant := 40
	if cfg.XMarkNodes < 50000 {
		opsPerTenant = 12
	}
	maxOpen := tenants / 3
	if maxOpen < 2 {
		maxOpen = 2
	}
	// A budget tight enough that fair shares force real eviction pressure,
	// but above tenants × MinPoolPages so every store keeps a working set.
	poolBudget := int64(tenants) * int64(cfg.PageSize) * 48
	t.Title += fmt.Sprintf(" (%d tenants, ~%d nodes each, %d updates each)", tenants, nodes, opsPerTenant)

	root, err := os.MkdirTemp("", "dolbench-multitenant")
	if err != nil {
		return fail(err)
	}
	defer os.RemoveAll(root)
	armA := filepath.Join(root, "isolated")
	armB := filepath.Join(root, "shared")

	// Build every tenant store once, snapshot into both arms, and plan the
	// per-tenant update sequence against its node IDs.
	ids := make([]string, tenants)
	targets := make([][]securexml.NodeID, tenants)
	for i := 0; i < tenants; i++ {
		ids[i] = fmt.Sprintf("tenant-%02d", i)
		doc := xmark.Generate(xmark.Scaled(cfg.Seed+int64(100+i), nodes))
		var xb strings.Builder
		if err := doc.WriteXML(&xb); err != nil {
			return fail(err)
		}
		dir := filepath.Join(armA, ids[i])
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fail(err)
		}
		s, err := securexml.NewBuilder().
			LoadXMLString(xb.String()).
			AddGroup("staff").
			AddUser("u").
			AddMember("staff", "u").
			Grant("staff", "read", "/site").
			Seal(securexml.StoreOptions{PageSize: cfg.PageSize, PoolPages: 256})
		if err != nil {
			return fail(err)
		}
		if err := s.Save(dir); err != nil {
			s.Close()
			return fail(err)
		}
		ms, err := s.QueryUnrestricted("//keyword")
		if err != nil {
			s.Close()
			return fail(err)
		}
		if err := s.Close(); err != nil {
			return fail(err)
		}
		if len(ms) == 0 {
			return fail(fmt.Errorf("tenant %s has no keyword nodes to toggle", ids[i]))
		}
		for _, m := range ms {
			targets[i] = append(targets[i], m.Node)
		}
		if err := copyDirFiles(dir, filepath.Join(armB, ids[i])); err != nil {
			return fail(err)
		}
	}

	// applyUpdates replays tenant i's deterministic toggle sequence through
	// fn (which supplies a store per batch). Both arms call this with the
	// same sequence, so final states must agree.
	applyUpdates := func(i int, fn func(apply func(s *securexml.Store) error) error) error {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(1000+i)))
		const batch = 4
		for done := 0; done < opsPerTenant; done += batch {
			n := batch
			if opsPerTenant-done < n {
				n = opsPerTenant - done
			}
			if err := fn(func(s *securexml.Store) error {
				for k := 0; k < n; k++ {
					node := targets[i][rng.Intn(len(targets[i]))]
					allowed := rng.Intn(2) == 0
					if err := s.SetAccess("staff", "read", node, allowed, false); err != nil {
						return err
					}
				}
				return nil
			}); err != nil {
				return err
			}
		}
		return nil
	}

	// Arm 1: isolated ground truth.
	want := make([]string, tenants)
	isoStart := time.Now()
	for i := 0; i < tenants; i++ {
		s, err := securexml.Open(filepath.Join(armA, ids[i]), securexml.StoreOptions{PoolPages: 256})
		if err != nil {
			return fail(err)
		}
		if err := applyUpdates(i, func(apply func(*securexml.Store) error) error {
			return apply(s)
		}); err != nil {
			s.Close()
			return fail(err)
		}
		fp, err := writeloadFingerprint(s)
		if err != nil {
			s.Close()
			return fail(err)
		}
		want[i] = fp
		if err := s.Close(); err != nil {
			return fail(err)
		}
	}
	isoElapsed := time.Since(isoStart)
	t.AddRow("isolated", fmt.Sprintf("%d", tenants), "-", "-", "-", "-", "-",
		fmt.Sprintf("%d", tenants*opsPerTenant), isoElapsed.Round(time.Millisecond).String(), "baseline")

	// Arm 2: everything through one registry.
	reg, err := registry.New(registry.Options{
		Root:      armB,
		MaxOpen:   maxOpen,
		PoolBytes: poolBudget,
		Store:     securexml.StoreOptions{},
	})
	if err != nil {
		return fail(err)
	}
	var (
		wg        sync.WaitGroup
		errOnce   sync.Once
		firstErr  error
		peakBytes int64
		budgetBad int64
	)
	report := func(err error) { errOnce.Do(func() { firstErr = err }) }
	regStart := time.Now()
	for i := 0; i < tenants; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			err := applyUpdates(i, func(apply func(*securexml.Store) error) error {
				h, err := reg.Acquire(ids[i])
				if err != nil {
					return err
				}
				defer h.Close()
				return apply(h.Store())
			})
			if err != nil {
				report(fmt.Errorf("tenant %s updates: %w", ids[i], err))
			}
		}(i)
	}
	updatersDone := make(chan struct{})
	go func() { wg.Wait(); close(updatersDone) }()

	var aux sync.WaitGroup
	for w := 0; w < 4; w++ {
		aux.Add(1)
		go func(w int) {
			defer aux.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(9000+w)))
			for {
				select {
				case <-updatersDone:
					return
				default:
				}
				h, err := reg.Acquire(ids[rng.Intn(tenants)])
				if err != nil {
					report(fmt.Errorf("reader acquire: %w", err))
					return
				}
				if _, err := h.Store().Query("u", "read", "//keyword"); err != nil {
					report(fmt.Errorf("reader query: %w", err))
				}
				h.Close()
			}
		}(w)
	}
	aux.Add(1)
	go func() {
		defer aux.Done()
		for {
			use := reg.PoolBytesInUse()
			if use > peakBytes {
				peakBytes = use
			}
			if use > poolBudget {
				budgetBad++
			}
			select {
			case <-updatersDone:
				return
			case <-time.After(time.Millisecond):
			}
		}
	}()
	<-updatersDone
	aux.Wait()
	if firstErr != nil {
		return fail(firstErr)
	}

	// Quiesced: compare every tenant's fingerprint against the isolated arm.
	mismatches := 0
	for i := 0; i < tenants; i++ {
		h, err := reg.Acquire(ids[i])
		if err != nil {
			return fail(err)
		}
		fp, err := writeloadFingerprint(h.Store())
		h.Close()
		if err != nil {
			return fail(err)
		}
		if fp != want[i] {
			mismatches++
		}
	}
	regElapsed := time.Since(regStart)
	snap := reg.MetricsSnapshot()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	err = reg.Close(ctx)
	cancel()
	if err != nil {
		return fail(err)
	}

	match := "all match"
	if mismatches > 0 {
		match = fmt.Sprintf("%d MISMATCH", mismatches)
		t.Notes = append(t.Notes, fmt.Sprintf(
			"VIOLATION: %d of %d tenants answered differently through the registry than isolated", mismatches, tenants))
	}
	if budgetBad > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"VIOLATION: pool bytes in use exceeded the %d B global budget at %d samples (peak %d B)",
			poolBudget, budgetBad, peakBytes))
	}
	if snap.Get("evictions_total") == 0 {
		t.Notes = append(t.Notes, "VIOLATION: no evictions occurred; the LRU churn path went untested")
	}
	t.AddRow("registry", fmt.Sprintf("%d", tenants), fmt.Sprintf("%d", maxOpen),
		fmt.Sprintf("%d", poolBudget), fmt.Sprintf("%d", peakBytes),
		fmt.Sprintf("%d", snap.Get("opens_total")), fmt.Sprintf("%d", snap.Get("evictions_total")),
		fmt.Sprintf("%d", tenants*opsPerTenant), regElapsed.Round(time.Millisecond).String(), match)
	t.Notes = append(t.Notes, fmt.Sprintf(
		"registry arm ran %d concurrent updaters + 4 readers over %d stores with only %d open at once",
		tenants, tenants, maxOpen))
	return tables
}

// copyDirFiles copies the regular files of src into dst (created).
func copyDirFiles(src, dst string) error {
	if err := os.MkdirAll(dst, 0o755); err != nil {
		return err
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		b, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), b, 0o644); err != nil {
			return err
		}
	}
	return nil
}
