package bench

import (
	"fmt"
	"math"
	"math/rand"

	"dolxml/internal/acl"
	"dolxml/internal/cam"
	"dolxml/internal/dol"
	"dolxml/internal/synthacl"
	"dolxml/internal/xmark"
	"dolxml/internal/xmltree"
)

// Fig4a reproduces Figure 4(a): the ratio of CAM labels to DOL transition
// nodes for a single subject on an XMark document with synthetic access
// controls, as the accessibility ratio sweeps 10–90 % at propagation
// ratios 10 %, 30 % and 50 %.
//
// Paper shape: ratios below 1 (CAM smaller) everywhere; ≈ 0.53 at low
// accessibility; CAM's curve is asymmetric (its node count peaks near 60 %
// accessibility) while DOL's transition count is symmetric around 50 %.
func Fig4a(cfg Config) *Table {
	doc := xmark.Generate(xmark.Scaled(cfg.Seed, cfg.XMarkNodes))
	props := []float64{0.1, 0.3, 0.5}
	t := &Table{
		ID:    "fig4a",
		Title: fmt.Sprintf("CAM labels / DOL transition nodes, single subject (XMark, %d nodes)", doc.Len()),
		Columns: []string{"access%", "ratio@prop10%", "ratio@prop30%", "ratio@prop50%",
			"camNodes@30%", "dolNodes@30%"},
	}
	for acc := 0.1; acc < 0.95; acc += 0.1 {
		row := []string{fmt.Sprintf("%.0f", acc*100)}
		var cam30, dol30 int
		for _, prop := range props {
			a := synthacl.Synthetic(doc, synthacl.SynthConfig{
				Seed:               cfg.Seed + int64(acc*1000) + int64(prop*10000),
				PropagationRatio:   prop,
				AccessibilityRatio: acc,
			})
			c := cam.Build(doc, a)
			l := dol.FromAccessibleSet(a, doc.Len())
			ratio := float64(c.Len()) / float64(l.NumTransitions())
			row = append(row, fmt.Sprintf("%.3f", ratio))
			if prop == 0.3 {
				cam30, dol30 = c.Len(), l.NumTransitions()
			}
		}
		row = append(row, fmt.Sprintf("%d", cam30), fmt.Sprintf("%d", dol30))
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"paper: ratio ≈ 0.53 at 10% accessibility, approaching 1 as accessibility grows",
		"paper: DOL peaks at 50% accessibility, CAM peaks near 60% (asymmetric)")
	return t
}

// Fig4b reproduces Figure 4(b): average per-user CAM labels vs DOL
// transition nodes for each action mode of the LiveLink-like system.
//
// Paper shape: DOL has at most 20–25 % more nodes than CAM in the worst
// mode and is comparable elsewhere.
func Fig4b(cfg Config) *Table {
	data := synthacl.LiveLink(cfg.LiveLink)
	rng := rand.New(rand.NewSource(cfg.Seed + 99))
	t := &Table{
		ID:      "fig4b",
		Title:   fmt.Sprintf("per-user CAM labels vs DOL transitions by action mode (LiveLink-like, %d items, %d subjects)", data.Doc.Len(), data.Dir.Len()),
		Columns: []string{"mode", "avgCAM", "avgDOL", "DOL/CAM"},
	}
	for mode, m := range data.Matrices {
		var sumCAM, sumDOL float64
		for k := 0; k < cfg.SampledUsers; k++ {
			u := data.Users[rng.Intn(len(data.Users))]
			col := m.Column(u)
			sumCAM += float64(cam.Build(data.Doc, col).Len())
			sumDOL += float64(dol.FromAccessibleSet(col, data.Doc.Len()).NumTransitions())
		}
		avgCAM := sumCAM / float64(cfg.SampledUsers)
		avgDOL := sumDOL / float64(cfg.SampledUsers)
		t.AddRow(fmt.Sprintf("%d", mode+1),
			fmt.Sprintf("%.1f", avgCAM),
			fmt.Sprintf("%.1f", avgDOL),
			fmt.Sprintf("%.3f", avgDOL/avgCAM))
	}
	t.Notes = append(t.Notes,
		"paper: DOL within 20-25% of CAM in the worst modes, comparable elsewhere")
	return t
}

// subjectCounts returns a roughly geometric ladder of subset sizes up to
// total.
func subjectCounts(total int) []int {
	var out []int
	for _, c := range []int{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 8639} {
		if c < total {
			out = append(out, c)
		}
	}
	return append(out, total)
}

// scalingPoint builds a DOL over a random subject subset and reports its
// codebook entries and transition count.
func scalingPoint(m *acl.Matrix, rng *rand.Rand, count int) (entries, transitions int) {
	perm := rng.Perm(m.NumSubjects())
	subjects := make([]acl.SubjectID, count)
	for i := 0; i < count; i++ {
		subjects[i] = acl.SubjectID(perm[i])
	}
	sub := m.SelectSubjects(subjects)
	l := dol.FromMatrix(sub)
	return l.Codebook().Len(), l.NumTransitions()
}

func scalingTable(id, title, metric string, m *acl.Matrix, seed int64, worst func(s int) string, pick func(e, tr int) int) *Table {
	rng := rand.New(rand.NewSource(seed))
	t := &Table{
		ID:      id,
		Title:   title,
		Columns: []string{"subjects", metric, "worst-case bound"},
	}
	for _, c := range subjectCounts(m.NumSubjects()) {
		e, tr := scalingPoint(m, rng, c)
		t.AddRow(fmt.Sprintf("%d", c), fmt.Sprintf("%d", pick(e, tr)), worst(c))
	}
	return t
}

// Fig5 reproduces Figures 5(a) and 5(b): codebook entries as a function of
// the number of subjects, for the LiveLink-like and Unix-filesystem-like
// datasets.
//
// Paper shape: far below the exponential worst case min(|D|, 2^S) — about
// 40 K entries at 8639 LiveLink subjects, about 855 entries for 247 Unix
// subjects.
func Fig5(cfg Config) []*Table {
	ll := synthacl.LiveLink(cfg.LiveLink)
	fs := synthacl.UnixFS(cfg.UnixFS)
	worst := func(D int) func(int) string {
		return func(s int) string {
			if s >= 31 {
				return fmt.Sprintf("%d", D)
			}
			b := 1 << uint(s)
			if b > D {
				b = D
			}
			return fmt.Sprintf("%d", b)
		}
	}
	pickE := func(e, _ int) int { return e }
	a := scalingTable("fig5a",
		fmt.Sprintf("codebook entries vs subjects (LiveLink-like, %d items)", ll.Doc.Len()),
		"codebookEntries", ll.Matrices[0], cfg.Seed+5, worst(ll.Doc.Len()), pickE)
	a.Notes = append(a.Notes, "paper: ~40000 entries at 8639 subjects — far below min(|D|, 2^S)")
	b := scalingTable("fig5b",
		fmt.Sprintf("codebook entries vs subjects (UnixFS-like, %d files)", fs.Doc.Len()),
		"codebookEntries", fs.Matrices[synthacl.UnixRead], cfg.Seed+6, worst(fs.Doc.Len()), pickE)
	b.Notes = append(b.Notes, "paper: ~855 entries for 247 subjects")
	return []*Table{a, b}
}

// Fig6 reproduces Figures 6(a) and 6(b): transition nodes as a function of
// the number of subjects.
//
// Paper shape: slow growth — all 8639 LiveLink subjects need only ~4x the
// transitions of a single subject; 247 Unix subjects only ~2x the count at
// 50 subjects; density below 1 transition per 100 nodes in both systems.
func Fig6(cfg Config) []*Table {
	ll := synthacl.LiveLink(cfg.LiveLink)
	fs := synthacl.UnixFS(cfg.UnixFS)
	noBound := func(int) string { return "-" }
	pickT := func(_, tr int) int { return tr }
	a := scalingTable("fig6a",
		fmt.Sprintf("transition nodes vs subjects (LiveLink-like, %d items)", ll.Doc.Len()),
		"transitions", ll.Matrices[0], cfg.Seed+7, noBound, pickT)
	a.Notes = append(a.Notes,
		"paper: all subjects ≈ 4x a single subject's transitions; density < 1/100")
	b := scalingTable("fig6b",
		fmt.Sprintf("transition nodes vs subjects (UnixFS-like, %d files)", fs.Doc.Len()),
		"transitions", fs.Matrices[synthacl.UnixRead], cfg.Seed+8, noBound, pickT)
	b.Notes = append(b.Notes,
		"paper: 247 subjects ≈ 2x the transitions of 50 subjects")
	return []*Table{a, b}
}

// Storage reproduces the §5.1.1 storage comparison: DOL vs per-user CAMs
// for a single subject and for the full subject population.
//
// Paper shape: single subject — DOL ~600 transitions vs CAM ~450 labels;
// all 8639 subjects — DOL 188K transitions vs CAM 18.8M labels (three
// orders of magnitude); total bytes ~4 MB codebook + ~400 KB codes for DOL
// vs 46.6 MB for CAM even with unrealistically small 10-byte pointers.
func Storage(cfg Config) *Table {
	data := synthacl.LiveLink(cfg.LiveLink)
	m := data.Matrices[0]
	doc := data.Doc
	S := m.NumSubjects()

	t := &Table{
		ID:      "storage",
		Title:   fmt.Sprintf("DOL vs per-user CAM storage (LiveLink-like mode 1, %d items, %d subjects)", doc.Len(), S),
		Columns: []string{"configuration", "DOL", "CAM"},
	}

	// Single subject: the first user.
	u := data.Users[0]
	col := m.Column(u)
	dol1 := dol.FromAccessibleSet(col, doc.Len())
	cam1 := cam.Build(doc, col)
	t.AddRow("single-user label count",
		fmt.Sprintf("%d transitions", dol1.NumTransitions()),
		fmt.Sprintf("%d labels", cam1.Len()))

	// All subjects: one multi-subject DOL vs one CAM per subject.
	lab := dol.FromMatrix(m)
	camTotal := 0
	for s := 0; s < S; s++ {
		camTotal += cam.Build(doc, m.Column(acl.SubjectID(s))).Len()
	}
	t.AddRow("all-subject label count",
		fmt.Sprintf("%d transitions", lab.NumTransitions()),
		fmt.Sprintf("%d labels", camTotal))

	// Bytes, with the paper's §5.1.1 accounting: 2-byte codes per DOL
	// transition, one bit per subject per codebook entry; CAM charged 2
	// accessibility bits plus an (unrealistically low) 10-byte pointer
	// budget per label.
	dolBytes := lab.Codebook().Bytes() + 2*lab.NumTransitions()
	camBytes := camTotal * 11
	t.AddRow("total bytes",
		fmt.Sprintf("%d (codebook %d + codes %d)", dolBytes, lab.Codebook().Bytes(), 2*lab.NumTransitions()),
		fmt.Sprintf("%d", camBytes))
	t.AddRow("codebook entries", fmt.Sprintf("%d", lab.Codebook().Len()), "-")
	t.AddRow("transition density",
		fmt.Sprintf("1 per %.0f nodes", float64(doc.Len())/float64(lab.NumTransitions())), "-")
	t.Notes = append(t.Notes,
		"paper: three orders of magnitude between all-subject DOL transitions and total CAM labels",
		"paper: density below 1 transition per 100 nodes")
	return t
}

// WorstCase reproduces the §2.1 analysis: with independent, uncorrelated
// subjects the codebook grows exponentially toward min(|D|, 2^S) and the
// number of non-transition nodes shrinks as D(1−T/D)^S.
func WorstCase(cfg Config) *Table {
	rng := rand.New(rand.NewSource(cfg.Seed + 13))
	D := cfg.XMarkNodes / 5
	if D < 2000 {
		D = 2000
	}
	t := &Table{
		ID:      "worstcase",
		Title:   fmt.Sprintf("uncorrelated subjects (%d nodes): exponential codebook growth", D),
		Columns: []string{"subjects", "codebookEntries", "min(D,2^S)", "nonTransitions", "D(1-T/D)^S"},
	}
	// Per-subject labelings with locality but *independent* run
	// boundaries (geometric runs, mean runLen): each node resamples its
	// bit with probability 1/runLen, so transition positions are
	// independent across subjects, matching the paper's analysis.
	const runLen = 16
	for _, S := range []int{1, 2, 4, 8, 12, 16} {
		m := acl.NewMatrix(D, S)
		singleT := 0
		for s := 0; s < S; s++ {
			cur := rng.Intn(2) == 1
			for n := 0; n < D; n++ {
				if n > 0 && rng.Float64() < 1.0/runLen {
					next := rng.Intn(2) == 1
					if next != cur {
						singleT++
					}
					cur = next
				}
				if cur {
					m.Set(xmltree.NodeID(n), acl.SubjectID(s), true)
				}
			}
		}
		lab := dol.FromMatrix(m)
		bound := D
		if S < 31 && 1<<uint(S) < D {
			bound = 1 << uint(S)
		}
		// Average single-subject transition count, measured.
		T1 := float64(singleT) / float64(S)
		predicted := float64(D) * math.Pow(1-T1/float64(D), float64(S))
		t.AddRow(fmt.Sprintf("%d", S),
			fmt.Sprintf("%d", lab.Codebook().Len()),
			fmt.Sprintf("%d", bound),
			fmt.Sprintf("%d", D-lab.NumTransitions()),
			fmt.Sprintf("%.0f", predicted))
	}
	t.Notes = append(t.Notes,
		"paper §2.1: with independent subjects the non-transition count shrinks exponentially",
		"compare with fig5/fig6: correlated real-world subjects avoid this blow-up")
	return t
}
