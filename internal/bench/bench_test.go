package bench

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// runQuick executes one experiment at test scale and returns its tables.
func runQuick(t *testing.T, name string) []*Table {
	t.Helper()
	tables, err := Run(name, QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) == 0 {
		t.Fatalf("%s produced no tables", name)
	}
	for _, tb := range tables {
		if len(tb.Rows) == 0 {
			t.Fatalf("%s: table %s has no rows", name, tb.ID)
		}
		for _, note := range tb.Notes {
			if strings.HasPrefix(note, "ERROR") {
				t.Fatalf("%s: %s", name, note)
			}
		}
	}
	return tables
}

func cellFloat(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		t.Fatalf("cell %q not numeric: %v", cell, err)
	}
	return v
}

func cellInt(t *testing.T, cell string) int {
	t.Helper()
	v, err := strconv.Atoi(cell)
	if err != nil {
		t.Fatalf("cell %q not an int: %v", cell, err)
	}
	return v
}

func TestFig4aShape(t *testing.T) {
	tb := runQuick(t, "fig4a")[0]
	// CAM is never larger than DOL for a single subject (ratio <= ~1).
	for _, row := range tb.Rows {
		for c := 1; c <= 3; c++ {
			if r := cellFloat(t, row[c]); r > 1.2 {
				t.Errorf("access %s: CAM/DOL ratio %f > 1.2 (CAM should win single-subject)", row[0], r)
			}
		}
	}
	// Low accessibility should favor CAM clearly (paper: ~0.53).
	if r := cellFloat(t, tb.Rows[0][2]); r > 0.95 {
		t.Errorf("at 10%% accessibility CAM/DOL = %f; paper has ~0.53", r)
	}
}

func TestFig4bShape(t *testing.T) {
	tb := runQuick(t, "fig4b")
	for _, row := range tb[0].Rows {
		ratio := cellFloat(t, row[3])
		// Paper: DOL within ~25% of CAM per user; allow slack for the
		// simulator but catch order-of-magnitude regressions.
		if ratio > 3 || ratio < 0.2 {
			t.Errorf("mode %s: DOL/CAM per-user ratio %f out of plausible range", row[0], ratio)
		}
	}
}

func TestFig5Sublinear(t *testing.T) {
	for _, tb := range runQuick(t, "fig5") {
		last := tb.Rows[len(tb.Rows)-1]
		subjects := cellInt(t, last[0])
		entries := cellInt(t, last[1])
		// Codebook must stay far below the exponential worst case: for
		// correlated data a loose super-linear bound suffices as a
		// regression tripwire.
		if entries > subjects*subjects {
			t.Errorf("%s: %d entries for %d subjects; correlation lost", tb.ID, entries, subjects)
		}
		// Growth monotone-ish: last <= worst-case column.
	}
}

func TestFig6SlowGrowth(t *testing.T) {
	for _, tb := range runQuick(t, "fig6") {
		first := cellInt(t, tb.Rows[0][1])
		last := cellInt(t, tb.Rows[len(tb.Rows)-1][1])
		firstSubjects := cellInt(t, tb.Rows[0][0])
		lastSubjects := cellInt(t, tb.Rows[len(tb.Rows)-1][0])
		if first == 0 {
			continue
		}
		growth := float64(last) / float64(first)
		subjGrowth := float64(lastSubjects) / float64(firstSubjects)
		// Paper: transitions grow far slower than the subject count.
		if growth > subjGrowth {
			t.Errorf("%s: transitions grew %.1fx for %.1fx subjects; should be sublinear", tb.ID, growth, subjGrowth)
		}
	}
}

func TestStorageShape(t *testing.T) {
	tb := runQuick(t, "storage")[0]
	// Row 1: all-subject label counts — DOL transitions must be far
	// below total CAM labels.
	dolCell := tb.Rows[1][1]
	camCell := tb.Rows[1][2]
	dolN := cellInt(t, strings.Fields(dolCell)[0])
	camN := cellInt(t, strings.Fields(camCell)[0])
	// At paper scale the gap is three orders of magnitude; at test scale
	// we assert the direction and at least a 2x gap.
	if dolN*2 > camN {
		t.Errorf("all-subject: DOL %d vs CAM %d; expected a clear multi-subject win", dolN, camN)
	}
}

func TestFig7Shape(t *testing.T) {
	tables := runQuick(t, "fig7")
	if len(tables) != 3 {
		t.Fatalf("fig7 produced %d tables, want 3 (Q1-Q3)", len(tables))
	}
	for _, tb := range tables {
		for _, row := range tb.Rows {
			// Secure answers never exceed plain answers.
			sec := cellInt(t, row[3])
			plain := cellInt(t, row[4])
			if sec > plain {
				t.Errorf("%s access %s: secure answers %d > plain %d", tb.ID, row[0], sec, plain)
			}
			// Secure pages never exceed plain pages (no extra I/O).
			secP := cellInt(t, row[5])
			plainP := cellInt(t, row[6])
			if secP > plainP {
				t.Errorf("%s access %s: secure pages %d > plain %d (access checks must be free)", tb.ID, row[0], secP, plainP)
			}
		}
	}
}

func TestJoinsShape(t *testing.T) {
	tables := runQuick(t, "joins")
	if len(tables) != 3 {
		t.Fatalf("joins produced %d tables, want 3 (Q4-Q6)", len(tables))
	}
	for _, tb := range tables {
		for _, row := range tb.Rows {
			plain := cellInt(t, row[1])
			bind := cellInt(t, row[2])
			pruned := cellInt(t, row[3])
			if !(pruned <= bind && bind <= plain) {
				t.Errorf("%s access %s: answer containment violated (%d/%d/%d)", tb.ID, row[0], pruned, bind, plain)
			}
		}
	}
}

func TestUpdatesProp1(t *testing.T) {
	tb := runQuick(t, "updates")[0]
	for _, row := range tb.Rows {
		if v := cellInt(t, row[4]); v != 0 {
			t.Errorf("%s: %d Proposition 1 violations", row[0], v)
		}
		if g := cellInt(t, row[3]); g > 2 {
			t.Errorf("%s: max transition growth %d > 2", row[0], g)
		}
	}
}

func TestWorstCaseExponential(t *testing.T) {
	tb := runQuick(t, "worstcase")[0]
	first := cellInt(t, tb.Rows[0][1])
	last := cellInt(t, tb.Rows[len(tb.Rows)-1][1])
	if last < first*8 {
		t.Errorf("uncorrelated codebook grew only %d -> %d; expected near-exponential", first, last)
	}
}

func TestRunAllAndPrint(t *testing.T) {
	if testing.Short() {
		t.Skip("full RunAll in short mode")
	}
	tables, err := RunAll(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, tb := range tables {
		tb.Fprint(&buf)
	}
	out := buf.String()
	for _, id := range []string{"fig4a", "fig4b", "fig5a", "fig5b", "fig6a", "fig6b", "storage", "fig7a", "fig7b", "fig7c", "joinQ4", "joinQ5", "joinQ6", "updates", "worstcase"} {
		if !strings.Contains(out, "== "+id) {
			t.Errorf("output missing table %s", id)
		}
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("nope", QuickConfig()); err == nil {
		t.Fatal("unknown experiment should fail")
	}
}

func TestAblationShape(t *testing.T) {
	tb := runQuick(t, "ablation")[0]
	for _, row := range tb.Rows {
		if row[5] != "true" {
			t.Errorf("access %s: page skipping changed the answers", row[0])
		}
		withSkip := cellInt(t, row[1])
		noSkip := cellInt(t, row[2])
		if withSkip > noSkip {
			t.Errorf("access %s: skipping read MORE pages (%d > %d)", row[0], withSkip, noSkip)
		}
	}
	// At the lowest accessibility, skipping should save at least one page.
	if cellInt(t, tb.Rows[0][1]) >= cellInt(t, tb.Rows[0][2]) {
		t.Logf("note: no pages saved at %s%% accessibility (layout-dependent)", tb.Rows[0][0])
	}
}

func TestModesShape(t *testing.T) {
	tb := runQuick(t, "modes")[0]
	if len(tb.Rows) != 3 {
		t.Fatalf("modes rows = %d", len(tb.Rows))
	}
	sepEntries := cellInt(t, tb.Rows[0][2])
	sharedEntries := cellInt(t, tb.Rows[1][2])
	if sharedEntries > sepEntries {
		t.Errorf("shared codebook has %d entries > separate %d; sharing must never cost entries", sharedEntries, sepEntries)
	}
	sepTrans := cellInt(t, tb.Rows[0][1])
	combTrans := cellInt(t, tb.Rows[2][1])
	if combTrans > sepTrans {
		t.Errorf("combined transitions %d > separate %d; merged layout should not exceed per-mode sum", combTrans, sepTrans)
	}
}

func TestParallelShape(t *testing.T) {
	tb := runQuick(t, "parallel")[0]
	if len(tb.Rows) != len(Table1)*len(ParallelWorkerCounts) {
		t.Fatalf("parallel rows = %d, want %d", len(tb.Rows), len(Table1)*len(ParallelWorkerCounts))
	}
	// Determinism: per query, the answer count is identical at every
	// worker count (runQuick already fails on ERROR notes).
	answers := map[string]string{}
	for _, row := range tb.Rows {
		if prev, ok := answers[row[0]]; ok && prev != row[4] {
			t.Errorf("%s: answers %s at %s workers differ from %s", row[0], row[4], row[1], prev)
		}
		answers[row[0]] = row[4]
		if s := cellFloat(t, row[3]); s <= 0 {
			t.Errorf("%s: non-positive speedup %f", row[0], s)
		}
	}
}

func TestWALShape(t *testing.T) {
	tables := runQuick(t, "wal")
	if len(tables) != 2 {
		t.Fatalf("wal tables = %d, want 2", len(tables))
	}
	ops, rec := tables[0], tables[1]
	for _, tb := range tables {
		for _, note := range tb.Notes {
			if strings.HasPrefix(note, "VIOLATION") {
				t.Errorf("%s: %s", tb.ID, note)
			}
		}
	}
	if len(ops.Rows) != 4 {
		t.Fatalf("wal latency rows = %d, want 4", len(ops.Rows))
	}
	for _, row := range ops.Rows {
		if r := cellFloat(t, row[4]); r <= 0 {
			t.Errorf("%s: non-positive wal/no-wal ratio %f", row[0], r)
		}
	}
	if len(rec.Rows) != 2 {
		t.Fatalf("wal recovery rows = %d, want 2", len(rec.Rows))
	}
	if got := cellInt(t, rec.Rows[0][2]); got != 0 {
		t.Errorf("clean open redid %d batches", got)
	}
	if got := cellInt(t, rec.Rows[1][2]); got != 1 {
		t.Errorf("crash recovery redid %d batches, want 1", got)
	}
}
