package bench

import (
	"testing"

	"dolxml/internal/query"
	"dolxml/internal/xmark"
)

// Satellite guarantee for the page-skip work, asserted at bench scale:
// every Table 1 query returns byte-identical answers with summaries on and
// off, under both secure semantics and at worker counts 1 and 4, and the
// enabled runs never read more pages from a cold pool.
func TestPageSkipEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("bench-scale equivalence in short mode")
	}
	cfg := QuickConfig()
	cfg.PageSize = cfg.PageSize / 4
	doc := xmark.Generate(xmark.Scaled(cfg.Seed, cfg.XMarkNodes))
	m := singleSubjectACL(doc, cfg.Seed+23, 70)
	env, err := buildQueryEnv(cfg, doc, m)
	if err != nil {
		t.Fatal(err)
	}
	view := env.ss.ViewSubject(0)

	semantics := []struct {
		name string
		opts query.Options
	}{
		{"bindings", query.Options{View: view}},
		{"pruned", query.Options{View: view, Semantics: query.SemanticsPrunedSubtree}},
	}

	for _, q := range Table1 {
		pt := query.MustParse(q.Expr)
		for _, sem := range semantics {
			off := sem.opts
			off.Parallelism = 1
			off.DisableSummarySkip = true
			want, pagesOff, _, err := env.coldQuery(pt, off)
			if err != nil {
				t.Fatalf("%s/%s off: %v", q.Name, sem.name, err)
			}
			for _, par := range []int{1, 4} {
				on := sem.opts
				on.Parallelism = par
				got, pagesOn, _, err := env.coldQuery(pt, on)
				if err != nil {
					t.Fatalf("%s/%s par %d: %v", q.Name, sem.name, par, err)
				}
				if !equalNodes(got.Nodes, want.Nodes) || got.Matches != want.Matches {
					t.Errorf("%s/%s par %d: summaries changed answers (%d/%d vs %d/%d)",
						q.Name, sem.name, par, len(got.Nodes), got.Matches, len(want.Nodes), want.Matches)
				}
				if par == 1 && pagesOn > pagesOff {
					t.Errorf("%s/%s: summaries read %d pages, disabled read %d",
						q.Name, sem.name, pagesOn, pagesOff)
				}
			}
		}
	}
}

// The pageskip experiment table itself must carry no VIOLATION notes and
// show a strict page reduction for at least two queries (the CI smoke
// mirrors the first half via dolbench -strict).
func TestPageSkipShape(t *testing.T) {
	tb := runQuick(t, "pageskip")[0]
	for _, note := range tb.Notes {
		if len(note) >= 9 && note[:9] == "VIOLATION" {
			t.Error(note)
		}
	}
	// Rows interleave on/off per query×semantics; compare adjacent pairs.
	improved := map[string]bool{}
	for i := 0; i+1 < len(tb.Rows); i += 2 {
		on, offRow := tb.Rows[i], tb.Rows[i+1]
		if on[0] != offRow[0] || on[2] != "on" || offRow[2] != "off" {
			t.Fatalf("row pairing broken at %d: %v / %v", i, on, offRow)
		}
		pOn := cellInt(t, on[3])
		pOff := cellInt(t, offRow[3])
		if pOn > pOff {
			t.Errorf("%s/%s: %d pages on vs %d off", on[0], on[1], pOn, pOff)
		}
		if pOn < pOff {
			improved[on[0]] = true
		}
		if on[7] != offRow[7] {
			t.Errorf("%s/%s: answer counts differ (%s vs %s)", on[0], on[1], on[7], offRow[7])
		}
	}
	if len(improved) < 2 {
		t.Errorf("only %d queries improved; want a strict page reduction on at least 2", len(improved))
	}
}
