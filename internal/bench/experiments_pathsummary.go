package bench

import (
	"fmt"
	"time"

	"dolxml/internal/query"
	"dolxml/internal/xmark"
)

// unsatisfiableQuery pairs every tag with an existing one, but in an order
// no XMark root-to-leaf path realizes: person subtrees never contain a
// parlist. A tag-existence check cannot prove it empty; only the path
// summary can, so the routed arm must answer from zero pages.
const unsatisfiableQuery = "/site/people/person/parlist"

// PathSummary measures path-summary routing on the Table 1 workload: every
// query runs under both secure semantics and both ends of the parallelism
// range, with routing enabled and disabled, from a cold pool each time.
// Both arms keep the per-page summaries on, so the deltas isolate what the
// path summary adds on top of the fused skip mask: path-refined dead-page
// bits, path-class candidate filtering, and pre-resolved access verdicts.
//
// The guarantees under test, each breach recorded as a "VIOLATION:" note
// (failing `dolbench -strict`):
//   - answers are byte-identical across routing on/off, semantics and
//     parallelism;
//   - routing never reads more pages than the skip-mask-only arm;
//   - at least two of the descendant twigs Q4–Q6 read strictly fewer
//     pages — their index candidates scatter over the whole document, so
//     class placement rejects postings and prunes scan blocks that hold
//     the right tags on the wrong paths;
//   - the structurally unsatisfiable query is answered from zero pages
//     with the compile-time empty short-circuit reporting it.
//
// The rooted twigs Q1–Q3 are reported but not gated on page counts: their
// streaming scan already confines itself to the /site/categories section,
// whose every block holds matched classes at bench block sizes, so there
// is no sound page-granular skip left for routing to claim (what it adds
// there is pre-resolved access classes and empty-query detection). The
// on/off page ratio is still recorded per row for regression tracking.
func PathSummary(cfg Config) []*Table {
	// Quarter-size blocks, as in the pageskip experiment: page skipping
	// needs more blocks than XMark sections to have boundaries to skip.
	small := cfg
	small.PageSize = cfg.PageSize / 4
	if small.PageSize < 256 {
		small.PageSize = 256
	}

	doc := xmark.Generate(xmark.Scaled(cfg.Seed, cfg.XMarkNodes))
	m := singleSubjectACL(doc, cfg.Seed+23, 70)

	t := &Table{
		ID: "pathsummary",
		Title: fmt.Sprintf("path-summary routing, Q1–Q6 × semantics × parallelism (XMark, %d nodes, %d B pages)",
			doc.Len(), small.PageSize),
		Columns: []string{"query", "semantics", "par", "path",
			"pages", "pathCands", "classes", "time", "answers"},
	}

	env, err := buildQueryEnv(small, doc, m)
	if err != nil {
		t.Notes = append(t.Notes, "ERROR: "+err.Error())
		return []*Table{t}
	}
	view := env.ss.ViewSubject(0)

	semantics := []struct {
		name string
		opts query.Options
	}{
		{"bindings", query.Options{View: view}},
		{"pruned", query.Options{View: view, Semantics: query.SemanticsPrunedSubtree}},
	}

	// improved counts the (descendant twig, semantics) rows where routing
	// read strictly fewer pages than the skip-mask-only arm.
	improved := 0
	for _, q := range Table1 {
		pt := query.MustParse(q.Expr)
		for _, sem := range semantics {
			// Sequential and GOMAXPROCS-wide evaluation must agree; page
			// gates apply to the deterministic sequential rows only (the
			// worker pool can race two misses for one page).
			for _, par := range []int{1, 0} {
				type arm struct {
					res   *query.Result
					pages int64
				}
				var arms [2]arm // [0] = routing on, [1] = off
				for i, disable := range []bool{false, true} {
					opts := sem.opts
					opts.Parallelism = par
					opts.DisablePathSummary = disable
					res, pages, elapsed, err := env.coldQuery(pt, opts)
					if err != nil {
						t.Notes = append(t.Notes, "ERROR: "+err.Error())
						return []*Table{t}
					}
					arms[i] = arm{res: res, pages: pages}
					label := "on"
					if disable {
						label = "off"
					}
					t.AddRow(q.Name, sem.name, fmt.Sprintf("%d", par), label,
						fmt.Sprintf("%d", pages),
						fmt.Sprintf("%d", res.Skips.PathCandidates),
						fmt.Sprintf("%d", res.Skips.PathClasses),
						elapsed.Round(time.Microsecond).String(),
						fmt.Sprintf("%d", len(res.Nodes)))
				}
				if !equalNodes(arms[0].res.Nodes, arms[1].res.Nodes) {
					t.Notes = append(t.Notes, fmt.Sprintf(
						"VIOLATION: %s/%s/par=%d answers differ with path routing enabled",
						q.Name, sem.name, par))
				}
				if par != 1 {
					continue
				}
				if arms[0].pages > arms[1].pages {
					t.Notes = append(t.Notes, fmt.Sprintf(
						"VIOLATION: %s/%s read %d pages with path routing vs %d without",
						q.Name, sem.name, arms[0].pages, arms[1].pages))
				}
				if (q.Name == "Q4" || q.Name == "Q5" || q.Name == "Q6") && arms[0].pages < arms[1].pages {
					improved++
				}
			}
		}
	}

	if improved < 2 {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"VIOLATION: only %d descendant-twig rows improved; want a strict page reduction on at least 2", improved))
	}

	// The unsatisfiable twig: routing must prove it empty at compile time
	// and pin nothing; the skip-mask-only arm shows the pages saved.
	pt := query.MustParse(unsatisfiableQuery)
	for i, disable := range []bool{false, true} {
		opts := query.Options{View: view, Parallelism: 1, DisablePathSummary: disable}
		res, pages, elapsed, err := env.coldQuery(pt, opts)
		if err != nil {
			t.Notes = append(t.Notes, "ERROR: "+err.Error())
			return []*Table{t}
		}
		label := "on"
		if disable {
			label = "off"
		}
		t.AddRow("Qunsat", "bindings", "1", label,
			fmt.Sprintf("%d", pages),
			fmt.Sprintf("%d", res.Skips.PathCandidates),
			fmt.Sprintf("%d", res.Skips.PathClasses),
			elapsed.Round(time.Microsecond).String(),
			fmt.Sprintf("%d", len(res.Nodes)))
		if len(res.Nodes) != 0 {
			t.Notes = append(t.Notes, fmt.Sprintf(
				"VIOLATION: unsatisfiable query returned %d answers (path=%s)", len(res.Nodes), label))
		}
		if i == 0 {
			if pages != 0 {
				t.Notes = append(t.Notes, fmt.Sprintf(
					"VIOLATION: unsatisfiable query pinned %d pages with path routing; want 0", pages))
			}
			if res.Skips.PathEmpty != 1 {
				t.Notes = append(t.Notes,
					"VIOLATION: unsatisfiable query did not report the compile-time empty short-circuit")
			}
		}
	}

	t.Notes = append(t.Notes,
		"path routing on must never read more pages than off, with byte-identical answers",
		"descendant twigs Q4-Q6 must show strict page reductions; rooted twigs Q1-Q3 are reported, not gated (see doc comment)",
		fmt.Sprintf("Qunsat is %s: every tag exists, no root-to-leaf path matches", unsatisfiableQuery))
	return []*Table{t}
}
