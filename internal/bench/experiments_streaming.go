package bench

import (
	"context"
	"fmt"
	"time"

	"dolxml/internal/query"
	"dolxml/internal/xmark"
)

// StreamingLimits are the Options.Limit settings the streaming experiment
// sweeps; 0 means unlimited (full drain).
var StreamingLimits = []int{1, 10, 100, 0}

// Streaming measures the cursor pipeline's early-termination property:
// every Table 1 query (Q1–Q6) runs under the bindings semantics at
// increasing answer limits over one cold-cache in-memory store, reporting
// the time to the first answer, the time to drain the cursor, the pages
// read (cold-cache buffer-pool misses), and the answers returned. The
// reproduction target: at Limit = 1 both time-to-first and pages read sit
// strictly below the unlimited drain on page-bound queries — the limited
// cursor stops pulling, so the pipeline's producers stop fetching pages.
//
// The emitted rows are machine-readable via the -json flag of cmd/dolbench
// (BENCH_streaming.json).
func Streaming(cfg Config) []*Table {
	doc := xmark.Generate(xmark.Scaled(cfg.Seed, cfg.XMarkNodes))
	t := &Table{
		ID: "streaming",
		Title: fmt.Sprintf("cursor pipeline early termination, Q1–Q6 (XMark, %d nodes)",
			doc.Len()),
		Columns: []string{"query", "limit", "first-answer", "drain", "pages", "answers"},
	}
	m := singleSubjectACL(doc, cfg.Seed+17, 70)
	env, err := buildQueryEnv(cfg, doc, m)
	if err != nil {
		t.Notes = append(t.Notes, "ERROR: "+err.Error())
		return []*Table{t}
	}
	view := env.ss.ViewSubject(0)
	ctx := context.Background()
	for _, q := range Table1 {
		pt := query.MustParse(q.Expr)
		for _, limit := range StreamingLimits {
			opts := query.Options{View: view, Parallelism: 1, Limit: limit}
			first, total, answers, pages, err := env.streamQuery(ctx, pt, opts)
			if err != nil {
				t.Notes = append(t.Notes, "ERROR: "+err.Error())
				return []*Table{t}
			}
			limitLabel := fmt.Sprintf("%d", limit)
			if limit == 0 {
				limitLabel = "inf"
			}
			t.AddRow(q.Name, limitLabel,
				first.Round(time.Microsecond).String(),
				total.Round(time.Microsecond).String(),
				fmt.Sprintf("%d", pages),
				fmt.Sprintf("%d", answers))
		}
	}
	t.Notes = append(t.Notes,
		"cold cache per row: pages = buffer-pool misses over open + drain + close",
		"limit=inf drains the full answer set; smaller limits stop the cursor early",
		"sequential pipeline (Parallelism=1), bindings semantics, in-memory pager")
	return []*Table{t}
}

// streamQuery opens the cursor pipeline cold and measures time to the
// first answer, total drain time, answers returned, and pages read.
func (e *queryEnv) streamQuery(ctx context.Context, pt *query.PatternTree, opts query.Options) (first, total time.Duration, answers int, pages int64, err error) {
	if err := e.pool.DropAll(); err != nil {
		return 0, 0, 0, 0, err
	}
	e.pool.ResetStats()
	start := time.Now()
	a, err := e.ev.Open(ctx, pt, opts)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	defer a.Close()
	for {
		_, ok, err := a.Next(ctx)
		if err != nil {
			return 0, 0, 0, 0, err
		}
		if !ok {
			break
		}
		answers++
		if answers == 1 {
			first = time.Since(start)
		}
	}
	total = time.Since(start)
	if err := a.Close(); err != nil {
		return 0, 0, 0, 0, err
	}
	pages = e.pool.Stats().Misses
	return first, total, answers, pages, nil
}
