package nok

import (
	"context"
	"fmt"

	"dolxml/internal/pathsum"
	"dolxml/internal/storage"
	"dolxml/internal/xmltree"
)

// freePage records a page released by a region rewrite. Without a gate it
// goes straight onto the reuse list; with one it is quarantined until every
// snapshot that might reference it has retired.
func (s *Store) freePage(p storage.PageID) {
	if s.gate != nil {
		s.retired = append(s.retired, p)
		return
	}
	s.freeList = append(s.freeList, p)
}

// allocPage returns a reusable or freshly allocated page, pinned. Reused
// pages are dropped from the decode cache at hand-out: a reader on an old
// snapshot may have re-cached the page's previous content between its
// release and its reuse here.
func (s *Store) allocPage() (*storage.Frame, error) {
	if len(s.freeList) == 0 && s.gate != nil {
		s.freeList = append(s.freeList, s.gate.Harvest()...)
	}
	if n := len(s.freeList); n > 0 {
		p := s.freeList[n-1]
		s.freeList = s.freeList[:n-1]
		s.invalidateDecoded(p)
		return s.pool.Get(p)
	}
	return s.pool.Allocate()
}

// FreePages returns the number of pages in the reuse list.
func (s *Store) FreePages() int { return len(s.freeList) }

// BlockEntries decodes the entries of block i exactly as stored: block-first
// entries never carry inline codes (their code lives in the header). It is
// the read half of a region rewrite; callers may mutate the returned slice
// (it is a private copy, never shared with the decode cache).
func (s *Store) BlockEntries(i int) ([]Entry, error) {
	return s.BlockEntriesCtx(context.Background(), i)
}

// BlockEntriesCtx is BlockEntries with cancellation at the page-fetch
// boundary; the streaming ε-STD join uses it to honor query contexts.
func (s *Store) BlockEntriesCtx(ctx context.Context, i int) ([]Entry, error) {
	if i < 0 || i >= len(s.dir) {
		return nil, fmt.Errorf("nok: invalid block %d of %d", i, len(s.dir))
	}
	es, err := s.blockEntries(ctx, i)
	if err != nil {
		return nil, err
	}
	out := make([]Entry, len(es))
	copy(out, es)
	return out, nil
}

// RewriteRegion replaces blocks [i, j] with blocks holding newEntries. The
// region's first node keeps its document-order ID; the node count changes
// by len(newEntries) − (old count), shifting the IDs of all later nodes.
// startLevel is the level of the region's first entry (normally
// unchanged); startCode is the access code in force at that entry.
//
// The rewrite has the paper's update-locality property: only the pages of
// the affected region (plus any pages newly allocated for overflow) are
// written; later blocks are untouched — their in-memory directory entries
// are renumbered, but their on-disk contents remain valid because block
// headers are positioned by directory order, not by stored node IDs.
// It returns the number of blocks now occupying the region (directory
// indices i .. i+n-1).
//
// The rewrite runs inside WithTxn: on a write-ahead-logged pager the whole
// region replacement commits as one atomic batch (joining any batch already
// open at an outer boundary).
func (s *Store) RewriteRegion(i, j int, newEntries []Entry, startLevel int, startCode uint32) (int, error) {
	var n int
	err := s.WithTxn(func() error {
		var err error
		n, err = s.rewriteRegion(i, j, newEntries, startLevel, startCode)
		return err
	})
	return n, err
}

func (s *Store) rewriteRegion(i, j int, newEntries []Entry, startLevel int, startCode uint32) (int, error) {
	if i < 0 || j >= len(s.dir) || i > j {
		return 0, fmt.Errorf("nok: invalid region [%d,%d] of %d blocks", i, j, len(s.dir))
	}
	if len(newEntries) == 0 {
		return 0, fmt.Errorf("nok: rewrite to empty region unsupported")
	}
	oldCount := 0
	for k := i; k <= j; k++ {
		oldCount += s.dir[k].Count
	}
	delta := len(newEntries) - oldCount
	firstNode := s.dir[i].FirstNode

	// Release the old region's pages up front; their cached decodings are
	// stale either way. Freeing in reverse keeps the legacy assignment
	// order on ungated stores (LIFO pops hand the region's first page out
	// first); on gated stores the pages are quarantined instead and every
	// new block lands on a fresh or harvested page, leaving the old content
	// intact for pinned snapshots.
	for k := j; k >= i; k-- {
		s.invalidateDecoded(s.dir[k].Page)
		s.freePage(s.dir[k].Page)
	}

	pageSize := s.pool.Pager().PageSize()
	capBytes := pageSize - headerSize

	// Replay the rewrite against the path summary on a copy-on-write
	// clone: installed summaries stay immutable for frozen snapshots. A
	// replay that cannot line up (psr nil or Finish rejecting) falls back
	// to a full rebuild from the spliced blocks.
	var psr *pathsum.RegionRewrite
	if s.paths != nil {
		psr, _ = s.paths.BeginRewrite(i, j)
	}

	// Lay out new blocks.
	var newDir []PageInfo
	var newSums []PageSummary
	// warm collects each written block's entries in stored form so the
	// decode cache can be primed once the rewrite has fully succeeded:
	// accessibility toggles re-read the region they just rewrote, and
	// without priming every toggle pays a full block decode because the
	// rewrite invalidated the cache. Installed only after the directory
	// splice — priming from inside flush could cache entries for a layout
	// that errors halfway, against a directory that still describes the
	// old blocks.
	type warmedBlock struct {
		pid     storage.PageID
		entries []Entry
	}
	var warm []warmedBlock
	var (
		blockEntries []Entry
		blockBytes   int
		blockFirst   = firstNode
		level        = startLevel
		code         = startCode
		blockStartLv = startLevel
		blockStartCd = startCode
		blockMin     = startLevel
	)
	flush := func() error {
		if len(blockEntries) == 0 {
			return nil
		}
		if psr != nil {
			psr.EndBlock()
		}
		frame, err := s.allocPage()
		if err != nil {
			return err
		}
		pi := PageInfo{
			Page:       frame.ID(),
			FirstNode:  blockFirst,
			Count:      len(blockEntries),
			StartDepth: uint16(blockStartLv),
			MinDepth:   uint16(blockMin),
			AccessCode: blockStartCd,
		}
		blockEntries[0].HasCode = false
		blockEntries[0].Code = 0
		body := frame.Data[headerSize:headerSize]
		for _, e := range blockEntries {
			if e.HasCode {
				pi.ChangeBit = true
			}
			body = appendEntry(body, e)
		}
		writeHeader(frame.Data, pi, len(body))
		if err := s.pool.Unpin(frame.ID(), true); err != nil {
			return err
		}
		newDir = append(newDir, pi)
		newSums = append(newSums, summarizeBlock(blockEntries, blockStartLv))
		// Snapshot the canonical decoded form: blockEntries is reused, and
		// the encoding drops Code on codeless entries, so a fresh decode of
		// this page yields exactly this normalized copy.
		we := make([]Entry, len(blockEntries))
		copy(we, blockEntries)
		for k := range we {
			if !we[k].HasCode {
				we[k].Code = 0
			}
		}
		warm = append(warm, warmedBlock{pid: pi.Page, entries: we})
		blockFirst += xmltree.NodeID(len(blockEntries))
		blockEntries = blockEntries[:0]
		blockBytes = 0
		return nil
	}

	for _, e := range newEntries {
		if e.HasCode {
			code = e.Code
		}
		sz := entrySize(e)
		if blockBytes+sz > capBytes && len(blockEntries) > 0 {
			if err := flush(); err != nil {
				return 0, err
			}
		}
		if len(blockEntries) == 0 {
			blockStartLv = level
			blockStartCd = code
			blockMin = level
		} else if level < blockMin {
			blockMin = level
		}
		if psr != nil {
			psr.Entry(e.Tag, e.CloseCount, code)
		}
		blockEntries = append(blockEntries, e)
		blockBytes += sz
		level = level + 1 - e.CloseCount
	}
	if err := flush(); err != nil {
		return 0, err
	}

	// Splice the directory (and the parallel summary slice) and renumber
	// later blocks.
	dir := make([]PageInfo, 0, len(s.dir)-(j-i+1)+len(newDir))
	dir = append(dir, s.dir[:i]...)
	dir = append(dir, newDir...)
	sums := make([]PageSummary, 0, cap(dir))
	sums = append(sums, s.summaries[:i]...)
	sums = append(sums, newSums...)
	sums = append(sums, s.summaries[j+1:]...)
	for k := j + 1; k < len(s.dir); k++ {
		pi := s.dir[k]
		pi.FirstNode += xmltree.NodeID(delta)
		dir = append(dir, pi)
	}
	s.dir = dir
	s.summaries = sums
	s.numNodes += delta
	if s.paths != nil {
		var spliced *pathsum.Summary
		ok := false
		if psr != nil {
			spliced, ok = psr.Finish()
		}
		if ok {
			s.paths = spliced
		} else if err := s.RebuildPathSummary(); err != nil {
			return 0, err
		}
	}
	for _, wb := range warm {
		s.dec.put(wb.pid, wb.entries)
	}
	return len(newDir), nil
}

// InternTag returns the code for tag, adding it to the store's tag table if
// new — used when inserted fragments introduce tags the document had not
// seen. The index map is rebuilt copy-on-write so frozen clones sharing the
// old map never observe a concurrent insert; the tags slice only ever
// appends, which clones (whose codes are all below their own length) read
// safely.
func (s *Store) InternTag(tag string) int32 {
	if c, ok := s.tagIndex[tag]; ok {
		return c
	}
	c := int32(len(s.tags))
	s.tags = append(s.tags, tag)
	idx := make(map[string]int32, len(s.tagIndex)+1)
	for k, v := range s.tagIndex {
		idx[k] = v
	}
	idx[tag] = c
	s.tagIndex = idx
	return c
}
