package nok

import (
	"dolxml/internal/storage"
)

// WithTxn runs fn as one atomic update batch when the store's pager supports
// write-ahead-logged batches (storage.TxnPager), and plainly otherwise.
//
// On the transactional path the sequence is: open (or join) a batch, run
// fn, flush every dirty buffer-pool frame into the batch, commit. The
// commit makes the whole region rewrite durable at once — a crash at any
// point leaves the pages either all-old or all-new, never a torn
// transition region. Batches nest: an update composed of several region
// rewrites (MoveSubtree = delete + insert) commits as a single batch at
// the outermost boundary, which may sit here or a layer above (securexml
// opens the batch before calling into dol).
//
// When fn fails, or the flush or commit fails, the batch is rolled back.
// The in-memory directory may then be ahead of disk; callers that observed
// buffered writes being discarded (TxnPager implementations report this)
// must discard the store and reopen it — recovery restores the pre-batch
// pages.
func (s *Store) WithTxn(fn func() error) error {
	tp, ok := s.pool.Pager().(storage.TxnPager)
	if !ok {
		return fn()
	}
	if err := tp.Begin(); err != nil {
		return err
	}
	if err := fn(); err != nil {
		// Push whatever the failed fn buffered into the batch before
		// discarding it, so the pager's dirty-abort report is accurate:
		// a validation failure that wrote nothing stays clean, a failure
		// mid-rewrite is flagged as having discarded writes.
		_ = s.pool.FlushAll()
		_ = tp.Rollback()
		return err
	}
	if err := s.pool.FlushAll(); err != nil {
		_ = tp.Rollback()
		return err
	}
	return tp.Commit(nil)
}
