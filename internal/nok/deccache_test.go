package nok

import (
	"math/rand"
	"testing"

	"dolxml/internal/storage"
)

func TestDecodeCacheLRUEviction(t *testing.T) {
	es := make([]Entry, 10)
	cost := decodeCost(es)
	c := newDecodeCache(3 * cost) // room for exactly three blocks
	for pid := storage.PageID(1); pid <= 3; pid++ {
		c.put(pid, es)
	}
	// Touch 1 and 2 so 3 becomes the least recently used.
	if _, ok := c.get(1); !ok {
		t.Fatal("page 1 should be cached")
	}
	if _, ok := c.get(2); !ok {
		t.Fatal("page 2 should be cached")
	}
	c.put(4, es)
	if _, ok := c.get(3); ok {
		t.Fatal("page 3 should have been evicted as LRU")
	}
	for _, pid := range []storage.PageID{1, 2, 4} {
		if _, ok := c.get(pid); !ok {
			t.Fatalf("page %d should have survived eviction", pid)
		}
	}
	st := c.stats()
	if st.Evictions != 1 || st.Entries != 3 || st.Bytes != 3*cost {
		t.Fatalf("stats after eviction: %+v", st)
	}
}

func TestDecodeCacheStatsAndInvalidate(t *testing.T) {
	es := make([]Entry, 4)
	c := newDecodeCache(1 << 16)
	if _, ok := c.get(9); ok {
		t.Fatal("empty cache served a hit")
	}
	c.put(9, es)
	if _, ok := c.get(9); !ok {
		t.Fatal("cached page missed")
	}
	c.invalidate(9)
	if _, ok := c.get(9); ok {
		t.Fatal("invalidated page still cached")
	}
	st := c.stats()
	if st.Hits != 1 || st.Misses != 2 || st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestDecodeCacheBudgetZeroDisables(t *testing.T) {
	es := make([]Entry, 4)
	c := newDecodeCache(0)
	c.put(1, es)
	if _, ok := c.get(1); ok {
		t.Fatal("zero-budget cache retained an entry")
	}
	// Shrinking the budget to zero drops existing contents.
	c2 := newDecodeCache(1 << 16)
	c2.put(1, es)
	c2.setBudget(0)
	if _, ok := c2.get(1); ok {
		t.Fatal("setBudget(0) kept an entry")
	}
	if st := c2.stats(); st.Entries != 0 || st.Bytes != 0 || st.Budget != 0 {
		t.Fatalf("stats after disable: %+v", st)
	}
}

// Oversized blocks are passed through uncached rather than evicting the
// whole cache to make room.
func TestDecodeCacheOversizedBlock(t *testing.T) {
	small := make([]Entry, 2)
	c := newDecodeCache(decodeCost(small) + 8)
	c.put(1, small)
	c.put(2, make([]Entry, 1000))
	if _, ok := c.get(1); !ok {
		t.Fatal("oversized insert displaced a fitting entry")
	}
	if _, ok := c.get(2); ok {
		t.Fatal("oversized block should not be cached")
	}
}

// End-to-end: a store's scans populate the cache, rewrites invalidate the
// affected pages, and disabling the budget via the Store API stops caching
// without changing results.
func TestStoreDecodeCacheIntegration(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	doc := randomDoc(rng, 300)
	s := buildStore(t, doc, 96, BuildOptions{})
	walk := func() int {
		count := 0
		if err := s.WalkSubtree(0, func(NodeInfo) bool { count++; return true }); err != nil {
			t.Fatal(err)
		}
		return count
	}
	n1 := walk()
	warm := s.DecodeCacheStats()
	if warm.Entries == 0 || warm.Hits == 0 {
		t.Fatalf("walks should populate and hit the cache: %+v", warm)
	}
	s.SetDecodeCacheBudget(0)
	if st := s.DecodeCacheStats(); st.Entries != 0 {
		t.Fatalf("disabling budget kept %d entries", st.Entries)
	}
	if n2 := walk(); n2 != n1 {
		t.Fatalf("walk results changed without cache: %d vs %d", n2, n1)
	}
	if st := s.DecodeCacheStats(); st.Entries != 0 {
		t.Fatal("disabled cache accepted entries")
	}
}
