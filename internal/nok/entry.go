// Package nok implements the succinct, block-oriented physical storage
// scheme for XML document structure from Zhang, Kacholia and Özsu (ICDE'04)
// that the DOL paper builds on, together with the DOL paper's extensions
// (§3): per-entry embedded access-control codes, per-block access headers,
// and an in-memory page directory enabling navigation and page skipping.
//
// The document structure is the "closing parens" string of the paper: nodes
// appear in document order; each entry records the node's tag and the
// number of subtrees that end immediately after it (its closeCount). Open
// parentheses are elided as redundant. A node has a first child exactly
// when its closeCount is zero, in which case the child is the next node in
// document order.
//
// Access-control codes are opaque uint32 values here; their interpretation
// (the DOL codebook) lives in package dol.
package nok

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Entry is one decoded node record from a structure block.
type Entry struct {
	// Tag is the node's tag code (index into the store's tag table).
	Tag int32
	// CloseCount is the number of subtrees ending immediately after this
	// node; zero means the node has a first child.
	CloseCount int
	// HasCode marks the node as a DOL transition node carrying an
	// access-control code.
	HasCode bool
	// Code is the access-control codebook index, valid when HasCode.
	Code uint32
}

// appendEntry encodes e and appends it to buf.
func appendEntry(buf []byte, e Entry) []byte {
	head := uint64(e.Tag) << 1
	if e.HasCode {
		head |= 1
	}
	buf = binary.AppendUvarint(buf, head)
	buf = binary.AppendUvarint(buf, uint64(e.CloseCount))
	if e.HasCode {
		buf = binary.AppendUvarint(buf, uint64(e.Code))
	}
	return buf
}

// entrySize returns the encoded size of e in bytes.
func entrySize(e Entry) int {
	head := uint64(e.Tag) << 1
	if e.HasCode {
		head |= 1
	}
	n := uvarintLen(head) + uvarintLen(uint64(e.CloseCount))
	if e.HasCode {
		n += uvarintLen(uint64(e.Code))
	}
	return n
}

// uvarintLen returns the number of bytes AppendUvarint would use for v.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// decodeEntry decodes one entry from data, returning it and the number of
// bytes consumed.
func decodeEntry(data []byte) (Entry, int, error) {
	head, n := binary.Uvarint(data)
	if n <= 0 {
		return Entry{}, 0, fmt.Errorf("nok: corrupt entry header (uvarint %d)", n)
	}
	if head>>1 > math.MaxInt32 {
		return Entry{}, 0, fmt.Errorf("nok: tag code %d out of range", head>>1)
	}
	e := Entry{Tag: int32(head >> 1), HasCode: head&1 != 0}
	cc, m := binary.Uvarint(data[n:])
	if m <= 0 {
		return Entry{}, 0, fmt.Errorf("nok: corrupt close count (uvarint %d)", m)
	}
	if cc > math.MaxInt32 {
		return Entry{}, 0, fmt.Errorf("nok: close count %d out of range", cc)
	}
	e.CloseCount = int(cc)
	total := n + m
	if e.HasCode {
		code, k := binary.Uvarint(data[total:])
		if k <= 0 {
			return Entry{}, 0, fmt.Errorf("nok: corrupt access code (uvarint %d)", k)
		}
		if code > math.MaxUint32 {
			return Entry{}, 0, fmt.Errorf("nok: access code %d out of range", code)
		}
		e.Code = uint32(code)
		total += k
	}
	return e, total, nil
}
