package nok

// Per-page structural summaries.
//
// The paper's in-memory page header (§3.2) lets the evaluator skip a block
// when access control alone proves it useless. The summary layer extends
// the same idea to query shape: alongside each directory entry the store
// keeps a tag-presence bitmap and the block's depth range, so a scan can
// skip a block that cannot contain any node the current pattern step could
// match — without reading it.
//
// The bitmap is exact while every tag code in the block fits the fixed
// summaryBits width (one bit per dictionary code); blocks referencing
// larger codes fall back to a Bloom-style double-hashed bitmap over the
// same words. Hashed summaries admit false positives (a probed tag may
// appear present when it is not), which only costs a wasted read; false
// negatives are impossible in either mode, which is what makes skipping
// sound.

// SummaryWords is the width of a page summary's tag bitmap in uint64 words.
const SummaryWords = 4

// summaryBits is the tag bitmap width in bits; tag codes below this use the
// exact one-bit-per-code encoding.
const summaryBits = SummaryWords * 64

// PageSummary is the structural summary of one block, held in memory next
// to the page directory and rebuilt whenever the block is rewritten.
type PageSummary struct {
	// Tags is the tag-presence bitmap: exact (bit = tag code) unless
	// Hashed, then a two-probe Bloom filter over the same words.
	Tags [SummaryWords]uint64
	// MinDepth and MaxDepth bound the depth of every node in the block.
	MinDepth uint16
	MaxDepth uint16
	// Hashed marks the Bloom encoding, used when the block contains a tag
	// code ≥ summaryBits.
	Hashed bool
}

// summaryHash1 and summaryHash2 are the Bloom probe positions for a tag
// code (Knuth multiplicative and Fibonacci hashing; any two independent
// mixes would do — soundness never depends on hash quality).
func summaryHash1(code int32) uint {
	return uint(uint32(code)*2654435761) % summaryBits
}

func summaryHash2(code int32) uint {
	return uint((uint64(uint32(code))*0x9E3779B97F4A7C15)>>32) % summaryBits
}

// setTag records the presence of a tag code in the bitmap.
func (ps *PageSummary) setTag(code int32) {
	if ps.Hashed {
		h1, h2 := summaryHash1(code), summaryHash2(code)
		ps.Tags[h1/64] |= 1 << (h1 % 64)
		ps.Tags[h2/64] |= 1 << (h2 % 64)
		return
	}
	ps.Tags[uint(code)/64] |= 1 << (uint(code) % 64)
}

// MayContainTag reports whether the block may contain a node with the given
// tag code. False means the tag is definitely absent; true may be a false
// positive under the hashed encoding.
func (ps PageSummary) MayContainTag(code int32) bool {
	if code < 0 {
		return false
	}
	if !ps.Hashed {
		if code >= summaryBits {
			// An exact summary proves every code in the block is below
			// summaryBits, so a larger code cannot appear.
			return false
		}
		return ps.Tags[uint(code)/64]&(1<<(uint(code)%64)) != 0
	}
	h1, h2 := summaryHash1(code), summaryHash2(code)
	return ps.Tags[h1/64]&(1<<(h1%64)) != 0 && ps.Tags[h2/64]&(1<<(h2%64)) != 0
}

// summarizeBlock computes the summary of a block from its decoded entries
// and the depth of its first entry. It is the single source of truth used
// by Build, RewriteRegion, Open and CheckConsistency.
func summarizeBlock(entries []Entry, startDepth int) PageSummary {
	ps := PageSummary{MinDepth: uint16(startDepth), MaxDepth: uint16(startDepth)}
	for _, e := range entries {
		if e.Tag >= summaryBits {
			ps.Hashed = true
			break
		}
	}
	level := startDepth
	for _, e := range entries {
		if level < int(ps.MinDepth) {
			ps.MinDepth = uint16(level)
		}
		if level > int(ps.MaxDepth) {
			ps.MaxDepth = uint16(level)
		}
		ps.setTag(e.Tag)
		level = level + 1 - e.CloseCount
	}
	return ps
}

// SummaryAt returns the structural summary of block i.
func (s *Store) SummaryAt(i int) PageSummary { return s.summaries[i] }

// Summaries returns the per-block summaries (shared; read-only for
// callers), parallel to Directory().
func (s *Store) Summaries() []PageSummary { return s.summaries }

// SummaryBytes estimates the in-memory size of the summary layer: the tag
// bitmap words plus the depth range and mode flag per block.
func (s *Store) SummaryBytes() int {
	return len(s.summaries) * (SummaryWords*8 + 5)
}
