package nok

import (
	"encoding/binary"
	"fmt"

	"dolxml/internal/pathsum"
	"dolxml/internal/storage"
	"dolxml/internal/xmltree"
)

// CodeSource supplies DOL access-control codes during a build. Package dol
// implements it on top of an accessibility matrix; a nil CodeSource builds
// an unsecured store (all codes zero, no transition entries).
type CodeSource interface {
	// CodeInForce returns the access code governing node n, i.e. the code
	// of the nearest preceding transition node (or of n itself).
	CodeInForce(n xmltree.NodeID) uint32
	// IsTransition reports whether n's accessibility differs from its
	// document-order predecessor (the root is always a transition node).
	IsTransition(n xmltree.NodeID) bool
}

// BuildOptions configure Build.
type BuildOptions struct {
	// Codes embeds DOL access codes; nil builds an unsecured store.
	Codes CodeSource
	// FillPercent bounds how full each structure block is packed
	// (1–100). Lower values leave room for in-place accessibility
	// updates. 0 means 100.
	FillPercent int
	// StoreValues also writes node text values into a value store.
	StoreValues bool
	// Values supplies node values when StoreValues is set; by default the
	// document's own values are used.
	Values func(n xmltree.NodeID) string
}

// Build writes doc's structure (and, if opts.Codes is set, its embedded DOL
// access codes) into blocks allocated from pool, in a single document-order
// pass — the construction property the paper highlights in §2.
func Build(pool *storage.BufferPool, doc *xmltree.Document, opts BuildOptions) (*Store, error) {
	if doc.Len() == 0 {
		return nil, fmt.Errorf("nok: empty document")
	}
	fill := opts.FillPercent
	if fill <= 0 || fill > 100 {
		fill = 100
	}
	pageSize := pool.Pager().PageSize()
	capBytes := (pageSize - headerSize) * fill / 100
	if capBytes < 8 {
		return nil, fmt.Errorf("nok: page size %d too small", pageSize)
	}

	s := &Store{
		pool:     pool,
		tags:     doc.Tags(),
		tagIndex: make(map[string]int32),
		numNodes: doc.Len(),
		dec:      newDecodeCache(DefaultDecodeCacheBudget),
	}
	for i, t := range s.tags {
		s.tagIndex[t] = int32(i)
	}

	maxDepth := doc.MaxDepth()
	if maxDepth > 0xFFFF {
		return nil, fmt.Errorf("nok: document depth %d exceeds format limit", maxDepth)
	}

	var (
		blockEntries []Entry
		blockBytes   int
		blockFirst   xmltree.NodeID
		blockMin     int
	)
	psb := pathsum.NewBuilder()
	flush := func() error {
		if len(blockEntries) == 0 {
			return nil
		}
		psb.EndBlock()
		frame, err := pool.Allocate()
		if err != nil {
			return err
		}
		pi := PageInfo{
			Page:       frame.ID(),
			FirstNode:  blockFirst,
			Count:      len(blockEntries),
			StartDepth: uint16(doc.Level(blockFirst)),
			MinDepth:   uint16(blockMin),
		}
		if opts.Codes != nil {
			pi.AccessCode = opts.Codes.CodeInForce(blockFirst)
		}
		// The block's first entry never carries an inline code: its code
		// is the header's AccessCode (§3.2 "initial transition node").
		blockEntries[0].HasCode = false
		blockEntries[0].Code = 0
		body := frame.Data[headerSize:headerSize]
		for _, e := range blockEntries {
			if e.HasCode {
				pi.ChangeBit = true
			}
			body = appendEntry(body, e)
		}
		writeHeader(frame.Data, pi, len(body))
		if err := pool.Unpin(frame.ID(), true); err != nil {
			return err
		}
		s.dir = append(s.dir, pi)
		s.summaries = append(s.summaries, summarizeBlock(blockEntries, int(pi.StartDepth)))
		blockEntries = blockEntries[:0]
		blockBytes = 0
		return nil
	}

	for n := xmltree.NodeID(0); int(n) < doc.Len(); n++ {
		e := Entry{
			Tag:        int32(doc.TagIDOf(n)),
			CloseCount: doc.CloseCount(n),
		}
		if opts.Codes != nil && opts.Codes.IsTransition(n) {
			e.HasCode = true
			e.Code = opts.Codes.CodeInForce(n)
		}
		sz := entrySize(e)
		if blockBytes+sz > capBytes && len(blockEntries) > 0 {
			if err := flush(); err != nil {
				return nil, err
			}
		}
		if len(blockEntries) == 0 {
			blockFirst = n
			blockMin = doc.Level(n)
		} else if l := doc.Level(n); l < blockMin {
			blockMin = l
		}
		var code uint32
		if opts.Codes != nil {
			code = opts.Codes.CodeInForce(n)
		}
		psb.Entry(e.Tag, e.CloseCount, code)
		blockEntries = append(blockEntries, e)
		blockBytes += sz
	}
	if err := flush(); err != nil {
		return nil, err
	}
	paths, err := psb.Finish()
	if err != nil {
		return nil, fmt.Errorf("nok: path summary: %w", err)
	}
	s.paths = paths

	if opts.StoreValues {
		valueOf := opts.Values
		if valueOf == nil {
			valueOf = doc.Value
		}
		vs, err := BuildValues(pool, doc.Len(), valueOf)
		if err != nil {
			return nil, err
		}
		s.values = vs
	}
	return s, nil
}

// writeHeader encodes pi into the first headerSize bytes of data.
func writeHeader(data []byte, pi PageInfo, dataLen int) {
	binary.LittleEndian.PutUint32(data[0:4], uint32(pi.FirstNode))
	binary.LittleEndian.PutUint16(data[4:6], pi.StartDepth)
	binary.LittleEndian.PutUint16(data[6:8], pi.MinDepth)
	binary.LittleEndian.PutUint16(data[8:10], uint16(pi.Count))
	binary.LittleEndian.PutUint16(data[10:12], uint16(dataLen))
	binary.LittleEndian.PutUint32(data[12:16], pi.AccessCode)
	var flags byte
	if pi.ChangeBit {
		flags |= flagChangeBit
	}
	data[16] = flags
}

// readHeader decodes a block header from data.
func readHeader(page storage.PageID, data []byte) (PageInfo, int) {
	pi := PageInfo{
		Page:       page,
		FirstNode:  xmltree.NodeID(binary.LittleEndian.Uint32(data[0:4])),
		StartDepth: binary.LittleEndian.Uint16(data[4:6]),
		MinDepth:   binary.LittleEndian.Uint16(data[6:8]),
		Count:      int(binary.LittleEndian.Uint16(data[8:10])),
		AccessCode: binary.LittleEndian.Uint32(data[12:16]),
		ChangeBit:  data[16]&flagChangeBit != 0,
	}
	return pi, int(binary.LittleEndian.Uint16(data[10:12]))
}
