package nok

import (
	"math/rand"
	"testing"
)

// Oracle property for the incrementally maintained path summary: after any
// sequence of region rewrites — identity rewrites, leaf inserts, leaf
// deletes, inline code toggles, multi-block regions, including rewrites
// whose replay cannot line up and force the rebuild fallback — the
// maintained summary verifies against one rebuilt from scratch out of the
// block contents.
func TestPathSummaryOracleAfterRandomUpdates(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		doc := randomDoc(rng, 30+rng.Intn(200))
		codes := make(arrayCodes, doc.Len())
		cur := uint32(rng.Intn(4))
		for i := range codes {
			if rng.Intn(5) == 0 {
				cur = uint32(rng.Intn(4))
			}
			codes[i] = cur
		}
		s := buildStore(t, doc, 64+rng.Intn(128), BuildOptions{Codes: codes})
		if s.Paths() == nil {
			t.Fatalf("seed %d: build installed no path summary", seed)
		}

		for op := 0; op < 6; op++ {
			i := rng.Intn(s.NumPages())
			j := i
			if i+1 < s.NumPages() && rng.Intn(3) == 0 {
				j = i + 1
			}
			var entries []Entry
			for b := i; b <= j; b++ {
				es, err := s.BlockEntries(b)
				if err != nil {
					t.Fatalf("seed %d op %d: %v", seed, op, err)
				}
				entries = append(entries, es...)
			}
			pi := s.PageInfoAt(i)

			switch rng.Intn(4) {
			case 0: // insert a leaf element
				tag := int32(rng.Intn(s.NumTags()))
				leaf := Entry{Tag: tag, CloseCount: 1}
				at := 1 + rng.Intn(len(entries))
				if pi.StartDepth > 0 {
					// Mid-document blocks may also take the leaf first, as
					// a preceding sibling in the carry-over context.
					at = rng.Intn(len(entries) + 1)
				}
				entries = append(entries[:at], append([]Entry{leaf}, entries[at:]...)...)
			case 1: // delete a self-closing leaf (keeps the region balanced)
				leaves := make([]int, 0, len(entries))
				for k, e := range entries {
					if e.CloseCount == 1 && len(entries) > 1 {
						leaves = append(leaves, k)
					}
				}
				if len(leaves) == 0 {
					continue
				}
				at := leaves[rng.Intn(len(leaves))]
				entries = append(entries[:at], entries[at+1:]...)
			case 2: // toggle an inline code, degrading some class's mode
				at := rng.Intn(len(entries))
				entries[at].HasCode = true
				entries[at].Code = uint32(rng.Intn(4))
			default: // identity rewrite
			}

			if _, err := s.RewriteRegion(i, j, entries, int(pi.StartDepth), pi.AccessCode); err != nil {
				t.Fatalf("seed %d op %d: rewrite [%d,%d]: %v", seed, op, i, j, err)
			}
			fresh, err := s.scanPathSummary()
			if err != nil {
				t.Fatalf("seed %d op %d: rescan: %v", seed, op, err)
			}
			if err := s.Paths().VerifyAgainst(fresh); err != nil {
				t.Fatalf("seed %d op %d: maintained summary drifted: %v", seed, op, err)
			}
			if err := s.CheckConsistency(); err != nil {
				t.Fatalf("seed %d op %d: %v", seed, op, err)
			}
		}
	}
}

// The rebuild fallback: a rewrite that renames the region's trailing
// context cannot replay incrementally (the exit context changes), yet the
// store must come back with a correct summary.
func TestPathSummaryRebuildFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	doc := randomDoc(rng, 120)
	s := buildStore(t, doc, 64, BuildOptions{})
	if s.NumPages() < 3 {
		t.Skip("need several blocks")
	}
	// Rewrite block 0 so its exit context walks a different label path:
	// wrap the remainder of the document by renaming the root's tag.
	entries, err := s.BlockEntries(0)
	if err != nil {
		t.Fatal(err)
	}
	entries[0].Tag = int32(s.NumTags() - 1)
	if entries[0].Tag == 0 {
		t.Skip("need a second tag to rename the root")
	}
	if _, err := s.RewriteRegion(0, 0, entries, 0, 0); err != nil {
		t.Fatal(err)
	}
	fresh, err := s.scanPathSummary()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Paths().VerifyAgainst(fresh); err != nil {
		t.Fatalf("summary wrong after rebuild fallback: %v", err)
	}
	if err := s.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}
