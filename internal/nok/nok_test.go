package nok

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"dolxml/internal/storage"
	"dolxml/internal/xmltree"
)

// arrayCodes is a CodeSource backed by an explicit per-node code array:
// node n is a transition node when its code differs from node n-1's (node 0
// is always a transition node), exactly the DOL definition.
type arrayCodes []uint32

func (a arrayCodes) CodeInForce(n xmltree.NodeID) uint32 { return a[n] }
func (a arrayCodes) IsTransition(n xmltree.NodeID) bool {
	return n == 0 || a[n] != a[n-1]
}

func buildStore(t testing.TB, doc *xmltree.Document, pageSize int, opts BuildOptions) *Store {
	t.Helper()
	pool := storage.NewBufferPool(storage.NewMemPager(pageSize), 64)
	s, err := Build(pool, doc, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func fig2doc(t testing.TB) *xmltree.Document {
	t.Helper()
	return xmltree.MustParseString(
		`<a><b/><c/><d/><e><f/><g/><h><i/><j/><k/><l/></h></e></a>`)
}

func TestEntryRoundTrip(t *testing.T) {
	cases := []Entry{
		{Tag: 0, CloseCount: 0},
		{Tag: 5, CloseCount: 3},
		{Tag: 1000, CloseCount: 127},
		{Tag: 7, CloseCount: 1, HasCode: true, Code: 0},
		{Tag: 1 << 20, CloseCount: 2, HasCode: true, Code: 1 << 30},
	}
	for _, e := range cases {
		buf := appendEntry(nil, e)
		if len(buf) != entrySize(e) {
			t.Errorf("entrySize(%+v) = %d, encoded %d", e, entrySize(e), len(buf))
		}
		got, n, err := decodeEntry(buf)
		if err != nil {
			t.Fatalf("decode %+v: %v", e, err)
		}
		if n != len(buf) || got != e {
			t.Errorf("round trip %+v -> %+v (%d bytes)", e, got, n)
		}
	}
}

func TestDecodeEntryErrors(t *testing.T) {
	if _, _, err := decodeEntry(nil); err == nil {
		t.Error("empty input should fail")
	}
	// Header present, close count missing.
	buf := appendEntry(nil, Entry{Tag: 3, CloseCount: 200})
	if _, _, err := decodeEntry(buf[:1]); err == nil {
		t.Error("truncated close count should fail")
	}
	// Code flagged but missing.
	full := appendEntry(nil, Entry{Tag: 3, CloseCount: 1, HasCode: true, Code: 300})
	if _, _, err := decodeEntry(full[:len(full)-2]); err == nil {
		t.Error("truncated code should fail")
	}
}

func TestBuildSingleBlock(t *testing.T) {
	doc := fig2doc(t)
	s := buildStore(t, doc, 4096, BuildOptions{})
	if s.NumNodes() != 12 {
		t.Fatalf("NumNodes = %d", s.NumNodes())
	}
	if s.NumPages() != 1 {
		t.Fatalf("NumPages = %d, want 1", s.NumPages())
	}
	pi := s.PageInfoAt(0)
	if pi.FirstNode != 0 || pi.Count != 12 || pi.StartDepth != 0 || pi.MinDepth != 0 {
		t.Fatalf("PageInfo = %+v", pi)
	}
}

func TestNavigationMatchesDocument(t *testing.T) {
	doc := fig2doc(t)
	for _, pageSize := range []int{64, 80, 128, 4096} {
		s := buildStore(t, doc, pageSize, BuildOptions{})
		for n := xmltree.NodeID(0); int(n) < doc.Len(); n++ {
			fc, err := s.FirstChild(n)
			if err != nil {
				t.Fatal(err)
			}
			if fc != doc.FirstChild(n) {
				t.Errorf("pageSize %d: FirstChild(%d) = %d, want %d", pageSize, n, fc, doc.FirstChild(n))
			}
			fs, err := s.FollowingSibling(n)
			if err != nil {
				t.Fatal(err)
			}
			if fs != doc.NextSibling(n) {
				t.Errorf("pageSize %d: FollowingSibling(%d) = %d, want %d", pageSize, n, fs, doc.NextSibling(n))
			}
			end, err := s.SubtreeEnd(n)
			if err != nil {
				t.Fatal(err)
			}
			if end != doc.End(n) {
				t.Errorf("pageSize %d: SubtreeEnd(%d) = %d, want %d", pageSize, n, end, doc.End(n))
			}
			lvl, err := s.Level(n)
			if err != nil {
				t.Fatal(err)
			}
			if lvl != doc.Level(n) {
				t.Errorf("pageSize %d: Level(%d) = %d, want %d", pageSize, n, lvl, doc.Level(n))
			}
			tag, err := s.Tag(n)
			if err != nil {
				t.Fatal(err)
			}
			if s.TagName(tag) != doc.Tag(n) {
				t.Errorf("pageSize %d: Tag(%d) = %q, want %q", pageSize, n, s.TagName(tag), doc.Tag(n))
			}
		}
	}
}

func TestAccessCodes(t *testing.T) {
	doc := fig2doc(t)
	// Figure 1(c): codes per node a..l = 1,1,2,2,0,0,0,1,1,2,2,2 (made up
	// but exercising transitions mid-block and across blocks).
	codes := arrayCodes{1, 1, 2, 2, 0, 0, 0, 1, 1, 2, 2, 2}
	for _, pageSize := range []int{64, 96, 4096} {
		s := buildStore(t, doc, pageSize, BuildOptions{Codes: codes})
		for n := xmltree.NodeID(0); int(n) < doc.Len(); n++ {
			got, err := s.AccessCodeAt(n)
			if err != nil {
				t.Fatal(err)
			}
			if got != codes[n] {
				t.Errorf("pageSize %d: AccessCodeAt(%d) = %d, want %d", pageSize, n, got, codes[n])
			}
		}
		// Headers must carry the code in force at each block start.
		for i := 0; i < s.NumPages(); i++ {
			pi := s.PageInfoAt(i)
			if pi.AccessCode != codes[pi.FirstNode] {
				t.Errorf("pageSize %d: block %d header code %d, want %d", pageSize, i, pi.AccessCode, codes[pi.FirstNode])
			}
		}
	}
}

func TestChangeBit(t *testing.T) {
	doc := fig2doc(t)
	// Uniform codes: no transitions after node 0, change bit clear everywhere.
	uniform := make(arrayCodes, doc.Len())
	s := buildStore(t, doc, 64, BuildOptions{Codes: uniform})
	for i := 0; i < s.NumPages(); i++ {
		if s.PageInfoAt(i).ChangeBit {
			t.Errorf("block %d: change bit set for uniform codes", i)
		}
	}
	// Alternating codes: every block with >1 entry has transitions.
	alt := make(arrayCodes, doc.Len())
	for i := range alt {
		alt[i] = uint32(i % 2)
	}
	s2 := buildStore(t, doc, 64, BuildOptions{Codes: alt})
	for i := 0; i < s2.NumPages(); i++ {
		pi := s2.PageInfoAt(i)
		if pi.Count > 1 && !pi.ChangeBit {
			t.Errorf("block %d: change bit clear despite transitions", i)
		}
	}
}

func TestWalkSubtree(t *testing.T) {
	doc := fig2doc(t)
	s := buildStore(t, doc, 64, BuildOptions{})
	var visited []xmltree.NodeID
	if err := s.WalkSubtree(4, func(ni NodeInfo) bool { // subtree of e
		visited = append(visited, ni.ID)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(visited) != 8 {
		t.Fatalf("visited %v, want nodes 4..11", visited)
	}
	for i, id := range visited {
		if id != xmltree.NodeID(4+i) {
			t.Fatalf("visited %v", visited)
		}
	}
	// Early stop.
	count := 0
	s.WalkSubtree(0, func(NodeInfo) bool { count++; return count < 3 })
	if count != 3 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestPageSkippingUsesDirectoryOnly(t *testing.T) {
	// A root with two children: a huge first subtree spanning many pages
	// and a trailing sibling. FollowingSibling(first child) must skip the
	// interior pages without physical reads.
	b := xmltree.NewBuilder()
	b.Begin("root")
	b.Begin("big")
	for i := 0; i < 2000; i++ {
		b.Begin("deep")
	}
	for i := 0; i < 2000; i++ {
		b.End()
	}
	b.End() // big
	b.Element("next", "")
	b.End()
	doc := b.MustFinish()

	pool := storage.NewBufferPool(storage.NewMemPager(256), 256)
	s, err := Build(pool, doc, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if s.NumPages() < 5 {
		t.Fatalf("want many pages, got %d", s.NumPages())
	}
	if err := pool.DropAll(); err != nil {
		t.Fatal(err)
	}
	pool.ResetStats()
	sib, err := s.FollowingSibling(1) // node 1 = big
	if err != nil {
		t.Fatal(err)
	}
	if doc.Tag(sib) != "next" {
		t.Fatalf("sibling = %d (%s)", sib, doc.Tag(sib))
	}
	misses := pool.Stats().Misses
	// Only the first block (for node 1) and the final block (holding the
	// sibling) should be read; everything between is skipped via MinDepth.
	if misses > 2 {
		t.Errorf("FollowingSibling read %d pages, want <= 2 (directory skipping)", misses)
	}
}

func TestValues(t *testing.T) {
	doc := xmltree.MustParseString(`<r><a>alpha</a><b/><c>gamma</c></r>`)
	s := buildStore(t, doc, 4096, BuildOptions{StoreValues: true})
	vs := s.Values()
	if vs == nil {
		t.Fatal("no value store")
	}
	if vs.NumValues() != 2 {
		t.Fatalf("NumValues = %d", vs.NumValues())
	}
	for n := 0; n < doc.Len(); n++ {
		got, err := vs.Value(xmltree.NodeID(n))
		if err != nil {
			t.Fatal(err)
		}
		if got != doc.Value(xmltree.NodeID(n)) {
			t.Errorf("Value(%d) = %q, want %q", n, got, doc.Value(xmltree.NodeID(n)))
		}
	}
	if vs.IndexBytes() != 2*refSize {
		t.Errorf("IndexBytes = %d", vs.IndexBytes())
	}
}

func TestValuesSpanPages(t *testing.T) {
	b := xmltree.NewBuilder()
	b.Begin("r")
	want := map[xmltree.NodeID]string{}
	for i := 0; i < 50; i++ {
		v := string(bytes.Repeat([]byte{byte('a' + i%26)}, 40))
		id := b.Element("x", v)
		want[id] = v
	}
	b.End()
	doc := b.MustFinish()
	s := buildStore(t, doc, 128, BuildOptions{StoreValues: true})
	for id, v := range want {
		got, err := s.Values().Value(id)
		if err != nil {
			t.Fatal(err)
		}
		if got != v {
			t.Errorf("Value(%d) wrong", id)
		}
	}
}

func TestValueTooLarge(t *testing.T) {
	b := xmltree.NewBuilder()
	b.Begin("r")
	b.Element("x", string(bytes.Repeat([]byte{'v'}, 300)))
	b.End()
	doc := b.MustFinish()
	pool := storage.NewBufferPool(storage.NewMemPager(128), 8)
	if _, err := Build(pool, doc, BuildOptions{StoreValues: true}); err == nil {
		t.Fatal("oversized value should fail")
	}
}

func TestBuildErrors(t *testing.T) {
	pool := storage.NewBufferPool(storage.NewMemPager(16), 8)
	doc := fig2doc(t)
	if _, err := Build(pool, doc, BuildOptions{}); err == nil {
		t.Fatal("tiny pages should fail")
	}
}

func TestMetaReopen(t *testing.T) {
	doc := fig2doc(t)
	codes := arrayCodes{1, 1, 2, 2, 0, 0, 0, 1, 1, 2, 2, 2}
	pool := storage.NewBufferPool(storage.NewMemPager(64), 64)
	s, err := Build(pool, doc, BuildOptions{Codes: codes, StoreValues: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.WriteMeta(&buf); err != nil {
		t.Fatal(err)
	}
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	m, err := ReadMeta(&buf)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Open(pool, m)
	if err != nil {
		t.Fatal(err)
	}
	if s2.NumNodes() != s.NumNodes() || s2.NumPages() != s.NumPages() {
		t.Fatal("reopen dimensions differ")
	}
	for n := xmltree.NodeID(0); int(n) < doc.Len(); n++ {
		c1, _ := s.AccessCodeAt(n)
		c2, err := s2.AccessCodeAt(n)
		if err != nil {
			t.Fatal(err)
		}
		if c1 != c2 {
			t.Errorf("reopened code at %d: %d != %d", n, c2, c1)
		}
		f1, _ := s.FollowingSibling(n)
		f2, _ := s2.FollowingSibling(n)
		if f1 != f2 {
			t.Errorf("reopened sibling at %d differs", n)
		}
	}
}

func TestOpenValidation(t *testing.T) {
	pool := storage.NewBufferPool(storage.NewMemPager(64), 8)
	if _, err := Open(pool, Meta{NumNodes: 0}); err == nil {
		t.Fatal("zero nodes should fail")
	}
	if _, err := Open(pool, Meta{NumNodes: 5, Tags: []string{"a"}}); err == nil {
		t.Fatal("missing blocks should fail")
	}
}

func TestFillPercentLeavesSlack(t *testing.T) {
	doc := fig2doc(t)
	full := buildStore(t, doc, 64, BuildOptions{})
	half := buildStore(t, doc, 64, BuildOptions{FillPercent: 50})
	if half.NumPages() <= full.NumPages() {
		t.Errorf("FillPercent 50 pages %d, want more than %d", half.NumPages(), full.NumPages())
	}
}

func randomDoc(rng *rand.Rand, n int) *xmltree.Document {
	b := xmltree.NewBuilder()
	b.Begin("r")
	open := 1
	for i := 1; i < n; i++ {
		for open > 1 && rng.Intn(3) == 0 {
			b.End()
			open--
		}
		b.Begin([]string{"x", "y", "z"}[rng.Intn(3)])
		open++
	}
	for ; open > 0; open-- {
		b.End()
	}
	return b.MustFinish()
}

// Property: for random documents, random page sizes and random code
// assignments, every navigation primitive and access lookup agrees with the
// in-memory document oracle.
func TestStoreMatchesOracle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		doc := randomDoc(rng, 1+rng.Intn(300))
		codes := make(arrayCodes, doc.Len())
		cur := uint32(rng.Intn(4))
		for i := range codes {
			if rng.Intn(4) == 0 {
				cur = uint32(rng.Intn(4))
			}
			codes[i] = cur
		}
		pageSize := 64 + rng.Intn(200)
		pool := storage.NewBufferPool(storage.NewMemPager(pageSize), 128)
		s, err := Build(pool, doc, BuildOptions{Codes: codes})
		if err != nil {
			return false
		}
		for n := xmltree.NodeID(0); int(n) < doc.Len(); n++ {
			if fc, err := s.FirstChild(n); err != nil || fc != doc.FirstChild(n) {
				return false
			}
			if fs, err := s.FollowingSibling(n); err != nil || fs != doc.NextSibling(n) {
				return false
			}
			if end, err := s.SubtreeEnd(n); err != nil || end != doc.End(n) {
				return false
			}
			if c, err := s.AccessCodeAt(n); err != nil || c != codes[n] {
				return false
			}
			if lvl, err := s.Level(n); err != nil || lvl != doc.Level(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFollowingSibling(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	doc := benchDoc(rng, 20000)
	pool := storage.NewBufferPool(storage.NewMemPager(4096), 256)
	s, err := Build(pool, doc, BuildOptions{})
	if err != nil {
		b.Fatal(err)
	}
	children := doc.Children(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.FollowingSibling(children[i%len(children)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAccessCodeAt(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	doc := benchDoc(rng, 20000)
	codes := make(arrayCodes, doc.Len())
	for i := range codes {
		codes[i] = uint32(i % 7)
	}
	pool := storage.NewBufferPool(storage.NewMemPager(4096), 256)
	s, err := Build(pool, doc, BuildOptions{Codes: codes})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.AccessCodeAt(xmltree.NodeID(i % doc.Len())); err != nil {
			b.Fatal(err)
		}
	}
}

func TestValueStoreStructuralOps(t *testing.T) {
	doc := xmltree.MustParseString(`<r><a>alpha</a><b>beta</b><c>gamma</c></r>`)
	pool := storage.NewBufferPool(storage.NewMemPager(4096), 64)
	s, err := Build(pool, doc, BuildOptions{StoreValues: true})
	if err != nil {
		t.Fatal(err)
	}
	vs := s.Values()

	// Delete node 2 (b): later refs shift down.
	vs.DeleteRange(2, 2)
	if v, _ := vs.Value(2); v != "gamma" {
		t.Fatalf("after delete, Value(2) = %q, want gamma (shifted)", v)
	}
	if vs.NumValues() != 2 {
		t.Fatalf("NumValues = %d", vs.NumValues())
	}

	// Insert two nodes at position 2, one with a value.
	err = vs.InsertValues(2, 2, func(n xmltree.NodeID) string {
		if n == 1 {
			return "inserted"
		}
		return ""
	})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := vs.Value(3); v != "inserted" {
		t.Fatalf("Value(3) = %q, want inserted", v)
	}
	if v, _ := vs.Value(4); v != "gamma" {
		t.Fatalf("Value(4) = %q, want gamma (shifted up)", v)
	}
	if v, _ := vs.Value(2); v != "" {
		t.Fatalf("Value(2) = %q, want empty", v)
	}

	// Oversized inserted value fails.
	err = vs.InsertValues(0, 1, func(xmltree.NodeID) string {
		return string(bytes.Repeat([]byte{'x'}, 5000))
	})
	if err == nil {
		t.Fatal("oversized inserted value should fail")
	}

	// InsertValues with nil valueOf only shifts.
	before := vs.NumValues()
	if err := vs.InsertValues(0, 3, nil); err != nil {
		t.Fatal(err)
	}
	if vs.NumValues() != before {
		t.Fatal("nil valueOf should not add values")
	}
	if v, _ := vs.Value(6); v != "inserted" {
		t.Fatalf("shift by 3 wrong: Value(6) = %q", v)
	}
}

func TestStoreAccessors(t *testing.T) {
	doc := fig2doc(t)
	pool := storage.NewBufferPool(storage.NewMemPager(128), 64)
	s, err := Build(pool, doc, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Pool() != pool {
		t.Fatal("Pool accessor wrong")
	}
	if len(s.Directory()) != s.NumPages() {
		t.Fatal("Directory length mismatch")
	}
	if s.DirectoryBytes() != s.NumPages()*19 {
		t.Fatalf("DirectoryBytes = %d", s.DirectoryBytes())
	}
	if got := s.PageIndexOf(0); got != 0 {
		t.Fatalf("PageIndexOf(0) = %d", got)
	}
	last := xmltree.NodeID(doc.Len() - 1)
	if got := s.PageIndexOf(last); got != s.NumPages()-1 {
		t.Fatalf("PageIndexOf(last) = %d, want %d", got, s.NumPages()-1)
	}
	if s.FreePages() != 0 {
		t.Fatal("fresh store should have no free pages")
	}
	if _, err := s.Info(-1); err == nil {
		t.Fatal("Info(-1) should fail")
	}
	if _, err := s.Info(xmltree.NodeID(doc.Len())); err == nil {
		t.Fatal("Info past end should fail")
	}
}

// benchDoc builds a random document with realistic bounded depth (~12) for
// benchmarks; the unconstrained randomDoc drifts toward path-shaped trees
// whose depth grows linearly with size, which misrepresents join and
// navigation costs on document-shaped data.
func benchDoc(rng *rand.Rand, n int) *xmltree.Document {
	b := xmltree.NewBuilder()
	b.Begin("r")
	depth := 1
	tags := []string{"x", "y", "z"}
	for i := 1; i < n; i++ {
		for depth > 1 && (depth >= 12 || rng.Intn(3) == 0) {
			b.End()
			depth--
		}
		b.Begin(tags[rng.Intn(len(tags))])
		depth++
	}
	for ; depth > 0; depth-- {
		b.End()
	}
	return b.MustFinish()
}
