package nok

import "testing"

// FuzzDecodeEntry hardens the block entry decoder against corrupt pages:
// arbitrary bytes must either fail cleanly or decode to an entry that
// re-encodes within the consumed length.
func FuzzDecodeEntry(f *testing.F) {
	f.Add([]byte{})
	f.Add(appendEntry(nil, Entry{Tag: 5, CloseCount: 3}))
	f.Add(appendEntry(nil, Entry{Tag: 1 << 20, CloseCount: 1, HasCode: true, Code: 77}))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		e, n, err := decodeEntry(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("decoded %d bytes of %d", n, len(data))
		}
		re := appendEntry(nil, e)
		if len(re) > n {
			// Re-encoding may be shorter (non-canonical varints) but
			// never longer than what was consumed.
			t.Fatalf("entry %+v re-encodes to %d bytes, consumed %d", e, len(re), n)
		}
	})
}
