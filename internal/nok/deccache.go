package nok

import (
	"sync"
	"sync/atomic"

	"dolxml/internal/obs"
	"dolxml/internal/storage"
)

// DefaultDecodeCacheBudget is the default byte budget of the decoded-block
// cache (≈ 1 MiB of decoded entries, roughly 25–30 blocks at the default
// page size).
const DefaultDecodeCacheBudget = 1 << 20

// decEntryOverhead and decEntryCostPerEntry approximate the in-memory cost
// of one cached block: map bucket + header overhead plus the Entry struct
// size (24 bytes on 64-bit) per decoded entry.
const (
	decEntryOverhead     = 64
	decEntryCostPerEntry = 24
)

// DecodeCacheStats report the decoded-block cache's behavior, the decode
// analogue of storage.PoolStats.
type DecodeCacheStats struct {
	// Hits and Misses count lookups served from / missing the cache.
	Hits, Misses int64
	// Evictions counts entries removed to stay within the byte budget.
	Evictions int64
	// Entries and Bytes describe the current contents; Budget is the
	// configured byte ceiling (0 disables caching).
	Entries int
	Bytes   int64
	Budget  int64
}

// decEntry is one cached decoded block. The entries slice is immutable once
// published; stamp is the last-use clock tick, updated atomically so cache
// hits never take the write lock.
type decEntry struct {
	entries []Entry
	cost    int64
	stamp   atomic.Int64
}

// decodeCache is a byte-budgeted LRU over decoded blocks. Lookups take the
// read lock only (parallel query workers do not serialize on hits); inserts
// and invalidations take the write lock and evict the least-recently-used
// entries until the budget holds. LRU order comes from per-entry atomic
// clock stamps, so the eviction scan is O(entries) — tens of entries at
// realistic budgets.
type decodeCache struct {
	mu     sync.RWMutex
	m      map[storage.PageID]*decEntry
	bytes  int64
	budget int64

	clock atomic.Int64
	// Registered under decode_cache_* via Store.RegisterMetrics.
	hits, misses, evictions obs.Counter
}

func newDecodeCache(budget int64) *decodeCache {
	if budget < 0 {
		budget = 0
	}
	return &decodeCache{m: make(map[storage.PageID]*decEntry), budget: budget}
}

func decodeCost(es []Entry) int64 {
	return decEntryOverhead + int64(len(es))*decEntryCostPerEntry
}

// get returns the cached decoding of the page, bumping its LRU stamp.
func (c *decodeCache) get(pid storage.PageID) ([]Entry, bool) {
	c.mu.RLock()
	e := c.m[pid]
	c.mu.RUnlock()
	if e == nil {
		c.misses.Inc()
		return nil, false
	}
	e.stamp.Store(c.clock.Add(1))
	c.hits.Inc()
	return e.entries, true
}

// put caches a decoded block. The slice becomes shared and must never be
// mutated. Blocks larger than the whole budget are not cached.
func (c *decodeCache) put(pid storage.PageID, es []Entry) {
	cost := decodeCost(es)
	if cost > c.budget {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.m[pid]; ok {
		return
	}
	e := &decEntry{entries: es, cost: cost}
	e.stamp.Store(c.clock.Add(1))
	c.m[pid] = e
	c.bytes += cost
	c.evictLocked()
}

// evictLocked removes least-recently-used entries until bytes ≤ budget.
// Caller holds the write lock.
func (c *decodeCache) evictLocked() {
	for c.bytes > c.budget && len(c.m) > 0 {
		var victim storage.PageID
		best := int64(1<<63 - 1)
		for pid, e := range c.m {
			if s := e.stamp.Load(); s < best {
				best = s
				victim = pid
			}
		}
		c.bytes -= c.m[victim].cost
		delete(c.m, victim)
		c.evictions.Inc()
	}
}

// invalidate drops a page's cached decoding (after a rewrite).
func (c *decodeCache) invalidate(pid storage.PageID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.m[pid]; ok {
		c.bytes -= e.cost
		delete(c.m, pid)
	}
}

// setBudget adjusts the byte ceiling, evicting down to it immediately.
// A budget ≤ 0 disables caching and drops the current contents.
func (c *decodeCache) setBudget(budget int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if budget < 0 {
		budget = 0
	}
	c.budget = budget
	c.evictLocked()
}

func (c *decodeCache) stats() DecodeCacheStats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return DecodeCacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Entries:   len(c.m),
		Bytes:     c.bytes,
		Budget:    c.budget,
	}
}

// SetDecodeCacheBudget sets the decoded-block cache's byte budget; ≤ 0
// disables decode caching entirely (pages still flow through the buffer
// pool as usual).
func (s *Store) SetDecodeCacheBudget(budget int64) { s.dec.setBudget(budget) }

// DecodeCacheStats returns the decoded-block cache's counters.
func (s *Store) DecodeCacheStats() DecodeCacheStats { return s.dec.stats() }

// RegisterMetrics registers the decode cache's counters and content gauges
// with reg under prefix (prefix "decode_cache" yields decode_cache_hits,
// decode_cache_bytes, …).
func (s *Store) RegisterMetrics(reg *obs.Registry, prefix string) error {
	c := s.dec
	for _, m := range []struct {
		name, help string
		ctr        *obs.Counter
	}{
		{"hits", "Block decodes served from the cache.", &c.hits},
		{"misses", "Block decodes that had to run.", &c.misses},
		{"evictions", "Decoded blocks evicted under the byte budget.", &c.evictions},
	} {
		if err := reg.RegisterCounter(prefix+"_"+m.name, m.ctr); err != nil {
			return err
		}
		reg.SetHelp(prefix+"_"+m.name, m.help)
	}
	for _, g := range []struct {
		name, help string
		fn         obs.Gauge
	}{
		{"entries", "Decoded blocks resident in the cache.", func() int64 { return int64(c.stats().Entries) }},
		{"bytes", "Bytes held by resident decoded blocks.", func() int64 { return c.stats().Bytes }},
		{"budget_bytes", "Configured decode-cache byte budget.", func() int64 { return c.stats().Budget }},
	} {
		if err := reg.RegisterGauge(prefix+"_"+g.name, g.fn); err != nil {
			return err
		}
		reg.SetHelp(prefix+"_"+g.name, g.help)
	}
	return nil
}
