package nok

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"dolxml/internal/xmltree"
)

// assertSummariesSound re-derives every block's tag set and depth range from
// its stored entries and checks the summary layer against them: a summary
// may never exclude a tag the block contains (no false negatives), an exact
// summary must agree with the block precisely, and the depth bounds must be
// tight.
func assertSummariesSound(t *testing.T, s *Store) {
	t.Helper()
	if got, want := len(s.Summaries()), s.NumPages(); got != want {
		t.Fatalf("%d summaries for %d pages", got, want)
	}
	for i := 0; i < s.NumPages(); i++ {
		entries, err := s.BlockEntries(i)
		if err != nil {
			t.Fatal(err)
		}
		present := make(map[int32]bool, len(entries))
		for _, e := range entries {
			present[e.Tag] = true
		}
		ps := s.SummaryAt(i)
		for code := int32(0); code < int32(s.NumTags()); code++ {
			if present[code] && !ps.MayContainTag(code) {
				t.Fatalf("block %d: contains tag %d but summary excludes it", i, code)
			}
			if !ps.Hashed && !present[code] && ps.MayContainTag(code) {
				t.Errorf("block %d: exact summary claims absent tag %d may be present", i, code)
			}
		}
		pi := s.PageInfoAt(i)
		level := int(pi.StartDepth)
		minL, maxL := level, level
		for _, e := range entries {
			if level < minL {
				minL = level
			}
			if level > maxL {
				maxL = level
			}
			level = level + 1 - e.CloseCount
		}
		if int(ps.MinDepth) != minL || int(ps.MaxDepth) != maxL {
			t.Errorf("block %d: depth range [%d,%d], summary says [%d,%d]",
				i, minL, maxL, ps.MinDepth, ps.MaxDepth)
		}
		if int(pi.MinDepth) != minL {
			t.Errorf("block %d: directory MinDepth %d, derived %d", i, pi.MinDepth, minL)
		}
	}
}

// Property: summaries built alongside random documents at random page sizes
// are sound and exact (all tag codes are tiny, so hashing never kicks in).
func TestSummarySoundness(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		doc := randomDoc(rng, 1+rng.Intn(300))
		pageSize := 64 + rng.Intn(200)
		s := buildStore(t, doc, pageSize, BuildOptions{})
		assertSummariesSound(t, s)
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Summaries must track region rewrites: retag a whole block (structure
// preserved, tag set changed) and require the summary layer — and the
// store's own consistency check — to reflect the new contents.
func TestSummaryAfterRewrite(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	doc := randomDoc(rng, 200)
	s := buildStore(t, doc, 96, BuildOptions{})
	if s.NumPages() < 3 {
		t.Fatalf("want a multi-block store, got %d pages", s.NumPages())
	}
	fresh := s.InternTag("only-after-rewrite")
	target := s.NumPages() / 2
	entries, err := s.BlockEntries(target)
	if err != nil {
		t.Fatal(err)
	}
	for k := range entries {
		entries[k].Tag = fresh
	}
	pi := s.PageInfoAt(target)
	if _, err := s.RewriteRegion(target, target, entries, int(pi.StartDepth), pi.AccessCode); err != nil {
		t.Fatal(err)
	}
	if !s.SummaryAt(target).MayContainTag(fresh) {
		t.Fatal("rewritten block's summary excludes its new tag")
	}
	old, ok := s.LookupTag("x")
	if !ok {
		t.Fatal("tag x missing from dictionary")
	}
	if s.SummaryAt(target).MayContainTag(old) {
		t.Error("rewritten block's summary still claims a retagged-away tag")
	}
	assertSummariesSound(t, s)
	if err := s.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// A document with more distinct tags than the bitmap has bits forces the
// Bloom-hashed encoding on blocks holding large codes; hashed summaries may
// report false positives but never false negatives, and exact summaries
// must reject any code beyond the bitmap outright.
func TestSummaryHashed(t *testing.T) {
	b := xmltree.NewBuilder()
	b.Begin("root")
	for i := 0; i < 300; i++ {
		b.Begin(fmt.Sprintf("t%03d", i))
		b.End()
	}
	b.End()
	doc := b.MustFinish()
	s := buildStore(t, doc, 128, BuildOptions{})
	assertSummariesSound(t, s)
	hashed := 0
	for i := 0; i < s.NumPages(); i++ {
		ps := s.SummaryAt(i)
		if ps.Hashed {
			hashed++
		} else if ps.MayContainTag(summaryBits) {
			t.Errorf("block %d: exact summary admits out-of-range code %d", i, summaryBits)
		}
	}
	if hashed == 0 {
		t.Fatalf("no hashed summaries over %d tags and %d pages", s.NumTags(), s.NumPages())
	}
	if err := s.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// A tampered summary must fail the store's consistency check.
func TestSummaryConsistencyDetectsCorruption(t *testing.T) {
	doc := fig2doc(t)
	s := buildStore(t, doc, 64, BuildOptions{})
	if err := s.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	s.summaries[0].Tags[0] ^= 1 << 63
	if err := s.CheckConsistency(); err == nil {
		t.Fatal("corrupted summary passed CheckConsistency")
	}
}
