package nok

import (
	"context"
	"fmt"
	"sort"

	"dolxml/internal/storage"
	"dolxml/internal/xmltree"
)

// ValueStore holds node text values on their own pages, separate from the
// structure blocks, following the NoK design of storing structure and
// values apart. Only nodes with non-empty values occupy space; an in-memory
// index maps node IDs to their value's location.
type ValueStore struct {
	pool *storage.BufferPool
	// refs is sorted by Node.
	refs []valueRef
}

type valueRef struct {
	Node xmltree.NodeID
	Page storage.PageID
	Off  uint16
	Len  uint16
}

// BuildValues writes the values of nodes 0..numNodes-1 (as reported by
// valueOf) into pages from pool, in document order.
func BuildValues(pool *storage.BufferPool, numNodes int, valueOf func(xmltree.NodeID) string) (*ValueStore, error) {
	vs := &ValueStore{pool: pool}
	pageSize := pool.Pager().PageSize()
	var (
		frame *storage.Frame
		off   int
	)
	flush := func() error {
		if frame == nil {
			return nil
		}
		err := pool.Unpin(frame.ID(), true)
		frame = nil
		return err
	}
	for n := xmltree.NodeID(0); int(n) < numNodes; n++ {
		v := valueOf(n)
		if v == "" {
			continue
		}
		if len(v) > pageSize {
			return nil, fmt.Errorf("nok: value of node %d (%d bytes) exceeds page size %d", n, len(v), pageSize)
		}
		if frame == nil || off+len(v) > pageSize {
			if err := flush(); err != nil {
				return nil, err
			}
			f, err := pool.Allocate()
			if err != nil {
				return nil, err
			}
			frame = f
			off = 0
		}
		copy(frame.Data[off:], v)
		vs.refs = append(vs.refs, valueRef{Node: n, Page: frame.ID(), Off: uint16(off), Len: uint16(len(v))})
		off += len(v)
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return vs, nil
}

// Value returns the text value of node n ("" when the node has none).
func (vs *ValueStore) Value(n xmltree.NodeID) (string, error) {
	return vs.ValueCtx(context.Background(), n)
}

// ValueCtx is Value with cancellation at the page-fetch boundary.
func (vs *ValueStore) ValueCtx(ctx context.Context, n xmltree.NodeID) (string, error) {
	i := sort.Search(len(vs.refs), func(i int) bool { return vs.refs[i].Node >= n })
	if i >= len(vs.refs) || vs.refs[i].Node != n {
		return "", nil
	}
	r := vs.refs[i]
	f, err := vs.pool.GetCtx(ctx, r.Page)
	if err != nil {
		return "", err
	}
	defer vs.pool.Unpin(r.Page, false)
	return string(f.Data[r.Off : r.Off+r.Len]), nil
}

// NumValues returns the number of stored (non-empty) values.
func (vs *ValueStore) NumValues() int { return len(vs.refs) }

// refSize is the in-memory bytes per value index entry.
const refSize = 4 + 4 + 2 + 2

// IndexBytes estimates the in-memory size of the value index.
func (vs *ValueStore) IndexBytes() int { return len(vs.refs) * refSize }

// DeleteRange removes the value references of nodes [lo, hi] and shifts the
// node IDs of later references down, mirroring a structural subtree delete.
// The freed value bytes are reclaimed lazily (on the next full rebuild).
// The index is rebuilt copy-on-write: frozen clones keep reading the old
// slice while the live store installs the compacted one.
func (vs *ValueStore) DeleteRange(lo, hi xmltree.NodeID) {
	removed := hi - lo + 1
	out := make([]valueRef, 0, len(vs.refs))
	for _, r := range vs.refs {
		switch {
		case r.Node < lo:
			out = append(out, r)
		case r.Node > hi:
			r.Node -= removed
			out = append(out, r)
		}
	}
	vs.refs = out
}

// InsertValues shifts the node IDs of references at or after `at` up by
// count and stores the values of the count inserted nodes (as reported by
// valueOf for fragment-relative IDs 0..count-1) on freshly allocated pages.
func (vs *ValueStore) InsertValues(at xmltree.NodeID, count int, valueOf func(xmltree.NodeID) string) error {
	i := sort.Search(len(vs.refs), func(i int) bool { return vs.refs[i].Node >= at })
	if valueOf == nil {
		// Copy-on-write: shift into a fresh slice so frozen clones sharing
		// the old one keep their node IDs.
		out := make([]valueRef, len(vs.refs))
		copy(out, vs.refs)
		for k := i; k < len(out); k++ {
			out[k].Node += xmltree.NodeID(count)
		}
		vs.refs = out
		return nil
	}
	// Validate every inserted value before mutating the index, so a
	// failed insert leaves the store untouched.
	pageSize := vs.pool.Pager().PageSize()
	for n := 0; n < count; n++ {
		if v := valueOf(xmltree.NodeID(n)); len(v) > pageSize {
			return fmt.Errorf("nok: inserted value of node %d (%d bytes) exceeds page size %d", n, len(v), pageSize)
		}
	}
	var (
		frame *storage.Frame
		off   int
		added []valueRef
	)
	flush := func() error {
		if frame == nil {
			return nil
		}
		err := vs.pool.Unpin(frame.ID(), true)
		frame = nil
		return err
	}
	for n := 0; n < count; n++ {
		v := valueOf(xmltree.NodeID(n))
		if v == "" {
			continue
		}
		if frame == nil || off+len(v) > pageSize {
			if err := flush(); err != nil {
				return err
			}
			f, err := vs.pool.Allocate()
			if err != nil {
				return err
			}
			frame = f
			off = 0
		}
		copy(frame.Data[off:], v)
		added = append(added, valueRef{Node: at + xmltree.NodeID(n), Page: frame.ID(), Off: uint16(off), Len: uint16(len(v))})
		off += len(v)
	}
	if err := flush(); err != nil {
		return err
	}
	// All writes succeeded: splice head, new refs and shifted tail into a
	// fresh slice (copy-on-write for frozen clones), keeping the index
	// sorted by node.
	out := make([]valueRef, 0, len(vs.refs)+len(added))
	out = append(out, vs.refs[:i]...)
	out = append(out, added...)
	for _, r := range vs.refs[i:] {
		r.Node += xmltree.NodeID(count)
		out = append(out, r)
	}
	vs.refs = out
	return nil
}
