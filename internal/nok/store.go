package nok

import (
	"context"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"dolxml/internal/obs"
	"dolxml/internal/pathsum"
	"dolxml/internal/storage"
	"dolxml/internal/xmltree"
)

// Block layout (within one storage page):
//
//	offset 0  u32  firstNode      document-order ID of the first entry
//	offset 4  u16  startDepth     level of the first entry (root = 0)
//	offset 6  u16  minDepth       minimum level of any entry in the block
//	offset 8  u16  count          number of entries
//	offset 10 u16  dataLen        bytes of encoded entries following header
//	offset 12 u32  accessCode     DOL code in force at the first entry (§3.2)
//	offset 16 u8   flags          bit 0: change bit (§3.2)
//	offset 17      entries...
const (
	headerSize    = 17
	flagChangeBit = 1 << 0
)

// PageInfo is the in-memory directory record for one structure block — the
// "page header kept in memory" of paper §3.2 that enables access checks and
// page skipping without physical reads.
type PageInfo struct {
	// Page is the underlying storage page.
	Page storage.PageID
	// FirstNode is the document-order ID of the block's first entry.
	FirstNode xmltree.NodeID
	// Count is the number of entries in the block.
	Count int
	// StartDepth is the level of the first entry.
	StartDepth uint16
	// MinDepth is the minimum level of any entry in the block; a
	// navigation scan looking for an ancestor boundary at level ≤ L may
	// skip the block whenever MinDepth > L.
	MinDepth uint16
	// AccessCode is the DOL access-control code in force at the first
	// entry (the block's implicit initial transition node).
	AccessCode uint32
	// ChangeBit is set when the block contains at least one transition
	// node beyond the initial one; clear means AccessCode governs every
	// node in the block (§3.3 page skipping).
	ChangeBit bool
}

// Store is a block-oriented succinct structure store for one document,
// optionally carrying embedded DOL access codes.
type Store struct {
	pool *storage.BufferPool
	// dir lists blocks in document order; it is the in-memory page
	// directory.
	dir      []PageInfo
	tags     []string
	tagIndex map[string]int32
	numNodes int
	values   *ValueStore
	// freeList holds pages released by shrinking region rewrites,
	// available for reuse by growing ones.
	freeList []storage.PageID
	// gate, when set, defers page reuse for snapshot isolation: freePage
	// diverts released pages into retired instead of freeList, and
	// allocPage replenishes freeList only from gate.Harvest() — pages whose
	// last referencing snapshot has retired. With a gate installed, page
	// content is immutable for as long as any pinned snapshot references
	// the page.
	gate PageReuseGate
	// retired accumulates pages released by the current update transaction;
	// the owner collects them with TakeRetired at commit and hands them to
	// the version table tagged with the new version's sequence.
	retired []storage.PageID

	// summaries holds the per-block structural summaries (tag-presence
	// bitmap + depth range), parallel to dir and maintained by the same
	// paths (Build, RewriteRegion, Open).
	summaries []PageSummary

	// paths is the global path summary (one node per distinct root-to-tag
	// label path, with per-block class sets parallel to dir). Installed
	// summaries are immutable: RewriteRegion replaces the pointer with a
	// copy-on-write clone, so frozen snapshots share it safely.
	paths *pathsum.Summary

	// dec is the decoded-block cache: navigation primitives (FIRST-CHILD,
	// FOLLOWING-SIBLING, access lookup) re-scan whole blocks; caching
	// decoded blocks under a byte budget removes the dominant allocation
	// from query evaluation without changing I/O behavior (the underlying
	// pages still flow through the buffer pool and its statistics). Cached
	// slices are immutable once published. Store mutations (RewriteRegion
	// and friends) must be externally serialized against readers —
	// securexml does so behind its store lock — but concurrent readers on
	// their own are always safe.
	dec *decodeCache
}

// invalidateDecoded drops a page from the decode cache (after a rewrite).
func (s *Store) invalidateDecoded(pid storage.PageID) {
	s.dec.invalidate(pid)
}

// PageReuseGate quarantines freed pages until no pinned snapshot can still
// read them. storage.VersionTable implements it.
type PageReuseGate interface {
	// Harvest returns pages whose quarantine has ended, transferring
	// ownership to the caller.
	Harvest() []storage.PageID
}

// SetPageReuseGate installs (or clears) the deferred-reuse gate. Installing
// a gate switches region rewrites to shadow paging: every rewritten block
// lands on a fresh or harvested page, never overwriting a page a live
// snapshot might reference.
func (s *Store) SetPageReuseGate(g PageReuseGate) { s.gate = g }

// TakeRetired returns the pages released since the last call and resets the
// list. Meaningful only with a gate installed; the caller passes them to
// the version table when publishing the commit (or drops them when the
// transaction aborts — a dirty abort poisons the store anyway).
func (s *Store) TakeRetired() []storage.PageID {
	out := s.retired
	s.retired = nil
	return out
}

// Freeze returns a read-only clone sharing the current pages, directory,
// summaries, tag table, values and decode cache. The live store's later
// mutations install fresh slices and maps (and, with a gate, never rewrite
// a referenced page in place), so the clone keeps serving its version while
// updates proceed. The clone must not be mutated.
func (s *Store) Freeze() *Store {
	c := *s
	if s.values != nil {
		v := *s.values
		c.values = &v
	}
	c.freeList = nil
	c.retired = nil
	c.gate = nil
	return &c
}

// Pool returns the buffer pool backing the store.
func (s *Store) Pool() *storage.BufferPool { return s.pool }

// NumNodes returns the number of nodes in the stored document.
func (s *Store) NumNodes() int { return s.numNodes }

// NumPages returns the number of structure blocks.
func (s *Store) NumPages() int { return len(s.dir) }

// PageInfoAt returns the directory record for block i.
func (s *Store) PageInfoAt(i int) PageInfo { return s.dir[i] }

// Directory returns the in-memory page directory (shared; read-only for
// callers).
func (s *Store) Directory() []PageInfo { return s.dir }

// DirectoryBytes estimates the in-memory size of the page directory, the
// quantity behind the paper's "3 MB–10 MB of headers per 1 TB" claim.
func (s *Store) DirectoryBytes() int {
	// Page, FirstNode: 4+4; depths: 2+2; count: 2 (practically); code: 4;
	// change bit: 1.
	return len(s.dir) * 19
}

// TagName returns the tag string for a tag code.
func (s *Store) TagName(code int32) string { return s.tags[code] }

// NumTags returns the number of distinct tags.
func (s *Store) NumTags() int { return len(s.tags) }

// LookupTag returns the code for a tag name.
func (s *Store) LookupTag(tag string) (int32, bool) {
	c, ok := s.tagIndex[tag]
	return c, ok
}

// Values returns the store's value store, or nil if values were not stored.
func (s *Store) Values() *ValueStore { return s.values }

// Valid reports whether n is a node of the stored document.
func (s *Store) Valid(n xmltree.NodeID) bool { return n >= 0 && int(n) < s.numNodes }

// pageOf returns the directory index of the block containing node n.
func (s *Store) pageOf(n xmltree.NodeID) int {
	// First block whose FirstNode > n, minus one.
	i := sort.Search(len(s.dir), func(i int) bool { return s.dir[i].FirstNode > n })
	return i - 1
}

// readBlock pins the page of directory entry i and returns its frame. The
// caller must unpin. Cancellation is honored at this page-fetch boundary.
func (s *Store) readBlock(ctx context.Context, i int) (*storage.Frame, error) {
	return s.pool.GetCtx(ctx, s.dir[i].Page)
}

// decodeBlock decodes all entries of the block in frame data. It returns
// the entries slice. The header is validated against dir[i].
func (s *Store) decodeBlock(i int, data []byte) ([]Entry, error) {
	count := int(binary.LittleEndian.Uint16(data[8:10]))
	dataLen := int(binary.LittleEndian.Uint16(data[10:12]))
	if count != s.dir[i].Count {
		return nil, fmt.Errorf("nok: block %d count mismatch: header %d, directory %d", i, count, s.dir[i].Count)
	}
	entries := make([]Entry, 0, count)
	body := data[headerSize : headerSize+dataLen]
	for len(body) > 0 {
		e, n, err := decodeEntry(body)
		if err != nil {
			return nil, fmt.Errorf("nok: block %d: %w", i, err)
		}
		entries = append(entries, e)
		body = body[n:]
	}
	if len(entries) != count {
		return nil, fmt.Errorf("nok: block %d decoded %d entries, header says %d", i, len(entries), count)
	}
	return entries, nil
}

// blockEntries loads and decodes block i. The returned slice may be shared
// via the decode cache and must be treated as read-only; use BlockEntries
// for a mutable copy. The context is consulted at the page-fetch boundary,
// so a cancelled query stops before pinning another page.
func (s *Store) blockEntries(ctx context.Context, i int) ([]Entry, error) {
	pid := s.dir[i].Page
	if es, ok := s.dec.get(pid); ok {
		// Keep buffer-pool statistics meaningful: a decode-cache hit is
		// also a pool hit (the page is logically touched).
		f, err := s.pool.GetCtx(ctx, pid)
		if err != nil {
			return nil, err
		}
		if err := s.pool.Unpin(f.ID(), false); err != nil {
			return nil, err
		}
		return es, nil
	}
	f, err := s.readBlock(ctx, i)
	if err != nil {
		return nil, err
	}
	defer s.pool.Unpin(f.ID(), false)
	obs.TraceFromContext(ctx).PageDecode(int64(pid))
	es, err := s.decodeBlock(i, f.Data)
	if err != nil {
		return nil, err
	}
	s.dec.put(pid, es)
	return es, nil
}

// NodeInfo is the decoded state of one node during a scan.
type NodeInfo struct {
	ID    xmltree.NodeID
	Entry Entry
	// Level is the node's depth (root = 0).
	Level int
	// Code is the DOL access code in force at this node (the code of the
	// nearest preceding transition node, found in the same block).
	Code uint32
}

// scanTo decodes block i up to and including node n, returning n's info.
// This is the paper's access-lookup procedure (§3.3): the governing
// transition node is always found within n's own block.
func (s *Store) scanTo(ctx context.Context, i int, n xmltree.NodeID) (NodeInfo, error) {
	entries, err := s.blockEntries(ctx, i)
	if err != nil {
		return NodeInfo{}, err
	}
	info := s.dir[i]
	level := int(info.StartDepth)
	code := info.AccessCode
	id := info.FirstNode
	for _, e := range entries {
		if e.HasCode {
			code = e.Code
		}
		if id == n {
			return NodeInfo{ID: n, Entry: e, Level: level, Code: code}, nil
		}
		level = level + 1 - e.CloseCount
		id++
	}
	return NodeInfo{}, fmt.Errorf("nok: node %d not found in block %d", n, i)
}

// Info returns the decoded state of node n.
func (s *Store) Info(n xmltree.NodeID) (NodeInfo, error) {
	return s.InfoCtx(context.Background(), n)
}

// InfoCtx is Info with cancellation at the page-fetch boundary.
func (s *Store) InfoCtx(ctx context.Context, n xmltree.NodeID) (NodeInfo, error) {
	if !s.Valid(n) {
		return NodeInfo{}, fmt.Errorf("nok: invalid node %d", n)
	}
	return s.scanTo(ctx, s.pageOf(n), n)
}

// Tag returns the tag code of node n.
func (s *Store) Tag(n xmltree.NodeID) (int32, error) {
	info, err := s.Info(n)
	if err != nil {
		return 0, err
	}
	return info.Entry.Tag, nil
}

// Level returns the depth of node n.
func (s *Store) Level(n xmltree.NodeID) (int, error) {
	info, err := s.Info(n)
	if err != nil {
		return 0, err
	}
	return info.Level, nil
}

// AccessCodeAt returns the DOL access code governing node n. Per the
// paper's design the lookup touches only n's own block (plus the in-memory
// directory), so when the block is already pinned for navigation the check
// costs no additional I/O.
func (s *Store) AccessCodeAt(n xmltree.NodeID) (uint32, error) {
	return s.AccessCodeAtCtx(context.Background(), n)
}

// AccessCodeAtCtx is AccessCodeAt with cancellation at the page-fetch
// boundary.
func (s *Store) AccessCodeAtCtx(ctx context.Context, n xmltree.NodeID) (uint32, error) {
	info, err := s.InfoCtx(ctx, n)
	if err != nil {
		return 0, err
	}
	return info.Code, nil
}

// FirstChild returns the first child of n, or InvalidNode if n is a leaf —
// subroutine FIRST-CHILD of Algorithm 1.
func (s *Store) FirstChild(n xmltree.NodeID) (xmltree.NodeID, error) {
	return s.FirstChildCtx(context.Background(), n)
}

// FirstChildCtx is FirstChild with cancellation at the page-fetch boundary.
func (s *Store) FirstChildCtx(ctx context.Context, n xmltree.NodeID) (xmltree.NodeID, error) {
	info, err := s.InfoCtx(ctx, n)
	if err != nil {
		return xmltree.InvalidNode, err
	}
	if info.Entry.CloseCount > 0 {
		return xmltree.InvalidNode, nil
	}
	return n + 1, nil
}

// FollowingSibling returns the next sibling of n, or InvalidNode —
// subroutine FOLLOWING-SIBLING of Algorithm 1. The scan skips, via the
// in-memory directory alone, every block that provably lies strictly inside
// n's subtree (MinDepth > level(n)).
func (s *Store) FollowingSibling(n xmltree.NodeID) (xmltree.NodeID, error) {
	return s.FollowingSiblingSkipCtx(context.Background(), n, nil)
}

// FollowingSiblingSkip is FollowingSibling extended with a page-skip
// predicate for secure matching (§3.3): during the cross-block scan, a
// block for which skip reports true (meaning every node in it is
// inaccessible, per its in-memory header) is skipped without a physical
// read when its MinDepth is at least the sibling level — such a block can
// only contain inaccessible siblings and their descendants, which the
// secure matcher rejects anyway. When such a block additionally contains a
// node shallower than the sibling level, the parent's subtree ends inside
// it and the scan can conclude, again without I/O, that no accessible
// sibling remains.
//
// The returned node is therefore the next sibling that does not lie in a
// wholly-skipped block; with a nil predicate it is exactly the next
// sibling.
func (s *Store) FollowingSiblingSkip(n xmltree.NodeID, skip func(pageIdx int) bool) (xmltree.NodeID, error) {
	return s.FollowingSiblingSkipCtx(context.Background(), n, skip)
}

// FollowingSiblingSkipCtx is FollowingSiblingSkip with cancellation at
// every page-fetch boundary of the cross-block scan.
func (s *Store) FollowingSiblingSkipCtx(ctx context.Context, n xmltree.NodeID, skip func(pageIdx int) bool) (xmltree.NodeID, error) {
	if !s.Valid(n) {
		return xmltree.InvalidNode, fmt.Errorf("nok: invalid node %d", n)
	}
	i := s.pageOf(n)
	entries, err := s.blockEntries(ctx, i)
	if err != nil {
		return xmltree.InvalidNode, err
	}
	info := s.dir[i]
	// Locate n within the block and its level.
	level := int(info.StartDepth)
	idx := int(n - info.FirstNode)
	for j := 0; j < idx; j++ {
		level = level + 1 - entries[j].CloseCount
	}
	targetLevel := level
	// Scan forward within the block for the first node at level ≤ target.
	id := n
	for j := idx; j < len(entries); j++ {
		if j > idx && level <= targetLevel {
			if level == targetLevel {
				return id, nil
			}
			return xmltree.InvalidNode, nil
		}
		level = level + 1 - entries[j].CloseCount
		id++
	}
	// Continue across blocks, skipping those wholly inside the subtree.
	return s.scanForLevelCtx(ctx, i+1, targetLevel, skip)
}

// scanForLevelCtx is the cross-block tail of a sibling scan: starting at
// directory index k, it returns the first node at exactly targetLevel, or
// InvalidNode once a shallower node (or a skipped block proving one) shows
// the enclosing subtree has closed. Blocks for which skip reports true are
// passed over without a physical read under the §3.3 discipline: when such
// a block's MinDepth is at least targetLevel it can only hold skippable
// siblings and their descendants; when it is shallower, the parent subtree
// ends inside it and the scan concludes with no further sibling.
func (s *Store) scanForLevelCtx(ctx context.Context, k, targetLevel int, skip func(pageIdx int) bool) (xmltree.NodeID, error) {
	for ; k < len(s.dir); k++ {
		pi := s.dir[k]
		if int(pi.MinDepth) > targetLevel {
			continue // directory-only skip: block is inside the subtree
		}
		if skip != nil && skip(k) {
			if int(pi.MinDepth) >= targetLevel {
				continue // only skippable siblings and their subtrees
			}
			// The parent subtree ends inside a fully-skipped block: no
			// eligible sibling remains.
			return xmltree.InvalidNode, nil
		}
		if int(pi.StartDepth) <= targetLevel {
			if int(pi.StartDepth) == targetLevel {
				return pi.FirstNode, nil
			}
			return xmltree.InvalidNode, nil
		}
		bentries, err := s.blockEntries(ctx, k)
		if err != nil {
			return xmltree.InvalidNode, err
		}
		lvl := int(pi.StartDepth)
		bid := pi.FirstNode
		for _, e := range bentries {
			if lvl <= targetLevel {
				if lvl == targetLevel {
					return bid, nil
				}
				return xmltree.InvalidNode, nil
			}
			lvl = lvl + 1 - e.CloseCount
			bid++
		}
	}
	return xmltree.InvalidNode, nil
}

// NextSiblingFromBlockCtx resumes a sibling scan at a block boundary: it
// returns the first node at exactly targetLevel in blocks blockIdx,
// blockIdx+1, …, under the same skip discipline as
// FollowingSiblingSkipCtx — without decoding block blockIdx when the
// directory or the skip predicate can dispose of it. The ε-NoK matcher
// uses it when a child scan lands on the first node of a block its skip
// mask excludes: every node in that block is then known unmatchable, and
// the block's MinDepth alone decides whether the scan continues past it or
// the parent's subtree closes inside it.
func (s *Store) NextSiblingFromBlockCtx(ctx context.Context, blockIdx, targetLevel int, skip func(pageIdx int) bool) (xmltree.NodeID, error) {
	if blockIdx < 0 || blockIdx >= len(s.dir) {
		return xmltree.InvalidNode, fmt.Errorf("nok: invalid block %d of %d", blockIdx, len(s.dir))
	}
	return s.scanForLevelCtx(ctx, blockIdx, targetLevel, skip)
}

// SubtreeEnd returns the last node of n's subtree (n itself for leaves),
// using the same directory-assisted scan as FollowingSibling.
func (s *Store) SubtreeEnd(n xmltree.NodeID) (xmltree.NodeID, error) {
	return s.SubtreeEndCtx(context.Background(), n)
}

// SubtreeEndCtx is SubtreeEnd with cancellation at every page-fetch
// boundary of the cross-block scan.
func (s *Store) SubtreeEndCtx(ctx context.Context, n xmltree.NodeID) (xmltree.NodeID, error) {
	if !s.Valid(n) {
		return xmltree.InvalidNode, fmt.Errorf("nok: invalid node %d", n)
	}
	i := s.pageOf(n)
	entries, err := s.blockEntries(ctx, i)
	if err != nil {
		return xmltree.InvalidNode, err
	}
	info := s.dir[i]
	level := int(info.StartDepth)
	idx := int(n - info.FirstNode)
	for j := 0; j < idx; j++ {
		level = level + 1 - entries[j].CloseCount
	}
	targetLevel := level
	id := n
	for j := idx; j < len(entries); j++ {
		if j > idx && level <= targetLevel {
			return id - 1, nil
		}
		level = level + 1 - entries[j].CloseCount
		id++
	}
	for k := i + 1; k < len(s.dir); k++ {
		pi := s.dir[k]
		if int(pi.MinDepth) > targetLevel {
			continue
		}
		if int(pi.StartDepth) <= targetLevel {
			return pi.FirstNode - 1, nil
		}
		bentries, err := s.blockEntries(ctx, k)
		if err != nil {
			return xmltree.InvalidNode, err
		}
		lvl := int(pi.StartDepth)
		bid := pi.FirstNode
		for _, e := range bentries {
			if lvl <= targetLevel {
				return bid - 1, nil
			}
			lvl = lvl + 1 - e.CloseCount
			bid++
		}
	}
	return xmltree.NodeID(s.numNodes - 1), nil
}

// WalkSubtree calls visit for every node in n's subtree in document order,
// including n itself, streaming block by block. visit receives each node's
// info; returning false stops the walk early.
func (s *Store) WalkSubtree(n xmltree.NodeID, visit func(NodeInfo) bool) error {
	if !s.Valid(n) {
		return fmt.Errorf("nok: invalid node %d", n)
	}
	end, err := s.SubtreeEnd(n)
	if err != nil {
		return err
	}
	for i := s.pageOf(n); i < len(s.dir); i++ {
		pi := s.dir[i]
		if pi.FirstNode > end {
			break
		}
		entries, err := s.blockEntries(context.Background(), i)
		if err != nil {
			return err
		}
		level := int(pi.StartDepth)
		code := pi.AccessCode
		id := pi.FirstNode
		for _, e := range entries {
			if e.HasCode {
				code = e.Code
			}
			if id >= n && id <= end {
				if !visit(NodeInfo{ID: id, Entry: e, Level: level, Code: code}) {
					return nil
				}
			}
			level = level + 1 - e.CloseCount
			id++
		}
	}
	return nil
}

// PageIndexOf returns the directory index of the block holding node n, for
// use with skip hints.
func (s *Store) PageIndexOf(n xmltree.NodeID) int { return s.pageOf(n) }

// Paths returns the store's path summary, or nil if none is installed.
// The returned summary is immutable.
func (s *Store) Paths() *pathsum.Summary { return s.paths }

// PathSummaryBytes estimates the in-memory size of the path summary.
func (s *Store) PathSummaryBytes() int {
	if s.paths == nil {
		return 0
	}
	return s.paths.Bytes()
}

// PathSummaryMeta returns the serializable form of the path summary (nil
// when the store has none) without building a full Meta, whose value-ref
// list is large — commit paths re-encode just this per seal.
func (s *Store) PathSummaryMeta() *pathsum.Meta {
	if s.paths == nil {
		return nil
	}
	return s.paths.ToMeta()
}

// RebuildPathSummary reconstructs the path summary from the structure
// blocks. Build and Open install one automatically; this is the recovery
// path when an incremental rewrite cannot replay cleanly, and the oracle
// for tests.
func (s *Store) RebuildPathSummary() error {
	ps, err := s.scanPathSummary()
	if err != nil {
		return err
	}
	s.paths = ps
	return nil
}

// scanPathSummary decodes every block and builds a fresh path summary.
func (s *Store) scanPathSummary() (*pathsum.Summary, error) {
	b := pathsum.NewBuilder()
	for i := range s.dir {
		pi := s.dir[i]
		entries, err := s.blockEntries(context.Background(), i)
		if err != nil {
			return nil, err
		}
		code := pi.AccessCode
		for _, e := range entries {
			if e.HasCode {
				code = e.Code
			}
			b.Entry(e.Tag, e.CloseCount, code)
		}
		b.EndBlock()
	}
	ps, err := b.Finish()
	if err != nil {
		return nil, fmt.Errorf("nok: path summary scan: %w", err)
	}
	return ps, nil
}

// CheckConsistency cross-validates the in-memory page directory against
// the on-disk block contents: contiguous node coverage, entry counts,
// header depths and change bits, and balanced parenthesis structure. It is
// intended for operational sanity checks (e.g. after reopening a store)
// and for tests.
func (s *Store) CheckConsistency() error {
	if len(s.summaries) != len(s.dir) {
		return fmt.Errorf("nok: %d summaries for %d blocks", len(s.summaries), len(s.dir))
	}
	next := xmltree.NodeID(0)
	depth := -1
	psb := pathsum.NewBuilder()
	for i := range s.dir {
		pi := s.dir[i]
		if pi.FirstNode != next {
			return fmt.Errorf("nok: block %d starts at node %d, want %d", i, pi.FirstNode, next)
		}
		entries, err := s.blockEntries(context.Background(), i)
		if err != nil {
			return err
		}
		if len(entries) != pi.Count {
			return fmt.Errorf("nok: block %d has %d entries, directory says %d", i, len(entries), pi.Count)
		}
		if pi.Count == 0 {
			return fmt.Errorf("nok: block %d is empty", i)
		}
		if entries[0].HasCode {
			return fmt.Errorf("nok: block %d first entry carries an inline code", i)
		}
		if depth >= 0 && int(pi.StartDepth) != depth {
			return fmt.Errorf("nok: block %d starts at depth %d, carry-over is %d", i, pi.StartDepth, depth)
		}
		level := int(pi.StartDepth)
		min := level
		change := false
		code := pi.AccessCode
		for _, e := range entries {
			if level < min {
				min = level
			}
			if e.HasCode {
				change = true
				code = e.Code
			}
			if int(e.Tag) >= len(s.tags) {
				return fmt.Errorf("nok: block %d references unknown tag %d", i, e.Tag)
			}
			psb.Entry(e.Tag, e.CloseCount, code)
			level = level + 1 - e.CloseCount
			if level < 0 {
				return fmt.Errorf("nok: block %d closes below the root", i)
			}
		}
		psb.EndBlock()
		if int(pi.MinDepth) != min {
			return fmt.Errorf("nok: block %d MinDepth %d, recomputed %d", i, pi.MinDepth, min)
		}
		if pi.ChangeBit != change {
			return fmt.Errorf("nok: block %d change bit %v, recomputed %v", i, pi.ChangeBit, change)
		}
		if ps := summarizeBlock(entries, int(pi.StartDepth)); ps != s.summaries[i] {
			return fmt.Errorf("nok: block %d summary %+v, recomputed %+v", i, s.summaries[i], ps)
		}
		depth = level
		next += xmltree.NodeID(pi.Count)
	}
	if int(next) != s.numNodes {
		return fmt.Errorf("nok: blocks cover %d nodes, store says %d", next, s.numNodes)
	}
	if depth != 0 {
		return fmt.Errorf("nok: document ends at depth %d, want 0", depth)
	}
	if s.paths != nil {
		rebuilt, err := psb.Finish()
		if err != nil {
			return fmt.Errorf("nok: path summary recompute: %w", err)
		}
		if err := s.paths.VerifyAgainst(rebuilt); err != nil {
			return err
		}
		// Cross-validate against the per-page summaries: every class the
		// path summary places in a block must have its tag admitted by
		// that block's tag bitmap (the two structures describe the same
		// pages and must agree).
		for b := 0; b < s.paths.NumBlocks(); b++ {
			var bad error
			blk := s.paths.Block(b)
			blk.ForEach(func(id int32) {
				if bad != nil {
					return
				}
				if tag := s.paths.NodeAt(id).Tag; !s.summaries[b].MayContainTag(tag) {
					bad = fmt.Errorf("nok: block %d holds path class %d (tag %d) absent from its page summary", b, id, tag)
				}
			})
			if bad != nil {
				return bad
			}
		}
	}
	return nil
}

// openNode is one still-open subtree during an extent walk.
type openNode struct {
	node  xmltree.NodeID
	level int
	tag   int32
}

// extentStackPool recycles the open-subtree stacks of ForEachExtent: the
// stack grows to document depth and index rebuilds run it over the whole
// store.
var extentStackPool = sync.Pool{
	New: func() any {
		s := make([]openNode, 0, 64)
		return &s
	},
}

// ForEachExtent streams every node with its subtree extent, level and tag
// code in document order using a single pass over the structure blocks —
// the input needed to (re)build a tag index over the store.
func (s *Store) ForEachExtent(visit func(n, end xmltree.NodeID, level int, tag int32)) error {
	if s.numNodes == 0 {
		return nil
	}
	stackBuf := extentStackPool.Get().(*[]openNode)
	defer func() { extentStackPool.Put(stackBuf) }()
	stack := (*stackBuf)[:0]
	defer func() { *stackBuf = stack }()
	for i := range s.dir {
		pi := s.dir[i]
		entries, err := s.blockEntries(context.Background(), i)
		if err != nil {
			return err
		}
		level := int(pi.StartDepth)
		id := pi.FirstNode
		for _, e := range entries {
			stack = append(stack, openNode{id, level, e.Tag})
			for c := 0; c < e.CloseCount; c++ {
				top := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				visit(top.node, id, top.level, top.tag)
			}
			level = level + 1 - e.CloseCount
			id++
		}
	}
	if len(stack) != 0 {
		return fmt.Errorf("nok: unbalanced structure: %d subtrees left open", len(stack))
	}
	return nil
}
