package nok

import (
	"encoding/json"
	"fmt"
	"io"

	"dolxml/internal/pathsum"
	"dolxml/internal/storage"
	"dolxml/internal/xmltree"
)

// Meta is the serializable description of a Store, written beside the page
// file so a file-backed store can be reopened. The page directory itself is
// reconstructed from the block headers, which remain authoritative.
type Meta struct {
	NumNodes       int              `json:"num_nodes"`
	Tags           []string         `json:"tags"`
	StructurePages []storage.PageID `json:"structure_pages"`
	// PathSummary is the persisted path summary. Open rebuilds the
	// summary from the blocks regardless and verifies this copy against
	// the rebuild, so a stale or corrupted summary is caught rather than
	// trusted.
	PathSummary *pathsum.Meta  `json:"path_summary,omitempty"`
	ValueRefs   []MetaValueRef `json:"value_refs,omitempty"`
}

// MetaValueRef mirrors the value index for serialization.
type MetaValueRef struct {
	Node xmltree.NodeID `json:"n"`
	Page storage.PageID `json:"p"`
	Off  uint16         `json:"o"`
	Len  uint16         `json:"l"`
}

// Meta captures the store's reopen metadata.
func (s *Store) Meta() Meta {
	m := Meta{
		NumNodes: s.numNodes,
		Tags:     append([]string(nil), s.tags...),
	}
	if s.paths != nil {
		m.PathSummary = s.paths.ToMeta()
	}
	for _, pi := range s.dir {
		m.StructurePages = append(m.StructurePages, pi.Page)
	}
	if s.values != nil {
		for _, r := range s.values.refs {
			m.ValueRefs = append(m.ValueRefs, MetaValueRef{Node: r.Node, Page: r.Page, Off: r.Off, Len: r.Len})
		}
	}
	return m
}

// StructurePages returns the page IDs of the structure blocks in directory
// order — the Meta().StructurePages slice without rebuilding the (much
// larger) value-ref list. Commit paths re-encode this list on every seal,
// since shadow-paged rewrites change page IDs even at constant counts.
func (s *Store) StructurePages() []storage.PageID {
	out := make([]storage.PageID, len(s.dir))
	for i, pi := range s.dir {
		out[i] = pi.Page
	}
	return out
}

// WriteMeta serializes the store's metadata as JSON.
func (s *Store) WriteMeta(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(s.Meta())
}

// Open reconstructs a Store from metadata and a buffer pool over the
// original pages, re-reading each block header into the in-memory page
// directory.
func Open(pool *storage.BufferPool, m Meta) (*Store, error) {
	if m.NumNodes <= 0 {
		return nil, fmt.Errorf("nok: metadata has %d nodes", m.NumNodes)
	}
	s := &Store{
		pool:     pool,
		tags:     append([]string(nil), m.Tags...),
		tagIndex: make(map[string]int32, len(m.Tags)),
		numNodes: m.NumNodes,
		dec:      newDecodeCache(DefaultDecodeCacheBudget),
	}
	for i, t := range s.tags {
		s.tagIndex[t] = int32(i)
	}
	// Node IDs are assigned cumulatively from directory order: after
	// region rewrites the FirstNode stored inside later block headers may
	// be stale, so directory order + counts are authoritative.
	next := xmltree.NodeID(0)
	for _, pid := range m.StructurePages {
		f, err := pool.Get(pid)
		if err != nil {
			return nil, fmt.Errorf("nok: reopen block %d: %w", pid, err)
		}
		pi, dataLen := readHeader(pid, f.Data)
		// The structural summary is rebuilt from the block body while the
		// page is pinned anyway; headers stay the only persisted metadata.
		entries := make([]Entry, 0, pi.Count)
		body := f.Data[headerSize : headerSize+dataLen]
		for len(body) > 0 {
			e, n, err := decodeEntry(body)
			if err != nil {
				pool.Unpin(pid, false)
				return nil, fmt.Errorf("nok: reopen block %d: %w", pid, err)
			}
			entries = append(entries, e)
			body = body[n:]
		}
		if err := pool.Unpin(pid, false); err != nil {
			return nil, err
		}
		if len(entries) != pi.Count {
			return nil, fmt.Errorf("nok: reopen block %d: %d entries, header says %d", pid, len(entries), pi.Count)
		}
		pi.FirstNode = next
		next += xmltree.NodeID(pi.Count)
		s.dir = append(s.dir, pi)
		s.summaries = append(s.summaries, summarizeBlock(entries, int(pi.StartDepth)))
	}
	if len(m.ValueRefs) > 0 {
		vs := &ValueStore{pool: pool}
		for _, r := range m.ValueRefs {
			vs.refs = append(vs.refs, valueRef{Node: r.Node, Page: r.Page, Off: r.Off, Len: r.Len})
		}
		s.values = vs
	}
	// Sanity: blocks must cover exactly the advertised node count.
	if int(next) != s.numNodes {
		return nil, fmt.Errorf("nok: blocks cover %d nodes, metadata says %d", next, s.numNodes)
	}
	// The path summary is rebuilt from the blocks — like the directory,
	// storage stays authoritative — and any persisted copy is verified
	// against the rebuild before the store is trusted.
	if err := s.RebuildPathSummary(); err != nil {
		return nil, err
	}
	if m.PathSummary != nil {
		persisted, err := pathsum.FromMeta(m.PathSummary)
		if err != nil {
			return nil, fmt.Errorf("nok: reopen path summary: %w", err)
		}
		if err := persisted.VerifyAgainst(s.paths); err != nil {
			return nil, fmt.Errorf("nok: path summary failed verification: %w", err)
		}
	}
	return s, nil
}

// ReadMeta parses metadata previously produced by WriteMeta.
func ReadMeta(r io.Reader) (Meta, error) {
	var m Meta
	if err := json.NewDecoder(r).Decode(&m); err != nil {
		return Meta{}, fmt.Errorf("nok: read metadata: %w", err)
	}
	return m, nil
}
