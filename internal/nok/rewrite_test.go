package nok

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dolxml/internal/storage"
	"dolxml/internal/xmltree"
)

// validate cross-checks the in-memory directory against the on-disk block
// contents and the store's node count.
func validate(t *testing.T, s *Store) {
	t.Helper()
	next := xmltree.NodeID(0)
	for i := range s.dir {
		pi := s.dir[i]
		if pi.FirstNode != next {
			t.Fatalf("block %d starts at %d, want %d", i, pi.FirstNode, next)
		}
		entries, err := s.BlockEntries(i)
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) != pi.Count {
			t.Fatalf("block %d decoded %d entries, directory says %d", i, len(entries), pi.Count)
		}
		if entries[0].HasCode {
			t.Fatalf("block %d first entry carries an inline code", i)
		}
		// MinDepth and ChangeBit re-derivable.
		level := int(pi.StartDepth)
		min := level
		change := false
		for _, e := range entries {
			if level < min {
				min = level
			}
			if e.HasCode {
				change = true
			}
			level = level + 1 - e.CloseCount
		}
		if int(pi.MinDepth) != min {
			t.Fatalf("block %d MinDepth %d, recomputed %d", i, pi.MinDepth, min)
		}
		if pi.ChangeBit != change {
			t.Fatalf("block %d ChangeBit %v, recomputed %v", i, pi.ChangeBit, change)
		}
		next += xmltree.NodeID(pi.Count)
	}
	if int(next) != s.numNodes {
		t.Fatalf("blocks cover %d nodes, store says %d", next, s.numNodes)
	}
}

func TestRewriteRegionIdentity(t *testing.T) {
	doc := fig2doc(t)
	codes := arrayCodes{1, 1, 2, 2, 0, 0, 0, 1, 1, 2, 2, 2}
	for _, pageSize := range []int{64, 4096} {
		pool := storage.NewBufferPool(storage.NewMemPager(pageSize), 64)
		s, err := Build(pool, doc, BuildOptions{Codes: codes})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < s.NumPages(); i++ {
			entries, err := s.BlockEntries(i)
			if err != nil {
				t.Fatal(err)
			}
			pi := s.PageInfoAt(i)
			n, err := s.RewriteRegion(i, i, entries, int(pi.StartDepth), pi.AccessCode)
			if err != nil {
				t.Fatal(err)
			}
			if n != 1 {
				t.Fatalf("identity rewrite split into %d blocks", n)
			}
		}
		validate(t, s)
		for n := xmltree.NodeID(0); int(n) < doc.Len(); n++ {
			if c, err := s.AccessCodeAt(n); err != nil || c != codes[n] {
				t.Fatalf("code at %d changed after identity rewrite", n)
			}
			if fs, err := s.FollowingSibling(n); err != nil || fs != doc.NextSibling(n) {
				t.Fatalf("navigation broken at %d", n)
			}
		}
	}
}

func TestRewriteRegionGrowSplits(t *testing.T) {
	doc := fig2doc(t)
	pool := storage.NewBufferPool(storage.NewMemPager(64), 64)
	s, err := Build(pool, doc, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	before := s.NumPages()
	// Inflate block 0 by inserting many leaf entries under the root.
	entries, err := s.BlockEntries(0)
	if err != nil {
		t.Fatal(err)
	}
	pi := s.PageInfoAt(0)
	var grown []Entry
	grown = append(grown, entries[0]) // root stays first
	for i := 0; i < 30; i++ {
		grown = append(grown, Entry{Tag: 1, CloseCount: 1})
	}
	grown = append(grown, entries[1:]...)
	n, err := s.RewriteRegion(0, 0, grown, int(pi.StartDepth), pi.AccessCode)
	if err != nil {
		t.Fatal(err)
	}
	if n < 2 {
		t.Fatalf("grow rewrite produced %d blocks, want a split", n)
	}
	if s.NumPages() <= before {
		t.Fatalf("page count %d did not grow", s.NumPages())
	}
	if s.NumNodes() != doc.Len()+30 {
		t.Fatalf("NumNodes = %d", s.NumNodes())
	}
	validate(t, s)
}

func TestRewriteRegionShrinkFreesPages(t *testing.T) {
	doc := fig2doc(t)
	pool := storage.NewBufferPool(storage.NewMemPager(64), 64)
	s, err := Build(pool, doc, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if s.NumPages() < 2 {
		t.Skip("need multiple blocks")
	}
	// Collapse the last two blocks into the content of just the first of
	// them.
	i := s.NumPages() - 2
	entries, err := s.BlockEntries(i)
	if err != nil {
		t.Fatal(err)
	}
	// Make the region's entries balanced: give the final kept entry all
	// remaining closes of the document.
	tail, err := s.BlockEntries(s.NumPages() - 1)
	if err != nil {
		t.Fatal(err)
	}
	dropped := len(tail)
	closes := 0
	for _, e := range tail {
		closes += e.CloseCount
	}
	closes -= dropped // the dropped subtrees' own closes disappear
	entries[len(entries)-1].CloseCount += closes
	pi := s.PageInfoAt(i)
	n, err := s.RewriteRegion(i, s.NumPages()-1, entries, int(pi.StartDepth), pi.AccessCode)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("shrink produced %d blocks", n)
	}
	if s.FreePages() == 0 {
		t.Fatal("shrink should free a page")
	}
	if s.NumNodes() != doc.Len()-dropped {
		t.Fatalf("NumNodes = %d, want %d", s.NumNodes(), doc.Len()-dropped)
	}
	// Freed page is reused by a growing rewrite instead of allocating.
	pagesBefore := pool.Pager().NumPages()
	entries0, _ := s.BlockEntries(0)
	var grown []Entry
	grown = append(grown, entries0[0])
	for k := 0; k < 20; k++ {
		grown = append(grown, Entry{Tag: 0, CloseCount: 1})
	}
	grown = append(grown, entries0[1:]...)
	pi0 := s.PageInfoAt(0)
	if _, err := s.RewriteRegion(0, 0, grown, int(pi0.StartDepth), pi0.AccessCode); err != nil {
		t.Fatal(err)
	}
	if pool.Pager().NumPages() != pagesBefore {
		t.Fatalf("grow allocated new pages (%d -> %d) despite free list", pagesBefore, pool.Pager().NumPages())
	}
}

func TestRewriteRegionErrors(t *testing.T) {
	doc := fig2doc(t)
	pool := storage.NewBufferPool(storage.NewMemPager(4096), 64)
	s, err := Build(pool, doc, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.RewriteRegion(1, 0, nil, 0, 0); err == nil {
		t.Fatal("inverted region should fail")
	}
	if _, err := s.RewriteRegion(0, 5, []Entry{{}}, 0, 0); err == nil {
		t.Fatal("out-of-range region should fail")
	}
	if _, err := s.RewriteRegion(0, 0, nil, 0, 0); err == nil {
		t.Fatal("empty rewrite should fail")
	}
	if _, err := s.BlockEntries(99); err == nil {
		t.Fatal("invalid block should fail")
	}
}

func TestInternTag(t *testing.T) {
	doc := fig2doc(t)
	pool := storage.NewBufferPool(storage.NewMemPager(4096), 64)
	s, err := Build(pool, doc, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	before := s.NumTags()
	c1 := s.InternTag("brandnew")
	c2 := s.InternTag("brandnew")
	if c1 != c2 || s.NumTags() != before+1 {
		t.Fatalf("InternTag not idempotent")
	}
	if s.TagName(c1) != "brandnew" {
		t.Fatal("tag name lost")
	}
	// Existing tags unchanged.
	if c, ok := s.LookupTag("a"); !ok || s.TagName(c) != "a" {
		t.Fatal("existing tag broken")
	}
}

func TestForEachExtentMatchesDocument(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		doc := randomDoc(rng, 1+rng.Intn(200))
		pool := storage.NewBufferPool(storage.NewMemPager(64+rng.Intn(200)), 128)
		s, err := Build(pool, doc, BuildOptions{})
		if err != nil {
			return false
		}
		type ext struct {
			end   xmltree.NodeID
			level int
			tag   int32
		}
		got := map[xmltree.NodeID]ext{}
		err = s.ForEachExtent(func(n, end xmltree.NodeID, level int, tag int32) {
			got[n] = ext{end, level, tag}
		})
		if err != nil {
			return false
		}
		if len(got) != doc.Len() {
			return false
		}
		for n := xmltree.NodeID(0); int(n) < doc.Len(); n++ {
			e, ok := got[n]
			if !ok || e.end != doc.End(n) || e.level != doc.Level(n) || e.tag != int32(doc.TagIDOf(n)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCheckConsistency(t *testing.T) {
	doc := fig2doc(t)
	codes := arrayCodes{1, 1, 2, 2, 0, 0, 0, 1, 1, 2, 2, 2}
	pool := storage.NewBufferPool(storage.NewMemPager(64), 64)
	s, err := Build(pool, doc, BuildOptions{Codes: codes})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CheckConsistency(); err != nil {
		t.Fatalf("fresh store inconsistent: %v", err)
	}
	// Stays consistent after rewrites.
	entries, _ := s.BlockEntries(0)
	pi := s.PageInfoAt(0)
	var grown []Entry
	grown = append(grown, entries[0])
	for i := 0; i < 10; i++ {
		grown = append(grown, Entry{Tag: 1, CloseCount: 1})
	}
	grown = append(grown, entries[1:]...)
	if _, err := s.RewriteRegion(0, 0, grown, int(pi.StartDepth), pi.AccessCode); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckConsistency(); err != nil {
		t.Fatalf("store inconsistent after rewrite: %v", err)
	}
	// Corrupt a directory entry and expect detection.
	s.dir[0].MinDepth = 99
	if err := s.CheckConsistency(); err == nil {
		t.Fatal("corrupted MinDepth not detected")
	}
}

// TestRewriteRegionWarmsDecodeCache checks that a rewrite leaves the decode
// cache primed with each written block, and — critically — that the primed
// entries are byte-for-byte what a fresh decode of the page produces: the
// cache bypasses decodeBlock, so a divergent primed form would silently
// corrupt every later scan of the region.
func TestRewriteRegionWarmsDecodeCache(t *testing.T) {
	doc := fig2doc(t)
	pool := storage.NewBufferPool(storage.NewMemPager(64), 64)
	s, err := Build(pool, doc, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	entries, err := s.BlockEntries(0)
	if err != nil {
		t.Fatal(err)
	}
	pi := s.PageInfoAt(0)
	var grown []Entry
	grown = append(grown, entries[0])
	for i := 0; i < 30; i++ {
		// Codeless entries with a stale Code field: the encoding drops the
		// field, so the primed form must have normalized it away.
		grown = append(grown, Entry{Tag: 1, CloseCount: 1, Code: 99})
	}
	grown = append(grown, entries[1:]...)
	n, err := s.RewriteRegion(0, 0, grown, int(pi.StartDepth), pi.AccessCode)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		pid := s.dir[i].Page
		cached, ok := s.dec.get(pid)
		if !ok {
			t.Fatalf("block %d (page %d) not primed after rewrite", i, pid)
		}
		f, err := s.pool.Get(pid)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := s.decodeBlock(i, f.Data)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.pool.Unpin(pid, false); err != nil {
			t.Fatal(err)
		}
		if len(cached) != len(fresh) {
			t.Fatalf("block %d primed %d entries, fresh decode has %d", i, len(cached), len(fresh))
		}
		for k := range fresh {
			if cached[k] != fresh[k] {
				t.Fatalf("block %d entry %d primed as %+v, decodes as %+v", i, k, cached[k], fresh[k])
			}
		}
	}
	// The primed region must not cost the toggle path a decode: reading
	// every rewritten block back is all cache hits.
	h0 := s.DecodeCacheStats().Hits
	for i := 0; i < n; i++ {
		if _, err := s.BlockEntries(i); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.DecodeCacheStats().Hits - h0; got != int64(n) {
		t.Fatalf("re-reading %d rewritten blocks produced %d cache hits", n, got)
	}
}
