package xmltree

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// paperDoc builds the 12-node data tree from Figure 2 of the paper:
// (a(b)(c)(d)(e(f)(g)(h(i)(j)(k)(l)))).
func paperDoc(t testing.TB) *Document {
	t.Helper()
	b := NewBuilder()
	b.Begin("a")
	b.Element("b", "")
	b.Element("c", "")
	b.Element("d", "")
	b.Begin("e")
	b.Element("f", "")
	b.Element("g", "")
	b.Begin("h")
	b.Element("i", "")
	b.Element("j", "")
	b.Element("k", "")
	b.Element("l", "")
	b.End() // h
	b.End() // e
	b.End() // a
	d, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestPaperDocShape(t *testing.T) {
	d := paperDoc(t)
	if d.Len() != 12 {
		t.Fatalf("Len = %d, want 12", d.Len())
	}
	// Document order: a b c d e f g h i j k l.
	wantTags := []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j", "k", "l"}
	for i, w := range wantTags {
		if got := d.Tag(NodeID(i)); got != w {
			t.Errorf("Tag(%d) = %q, want %q", i, got, w)
		}
	}
	if d.Root() != 0 {
		t.Errorf("Root = %d", d.Root())
	}
	if got := d.FirstChild(0); got != 1 {
		t.Errorf("FirstChild(a) = %d, want 1", got)
	}
	if got := d.NextSibling(1); got != 2 {
		t.Errorf("NextSibling(b) = %d, want 2", got)
	}
	if got := d.NextSibling(4); got != InvalidNode {
		t.Errorf("NextSibling(e) = %d, want invalid", got)
	}
	if got := d.Parent(7); got != 4 {
		t.Errorf("Parent(h) = %d, want 4 (e)", got)
	}
	if got := d.End(4); got != 11 {
		t.Errorf("End(e) = %d, want 11", got)
	}
	if got := d.End(7); got != 11 {
		t.Errorf("End(h) = %d, want 11", got)
	}
	if got := d.SubtreeSize(4); got != 8 {
		t.Errorf("SubtreeSize(e) = %d, want 8", got)
	}
	if !d.IsAncestor(0, 11) || !d.IsAncestor(4, 8) || d.IsAncestor(1, 2) {
		t.Error("IsAncestor relations wrong")
	}
	if got := d.Level(11); got != 3 {
		t.Errorf("Level(l) = %d, want 3", got)
	}
	if got := d.MaxDepth(); got != 4 {
		t.Errorf("MaxDepth = %d, want 4", got)
	}
}

func TestCloseCounts(t *testing.T) {
	d := paperDoc(t)
	// Structure string: a b) c) d) e f) g) h i) j) k) l))))
	want := []int{0, 1, 1, 1, 0, 1, 1, 0, 1, 1, 1, 4}
	for i, w := range want {
		if got := d.CloseCount(NodeID(i)); got != w {
			t.Errorf("CloseCount(%s) = %d, want %d", d.Tag(NodeID(i)), got, w)
		}
	}
	// Sum of close counts equals node count (every subtree closes once).
	sum := 0
	for i := 0; i < d.Len(); i++ {
		sum += d.CloseCount(NodeID(i))
	}
	if sum != d.Len() {
		t.Errorf("total closes = %d, want %d", sum, d.Len())
	}
}

func TestChildren(t *testing.T) {
	d := paperDoc(t)
	got := d.Children(0)
	want := []NodeID{1, 2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("Children(a) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Children(a) = %v, want %v", got, want)
		}
	}
	if d.Children(1) != nil {
		t.Error("leaf should have no children")
	}
}

func TestNodesWithTagAndPath(t *testing.T) {
	d := MustParseString(`<r><x/><y><x/></y></r>`)
	xs := d.NodesWithTag("x")
	if len(xs) != 2 || xs[0] != 1 || xs[1] != 3 {
		t.Fatalf("NodesWithTag(x) = %v", xs)
	}
	if d.NodesWithTag("zzz") != nil {
		t.Error("missing tag should give nil")
	}
	if got := d.Path(3); got != "/r/y/x" {
		t.Errorf("Path = %q", got)
	}
}

func TestTagInterning(t *testing.T) {
	d := MustParseString(`<a><b/><b/><b/></a>`)
	if d.NumTags() != 2 {
		t.Fatalf("NumTags = %d, want 2", d.NumTags())
	}
	tb, ok := d.LookupTag("b")
	if !ok {
		t.Fatal("tag b missing")
	}
	if d.TagName(tb) != "b" {
		t.Fatal("TagName mismatch")
	}
	if _, ok := d.LookupTag("zzz"); ok {
		t.Fatal("unexpected tag")
	}
	h := d.TagHistogram()
	if h["a"] != 1 || h["b"] != 3 {
		t.Fatalf("histogram = %v", h)
	}
}

func TestParseTextAndAttrs(t *testing.T) {
	d := MustParseString(`<item id="7"><name>socks</name><quantity>2</quantity></item>`)
	// Nodes: item, @id, name, quantity.
	if d.Len() != 4 {
		t.Fatalf("Len = %d, want 4", d.Len())
	}
	if d.Tag(1) != "@id" || d.Value(1) != "7" {
		t.Errorf("attr node = %q/%q", d.Tag(1), d.Value(1))
	}
	if d.Value(2) != "socks" {
		t.Errorf("Value(name) = %q", d.Value(2))
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{"", "<a>", "<a></b>", "not xml at all <", "<a/><b/>"} {
		if _, err := ParseString(bad); err == nil {
			t.Errorf("ParseString(%q) should fail", bad)
		}
	}
}

func TestParseIgnoresCommentsAndWhitespace(t *testing.T) {
	d := MustParseString("<a>\n  <!-- hi -->\n  <b>x</b>\n</a>")
	if d.Len() != 2 {
		t.Fatalf("Len = %d, want 2", d.Len())
	}
	if d.Value(0) != "" {
		t.Errorf("root value = %q, want empty", d.Value(0))
	}
}

func TestWriteXMLRoundTrip(t *testing.T) {
	src := `<site lang="en"><regions><africa><item id="1"><name>carved mask</name></item></africa></regions></site>`
	d := MustParseString(src)
	var sb strings.Builder
	if err := d.WriteXML(&sb); err != nil {
		t.Fatal(err)
	}
	d2 := MustParseString(sb.String())
	if d2.Len() != d.Len() {
		t.Fatalf("round trip node count %d != %d", d2.Len(), d.Len())
	}
	for i := 0; i < d.Len(); i++ {
		n := NodeID(i)
		if d.Tag(n) != d2.Tag(n) || d.Value(n) != d2.Value(n) ||
			d.Parent(n) != d2.Parent(n) {
			t.Fatalf("node %d differs after round trip", i)
		}
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder()
	b.Begin("a")
	if _, err := b.Finish(); err == nil {
		t.Fatal("Finish with open element should fail")
	}

	b2 := NewBuilder()
	if _, err := b2.Finish(); err == nil {
		t.Fatal("Finish on empty builder should fail")
	}
}

func TestBuilderPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("End without Begin", func() { NewBuilder().End() })
	mustPanic("Text without Begin", func() { NewBuilder().Text("x") })
	mustPanic("second root", func() {
		b := NewBuilder()
		b.Element("a", "")
		b.Begin("b")
	})
}

func TestAccessorPanicsOnInvalidNode(t *testing.T) {
	d := MustParseString("<a/>")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.Tag(5)
}

func TestAvgDepth(t *testing.T) {
	d := MustParseString("<a><b><c/></b></a>")
	if got := d.AvgDepth(); got != 1.0 { // levels 0,1,2
		t.Errorf("AvgDepth = %v, want 1.0", got)
	}
}

func TestSortedTags(t *testing.T) {
	d := MustParseString("<z><a/><m/></z>")
	got := d.SortedTags()
	want := []string{"a", "m", "z"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SortedTags = %v", got)
		}
	}
}

// randomDoc builds a random tree with n nodes using rng.
func randomDoc(rng *rand.Rand, n int) *Document {
	b := NewBuilder()
	b.Begin("r")
	open := 1
	for i := 1; i < n; i++ {
		// Random walk: open a child or close an element (keeping root open).
		for open > 1 && rng.Intn(3) == 0 {
			b.End()
			open--
		}
		b.Begin("t" + string(rune('a'+rng.Intn(5))))
		open++
	}
	for ; open > 0; open-- {
		b.End()
	}
	return b.MustFinish()
}

// Property: preorder invariants hold for random trees — parent < child,
// End consistency, ancestor iff interval containment, and CloseCount sums
// to the node count.
func TestRandomTreeInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		d := randomDoc(rng, n)
		if d.Len() != n {
			return false
		}
		closes := 0
		for i := 0; i < n; i++ {
			id := NodeID(i)
			closes += d.CloseCount(id)
			if p := d.Parent(id); p != InvalidNode {
				if p >= id {
					return false
				}
				if !d.IsAncestor(p, id) {
					return false
				}
				if d.End(p) < d.End(id) {
					return false
				}
				if d.Level(id) != d.Level(p)+1 {
					return false
				}
			}
			// First child, if any, is id+1.
			if fc := d.FirstChild(id); fc != InvalidNode && fc != id+1 {
				return false
			}
			// Interval containment test against explicit ancestor walk.
			for j := 0; j < n; j += 7 {
				a := NodeID(j)
				walk := false
				for p := d.Parent(id); p != InvalidNode; p = d.Parent(p) {
					if p == a {
						walk = true
						break
					}
				}
				if walk != d.IsAncestor(a, id) {
					return false
				}
			}
		}
		return closes == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: serialization round-trips structure for random trees.
func TestRandomRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := randomDoc(rng, 1+rng.Intn(100))
		var sb strings.Builder
		if err := d.WriteXML(&sb); err != nil {
			return false
		}
		d2, err := ParseString(sb.String())
		if err != nil {
			return false
		}
		if d2.Len() != d.Len() {
			return false
		}
		for i := 0; i < d.Len(); i++ {
			id := NodeID(i)
			if d.Tag(id) != d2.Tag(id) || d.Parent(id) != d2.Parent(id) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkParse(b *testing.B) {
	var sb strings.Builder
	sb.WriteString("<root>")
	for i := 0; i < 1000; i++ {
		sb.WriteString("<item id=\"1\"><name>thing</name><quantity>3</quantity></item>")
	}
	sb.WriteString("</root>")
	src := sb.String()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParseString(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuilder(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bu := NewBuilder()
		bu.Begin("root")
		for j := 0; j < 1000; j++ {
			bu.Begin("item")
			bu.Element("name", "thing")
			bu.End()
		}
		bu.End()
		bu.MustFinish()
	}
}
