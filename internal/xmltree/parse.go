package xmltree

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"
)

// Parse reads serialized XML from r and builds a Document. Element
// attributes become child nodes tagged "@name"; character data is attached
// to the enclosing element (whitespace-only runs are dropped). Comments and
// processing instructions are ignored, matching the element-tree data model
// of the paper.
func Parse(r io.Reader) (*Document, error) {
	dec := xml.NewDecoder(r)
	b := NewBuilder()
	sawRoot := false
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmltree: parse: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if sawRoot && b.Depth() == 0 {
				return nil, fmt.Errorf("xmltree: multiple root elements (second is <%s>)", t.Name.Local)
			}
			sawRoot = true
			b.Begin(t.Name.Local)
			for _, a := range t.Attr {
				if a.Name.Space == "xmlns" || a.Name.Local == "xmlns" {
					continue
				}
				b.Attr(a.Name.Local, a.Value)
			}
		case xml.EndElement:
			b.End()
		case xml.CharData:
			if b.Depth() == 0 {
				continue
			}
			if s := string(t); strings.TrimSpace(s) != "" {
				b.Text(s)
			}
		}
	}
	return b.Finish()
}

// ParseString is Parse over an in-memory string.
func ParseString(s string) (*Document, error) {
	return Parse(strings.NewReader(s))
}

// MustParseString is ParseString that panics on error, for tests with
// literal documents.
func MustParseString(s string) *Document {
	d, err := ParseString(s)
	if err != nil {
		panic(err)
	}
	return d
}
