// Package xmltree models an XML document as an ordered tree of element
// nodes, the data model of the DOL paper (§2): nodes correspond to elements,
// edges to parent/child relationships, and siblings are ordered.
//
// Nodes are identified by their document-order (preorder) position, a dense
// NodeID starting at 0 for the root. This identity is what the NoK physical
// encoding and the DOL access-control labeling are defined over: "document
// order" in the paper is exactly increasing NodeID here.
//
// A Document is immutable once built. Use Builder for programmatic
// construction or Parse to read serialized XML (attributes become child
// nodes tagged "@name" so instance-level access controls can target them).
package xmltree

import (
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strings"
)

// NodeID identifies a node by its document-order (preorder) position.
type NodeID int32

// InvalidNode is the null node reference.
const InvalidNode NodeID = -1

// TagID indexes a Document's interned tag table.
type TagID int32

// node is the arena record for one element.
type node struct {
	tag         TagID
	parent      NodeID
	firstChild  NodeID
	nextSibling NodeID
	end         NodeID // last descendant in preorder; end == id for leaves
	level       int32  // root is level 0
	value       int32  // index into values, or -1
}

// Document is an immutable ordered tree of elements in document order.
type Document struct {
	nodes    []node
	tags     []string
	tagIndex map[string]TagID
	values   []string
}

// Len returns the number of nodes in the document.
func (d *Document) Len() int { return len(d.nodes) }

// Root returns the root node ID, or InvalidNode for an empty document.
func (d *Document) Root() NodeID {
	if len(d.nodes) == 0 {
		return InvalidNode
	}
	return 0
}

// Valid reports whether n is a node of this document.
func (d *Document) Valid(n NodeID) bool { return n >= 0 && int(n) < len(d.nodes) }

func (d *Document) check(n NodeID) {
	if !d.Valid(n) {
		panic(fmt.Sprintf("xmltree: invalid node %d (document has %d nodes)", n, len(d.nodes)))
	}
}

// Tag returns the tag name of node n.
func (d *Document) Tag(n NodeID) string {
	d.check(n)
	return d.tags[d.nodes[n].tag]
}

// TagIDOf returns the interned tag ID of node n.
func (d *Document) TagIDOf(n NodeID) TagID {
	d.check(n)
	return d.nodes[n].tag
}

// TagName returns the tag string for an interned tag ID.
func (d *Document) TagName(t TagID) string { return d.tags[t] }

// LookupTag returns the TagID for a tag name, and whether it occurs in the
// document at all.
func (d *Document) LookupTag(tag string) (TagID, bool) {
	t, ok := d.tagIndex[tag]
	return t, ok
}

// NumTags returns the number of distinct tags in the document.
func (d *Document) NumTags() int { return len(d.tags) }

// Value returns the text content of node n ("" if none).
func (d *Document) Value(n NodeID) string {
	d.check(n)
	if v := d.nodes[n].value; v >= 0 {
		return d.values[v]
	}
	return ""
}

// Parent returns the parent of n, or InvalidNode for the root.
func (d *Document) Parent(n NodeID) NodeID {
	d.check(n)
	return d.nodes[n].parent
}

// FirstChild returns the first child of n, or InvalidNode if n is a leaf.
func (d *Document) FirstChild(n NodeID) NodeID {
	d.check(n)
	return d.nodes[n].firstChild
}

// NextSibling returns the following sibling of n, or InvalidNode.
func (d *Document) NextSibling(n NodeID) NodeID {
	d.check(n)
	return d.nodes[n].nextSibling
}

// End returns the ID of the last node in n's subtree (n itself for leaves).
// A node a is an ancestor of d exactly when a < d && d <= End(a).
func (d *Document) End(n NodeID) NodeID {
	d.check(n)
	return d.nodes[n].end
}

// SubtreeSize returns the number of nodes in n's subtree, including n.
func (d *Document) SubtreeSize(n NodeID) int {
	d.check(n)
	return int(d.nodes[n].end-n) + 1
}

// Level returns the depth of n; the root has level 0.
func (d *Document) Level(n NodeID) int {
	d.check(n)
	return int(d.nodes[n].level)
}

// IsAncestor reports whether a is a proper ancestor of n.
func (d *Document) IsAncestor(a, n NodeID) bool {
	d.check(a)
	d.check(n)
	return a < n && n <= d.nodes[a].end
}

// Children returns the child IDs of n in sibling order.
func (d *Document) Children(n NodeID) []NodeID {
	d.check(n)
	var out []NodeID
	for c := d.nodes[n].firstChild; c != InvalidNode; c = d.nodes[c].nextSibling {
		out = append(out, c)
	}
	return out
}

// CloseCount returns the number of subtrees that end immediately after node
// n in document order — the number of ')' following n's entry in the NoK
// "closing parens" encoding. It is 0 exactly when n has a first child.
func (d *Document) CloseCount(n NodeID) int {
	d.check(n)
	if d.nodes[n].firstChild != InvalidNode {
		return 0
	}
	// n is a leaf: n's own subtree closes, plus every ancestor whose
	// subtree also ends at n.
	c := 1
	for a := d.nodes[n].parent; a != InvalidNode && d.nodes[a].end == n; a = d.nodes[a].parent {
		c++
	}
	return c
}

// NodesWithTag returns, in document order, every node whose tag is tag.
func (d *Document) NodesWithTag(tag string) []NodeID {
	t, ok := d.tagIndex[tag]
	if !ok {
		return nil
	}
	var out []NodeID
	for i := range d.nodes {
		if d.nodes[i].tag == t {
			out = append(out, NodeID(i))
		}
	}
	return out
}

// Path returns the slash-separated tag path from the root to n, e.g.
// "/site/regions/africa".
func (d *Document) Path(n NodeID) string {
	d.check(n)
	var parts []string
	for m := n; m != InvalidNode; m = d.nodes[m].parent {
		parts = append(parts, d.tags[d.nodes[m].tag])
	}
	var sb strings.Builder
	for i := len(parts) - 1; i >= 0; i-- {
		sb.WriteByte('/')
		sb.WriteString(parts[i])
	}
	return sb.String()
}

// TagHistogram returns tag name -> occurrence count, sorted iteration is up
// to the caller.
func (d *Document) TagHistogram() map[string]int {
	h := make(map[string]int, len(d.tags))
	for i := range d.nodes {
		h[d.tags[d.nodes[i].tag]]++
	}
	return h
}

// MaxDepth returns the maximum node level plus one (depth of the tree), or
// 0 for an empty document.
func (d *Document) MaxDepth() int {
	max := int32(-1)
	for i := range d.nodes {
		if d.nodes[i].level > max {
			max = d.nodes[i].level
		}
	}
	return int(max) + 1
}

// AvgDepth returns the mean node level (root = 0).
func (d *Document) AvgDepth() float64 {
	if len(d.nodes) == 0 {
		return 0
	}
	var sum int64
	for i := range d.nodes {
		sum += int64(d.nodes[i].level)
	}
	return float64(sum) / float64(len(d.nodes))
}

// WriteXML serializes the document as XML to w. Attribute nodes (tags
// starting with '@') are emitted as attributes of their parent element.
func (d *Document) WriteXML(w io.Writer) error {
	if len(d.nodes) == 0 {
		return nil
	}
	return d.writeNode(w, 0)
}

func (d *Document) writeNode(w io.Writer, n NodeID) error {
	tag := d.Tag(n)
	if _, err := fmt.Fprintf(w, "<%s", tag); err != nil {
		return err
	}
	var elemChildren []NodeID
	for c := d.nodes[n].firstChild; c != InvalidNode; c = d.nodes[c].nextSibling {
		if ct := d.Tag(c); strings.HasPrefix(ct, "@") {
			var esc strings.Builder
			if err := xml.EscapeText(&esc, []byte(d.Value(c))); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, " %s=%q", ct[1:], esc.String()); err != nil {
				return err
			}
		} else {
			elemChildren = append(elemChildren, c)
		}
	}
	if _, err := io.WriteString(w, ">"); err != nil {
		return err
	}
	if v := d.Value(n); v != "" {
		if err := xml.EscapeText(w, []byte(v)); err != nil {
			return err
		}
	}
	for _, c := range elemChildren {
		if err := d.writeNode(w, c); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "</%s>", tag)
	return err
}

// Tags returns the document's tag table in TagID order (a copy).
func (d *Document) Tags() []string {
	out := make([]string, len(d.tags))
	copy(out, d.tags)
	return out
}

// SortedTags returns the distinct tag names in lexicographic order.
func (d *Document) SortedTags() []string {
	out := d.Tags()
	sort.Strings(out)
	return out
}
