package xmltree

import (
	"errors"
	"fmt"
)

// Builder constructs a Document in document order. Calls follow the shape of
// a SAX stream: Begin(tag) opens an element, Text appends to the current
// element's text content, End() closes the most recently opened element.
// This mirrors the paper's observation (§2) that a document-order encoding
// can be constructed on the fly in a single pass over the XML input.
type Builder struct {
	doc   *Document
	stack []NodeID
	// lastChild tracks the most recently appended child of each open
	// element so siblings can be linked in O(1).
	lastChild map[NodeID]NodeID
	lastText  map[NodeID]string
	done      bool
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{
		doc: &Document{
			tagIndex: make(map[string]TagID),
		},
		lastChild: make(map[NodeID]NodeID),
		lastText:  make(map[NodeID]string),
	}
}

func (b *Builder) internTag(tag string) TagID {
	if t, ok := b.doc.tagIndex[tag]; ok {
		return t
	}
	t := TagID(len(b.doc.tags))
	b.doc.tags = append(b.doc.tags, tag)
	b.doc.tagIndex[tag] = t
	return t
}

// Begin opens a new element with the given tag as a child of the currently
// open element (or as the root) and returns its NodeID.
func (b *Builder) Begin(tag string) NodeID {
	if b.done {
		panic("xmltree: Begin after Finish")
	}
	if len(b.stack) == 0 && len(b.doc.nodes) > 0 {
		panic("xmltree: document already has a root")
	}
	id := NodeID(len(b.doc.nodes))
	n := node{
		tag:         b.internTag(tag),
		parent:      InvalidNode,
		firstChild:  InvalidNode,
		nextSibling: InvalidNode,
		end:         id,
		value:       -1,
	}
	if len(b.stack) > 0 {
		p := b.stack[len(b.stack)-1]
		n.parent = p
		n.level = b.doc.nodes[p].level + 1
		if b.doc.nodes[p].firstChild == InvalidNode {
			b.doc.nodes[p].firstChild = id
		} else {
			b.doc.nodes[b.lastChild[p]].nextSibling = id
		}
		b.lastChild[p] = id
	}
	b.doc.nodes = append(b.doc.nodes, n)
	b.stack = append(b.stack, id)
	return id
}

// Text appends text content to the currently open element.
func (b *Builder) Text(s string) {
	if len(b.stack) == 0 {
		panic("xmltree: Text with no open element")
	}
	cur := b.stack[len(b.stack)-1]
	b.lastText[cur] += s
}

// Attr adds an attribute to the currently open element, represented as a
// leaf child node tagged "@name" holding the attribute value.
func (b *Builder) Attr(name, value string) {
	id := b.Begin("@" + name)
	b.Text(value)
	b.End()
	_ = id
}

// Element is shorthand for Begin(tag); Text(value); End().
func (b *Builder) Element(tag, value string) NodeID {
	id := b.Begin(tag)
	if value != "" {
		b.Text(value)
	}
	b.End()
	return id
}

// End closes the most recently opened element.
func (b *Builder) End() {
	if len(b.stack) == 0 {
		panic("xmltree: End with no open element")
	}
	cur := b.stack[len(b.stack)-1]
	b.stack = b.stack[:len(b.stack)-1]
	last := NodeID(len(b.doc.nodes) - 1)
	b.doc.nodes[cur].end = last
	if txt, ok := b.lastText[cur]; ok && txt != "" {
		b.doc.nodes[cur].value = int32(len(b.doc.values))
		b.doc.values = append(b.doc.values, txt)
	}
	delete(b.lastText, cur)
	delete(b.lastChild, cur)
}

// Depth returns the number of currently open elements.
func (b *Builder) Depth() int { return len(b.stack) }

// Finish validates and returns the completed document. The builder must not
// be reused afterwards.
func (b *Builder) Finish() (*Document, error) {
	if b.done {
		return nil, errors.New("xmltree: Finish called twice")
	}
	if len(b.stack) != 0 {
		return nil, fmt.Errorf("xmltree: %d unclosed elements", len(b.stack))
	}
	if len(b.doc.nodes) == 0 {
		return nil, errors.New("xmltree: empty document")
	}
	b.done = true
	return b.doc, nil
}

// MustFinish is Finish that panics on error, for tests and generators whose
// construction sequence is statically correct.
func (b *Builder) MustFinish() *Document {
	d, err := b.Finish()
	if err != nil {
		panic(err)
	}
	return d
}
