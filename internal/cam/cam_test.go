package cam

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dolxml/internal/bitset"
	"dolxml/internal/xmltree"
)

func randomDoc(rng *rand.Rand, n int) *xmltree.Document {
	b := xmltree.NewBuilder()
	b.Begin("r")
	open := 1
	for i := 1; i < n; i++ {
		for open > 1 && rng.Intn(3) == 0 {
			b.End()
			open--
		}
		b.Begin("x")
		open++
	}
	for ; open > 0; open-- {
		b.End()
	}
	return b.MustFinish()
}

func TestUniformAccessibility(t *testing.T) {
	doc := xmltree.MustParseString(`<a><b/><c><d/><e/></c></a>`)
	all := bitset.New(doc.Len())
	for i := 0; i < doc.Len(); i++ {
		all.Set(i)
	}
	c := Build(doc, all)
	if c.Len() != 1 {
		t.Fatalf("uniform allow should need 1 label, got %d", c.Len())
	}
	for n := 0; n < doc.Len(); n++ {
		ok, err := c.Accessible(xmltree.NodeID(n))
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("node %d should be accessible", n)
		}
	}

	none := bitset.New(doc.Len())
	c2 := Build(doc, none)
	if c2.Len() != 1 {
		t.Fatalf("uniform deny should need 1 label, got %d", c2.Len())
	}
}

func TestSingleExceptionSubtree(t *testing.T) {
	// Root accessible everywhere except subtree c (nodes 2..4).
	doc := xmltree.MustParseString(`<a><b/><c><d/><e/></c></a>`)
	acc := bitset.New(doc.Len())
	acc.Set(0)
	acc.Set(1)
	c := Build(doc, acc)
	// Optimal: label root (self +, desc +) and c (self -, desc -): 2 labels.
	if c.Len() != 2 {
		t.Fatalf("want 2 labels, got %d: %+v", c.Len(), c.Labels())
	}
	for n := 0; n < doc.Len(); n++ {
		ok, _ := c.Accessible(xmltree.NodeID(n))
		if ok != acc.Test(n) {
			t.Fatalf("node %d wrong", n)
		}
	}
}

func TestSelfDescSplit(t *testing.T) {
	// Node accessible but descendants not: exercises self != desc.
	doc := xmltree.MustParseString(`<a><b/><c/></a>`)
	acc := bitset.New(doc.Len())
	acc.Set(0)
	c := Build(doc, acc)
	if c.Len() != 1 {
		t.Fatalf("want 1 label (self+, desc-), got %d", c.Len())
	}
	l := c.Labels()[0]
	if !l.Self || l.Desc {
		t.Fatalf("label = %+v", l)
	}
}

func TestAccessibleErrors(t *testing.T) {
	doc := xmltree.MustParseString(`<a/>`)
	c := Build(doc, bitset.New(1))
	if _, err := c.Accessible(9); err == nil {
		t.Fatal("invalid node should fail")
	}
}

func TestEstimateBytes(t *testing.T) {
	doc := xmltree.MustParseString(`<a><b/></a>`)
	acc := bitset.FromIndices(2, 0)
	c := Build(doc, acc)
	if got := c.EstimateBytes(10); got != c.Len()*11 {
		t.Fatalf("EstimateBytes = %d", got)
	}
}

// bruteMinCAM exhaustively finds the minimum number of labels for tiny
// trees: each node is unlabeled or labeled with desc default in {0, 1}
// (self is free), the root must be labeled, and the induced accessibility
// must match acc.
func bruteMinCAM(doc *xmltree.Document, acc *bitset.Bitset) int {
	n := doc.Len()
	assign := make([]int, n) // 0 = unlabeled, 1 = desc deny, 2 = desc allow
	best := n + 1
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			if assign[0] == 0 {
				return
			}
			count := 0
			for _, a := range assign {
				if a != 0 {
					count++
				}
			}
			if count >= best {
				return
			}
			// Check induced accessibility.
			for v := 0; v < n; v++ {
				var got bool
				if assign[v] != 0 {
					got = acc.Test(v) // self bit is free
				} else {
					found := false
					for p := doc.Parent(xmltree.NodeID(v)); p != xmltree.InvalidNode; p = doc.Parent(p) {
						if assign[p] != 0 {
							got = assign[p] == 2
							found = true
							break
						}
					}
					if !found {
						return
					}
				}
				if got != acc.Test(v) {
					return
				}
			}
			best = count
			return
		}
		for a := 0; a < 3; a++ {
			assign[i] = a
			rec(i + 1)
		}
		assign[i] = 0
	}
	rec(0)
	return best
}

// Property: the DP construction is exactly minimal on tiny trees.
func TestMinimality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(7)
		doc := randomDoc(rng, n)
		acc := bitset.New(n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 1 {
				acc.Set(i)
			}
		}
		c := Build(doc, acc)
		// Correctness first.
		for v := 0; v < n; v++ {
			got, err := c.Accessible(xmltree.NodeID(v))
			if err != nil || got != acc.Test(v) {
				return false
			}
		}
		return c.Len() == bruteMinCAM(doc, acc)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: lookup reproduces the accessibility assignment on larger
// random trees.
func TestLookupCorrectness(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(400)
		doc := randomDoc(rng, n)
		acc := bitset.New(n)
		for i := 0; i < n; i++ {
			if rng.Intn(3) > 0 {
				acc.Set(i)
			}
		}
		c := Build(doc, acc)
		for v := 0; v < n; v++ {
			got, err := c.Accessible(xmltree.NodeID(v))
			if err != nil || got != acc.Test(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// CAM should exploit vertical locality: propagated accessibility needs
// labels only near the seeds.
func TestVerticalLocalityCompression(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	doc := randomDoc(rng, 5000)
	// Seed-based Most-Specific-Override propagation with few seeds.
	acc := bitset.New(doc.Len())
	state := make([]bool, doc.Len())
	seeds := map[int]bool{0: true}
	for i := 0; i < 20; i++ {
		seeds[rng.Intn(doc.Len())] = true
	}
	for v := 0; v < doc.Len(); v++ {
		p := doc.Parent(xmltree.NodeID(v))
		inherit := false
		if p != xmltree.InvalidNode {
			inherit = state[p]
		}
		if seeds[v] {
			inherit = rng.Intn(2) == 1
		}
		state[v] = inherit
		if inherit {
			acc.Set(v)
		}
	}
	c := Build(doc, acc)
	if c.Len() > 2*len(seeds)+1 {
		t.Fatalf("CAM size %d should be near seed count %d", c.Len(), len(seeds))
	}
}

func BenchmarkBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	doc := randomDoc(rng, 100000)
	acc := bitset.New(doc.Len())
	for i := 0; i < doc.Len(); i++ {
		if rng.Intn(5) > 0 {
			acc.Set(i)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(doc, acc)
	}
}
