// Package cam implements the Compressed Accessibility Map of Yu,
// Srivastava, Lakshmanan and Jagadish (VLDB 2002), the single-subject
// baseline the DOL paper compares against in Figure 4.
//
// A CAM is a set of labeled document nodes. Each label carries two bits:
// the accessibility of the node itself (self) and the default accessibility
// of its descendants (desc). The accessibility of an arbitrary node d is
// determined by the nearest labeled ancestor-or-self c: self(c) if c == d,
// otherwise desc(c). The root is always labeled, so every node resolves.
//
// Build computes a minimum-size CAM by a two-state bottom-up dynamic
// program over the tree: for each node and each inherited descendant
// default, either the node's accessibility agrees with the inherited
// default (no label needed), or a label is placed and the cheaper of the
// two descendant defaults is chosen for its subtree.
package cam

import (
	"fmt"
	"sort"

	"dolxml/internal/bitset"
	"dolxml/internal/xmltree"
)

// Label is one CAM entry.
type Label struct {
	Node xmltree.NodeID
	// Self is the accessibility of the labeled node itself.
	Self bool
	// Desc is the default accessibility of the node's descendants.
	Desc bool
}

// CAM is a compressed accessibility map for a single subject over one
// document.
type CAM struct {
	labels []Label // sorted by Node
	byNode map[xmltree.NodeID]int
	doc    *xmltree.Document
}

// Build computes a minimum CAM for the accessibility assignment acc, where
// bit n of acc is node n's accessibility.
func Build(doc *xmltree.Document, acc *bitset.Bitset) *CAM {
	n := doc.Len()
	if n == 0 {
		return &CAM{byNode: map[xmltree.NodeID]int{}, doc: doc}
	}
	// dp[v][c] = minimal labels in v's subtree when the inherited
	// descendant default is c (0 = deny, 1 = allow).
	// choice[v][c]: -1 = no label; 0/1 = label with that desc default.
	dp := make([][2]int32, n)
	choice := make([][2]int8, n)

	// Children sums per node per default, accumulated in reverse
	// document order (children have larger IDs than parents, so a single
	// reverse pass visits children before parents).
	sum := make([][2]int32, n)
	for v := n - 1; v >= 0; v-- {
		id := xmltree.NodeID(v)
		av := 0
		if acc.Test(v) {
			av = 1
		}
		for c := 0; c < 2; c++ {
			best := int32(1<<30 - 1)
			bestChoice := int8(-2)
			if av == c {
				if s := sum[v][c]; s < best {
					best = s
					bestChoice = -1
				}
			}
			for d := 0; d < 2; d++ {
				if s := 1 + sum[v][d]; s < best {
					best = s
					bestChoice = int8(d)
				}
			}
			dp[v][c] = best
			choice[v][c] = bestChoice
		}
		if p := doc.Parent(id); p != xmltree.InvalidNode {
			sum[p][0] += dp[v][0]
			sum[p][1] += dp[v][1]
		}
	}

	// The root is always labeled: pick the cheaper descendant default.
	cam := &CAM{byNode: make(map[xmltree.NodeID]int), doc: doc}
	type frame struct {
		node xmltree.NodeID
		ctx  int8 // inherited default, or root marker 2
	}
	stack := []frame{{0, 2}}
	for len(stack) > 0 {
		fr := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		v := int(fr.node)
		var ch int8
		if fr.ctx == 2 {
			// Forced root label with the cheaper default.
			if sum[v][0] <= sum[v][1] {
				ch = 0
			} else {
				ch = 1
			}
		} else {
			ch = choice[v][fr.ctx]
		}
		nextCtx := fr.ctx
		if ch >= 0 || fr.ctx == 2 {
			if fr.ctx == 2 {
				nextCtx = ch
			} else {
				nextCtx = ch
			}
			cam.labels = append(cam.labels, Label{
				Node: fr.node,
				Self: acc.Test(v),
				Desc: nextCtx == 1,
			})
		}
		for c := doc.FirstChild(fr.node); c != xmltree.InvalidNode; c = doc.NextSibling(c) {
			stack = append(stack, frame{c, nextCtx})
		}
	}
	sort.Slice(cam.labels, func(i, j int) bool { return cam.labels[i].Node < cam.labels[j].Node })
	for i, l := range cam.labels {
		cam.byNode[l.Node] = i
	}
	return cam
}

// Len returns the number of CAM labels — the paper's Figure 4 metric.
func (c *CAM) Len() int { return len(c.labels) }

// Labels returns the CAM labels in document order (a copy).
func (c *CAM) Labels() []Label {
	out := make([]Label, len(c.labels))
	copy(out, c.labels)
	return out
}

// Accessible resolves node n's accessibility via the nearest labeled
// ancestor-or-self.
func (c *CAM) Accessible(n xmltree.NodeID) (bool, error) {
	if !c.doc.Valid(n) {
		return false, fmt.Errorf("cam: invalid node %d", n)
	}
	for v := n; v != xmltree.InvalidNode; v = c.doc.Parent(v) {
		if i, ok := c.byNode[v]; ok {
			if v == n {
				return c.labels[i].Self, nil
			}
			return c.labels[i].Desc, nil
		}
	}
	return false, fmt.Errorf("cam: node %d has no labeled ancestor (missing root label)", n)
}

// EstimateBytes returns the storage estimate the DOL paper uses in §5.1.1:
// each CAM label costs 2 accessibility bits plus pointerBytes of node and
// child references (the paper charges an "unrealistically" low 10 bytes).
func (c *CAM) EstimateBytes(pointerBytes int) int {
	// 2 bits rounded into the pointer budget's padding: charge
	// pointerBytes + 1 per label, mirroring the paper's arithmetic of
	// pointers dominating.
	return len(c.labels) * (pointerBytes + 1)
}
