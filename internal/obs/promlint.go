package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"regexp"
	"strconv"
	"strings"
)

// promlint.go is a strict validator for the Prometheus text exposition
// format as this store emits it. It is deliberately tighter than what the
// Prometheus scraper accepts: every family must carry a # HELP line
// immediately before its # TYPE line, both must precede the family's
// samples, families must not interleave, histogram buckets must be
// cumulative and monotone with a terminal +Inf equal to _count, and names
// must match the canonical grammar. The exposition tests scrape /metrics
// in both serve modes through it, and CI smokes can reuse it via the CLI.

// promNameRE is the exposition name grammar this store emits: the
// registry's lowercase_snake names under a lowercase prefix.
var promNameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// promSampleRE splits a sample line into name, optional label block, and
// value.
var promSampleRE = regexp.MustCompile(`^([A-Za-z_:][A-Za-z0-9_:]*)(\{[^}]*\})? (\S+)$`)

type promFamily struct {
	name     string
	typ      string
	helpSeen bool
	typeSeen bool
	samples  int
	// histogram state
	lastLE      float64
	lastCum     float64
	infSeen     bool
	infVal      float64
	sumSeen     bool
	countSeen   bool
	countVal    float64
	bucketsSeen int
}

// LintPrometheus reads one exposition and returns every violation found
// (nil means the exposition is valid).
func LintPrometheus(r io.Reader) []error {
	var errs []error
	addErr := func(line int, format string, args ...any) {
		errs = append(errs, fmt.Errorf("line %d: %s", line, fmt.Sprintf(format, args...)))
	}
	seen := map[string]bool{} // families already closed
	var cur *promFamily
	closeFamily := func(line int) {
		if cur == nil {
			return
		}
		if cur.samples == 0 {
			addErr(line, "family %s declared but has no samples", cur.name)
		}
		if cur.typ == "histogram" {
			if !cur.infSeen {
				addErr(line, "histogram %s has no +Inf bucket", cur.name)
			}
			if !cur.sumSeen {
				addErr(line, "histogram %s has no _sum", cur.name)
			}
			if !cur.countSeen {
				addErr(line, "histogram %s has no _count", cur.name)
			} else if cur.infSeen && cur.infVal != cur.countVal {
				addErr(line, "histogram %s: +Inf bucket %v != _count %v", cur.name, cur.infVal, cur.countVal)
			}
		}
		seen[cur.name] = true
		cur = nil
	}
	// baseOf maps a sample name to its family base for histogram series.
	baseOf := func(name string) (base, suffix string) {
		for _, s := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(name, s) {
				return strings.TrimSuffix(name, s), s
			}
		}
		return name, ""
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				addErr(lineNo, "malformed comment line %q", line)
				continue
			}
			name := fields[2]
			if !promNameRE.MatchString(name) {
				addErr(lineNo, "invalid metric name %q", name)
			}
			switch fields[1] {
			case "HELP":
				if cur != nil {
					closeFamily(lineNo)
				}
				if seen[name] {
					addErr(lineNo, "duplicate family %s", name)
				}
				if len(fields) < 4 || strings.TrimSpace(fields[3]) == "" {
					addErr(lineNo, "family %s has empty help text", name)
				}
				cur = &promFamily{name: name, helpSeen: true, lastLE: math.Inf(-1)}
			case "TYPE":
				if len(fields) != 4 {
					addErr(lineNo, "malformed TYPE line %q", line)
					continue
				}
				typ := fields[3]
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					addErr(lineNo, "family %s has invalid type %q", name, typ)
				}
				if cur == nil || cur.name != name {
					addErr(lineNo, "TYPE for %s without preceding HELP", name)
					closeFamily(lineNo)
					cur = &promFamily{name: name, lastLE: math.Inf(-1)}
				}
				if cur.typeSeen {
					addErr(lineNo, "duplicate TYPE for %s", name)
				}
				cur.typ = typ
				cur.typeSeen = true
			}
			continue
		}
		m := promSampleRE.FindStringSubmatch(line)
		if m == nil {
			addErr(lineNo, "malformed sample line %q", line)
			continue
		}
		name, labels, valStr := m[1], m[2], m[3]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			addErr(lineNo, "sample %s has non-numeric value %q", name, valStr)
			continue
		}
		base, suffix := baseOf(name)
		if cur == nil {
			addErr(lineNo, "sample %s before any family declaration", name)
			continue
		}
		if name != cur.name && base != cur.name {
			addErr(lineNo, "sample %s outside its family block (current family %s)", name, cur.name)
			continue
		}
		if !cur.typeSeen {
			addErr(lineNo, "sample %s before its TYPE line", name)
		}
		cur.samples++
		if cur.typ == "histogram" && name != cur.name {
			switch suffix {
			case "_bucket":
				le, ok := parseLE(labels)
				if !ok {
					addErr(lineNo, "histogram bucket %s missing le label", name)
					continue
				}
				if le <= cur.lastLE {
					addErr(lineNo, "histogram %s: le %v not increasing (prev %v)", cur.name, le, cur.lastLE)
				}
				if val < cur.lastCum {
					addErr(lineNo, "histogram %s: cumulative bucket count decreased (%v after %v)", cur.name, val, cur.lastCum)
				}
				cur.lastLE, cur.lastCum = le, val
				cur.bucketsSeen++
				if math.IsInf(le, 1) {
					cur.infSeen, cur.infVal = true, val
				}
			case "_sum":
				cur.sumSeen = true
			case "_count":
				cur.countSeen, cur.countVal = true, val
			}
		} else if cur.typ == "counter" || cur.typ == "gauge" {
			if name != cur.name {
				addErr(lineNo, "sample %s does not match %s family %s", name, cur.typ, cur.name)
			}
			if labels != "" {
				addErr(lineNo, "unexpected labels on %s sample %s", cur.typ, name)
			}
			if cur.typ == "counter" && val < 0 {
				addErr(lineNo, "counter %s has negative value %v", name, val)
			}
		}
	}
	if err := sc.Err(); err != nil {
		errs = append(errs, fmt.Errorf("read: %w", err))
	}
	closeFamily(lineNo)
	return errs
}

// parseLE extracts the le label's value from a {..} label block,
// accepting +Inf.
func parseLE(labels string) (float64, bool) {
	const key = `le="`
	i := strings.Index(labels, key)
	if i < 0 {
		return 0, false
	}
	rest := labels[i+len(key):]
	j := strings.Index(rest, `"`)
	if j < 0 {
		return 0, false
	}
	s := rest[:j]
	if s == "+Inf" {
		return math.Inf(1), true
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}
