package obs

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Fatalf("Load = %d, want 42", got)
	}
	c.Reset()
	if got := c.Load(); got != 0 {
		t.Fatalf("after Reset, Load = %d", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		v      int64
		bucket int64 // expected inclusive upper bound
	}{
		{-5, 1}, {0, 1}, {1, 1},
		{2, 2}, {3, 4}, {4, 4}, {5, 8}, {8, 8}, {9, 16},
		{1024, 1024}, {1025, 2048},
	}
	for _, tc := range cases {
		h := NewHistogram()
		h.Observe(tc.v)
		s := h.Snapshot()
		if s.Count != 1 {
			t.Fatalf("Observe(%d): Count = %d", tc.v, s.Count)
		}
		if len(s.Buckets) != 1 {
			t.Fatalf("Observe(%d): buckets = %v", tc.v, s.Buckets)
		}
		if n := s.Buckets[tc.bucket]; n != 1 {
			t.Errorf("Observe(%d): want bucket %d, got %v", tc.v, tc.bucket, s.Buckets)
		}
	}
}

func TestHistogramSum(t *testing.T) {
	h := NewHistogram()
	for _, v := range []int64{1, 10, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 3 || s.Sum != 111 {
		t.Fatalf("Count=%d Sum=%d, want 3/111", s.Count, s.Sum)
	}
}

func TestValidName(t *testing.T) {
	good := []string{"a", "pool_gets", "query_latency_us", "x1_y2"}
	bad := []string{"", "Pool_gets", "1pool", "pool-gets", "pool gets", "pool.gets", "_pool"}
	for _, n := range good {
		if !ValidName(n) {
			t.Errorf("ValidName(%q) = false, want true", n)
		}
	}
	for _, n := range bad {
		if ValidName(n) {
			t.Errorf("ValidName(%q) = true, want false", n)
		}
	}
}

func TestRegistryRejectsBadAndDuplicateNames(t *testing.T) {
	r := NewRegistry()
	if err := r.RegisterCounter("Bad-Name", NewCounter()); err == nil {
		t.Fatal("invalid name accepted")
	}
	if err := r.RegisterCounter("dup", NewCounter()); err != nil {
		t.Fatal(err)
	}
	// Duplicates are rejected across metric kinds, not just within one.
	if err := r.RegisterCounter("dup", NewCounter()); err == nil {
		t.Fatal("duplicate counter accepted")
	}
	if err := r.RegisterGauge("dup", func() int64 { return 0 }); err == nil {
		t.Fatal("gauge shadowing a counter accepted")
	}
	if err := r.RegisterHistogram("dup", NewHistogram()); err == nil {
		t.Fatal("histogram shadowing a counter accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Counter() on duplicate name did not panic")
		}
	}()
	r.Counter("dup")
}

func TestRegistrySnapshotAndNames(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reads")
	c.Add(7)
	r.Gauge("resident", func() int64 { return 3 })
	h := r.Histogram("lat_us")
	h.Observe(5)

	names := r.Names()
	want := []string{"lat_us", "reads", "resident"}
	if len(names) != len(want) {
		t.Fatalf("Names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names = %v, want %v", names, want)
		}
	}

	s := r.Snapshot()
	if s.Get("reads") != 7 || s.Get("resident") != 3 {
		t.Fatalf("snapshot values: %+v", s)
	}
	if s.Histograms["lat_us"].Count != 1 {
		t.Fatalf("histogram missing from snapshot: %+v", s.Histograms)
	}
	if v, ok := r.CounterValue("reads"); !ok || v != 7 {
		t.Fatalf("CounterValue = %d,%v", v, ok)
	}
	if _, ok := r.CounterValue("absent"); ok {
		t.Fatal("CounterValue found absent metric")
	}
}

func TestWriteJSONRoundTrips(t *testing.T) {
	r := NewRegistry()
	r.Counter("reads").Add(9)
	r.Histogram("sz").Observe(100)
	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal([]byte(sb.String()), &s); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, sb.String())
	}
	if s.Counters["reads"] != 9 {
		t.Fatalf("round-trip lost counter: %+v", s)
	}
	if s.Histograms["sz"].Count != 1 {
		t.Fatalf("round-trip lost histogram: %+v", s)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("reads").Add(9)
	r.Gauge("resident", func() int64 { return 3 })
	h := r.Histogram("lat")
	h.Observe(1)
	h.Observe(3)
	h.Observe(3)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb, "dolxml"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE dolxml_reads counter\ndolxml_reads 9\n",
		"# TYPE dolxml_resident gauge\ndolxml_resident 3\n",
		"# TYPE dolxml_lat histogram\n",
		"dolxml_lat_bucket{le=\"1\"} 1\n",
		"dolxml_lat_bucket{le=\"4\"} 3\n", // cumulative
		"dolxml_lat_bucket{le=\"+Inf\"} 3\n",
		"dolxml_lat_sum 7\n",
		"dolxml_lat_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestConcurrentCountersAndHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n")
	h := r.Histogram("v")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(int64(i))
				r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if c.Load() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Load())
	}
	if s := h.Snapshot(); s.Count != 8000 {
		t.Fatalf("histogram count = %d, want 8000", s.Count)
	}
}

func TestTraceCountsAndContext(t *testing.T) {
	tr := NewTrace()
	ctx := WithTrace(context.Background(), tr)
	if got := TraceFromContext(ctx); got != tr {
		t.Fatal("trace not carried by context")
	}
	if got := TraceFromContext(context.Background()); got != nil {
		t.Fatal("trace conjured from empty context")
	}

	tr.Mark(EvParse)
	done := tr.Span(EvCompile)
	done()
	tr.PagePin(3, true)
	tr.PagePin(4, false)
	tr.PageSkip(5, true)
	tr.PageSkip(6, false)
	tr.CandidateReject(42, 6)
	tr.Emit(42)

	if got := tr.PageReads(); got != 2 {
		t.Errorf("PageReads = %d, want 2", got)
	}
	if got := tr.PageSkips(); got != 2 {
		t.Errorf("PageSkips = %d, want 2", got)
	}
	if got := tr.PagesConsidered(); got != 4 {
		t.Errorf("PagesConsidered = %d, want 4", got)
	}
	if tr.PageReads()+tr.PageSkips() != tr.PagesConsidered() {
		t.Error("reads + skips != considered")
	}
	if got := len(tr.Events()); got != 8 {
		t.Errorf("Events len = %d, want 8", got)
	}
	if tr.Dropped() != 0 {
		t.Errorf("Dropped = %d", tr.Dropped())
	}
	out := tr.String()
	for _, want := range []string{"page_pin", "page=3", "hit=true", "page_skip_access", "page_skip_struct", "candidate_reject", "emit"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace dump missing %q:\n%s", want, out)
		}
	}
}

func TestTraceNilIsSafe(t *testing.T) {
	var tr *Trace
	tr.Mark(EvParse)
	tr.Span(EvCompile)()
	tr.PagePin(1, true)
	tr.PageSkip(2, false)
	if tr.PageReads() != 0 || tr.PagesConsidered() != 0 || tr.Dropped() != 0 {
		t.Fatal("nil trace recorded something")
	}
	if tr.Events() != nil {
		t.Fatal("nil trace returned events")
	}
	if s := tr.String(); s != "" {
		t.Fatalf("nil trace dump = %q", s)
	}
	if ctx := WithTrace(context.Background(), nil); TraceFromContext(ctx) != nil {
		t.Fatal("WithTrace(nil) attached a trace")
	}
}

func TestTraceLimitDropsAndCounts(t *testing.T) {
	tr := NewTrace()
	tr.limit = 4
	for i := 0; i < 10; i++ {
		tr.PagePin(int64(i), true)
	}
	if got := len(tr.Events()); got != 4 {
		t.Fatalf("events = %d, want 4", got)
	}
	if got := tr.Dropped(); got != 6 {
		t.Fatalf("Dropped = %d, want 6", got)
	}
	if !strings.Contains(tr.String(), "6 events dropped") {
		t.Fatalf("dump does not note drops:\n%s", tr.String())
	}
}

func TestTraceConcurrentAppend(t *testing.T) {
	tr := NewTrace()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr.PagePin(int64(i), i%2 == 0)
				tr.PageSkip(int64(i), i%3 == 0)
			}
		}(g)
	}
	wg.Wait()
	if got := tr.PageReads(); got != 4000 {
		t.Fatalf("PageReads = %d, want 4000", got)
	}
	if got := tr.PageSkips(); got != 4000 {
		t.Fatalf("PageSkips = %d, want 4000", got)
	}
}
