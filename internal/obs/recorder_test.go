package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestWritePrometheusHelpLines(t *testing.T) {
	r := NewRegistry()
	r.Counter("reads").Add(2)
	r.SetHelp("reads", "Pages read.")
	r.Gauge("resident", func() int64 { return 1 })
	r.Histogram("lat").Observe(1)
	r.SetHelp("lat", "Latency with a\nnewline and \\ backslash.")

	var sb strings.Builder
	if err := r.WritePrometheus(&sb, "dolxml"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP dolxml_reads Pages read.\n# TYPE dolxml_reads counter\n",
		// No SetHelp: fallback derives readable text from the name.
		"# HELP dolxml_resident resident.\n# TYPE dolxml_resident gauge\n",
		`# HELP dolxml_lat Latency with a\nnewline and \\ backslash.` + "\n# TYPE dolxml_lat histogram\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if errs := LintPrometheus(strings.NewReader(out)); len(errs) > 0 {
		t.Fatalf("own exposition fails lint: %v", errs)
	}
}

func TestLintPrometheusCatchesViolations(t *testing.T) {
	for name, exposition := range map[string]string{
		"type without help":   "# TYPE x counter\nx 1\n",
		"empty family":        "# HELP x x.\n# TYPE x counter\n# HELP y y.\n# TYPE y counter\ny 1\n",
		"duplicate family":    "# HELP x x.\n# TYPE x counter\nx 1\n# HELP x x.\n# TYPE x counter\nx 2\n",
		"bad name":            "# HELP Bad bad.\n# TYPE Bad counter\nBad 1\n",
		"bad type":            "# HELP x x.\n# TYPE x zounter\nx 1\n",
		"negative counter":    "# HELP x x.\n# TYPE x counter\nx -4\n",
		"labels on gauge":     "# HELP x x.\n# TYPE x gauge\nx{a=\"b\"} 1\n",
		"sample outside":      "# HELP x x.\n# TYPE x counter\ny 1\n",
		"le not increasing":   "# HELP h h.\n# TYPE h histogram\nh_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 2\n",
		"bucket not monotone": "# HELP h h.\n# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
		"no inf bucket":       "# HELP h h.\n# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
		"inf != count":        "# HELP h h.\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 4\n",
	} {
		if errs := LintPrometheus(strings.NewReader(exposition)); len(errs) == 0 {
			t.Errorf("%s: lint accepted invalid exposition:\n%s", name, exposition)
		}
	}
	valid := "# HELP h h.\n# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 3\nh_count 2\n"
	if errs := LintPrometheus(strings.NewReader(valid)); len(errs) > 0 {
		t.Errorf("lint rejected valid exposition: %v", errs)
	}
}

func TestTraceForOpStampsEvents(t *testing.T) {
	tr := NewTrace()
	scan := tr.ForOp("scan0")
	join := tr.ForOp("join1")
	tr.PagePin(1, false)
	scan.PagePin(2, true)
	join.JoinProbe(7, 3)
	scan.PageSkip(3, true)

	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("events = %d, want 4", len(evs))
	}
	wantOps := []string{"", "scan0", "join1", "scan0"}
	for i, e := range evs {
		if e.Op != wantOps[i] {
			t.Errorf("event %d op = %q, want %q", i, e.Op, wantOps[i])
		}
	}
	// Accessors see the shared log from any handle.
	if scan.PageReads() != 2 || tr.PageReads() != 2 {
		t.Errorf("PageReads: handle %d, root %d, want 2", scan.PageReads(), tr.PageReads())
	}
	if !strings.Contains(tr.String(), "op=scan0") {
		t.Errorf("dump lacks op labels:\n%s", tr.String())
	}
	// Nil-safety: ForOp on nil stays nil and records nothing.
	var nilTr *Trace
	nilTr.ForOp("x").PagePin(1, false)
}

func TestCountingTrace(t *testing.T) {
	tr := NewCountingTrace()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := tr.ForOp("scan0")
			for i := 0; i < 100; i++ {
				h.PagePin(int64(i), i%2 == 0)
				h.PageSkip(int64(i), i%3 == 0)
				h.Emit(int64(i))
			}
		}()
	}
	wg.Wait()
	pins, hits, skipA, skipS, emits := tr.Counts()
	if pins != 400 || hits != 200 || skipA+skipS != 400 || emits != 400 {
		t.Fatalf("counts = %d/%d/%d/%d/%d", pins, hits, skipA, skipS, emits)
	}
	if len(tr.Events()) != 0 {
		t.Fatalf("counting trace retained %d events", len(tr.Events()))
	}
	if tr.PageReads() != 400 || tr.PageHits() != 200 || tr.Emits() != 400 {
		t.Fatalf("accessors disagree: %d/%d/%d", tr.PageReads(), tr.PageHits(), tr.Emits())
	}
}

func TestTraceDropCounter(t *testing.T) {
	var c Counter
	tr := NewTraceWithLimit(3)
	tr.SetDropCounter(&c)
	for i := 0; i < 10; i++ {
		tr.PagePin(int64(i), false)
	}
	if tr.Dropped() != 7 || c.Load() != 7 {
		t.Fatalf("dropped %d, counter %d, want 7/7", tr.Dropped(), c.Load())
	}
}

func TestRecorderBoundsAndAggregates(t *testing.T) {
	rec := NewRecorder(4, 3, 2)
	for i := 0; i < 10; i++ {
		rec.Record(QueryDigest{
			Fingerprint: fmt.Sprintf("q%d", i%5),
			At:          int64(i + 1),
			LatencyUs:   int64(100 * (i + 1)),
			Pages:       int64(i),
			Answers:     1,
		}, nil)
	}
	s := rec.Snapshot()
	if s.Total != 10 {
		t.Fatalf("total = %d, want 10", s.Total)
	}
	if len(s.Recent) != 4 {
		t.Fatalf("ring holds %d, want 4", len(s.Recent))
	}
	// Ring is oldest-first and holds the last four records.
	if s.Recent[0].At != 7 || s.Recent[3].At != 10 {
		t.Fatalf("ring order wrong: %+v", s.Recent)
	}
	if len(s.Fingerprints) != 3 {
		t.Fatalf("fingerprints = %d, want 3 (bound)", len(s.Fingerprints))
	}
	if s.FingerprintsEvicted == 0 {
		t.Fatal("no evictions recorded despite exceeding the fingerprint bound")
	}
	if len(s.Slowest) != 2 {
		t.Fatalf("slowest = %d, want 2", len(s.Slowest))
	}
	if s.Slowest[0].Digest.LatencyUs != 1000 || s.Slowest[1].Digest.LatencyUs != 900 {
		t.Fatalf("top-K not slowest-first: %+v", s.Slowest)
	}
	// Fingerprint aggregates sorted by total time, heaviest first.
	for i := 1; i < len(s.Fingerprints); i++ {
		if s.Fingerprints[i-1].TotalUs < s.Fingerprints[i].TotalUs {
			t.Fatalf("fingerprints not sorted by total: %+v", s.Fingerprints)
		}
	}
	var sb strings.Builder
	if err := rec.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	if err := rec.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "flight recorder: 10 queries") {
		t.Fatalf("text dump wrong:\n%s", sb.String())
	}
}

func TestRecorderRetainsSlowTraces(t *testing.T) {
	rec := NewRecorder(8, 8, 1)
	fast := NewTrace()
	fast.PagePin(1, false)
	rec.Record(QueryDigest{Fingerprint: "fast", LatencyUs: 10}, fast)
	slow := NewTrace()
	slow.PagePin(2, false)
	rec.Record(QueryDigest{Fingerprint: "slow", LatencyUs: 1000}, slow)
	s := rec.Snapshot()
	if len(s.Slowest) != 1 || s.Slowest[0].Digest.Fingerprint != "slow" {
		t.Fatalf("wrong retained query: %+v", s.Slowest)
	}
	if !strings.Contains(s.Slowest[0].Trace, "page_pin") {
		t.Fatalf("retained query lost its trace: %q", s.Slowest[0].Trace)
	}
}

func TestRecorderConcurrent(t *testing.T) {
	rec := NewRecorder(16, 8, 4)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				rec.Record(QueryDigest{
					Fingerprint: fmt.Sprintf("q%d", i%13),
					LatencyUs:   int64(i),
				}, nil)
				if i%50 == 0 {
					rec.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	if rec.Total() != 1600 {
		t.Fatalf("total = %d, want 1600", rec.Total())
	}
	if rec.Fingerprints() > 8 {
		t.Fatalf("fingerprints = %d, bound 8", rec.Fingerprints())
	}
}
