package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Recorder is the always-on query flight recorder: a bounded ring of the
// most recent per-query digests, per-fingerprint aggregates keyed by the
// normalized query fingerprint (pattern + semantics + options), and the
// top-K slowest queries with their rendered traces retained. Everything is
// fixed-size — recording is one short critical section per query and the
// memory bound is set at construction — so it stays on in production the
// same way the metrics registry does.
type Recorder struct {
	mu      sync.Mutex
	ringCap int
	ring    []QueryDigest // ring buffer, ring[next] is the oldest slot
	next    int
	total   int64
	seq     int64
	maxFP   int
	byFP    map[string]*FingerprintStats
	topK    int
	slowest []RetainedQuery // sorted slowest-first, len <= topK
	evicted int64
}

// Recorder bounds. The defaults keep a recorder under ~1 MiB even with
// every retained trace rendered.
const (
	DefaultRecorderRing         = 256
	DefaultRecorderFingerprints = 128
	DefaultRecorderTopK         = 8
)

// QueryDigest is one query's flight-recorder entry.
type QueryDigest struct {
	// Fingerprint is the normalized query identity: canonical pattern
	// render plus semantics and the options that change the plan.
	Fingerprint string `json:"fingerprint"`
	// XPath is the raw query text as submitted.
	XPath string `json:"xpath,omitempty"`
	// At is the query's completion time (unix microseconds).
	At int64 `json:"at_us"`
	// LatencyUs is the end-to-end facade latency.
	LatencyUs int64 `json:"latency_us"`
	// Pages / Hits / SkippedAccess / SkippedStruct are the query's page
	// accounting (from its trace; see Trace.Counts).
	Pages         int64 `json:"pages"`
	Hits          int64 `json:"hits"`
	SkippedAccess int64 `json:"skipped_access"`
	SkippedStruct int64 `json:"skipped_struct"`
	// Answers is the number of matches produced.
	Answers int64 `json:"answers"`
	// Err marks a failed query.
	Err bool `json:"err,omitempty"`
}

// FingerprintStats aggregates every recorded query sharing one
// fingerprint.
type FingerprintStats struct {
	Fingerprint   string `json:"fingerprint"`
	Count         int64  `json:"count"`
	Errors        int64  `json:"errors"`
	TotalUs       int64  `json:"total_us"`
	MaxUs         int64  `json:"max_us"`
	LastUs        int64  `json:"last_us"`
	Pages         int64  `json:"pages"`
	Hits          int64  `json:"hits"`
	SkippedAccess int64  `json:"skipped_access"`
	SkippedStruct int64  `json:"skipped_struct"`
	Answers       int64  `json:"answers"`
	LastAt        int64  `json:"last_at_us"`
	seq           int64
}

// RetainedQuery is one of the top-K slowest queries, with its trace dump
// retained when the query ran with an event trace.
type RetainedQuery struct {
	Digest QueryDigest `json:"digest"`
	Trace  string      `json:"trace,omitempty"`
}

// NewRecorder returns a recorder with the given bounds; zero or negative
// values take the defaults.
func NewRecorder(ring, fingerprints, topK int) *Recorder {
	if ring <= 0 {
		ring = DefaultRecorderRing
	}
	if fingerprints <= 0 {
		fingerprints = DefaultRecorderFingerprints
	}
	if topK <= 0 {
		topK = DefaultRecorderTopK
	}
	return &Recorder{
		ringCap: ring,
		maxFP:   fingerprints,
		byFP:    make(map[string]*FingerprintStats, fingerprints),
		topK:    topK,
	}
}

// Record folds one completed query into the recorder. tr may be nil (or a
// counting trace); when it carries events and the query qualifies for the
// top-K slowest, the rendered dump is retained. The render happens outside
// the recorder lock.
func (r *Recorder) Record(d QueryDigest, tr *Trace) {
	if r == nil {
		return
	}
	if d.At == 0 {
		d.At = time.Now().UnixMicro()
	}
	var dump string
	if tr != nil && r.qualifies(d.LatencyUs) {
		dump = tr.String()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.total++
	r.seq++
	// Ring of recent queries.
	if len(r.ring) < r.ringCap {
		r.ring = append(r.ring, d)
	} else {
		r.ring[r.next] = d
		r.next = (r.next + 1) % r.ringCap
	}
	// Per-fingerprint aggregates, evicting the least recently seen
	// fingerprint when full.
	fp := r.byFP[d.Fingerprint]
	if fp == nil {
		if len(r.byFP) >= r.maxFP {
			var victim string
			min := int64(1<<62 - 1)
			for k, v := range r.byFP {
				if v.seq < min {
					min, victim = v.seq, k
				}
			}
			delete(r.byFP, victim)
			r.evicted++
		}
		fp = &FingerprintStats{Fingerprint: d.Fingerprint}
		r.byFP[d.Fingerprint] = fp
	}
	fp.Count++
	if d.Err {
		fp.Errors++
	}
	fp.TotalUs += d.LatencyUs
	if d.LatencyUs > fp.MaxUs {
		fp.MaxUs = d.LatencyUs
	}
	fp.LastUs = d.LatencyUs
	fp.Pages += d.Pages
	fp.Hits += d.Hits
	fp.SkippedAccess += d.SkippedAccess
	fp.SkippedStruct += d.SkippedStruct
	fp.Answers += d.Answers
	fp.LastAt = d.At
	fp.seq = r.seq
	// Top-K slowest.
	if len(r.slowest) < r.topK || d.LatencyUs > r.slowest[len(r.slowest)-1].Digest.LatencyUs {
		r.slowest = append(r.slowest, RetainedQuery{Digest: d, Trace: dump})
		sort.SliceStable(r.slowest, func(i, j int) bool {
			return r.slowest[i].Digest.LatencyUs > r.slowest[j].Digest.LatencyUs
		})
		if len(r.slowest) > r.topK {
			r.slowest = r.slowest[:r.topK]
		}
	}
}

// qualifies reports whether a query with the given latency would enter the
// top-K slowest right now (the pre-check that decides whether Record
// renders the trace).
func (r *Recorder) qualifies(latencyUs int64) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.slowest) < r.topK || latencyUs > r.slowest[len(r.slowest)-1].Digest.LatencyUs
}

// RecorderSnapshot is a point-in-time copy of the recorder, ready for JSON
// encoding (the /debug/queries payload).
type RecorderSnapshot struct {
	// Total counts every query ever recorded (the ring holds only the
	// most recent).
	Total int64 `json:"total"`
	// FingerprintsEvicted counts aggregate rows dropped past the
	// fingerprint bound.
	FingerprintsEvicted int64 `json:"fingerprints_evicted,omitempty"`
	// Fingerprints is sorted by total latency, heaviest first.
	Fingerprints []FingerprintStats `json:"fingerprints"`
	// Recent is the ring's contents, oldest first.
	Recent []QueryDigest `json:"recent"`
	// Slowest is the top-K by latency, slowest first.
	Slowest []RetainedQuery `json:"slowest"`
}

// Snapshot copies the recorder's state.
func (r *Recorder) Snapshot() RecorderSnapshot {
	if r == nil {
		return RecorderSnapshot{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := RecorderSnapshot{
		Total:               r.total,
		FingerprintsEvicted: r.evicted,
		Fingerprints:        make([]FingerprintStats, 0, len(r.byFP)),
		Recent:              make([]QueryDigest, 0, len(r.ring)),
		Slowest:             append([]RetainedQuery(nil), r.slowest...),
	}
	for _, v := range r.byFP {
		s.Fingerprints = append(s.Fingerprints, *v)
	}
	sort.Slice(s.Fingerprints, func(i, j int) bool {
		a, b := s.Fingerprints[i], s.Fingerprints[j]
		if a.TotalUs != b.TotalUs {
			return a.TotalUs > b.TotalUs
		}
		return a.Fingerprint < b.Fingerprint
	})
	if len(r.ring) < r.ringCap {
		s.Recent = append(s.Recent, r.ring...)
	} else {
		s.Recent = append(s.Recent, r.ring[r.next:]...)
		s.Recent = append(s.Recent, r.ring[:r.next]...)
	}
	return s
}

// Total returns the number of queries recorded so far.
func (r *Recorder) Total() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Fingerprints returns the number of live fingerprint aggregates.
func (r *Recorder) Fingerprints() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return int64(len(r.byFP))
}

// WriteJSON writes the snapshot as indented JSON — the /debug/queries
// payload.
func (r *Recorder) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(r.Snapshot())
}

// WriteText renders a compact human-readable summary: the per-fingerprint
// table (heaviest first) and the slowest retained queries — the
// `dolcli serve -recorder` dump format.
func (r *Recorder) WriteText(w io.Writer) error {
	s := r.Snapshot()
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	p("flight recorder: %d queries, %d fingerprints\n", s.Total, int64(len(s.Fingerprints)))
	for _, f := range s.Fingerprints {
		avg := int64(0)
		if f.Count > 0 {
			avg = f.TotalUs / f.Count
		}
		p("  %-60s n=%d err=%d avg=%dus max=%dus pages=%d hits=%d skipped=%d answers=%d\n",
			f.Fingerprint, f.Count, f.Errors, avg, f.MaxUs,
			f.Pages, f.Hits, f.SkippedAccess+f.SkippedStruct, f.Answers)
	}
	for i, q := range s.Slowest {
		p("  slowest[%d]: %s %dus pages=%d answers=%d\n",
			i, q.Digest.Fingerprint, q.Digest.LatencyUs, q.Digest.Pages, q.Digest.Answers)
	}
	return err
}
