// Package obs is the store-wide observability substrate: atomic counters,
// function-backed gauges, power-of-two-bucket histograms, and a Registry
// that exports every registered metric under one canonical lowercase_snake
// name — as a typed snapshot, as /debug/vars-style JSON, and as Prometheus
// text. It also provides the per-query Trace (see trace.go) that explains
// why each page was read or skipped.
//
// The paper's central claims are I/O-count claims (access checks ride along
// with structure pages "with no extra I/O"; page skipping avoids reads
// outright), so every layer of the store registers its counters here and
// the ad-hoc stats structs of earlier revisions all read from this one
// source. The package is dependency-free (stdlib only) and every metric
// update is a single atomic operation, cheap enough to leave on
// permanently.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; Reset exists for benchmarks and tests that measure
// intervals on private components (registered store-level counters are
// never reset).
type Counter struct {
	v atomic.Int64
}

// NewCounter returns a fresh counter (equivalent to new(Counter)).
func NewCounter() *Counter { return &Counter{} }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative for the counter to stay monotonic;
// this is not enforced, interval arithmetic in benchmarks relies on it).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Reset zeroes the counter. For benchmark/test intervals only.
func (c *Counter) Reset() { c.v.Store(0) }

// Gauge is a function-backed instantaneous value, sampled at snapshot
// time. Backing a gauge with a closure keeps derived quantities (pool
// residency, cache bytes, pager totals) correct even when the underlying
// component is rebuilt, as long as the closure reads through the owner.
type Gauge func() int64

// Histogram accumulates int64 observations into power-of-two buckets:
// bucket i counts observations v with 2^(i-1) < v <= 2^i (bucket 0 counts
// v <= 1). Observation and snapshotting are lock-free; the histogram is
// safe for concurrent use. Typical uses are query latencies in
// microseconds and result sizes.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [65]atomic.Int64
}

// NewHistogram returns a fresh histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// bucketOf maps an observation to its bucket index.
func bucketOf(v int64) int {
	if v <= 1 {
		return 0
	}
	return bits.Len64(uint64(v - 1))
}

// Observe records one value. Negative values clamp to 0.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketOf(v)].Add(1)
}

// HistogramSnapshot is a point-in-time copy of a histogram. Buckets maps
// the inclusive upper bound of each non-empty bucket (1, 2, 4, 8, …) to
// its count.
type HistogramSnapshot struct {
	Count   int64           `json:"count"`
	Sum     int64           `json:"sum"`
	Buckets map[int64]int64 `json:"buckets,omitempty"`
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:   h.count.Load(),
		Sum:     h.sum.Load(),
		Buckets: map[int64]int64{},
	}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			s.Buckets[upperBound(i)] = n
		}
	}
	return s
}

// upperBound returns the inclusive upper bound of bucket i.
func upperBound(i int) int64 {
	if i >= 63 {
		return int64(1) << 62 // clamp: the top bucket's nominal bound overflows
	}
	return int64(1) << uint(i)
}

// nameRE is the canonical metric-name grammar: lowercase_snake, starting
// with a letter. One grammar everywhere keeps the JSON and Prometheus
// exports (and the paper-figure metric table in DESIGN.md) in one
// namespace.
var nameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// ValidName reports whether name is a legal metric name.
func ValidName(name string) bool { return nameRE.MatchString(name) }

// Registry holds named metrics. Registration is rare (store construction);
// lookups during export take a read lock; metric updates never touch the
// registry at all — holders update their Counter/Histogram pointers
// directly.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]Gauge
	hists    map[string]*Histogram
	help     map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]Gauge{},
		hists:    map[string]*Histogram{},
		help:     map[string]string{},
	}
}

// SetHelp records the help text exported on the metric family's # HELP
// line. Registration sites call it right next to the metric registration;
// names without help get a generated fallback so the exposition always
// carries a HELP line per family.
func (r *Registry) SetHelp(name, text string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.help[name] = text
}

// helpFor returns the help text for name, falling back to a generated
// sentence. Callers hold at least the read lock.
func (r *Registry) helpFor(name string) string {
	if h, ok := r.help[name]; ok && h != "" {
		return h
	}
	return strings.ReplaceAll(name, "_", " ") + "."
}

// escapeHelp escapes backslashes and newlines per the Prometheus text
// exposition format's HELP rules.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// register validates the name and its uniqueness across all metric kinds.
func (r *Registry) register(name string) error {
	if !ValidName(name) {
		return fmt.Errorf("obs: invalid metric name %q (want lowercase_snake)", name)
	}
	if _, ok := r.counters[name]; ok {
		return fmt.Errorf("obs: duplicate metric name %q", name)
	}
	if _, ok := r.gauges[name]; ok {
		return fmt.Errorf("obs: duplicate metric name %q", name)
	}
	if _, ok := r.hists[name]; ok {
		return fmt.Errorf("obs: duplicate metric name %q", name)
	}
	return nil
}

// RegisterCounter adds an existing counter under name.
func (r *Registry) RegisterCounter(name string, c *Counter) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.register(name); err != nil {
		return err
	}
	r.counters[name] = c
	return nil
}

// Counter registers and returns a new counter under name, panicking on an
// invalid or duplicate name — registration happens at construction time,
// where a bad name is a programming error.
func (r *Registry) Counter(name string) *Counter {
	c := NewCounter()
	if err := r.RegisterCounter(name, c); err != nil {
		panic(err)
	}
	return c
}

// RegisterGauge adds a function-backed gauge under name.
func (r *Registry) RegisterGauge(name string, g Gauge) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.register(name); err != nil {
		return err
	}
	r.gauges[name] = g
	return nil
}

// Gauge registers fn as a gauge under name, panicking on an invalid or
// duplicate name.
func (r *Registry) Gauge(name string, fn Gauge) {
	if err := r.RegisterGauge(name, fn); err != nil {
		panic(err)
	}
}

// RegisterHistogram adds an existing histogram under name.
func (r *Registry) RegisterHistogram(name string, h *Histogram) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.register(name); err != nil {
		return err
	}
	r.hists[name] = h
	return nil
}

// Histogram registers and returns a new histogram under name, panicking on
// an invalid or duplicate name.
func (r *Registry) Histogram(name string) *Histogram {
	h := NewHistogram()
	if err := r.RegisterHistogram(name, h); err != nil {
		panic(err)
	}
	return h
}

// Names returns every registered metric name, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// CounterValue returns the current value of the named counter (ok reports
// whether it exists).
func (r *Registry) CounterValue(name string) (int64, bool) {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c == nil {
		return 0, false
	}
	return c.Load(), true
}

// Snapshot is a point-in-time copy of every registered metric, ready for
// JSON encoding (the /debug/vars payload) or programmatic diffing around a
// query.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Get returns the named counter or gauge value from the snapshot (0 when
// absent) — the common access path for tests diffing two snapshots.
func (s Snapshot) Get(name string) int64 {
	if v, ok := s.Counters[name]; ok {
		return v
	}
	return s.Gauges[name]
}

// Snapshot captures every registered metric. Gauge functions run while the
// registry read lock is held; they must not call back into the registry.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for n, c := range r.counters {
		s.Counters[n] = c.Load()
	}
	for n, g := range r.gauges {
		s.Gauges[n] = g()
	}
	for n, h := range r.hists {
		s.Histograms[n] = h.Snapshot()
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON — the /debug/vars-style
// export.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(r.Snapshot())
}

// WritePrometheus writes every metric in the Prometheus text exposition
// format, each name prefixed with prefix_ (pass "" for none). Counters
// become counters, gauges gauges, and histograms native Prometheus
// histograms with cumulative power-of-two le buckets. Every family gets a
// # HELP line (registered via SetHelp, generated otherwise) ahead of its
// # TYPE line, so scrapes pass promtool-style lint.
func (r *Registry) WritePrometheus(w io.Writer, prefix string) error {
	if prefix != "" {
		prefix += "_"
	}
	s := r.Snapshot()
	r.mu.RLock()
	help := make(map[string]string, len(s.Counters)+len(s.Gauges)+len(s.Histograms))
	for _, m := range []map[string]int64{s.Counters, s.Gauges} {
		for n := range m {
			help[n] = r.helpFor(n)
		}
	}
	for n := range s.Histograms {
		help[n] = r.helpFor(n)
	}
	r.mu.RUnlock()
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	for _, n := range sortedKeys(s.Counters) {
		p("# HELP %s%s %s\n# TYPE %s%s counter\n%s%s %d\n",
			prefix, n, escapeHelp(help[n]), prefix, n, prefix, n, s.Counters[n])
	}
	for _, n := range sortedKeys(s.Gauges) {
		p("# HELP %s%s %s\n# TYPE %s%s gauge\n%s%s %d\n",
			prefix, n, escapeHelp(help[n]), prefix, n, prefix, n, s.Gauges[n])
	}
	hnames := make([]string, 0, len(s.Histograms))
	for n := range s.Histograms {
		hnames = append(hnames, n)
	}
	sort.Strings(hnames)
	for _, n := range hnames {
		h := s.Histograms[n]
		p("# HELP %s%s %s\n# TYPE %s%s histogram\n", prefix, n, escapeHelp(help[n]), prefix, n)
		bounds := make([]int64, 0, len(h.Buckets))
		for b := range h.Buckets {
			bounds = append(bounds, b)
		}
		sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
		cum := int64(0)
		for _, b := range bounds {
			cum += h.Buckets[b]
			p("%s%s_bucket{le=\"%d\"} %d\n", prefix, n, b, cum)
		}
		p("%s%s_bucket{le=\"+Inf\"} %d\n", prefix, n, h.Count)
		p("%s%s_sum %d\n", prefix, n, h.Sum)
		p("%s%s_count %d\n", prefix, n, h.Count)
	}
	return err
}

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
