package obs

import (
	"context"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// EventKind classifies one trace event. Span-ish kinds (parse, compile,
// open, join_open) carry a duration; page kinds carry the page and the
// evidence that justified reading or skipping it.
type EventKind string

// Trace event kinds. Page events are the heart of the trace: together they
// account for every page the query pinned or skipped, and the invariant
// tests hold them against the buffer pool's own counters.
const (
	// EvParse covers query parsing (recorded by the facade).
	EvParse EventKind = "parse"
	// EvCompile covers skip-mask compilation (in-memory only, no I/O).
	EvCompile EventKind = "compile_skip_mask"
	// EvOpen covers building the cursor pipeline.
	EvOpen EventKind = "open_pipeline"
	// EvPagePin records one buffer-pool page acquisition (Hit tells
	// whether it was served without physical I/O). Exactly one EvPagePin
	// is recorded per pool Get, so trace pins == pool pin count.
	EvPagePin EventKind = "page_pin"
	// EvPageDecode records an actual block decode (absent when the decoded
	// form came from the decode cache).
	EvPageDecode EventKind = "page_decode"
	// EvPageSkipAccess records a scan block skipped because the subject
	// view's deny bitmap proves every node in it inaccessible (§3.3).
	EvPageSkipAccess EventKind = "page_skip_access"
	// EvPageSkipStruct records a scan block skipped because the per-page
	// structural summary excludes every tag the scan could match.
	EvPageSkipStruct EventKind = "page_skip_struct"
	// EvCandidateReject records a root candidate rejected from the deny
	// bitmap alone, before any page was read for it.
	EvCandidateReject EventKind = "candidate_reject"
	// EvPathEmpty marks a query proven empty at compile time — the path
	// summary admits no embedding of the pattern (or every embeddable
	// class is uniformly denied to the view) — with zero pages pinned.
	EvPathEmpty EventKind = "path_empty"
	// EvJoinOpen covers draining a join's left side and building the
	// joiner.
	EvJoinOpen EventKind = "join_open"
	// EvJoinProbe records one structural-join probe (STD or ε-STD).
	EvJoinProbe EventKind = "join_probe"
	// EvMerge records one chunk of the parallel match cursor's ordered
	// merge being forwarded.
	EvMerge EventKind = "merge_chunk"
	// EvEmit records one answer leaving the pipeline.
	EvEmit EventKind = "emit"
	// EvDone marks the end of the drain (recorded by the facade).
	EvDone EventKind = "done"
	// EvSnapshotPin records the query pinning its MVCC snapshot; N carries
	// the snapshot's sequence number.
	EvSnapshotPin EventKind = "snapshot_pin"
	// EvSnapshotUnpin records the pin being released; N carries the
	// sequence number, Dur how long the pin was held.
	EvSnapshotUnpin EventKind = "snapshot_unpin"
)

// TraceEvent is one timestamped entry of a query trace.
type TraceEvent struct {
	// At is the offset from the trace's start.
	At time.Duration `json:"at_us"`
	// Kind classifies the event.
	Kind EventKind `json:"kind"`
	// Op names the plan operator that recorded the event ("" when the
	// event was recorded outside any operator — facade work such as
	// parsing or answer conversion). Stamped by handles from ForOp; the
	// ANALYZE fold partitions events into per-operator buckets by it.
	Op string `json:"op,omitempty"`
	// Page is the page touched or skipped (-1 when not page-related).
	Page int64 `json:"page,omitempty"`
	// Node is the data node involved (-1 when not node-related).
	Node int64 `json:"node,omitempty"`
	// Hit marks a pool hit on pin events.
	Hit bool `json:"hit,omitempty"`
	// Dur is the span duration for span-ish events.
	Dur time.Duration `json:"dur_us,omitempty"`
	// N carries an event-specific count (pairs of a probe, tuples of a
	// merged chunk).
	N int64 `json:"n,omitempty"`
}

// DefaultTraceLimit bounds a trace's event count; past it events are
// dropped (counted in Dropped) rather than growing without bound on huge
// scans.
const DefaultTraceLimit = 1 << 20

// Trace is one query's event log. It is safe for concurrent use: parallel
// match workers and the consumer append through one mutex. A nil *Trace is
// valid and records nothing, so call sites need no guards beyond the usual
// pointer check when building events is itself costly.
//
// Two cheap derived forms exist. ForOp returns a handle sharing the same
// event log that stamps every event it records with an operator label, so
// page pins performed under an operator's context attribute to that
// operator. NewCountingTrace returns a trace that keeps only atomic
// page/skip/emit counters and records no events — the always-on flight
// recorder's per-query accounting without per-event cost.
type Trace struct {
	mu      sync.Mutex
	start   time.Time
	limit   int
	events  []TraceEvent
	dropped int64
	// dropCt, when set, is incremented once per dropped event so drops
	// surface in the metrics registry, not only inside the dump.
	dropCt *Counter
	// root is non-nil on ForOp handles and points at the trace owning the
	// event log; op is the label such a handle stamps on its events.
	root *Trace
	op   string
	// counting switches the trace to counter-only mode: add keeps the
	// atomic tallies below and discards the event itself.
	counting                             bool
	cPins, cHits, cSkipA, cSkipS, cEmits atomic.Int64
}

// NewTrace returns an empty trace starting now.
func NewTrace() *Trace {
	return &Trace{start: time.Now(), limit: DefaultTraceLimit}
}

// NewTraceWithLimit returns an empty trace that drops events past limit —
// for tests exercising the drop path without recording a million events.
func NewTraceWithLimit(limit int) *Trace {
	if limit < 0 {
		limit = 0
	}
	return &Trace{start: time.Now(), limit: limit}
}

// NewCountingTrace returns a trace in counter-only mode: page pins, hits,
// skips and emits are tallied atomically but no events are retained.
// Events, WriteTo and Dropped see an empty trace; the count accessors
// (PageReads, PageHits, PageSkips, Emits, Counts) read the tallies.
func NewCountingTrace() *Trace {
	return &Trace{start: time.Now(), counting: true}
}

// base returns the trace owning the event log (itself, or the root of a
// ForOp handle).
func (t *Trace) base() *Trace {
	if t.root != nil {
		return t.root
	}
	return t
}

// ForOp returns a handle over the same trace that stamps op on every event
// it records. Handles are cheap (one allocation) and safe to share; a nil
// receiver returns nil.
func (t *Trace) ForOp(op string) *Trace {
	if t == nil || op == "" {
		return t
	}
	return &Trace{root: t.base(), op: op}
}

// SetDropCounter arranges for c to be incremented once per event dropped
// past the trace limit, surfacing drops in the metrics registry.
func (t *Trace) SetDropCounter(c *Counter) {
	if t == nil {
		return
	}
	b := t.base()
	b.mu.Lock()
	b.dropCt = c
	b.mu.Unlock()
}

// add appends one event, stamping it.
func (t *Trace) add(e TraceEvent) {
	if t == nil {
		return
	}
	b := t.base()
	if b.counting {
		switch e.Kind {
		case EvPagePin:
			b.cPins.Add(1)
			if e.Hit {
				b.cHits.Add(1)
			}
		case EvPageSkipAccess:
			b.cSkipA.Add(1)
		case EvPageSkipStruct:
			b.cSkipS.Add(1)
		case EvEmit:
			b.cEmits.Add(1)
		}
		return
	}
	if t.op != "" {
		e.Op = t.op
	}
	now := time.Since(b.start)
	b.mu.Lock()
	if len(b.events) >= b.limit {
		b.dropped++
		c := b.dropCt
		b.mu.Unlock()
		if c != nil {
			c.Inc()
		}
		return
	}
	e.At = now
	b.events = append(b.events, e)
	b.mu.Unlock()
}

// Mark records a point event.
func (t *Trace) Mark(kind EventKind) {
	t.add(TraceEvent{Kind: kind, Page: -1, Node: -1})
}

// Span starts a span of the given kind and returns the function that ends
// it, recording one event carrying the span's duration.
func (t *Trace) Span(kind EventKind) func() {
	if t == nil {
		return func() {}
	}
	begin := time.Now()
	return func() {
		t.add(TraceEvent{Kind: kind, Page: -1, Node: -1, Dur: time.Since(begin)})
	}
}

// PagePin records one buffer-pool page acquisition.
func (t *Trace) PagePin(page int64, hit bool) {
	t.add(TraceEvent{Kind: EvPagePin, Page: page, Node: -1, Hit: hit})
}

// PageDecode records an actual decode of a block (a decode-cache miss).
func (t *Trace) PageDecode(page int64) {
	t.add(TraceEvent{Kind: EvPageDecode, Page: page, Node: -1})
}

// PageSkip records a scan block passed over without I/O; access tells
// whether the deny bitmap alone justified it (else the structural
// summary).
func (t *Trace) PageSkip(page int64, access bool) {
	kind := EvPageSkipStruct
	if access {
		kind = EvPageSkipAccess
	}
	t.add(TraceEvent{Kind: kind, Page: page, Node: -1})
}

// CandidateReject records a root candidate rejected pre-I/O.
func (t *Trace) CandidateReject(node int64, page int64) {
	t.add(TraceEvent{Kind: EvCandidateReject, Page: page, Node: node})
}

// JoinProbe records one structural-join probe and its pair count.
func (t *Trace) JoinProbe(node int64, pairs int) {
	t.add(TraceEvent{Kind: EvJoinProbe, Page: -1, Node: node, N: int64(pairs)})
}

// MergeChunk records one ordered-merge chunk forwarded by the parallel
// match cursor.
func (t *Trace) MergeChunk(chunk int, tuples int) {
	t.add(TraceEvent{Kind: EvMerge, Page: -1, Node: int64(chunk), N: int64(tuples)})
}

// Emit records one answer leaving the pipeline.
func (t *Trace) Emit(node int64) {
	t.add(TraceEvent{Kind: EvEmit, Page: -1, Node: node})
}

// SnapshotPin records the query pinning snapshot seq.
func (t *Trace) SnapshotPin(seq uint64) {
	t.add(TraceEvent{Kind: EvSnapshotPin, Page: -1, Node: -1, N: int64(seq)})
}

// SnapshotUnpin records the release of the pin on snapshot seq after
// holding it for held.
func (t *Trace) SnapshotUnpin(seq uint64, held time.Duration) {
	t.add(TraceEvent{Kind: EvSnapshotUnpin, Page: -1, Node: -1, N: int64(seq), Dur: held})
}

// Events returns a copy of the recorded events.
func (t *Trace) Events() []TraceEvent {
	if t == nil {
		return nil
	}
	b := t.base()
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]TraceEvent, len(b.events))
	copy(out, b.events)
	return out
}

// Dropped returns how many events were discarded past the trace limit
// (0 means the trace is complete).
func (t *Trace) Dropped() int64 {
	if t == nil {
		return 0
	}
	b := t.base()
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dropped
}

// PageReads counts page-pin events — one per buffer-pool Get the traced
// work performed.
func (t *Trace) PageReads() int64 {
	if t == nil {
		return 0
	}
	if b := t.base(); b.counting {
		return b.cPins.Load()
	}
	return t.countKinds(EvPagePin)
}

// PageHits counts page-pin events served from the pool without physical
// I/O.
func (t *Trace) PageHits() int64 {
	if t == nil {
		return 0
	}
	b := t.base()
	if b.counting {
		return b.cHits.Load()
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	var n int64
	for _, e := range b.events {
		if e.Kind == EvPagePin && e.Hit {
			n++
		}
	}
	return n
}

// PageSkips counts page-skip events of both causes.
func (t *Trace) PageSkips() int64 {
	if t == nil {
		return 0
	}
	if b := t.base(); b.counting {
		return b.cSkipA.Load() + b.cSkipS.Load()
	}
	return t.countKinds(EvPageSkipAccess, EvPageSkipStruct)
}

// Emits counts answers that left the pipeline.
func (t *Trace) Emits() int64 {
	if t == nil {
		return 0
	}
	if b := t.base(); b.counting {
		return b.cEmits.Load()
	}
	return t.countKinds(EvEmit)
}

// PagesConsidered counts every page decision in the trace: pins plus skips
// of either cause. The metrics-invariant tests hold
// PageReads + PageSkips == PagesConsidered against the registry's
// independently maintained counters.
func (t *Trace) PagesConsidered() int64 {
	if t == nil {
		return 0
	}
	if b := t.base(); b.counting {
		return b.cPins.Load() + b.cSkipA.Load() + b.cSkipS.Load()
	}
	return t.countKinds(EvPagePin, EvPageSkipAccess, EvPageSkipStruct)
}

// Counts returns the trace's page accounting in one pass: pins, pool
// hits, skips by cause, and emits. It works in both event and counting
// mode and is what the flight recorder folds into a query digest.
func (t *Trace) Counts() (pins, hits, skipAccess, skipStruct, emits int64) {
	if t == nil {
		return
	}
	b := t.base()
	if b.counting {
		return b.cPins.Load(), b.cHits.Load(), b.cSkipA.Load(), b.cSkipS.Load(), b.cEmits.Load()
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, e := range b.events {
		switch e.Kind {
		case EvPagePin:
			pins++
			if e.Hit {
				hits++
			}
		case EvPageSkipAccess:
			skipAccess++
		case EvPageSkipStruct:
			skipStruct++
		case EvEmit:
			emits++
		}
	}
	return
}

func (t *Trace) countKinds(kinds ...EventKind) int64 {
	if t == nil {
		return 0
	}
	b := t.base()
	b.mu.Lock()
	defer b.mu.Unlock()
	var n int64
	for _, e := range b.events {
		for _, k := range kinds {
			if e.Kind == k {
				n++
				break
			}
		}
	}
	return n
}

// WriteTo dumps the trace as one event per line with microsecond offsets —
// the slow-query-log format.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	if t == nil {
		return 0, nil
	}
	b := t.base()
	b.mu.Lock()
	events := make([]TraceEvent, len(b.events))
	copy(events, b.events)
	dropped := b.dropped
	limit := b.limit
	b.mu.Unlock()
	var total int64
	p := func(format string, args ...any) error {
		n, err := fmt.Fprintf(w, format, args...)
		total += int64(n)
		return err
	}
	for _, e := range events {
		var sb strings.Builder
		fmt.Fprintf(&sb, "%10.1fus %-18s", float64(e.At.Nanoseconds())/1e3, e.Kind)
		if e.Op != "" {
			fmt.Fprintf(&sb, " op=%s", e.Op)
		}
		if e.Page >= 0 {
			fmt.Fprintf(&sb, " page=%d", e.Page)
		}
		if e.Node >= 0 {
			fmt.Fprintf(&sb, " node=%d", e.Node)
		}
		if e.Kind == EvPagePin {
			fmt.Fprintf(&sb, " hit=%v", e.Hit)
		}
		if e.Dur > 0 {
			fmt.Fprintf(&sb, " dur=%v", e.Dur)
		}
		if e.N > 0 {
			fmt.Fprintf(&sb, " n=%d", e.N)
		}
		if err := p("%s\n", sb.String()); err != nil {
			return total, err
		}
	}
	if dropped > 0 {
		if err := p("(%d events dropped past the %d-event limit)\n", dropped, limit); err != nil {
			return total, err
		}
	}
	return total, nil
}

// String renders the trace via WriteTo.
func (t *Trace) String() string {
	var sb strings.Builder
	t.WriteTo(&sb)
	return sb.String()
}

// traceKey is the context key carrying the active trace.
type traceKey struct{}

// WithTrace returns a context carrying t; the buffer pool and decode layer
// record their page events through it, so every pin performed under this
// context is attributed to the trace no matter which goroutine performs
// it.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, t)
}

// TraceFromContext returns the context's trace, or nil. The nil return is
// the tracing-disabled fast path: one context lookup, no allocation.
func TraceFromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}
