package obs

import (
	"context"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// EventKind classifies one trace event. Span-ish kinds (parse, compile,
// open, join_open) carry a duration; page kinds carry the page and the
// evidence that justified reading or skipping it.
type EventKind string

// Trace event kinds. Page events are the heart of the trace: together they
// account for every page the query pinned or skipped, and the invariant
// tests hold them against the buffer pool's own counters.
const (
	// EvParse covers query parsing (recorded by the facade).
	EvParse EventKind = "parse"
	// EvCompile covers skip-mask compilation (in-memory only, no I/O).
	EvCompile EventKind = "compile_skip_mask"
	// EvOpen covers building the cursor pipeline.
	EvOpen EventKind = "open_pipeline"
	// EvPagePin records one buffer-pool page acquisition (Hit tells
	// whether it was served without physical I/O). Exactly one EvPagePin
	// is recorded per pool Get, so trace pins == pool pin count.
	EvPagePin EventKind = "page_pin"
	// EvPageDecode records an actual block decode (absent when the decoded
	// form came from the decode cache).
	EvPageDecode EventKind = "page_decode"
	// EvPageSkipAccess records a scan block skipped because the subject
	// view's deny bitmap proves every node in it inaccessible (§3.3).
	EvPageSkipAccess EventKind = "page_skip_access"
	// EvPageSkipStruct records a scan block skipped because the per-page
	// structural summary excludes every tag the scan could match.
	EvPageSkipStruct EventKind = "page_skip_struct"
	// EvCandidateReject records a root candidate rejected from the deny
	// bitmap alone, before any page was read for it.
	EvCandidateReject EventKind = "candidate_reject"
	// EvPathEmpty marks a query proven empty at compile time — the path
	// summary admits no embedding of the pattern (or every embeddable
	// class is uniformly denied to the view) — with zero pages pinned.
	EvPathEmpty EventKind = "path_empty"
	// EvJoinOpen covers draining a join's left side and building the
	// joiner.
	EvJoinOpen EventKind = "join_open"
	// EvJoinProbe records one structural-join probe (STD or ε-STD).
	EvJoinProbe EventKind = "join_probe"
	// EvMerge records one chunk of the parallel match cursor's ordered
	// merge being forwarded.
	EvMerge EventKind = "merge_chunk"
	// EvEmit records one answer leaving the pipeline.
	EvEmit EventKind = "emit"
	// EvDone marks the end of the drain (recorded by the facade).
	EvDone EventKind = "done"
	// EvSnapshotPin records the query pinning its MVCC snapshot; N carries
	// the snapshot's sequence number.
	EvSnapshotPin EventKind = "snapshot_pin"
	// EvSnapshotUnpin records the pin being released; N carries the
	// sequence number, Dur how long the pin was held.
	EvSnapshotUnpin EventKind = "snapshot_unpin"
)

// TraceEvent is one timestamped entry of a query trace.
type TraceEvent struct {
	// At is the offset from the trace's start.
	At time.Duration `json:"at_us"`
	// Kind classifies the event.
	Kind EventKind `json:"kind"`
	// Page is the page touched or skipped (-1 when not page-related).
	Page int64 `json:"page,omitempty"`
	// Node is the data node involved (-1 when not node-related).
	Node int64 `json:"node,omitempty"`
	// Hit marks a pool hit on pin events.
	Hit bool `json:"hit,omitempty"`
	// Dur is the span duration for span-ish events.
	Dur time.Duration `json:"dur_us,omitempty"`
	// N carries an event-specific count (pairs of a probe, tuples of a
	// merged chunk).
	N int64 `json:"n,omitempty"`
}

// DefaultTraceLimit bounds a trace's event count; past it events are
// dropped (counted in Dropped) rather than growing without bound on huge
// scans.
const DefaultTraceLimit = 1 << 20

// Trace is one query's event log. It is safe for concurrent use: parallel
// match workers and the consumer append through one mutex. A nil *Trace is
// valid and records nothing, so call sites need no guards beyond the usual
// pointer check when building events is itself costly.
type Trace struct {
	mu      sync.Mutex
	start   time.Time
	limit   int
	events  []TraceEvent
	dropped int64
}

// NewTrace returns an empty trace starting now.
func NewTrace() *Trace {
	return &Trace{start: time.Now(), limit: DefaultTraceLimit}
}

// add appends one event, stamping it.
func (t *Trace) add(e TraceEvent) {
	if t == nil {
		return
	}
	now := time.Since(t.start)
	t.mu.Lock()
	if len(t.events) >= t.limit {
		t.dropped++
		t.mu.Unlock()
		return
	}
	e.At = now
	t.events = append(t.events, e)
	t.mu.Unlock()
}

// Mark records a point event.
func (t *Trace) Mark(kind EventKind) {
	t.add(TraceEvent{Kind: kind, Page: -1, Node: -1})
}

// Span starts a span of the given kind and returns the function that ends
// it, recording one event carrying the span's duration.
func (t *Trace) Span(kind EventKind) func() {
	if t == nil {
		return func() {}
	}
	begin := time.Now()
	return func() {
		t.add(TraceEvent{Kind: kind, Page: -1, Node: -1, Dur: time.Since(begin)})
	}
}

// PagePin records one buffer-pool page acquisition.
func (t *Trace) PagePin(page int64, hit bool) {
	t.add(TraceEvent{Kind: EvPagePin, Page: page, Node: -1, Hit: hit})
}

// PageDecode records an actual decode of a block (a decode-cache miss).
func (t *Trace) PageDecode(page int64) {
	t.add(TraceEvent{Kind: EvPageDecode, Page: page, Node: -1})
}

// PageSkip records a scan block passed over without I/O; access tells
// whether the deny bitmap alone justified it (else the structural
// summary).
func (t *Trace) PageSkip(page int64, access bool) {
	kind := EvPageSkipStruct
	if access {
		kind = EvPageSkipAccess
	}
	t.add(TraceEvent{Kind: kind, Page: page, Node: -1})
}

// CandidateReject records a root candidate rejected pre-I/O.
func (t *Trace) CandidateReject(node int64, page int64) {
	t.add(TraceEvent{Kind: EvCandidateReject, Page: page, Node: node})
}

// JoinProbe records one structural-join probe and its pair count.
func (t *Trace) JoinProbe(node int64, pairs int) {
	t.add(TraceEvent{Kind: EvJoinProbe, Page: -1, Node: node, N: int64(pairs)})
}

// MergeChunk records one ordered-merge chunk forwarded by the parallel
// match cursor.
func (t *Trace) MergeChunk(chunk int, tuples int) {
	t.add(TraceEvent{Kind: EvMerge, Page: -1, Node: int64(chunk), N: int64(tuples)})
}

// Emit records one answer leaving the pipeline.
func (t *Trace) Emit(node int64) {
	t.add(TraceEvent{Kind: EvEmit, Page: -1, Node: node})
}

// SnapshotPin records the query pinning snapshot seq.
func (t *Trace) SnapshotPin(seq uint64) {
	t.add(TraceEvent{Kind: EvSnapshotPin, Page: -1, Node: -1, N: int64(seq)})
}

// SnapshotUnpin records the release of the pin on snapshot seq after
// holding it for held.
func (t *Trace) SnapshotUnpin(seq uint64, held time.Duration) {
	t.add(TraceEvent{Kind: EvSnapshotUnpin, Page: -1, Node: -1, N: int64(seq), Dur: held})
}

// Events returns a copy of the recorded events.
func (t *Trace) Events() []TraceEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TraceEvent, len(t.events))
	copy(out, t.events)
	return out
}

// Dropped returns how many events were discarded past the trace limit
// (0 means the trace is complete).
func (t *Trace) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// PageReads counts page-pin events — one per buffer-pool Get the traced
// work performed.
func (t *Trace) PageReads() int64 { return t.countKinds(EvPagePin) }

// PageSkips counts page-skip events of both causes.
func (t *Trace) PageSkips() int64 {
	return t.countKinds(EvPageSkipAccess, EvPageSkipStruct)
}

// PagesConsidered counts every page decision in the trace: pins plus skips
// of either cause. The metrics-invariant tests hold
// PageReads + PageSkips == PagesConsidered against the registry's
// independently maintained counters.
func (t *Trace) PagesConsidered() int64 {
	return t.countKinds(EvPagePin, EvPageSkipAccess, EvPageSkipStruct)
}

func (t *Trace) countKinds(kinds ...EventKind) int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var n int64
	for _, e := range t.events {
		for _, k := range kinds {
			if e.Kind == k {
				n++
				break
			}
		}
	}
	return n
}

// WriteTo dumps the trace as one event per line with microsecond offsets —
// the slow-query-log format.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	if t == nil {
		return 0, nil
	}
	t.mu.Lock()
	events := make([]TraceEvent, len(t.events))
	copy(events, t.events)
	dropped := t.dropped
	t.mu.Unlock()
	var total int64
	p := func(format string, args ...any) error {
		n, err := fmt.Fprintf(w, format, args...)
		total += int64(n)
		return err
	}
	for _, e := range events {
		var sb strings.Builder
		fmt.Fprintf(&sb, "%10.1fus %-18s", float64(e.At.Nanoseconds())/1e3, e.Kind)
		if e.Page >= 0 {
			fmt.Fprintf(&sb, " page=%d", e.Page)
		}
		if e.Node >= 0 {
			fmt.Fprintf(&sb, " node=%d", e.Node)
		}
		if e.Kind == EvPagePin {
			fmt.Fprintf(&sb, " hit=%v", e.Hit)
		}
		if e.Dur > 0 {
			fmt.Fprintf(&sb, " dur=%v", e.Dur)
		}
		if e.N > 0 {
			fmt.Fprintf(&sb, " n=%d", e.N)
		}
		if err := p("%s\n", sb.String()); err != nil {
			return total, err
		}
	}
	if dropped > 0 {
		if err := p("(%d events dropped past the %d-event limit)\n", dropped, t.limit); err != nil {
			return total, err
		}
	}
	return total, nil
}

// String renders the trace via WriteTo.
func (t *Trace) String() string {
	var sb strings.Builder
	t.WriteTo(&sb)
	return sb.String()
}

// traceKey is the context key carrying the active trace.
type traceKey struct{}

// WithTrace returns a context carrying t; the buffer pool and decode layer
// record their page events through it, so every pin performed under this
// context is attributed to the trace no matter which goroutine performs
// it.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, t)
}

// TraceFromContext returns the context's trace, or nil. The nil return is
// the tracing-disabled fast path: one context lookup, no allocation.
func TraceFromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}
