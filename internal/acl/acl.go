// Package acl implements the fine-grained access control model of the DOL
// paper (§2): a set of subjects S (users and user groups), a set of action
// modes M (read, write, ...), and an accessibility function
//
//	accessible : S × M × D → {true, false}
//
// over the node set D of an XML tree. The materialized function for one
// action mode is an accessibility Matrix: one subject bit vector per node.
//
// The subject hierarchy (group membership) is maintained separately from
// the matrix, exactly as in the paper: a user's effective rights are the
// union of their own subject's rights and those of every group they belong
// to (footnote 4).
//
// Rule-based policies with hierarchical propagation and the
// Most-Specific-Override semantics of Jajodia et al. [12] are provided by
// Policy.Materialize, which computes the "net effect ... captured by an
// accessibility function" that DOL then encodes.
package acl

import (
	"fmt"

	"dolxml/internal/bitset"
	"dolxml/internal/xmltree"
)

// SubjectID identifies a subject (user or group) in a Directory. IDs are
// dense and double as bit positions in accessibility vectors and DOL
// codebook entries.
type SubjectID int

// InvalidSubject is the null subject reference.
const InvalidSubject SubjectID = -1

// Mode identifies an action mode (read, write, ...). The paper's LiveLink
// dataset has ten modes; modes are just small integers with optional names.
type Mode int

// Conventional modes. Systems may define more via ModeName.
const (
	ModeRead Mode = iota
	ModeWrite
)

// Directory holds the subject set and the group-membership hierarchy.
type Directory struct {
	names   []string
	byName  map[string]SubjectID
	isGroup []bool
	// memberOf[s] lists the groups subject s directly belongs to.
	memberOf [][]SubjectID
}

// NewDirectory returns an empty subject directory.
func NewDirectory() *Directory {
	return &Directory{byName: make(map[string]SubjectID)}
}

// Clone returns a deep copy of the directory. MVCC snapshots share the
// original read-only; directory mutations (AddUser/AddGroup/AddMember) run
// on a clone and publish it wholesale.
func (d *Directory) Clone() *Directory {
	c := &Directory{
		names:    append([]string(nil), d.names...),
		byName:   make(map[string]SubjectID, len(d.byName)),
		isGroup:  append([]bool(nil), d.isGroup...),
		memberOf: make([][]SubjectID, len(d.memberOf)),
	}
	for k, v := range d.byName {
		c.byName[k] = v
	}
	for i, m := range d.memberOf {
		c.memberOf[i] = append([]SubjectID(nil), m...)
	}
	return c
}

// AddUser registers a user subject and returns its ID. Names must be unique
// across users and groups.
func (d *Directory) AddUser(name string) (SubjectID, error) {
	return d.add(name, false)
}

// AddGroup registers a group subject and returns its ID.
func (d *Directory) AddGroup(name string) (SubjectID, error) {
	return d.add(name, true)
}

func (d *Directory) add(name string, group bool) (SubjectID, error) {
	if _, ok := d.byName[name]; ok {
		return InvalidSubject, fmt.Errorf("acl: duplicate subject %q", name)
	}
	id := SubjectID(len(d.names))
	d.names = append(d.names, name)
	d.isGroup = append(d.isGroup, group)
	d.memberOf = append(d.memberOf, nil)
	d.byName[name] = id
	return id, nil
}

// MustAddUser is AddUser that panics on error.
func (d *Directory) MustAddUser(name string) SubjectID {
	id, err := d.AddUser(name)
	if err != nil {
		panic(err)
	}
	return id
}

// MustAddGroup is AddGroup that panics on error.
func (d *Directory) MustAddGroup(name string) SubjectID {
	id, err := d.AddGroup(name)
	if err != nil {
		panic(err)
	}
	return id
}

// Len returns the number of subjects.
func (d *Directory) Len() int { return len(d.names) }

// Name returns the name of subject s.
func (d *Directory) Name(s SubjectID) string { return d.names[s] }

// IsGroup reports whether subject s is a group.
func (d *Directory) IsGroup(s SubjectID) bool { return d.isGroup[s] }

// Lookup returns the subject with the given name.
func (d *Directory) Lookup(name string) (SubjectID, bool) {
	s, ok := d.byName[name]
	return s, ok
}

// AddMember records that subject member belongs to group. Membership may be
// nested (groups within groups); cycles are rejected.
func (d *Directory) AddMember(group, member SubjectID) error {
	if !d.valid(group) || !d.valid(member) {
		return fmt.Errorf("acl: invalid subject in AddMember(%d, %d)", group, member)
	}
	if !d.isGroup[group] {
		return fmt.Errorf("acl: %q is not a group", d.names[group])
	}
	if group == member || d.inClosure(member, group) {
		return fmt.Errorf("acl: membership cycle adding %q to %q", d.names[member], d.names[group])
	}
	d.memberOf[member] = append(d.memberOf[member], group)
	return nil
}

// inClosure reports whether s is reachable from start via memberOf edges,
// i.e. start transitively belongs to s. AddMember(g, m) would create a
// cycle exactly when g already transitively belongs to m.
func (d *Directory) inClosure(s, start SubjectID) bool {
	seen := map[SubjectID]bool{}
	var walk func(x SubjectID) bool
	walk = func(x SubjectID) bool {
		if x == s {
			return true
		}
		if seen[x] {
			return false
		}
		seen[x] = true
		for _, g := range d.memberOf[x] {
			if walk(g) {
				return true
			}
		}
		return false
	}
	return walk(start)
}

func (d *Directory) valid(s SubjectID) bool { return s >= 0 && int(s) < len(d.names) }

// EffectiveSubjects returns s plus every group s transitively belongs to,
// as a bit vector over SubjectIDs. This is the subject set whose DOL bits
// are ORed to decide a user's access (paper footnote 4).
func (d *Directory) EffectiveSubjects(s SubjectID) *bitset.Bitset {
	out := bitset.New(len(d.names))
	if !d.valid(s) {
		return out
	}
	var walk func(x SubjectID)
	walk = func(x SubjectID) {
		if out.Test(int(x)) {
			return
		}
		out.Set(int(x))
		for _, g := range d.memberOf[x] {
			walk(g)
		}
	}
	walk(s)
	return out
}

// DirectorySnapshot is the serializable form of a Directory.
type DirectorySnapshot struct {
	Names    []string      `json:"names"`
	IsGroup  []bool        `json:"is_group"`
	MemberOf [][]SubjectID `json:"member_of"`
}

// Snapshot captures the directory for serialization.
func (d *Directory) Snapshot() DirectorySnapshot {
	s := DirectorySnapshot{
		Names:    append([]string(nil), d.names...),
		IsGroup:  append([]bool(nil), d.isGroup...),
		MemberOf: make([][]SubjectID, len(d.memberOf)),
	}
	for i, m := range d.memberOf {
		s.MemberOf[i] = append([]SubjectID(nil), m...)
	}
	return s
}

// DirectoryFromSnapshot reconstructs a directory, validating names and
// membership references.
func DirectoryFromSnapshot(s DirectorySnapshot) (*Directory, error) {
	if len(s.Names) != len(s.IsGroup) || len(s.Names) != len(s.MemberOf) {
		return nil, fmt.Errorf("acl: inconsistent snapshot lengths")
	}
	d := NewDirectory()
	for i, name := range s.Names {
		var err error
		if s.IsGroup[i] {
			_, err = d.AddGroup(name)
		} else {
			_, err = d.AddUser(name)
		}
		if err != nil {
			return nil, err
		}
	}
	for member, gs := range s.MemberOf {
		for _, g := range gs {
			if err := d.AddMember(g, SubjectID(member)); err != nil {
				return nil, err
			}
		}
	}
	return d, nil
}

// Matrix is the materialized accessibility function for one action mode:
// row n is the set of subjects that may access node n.
type Matrix struct {
	subjects int
	rows     []*bitset.Bitset
}

// NewMatrix returns an all-deny matrix for numNodes nodes and numSubjects
// subjects.
func NewMatrix(numNodes, numSubjects int) *Matrix {
	rows := make([]*bitset.Bitset, numNodes)
	for i := range rows {
		rows[i] = bitset.New(numSubjects)
	}
	return &Matrix{subjects: numSubjects, rows: rows}
}

// NumNodes returns the number of node rows.
func (m *Matrix) NumNodes() int { return len(m.rows) }

// NumSubjects returns the subject dimension.
func (m *Matrix) NumSubjects() int { return m.subjects }

// Set grants (v=true) or revokes (v=false) subject s on node n.
func (m *Matrix) Set(n xmltree.NodeID, s SubjectID, v bool) {
	m.rows[n].SetTo(int(s), v)
}

// SetRow overwrites node n's subject vector with a copy of row.
func (m *Matrix) SetRow(n xmltree.NodeID, row *bitset.Bitset) {
	m.rows[n].CopyFrom(row)
	m.rows[n].Resize(m.subjects)
}

// Accessible reports whether subject s may access node n.
func (m *Matrix) Accessible(n xmltree.NodeID, s SubjectID) bool {
	return m.rows[n].Test(int(s))
}

// AccessibleAny reports whether any subject in the effective set may access
// node n (user + groups semantics).
func (m *Matrix) AccessibleAny(n xmltree.NodeID, effective *bitset.Bitset) bool {
	row := m.rows[n].Clone()
	row.And(effective)
	return row.Any()
}

// Row returns node n's subject vector. The returned bitset is shared with
// the matrix; callers must not modify it.
func (m *Matrix) Row(n xmltree.NodeID) *bitset.Bitset { return m.rows[n] }

// Equal reports whether two matrices have the same dimensions and bits.
func (m *Matrix) Equal(o *Matrix) bool {
	if m.subjects != o.subjects || len(m.rows) != len(o.rows) {
		return false
	}
	for i := range m.rows {
		if !m.rows[i].EqualBits(o.rows[i]) {
			return false
		}
	}
	return true
}

// SelectSubjects projects the matrix onto the given subjects: column i of
// the result is the column of subjects[i]. Used by the multi-user scaling
// experiments, which build DOLs over random subject subsets.
func (m *Matrix) SelectSubjects(subjects []SubjectID) *Matrix {
	out := NewMatrix(len(m.rows), len(subjects))
	for n, row := range m.rows {
		for i, s := range subjects {
			if row.Test(int(s)) {
				out.rows[n].Set(i)
			}
		}
	}
	return out
}

// Clone returns an independent deep copy of the matrix.
func (m *Matrix) Clone() *Matrix {
	c := &Matrix{subjects: m.subjects, rows: make([]*bitset.Bitset, len(m.rows))}
	for i, r := range m.rows {
		c.rows[i] = r.Clone()
	}
	return c
}

// AccessibleCount returns the number of nodes accessible to subject s.
func (m *Matrix) AccessibleCount(s SubjectID) int {
	c := 0
	for _, r := range m.rows {
		if r.Test(int(s)) {
			c++
		}
	}
	return c
}

// Column extracts subject s's accessibility over all nodes as a bit vector
// indexed by NodeID — the single-subject view used to build per-user CAMs.
func (m *Matrix) Column(s SubjectID) *bitset.Bitset {
	col := bitset.New(len(m.rows))
	for i, r := range m.rows {
		if r.Test(int(s)) {
			col.Set(i)
		}
	}
	return col
}
