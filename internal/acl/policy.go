package acl

import (
	"fmt"
	"sort"

	"dolxml/internal/xmltree"
)

// Effect is the sign of an authorization rule.
type Effect int

// Rule effects: Permit grants access, Deny revokes it.
const (
	Deny Effect = iota
	Permit
)

func (e Effect) String() string {
	if e == Permit {
		return "permit"
	}
	return "deny"
}

// ConflictPolicy selects among conflicting rules attached to the same node
// for the same subject, following the policy families of Jajodia et al.
type ConflictPolicy int

// Supported conflict-resolution policies.
const (
	// DenyOverrides: any applicable deny wins (the common closed default).
	DenyOverrides ConflictPolicy = iota
	// PermitOverrides: any applicable permit wins.
	PermitOverrides
	// LastRuleWins: rules are applied in definition order; later rules
	// override earlier ones.
	LastRuleWins
)

// Rule is one authorization statement: subject gets effect on the target
// node, optionally cascading to the target's whole subtree. Cascading rules
// propagate with Most-Specific-Override semantics: a node is governed by
// the rule whose target is its nearest ancestor-or-self.
type Rule struct {
	Subject SubjectID
	Mode    Mode
	Target  xmltree.NodeID
	Effect  Effect
	// Cascade propagates the effect to all descendants of Target until
	// overridden by a more specific rule.
	Cascade bool
}

// Policy is an ordered collection of rules plus the defaults that govern
// unlabeled nodes.
type Policy struct {
	// DefaultEffect applies to (subject, node) pairs no rule covers.
	// The closed-world assumption is Deny.
	DefaultEffect Effect
	// Conflicts selects among same-node conflicting rules.
	Conflicts ConflictPolicy
	rules     []Rule
}

// NewPolicy returns an empty closed-world (deny by default) policy with
// DenyOverrides conflict resolution.
func NewPolicy() *Policy {
	return &Policy{DefaultEffect: Deny, Conflicts: DenyOverrides}
}

// Add appends a rule.
func (p *Policy) Add(r Rule) { p.rules = append(p.rules, r) }

// Grant is shorthand for adding a cascading permit rule.
func (p *Policy) Grant(s SubjectID, mode Mode, target xmltree.NodeID) {
	p.Add(Rule{Subject: s, Mode: mode, Target: target, Effect: Permit, Cascade: true})
}

// Revoke is shorthand for adding a cascading deny rule.
func (p *Policy) Revoke(s SubjectID, mode Mode, target xmltree.NodeID) {
	p.Add(Rule{Subject: s, Mode: mode, Target: target, Effect: Deny, Cascade: true})
}

// Rules returns the policy's rules in definition order (a copy).
func (p *Policy) Rules() []Rule {
	out := make([]Rule, len(p.rules))
	copy(out, p.rules)
	return out
}

// Len returns the number of rules.
func (p *Policy) Len() int { return len(p.rules) }

// Materialize computes the net effect of the policy over doc for one action
// mode, producing the accessibility matrix that DOL encodes. Rules for
// other modes are ignored. numSubjects fixes the matrix's subject
// dimension.
//
// Semantics: for each subject, a node's accessibility is decided by
//  1. non-cascading rules targeting the node itself, if any;
//  2. otherwise the nearest ancestor-or-self cascading rule
//     (Most-Specific-Override, as in the paper's synthetic workload §5);
//  3. otherwise the policy default.
//
// Conflicts within a tier are resolved by p.Conflicts.
func (p *Policy) Materialize(doc *xmltree.Document, mode Mode, numSubjects int) (*Matrix, error) {
	for i, r := range p.rules {
		if !doc.Valid(r.Target) {
			return nil, fmt.Errorf("acl: rule %d targets invalid node %d", i, r.Target)
		}
		if int(r.Subject) < 0 || int(r.Subject) >= numSubjects {
			return nil, fmt.Errorf("acl: rule %d subject %d outside [0,%d)", i, r.Subject, numSubjects)
		}
	}
	m := NewMatrix(doc.Len(), numSubjects)

	// Group rule indices by (target, subject) for this mode.
	type key struct {
		target  xmltree.NodeID
		subject SubjectID
	}
	local := make(map[key][]int)   // non-cascading
	cascade := make(map[key][]int) // cascading
	subjectsSeen := map[SubjectID]bool{}
	for i, r := range p.rules {
		if r.Mode != mode {
			continue
		}
		k := key{r.Target, r.Subject}
		if r.Cascade {
			cascade[k] = append(cascade[k], i)
		} else {
			local[k] = append(local[k], i)
		}
		subjectsSeen[r.Subject] = true
	}

	resolve := func(idxs []int) (Effect, bool) {
		if len(idxs) == 0 {
			return Deny, false
		}
		switch p.Conflicts {
		case DenyOverrides:
			for _, i := range idxs {
				if p.rules[i].Effect == Deny {
					return Deny, true
				}
			}
			return Permit, true
		case PermitOverrides:
			for _, i := range idxs {
				if p.rules[i].Effect == Permit {
					return Permit, true
				}
			}
			return Deny, true
		default: // LastRuleWins
			return p.rules[idxs[len(idxs)-1]].Effect, true
		}
	}

	// Materialize subject by subject with an explicit DFS carrying the
	// inherited cascading effect.
	subjects := make([]SubjectID, 0, len(subjectsSeen))
	for s := range subjectsSeen {
		subjects = append(subjects, s)
	}
	sort.Slice(subjects, func(i, j int) bool { return subjects[i] < subjects[j] })

	defaultOn := p.DefaultEffect == Permit
	for s := SubjectID(0); int(s) < numSubjects; s++ {
		if !subjectsSeen[s] {
			if defaultOn {
				for n := 0; n < doc.Len(); n++ {
					m.Set(xmltree.NodeID(n), s, true)
				}
			}
			continue
		}
		type frame struct {
			node      xmltree.NodeID
			inherited Effect
		}
		stack := []frame{{doc.Root(), p.DefaultEffect}}
		for len(stack) > 0 {
			fr := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			inherited := fr.inherited
			if eff, ok := resolve(cascade[key{fr.node, s}]); ok {
				inherited = eff
			}
			nodeEff := inherited
			if eff, ok := resolve(local[key{fr.node, s}]); ok {
				nodeEff = eff
			}
			if nodeEff == Permit {
				m.Set(fr.node, s, true)
			}
			for c := doc.FirstChild(fr.node); c != xmltree.InvalidNode; c = doc.NextSibling(c) {
				stack = append(stack, frame{c, inherited})
			}
		}
	}
	return m, nil
}
