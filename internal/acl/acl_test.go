package acl

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dolxml/internal/bitset"
	"dolxml/internal/xmltree"
)

func TestDirectoryBasics(t *testing.T) {
	d := NewDirectory()
	alice := d.MustAddUser("alice")
	devs := d.MustAddGroup("devs")
	if d.Len() != 2 {
		t.Fatalf("Len = %d", d.Len())
	}
	if d.Name(alice) != "alice" || d.Name(devs) != "devs" {
		t.Fatal("names wrong")
	}
	if d.IsGroup(alice) || !d.IsGroup(devs) {
		t.Fatal("IsGroup wrong")
	}
	if s, ok := d.Lookup("alice"); !ok || s != alice {
		t.Fatal("Lookup failed")
	}
	if _, ok := d.Lookup("bob"); ok {
		t.Fatal("phantom subject")
	}
	if _, err := d.AddUser("alice"); err == nil {
		t.Fatal("duplicate name should fail")
	}
}

func TestMembershipAndEffectiveSubjects(t *testing.T) {
	d := NewDirectory()
	alice := d.MustAddUser("alice")
	devs := d.MustAddGroup("devs")
	staff := d.MustAddGroup("staff")
	other := d.MustAddGroup("other")
	if err := d.AddMember(devs, alice); err != nil {
		t.Fatal(err)
	}
	if err := d.AddMember(staff, devs); err != nil {
		t.Fatal(err)
	}
	eff := d.EffectiveSubjects(alice)
	for _, s := range []SubjectID{alice, devs, staff} {
		if !eff.Test(int(s)) {
			t.Errorf("effective subjects missing %s", d.Name(s))
		}
	}
	if eff.Test(int(other)) {
		t.Error("effective subjects should not include unrelated group")
	}
	if eff.Count() != 3 {
		t.Errorf("effective count = %d", eff.Count())
	}
}

func TestMembershipErrors(t *testing.T) {
	d := NewDirectory()
	alice := d.MustAddUser("alice")
	devs := d.MustAddGroup("devs")
	staff := d.MustAddGroup("staff")
	if err := d.AddMember(alice, devs); err == nil {
		t.Error("non-group container should fail")
	}
	if err := d.AddMember(devs, devs); err == nil {
		t.Error("self membership should fail")
	}
	if err := d.AddMember(devs, staff); err != nil {
		t.Fatal(err)
	}
	if err := d.AddMember(staff, devs); err == nil {
		t.Error("membership cycle should fail")
	}
	if err := d.AddMember(SubjectID(99), alice); err == nil {
		t.Error("invalid group id should fail")
	}
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(5, 3)
	if m.NumNodes() != 5 || m.NumSubjects() != 3 {
		t.Fatal("dimensions wrong")
	}
	m.Set(2, 1, true)
	if !m.Accessible(2, 1) || m.Accessible(2, 0) || m.Accessible(1, 1) {
		t.Fatal("Set/Accessible wrong")
	}
	m.Set(2, 1, false)
	if m.Accessible(2, 1) {
		t.Fatal("revoke failed")
	}
	m.Set(0, 0, true)
	m.Set(4, 0, true)
	if m.AccessibleCount(0) != 2 {
		t.Fatalf("AccessibleCount = %d", m.AccessibleCount(0))
	}
	col := m.Column(0)
	if !col.Test(0) || !col.Test(4) || col.Test(2) {
		t.Fatal("Column wrong")
	}
}

func TestMatrixAccessibleAny(t *testing.T) {
	m := NewMatrix(3, 4)
	m.Set(1, 2, true) // group 2 can access node 1
	eff := bitset.FromIndices(4, 0, 2)
	if !m.AccessibleAny(1, eff) {
		t.Fatal("user with group 2 should access node 1")
	}
	if m.AccessibleAny(0, eff) {
		t.Fatal("node 0 should be inaccessible")
	}
	loner := bitset.FromIndices(4, 3)
	if m.AccessibleAny(1, loner) {
		t.Fatal("subject 3 should not access node 1")
	}
}

func TestMatrixSetRowAndEqual(t *testing.T) {
	m := NewMatrix(2, 3)
	row := bitset.FromIndices(3, 0, 2)
	m.SetRow(0, row)
	if !m.Accessible(0, 0) || m.Accessible(0, 1) || !m.Accessible(0, 2) {
		t.Fatal("SetRow wrong")
	}
	// Mutating the source must not affect the matrix.
	row.Set(1)
	if m.Accessible(0, 1) {
		t.Fatal("SetRow aliases caller's bitset")
	}

	n := NewMatrix(2, 3)
	n.SetRow(0, bitset.FromIndices(3, 0, 2))
	if !m.Equal(n) {
		t.Fatal("equal matrices not Equal")
	}
	n.Set(1, 1, true)
	if m.Equal(n) {
		t.Fatal("different matrices Equal")
	}
	if m.Equal(NewMatrix(3, 3)) || m.Equal(NewMatrix(2, 4)) {
		t.Fatal("dimension mismatch should not be Equal")
	}
}

// fig2doc is the 12-node tree of the paper's Figure 2.
func fig2doc(t testing.TB) *xmltree.Document {
	t.Helper()
	return xmltree.MustParseString(
		`<a><b/><c/><d/><e><f/><g/><h><i/><j/><k/><l/></h></e></a>`)
}

func TestMaterializeCascade(t *testing.T) {
	doc := fig2doc(t)
	p := NewPolicy()
	// Subject 0: permit everything under the root, deny the subtree at e.
	p.Grant(0, ModeRead, 0)
	p.Revoke(0, ModeRead, 4) // e
	m, err := p.Materialize(doc, ModeRead, 1)
	if err != nil {
		t.Fatal(err)
	}
	// a b c d accessible; e..l not.
	for n := xmltree.NodeID(0); n < 4; n++ {
		if !m.Accessible(n, 0) {
			t.Errorf("node %d should be accessible", n)
		}
	}
	for n := xmltree.NodeID(4); n < 12; n++ {
		if m.Accessible(n, 0) {
			t.Errorf("node %d should be denied", n)
		}
	}
}

func TestMaterializeMostSpecificOverride(t *testing.T) {
	doc := fig2doc(t)
	p := NewPolicy()
	p.Revoke(0, ModeRead, 0) // deny all
	p.Grant(0, ModeRead, 4)  // permit subtree e
	p.Revoke(0, ModeRead, 7) // deny subtree h (inside e)
	p.Grant(0, ModeRead, 9)  // permit node j's subtree (leaf)
	m, err := p.Materialize(doc, ModeRead, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := map[xmltree.NodeID]bool{
		0: false, 1: false, 2: false, 3: false,
		4: true, 5: true, 6: true,
		7: false, 8: false, 9: true, 10: false, 11: false,
	}
	for n, w := range want {
		if got := m.Accessible(n, 0); got != w {
			t.Errorf("node %d (%s): accessible = %v, want %v", n, doc.Tag(n), got, w)
		}
	}
}

func TestMaterializeNonCascadingLocalRule(t *testing.T) {
	doc := fig2doc(t)
	p := NewPolicy()
	p.Grant(0, ModeRead, 0)
	// Non-cascading deny on e only: descendants keep inherited permit.
	p.Add(Rule{Subject: 0, Mode: ModeRead, Target: 4, Effect: Deny, Cascade: false})
	m, err := p.Materialize(doc, ModeRead, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Accessible(4, 0) {
		t.Error("e itself should be denied")
	}
	if !m.Accessible(5, 0) || !m.Accessible(11, 0) {
		t.Error("e's descendants should remain accessible")
	}
}

func TestMaterializeConflictPolicies(t *testing.T) {
	doc := xmltree.MustParseString("<a/>")
	mk := func(cp ConflictPolicy) bool {
		p := NewPolicy()
		p.Conflicts = cp
		p.Grant(0, ModeRead, 0)
		p.Revoke(0, ModeRead, 0)
		m, err := p.Materialize(doc, ModeRead, 1)
		if err != nil {
			t.Fatal(err)
		}
		return m.Accessible(0, 0)
	}
	if mk(DenyOverrides) {
		t.Error("DenyOverrides should deny")
	}
	if !mk(PermitOverrides) {
		t.Error("PermitOverrides should permit")
	}
	if mk(LastRuleWins) {
		t.Error("LastRuleWins should apply the final revoke")
	}
}

func TestMaterializeDefaults(t *testing.T) {
	doc := fig2doc(t)
	p := NewPolicy()
	m, err := p.Materialize(doc, ModeRead, 2)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < doc.Len(); n++ {
		if m.Accessible(xmltree.NodeID(n), 0) || m.Accessible(xmltree.NodeID(n), 1) {
			t.Fatal("closed world should deny everything")
		}
	}
	p.DefaultEffect = Permit
	m, err = p.Materialize(doc, ModeRead, 2)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < doc.Len(); n++ {
		if !m.Accessible(xmltree.NodeID(n), 1) {
			t.Fatal("open world should permit subjects without rules")
		}
	}
}

func TestMaterializeModeFiltering(t *testing.T) {
	doc := fig2doc(t)
	p := NewPolicy()
	p.Grant(0, ModeWrite, 0)
	m, err := p.Materialize(doc, ModeRead, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Accessible(0, 0) {
		t.Fatal("write rule must not grant read")
	}
	mw, err := p.Materialize(doc, ModeWrite, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !mw.Accessible(11, 0) {
		t.Fatal("write rule should cascade for write mode")
	}
}

func TestMaterializeErrors(t *testing.T) {
	doc := fig2doc(t)
	p := NewPolicy()
	p.Grant(0, ModeRead, 99)
	if _, err := p.Materialize(doc, ModeRead, 1); err == nil {
		t.Fatal("invalid target should fail")
	}
	p2 := NewPolicy()
	p2.Grant(5, ModeRead, 0)
	if _, err := p2.Materialize(doc, ModeRead, 2); err == nil {
		t.Fatal("out-of-range subject should fail")
	}
}

func TestPolicyRulesCopy(t *testing.T) {
	p := NewPolicy()
	p.Grant(0, ModeRead, 0)
	r := p.Rules()
	r[0].Effect = Deny
	if p.Rules()[0].Effect != Permit {
		t.Fatal("Rules must return a copy")
	}
	if p.Len() != 1 {
		t.Fatal("Len wrong")
	}
}

func TestEffectString(t *testing.T) {
	if Permit.String() != "permit" || Deny.String() != "deny" {
		t.Fatal("Effect.String wrong")
	}
}

// Property: Materialize with Most-Specific-Override matches a brute-force
// per-node nearest-labeled-ancestor computation on random trees and rules.
func TestMaterializeMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		doc := randomDoc(rng, 2+rng.Intn(60))
		p := NewPolicy()
		p.Conflicts = LastRuleWins
		numRules := 1 + rng.Intn(8)
		for i := 0; i < numRules; i++ {
			p.Add(Rule{
				Subject: 0,
				Mode:    ModeRead,
				Target:  xmltree.NodeID(rng.Intn(doc.Len())),
				Effect:  Effect(rng.Intn(2)),
				Cascade: true,
			})
		}
		m, err := p.Materialize(doc, ModeRead, 1)
		if err != nil {
			return false
		}
		// Brute force: nearest ancestor-or-self with a cascading rule,
		// last rule at that node wins.
		lastRule := map[xmltree.NodeID]Effect{}
		for _, r := range p.Rules() {
			lastRule[r.Target] = r.Effect
		}
		for n := 0; n < doc.Len(); n++ {
			want := Deny
			for a := xmltree.NodeID(n); a != xmltree.InvalidNode; a = doc.Parent(a) {
				if eff, ok := lastRule[a]; ok {
					want = eff
					break
				}
			}
			if m.Accessible(xmltree.NodeID(n), 0) != (want == Permit) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func randomDoc(rng *rand.Rand, n int) *xmltree.Document {
	b := xmltree.NewBuilder()
	b.Begin("r")
	open := 1
	for i := 1; i < n; i++ {
		for open > 1 && rng.Intn(3) == 0 {
			b.End()
			open--
		}
		b.Begin("x")
		open++
	}
	for ; open > 0; open-- {
		b.End()
	}
	return b.MustFinish()
}

func BenchmarkMaterialize(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	doc := randomDoc(rng, 10000)
	p := NewPolicy()
	for i := 0; i < 50; i++ {
		p.Add(Rule{
			Subject: SubjectID(i % 8),
			Mode:    ModeRead,
			Target:  xmltree.NodeID(rng.Intn(doc.Len())),
			Effect:  Effect(rng.Intn(2)),
			Cascade: true,
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Materialize(doc, ModeRead, 8); err != nil {
			b.Fatal(err)
		}
	}
}

func TestDirectorySnapshotRoundTrip(t *testing.T) {
	d := NewDirectory()
	alice := d.MustAddUser("alice")
	devs := d.MustAddGroup("devs")
	staff := d.MustAddGroup("staff")
	d.AddMember(devs, alice)
	d.AddMember(staff, devs)
	snap := d.Snapshot()
	re, err := DirectoryFromSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != d.Len() {
		t.Fatalf("Len %d != %d", re.Len(), d.Len())
	}
	for i := 0; i < d.Len(); i++ {
		s := SubjectID(i)
		if re.Name(s) != d.Name(s) || re.IsGroup(s) != d.IsGroup(s) {
			t.Fatalf("subject %d differs after round trip", i)
		}
	}
	if !re.EffectiveSubjects(alice).Equal(d.EffectiveSubjects(alice)) {
		t.Fatal("effective subjects differ after round trip")
	}
	// Mutating the snapshot must not affect the directory.
	snap.Names[0] = "mallory"
	if d.Name(alice) != "alice" {
		t.Fatal("Snapshot aliases directory state")
	}
}

func TestDirectoryFromSnapshotErrors(t *testing.T) {
	if _, err := DirectoryFromSnapshot(DirectorySnapshot{Names: []string{"a"}}); err == nil {
		t.Fatal("inconsistent lengths should fail")
	}
	bad := DirectorySnapshot{
		Names:    []string{"a", "a"},
		IsGroup:  []bool{false, false},
		MemberOf: [][]SubjectID{nil, nil},
	}
	if _, err := DirectoryFromSnapshot(bad); err == nil {
		t.Fatal("duplicate names should fail")
	}
}

func TestMatrixRowCloneSelect(t *testing.T) {
	m := NewMatrix(3, 4)
	m.Set(1, 2, true)
	if !m.Row(1).Test(2) || m.Row(0).Test(2) {
		t.Fatal("Row wrong")
	}
	c := m.Clone()
	c.Set(0, 0, true)
	if m.Accessible(0, 0) {
		t.Fatal("Clone shares rows")
	}
	sub := m.SelectSubjects([]SubjectID{2, 0})
	if !sub.Accessible(1, 0) || sub.Accessible(1, 1) {
		t.Fatal("SelectSubjects projection wrong")
	}
	if sub.NumSubjects() != 2 {
		t.Fatalf("NumSubjects = %d", sub.NumSubjects())
	}
}
