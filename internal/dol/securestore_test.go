package dol

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dolxml/internal/acl"
	"dolxml/internal/bitset"
	"dolxml/internal/nok"
	"dolxml/internal/storage"
	"dolxml/internal/xmltree"
)

func fig2doc(t testing.TB) *xmltree.Document {
	t.Helper()
	return xmltree.MustParseString(
		`<a><b/><c/><d/><e><f/><g/><h><i/><j/><k/><l/></h></e></a>`)
}

func buildSecure(t testing.TB, doc *xmltree.Document, m *acl.Matrix, pageSize int) *SecureStore {
	t.Helper()
	pool := storage.NewBufferPool(storage.NewMemPager(pageSize), 256)
	ss, err := BuildSecureStore(pool, doc, m, nok.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return ss
}

// checkStoreRefs verifies the physical refcount invariant:
// refs(code) = #(block headers with code) + #(inline entries with code).
func checkStoreRefs(t *testing.T, ss *SecureStore) {
	t.Helper()
	counts := map[Code]int{}
	st := ss.store
	for i := 0; i < st.NumPages(); i++ {
		counts[st.PageInfoAt(i).AccessCode]++
		entries, err := st.BlockEntries(i)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if e.HasCode {
				counts[e.Code]++
			}
		}
	}
	for c, want := range counts {
		if got := ss.cb.Refs(c); got != want {
			t.Fatalf("code %d: refs = %d, want %d", c, got, want)
		}
	}
	if got := ss.cb.Len(); got != len(counts) {
		t.Fatalf("codebook live entries = %d, blocks reference %d distinct codes", got, len(counts))
	}
}

func TestSecureStoreAccessible(t *testing.T) {
	doc := fig2doc(t)
	m := figure1Matrix()
	for _, pageSize := range []int{64, 96, 4096} {
		ss := buildSecure(t, doc, m, pageSize)
		for n := xmltree.NodeID(0); int(n) < doc.Len(); n++ {
			for s := acl.SubjectID(0); s < 2; s++ {
				got, err := ss.Accessible(n, s)
				if err != nil {
					t.Fatal(err)
				}
				if got != m.Accessible(n, s) {
					t.Errorf("pageSize %d: Accessible(%d,%d) = %v", pageSize, n, s, got)
				}
			}
		}
		got, err := ss.Matrix()
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(m) {
			t.Fatalf("pageSize %d: Matrix round trip failed", pageSize)
		}
		checkStoreRefs(t, ss)
	}
}

func TestSecureStoreAccessibleAny(t *testing.T) {
	ss := buildSecure(t, fig2doc(t), figure1Matrix(), 4096)
	eff := bitset.FromIndices(2, 1)
	ok, err := ss.AccessibleAny(2, eff) // node c: only subject 0
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("subject 1 should not reach node c")
	}
	ok, _ = ss.AccessibleAny(0, eff)
	if !ok {
		t.Fatal("subject 1 should reach node a")
	}
}

func TestTransitionCountMatchesLabeling(t *testing.T) {
	doc := fig2doc(t)
	m := figure1Matrix()
	lab := FromMatrix(m)
	for _, pageSize := range []int{64, 4096} {
		ss := buildSecure(t, doc, m, pageSize)
		got, err := ss.TransitionCount()
		if err != nil {
			t.Fatal(err)
		}
		if got != lab.NumTransitions() {
			t.Errorf("pageSize %d: TransitionCount = %d, want %d", pageSize, got, lab.NumTransitions())
		}
	}
}

func TestPageFullyInaccessible(t *testing.T) {
	// Many-node document where a long middle run is inaccessible.
	b := xmltree.NewBuilder()
	b.Begin("root")
	for i := 0; i < 300; i++ {
		b.Element("x", "")
	}
	b.End()
	doc := b.MustFinish()
	m := acl.NewMatrix(doc.Len(), 1)
	for n := 0; n < doc.Len(); n++ {
		// First 50 and last 50 accessible.
		if n < 50 || n > doc.Len()-50 {
			m.Set(xmltree.NodeID(n), 0, true)
		}
	}
	ss := buildSecure(t, doc, m, 128)
	st := ss.Store()
	if st.NumPages() < 4 {
		t.Fatalf("want multiple pages, got %d", st.NumPages())
	}
	eff := bitset.FromIndices(1, 0)
	sawSkippable := false
	for i := 0; i < st.NumPages(); i++ {
		skip := ss.PageFullyInaccessible(i, eff)
		skipOne := ss.PageFullyInaccessibleTo(i, 0)
		if skip != skipOne {
			t.Fatal("effective-set and single-subject skip disagree")
		}
		// Verify against ground truth.
		pi := st.PageInfoAt(i)
		allDenied := true
		for k := 0; k < pi.Count; k++ {
			if m.Accessible(pi.FirstNode+xmltree.NodeID(k), 0) {
				allDenied = false
				break
			}
		}
		if skip && !allDenied {
			t.Fatalf("page %d claimed skippable but has accessible nodes", i)
		}
		if allDenied && !skip {
			// Allowed to be conservative only when the change bit is
			// set; with one subject and a contiguous denied run the
			// interior pages must be recognized.
			if !pi.ChangeBit {
				t.Fatalf("page %d fully denied with clear change bit but not skippable", i)
			}
		}
		if skip {
			sawSkippable = true
		}
	}
	if !sawSkippable {
		t.Fatal("no skippable pages found; workload should produce some")
	}
}

func TestSetNodeAccessPhysical(t *testing.T) {
	doc := fig2doc(t)
	m := figure1Matrix()
	for _, pageSize := range []int{64, 4096} {
		ss := buildSecure(t, doc, m.Clone(), pageSize)
		if err := ss.SetNodeAccess(4, 1, true); err != nil {
			t.Fatal(err)
		}
		want := m.Clone()
		want.Set(4, 1, true)
		got, err := ss.Matrix()
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("pageSize %d: matrix mismatch after SetNodeAccess", pageSize)
		}
		checkStoreRefs(t, ss)
	}
}

func TestSetSubtreeAccessPhysical(t *testing.T) {
	doc := fig2doc(t)
	m := figure1Matrix()
	ss := buildSecure(t, doc, m.Clone(), 64)
	// Revoke subject 0 on subtree e (nodes 4..11).
	if err := ss.SetSubtreeAccess(4, 0, false); err != nil {
		t.Fatal(err)
	}
	want := m.Clone()
	for n := xmltree.NodeID(4); n <= 11; n++ {
		want.Set(n, 0, false)
	}
	got, err := ss.Matrix()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatal("matrix mismatch after SetSubtreeAccess")
	}
	checkStoreRefs(t, ss)
}

func TestSetNodeAccessTransitionGrowth(t *testing.T) {
	doc := fig2doc(t)
	m := figure1Matrix()
	ss := buildSecure(t, doc, m, 4096)
	before, _ := ss.TransitionCount()
	if err := ss.SetNodeAccess(5, 0, true); err != nil {
		t.Fatal(err)
	}
	after, err := ss.TransitionCount()
	if err != nil {
		t.Fatal(err)
	}
	if after > before+2 {
		t.Fatalf("Proposition 1 violated physically: %d -> %d", before, after)
	}
}

// mirror is a mutable oracle tree for structural update tests.
type mnode struct {
	tag  string
	row  *bitset.Bitset
	kids []*mnode
}

func mirrorFromDoc(doc *xmltree.Document, m *acl.Matrix) *mnode {
	var build func(n xmltree.NodeID) *mnode
	build = func(n xmltree.NodeID) *mnode {
		mn := &mnode{tag: doc.Tag(n), row: m.Row(n).Clone()}
		for c := doc.FirstChild(n); c != xmltree.InvalidNode; c = doc.NextSibling(c) {
			mn.kids = append(mn.kids, build(c))
		}
		return mn
	}
	return build(doc.Root())
}

// flatten returns the mirror as (document, matrix).
func (mn *mnode) flatten(numSubjects int) (*xmltree.Document, *acl.Matrix) {
	b := xmltree.NewBuilder()
	var rows []*bitset.Bitset
	var walk func(x *mnode)
	walk = func(x *mnode) {
		b.Begin(x.tag)
		rows = append(rows, x.row)
		for _, k := range x.kids {
			walk(k)
		}
		b.End()
	}
	walk(mn)
	doc := b.MustFinish()
	m := acl.NewMatrix(len(rows), numSubjects)
	for i, r := range rows {
		m.SetRow(xmltree.NodeID(i), r)
	}
	return doc, m
}

// locate returns the mirror node with the given preorder index and its
// parent (nil for the root).
func (mn *mnode) locate(idx int) (node, parent *mnode, childPos int) {
	count := 0
	var walk func(x, p *mnode, pos int) (*mnode, *mnode, int)
	walk = func(x, p *mnode, pos int) (*mnode, *mnode, int) {
		if count == idx {
			return x, p, pos
		}
		count++
		for i, k := range x.kids {
			if n, pp, cp := walk(k, x, i); n != nil {
				return n, pp, cp
			}
		}
		return nil, nil, 0
	}
	return walk(mn, nil, 0)
}

func (mn *mnode) size() int {
	s := 1
	for _, k := range mn.kids {
		s += k.size()
	}
	return s
}

// verifyAgainstMirror checks structure, tags and ACLs of ss against the
// mirror oracle.
func verifyAgainstMirror(t *testing.T, ss *SecureStore, root *mnode, numSubjects int) {
	t.Helper()
	wantDoc, wantM := root.flatten(numSubjects)
	st := ss.Store()
	if st.NumNodes() != wantDoc.Len() {
		t.Fatalf("store has %d nodes, mirror %d", st.NumNodes(), wantDoc.Len())
	}
	gotM, err := ss.Matrix()
	if err != nil {
		t.Fatal(err)
	}
	if !gotM.Equal(wantM) {
		t.Fatal("accessibility matrix differs from mirror")
	}
	for n := xmltree.NodeID(0); int(n) < wantDoc.Len(); n++ {
		tag, err := st.Tag(n)
		if err != nil {
			t.Fatal(err)
		}
		if st.TagName(tag) != wantDoc.Tag(n) {
			t.Fatalf("node %d tag %q, want %q", n, st.TagName(tag), wantDoc.Tag(n))
		}
		fc, err := st.FirstChild(n)
		if err != nil {
			t.Fatal(err)
		}
		if fc != wantDoc.FirstChild(n) {
			t.Fatalf("node %d FirstChild %d, want %d", n, fc, wantDoc.FirstChild(n))
		}
		fs, err := st.FollowingSibling(n)
		if err != nil {
			t.Fatal(err)
		}
		if fs != wantDoc.NextSibling(n) {
			t.Fatalf("node %d FollowingSibling %d, want %d", n, fs, wantDoc.NextSibling(n))
		}
	}
	checkStoreRefs(t, ss)
}

func TestDeleteSubtreePhysical(t *testing.T) {
	doc := fig2doc(t)
	m := figure1Matrix()
	for _, victim := range []int{7 /* h */, 4 /* e */, 1 /* b */, 11 /* l */} {
		for _, pageSize := range []int{64, 4096} {
			ss := buildSecure(t, doc, m.Clone(), pageSize)
			root := mirrorFromDoc(doc, m)
			if err := ss.DeleteSubtree(xmltree.NodeID(victim)); err != nil {
				t.Fatal(err)
			}
			_, parent, pos := root.locate(victim)
			parent.kids = append(parent.kids[:pos], parent.kids[pos+1:]...)
			verifyAgainstMirror(t, ss, root, 2)
		}
	}
}

func TestDeleteRootRejected(t *testing.T) {
	ss := buildSecure(t, fig2doc(t), figure1Matrix(), 4096)
	if err := ss.DeleteSubtree(0); err == nil {
		t.Fatal("deleting the root should fail")
	}
}

func fragment(t *testing.T, numSubjects int) (*xmltree.Document, *acl.Matrix) {
	t.Helper()
	frag := xmltree.MustParseString(`<new><n1/><n2><n3/></n2></new>`)
	fm := acl.NewMatrix(frag.Len(), numSubjects)
	for n := 0; n < frag.Len(); n++ {
		fm.Set(xmltree.NodeID(n), 0, true)
	}
	return frag, fm
}

func TestInsertSubtreePhysical(t *testing.T) {
	doc := fig2doc(t)
	m := figure1Matrix()
	frag, fm := fragment(t, 2)
	cases := []struct {
		name   string
		parent xmltree.NodeID
		after  xmltree.NodeID
	}{
		{"first child of root", 0, xmltree.InvalidNode},
		{"after b", 0, 1},
		{"after e (last child)", 0, 4},
		{"first child of leaf f", 5, xmltree.InvalidNode},
		{"after l under h", 7, 11},
	}
	for _, tc := range cases {
		for _, pageSize := range []int{64, 4096} {
			ss := buildSecure(t, doc, m.Clone(), pageSize)
			root := mirrorFromDoc(doc, m)
			if err := ss.InsertSubtree(tc.parent, tc.after, frag, fm); err != nil {
				t.Fatalf("%s: %v", tc.name, err)
			}
			fragRoot := mirrorFromDoc(frag, fm)
			p, _, _ := root.locate(int(tc.parent))
			if tc.after == xmltree.InvalidNode {
				p.kids = append([]*mnode{fragRoot}, p.kids...)
			} else {
				_, pp, pos := root.locate(int(tc.after))
				if pp != p {
					t.Fatalf("%s: test setup wrong", tc.name)
				}
				p.kids = append(p.kids[:pos+1], append([]*mnode{fragRoot}, p.kids[pos+1:]...)...)
			}
			verifyAgainstMirror(t, ss, root, 2)
		}
	}
}

func TestInsertSubtreeErrors(t *testing.T) {
	ss := buildSecure(t, fig2doc(t), figure1Matrix(), 4096)
	frag, fm := fragment(t, 2)
	if err := ss.InsertSubtree(99, xmltree.InvalidNode, frag, fm); err == nil {
		t.Fatal("invalid parent should fail")
	}
	badM := acl.NewMatrix(1, 2)
	if err := ss.InsertSubtree(0, xmltree.InvalidNode, frag, badM); err == nil {
		t.Fatal("mismatched matrix should fail")
	}
}

func TestMoveSubtreePhysical(t *testing.T) {
	doc := fig2doc(t)
	m := figure1Matrix()
	ss := buildSecure(t, doc, m.Clone(), 64)
	root := mirrorFromDoc(doc, m)
	// Move subtree h (node 7) to become first child of the root.
	if err := ss.MoveSubtree(7, 0, xmltree.InvalidNode); err != nil {
		t.Fatal(err)
	}
	h, parent, pos := root.locate(7)
	parent.kids = append(parent.kids[:pos], parent.kids[pos+1:]...)
	root.kids = append([]*mnode{h}, root.kids...)
	verifyAgainstMirror(t, ss, root, 2)
}

func TestMoveSubtreeIntoItselfRejected(t *testing.T) {
	ss := buildSecure(t, fig2doc(t), figure1Matrix(), 4096)
	if err := ss.MoveSubtree(4, 7, xmltree.InvalidNode); err == nil {
		t.Fatal("moving a subtree into itself should fail")
	}
}

func TestSubjectOpsPhysical(t *testing.T) {
	ss := buildSecure(t, fig2doc(t), figure1Matrix(), 4096)
	s := ss.AddSubject()
	ok, err := ss.Accessible(0, s)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("fresh subject should have no access")
	}
	s2, err := ss.AddSubjectLike(0)
	if err != nil {
		t.Fatal(err)
	}
	for n := xmltree.NodeID(0); n < 12; n++ {
		a0, _ := ss.Accessible(n, 0)
		a2, _ := ss.Accessible(n, s2)
		if a0 != a2 {
			t.Fatalf("clone subject differs at node %d", n)
		}
	}
	if err := ss.RemoveSubject(1); err != nil {
		t.Fatal(err)
	}
	// Old subject 0 keeps its rights (still index 0).
	ok, _ = ss.Accessible(0, 0)
	if !ok {
		t.Fatal("subject 0 lost access after removing subject 1")
	}
}

// Property: random interleavings of accessibility and structural updates
// keep the physical store equivalent to the mirror oracle.
func TestSecureStoreUpdateProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		doc := randomSecDoc(rng, 10+rng.Intn(60))
		numSubjects := 1 + rng.Intn(3)
		m := acl.NewMatrix(doc.Len(), numSubjects)
		for n := 0; n < doc.Len(); n++ {
			for s := 0; s < numSubjects; s++ {
				if rng.Intn(2) == 0 {
					m.Set(xmltree.NodeID(n), acl.SubjectID(s), true)
				}
			}
		}
		pageSize := 64 + rng.Intn(128)
		pool := storage.NewBufferPool(storage.NewMemPager(pageSize), 256)
		ss, err := BuildSecureStore(pool, doc, m, nok.BuildOptions{})
		if err != nil {
			return false
		}
		root := mirrorFromDoc(doc, m)

		for step := 0; step < 12; step++ {
			total := root.size()
			switch rng.Intn(3) {
			case 0: // subtree accessibility flip
				idx := rng.Intn(total)
				s := acl.SubjectID(rng.Intn(numSubjects))
				allowed := rng.Intn(2) == 1
				if err := ss.SetSubtreeAccess(xmltree.NodeID(idx), s, allowed); err != nil {
					return false
				}
				target, _, _ := root.locate(idx)
				var apply func(x *mnode)
				apply = func(x *mnode) {
					x.row.SetTo(int(s), allowed)
					for _, k := range x.kids {
						apply(k)
					}
				}
				apply(target)
			case 1: // delete a non-root subtree
				if total < 2 {
					continue
				}
				idx := 1 + rng.Intn(total-1)
				if err := ss.DeleteSubtree(xmltree.NodeID(idx)); err != nil {
					return false
				}
				_, parent, pos := root.locate(idx)
				parent.kids = append(parent.kids[:pos], parent.kids[pos+1:]...)
			case 2: // insert a small fragment as first child
				idx := rng.Intn(total)
				fragDoc := randomSecDoc(rng, 1+rng.Intn(6))
				fm := acl.NewMatrix(fragDoc.Len(), numSubjects)
				for n := 0; n < fragDoc.Len(); n++ {
					for s := 0; s < numSubjects; s++ {
						if rng.Intn(2) == 0 {
							fm.Set(xmltree.NodeID(n), acl.SubjectID(s), true)
						}
					}
				}
				if err := ss.InsertSubtree(xmltree.NodeID(idx), xmltree.InvalidNode, fragDoc, fm); err != nil {
					return false
				}
				p, _, _ := root.locate(idx)
				p.kids = append([]*mnode{mirrorFromDoc(fragDoc, fm)}, p.kids...)
			}
		}

		if err := ss.Store().CheckConsistency(); err != nil {
			return false
		}
		wantDoc, wantM := root.flatten(numSubjects)
		if ss.Store().NumNodes() != wantDoc.Len() {
			return false
		}
		gotM, err := ss.Matrix()
		if err != nil {
			return false
		}
		if !gotM.Equal(wantM) {
			return false
		}
		for n := xmltree.NodeID(0); int(n) < wantDoc.Len(); n++ {
			if fc, err := ss.Store().FirstChild(n); err != nil || fc != wantDoc.FirstChild(n) {
				return false
			}
			if fs, err := ss.Store().FollowingSibling(n); err != nil || fs != wantDoc.NextSibling(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func randomSecDoc(rng *rand.Rand, n int) *xmltree.Document {
	b := xmltree.NewBuilder()
	b.Begin("r")
	open := 1
	for i := 1; i < n; i++ {
		for open > 1 && rng.Intn(3) == 0 {
			b.End()
			open--
		}
		b.Begin([]string{"x", "y", "z"}[rng.Intn(3)])
		open++
	}
	for ; open > 0; open-- {
		b.End()
	}
	return b.MustFinish()
}

func BenchmarkSetNodeAccess(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	doc := benchDoc(rng, 20000)
	m := acl.NewMatrix(doc.Len(), 8)
	for n := 0; n < doc.Len(); n++ {
		if rng.Intn(4) > 0 {
			m.Set(xmltree.NodeID(n), acl.SubjectID(rng.Intn(8)), true)
		}
	}
	pool := storage.NewBufferPool(storage.NewMemPager(4096), 512)
	ss, err := BuildSecureStore(pool, doc, m, nok.BuildOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := xmltree.NodeID(rng.Intn(doc.Len()))
		if err := ss.SetNodeAccess(n, acl.SubjectID(i%8), i%2 == 0); err != nil {
			b.Fatal(err)
		}
	}
}

func TestVacuumReclaimsDuplicates(t *testing.T) {
	doc := fig2doc(t)
	m := figure1Matrix()
	ss := buildSecure(t, doc, m, 64)
	// Removing subject 1 collapses {0,1} and {0} style entries into
	// duplicates that only Vacuum reclaims.
	if err := ss.RemoveSubject(1); err != nil {
		t.Fatal(err)
	}
	dupsBefore := ss.Codebook().Duplicates()
	if dupsBefore == 0 {
		t.Fatal("test premise: removal should create duplicates")
	}
	trBefore, err := ss.TransitionCount()
	if err != nil {
		t.Fatal(err)
	}
	if err := ss.Vacuum(); err != nil {
		t.Fatal(err)
	}
	if got := ss.Codebook().Duplicates(); got != 0 {
		t.Fatalf("duplicates after Vacuum = %d", got)
	}
	trAfter, err := ss.TransitionCount()
	if err != nil {
		t.Fatal(err)
	}
	if trAfter > trBefore {
		t.Fatalf("Vacuum increased transitions %d -> %d", trBefore, trAfter)
	}
	// Accessibility is preserved: subject 0 unchanged, old subject 2
	// is now subject 1... figure1Matrix has 2 subjects, so after removing
	// subject 1 only subject 0 remains.
	want := acl.NewMatrix(doc.Len(), 1)
	for n := 0; n < doc.Len(); n++ {
		if m.Accessible(xmltree.NodeID(n), 0) {
			want.Set(xmltree.NodeID(n), 0, true)
		}
	}
	got, err := ss.Matrix()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatal("Vacuum changed accessibility")
	}
	checkStoreRefs(t, ss)
}

func TestVacuumIdempotentOnCleanStore(t *testing.T) {
	doc := fig2doc(t)
	ss := buildSecure(t, doc, figure1Matrix(), 4096)
	before, _ := ss.TransitionCount()
	entriesBefore := ss.Codebook().Len()
	if err := ss.Vacuum(); err != nil {
		t.Fatal(err)
	}
	after, _ := ss.TransitionCount()
	if after != before || ss.Codebook().Len() != entriesBefore {
		t.Fatalf("Vacuum changed a clean store: %d->%d transitions", before, after)
	}
	checkStoreRefs(t, ss)
}

func TestReopenAfterPhysicalUpdates(t *testing.T) {
	// Region rewrites leave stale FirstNode fields inside later on-disk
	// block headers; Open must renumber from directory order + counts.
	doc := fig2doc(t)
	m := figure1Matrix()
	pool := storage.NewBufferPool(storage.NewMemPager(64), 256)
	ss, err := BuildSecureStore(pool, doc, m, nok.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	frag := xmltree.MustParseString(`<x><y/></x>`)
	fm := acl.NewMatrix(2, 2)
	fm.Set(0, 0, true)
	fm.Set(1, 0, true)
	if err := ss.InsertSubtree(0, xmltree.InvalidNode, frag, fm); err != nil {
		t.Fatal(err)
	}
	if err := ss.DeleteSubtree(5); err != nil { // some node past the insert
		t.Fatal(err)
	}
	if err := ss.SetSubtreeAccess(3, 1, true); err != nil {
		t.Fatal(err)
	}
	wantMatrix, err := ss.Matrix()
	if err != nil {
		t.Fatal(err)
	}
	meta := ss.Store().Meta()
	cbData, err := ss.Codebook().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}

	st2, err := nok.Open(pool, meta)
	if err != nil {
		t.Fatal(err)
	}
	cb2 := NewCodebook(0)
	if err := cb2.UnmarshalBinary(cbData); err != nil {
		t.Fatal(err)
	}
	ss2 := OpenSecureStore(st2, cb2)
	gotMatrix, err := ss2.Matrix()
	if err != nil {
		t.Fatal(err)
	}
	if !gotMatrix.Equal(wantMatrix) {
		t.Fatal("matrix differs after reopen following updates")
	}
	for n := xmltree.NodeID(0); int(n) < st2.NumNodes(); n++ {
		a, err1 := ss.Store().FollowingSibling(n)
		b, err2 := st2.FollowingSibling(n)
		if err1 != nil || err2 != nil || a != b {
			t.Fatalf("navigation differs at node %d after reopen", n)
		}
	}
}

// benchDoc builds a random document with realistic bounded depth (~12) for
// benchmarks; the unconstrained randomDoc drifts toward path-shaped trees
// whose depth grows linearly with size, which misrepresents join and
// navigation costs on document-shaped data.
func benchDoc(rng *rand.Rand, n int) *xmltree.Document {
	b := xmltree.NewBuilder()
	b.Begin("r")
	depth := 1
	tags := []string{"x", "y", "z"}
	for i := 1; i < n; i++ {
		for depth > 1 && (depth >= 12 || rng.Intn(3) == 0) {
			b.End()
			depth--
		}
		b.Begin(tags[rng.Intn(len(tags))])
		depth++
	}
	for ; depth > 0; depth-- {
		b.End()
	}
	return b.MustFinish()
}
