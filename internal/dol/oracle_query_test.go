package dol_test

import (
	"fmt"
	"math/rand"
	"testing"

	"dolxml/internal/acl"
	"dolxml/internal/bitset"
	"dolxml/internal/btree"
	"dolxml/internal/dol"
	"dolxml/internal/nok"
	"dolxml/internal/query"
	"dolxml/internal/storage"
	"dolxml/internal/synthacl"
	"dolxml/internal/xmark"
	"dolxml/internal/xmltree"
)

// This file holds the update-sequence oracle property: after any random
// sequence of SetRangeACL / subtree-access / insert / delete / move
// updates, the incrementally maintained store must answer the Q1–Q6
// workload — under both secure semantics and for every subject — exactly
// like a store rebuilt from scratch from an oracle copy of the document
// and its access matrix. This pins the end-to-end correctness of the
// in-place region rewrites (and their transactional wrappers): any
// divergence in renumbering, transition maintenance or codebook handling
// shows up as a differing answer set.

// oracleQueries is the paper's Table 1 workload (bench.Table1).
var oracleQueries = []string{
	"/site/regions/africa/item[location][name][quantity]",
	"/site/categories/category[name]/description/text/bold",
	"/site/categories/category/description/text/bold",
	"//parlist//parlist",
	"//listitem//keyword",
	"//item//emph",
}

// onode is a mutable oracle tree node.
type onode struct {
	tag  string
	row  *bitset.Bitset
	kids []*onode
}

func oracleFromDoc(doc *xmltree.Document, m *acl.Matrix) *onode {
	var build func(n xmltree.NodeID) *onode
	build = func(n xmltree.NodeID) *onode {
		on := &onode{tag: doc.Tag(n), row: m.Row(n).Clone()}
		for c := doc.FirstChild(n); c != xmltree.InvalidNode; c = doc.NextSibling(c) {
			on.kids = append(on.kids, build(c))
		}
		return on
	}
	return build(doc.Root())
}

// preorder lists the oracle nodes in document order, so index i is the
// node with NodeID i in the equivalent store.
func preorder(root *onode) []*onode {
	var out []*onode
	var walk func(x *onode)
	walk = func(x *onode) {
		out = append(out, x)
		for _, k := range x.kids {
			walk(k)
		}
	}
	walk(root)
	return out
}

// parentOf finds the parent of nodes[idx] and its child position.
func parentOf(root *onode, target *onode) (parent *onode, pos int) {
	var walk func(x *onode) bool
	walk = func(x *onode) bool {
		for i, k := range x.kids {
			if k == target {
				parent, pos = x, i
				return true
			}
			if walk(k) {
				return true
			}
		}
		return false
	}
	walk(root)
	return parent, pos
}

func subtreeSize(x *onode) int {
	s := 1
	for _, k := range x.kids {
		s += k.size()
	}
	return s
}

func (x *onode) size() int { return subtreeSize(x) }

func contains(root, target *onode) bool {
	if root == target {
		return true
	}
	for _, k := range root.kids {
		if contains(k, target) {
			return true
		}
	}
	return false
}

// flatten rebuilds (document, matrix) from the oracle.
func flatten(root *onode, numSubjects int) (*xmltree.Document, *acl.Matrix) {
	b := xmltree.NewBuilder()
	var rows []*bitset.Bitset
	var walk func(x *onode)
	walk = func(x *onode) {
		b.Begin(x.tag)
		rows = append(rows, x.row)
		for _, k := range x.kids {
			walk(k)
		}
		b.End()
	}
	walk(root)
	doc := b.MustFinish()
	m := acl.NewMatrix(len(rows), numSubjects)
	for i, r := range rows {
		m.SetRow(xmltree.NodeID(i), r)
	}
	return doc, m
}

// storeIndex builds the tag index the way securexml does after an update:
// from the store itself, not from any document.
func storeIndex(t *testing.T, pool *storage.BufferPool, st *nok.Store) *btree.Tree {
	t.Helper()
	idx, err := btree.New(pool)
	if err != nil {
		t.Fatal(err)
	}
	var insErr error
	err = st.ForEachExtent(func(n, end xmltree.NodeID, level int, tag int32) {
		if insErr != nil {
			return
		}
		insErr = idx.Insert(tag, btree.Posting{Node: n, End: end, Level: uint16(level)})
	})
	if err == nil {
		err = insErr
	}
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

// answers evaluates q for every subject view under both semantics plus
// unrestricted, and serializes the node IDs.
func answers(t *testing.T, ss *dol.SecureStore, idx *btree.Tree, numSubjects int) string {
	t.Helper()
	ev := query.NewEvaluator(ss.Store(), idx)
	out := ""
	for _, q := range oracleQueries {
		pt, err := query.Parse(q)
		if err != nil {
			t.Fatal(err)
		}
		run := func(opts query.Options, label string) {
			res, err := ev.Evaluate(pt, opts)
			if err != nil {
				t.Fatalf("%s %s: %v", q, label, err)
			}
			out += fmt.Sprintf("%s %s: %v\n", q, label, res.Nodes)
		}
		run(query.Options{}, "unrestricted")
		for s := 0; s < numSubjects; s++ {
			v := ss.ViewSubject(acl.SubjectID(s))
			run(query.Options{View: v, Semantics: query.SemanticsBindings}, fmt.Sprintf("s%d-bind", s))
			run(query.Options{View: v, Semantics: query.SemanticsPrunedSubtree}, fmt.Sprintf("s%d-pruned", s))
		}
	}
	return out
}

// randomFragment builds a small random fragment over the document's tags,
// with random per-node access rows.
func randomFragment(rng *rand.Rand, tags []string, numSubjects int) (*xmltree.Document, *acl.Matrix, []*onode) {
	b := xmltree.NewBuilder()
	var rows []*bitset.Bitset
	var nodes []*onode
	var build func(depth int) *onode
	build = func(depth int) *onode {
		tag := tags[rng.Intn(len(tags))]
		b.Begin(tag)
		row := bitset.New(numSubjects)
		for s := 0; s < numSubjects; s++ {
			if rng.Intn(2) == 0 {
				row.Set(s)
			}
		}
		rows = append(rows, row)
		on := &onode{tag: tag, row: row.Clone()}
		nodes = append(nodes, on)
		if depth < 2 {
			for k := 0; k < rng.Intn(3); k++ {
				on.kids = append(on.kids, build(depth+1))
			}
		}
		b.End()
		return on
	}
	root := build(0)
	doc := b.MustFinish()
	m := acl.NewMatrix(len(rows), numSubjects)
	for i, r := range rows {
		m.SetRow(xmltree.NodeID(i), r)
	}
	return doc, m, []*onode{root}
}

func TestUpdateSequenceQueryOracle(t *testing.T) {
	const numSubjects = 2
	trials := 4
	opsPerTrial := 14
	if testing.Short() {
		trials, opsPerTrial = 2, 8
	}
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(101 + trial)))
		doc := xmark.Generate(xmark.Scaled(int64(trial), 500))
		m := acl.NewMatrix(doc.Len(), numSubjects)
		for s := 0; s < numSubjects; s++ {
			accSet := synthacl.Synthetic(doc, synthacl.SynthConfig{
				Seed:                int64(trial*numSubjects + s),
				PropagationRatio:    0.3,
				AccessibilityRatio:  0.6,
				ForceRootAccessible: true,
			})
			for n := 0; n < doc.Len(); n++ {
				if accSet.Test(n) {
					m.Set(xmltree.NodeID(n), acl.SubjectID(s), true)
				}
			}
		}
		pool := storage.NewBufferPool(storage.NewMemPager(512), 256)
		ss, err := dol.BuildSecureStore(pool, doc, m, nok.BuildOptions{})
		if err != nil {
			t.Fatal(err)
		}
		root := oracleFromDoc(doc, m)
		tags := doc.Tags()

		for op := 0; op < opsPerTrial; op++ {
			nodes := preorder(root)
			size := len(nodes)
			kind := rng.Intn(5)
			switch kind {
			case 0: // SetRangeACL over an arbitrary range
				lo := rng.Intn(size)
				hi := lo + rng.Intn(size-lo)
				bit := rng.Intn(numSubjects)
				allowed := rng.Intn(2) == 0
				if err := ss.SetRangeACL(xmltree.NodeID(lo), xmltree.NodeID(hi), func(old *bitset.Bitset) *bitset.Bitset {
					nw := old.Clone()
					nw.SetTo(bit, allowed)
					return nw
				}); err != nil {
					t.Fatalf("trial %d op %d SetRangeACL[%d,%d]: %v", trial, op, lo, hi, err)
				}
				for i := lo; i <= hi; i++ {
					nodes[i].row.SetTo(bit, allowed)
				}
			case 1: // SetSubtreeAccess
				n := rng.Intn(size)
				bit := rng.Intn(numSubjects)
				allowed := rng.Intn(2) == 0
				if err := ss.SetSubtreeAccess(xmltree.NodeID(n), acl.SubjectID(bit), allowed); err != nil {
					t.Fatalf("trial %d op %d SetSubtreeAccess(%d): %v", trial, op, n, err)
				}
				for i := n; i < n+subtreeSize(nodes[n]); i++ {
					nodes[i].row.SetTo(bit, allowed)
				}
			case 2: // InsertSubtree
				p := rng.Intn(size)
				parent := nodes[p]
				after := xmltree.InvalidNode
				pos := 0
				if len(parent.kids) > 0 && rng.Intn(2) == 0 {
					pos = 1 + rng.Intn(len(parent.kids))
					sib := parent.kids[pos-1]
					for i, x := range nodes {
						if x == sib {
							after = xmltree.NodeID(i)
							break
						}
					}
				}
				frag, fm, fragRoots := randomFragment(rng, tags, numSubjects)
				if err := ss.InsertSubtree(xmltree.NodeID(p), after, frag, fm); err != nil {
					t.Fatalf("trial %d op %d InsertSubtree: %v", trial, op, err)
				}
				parent.kids = append(parent.kids[:pos], append(fragRoots, parent.kids[pos:]...)...)
			case 3: // DeleteSubtree
				if size < 20 {
					continue
				}
				n := 1 + rng.Intn(size-1)
				if err := ss.DeleteSubtree(xmltree.NodeID(n)); err != nil {
					t.Fatalf("trial %d op %d DeleteSubtree(%d): %v", trial, op, n, err)
				}
				parent, pos := parentOf(root, nodes[n])
				parent.kids = append(parent.kids[:pos], parent.kids[pos+1:]...)
			case 4: // MoveSubtree
				n := 1 + rng.Intn(size-1)
				target := nodes[n]
				var np int
				found := false
				for try := 0; try < 10; try++ {
					np = rng.Intn(size)
					if !contains(target, nodes[np]) {
						found = true
						break
					}
				}
				if !found {
					continue
				}
				if err := ss.MoveSubtree(xmltree.NodeID(n), xmltree.NodeID(np), xmltree.InvalidNode); err != nil {
					t.Fatalf("trial %d op %d MoveSubtree(%d -> %d): %v", trial, op, n, np, err)
				}
				parent, pos := parentOf(root, target)
				parent.kids = append(parent.kids[:pos], parent.kids[pos+1:]...)
				newParent := nodes[np]
				newParent.kids = append([]*onode{target}, newParent.kids...)
			}
		}

		// Rebuild from the oracle and compare the full workload.
		wantDoc, wantM := flatten(root, numSubjects)
		pool2 := storage.NewBufferPool(storage.NewMemPager(512), 256)
		ss2, err := dol.BuildSecureStore(pool2, wantDoc, wantM, nok.BuildOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if err := ss.Store().CheckConsistency(); err != nil {
			t.Fatalf("trial %d: updated store inconsistent: %v", trial, err)
		}
		got := answers(t, ss, storeIndex(t, pool, ss.Store()), numSubjects)
		want := answers(t, ss2, storeIndex(t, pool2, ss2.Store()), numSubjects)
		if got != want {
			t.Fatalf("trial %d: updated store answers diverge from rebuilt oracle\ngot:\n%s\nwant:\n%s", trial, got, want)
		}
	}
}
