package dol

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dolxml/internal/acl"
	"dolxml/internal/bitset"
	"dolxml/internal/xmltree"
)

// figure1Matrix reproduces the two-subject secured tree of Figure 1(b):
// 12 nodes a..l; left subject = 0, right subject = 1.
// Accessibility (from the figure's shading, reconstructed): the example
// below exercises the same mechanics: runs of equal ACLs with three
// distinct lists.
func figure1Matrix() *acl.Matrix {
	m := acl.NewMatrix(12, 2)
	rows := []struct {
		s0, s1 bool
	}{
		{true, true},   // a
		{true, true},   // b
		{true, false},  // c
		{true, false},  // d
		{false, false}, // e
		{false, false}, // f
		{false, false}, // g
		{true, true},   // h
		{true, true},   // i
		{true, false},  // j
		{true, false},  // k
		{true, false},  // l
	}
	for n, r := range rows {
		m.Set(xmltree.NodeID(n), 0, r.s0)
		m.Set(xmltree.NodeID(n), 1, r.s1)
	}
	return m
}

func TestFromMatrixTransitions(t *testing.T) {
	m := figure1Matrix()
	l := FromMatrix(m)
	if err := l.validate(); err != nil {
		t.Fatal(err)
	}
	// Runs: [a,b] [c,d] [e,f,g] [h,i] [j,k,l] -> 5 transitions.
	if got := l.NumTransitions(); got != 5 {
		t.Fatalf("NumTransitions = %d, want 5", got)
	}
	// Distinct ACLs: {0,1}, {0}, {} -> 3 codebook entries (paper: "only
	// three of the four possible distinct access control lists").
	if got := l.Codebook().Len(); got != 3 {
		t.Fatalf("codebook entries = %d, want 3", got)
	}
	nodes, _ := l.Transitions()
	want := []xmltree.NodeID{0, 2, 4, 7, 9}
	for i, n := range want {
		if nodes[i] != n {
			t.Fatalf("transitions at %v, want %v", nodes, want)
		}
	}
}

func TestLabelingRoundTrip(t *testing.T) {
	m := figure1Matrix()
	l := FromMatrix(m)
	if !l.Matrix().Equal(m) {
		t.Fatal("Matrix round trip mismatch")
	}
	for n := xmltree.NodeID(0); n < 12; n++ {
		for s := acl.SubjectID(0); s < 2; s++ {
			if l.Accessible(n, s) != m.Accessible(n, s) {
				t.Fatalf("Accessible(%d,%d) mismatch", n, s)
			}
		}
	}
}

func TestLabelingAccessibleAny(t *testing.T) {
	m := figure1Matrix()
	l := FromMatrix(m)
	eff := bitset.FromIndices(2, 1) // only subject 1
	if !l.AccessibleAny(0, eff) {
		t.Fatal("node a accessible to subject 1")
	}
	if l.AccessibleAny(2, eff) {
		t.Fatal("node c not accessible to subject 1")
	}
}

func TestFromAccessibleSet(t *testing.T) {
	// Figure 1(a): single subject, shaded = accessible.
	accessible := bitset.FromIndices(12, 0, 1, 7, 8, 9, 10, 11)
	l := FromAccessibleSet(accessible, 12)
	if l.Codebook().NumSubjects() != 1 {
		t.Fatal("subject dim wrong")
	}
	for n := 0; n < 12; n++ {
		if l.Accessible(xmltree.NodeID(n), 0) != accessible.Test(n) {
			t.Fatalf("node %d mismatch", n)
		}
	}
	// Runs: [0,1]+ [2..6]- [7..11]+ -> 3 transitions.
	if l.NumTransitions() != 3 {
		t.Fatalf("NumTransitions = %d, want 3", l.NumTransitions())
	}
}

func TestStreamBuilderSharedCodebook(t *testing.T) {
	cb := NewCodebook(2)
	sb1 := NewStreamBuilder(cb)
	sb2 := NewStreamBuilder(cb)
	a := bitset.FromIndices(2, 0)
	for i := 0; i < 5; i++ {
		sb1.Append(a)
		sb2.Append(a)
	}
	l1, l2 := sb1.Finish(), sb2.Finish()
	if cb.Len() != 1 {
		t.Fatalf("shared codebook entries = %d, want 1", cb.Len())
	}
	if l1.NumTransitions() != 1 || l2.NumTransitions() != 1 {
		t.Fatal("transition counts wrong")
	}
}

func TestSetNodeAccessProposition1(t *testing.T) {
	m := figure1Matrix()
	l := FromMatrix(m)
	before := l.NumTransitions()
	// Grant subject 1 access to node e (index 4), splitting the [e,f,g] run.
	l.SetNodeAccess(4, 1, true)
	if err := l.validate(); err != nil {
		t.Fatal(err)
	}
	if got := l.NumTransitions(); got > before+2 {
		t.Fatalf("Proposition 1 violated: %d -> %d", before, got)
	}
	want := m
	want.Set(4, 1, true)
	if !l.Matrix().Equal(want) {
		t.Fatal("matrix mismatch after SetNodeAccess")
	}
}

func TestSetNodeAccessNoOp(t *testing.T) {
	m := figure1Matrix()
	l := FromMatrix(m)
	before := l.NumTransitions()
	l.SetNodeAccess(0, 0, true) // already accessible
	if l.NumTransitions() != before {
		t.Fatal("no-op update changed transitions")
	}
	if !l.Matrix().Equal(m) {
		t.Fatal("no-op update changed matrix")
	}
}

func TestSetRangeAccessMergesRuns(t *testing.T) {
	m := figure1Matrix()
	l := FromMatrix(m)
	// Make nodes c,d match a,b: revoke nothing, grant subject 1 on [2,3].
	l.SetRangeAccess(2, 3, 1, true)
	if err := l.validate(); err != nil {
		t.Fatal(err)
	}
	// Runs now: [a..d] [e,f,g] [h,i] [j,k,l] -> 4 transitions.
	if got := l.NumTransitions(); got != 4 {
		t.Fatalf("NumTransitions = %d, want 4", got)
	}
}

func TestSetRangeAccessWholeDocument(t *testing.T) {
	m := figure1Matrix()
	l := FromMatrix(m)
	l.SetRangeACL(0, 11, func(*bitset.Bitset) *bitset.Bitset {
		return bitset.FromIndices(2, 0, 1)
	})
	if err := l.validate(); err != nil {
		t.Fatal(err)
	}
	if l.NumTransitions() != 1 {
		t.Fatalf("uniform document should have 1 transition, got %d", l.NumTransitions())
	}
	for n := xmltree.NodeID(0); n < 12; n++ {
		if !l.Accessible(n, 0) || !l.Accessible(n, 1) {
			t.Fatal("grant-all failed")
		}
	}
}

func TestInsertRange(t *testing.T) {
	m := figure1Matrix()
	l := FromMatrix(m)
	// Fragment of 3 nodes, all accessible to subject 0 only.
	fm := acl.NewMatrix(3, 2)
	for n := 0; n < 3; n++ {
		fm.Set(xmltree.NodeID(n), 0, true)
	}
	frag := FromMatrix(fm)
	beforeL, beforeF := l.NumTransitions(), frag.NumTransitions()
	l.InsertRange(4, frag) // before old node e
	if err := l.validate(); err != nil {
		t.Fatal(err)
	}
	if l.NumNodes() != 15 {
		t.Fatalf("NumNodes = %d", l.NumNodes())
	}
	if got := l.NumTransitions(); got > beforeL+beforeF+2 {
		t.Fatalf("insert transition growth: %d -> %d", beforeL, got)
	}
	// Expected matrix: rows 0..3 unchanged, 4..6 = fragment, 7.. = old 4...
	want := acl.NewMatrix(15, 2)
	for n := 0; n < 4; n++ {
		want.SetRow(xmltree.NodeID(n), m.Row(xmltree.NodeID(n)))
	}
	for n := 0; n < 3; n++ {
		want.SetRow(xmltree.NodeID(4+n), fm.Row(xmltree.NodeID(n)))
	}
	for n := 4; n < 12; n++ {
		want.SetRow(xmltree.NodeID(3+n), m.Row(xmltree.NodeID(n)))
	}
	if !l.Matrix().Equal(want) {
		t.Fatal("matrix mismatch after InsertRange")
	}
}

func TestInsertRangeAtEnds(t *testing.T) {
	m := figure1Matrix()
	fm := acl.NewMatrix(2, 2)
	fm.Set(0, 1, true)
	fm.Set(1, 1, true)

	head := FromMatrix(m)
	head.InsertRange(0, FromMatrix(fm))
	if err := head.validate(); err != nil {
		t.Fatal(err)
	}
	if !head.Accessible(0, 1) || head.Accessible(0, 0) {
		t.Fatal("prefix insert ACL wrong")
	}
	if head.Accessible(2, 1) != figure1Matrix().Accessible(0, 1) {
		t.Fatal("shifted node ACL wrong")
	}

	tail := FromMatrix(m)
	tail.InsertRange(12, FromMatrix(fm))
	if err := tail.validate(); err != nil {
		t.Fatal(err)
	}
	if tail.NumNodes() != 14 || !tail.Accessible(13, 1) {
		t.Fatal("suffix insert wrong")
	}
}

func TestDeleteRange(t *testing.T) {
	m := figure1Matrix()
	l := FromMatrix(m)
	l.DeleteRange(4, 6) // remove the e,f,g run entirely
	if err := l.validate(); err != nil {
		t.Fatal(err)
	}
	if l.NumNodes() != 9 {
		t.Fatalf("NumNodes = %d", l.NumNodes())
	}
	want := acl.NewMatrix(9, 2)
	for n := 0; n < 4; n++ {
		want.SetRow(xmltree.NodeID(n), m.Row(xmltree.NodeID(n)))
	}
	for n := 7; n < 12; n++ {
		want.SetRow(xmltree.NodeID(n-3), m.Row(xmltree.NodeID(n)))
	}
	if !l.Matrix().Equal(want) {
		t.Fatal("matrix mismatch after DeleteRange")
	}
}

func TestDeleteRangePrefixAndAll(t *testing.T) {
	m := figure1Matrix()
	l := FromMatrix(m)
	l.DeleteRange(0, 3)
	if err := l.validate(); err != nil {
		t.Fatal(err)
	}
	if l.NumNodes() != 8 || l.Accessible(0, 0) {
		t.Fatal("prefix delete wrong")
	}

	l2 := FromMatrix(figure1Matrix())
	l2.DeleteRange(0, 11)
	if l2.NumNodes() != 0 || l2.NumTransitions() != 0 {
		t.Fatal("full delete should empty the labeling")
	}
}

func TestCloneIndependence(t *testing.T) {
	l := FromMatrix(figure1Matrix())
	c := l.Clone()
	c.SetNodeAccess(5, 0, true)
	if l.Accessible(5, 0) {
		t.Fatal("Clone shares state")
	}
}

// checkRefs verifies the labeling's codebook refcounts equal its
// transition counts per code.
func checkRefs(t *testing.T, l *Labeling) {
	t.Helper()
	counts := map[Code]int{}
	_, codes := l.Transitions()
	for _, c := range codes {
		counts[c]++
	}
	for c, want := range counts {
		if got := l.cb.Refs(c); got != want {
			t.Fatalf("code %d refs = %d, want %d", c, got, want)
		}
	}
	if l.cb.Len() != len(counts) {
		t.Fatalf("codebook has %d live entries, labeling uses %d", l.cb.Len(), len(counts))
	}
}

// Property: random single-node and range updates keep the labeling
// equivalent to a shadow matrix, respect Proposition 1, and keep refcounts
// exact.
func TestLabelingUpdateProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		numNodes := 1 + rng.Intn(80)
		numSubjects := 1 + rng.Intn(5)
		shadow := acl.NewMatrix(numNodes, numSubjects)
		for n := 0; n < numNodes; n++ {
			for s := 0; s < numSubjects; s++ {
				if rng.Intn(3) == 0 {
					shadow.Set(xmltree.NodeID(n), acl.SubjectID(s), true)
				}
			}
		}
		l := FromMatrix(shadow)
		for step := 0; step < 30; step++ {
			s := acl.SubjectID(rng.Intn(numSubjects))
			allowed := rng.Intn(2) == 1
			lo := xmltree.NodeID(rng.Intn(numNodes))
			hi := lo
			if rng.Intn(2) == 1 {
				hi = lo + xmltree.NodeID(rng.Intn(numNodes-int(lo)))
			}
			before := l.NumTransitions()
			l.SetRangeAccess(lo, hi, s, allowed)
			for n := lo; n <= hi; n++ {
				shadow.Set(n, s, allowed)
			}
			if l.NumTransitions() > before+2 {
				return false
			}
			if err := l.validate(); err != nil {
				return false
			}
		}
		return l.Matrix().Equal(shadow)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: random structural splices (insert/delete) keep the labeling
// equivalent to a shadow row list.
func TestLabelingStructuralProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		numSubjects := 1 + rng.Intn(4)
		randRow := func() *bitset.Bitset {
			b := bitset.New(numSubjects)
			for s := 0; s < numSubjects; s++ {
				if rng.Intn(2) == 1 {
					b.Set(s)
				}
			}
			return b
		}
		var shadow []*bitset.Bitset
		n0 := 1 + rng.Intn(40)
		m := acl.NewMatrix(n0, numSubjects)
		for n := 0; n < n0; n++ {
			r := randRow()
			m.SetRow(xmltree.NodeID(n), r)
			shadow = append(shadow, r)
		}
		l := FromMatrix(m)
		for step := 0; step < 20; step++ {
			if len(shadow) == 0 || (rng.Intn(2) == 0 && len(shadow) < 200) {
				// Insert a fragment.
				fn := 1 + rng.Intn(10)
				fm := acl.NewMatrix(fn, numSubjects)
				var rows []*bitset.Bitset
				for k := 0; k < fn; k++ {
					r := randRow()
					fm.SetRow(xmltree.NodeID(k), r)
					rows = append(rows, r)
				}
				at := rng.Intn(len(shadow) + 1)
				l.InsertRange(xmltree.NodeID(at), FromMatrix(fm))
				shadow = append(shadow[:at], append(rows, shadow[at:]...)...)
			} else {
				lo := rng.Intn(len(shadow))
				hi := lo + rng.Intn(len(shadow)-lo)
				l.DeleteRange(xmltree.NodeID(lo), xmltree.NodeID(hi))
				shadow = append(shadow[:lo], shadow[hi+1:]...)
			}
			if err := l.validate(); err != nil {
				return false
			}
			if l.NumNodes() != len(shadow) {
				return false
			}
		}
		for n, r := range shadow {
			if !l.ACLAt(xmltree.NodeID(n)).EqualBits(r) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: refcounts stay exact across mixed updates.
func TestLabelingRefcountProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		numNodes := 5 + rng.Intn(50)
		m := acl.NewMatrix(numNodes, 3)
		for n := 0; n < numNodes; n++ {
			for s := 0; s < 3; s++ {
				if rng.Intn(2) == 0 {
					m.Set(xmltree.NodeID(n), acl.SubjectID(s), true)
				}
			}
		}
		l := FromMatrix(m)
		for step := 0; step < 25 && l.NumNodes() > 0; step++ {
			lo := xmltree.NodeID(rng.Intn(l.NumNodes()))
			hi := lo + xmltree.NodeID(rng.Intn(l.NumNodes()-int(lo)))
			switch rng.Intn(3) {
			case 0:
				l.SetRangeAccess(lo, hi, acl.SubjectID(rng.Intn(3)), rng.Intn(2) == 1)
			case 1:
				l.DeleteRange(lo, hi)
			case 2:
				fm := acl.NewMatrix(1+rng.Intn(5), 3)
				l.InsertRange(lo, FromMatrix(fm))
			}
		}
		counts := map[Code]int{}
		_, codes := l.Transitions()
		for _, c := range codes {
			counts[c]++
		}
		if l.cb.Len() != len(counts) {
			return false
		}
		for c, want := range counts {
			if l.cb.Refs(c) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestCheckRefsAfterBasicOps(t *testing.T) {
	l := FromMatrix(figure1Matrix())
	checkRefs(t, l)
	l.SetNodeAccess(4, 1, true)
	checkRefs(t, l)
	l.SetRangeAccess(0, 11, 0, false)
	checkRefs(t, l)
	l.DeleteRange(2, 5)
	checkRefs(t, l)
}

func BenchmarkFromMatrix(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := acl.NewMatrix(100000, 16)
	cur := bitset.New(16)
	for n := 0; n < 100000; n++ {
		if rng.Intn(50) == 0 {
			cur = bitset.New(16)
			for s := 0; s < 16; s++ {
				if rng.Intn(2) == 1 {
					cur.Set(s)
				}
			}
		}
		m.SetRow(xmltree.NodeID(n), cur)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FromMatrix(m)
	}
}

func BenchmarkAccessLookup(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := acl.NewMatrix(100000, 16)
	for n := 0; n < 100000; n++ {
		if rng.Intn(10) == 0 {
			m.Set(xmltree.NodeID(n), acl.SubjectID(rng.Intn(16)), true)
		}
	}
	l := FromMatrix(m)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Accessible(xmltree.NodeID(i%100000), acl.SubjectID(i%16))
	}
}

func TestLabelingMarshalRoundTrip(t *testing.T) {
	l := FromMatrix(figure1Matrix())
	data, err := l.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var re Labeling
	if err := re.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if re.NumNodes() != l.NumNodes() || re.NumTransitions() != l.NumTransitions() {
		t.Fatalf("dims differ: %d/%d vs %d/%d", re.NumNodes(), re.NumTransitions(), l.NumNodes(), l.NumTransitions())
	}
	if !re.Matrix().Equal(l.Matrix()) {
		t.Fatal("matrix differs after round trip")
	}
}

func TestLabelingUnmarshalErrors(t *testing.T) {
	var l Labeling
	if err := l.UnmarshalBinary(nil); err == nil {
		t.Fatal("empty input should fail")
	}
	if err := l.UnmarshalBinary([]byte{10, 200}); err == nil {
		t.Fatal("truncated input should fail")
	}
	// Valid labeling, then corrupt a code reference.
	src := FromMatrix(figure1Matrix())
	data, _ := src.MarshalBinary()
	data[len(data)-1] = 0xF7 // last code varint -> dead code
	if err := l.UnmarshalBinary(data); err == nil {
		t.Fatal("dead code reference should fail")
	}
}

// Property: marshal/unmarshal is the identity on random labelings.
func TestLabelingMarshalProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		numNodes := 1 + rng.Intn(100)
		numSubjects := 1 + rng.Intn(6)
		m := acl.NewMatrix(numNodes, numSubjects)
		for n := 0; n < numNodes; n++ {
			for s := 0; s < numSubjects; s++ {
				if rng.Intn(3) == 0 {
					m.Set(xmltree.NodeID(n), acl.SubjectID(s), true)
				}
			}
		}
		l := FromMatrix(m)
		data, err := l.MarshalBinary()
		if err != nil {
			return false
		}
		var re Labeling
		if err := re.UnmarshalBinary(data); err != nil {
			return false
		}
		return re.Matrix().Equal(m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
