package dol

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dolxml/internal/acl"
	"dolxml/internal/bitset"
)

func TestCodebookInternDedup(t *testing.T) {
	cb := NewCodebook(4)
	a := bitset.FromIndices(4, 0, 2)
	b := bitset.FromIndices(4, 0, 2)
	c := bitset.FromIndices(4, 1)
	ca := cb.Intern(a)
	if got := cb.Intern(b); got != ca {
		t.Fatalf("equal ACLs got different codes %d vs %d", got, ca)
	}
	cc := cb.Intern(c)
	if cc == ca {
		t.Fatal("distinct ACLs share a code")
	}
	if cb.Len() != 2 {
		t.Fatalf("Len = %d, want 2", cb.Len())
	}
}

func TestCodebookInternCopies(t *testing.T) {
	cb := NewCodebook(4)
	a := bitset.FromIndices(4, 0)
	c := cb.Intern(a)
	a.Set(3) // mutate caller's bitset
	if cb.ACL(c).Test(3) {
		t.Fatal("codebook aliases caller's bitset")
	}
}

func TestCodebookAccessible(t *testing.T) {
	cb := NewCodebook(8)
	c := cb.Intern(bitset.FromIndices(8, 1, 5))
	if !cb.Accessible(c, 1) || !cb.Accessible(c, 5) || cb.Accessible(c, 0) {
		t.Fatal("Accessible wrong")
	}
	eff := bitset.FromIndices(8, 0, 5)
	if !cb.AccessibleAny(c, eff) {
		t.Fatal("AccessibleAny should see subject 5")
	}
	if cb.AccessibleAny(c, bitset.FromIndices(8, 0, 2)) {
		t.Fatal("AccessibleAny false positive")
	}
}

func TestCodebookRefCountingAndReuse(t *testing.T) {
	cb := NewCodebook(2)
	c0 := cb.Intern(bitset.FromIndices(2, 0))
	cb.Retain(c0)
	cb.Retain(c0)
	if cb.Refs(c0) != 2 {
		t.Fatalf("Refs = %d", cb.Refs(c0))
	}
	cb.Release(c0)
	if cb.Len() != 1 {
		t.Fatal("entry freed too early")
	}
	cb.Release(c0)
	if cb.Len() != 0 {
		t.Fatal("entry not freed at zero refs")
	}
	// Freed code is reused.
	c1 := cb.Intern(bitset.FromIndices(2, 1))
	if c1 != c0 {
		t.Fatalf("freed code not reused: got %d, want %d", c1, c0)
	}
	// Re-interning the freed ACL makes a fresh entry.
	c2 := cb.Intern(bitset.FromIndices(2, 0))
	if c2 == c1 {
		t.Fatal("distinct ACLs share a code after reuse")
	}
}

func TestCodebookReleasePanics(t *testing.T) {
	cb := NewCodebook(2)
	c := cb.Intern(bitset.New(2))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	cb.Release(c) // never retained
}

func TestCodebookACLDeadPanics(t *testing.T) {
	cb := NewCodebook(2)
	c := cb.Intern(bitset.New(2))
	cb.Retain(c)
	cb.Release(c)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	cb.ACL(c)
}

func TestCodebookBytes(t *testing.T) {
	cb := NewCodebook(8639) // LiveLink subject count
	for i := 0; i < 10; i++ {
		c := cb.Intern(bitset.FromIndices(8639, i))
		cb.Retain(c)
	}
	want := 10 * ((8639 + 7) / 8)
	if got := cb.Bytes(); got != want {
		t.Fatalf("Bytes = %d, want %d", got, want)
	}
}

func TestAddSubject(t *testing.T) {
	cb := NewCodebook(2)
	c := cb.Intern(bitset.FromIndices(2, 0))
	cb.Retain(c)
	s := cb.AddSubject()
	if s != 2 || cb.NumSubjects() != 3 {
		t.Fatalf("AddSubject -> %d, subjects %d", s, cb.NumSubjects())
	}
	if cb.Accessible(c, s) {
		t.Fatal("new subject should have no access")
	}
	// Existing code still resolvable by its (unchanged) key.
	if got := cb.Intern(bitset.FromIndices(3, 0)); got != c {
		t.Fatalf("key changed after AddSubject: %d vs %d", got, c)
	}
}

func TestAddSubjectLike(t *testing.T) {
	cb := NewCodebook(2)
	cGrant := cb.Intern(bitset.FromIndices(2, 0))
	cDeny := cb.Intern(bitset.FromIndices(2, 1))
	cb.Retain(cGrant)
	cb.Retain(cDeny)
	s, err := cb.AddSubjectLike(0)
	if err != nil {
		t.Fatal(err)
	}
	if !cb.Accessible(cGrant, s) {
		t.Fatal("clone should inherit subject 0's grants")
	}
	if cb.Accessible(cDeny, s) {
		t.Fatal("clone should inherit subject 0's denials")
	}
	// Index must be consistent: interning the updated ACL finds the code.
	if got := cb.Intern(bitset.FromIndices(3, 0, 2)); got != cGrant {
		t.Fatalf("index stale after AddSubjectLike: %d vs %d", got, cGrant)
	}
	if _, err := cb.AddSubjectLike(99); err == nil {
		t.Fatal("out of range subject should fail")
	}
}

func TestRemoveSubject(t *testing.T) {
	cb := NewCodebook(3)
	cA := cb.Intern(bitset.FromIndices(3, 0, 1))
	cB := cb.Intern(bitset.FromIndices(3, 0, 2))
	cb.Retain(cA)
	cb.Retain(cB)
	// Removing subject 1 collapses both to {0, (old 2 -> new 1)}... cA
	// becomes {0}, cB becomes {0,1}.
	if err := cb.RemoveSubject(1); err != nil {
		t.Fatal(err)
	}
	if cb.NumSubjects() != 2 {
		t.Fatalf("NumSubjects = %d", cb.NumSubjects())
	}
	if !cb.Accessible(cA, 0) || cb.Accessible(cA, 1) {
		t.Fatal("cA wrong after removal")
	}
	if !cb.Accessible(cB, 0) || !cb.Accessible(cB, 1) {
		t.Fatal("cB wrong after removal (old subject 2 should shift to 1)")
	}
	if err := cb.RemoveSubject(5); err == nil {
		t.Fatal("out of range removal should fail")
	}
}

func TestRemoveSubjectDuplicates(t *testing.T) {
	cb := NewCodebook(2)
	cA := cb.Intern(bitset.FromIndices(2, 0))
	cB := cb.Intern(bitset.FromIndices(2, 0, 1))
	cb.Retain(cA)
	cb.Retain(cB)
	if cb.Duplicates() != 0 {
		t.Fatal("unexpected duplicates")
	}
	if err := cb.RemoveSubject(1); err != nil {
		t.Fatal(err)
	}
	// Both entries are now {0}: duplicates appear, kept lazily.
	if cb.Duplicates() != 1 {
		t.Fatalf("Duplicates = %d, want 1", cb.Duplicates())
	}
	// Both codes still resolve correctly.
	if !cb.Accessible(cA, 0) || !cb.Accessible(cB, 0) {
		t.Fatal("codes broken after collapse")
	}
	// New interns of the collapsed ACL reuse one canonical code.
	got := cb.Intern(bitset.FromIndices(1, 0))
	if got != cA && got != cB {
		t.Fatalf("intern after collapse returned fresh code %d", got)
	}
}

func TestCodebookMarshalRoundTrip(t *testing.T) {
	cb := NewCodebook(5)
	c0 := cb.Intern(bitset.FromIndices(5, 0, 4))
	cb.Retain(c0)
	cb.Retain(c0)
	c1 := cb.Intern(bitset.FromIndices(5, 2))
	cb.Retain(c1)
	// Free one to exercise nil-slot serialization.
	c2 := cb.Intern(bitset.FromIndices(5, 3))
	cb.Retain(c2)
	cb.Release(c2)

	data, err := cb.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got Codebook
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if got.NumSubjects() != 5 || got.Len() != cb.Len() {
		t.Fatalf("dims: %d subjects, %d entries", got.NumSubjects(), got.Len())
	}
	if got.Refs(c0) != 2 || got.Refs(c1) != 1 {
		t.Fatalf("refs lost: %d, %d", got.Refs(c0), got.Refs(c1))
	}
	if !got.ACL(c0).EqualBits(cb.ACL(c0)) {
		t.Fatal("ACL bits lost")
	}
	// Freed slot must be reusable after round trip.
	c3 := got.Intern(bitset.FromIndices(5, 1))
	if c3 != c2 {
		t.Fatalf("free list lost: got %d, want %d", c3, c2)
	}
}

func TestCodebookUnmarshalErrors(t *testing.T) {
	var cb Codebook
	if err := cb.UnmarshalBinary(nil); err == nil {
		t.Fatal("empty input should fail")
	}
	if err := cb.UnmarshalBinary([]byte{5}); err == nil {
		t.Fatal("truncated input should fail")
	}
}

// Property: a codebook behaves as a content-addressed dictionary — under
// random interleavings of Intern/Retain/Release, live codes always decode
// to the ACL they were interned with, and Len matches a shadow model.
func TestCodebookModelProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cb := NewCodebook(6)
		type live struct {
			code Code
			key  string
			refs int
		}
		var lives []live
		for step := 0; step < 200; step++ {
			switch rng.Intn(3) {
			case 0: // intern + retain
				a := bitset.New(6)
				for i := 0; i < 6; i++ {
					if rng.Intn(2) == 1 {
						a.Set(i)
					}
				}
				c := cb.Intern(a)
				cb.Retain(c)
				found := false
				for i := range lives {
					if lives[i].code == c {
						if lives[i].key != a.Key() {
							return false
						}
						lives[i].refs++
						found = true
					}
				}
				if !found {
					lives = append(lives, live{c, a.Key(), 1})
				}
			case 1: // release a random live code
				if len(lives) == 0 {
					continue
				}
				i := rng.Intn(len(lives))
				cb.Release(lives[i].code)
				lives[i].refs--
				if lives[i].refs == 0 {
					lives = append(lives[:i], lives[i+1:]...)
				}
			case 2: // verify a random live code
				if len(lives) == 0 {
					continue
				}
				i := rng.Intn(len(lives))
				if cb.ACL(lives[i].code).Key() != lives[i].key {
					return false
				}
			}
		}
		return cb.Len() == len(lives)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCodeTypeMatchesACLSubjectID(t *testing.T) {
	// Compile-time-ish sanity that codebook subject indexing matches
	// acl.SubjectID semantics.
	cb := NewCodebook(3)
	c := cb.Intern(bitset.FromIndices(3, 2))
	var s acl.SubjectID = 2
	if !cb.Accessible(c, s) {
		t.Fatal("SubjectID indexing mismatch")
	}
}
