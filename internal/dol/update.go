package dol

import (
	"fmt"

	"dolxml/internal/acl"
	"dolxml/internal/bitset"
	"dolxml/internal/nok"
	"dolxml/internal/xmltree"
)

// This file implements the update operations of paper §3.4 on the physical
// representation: accessibility updates (single node and whole subtree) and
// structural updates (insert, delete, move of a subtree), plus subject
// addition/removal, which are codebook-only operations.
//
// All updates share a common mechanism: decode the affected block region,
// edit the per-node access codes and/or splice entries, re-normalize
// transition flags, and rewrite just that region (update locality). Block
// headers before and after the region are untouched; block-local
// decodability guarantees nodes outside the region keep their rights.

// SetNodeAccess grants or revokes subject s on the single node n. Cost: the
// page read(s) of n's block region plus the corresponding writes, as in the
// paper's analysis.
func (ss *SecureStore) SetNodeAccess(n xmltree.NodeID, s acl.SubjectID, allowed bool) error {
	return ss.SetRangeACL(n, n, func(old *bitset.Bitset) *bitset.Bitset {
		nw := old.Clone()
		nw.SetTo(int(s), allowed)
		return nw
	})
}

// SetSubtreeAccess grants or revokes subject s on the whole subtree rooted
// at root. The paper's cost analysis applies: the subtree's nodes are
// clustered on ~N/B consecutive pages, each read and written once.
func (ss *SecureStore) SetSubtreeAccess(root xmltree.NodeID, s acl.SubjectID, allowed bool) error {
	end, err := ss.store.SubtreeEnd(root)
	if err != nil {
		return err
	}
	return ss.SetRangeACL(root, end, func(old *bitset.Bitset) *bitset.Bitset {
		nw := old.Clone()
		nw.SetTo(int(s), allowed)
		return nw
	})
}

// SetRangeACL applies f to the ACL of every node in [lo, hi] and rewrites
// the affected blocks. On a write-ahead-logged pager the rewrite is one
// atomic batch: a crash leaves either the old or the new region on disk.
func (ss *SecureStore) SetRangeACL(lo, hi xmltree.NodeID, f func(*bitset.Bitset) *bitset.Bitset) error {
	return ss.store.WithTxn(func() error { return ss.setRangeACL(lo, hi, f) })
}

func (ss *SecureStore) setRangeACL(lo, hi xmltree.NodeID, f func(*bitset.Bitset) *bitset.Bitset) error {
	st := ss.store
	if !st.Valid(lo) || !st.Valid(hi) || hi < lo {
		return fmt.Errorf("dol: invalid range [%d,%d]", lo, hi)
	}
	i, j := st.PageIndexOf(lo), st.PageIndexOf(hi)
	entries, codes, oldCodes, startLevel, err := ss.readRegion(i, j)
	if err != nil {
		return err
	}
	firstNode := st.PageInfoAt(i).FirstNode
	for k := range entries {
		n := firstNode + xmltree.NodeID(k)
		if n >= lo && n <= hi {
			codes[k] = ss.cb.Intern(f(ss.cb.ACL(codes[k])))
		}
	}
	normalizeFlags(entries, codes)

	nblocks, err := st.RewriteRegion(i, j, entries, startLevel, codes[0])
	if err != nil {
		return err
	}
	ss.swapRefs(i, nblocks, firstNode, entries, oldCodes)
	return nil
}

// DeleteSubtree removes the subtree rooted at n from the document. Node IDs
// above the removed range shift down. Deleting the root is rejected (the
// store cannot represent an empty document).
func (ss *SecureStore) DeleteSubtree(n xmltree.NodeID) error {
	return ss.store.WithTxn(func() error { return ss.deleteSubtree(n) })
}

func (ss *SecureStore) deleteSubtree(n xmltree.NodeID) error {
	st := ss.store
	if !st.Valid(n) {
		return fmt.Errorf("dol: invalid node %d", n)
	}
	if n == 0 {
		return fmt.Errorf("dol: cannot delete the document root")
	}
	end, err := st.SubtreeEnd(n)
	if err != nil {
		return err
	}
	prev := n - 1
	i, j := st.PageIndexOf(prev), st.PageIndexOf(end)
	entries, codes, oldCodes, startLevel, err := ss.readRegion(i, j)
	if err != nil {
		return err
	}
	firstNode := st.PageInfoAt(i).FirstNode
	localPrev := int(prev - firstNode)
	localN := int(n - firstNode)
	localEnd := int(end - firstNode)

	// Closes belonging to ancestors of n that were attached to the
	// subtree's last entry move to the preceding node.
	size := localEnd - localN + 1
	sum := 0
	for k := localN; k <= localEnd; k++ {
		sum += entries[k].CloseCount
	}
	external := sum - size
	entries[localPrev].CloseCount += external

	newEntries := append(append([]nok.Entry{}, entries[:localN]...), entries[localEnd+1:]...)
	newCodes := append(append([]Code{}, codes[:localN]...), codes[localEnd+1:]...)
	normalizeFlags(newEntries, newCodes)

	nblocks, err := st.RewriteRegion(i, j, newEntries, startLevel, newCodes[0])
	if err != nil {
		return err
	}
	ss.swapRefs(i, nblocks, firstNode, newEntries, oldCodes)
	if vs := st.Values(); vs != nil {
		vs.DeleteRange(n, end)
	}
	return nil
}

// InsertSubtree inserts the fragment document frag (with per-node access
// controls fragMatrix, whose subject dimension must match the codebook's)
// as a new child of parent. When after is InvalidNode the fragment becomes
// the first child; otherwise it is inserted immediately after the existing
// child `after`. The fragment root receives node ID prev+1 where prev is
// the node preceding the insertion point; later node IDs shift up.
func (ss *SecureStore) InsertSubtree(parent, after xmltree.NodeID, frag *xmltree.Document, fragMatrix *acl.Matrix) error {
	return ss.store.WithTxn(func() error { return ss.insertSubtree(parent, after, frag, fragMatrix) })
}

func (ss *SecureStore) insertSubtree(parent, after xmltree.NodeID, frag *xmltree.Document, fragMatrix *acl.Matrix) error {
	st := ss.store
	if !st.Valid(parent) {
		return fmt.Errorf("dol: invalid parent %d", parent)
	}
	if frag.Len() == 0 {
		return fmt.Errorf("dol: empty fragment")
	}
	if fragMatrix.NumNodes() != frag.Len() {
		return fmt.Errorf("dol: fragment matrix covers %d nodes, fragment has %d", fragMatrix.NumNodes(), frag.Len())
	}
	parentLevel, err := st.Level(parent)
	if err != nil {
		return err
	}
	prev := parent
	if after != xmltree.InvalidNode {
		if !st.Valid(after) {
			return fmt.Errorf("dol: invalid sibling %d", after)
		}
		prev, err = st.SubtreeEnd(after)
		if err != nil {
			return err
		}
	}
	i := st.PageIndexOf(prev)
	entries, codes, oldCodes, startLevel, err := ss.readRegion(i, i)
	if err != nil {
		return err
	}
	firstNode := st.PageInfoAt(i).FirstNode
	localPrev := int(prev - firstNode)
	prevLevel := startLevel
	{
		lvl := startLevel
		for k := 0; k < localPrev; k++ {
			lvl = lvl + 1 - entries[k].CloseCount
		}
		prevLevel = lvl
	}
	// Closes at prev that close parent or its ancestors transfer to the
	// fragment's last node, which now ends those subtrees.
	transferred := entries[localPrev].CloseCount - (prevLevel - parentLevel)
	if transferred < 0 {
		return fmt.Errorf("dol: node %d is not in parent %d's subtree scope", prev, parent)
	}
	entries[localPrev].CloseCount -= transferred

	// Fragment entries and codes.
	fragEntries := make([]nok.Entry, frag.Len())
	fragCodes := make([]Code, frag.Len())
	for k := 0; k < frag.Len(); k++ {
		fn := xmltree.NodeID(k)
		fragEntries[k] = nok.Entry{
			Tag:        st.InternTag(frag.Tag(fn)),
			CloseCount: frag.CloseCount(fn),
		}
		fragCodes[k] = ss.cb.Intern(fragMatrix.Row(fn))
	}
	fragEntries[len(fragEntries)-1].CloseCount += transferred

	localAt := localPrev + 1
	newEntries := make([]nok.Entry, 0, len(entries)+len(fragEntries))
	newEntries = append(newEntries, entries[:localAt]...)
	newEntries = append(newEntries, fragEntries...)
	newEntries = append(newEntries, entries[localAt:]...)
	newCodes := make([]Code, 0, len(codes)+len(fragCodes))
	newCodes = append(newCodes, codes[:localAt]...)
	newCodes = append(newCodes, fragCodes...)
	newCodes = append(newCodes, codes[localAt:]...)
	normalizeFlags(newEntries, newCodes)

	nblocks, err := st.RewriteRegion(i, i, newEntries, startLevel, newCodes[0])
	if err != nil {
		return err
	}
	ss.swapRefs(i, nblocks, firstNode, newEntries, oldCodes)
	if vs := st.Values(); vs != nil {
		if err := vs.InsertValues(prev+1, frag.Len(), frag.Value); err != nil {
			return err
		}
	}
	return nil
}

// MoveSubtree relocates the subtree rooted at n to become a child of
// newParent (after sibling `after`, or first child when after is
// InvalidNode), preserving the subtree's access controls and values. The
// destination must not lie inside the moved subtree. The delete and the
// re-insert join one batch on a write-ahead-logged pager, so a crash never
// exposes the intermediate deleted-but-not-reinserted document.
func (ss *SecureStore) MoveSubtree(n, newParent, after xmltree.NodeID) error {
	return ss.store.WithTxn(func() error { return ss.moveSubtree(n, newParent, after) })
}

func (ss *SecureStore) moveSubtree(n, newParent, after xmltree.NodeID) error {
	st := ss.store
	if !st.Valid(n) || n == 0 {
		return fmt.Errorf("dol: cannot move node %d", n)
	}
	end, err := st.SubtreeEnd(n)
	if err != nil {
		return err
	}
	if newParent >= n && newParent <= end {
		return fmt.Errorf("dol: destination %d lies inside the moved subtree [%d,%d]", newParent, n, end)
	}
	if after != xmltree.InvalidNode && after >= n && after <= end {
		return fmt.Errorf("dol: sibling %d lies inside the moved subtree", after)
	}

	// Extract the fragment: structure, ACLs and values.
	frag, fragMatrix, fragValues, err := ss.extractSubtree(n, end)
	if err != nil {
		return err
	}
	if err := ss.DeleteSubtree(n); err != nil {
		return err
	}
	// Adjust destination coordinates for the removed range.
	shift := end - n + 1
	if newParent > end {
		newParent -= shift
	}
	if after != xmltree.InvalidNode && after > end {
		after -= shift
	}
	if err := ss.InsertSubtree(newParent, after, frag, fragMatrix); err != nil {
		return err
	}
	// Restore values (InsertSubtree stored frag.Value, which extractSubtree
	// populated from fragValues via the builder, so nothing more to do).
	_ = fragValues
	return nil
}

// extractSubtree materializes the subtree [n, end] as a standalone document
// plus its accessibility matrix and values.
func (ss *SecureStore) extractSubtree(n, end xmltree.NodeID) (*xmltree.Document, *acl.Matrix, []string, error) {
	st := ss.store
	type rec struct {
		tag   string
		close int
		code  Code
		value string
	}
	var recs []rec
	err := st.WalkSubtree(n, func(ni nok.NodeInfo) bool {
		recs = append(recs, rec{
			tag:   st.TagName(ni.Entry.Tag),
			close: ni.Entry.CloseCount,
			code:  ni.Code,
		})
		return true
	})
	if err != nil {
		return nil, nil, nil, err
	}
	if vs := st.Values(); vs != nil {
		for k := range recs {
			v, err := vs.Value(n + xmltree.NodeID(k))
			if err != nil {
				return nil, nil, nil, err
			}
			recs[k].value = v
		}
	}
	// The last record's closeCount includes closes of ancestors outside
	// the subtree; clamp it to the fragment-internal amount.
	size := len(recs)
	sum := 0
	for _, r := range recs {
		sum += r.close
	}
	recs[size-1].close -= sum - size

	b := xmltree.NewBuilder()
	depth := 0
	values := make([]string, size)
	for k, r := range recs {
		b.Begin(r.tag)
		if r.value != "" {
			b.Text(r.value)
		}
		values[k] = r.value
		depth++
		for c := 0; c < r.close; c++ {
			b.End()
			depth--
		}
	}
	for ; depth > 0; depth-- {
		b.End()
	}
	frag, err := b.Finish()
	if err != nil {
		return nil, nil, nil, fmt.Errorf("dol: extract subtree: %w", err)
	}
	m := acl.NewMatrix(size, ss.cb.NumSubjects())
	for k, r := range recs {
		m.SetRow(xmltree.NodeID(k), ss.cb.ACL(r.code))
	}
	return frag, m, values, nil
}

// Vacuum performs the paper's lazy redundancy correction (§3.4): subject
// deletion can leave distinct codebook entries with identical ACLs and
// adjacent transition nodes with equal effective lists. Vacuum rewrites
// the embedded codes canonically (every ACL maps to one code), merging
// redundant transitions and releasing duplicate codebook entries. It is a
// full-document pass; run it opportunistically, not per update.
func (ss *SecureStore) Vacuum() error {
	last := xmltree.NodeID(ss.store.NumNodes() - 1)
	return ss.SetRangeACL(0, last, func(old *bitset.Bitset) *bitset.Bitset {
		// Interning the unchanged ACL canonicalizes the code: the
		// codebook returns the first live entry with these bits.
		return old
	})
}

// AddSubject appends a new subject with no access anywhere. Only the
// in-memory codebook changes (§3.4).
func (ss *SecureStore) AddSubject() acl.SubjectID { return ss.cb.AddSubject() }

// AddSubjectLike appends a new subject whose rights match an existing one.
// Only the codebook changes; no embedded transition codes are touched.
func (ss *SecureStore) AddSubjectLike(like acl.SubjectID) (acl.SubjectID, error) {
	return ss.cb.AddSubjectLike(like)
}

// RemoveSubject deletes a subject's codebook column. Redundant embedded
// codes that may result are reclaimed lazily (§3.4).
func (ss *SecureStore) RemoveSubject(s acl.SubjectID) error {
	return ss.cb.RemoveSubject(s)
}

// readRegion decodes blocks [i, j] into a flat entry slice, the code in
// force at every node, and the list of codes the region references on disk
// (block headers plus inline transition codes — exactly what the reference
// counts track).
func (ss *SecureStore) readRegion(i, j int) (entries []nok.Entry, codes []Code, oldCodes []Code, startLevel int, err error) {
	st := ss.store
	startLevel = int(st.PageInfoAt(i).StartDepth)
	for k := i; k <= j; k++ {
		pi := st.PageInfoAt(k)
		es, err := st.BlockEntries(k)
		if err != nil {
			return nil, nil, nil, 0, err
		}
		oldCodes = append(oldCodes, pi.AccessCode)
		cur := pi.AccessCode
		for _, e := range es {
			if e.HasCode {
				cur = e.Code
				oldCodes = append(oldCodes, e.Code)
			}
			codes = append(codes, cur)
		}
		entries = append(entries, es...)
	}
	return entries, codes, oldCodes, startLevel, nil
}

// swapRefs restores the reference-count invariant
//
//	refs(code) = #(block headers with that code) + #(inline entries with it)
//
// after a region rewrite: it retains the codes now on disk in the rewritten
// region (headers of the nblocks replacement blocks starting at directory
// index i, plus inline entry codes — excluding entries that became block
// firsts, whose codes were moved into headers) and then releases the old
// region's codes.
func (ss *SecureStore) swapRefs(i, nblocks int, regionFirst xmltree.NodeID, entries []nok.Entry, oldCodes []Code) {
	stripped := make(map[int]bool, nblocks)
	for k := i; k < i+nblocks; k++ {
		pi := ss.store.PageInfoAt(k)
		ss.cb.Retain(pi.AccessCode)
		stripped[int(pi.FirstNode-regionFirst)] = true
	}
	for idx, e := range entries {
		if e.HasCode && !stripped[idx] {
			ss.cb.Retain(e.Code)
		}
	}
	for _, c := range oldCodes {
		ss.cb.Release(c)
	}
}

// normalizeFlags rewrites the HasCode/Code fields of entries so that entry
// k carries an inline code exactly when its code differs from entry k-1's.
// Entry 0's code is conveyed to RewriteRegion as the region start code.
func normalizeFlags(entries []nok.Entry, codes []Code) {
	for k := range entries {
		if k == 0 {
			entries[k].HasCode = false
			entries[k].Code = 0
			continue
		}
		if codes[k] != codes[k-1] {
			entries[k].HasCode = true
			entries[k].Code = codes[k]
		} else {
			entries[k].HasCode = false
			entries[k].Code = 0
		}
	}
}
