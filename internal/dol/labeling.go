package dol

import (
	"encoding/binary"
	"fmt"
	"sort"

	"dolxml/internal/acl"
	"dolxml/internal/bitset"
	"dolxml/internal/xmltree"
)

// Labeling is the logical DOL of a secured tree: the document-ordered list
// of transition nodes with their access control codes, plus the codebook.
// Node 0 (the root) is always a transition node (§2).
//
// A Labeling implements nok.CodeSource, so it can be embedded directly into
// a NoK structure store during a build.
type Labeling struct {
	cb       *Codebook
	numNodes int
	// nodes and codes are parallel, sorted by node; nodes[0] == 0.
	nodes []xmltree.NodeID
	codes []Code
}

// FromMatrix builds a labeling from an accessibility matrix in a single
// document-order pass.
func FromMatrix(m *acl.Matrix) *Labeling {
	sb := NewStreamBuilder(NewCodebook(m.NumSubjects()))
	for n := 0; n < m.NumNodes(); n++ {
		sb.Append(m.Row(xmltree.NodeID(n)))
	}
	return sb.Finish()
}

// FromAccessibleSet builds a single-subject labeling: bit n of accessible
// marks node n as accessible to the lone subject.
func FromAccessibleSet(accessible *bitset.Bitset, numNodes int) *Labeling {
	sb := NewStreamBuilder(NewCodebook(1))
	yes := bitset.FromIndices(1, 0)
	no := bitset.New(1)
	for n := 0; n < numNodes; n++ {
		if accessible.Test(n) {
			sb.Append(yes)
		} else {
			sb.Append(no)
		}
	}
	return sb.Finish()
}

// StreamBuilder constructs a Labeling one node at a time in document order,
// as from a SAX stream of a labeled document — the paper's on-the-fly
// construction property (§2). The codebook may be shared among several
// labelings (e.g. one labeling per action mode over a common dictionary).
type StreamBuilder struct {
	l        *Labeling
	lastKey  string
	started  bool
	finished bool
}

// NewStreamBuilder returns a builder over the given codebook.
func NewStreamBuilder(cb *Codebook) *StreamBuilder {
	return &StreamBuilder{l: &Labeling{cb: cb}}
}

// Append adds the next node in document order with the given access control
// list.
func (sb *StreamBuilder) Append(a *bitset.Bitset) {
	if sb.finished {
		panic("dol: Append after Finish")
	}
	key := a.Key()
	n := xmltree.NodeID(sb.l.numNodes)
	sb.l.numNodes++
	if sb.started && key == sb.lastKey {
		return
	}
	c := sb.l.cb.Intern(a)
	sb.l.cb.Retain(c)
	sb.l.nodes = append(sb.l.nodes, n)
	sb.l.codes = append(sb.l.codes, c)
	sb.lastKey = key
	sb.started = true
}

// Finish returns the completed labeling.
func (sb *StreamBuilder) Finish() *Labeling {
	sb.finished = true
	return sb.l
}

// Codebook returns the labeling's codebook.
func (l *Labeling) Codebook() *Codebook { return l.cb }

// NumNodes returns the number of nodes of the underlying document.
func (l *Labeling) NumNodes() int { return l.numNodes }

// NumTransitions returns the number of transition nodes — the paper's DOL
// size metric (Figures 4 and 6).
func (l *Labeling) NumTransitions() int { return len(l.nodes) }

// Transitions returns the transition positions and codes (copies).
func (l *Labeling) Transitions() ([]xmltree.NodeID, []Code) {
	ns := make([]xmltree.NodeID, len(l.nodes))
	cs := make([]Code, len(l.codes))
	copy(ns, l.nodes)
	copy(cs, l.codes)
	return ns, cs
}

func (l *Labeling) check(n xmltree.NodeID) {
	if n < 0 || int(n) >= l.numNodes {
		panic(fmt.Sprintf("dol: node %d out of range [0,%d)", n, l.numNodes))
	}
}

// transIndex returns the index of the transition node governing n (the
// last transition at or before n).
func (l *Labeling) transIndex(n xmltree.NodeID) int {
	return sort.Search(len(l.nodes), func(i int) bool { return l.nodes[i] > n }) - 1
}

// CodeInForce implements nok.CodeSource: the code of the nearest preceding
// transition node (or n itself).
func (l *Labeling) CodeInForce(n xmltree.NodeID) Code {
	l.check(n)
	return l.codes[l.transIndex(n)]
}

// IsTransition implements nok.CodeSource.
func (l *Labeling) IsTransition(n xmltree.NodeID) bool {
	l.check(n)
	i := l.transIndex(n)
	return i >= 0 && l.nodes[i] == n
}

// Accessible reports whether subject s may access node n.
func (l *Labeling) Accessible(n xmltree.NodeID, s acl.SubjectID) bool {
	return l.cb.Accessible(l.CodeInForce(n), s)
}

// AccessibleAny reports whether any subject of the effective set may access
// node n.
func (l *Labeling) AccessibleAny(n xmltree.NodeID, effective *bitset.Bitset) bool {
	return l.cb.AccessibleAny(l.CodeInForce(n), effective)
}

// ACLAt returns the access control list in force at node n (shared with
// the codebook; callers must not modify it).
func (l *Labeling) ACLAt(n xmltree.NodeID) *bitset.Bitset {
	return l.cb.ACL(l.CodeInForce(n))
}

// Matrix reconstructs the full accessibility matrix the labeling encodes.
func (l *Labeling) Matrix() *acl.Matrix {
	m := acl.NewMatrix(l.numNodes, l.cb.NumSubjects())
	for i, start := range l.nodes {
		end := xmltree.NodeID(l.numNodes)
		if i+1 < len(l.nodes) {
			end = l.nodes[i+1]
		}
		a := l.cb.ACL(l.codes[i])
		for n := start; n < end; n++ {
			m.SetRow(n, a)
		}
	}
	return m
}

// validate checks internal invariants; used by tests.
func (l *Labeling) validate() error {
	if l.numNodes > 0 {
		if len(l.nodes) == 0 || l.nodes[0] != 0 {
			return fmt.Errorf("dol: missing root transition")
		}
	}
	for i := 1; i < len(l.nodes); i++ {
		if l.nodes[i] <= l.nodes[i-1] {
			return fmt.Errorf("dol: transitions out of order at %d", i)
		}
		if l.codes[i] == l.codes[i-1] {
			return fmt.Errorf("dol: adjacent equal codes at transition %d", i)
		}
	}
	if len(l.nodes) > 0 && int(l.nodes[len(l.nodes)-1]) >= l.numNodes {
		return fmt.Errorf("dol: transition beyond document")
	}
	return nil
}

// SetNodeAccess grants or revokes subject s on the single node n — the
// paper's first accessibility update (§3.4). It adds at most two transition
// nodes (Proposition 1).
func (l *Labeling) SetNodeAccess(n xmltree.NodeID, s acl.SubjectID, allowed bool) {
	l.SetRangeACL(n, n, func(old *bitset.Bitset) *bitset.Bitset {
		nw := old.Clone()
		nw.SetTo(int(s), allowed)
		return nw
	})
}

// SetRangeAccess grants or revokes subject s on the contiguous node range
// [lo, hi] — the paper's subtree accessibility update (§3.4), since a
// subtree is exactly a contiguous document-order range.
func (l *Labeling) SetRangeAccess(lo, hi xmltree.NodeID, s acl.SubjectID, allowed bool) {
	l.SetRangeACL(lo, hi, func(old *bitset.Bitset) *bitset.Bitset {
		nw := old.Clone()
		nw.SetTo(int(s), allowed)
		return nw
	})
}

// SetRangeACL rewrites the access control lists of nodes in [lo, hi] by
// applying f to each node's current ACL. f must be deterministic in its
// argument. The rewrite has the paper's update-locality property: only
// transitions within or immediately after the range change, and the total
// transition count grows by at most 2.
func (l *Labeling) SetRangeACL(lo, hi xmltree.NodeID, f func(*bitset.Bitset) *bitset.Bitset) {
	l.check(lo)
	l.check(hi)
	if hi < lo {
		panic("dol: empty range")
	}

	// Old segments covering [lo, hi]: (start, code) pairs.
	iLo := l.transIndex(lo)
	type seg struct {
		start xmltree.NodeID
		code  Code
	}
	var oldSegs []seg
	oldSegs = append(oldSegs, seg{lo, l.codes[iLo]})
	j := iLo + 1
	for ; j < len(l.nodes) && l.nodes[j] <= hi; j++ {
		oldSegs = append(oldSegs, seg{l.nodes[j], l.codes[j]})
	}
	// Code in force at hi+1 before the update.
	var afterCode Code
	hasAfter := int(hi+1) < l.numNodes
	if hasAfter {
		afterCode = oldSegs[len(oldSegs)-1].code
		if j < len(l.nodes) && l.nodes[j] == hi+1 {
			afterCode = l.codes[j]
		}
	}
	// Code in force at lo-1 (computed before any mutation).
	var beforeCode Code
	hasBefore := lo > 0
	if hasBefore {
		beforeCode = l.CodeInForce(lo - 1)
	}

	// New segments: apply f, merging equal neighbours.
	var newSegs []seg
	for _, sg := range oldSegs {
		nc := l.cb.Intern(f(l.cb.ACL(sg.code)))
		if len(newSegs) > 0 && newSegs[len(newSegs)-1].code == nc {
			continue
		}
		newSegs = append(newSegs, seg{sg.start, nc})
	}
	// Merge with the run before lo.
	if hasBefore && newSegs[0].code == beforeCode {
		newSegs = newSegs[1:]
	}
	// Boundary at hi+1: the old code must stay in force there.
	if hasAfter {
		lastCode := beforeCode // code in force at hi after update
		if len(newSegs) > 0 {
			lastCode = newSegs[len(newSegs)-1].code
		}
		if lastCode != afterCode {
			newSegs = append(newSegs, seg{hi + 1, afterCode})
		}
	}

	// Splice: transitions strictly before lo stay; transitions in
	// [lo, hi+1] are replaced by newSegs; transitions after hi+1 stay.
	keepLo := iLo + 1
	if l.nodes[iLo] == lo {
		keepLo = iLo
	}
	keepHi := keepLo
	for keepHi < len(l.nodes) && l.nodes[keepHi] <= hi+1 {
		keepHi++
	}

	// Reference counting: retain new, release old (in that order so codes
	// shared between old and new stay alive throughout).
	for _, sg := range newSegs {
		l.cb.Retain(sg.code)
	}
	for k := keepLo; k < keepHi; k++ {
		l.cb.Release(l.codes[k])
	}

	nodes := make([]xmltree.NodeID, 0, len(l.nodes)+2)
	codes := make([]Code, 0, len(l.codes)+2)
	nodes = append(nodes, l.nodes[:keepLo]...)
	codes = append(codes, l.codes[:keepLo]...)
	for _, sg := range newSegs {
		nodes = append(nodes, sg.start)
		codes = append(codes, sg.code)
	}
	nodes = append(nodes, l.nodes[keepHi:]...)
	codes = append(codes, l.codes[keepHi:]...)
	l.nodes, l.codes = nodes, codes

	// A kept transition at hi+2.. may now follow an equal code (when the
	// update restored the surrounding run's code); merge it.
	l.mergeAdjacent()
}

// mergeAdjacent removes transitions whose code equals their predecessor's.
func (l *Labeling) mergeAdjacent() {
	out := 0
	for i := range l.nodes {
		if out > 0 && l.codes[i] == l.codes[out-1] {
			l.cb.Release(l.codes[i])
			continue
		}
		l.nodes[out] = l.nodes[i]
		l.codes[out] = l.codes[i]
		out++
	}
	l.nodes = l.nodes[:out]
	l.codes = l.codes[:out]
}

// InsertRange splices the labeling frag into l starting at position at
// (0 ≤ at ≤ NumNodes): the structural insert of §3.4, where the inserted
// subtree arrives with its own access controls. Fragment ACLs are
// re-interned into l's codebook.
func (l *Labeling) InsertRange(at xmltree.NodeID, frag *Labeling) {
	if at < 0 || int(at) > l.numNodes {
		panic(fmt.Sprintf("dol: insert position %d out of range [0,%d]", at, l.numNodes))
	}
	if frag.numNodes == 0 {
		return
	}
	fragLen := xmltree.NodeID(frag.numNodes)

	// Code in force before the insertion point and at the old node `at`.
	var beforeCode Code
	hasBefore := at > 0
	if hasBefore {
		beforeCode = l.CodeInForce(at - 1)
	}
	var atCode Code
	hasAt := int(at) < l.numNodes
	if hasAt {
		atCode = l.CodeInForce(at)
	}

	// Fragment segments translated into l's codebook.
	type seg struct {
		start xmltree.NodeID
		code  Code
	}
	var fragSegs []seg
	for i, fn := range frag.nodes {
		c := l.cb.Intern(frag.cb.ACL(frag.codes[i]))
		if len(fragSegs) > 0 && fragSegs[len(fragSegs)-1].code == c {
			continue
		}
		fragSegs = append(fragSegs, seg{at + fn, c})
	}
	if hasBefore && len(fragSegs) > 0 && fragSegs[0].code == beforeCode {
		fragSegs = fragSegs[1:]
	}
	// Splice point: first existing transition at or after `at`.
	cut := sort.Search(len(l.nodes), func(i int) bool { return l.nodes[i] >= at })
	hasTransAt := cut < len(l.nodes) && l.nodes[cut] == at

	// Boundary after the fragment: the old node at `at` keeps its code.
	// When a transition already sits exactly at `at` it is shifted to
	// at+fragLen below and provides the boundary itself.
	if hasAt && !hasTransAt {
		lastCode := beforeCode
		if len(fragSegs) > 0 {
			lastCode = fragSegs[len(fragSegs)-1].code
		}
		if lastCode != atCode {
			fragSegs = append(fragSegs, seg{at + fragLen, atCode})
		}
	}
	for _, sg := range fragSegs {
		l.cb.Retain(sg.code)
	}
	// An existing transition exactly at `at` may now be redundant (its
	// code is re-established by the boundary segment or merges); handled
	// by mergeAdjacent after the splice.
	nodes := make([]xmltree.NodeID, 0, len(l.nodes)+len(fragSegs))
	codes := make([]Code, 0, len(l.codes)+len(fragSegs))
	nodes = append(nodes, l.nodes[:cut]...)
	codes = append(codes, l.codes[:cut]...)
	for _, sg := range fragSegs {
		nodes = append(nodes, sg.start)
		codes = append(codes, sg.code)
	}
	for k := cut; k < len(l.nodes); k++ {
		nodes = append(nodes, l.nodes[k]+fragLen)
		codes = append(codes, l.codes[k])
	}
	l.nodes, l.codes = nodes, codes
	l.numNodes += frag.numNodes
	l.mergeAdjacent()
}

// DeleteRange removes nodes [lo, hi] — the structural delete of §3.4.
func (l *Labeling) DeleteRange(lo, hi xmltree.NodeID) {
	l.check(lo)
	l.check(hi)
	if hi < lo {
		panic("dol: empty range")
	}
	removed := hi - lo + 1

	// Code that must be in force at the node following the deleted range
	// (which moves to position lo).
	var afterCode Code
	hasAfter := int(hi+1) < l.numNodes
	if hasAfter {
		afterCode = l.CodeInForce(hi + 1)
	}
	var beforeCode Code
	hasBefore := lo > 0
	if hasBefore {
		beforeCode = l.CodeInForce(lo - 1)
	}

	cut := sort.Search(len(l.nodes), func(i int) bool { return l.nodes[i] >= lo })
	end := cut
	for end < len(l.nodes) && l.nodes[end] <= hi {
		end++
	}
	nodes := append([]xmltree.NodeID{}, l.nodes[:cut]...)
	codes := append([]Code{}, l.codes[:cut]...)
	if hasAfter {
		// Is there an existing transition exactly at hi+1?
		hasTransAfter := end < len(l.nodes) && l.nodes[end] == hi+1
		need := !hasBefore || beforeCode != afterCode
		if need && !hasTransAfter {
			// Retain before releasing the range's transitions: the
			// code's only reference may be a transition inside the
			// deleted range.
			l.cb.Retain(afterCode)
			nodes = append(nodes, lo)
			codes = append(codes, afterCode)
		}
	}
	// Release transitions inside the deleted range.
	for k := cut; k < end; k++ {
		l.cb.Release(l.codes[k])
	}
	for k := end; k < len(l.nodes); k++ {
		nodes = append(nodes, l.nodes[k]-removed)
		codes = append(codes, l.codes[k])
	}
	l.nodes, l.codes = nodes, codes
	l.numNodes -= int(removed)
	l.mergeAdjacent()
}

// MarshalBinary serializes the labeling together with its codebook — the
// wire form a dissemination service ships to filtering endpoints (§7).
func (l *Labeling) MarshalBinary() ([]byte, error) {
	cb, err := l.cb.MarshalBinary()
	if err != nil {
		return nil, err
	}
	var out []byte
	out = binary.AppendUvarint(out, uint64(l.numNodes))
	out = binary.AppendUvarint(out, uint64(len(cb)))
	out = append(out, cb...)
	out = binary.AppendUvarint(out, uint64(len(l.nodes)))
	prev := xmltree.NodeID(0)
	for i, n := range l.nodes {
		// Delta-encode transition positions; they are strictly
		// increasing.
		out = binary.AppendUvarint(out, uint64(n-prev))
		prev = n
		out = binary.AppendUvarint(out, uint64(l.codes[i]))
	}
	return out, nil
}

// UnmarshalBinary restores a labeling serialized by MarshalBinary.
func (l *Labeling) UnmarshalBinary(data []byte) error {
	rd := func() (uint64, error) {
		v, n := binary.Uvarint(data)
		if n <= 0 {
			return 0, fmt.Errorf("dol: corrupt labeling encoding")
		}
		data = data[n:]
		return v, nil
	}
	numNodes, err := rd()
	if err != nil {
		return err
	}
	cbLen, err := rd()
	if err != nil {
		return err
	}
	if uint64(len(data)) < cbLen {
		return fmt.Errorf("dol: truncated codebook (%d of %d bytes)", len(data), cbLen)
	}
	cb := NewCodebook(0)
	if err := cb.UnmarshalBinary(data[:cbLen]); err != nil {
		return err
	}
	data = data[cbLen:]
	count, err := rd()
	if err != nil {
		return err
	}
	nodes := make([]xmltree.NodeID, 0, count)
	codes := make([]Code, 0, count)
	prev := xmltree.NodeID(0)
	for i := uint64(0); i < count; i++ {
		delta, err := rd()
		if err != nil {
			return err
		}
		n := prev + xmltree.NodeID(delta)
		if uint64(n) >= numNodes && numNodes > 0 {
			return fmt.Errorf("dol: transition at %d beyond %d nodes", n, numNodes)
		}
		code, err := rd()
		if err != nil {
			return err
		}
		if int(code) >= len(cb.entries) || cb.entries[code] == nil {
			return fmt.Errorf("dol: transition references dead code %d", code)
		}
		nodes = append(nodes, n)
		codes = append(codes, Code(code))
		prev = n
	}
	l.cb = cb
	l.numNodes = int(numNodes)
	l.nodes = nodes
	l.codes = codes
	return l.validate()
}

// Clone returns a deep copy of the labeling sharing no state, including a
// cloned codebook.
func (l *Labeling) Clone() *Labeling {
	data, err := l.cb.MarshalBinary()
	if err != nil {
		panic(err)
	}
	cb := NewCodebook(l.cb.NumSubjects())
	if err := cb.UnmarshalBinary(data); err != nil {
		panic(err)
	}
	nodes, codes := l.Transitions()
	return &Labeling{cb: cb, numNodes: l.numNodes, nodes: nodes, codes: codes}
}
