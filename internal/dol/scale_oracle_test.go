package dol

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"dolxml/internal/acl"
	"dolxml/internal/bitset"
	"dolxml/internal/nok"
	"dolxml/internal/storage"
	"dolxml/internal/xmltree"
)

// scaleDoc builds a ~300-node three-level document: sections of entries,
// each entry a small subtree — enough structure for subtree updates to
// cross block boundaries at small page sizes.
func scaleDoc(t testing.TB) *xmltree.Document {
	t.Helper()
	var sb strings.Builder
	sb.WriteString("<site>")
	for s := 0; s < 8; s++ {
		fmt.Fprintf(&sb, "<section id=\"s%d\">", s)
		for e := 0; e < 8; e++ {
			fmt.Fprintf(&sb, "<entry><name>e%d-%d</name><body>text</body></entry>", s, e)
		}
		sb.WriteString("</section>")
	}
	sb.WriteString("</site>")
	return xmltree.MustParseString(sb.String())
}

// TestScaleOracle is the population-scale property test: a store labeled
// for 100 000 subjects (2 000 under -short) under a group-correlated
// initial policy takes hundreds of random subtree grant/revoke updates,
// and after every one:
//
//   - Proposition 1 holds: the update adds at most 2 transitions to the
//     document-order label sequence;
//   - sampled access decisions agree with a brute-force ACL matrix oracle,
//     through the raw store, through a fresh SubjectView (cold cache), and
//     through a long-lived reused SubjectView (warm cache, regenerating on
//     codebook mutation).
//
// A full matrix comparison at checkpoints confirms the store and oracle
// never diverge anywhere, not just at sampled points.
func TestScaleOracle(t *testing.T) {
	subjects := 100000
	updates := 300
	if testing.Short() {
		subjects = 2000
		updates = 80
	}
	doc := scaleDoc(t)
	n := doc.Len()
	rng := rand.New(rand.NewSource(7))

	// Group-correlated start: ~sqrt(subjects)-sized contiguous subject
	// ranges, each granted one section's subtree.
	groupSize := 1
	for groupSize*groupSize < subjects {
		groupSize++
	}
	m := acl.NewMatrix(n, subjects)
	sections := doc.NodesWithTag("section")
	for gi := 0; gi*groupSize < subjects; gi++ {
		lo := gi * groupSize
		hi := lo + groupSize
		if hi > subjects {
			hi = subjects
		}
		row := bitset.New(subjects)
		row.SetRange(lo, hi)
		sec := sections[gi%len(sections)]
		for i := sec; i <= doc.End(sec); i++ {
			or := m.Row(i).Clone()
			or.Or(row)
			m.SetRow(i, or)
		}
	}

	pool := storage.NewBufferPool(storage.NewMemPager(256), 1024)
	ss, err := BuildSecureStore(pool, doc, m, nok.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	oracle := m.Clone()

	reused := make(map[acl.SubjectID]*SubjectView)
	viewFor := func(s acl.SubjectID) *SubjectView {
		v, ok := reused[s]
		if !ok {
			v = ss.ViewSubject(s)
			reused[s] = v
		}
		return v
	}
	checkSample := func(step int) {
		for k := 0; k < 8; k++ {
			node := xmltree.NodeID(rng.Intn(n))
			s := acl.SubjectID(rng.Intn(subjects))
			want := oracle.Accessible(node, s)
			if got, err := ss.Accessible(node, s); err != nil || got != want {
				t.Fatalf("step %d: Accessible(%d,%d) = %v,%v want %v", step, node, s, got, err, want)
			}
			if got, err := ss.ViewSubject(s).Accessible(node); err != nil || got != want {
				t.Fatalf("step %d: fresh view (%d,%d) = %v,%v want %v", step, node, s, got, err, want)
			}
			if got, err := viewFor(s).Accessible(node); err != nil || got != want {
				t.Fatalf("step %d: reused view (%d,%d) = %v,%v want %v", step, node, s, got, err, want)
			}
		}
	}

	trans, err := ss.TransitionCount()
	if err != nil {
		t.Fatal(err)
	}
	checkSample(-1)
	for step := 0; step < updates; step++ {
		root := xmltree.NodeID(rng.Intn(n))
		s := acl.SubjectID(rng.Intn(subjects))
		allowed := rng.Intn(2) == 0
		if err := ss.SetSubtreeAccess(root, s, allowed); err != nil {
			t.Fatalf("step %d: SetSubtreeAccess(%d,%d,%v): %v", step, root, s, allowed, err)
		}
		for i := root; i <= doc.End(root); i++ {
			oracle.Set(i, s, allowed)
		}

		next, err := ss.TransitionCount()
		if err != nil {
			t.Fatal(err)
		}
		if next > trans+2 {
			t.Fatalf("step %d: transitions %d -> %d; Proposition 1 allows at most +2", step, trans, next)
		}
		trans = next
		checkSample(step)

		if step%100 == 99 {
			got, err := ss.Matrix()
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(oracle) {
				t.Fatalf("step %d: full matrix diverged from oracle", step)
			}
		}
	}

	got, err := ss.Matrix()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(oracle) {
		t.Fatal("final matrix diverged from oracle")
	}
	// The codebook must stay bounded by the rule vocabulary, not the
	// update count: every update interns at most a handful of new rows and
	// releases the ones it replaced.
	if live := ss.Codebook().Len(); live > 4*n {
		t.Fatalf("codebook holds %d live entries for a %d-node document", live, n)
	}
	checkStoreRefs(t, ss)
}
