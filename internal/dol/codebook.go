// Package dol implements Document Ordered Labeling, the core contribution
// of the paper: a compact multi-subject encoding of fine-grained XML access
// controls consisting of (1) a list of transition nodes — nodes whose
// access control list differs from their document-order predecessor — and
// (2) a codebook dictionary of the distinct access control lists, with each
// transition node storing only a small code referencing the codebook (§2).
//
// Labeling is the logical form used for the paper's compression experiments
// (Figures 4–6). SecureStore is the physical form (§3): transition codes
// embedded in NoK structure blocks, a per-block header carrying the initial
// code and a change bit, and the codebook held in memory — giving access
// checks that cost no I/O beyond the structure pages the query evaluator
// loads anyway, plus whole-page skipping for fully inaccessible pages.
package dol

import (
	"encoding/binary"
	"fmt"

	"dolxml/internal/acl"
	"dolxml/internal/bitset"
)

// Code indexes a codebook entry. Codes are embedded at transition nodes in
// the physical representation.
type Code = uint32

// Codebook is the in-memory dictionary of distinct access control lists
// appearing in a secured tree (§2.1). Entries are reference counted so that
// updates can garbage-collect lists that no longer occur.
type Codebook struct {
	numSubjects int
	entries     []*bitset.Bitset // code -> ACL; nil for freed codes
	refs        []int
	index       map[string]Code // ACL key -> code
	free        []Code          // freed codes available for reuse
	// gen counts mutations that may invalidate externally cached access
	// decisions (entry create/free/rewrite, subject add/remove, reference
	// releases accompanying block rewrites). SubjectView decision caches
	// key themselves by this value. Mutations and Gen reads must not be
	// concurrent (securexml serializes them behind its store lock).
	gen uint64
}

// NewCodebook returns an empty codebook over numSubjects subjects.
func NewCodebook(numSubjects int) *Codebook {
	return &Codebook{
		numSubjects: numSubjects,
		index:       make(map[string]Code),
	}
}

// NumSubjects returns the subject dimension of the codebook.
func (cb *Codebook) NumSubjects() int { return cb.numSubjects }

// Clone returns a deep copy: entries (each bitset copied), reference
// counts, the ACL index, the free list and the mutation generation. The
// clone and the original can then diverge without sharing any mutable
// state — MVCC snapshots freeze the original while updates mutate the
// clone. The codebook is small by the paper's compactness claim, so the
// copy is cheap.
func (cb *Codebook) Clone() *Codebook {
	c := &Codebook{
		numSubjects: cb.numSubjects,
		entries:     make([]*bitset.Bitset, len(cb.entries)),
		refs:        append([]int(nil), cb.refs...),
		index:       make(map[string]Code, len(cb.index)),
		free:        append([]Code(nil), cb.free...),
		gen:         cb.gen,
	}
	for i, e := range cb.entries {
		if e != nil {
			c.entries[i] = e.Clone()
		}
	}
	for k, v := range cb.index {
		c.index[k] = v
	}
	return c
}

// Len returns the number of live entries — the paper's "number of codebook
// entries" metric (Figure 5).
func (cb *Codebook) Len() int { return len(cb.entries) - len(cb.free) }

// Cap returns the number of code slots ever issued (live + freed). Codes are
// always smaller than Cap, so per-code caches may size themselves by it.
func (cb *Codebook) Cap() int { return len(cb.entries) }

// Gen returns the mutation generation. Caches of per-code access decisions
// are valid only while Gen is unchanged.
func (cb *Codebook) Gen() uint64 { return cb.gen }

// Intern returns the code for the given ACL, adding a new entry (with
// reference count zero) if it has not been seen. The caller owns acquiring
// references via Retain.
func (cb *Codebook) Intern(a *bitset.Bitset) Code {
	key := a.Key()
	if c, ok := cb.index[key]; ok {
		return c
	}
	cb.gen++
	stored := a.Clone()
	stored.Resize(cb.numSubjects)
	var c Code
	if n := len(cb.free); n > 0 {
		c = cb.free[n-1]
		cb.free = cb.free[:n-1]
		cb.entries[c] = stored
		cb.refs[c] = 0
	} else {
		c = Code(len(cb.entries))
		cb.entries = append(cb.entries, stored)
		cb.refs = append(cb.refs, 0)
	}
	cb.index[key] = c
	return c
}

// Retain increments the reference count of code c.
func (cb *Codebook) Retain(c Code) {
	cb.refs[c]++
}

// Release decrements the reference count of code c, freeing the entry when
// it reaches zero.
func (cb *Codebook) Release(c Code) {
	if cb.refs[c] <= 0 {
		panic(fmt.Sprintf("dol: release of unreferenced code %d", c))
	}
	cb.refs[c]--
	// Every Release accompanies a representation change (a block rewrite or
	// an entry freeing), either of which can invalidate cached per-view
	// decisions and page bitmaps, so the generation always advances.
	cb.gen++
	if cb.refs[c] == 0 {
		delete(cb.index, cb.entries[c].Key())
		cb.entries[c] = nil
		cb.free = append(cb.free, c)
	}
}

// Refs returns the reference count of code c (0 for freed codes).
func (cb *Codebook) Refs(c Code) int { return cb.refs[c] }

// ACL returns the access control list for code c. The returned bitset is
// shared; callers must not modify it.
func (cb *Codebook) ACL(c Code) *bitset.Bitset {
	if int(c) >= len(cb.entries) || cb.entries[c] == nil {
		panic(fmt.Sprintf("dol: lookup of dead code %d", c))
	}
	return cb.entries[c]
}

// Accessible reports whether subject s is granted by code c — "the s-th bit
// in that codebook entry" (§3.3).
func (cb *Codebook) Accessible(c Code, s acl.SubjectID) bool {
	return cb.ACL(c).Test(int(s))
}

// AccessibleAny reports whether any subject of the effective set (user plus
// transitive groups) is granted by code c.
func (cb *Codebook) AccessibleAny(c Code, effective *bitset.Bitset) bool {
	return cb.ACL(c).Intersects(effective)
}

// Bytes estimates the storage footprint of the codebook: one bit per
// subject per live entry, as in the paper's 4 MB-for-LiveLink arithmetic
// (§5.1.1).
func (cb *Codebook) Bytes() int {
	perEntry := (cb.numSubjects + 7) / 8
	return cb.Len() * perEntry
}

// AddSubject appends a new subject column with no access anywhere (§3.4:
// adding a subject is a codebook-only operation). It returns the new
// subject's ID.
func (cb *Codebook) AddSubject() acl.SubjectID {
	s := acl.SubjectID(cb.numSubjects)
	cb.numSubjects++
	cb.gen++
	for _, e := range cb.entries {
		if e != nil {
			e.Resize(cb.numSubjects)
		}
	}
	// Keys are unchanged: the new column is all zeroes and Key ignores
	// trailing zero bits.
	return s
}

// AddSubjectLike appends a new subject whose rights everywhere match those
// of existing subject like (§3.4). No embedded codes change.
func (cb *Codebook) AddSubjectLike(like acl.SubjectID) (acl.SubjectID, error) {
	if int(like) < 0 || int(like) >= cb.numSubjects {
		return acl.InvalidSubject, fmt.Errorf("dol: AddSubjectLike(%d) out of range", like)
	}
	s := cb.AddSubject()
	for c, e := range cb.entries {
		if e == nil {
			continue
		}
		if e.Test(int(like)) {
			delete(cb.index, e.Key())
			e.Set(int(s))
			cb.index[e.Key()] = Code(c)
		}
	}
	return s, nil
}

// RemoveSubject deletes subject s's column. Distinct entries may collapse
// to equal ACLs afterwards; they are kept as duplicate codes (still
// correct) and reclaimed lazily, mirroring the paper's lazy redundancy
// correction (§3.4). The caller must renumber its SubjectIDs: subjects
// above s shift down by one.
func (cb *Codebook) RemoveSubject(s acl.SubjectID) error {
	if int(s) < 0 || int(s) >= cb.numSubjects {
		return fmt.Errorf("dol: RemoveSubject(%d) out of range", s)
	}
	cb.numSubjects--
	cb.gen++
	cb.index = make(map[string]Code, len(cb.entries))
	for c, e := range cb.entries {
		if e == nil {
			continue
		}
		e.RemoveBit(int(s))
		key := e.Key()
		// First live code with a given key wins the index slot;
		// duplicates remain addressable but are not re-issued.
		if _, ok := cb.index[key]; !ok {
			cb.index[key] = Code(c)
		}
	}
	return nil
}

// Duplicates returns the number of live entries whose ACL equals that of a
// lower-numbered live entry — redundancy introduced by RemoveSubject that a
// lazy compaction pass would reclaim.
func (cb *Codebook) Duplicates() int {
	seen := make(map[string]bool, len(cb.entries))
	dups := 0
	for _, e := range cb.entries {
		if e == nil {
			continue
		}
		k := e.Key()
		if seen[k] {
			dups++
		}
		seen[k] = true
	}
	return dups
}

// codebookV2Magic opens the version-2 codebook encoding. Version 1 opens
// with the subject count, so the magic is a value no real population can
// reach; decoders dispatch on the first uvarint.
const codebookV2Magic = uint64(1)<<62 + 2

// maxCodebookSubjects bounds the subject populations the v2 decoder will
// materialize rows for, so a corrupt header cannot demand gigabyte
// allocations before any row data is validated.
const maxCodebookSubjects = 1 << 27

// Per-row tags of the v2 encoding.
const (
	rowFreed = 0 // freed code slot, no payload
	rowDense = 1 // bitset.MarshalBinary bytes (the v1 row format)
	rowRuns  = 2 // run-length row: bitset.AppendRuns over the set bits
)

// sparseRowMinSubjects is the population below which rows never encode
// sparsely: dense rows are already a few dozen bytes there, and staying in
// the v1 framing keeps small stores byte-identical on disk.
const sparseRowMinSubjects = 256

// CodebookFormatVersion reports the framing of a marshaled codebook: 1 for
// the dense layout, 2 for the tagged sparse-row layout. Benchmarks and
// tests use it to assert which encoding a population actually produced.
func CodebookFormatVersion(data []byte) int {
	if v, n := binary.Uvarint(data); n > 0 && v == codebookV2Magic {
		return 2
	}
	return 1
}

// MarshalBinary serializes the codebook. Rows whose run-length encoding is
// smaller than their dense word encoding are written sparsely, and the
// whole blob switches to the version-2 framing as soon as one row does —
// group-correlated ACLs over large subject populations shrink from
// subjects/8 bytes per row to a few bytes per run. Books whose rows are all
// dense keep the version-1 bytes, so small stores are unchanged on disk.
func (cb *Codebook) MarshalBinary() ([]byte, error) {
	type rowPlan struct {
		runs []bitset.Run
		size int // encoded payload size of the chosen form
	}
	plans := make([]rowPlan, len(cb.entries))
	sparse := false
	for c, e := range cb.entries {
		if e == nil {
			continue
		}
		// Only rows spanning exactly the subject population may drop their
		// length; v1-decoded oddballs keep the self-describing dense form.
		if cb.numSubjects < sparseRowMinSubjects || e.Len() != cb.numSubjects {
			plans[c] = rowPlan{size: -1}
			continue
		}
		runs := e.Runs()
		if sz := bitset.RunsSize(runs); sz < 4+8*((e.Len()+63)/64) {
			plans[c] = rowPlan{runs: runs, size: sz}
			sparse = true
		} else {
			plans[c] = rowPlan{size: -1}
		}
	}
	var out []byte
	if sparse {
		out = binary.AppendUvarint(out, codebookV2Magic)
		out = binary.AppendUvarint(out, uint64(cb.numSubjects))
		out = binary.AppendUvarint(out, uint64(len(cb.entries)))
		for c, e := range cb.entries {
			if e == nil {
				out = binary.AppendUvarint(out, rowFreed)
				continue
			}
			if plans[c].size >= 0 {
				out = binary.AppendUvarint(out, rowRuns)
				out = bitset.AppendRuns(out, plans[c].runs)
			} else {
				data, err := e.MarshalBinary()
				if err != nil {
					return nil, err
				}
				out = binary.AppendUvarint(out, rowDense)
				out = binary.AppendUvarint(out, uint64(len(data)))
				out = append(out, data...)
			}
			out = binary.AppendUvarint(out, uint64(cb.refs[c]))
		}
		return out, nil
	}
	out = binary.AppendUvarint(out, uint64(cb.numSubjects))
	out = binary.AppendUvarint(out, uint64(len(cb.entries)))
	for c, e := range cb.entries {
		if e == nil {
			out = binary.AppendUvarint(out, 0)
			continue
		}
		data, err := e.MarshalBinary()
		if err != nil {
			return nil, err
		}
		out = binary.AppendUvarint(out, uint64(len(data)))
		out = append(out, data...)
		out = binary.AppendUvarint(out, uint64(cb.refs[c]))
	}
	return out, nil
}

// UnmarshalBinary restores a codebook serialized by MarshalBinary, accepting
// both the version-1 (all-dense) and version-2 (sparse-capable) framings.
func (cb *Codebook) UnmarshalBinary(data []byte) error {
	ns, n := binary.Uvarint(data)
	if n <= 0 {
		return fmt.Errorf("dol: corrupt codebook header")
	}
	data = data[n:]
	if ns == codebookV2Magic {
		return cb.unmarshalV2(data)
	}
	count, n := binary.Uvarint(data)
	if n <= 0 {
		return fmt.Errorf("dol: corrupt codebook count")
	}
	data = data[n:]
	*cb = Codebook{
		numSubjects: int(ns),
		index:       make(map[string]Code),
	}
	for i := uint64(0); i < count; i++ {
		sz, n := binary.Uvarint(data)
		if n <= 0 {
			return fmt.Errorf("dol: corrupt codebook entry %d", i)
		}
		data = data[n:]
		if sz == 0 {
			cb.entries = append(cb.entries, nil)
			cb.refs = append(cb.refs, 0)
			cb.free = append(cb.free, Code(i))
			continue
		}
		if uint64(len(data)) < sz {
			return fmt.Errorf("dol: truncated codebook entry %d", i)
		}
		var b bitset.Bitset
		if err := b.UnmarshalBinary(data[:sz]); err != nil {
			return err
		}
		data = data[sz:]
		refs, n := binary.Uvarint(data)
		if n <= 0 {
			return fmt.Errorf("dol: corrupt refcount for entry %d", i)
		}
		data = data[n:]
		cb.entries = append(cb.entries, &b)
		cb.refs = append(cb.refs, int(refs))
		// First entry with a given key wins, matching RemoveSubject's
		// duplicate handling.
		key := b.Key()
		if _, ok := cb.index[key]; !ok {
			cb.index[key] = Code(i)
		}
	}
	return nil
}

// unmarshalV2 decodes the body of a version-2 codebook (the magic uvarint
// already consumed).
func (cb *Codebook) unmarshalV2(data []byte) error {
	ns, n := binary.Uvarint(data)
	if n <= 0 {
		return fmt.Errorf("dol: corrupt codebook v2 header")
	}
	if ns > maxCodebookSubjects {
		return fmt.Errorf("dol: codebook v2 claims %d subjects (max %d)", ns, maxCodebookSubjects)
	}
	data = data[n:]
	count, n := binary.Uvarint(data)
	if n <= 0 {
		return fmt.Errorf("dol: corrupt codebook v2 count")
	}
	data = data[n:]
	*cb = Codebook{
		numSubjects: int(ns),
		index:       make(map[string]Code),
	}
	for i := uint64(0); i < count; i++ {
		tag, n := binary.Uvarint(data)
		if n <= 0 {
			return fmt.Errorf("dol: corrupt codebook v2 row %d tag", i)
		}
		data = data[n:]
		var b *bitset.Bitset
		switch tag {
		case rowFreed:
			cb.entries = append(cb.entries, nil)
			cb.refs = append(cb.refs, 0)
			cb.free = append(cb.free, Code(i))
			continue
		case rowDense:
			sz, n := binary.Uvarint(data)
			if n <= 0 {
				return fmt.Errorf("dol: corrupt codebook v2 row %d size", i)
			}
			data = data[n:]
			if uint64(len(data)) < sz {
				return fmt.Errorf("dol: truncated codebook v2 row %d", i)
			}
			b = new(bitset.Bitset)
			if err := b.UnmarshalBinary(data[:sz]); err != nil {
				return err
			}
			data = data[sz:]
		case rowRuns:
			runs, rest, err := bitset.DecodeRuns(data, uint32(ns))
			if err != nil {
				return fmt.Errorf("dol: codebook v2 row %d: %w", i, err)
			}
			data = rest
			b = bitset.FromRuns(int(ns), runs)
		default:
			return fmt.Errorf("dol: unknown codebook v2 row tag %d", tag)
		}
		refs, n := binary.Uvarint(data)
		if n <= 0 {
			return fmt.Errorf("dol: corrupt refcount for v2 row %d", i)
		}
		data = data[n:]
		cb.entries = append(cb.entries, b)
		cb.refs = append(cb.refs, int(refs))
		key := b.Key()
		if _, ok := cb.index[key]; !ok {
			cb.index[key] = Code(i)
		}
	}
	return nil
}
