package dol

import (
	"fmt"

	"dolxml/internal/bitset"
)

// RunCodebook is the sparse twin of Codebook: entries are run-length lists
// of set subject bits instead of dense words, interned by their compact run
// encoding. A dense codebook row costs subjects/8 bytes no matter how
// correlated the population is, which makes the paper's million-subject
// regime unmeasurable (10⁶ subjects × thousands of entries is gigabytes of
// bitsets and Key() churn). Group-correlated ACLs are a handful of runs, so
// the sparse form holds the same dictionary in a few bytes per entry and
// lets the scaling experiments build real codebooks at 10⁶ subjects.
//
// The API mirrors the subset of Codebook the experiments need: interning,
// reference counting with slot reuse, and membership tests. It is not
// concurrency-safe.
type RunCodebook struct {
	numSubjects int
	entries     [][]bitset.Run // code -> runs; nil for freed (empty ACL is []bitset.Run{})
	refs        []int
	index       map[string]Code // run-encoding key -> code
	free        []Code
	// Aggregate row-shape accounting, maintained incrementally so the
	// scaling sweep can report row width without a full scan.
	liveRuns  int64 // sum of len(runs) over live entries
	liveBytes int64 // sum of encoded row bytes over live entries
	maxRuns   int   // widest row ever interned (monotone)
}

// NewRunCodebook returns an empty sparse codebook over numSubjects subjects.
func NewRunCodebook(numSubjects int) *RunCodebook {
	if numSubjects < 0 {
		panic("dol: negative subject count")
	}
	return &RunCodebook{
		numSubjects: numSubjects,
		index:       make(map[string]Code),
	}
}

// NumSubjects returns the subject dimension of the codebook.
func (cb *RunCodebook) NumSubjects() int { return cb.numSubjects }

// Len returns the number of live entries.
func (cb *RunCodebook) Len() int { return len(cb.entries) - len(cb.free) }

// Cap returns the number of code slots ever issued (live + freed).
func (cb *RunCodebook) Cap() int { return len(cb.entries) }

// Intern returns the code for the ACL described by the sorted, maximal run
// list, adding an entry with reference count zero if it is new. The runs
// are copied; the caller may reuse its slice.
func (cb *RunCodebook) Intern(runs []bitset.Run) Code {
	key := string(bitset.AppendRuns(nil, runs))
	if c, ok := cb.index[key]; ok {
		return c
	}
	stored := make([]bitset.Run, len(runs))
	copy(stored, runs)
	var c Code
	if n := len(cb.free); n > 0 {
		c = cb.free[n-1]
		cb.free = cb.free[:n-1]
		cb.entries[c] = stored
		cb.refs[c] = 0
	} else {
		c = Code(len(cb.entries))
		cb.entries = append(cb.entries, stored)
		cb.refs = append(cb.refs, 0)
	}
	cb.index[key] = c
	cb.liveRuns += int64(len(stored))
	cb.liveBytes += int64(len(key))
	if len(stored) > cb.maxRuns {
		cb.maxRuns = len(stored)
	}
	return c
}

// WithBit returns the code for entry c's ACL plus subject bit s, interning
// it if new. When s is already granted by c it returns c itself.
func (cb *RunCodebook) WithBit(c Code, s int) Code {
	if s < 0 || s >= cb.numSubjects {
		panic(fmt.Sprintf("dol: WithBit(%d) out of range [0,%d)", s, cb.numSubjects))
	}
	runs := cb.runs(c)
	next := bitset.AddRunBit(runs, uint32(s))
	if len(next) == len(runs) && (len(runs) == 0 || &next[0] == &runs[0]) {
		return c
	}
	return cb.Intern(next)
}

// Retain increments the reference count of code c.
func (cb *RunCodebook) Retain(c Code) { cb.refs[c]++ }

// Release decrements the reference count of code c, freeing the entry when
// it reaches zero.
func (cb *RunCodebook) Release(c Code) {
	if cb.refs[c] <= 0 {
		panic(fmt.Sprintf("dol: release of unreferenced sparse code %d", c))
	}
	cb.refs[c]--
	if cb.refs[c] == 0 {
		key := string(bitset.AppendRuns(nil, cb.entries[c]))
		delete(cb.index, key)
		cb.liveRuns -= int64(len(cb.entries[c]))
		cb.liveBytes -= int64(len(key))
		cb.entries[c] = nil
		cb.free = append(cb.free, c)
	}
}

// Refs returns the reference count of code c (0 for freed codes).
func (cb *RunCodebook) Refs(c Code) int { return cb.refs[c] }

func (cb *RunCodebook) runs(c Code) []bitset.Run {
	if int(c) >= len(cb.entries) || cb.entries[c] == nil {
		panic(fmt.Sprintf("dol: lookup of dead sparse code %d", c))
	}
	return cb.entries[c]
}

// Runs returns the run list for code c. The returned slice is shared;
// callers must not modify it.
func (cb *RunCodebook) Runs(c Code) []bitset.Run { return cb.runs(c) }

// ACL materializes code c as a dense bitset; intended for cross-checks
// against the dense Codebook at small scale, not for the hot path.
func (cb *RunCodebook) ACL(c Code) *bitset.Bitset {
	return bitset.FromRuns(cb.numSubjects, cb.runs(c))
}

// Accessible reports whether subject s is granted by code c.
func (cb *RunCodebook) Accessible(c Code, s int) bool {
	return s >= 0 && s < cb.numSubjects && bitset.TestRun(cb.runs(c), uint32(s))
}

// SparseBytes returns the encoded size of the live entries — the row bytes
// a v2 sparse serialization would pay.
func (cb *RunCodebook) SparseBytes() int64 { return cb.liveBytes }

// DenseBytes returns what the same dictionary would cost as dense rows, one
// bit per subject per live entry — the Codebook.Bytes arithmetic.
func (cb *RunCodebook) DenseBytes() int64 {
	return int64(cb.Len()) * int64((cb.numSubjects+7)/8)
}

// LiveRuns returns the total run count across live entries.
func (cb *RunCodebook) LiveRuns() int64 { return cb.liveRuns }

// MaxRuns returns the widest (most runs) row ever interned.
func (cb *RunCodebook) MaxRuns() int { return cb.maxRuns }
