package dol

import (
	"math/rand"
	"testing"

	"dolxml/internal/acl"
	"dolxml/internal/bitset"
	"dolxml/internal/nok"
	"dolxml/internal/storage"
	"dolxml/internal/xmltree"
)

// benchStore builds a store with a wide random doc and many subjects (long
// codebook bitsets), so access decisions cost real bitset intersections.
// With coarse set, rights are granted on whole subtrees (the paper's
// correlated-ACL setting: few transitions, uniform pages); otherwise every
// node draws independently (many codes, mixed pages).
func benchStore(b *testing.B, nodes, subjects int, coarse bool) (*SecureStore, *bitset.Bitset) {
	b.Helper()
	rng := rand.New(rand.NewSource(42))
	bld := xmltree.NewBuilder()
	bld.Begin("r")
	open := 1
	for i := 1; i < nodes; i++ {
		for open > 1 && rng.Intn(3) == 0 {
			bld.End()
			open--
		}
		bld.Begin([]string{"x", "y", "z", "w"}[rng.Intn(4)])
		open++
	}
	for ; open > 0; open-- {
		bld.End()
	}
	doc := bld.MustFinish()
	m := acl.NewMatrix(doc.Len(), subjects)
	if coarse {
		for k := 0; k < 40; k++ {
			root := xmltree.NodeID(rng.Intn(doc.Len()))
			s := acl.SubjectID(rng.Intn(subjects))
			for n := root; n <= doc.End(root); n++ {
				m.Set(n, s, true)
			}
		}
	} else {
		for n := 0; n < doc.Len(); n++ {
			for s := 0; s < subjects; s++ {
				if rng.Intn(5) > 0 {
					m.Set(xmltree.NodeID(n), acl.SubjectID(s), true)
				}
			}
		}
	}
	pool := storage.NewBufferPool(storage.NewMemPager(512), 4096)
	ss, err := BuildSecureStore(pool, doc, m, nok.BuildOptions{})
	if err != nil {
		b.Fatal(err)
	}
	return ss, bitset.FromIndices(subjects, 0, subjects/2, subjects-1)
}

// BenchmarkAccessibleAnyNoCache resolves access decisions through the
// codebook directly: one ACL lookup and bitset intersection per check. The
// node→code resolution (identical on both paths) is excluded so the
// benchmark isolates exactly the work the decision cache replaces.
func BenchmarkAccessibleAnyNoCache(b *testing.B) {
	ss, eff := benchStore(b, 4000, 2048, false)
	cb := ss.Codebook()
	codes := liveCodes(cb)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cb.AccessibleAny(codes[i%len(codes)], eff)
	}
}

// BenchmarkAccessibleAnyCached is the same decision through a warm
// SubjectView cache: one atomic load per check instead of an intersection.
func BenchmarkAccessibleAnyCached(b *testing.B) {
	ss, eff := benchStore(b, 4000, 2048, false)
	view := ss.View(eff)
	codes := liveCodes(ss.Codebook())
	ca := view.cacheFor()
	for _, c := range codes { // warm every decision cell
		view.accessibleCode(ca, c)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		view.accessibleCode(ca, codes[i%len(codes)])
	}
}

// liveCodes enumerates the codebook's live codes via the store directory.
func liveCodes(cb *Codebook) []Code {
	seen := map[Code]bool{}
	var out []Code
	for c := Code(0); int(c) < cb.Cap(); c++ {
		if cb.Refs(c) > 0 && !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	return out
}

// BenchmarkSkipPageNoCache evaluates §3.3 page skipping through the
// directory + codebook on every probe: for a uniform inaccessible page
// that is a full-width bitset intersection per probe.
func BenchmarkSkipPageNoCache(b *testing.B) {
	ss, eff := benchStore(b, 4000, 2048, true)
	pages := ss.Store().NumPages()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ss.PageFullyInaccessible(i%pages, eff)
	}
}

// BenchmarkSkipPageCached probes the view's lazily-built deny bitmap.
func BenchmarkSkipPageCached(b *testing.B) {
	ss, eff := benchStore(b, 4000, 2048, true)
	view := ss.View(eff)
	pages := ss.Store().NumPages()
	view.SkipPage(0) // build the bitmap outside the timed loop
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		view.SkipPage(i % pages)
	}
}
