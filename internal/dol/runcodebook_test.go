package dol

import (
	"encoding/binary"
	"math/rand"
	"testing"

	"dolxml/internal/bitset"
)

func TestRunCodebookInternDedup(t *testing.T) {
	cb := NewRunCodebook(1000)
	a := cb.Intern([]bitset.Run{{Start: 0, Len: 100}})
	b := cb.Intern([]bitset.Run{{Start: 0, Len: 100}})
	if a != b {
		t.Fatalf("identical run lists interned as %d and %d", a, b)
	}
	c := cb.Intern([]bitset.Run{{Start: 0, Len: 101}})
	if c == a {
		t.Fatal("distinct run lists shared a code")
	}
	empty := cb.Intern(nil)
	if cb.Len() != 3 {
		t.Fatalf("Len = %d, want 3", cb.Len())
	}
	if cb.Accessible(a, 99) != true || cb.Accessible(a, 100) != false {
		t.Fatal("Accessible disagrees with run bounds")
	}
	if cb.Accessible(empty, 0) {
		t.Fatal("empty ACL grants subject 0")
	}
}

func TestRunCodebookWithBitOracle(t *testing.T) {
	const n = 500
	rng := rand.New(rand.NewSource(3))
	cb := NewRunCodebook(n)
	dense := bitset.New(n)
	c := cb.Intern(nil)
	cb.Retain(c)
	for step := 0; step < 400; step++ {
		s := rng.Intn(n)
		next := cb.WithBit(c, s)
		if dense.Test(s) {
			if next != c {
				t.Fatalf("step %d: WithBit of set bit %d changed code %d -> %d", step, s, c, next)
			}
			continue
		}
		dense.Set(s)
		cb.Retain(next)
		cb.Release(c)
		c = next
		if !cb.ACL(c).EqualBits(dense) {
			t.Fatalf("step %d: sparse ACL diverged from dense oracle", step)
		}
		for _, probe := range []int{0, s - 1, s, s + 1, n - 1} {
			if probe < 0 || probe >= n {
				continue
			}
			if cb.Accessible(c, probe) != dense.Test(probe) {
				t.Fatalf("step %d: Accessible(%d) = %v, oracle %v", step, probe, !dense.Test(probe), dense.Test(probe))
			}
		}
	}
	// The chain released every superseded prefix set: exactly the final
	// entry (plus nothing else) stays live.
	if cb.Len() != 1 {
		t.Fatalf("Len = %d after chained WithBit, want 1 (slot reuse broken)", cb.Len())
	}
}

func TestRunCodebookReleaseReusesSlots(t *testing.T) {
	cb := NewRunCodebook(100)
	a := cb.Intern([]bitset.Run{{Start: 1, Len: 2}})
	cb.Retain(a)
	cb.Release(a)
	if cb.Len() != 0 || cb.SparseBytes() != 0 || cb.LiveRuns() != 0 {
		t.Fatalf("free of last ref left Len=%d bytes=%d runs=%d", cb.Len(), cb.SparseBytes(), cb.LiveRuns())
	}
	b := cb.Intern([]bitset.Run{{Start: 5, Len: 1}})
	if b != a {
		t.Fatalf("freed slot %d not reused (got %d)", a, b)
	}
	if cb.Cap() != 1 {
		t.Fatalf("Cap = %d, want 1", cb.Cap())
	}
}

func TestRunCodebookStats(t *testing.T) {
	cb := NewRunCodebook(1 << 20)
	runs := []bitset.Run{{Start: 0, Len: 4096}, {Start: 500000, Len: 2}}
	c := cb.Intern(runs)
	cb.Retain(c)
	if got, want := cb.SparseBytes(), int64(len(bitset.AppendRuns(nil, runs))); got != want {
		t.Fatalf("SparseBytes = %d, want %d", got, want)
	}
	if got, want := cb.DenseBytes(), int64((1<<20)/8); got != want {
		t.Fatalf("DenseBytes = %d, want %d", got, want)
	}
	if cb.MaxRuns() != 2 || cb.LiveRuns() != 2 {
		t.Fatalf("MaxRuns=%d LiveRuns=%d, want 2/2", cb.MaxRuns(), cb.LiveRuns())
	}
	if cb.DenseBytes() < 1000*cb.SparseBytes() {
		t.Fatalf("sparse row not materially smaller: dense=%d sparse=%d", cb.DenseBytes(), cb.SparseBytes())
	}
}

// TestCodebookV2SparseRoundTrip exercises the version-2 framing: a
// wide-population codebook with run-friendly rows must serialize sparsely,
// decode back to the same dictionary, and shrink materially vs dense rows.
func TestCodebookV2SparseRoundTrip(t *testing.T) {
	const n = 100000
	cb := NewCodebook(n)
	row := func(b *bitset.Bitset) Code {
		c := cb.Intern(b)
		cb.Retain(c)
		return c
	}
	g1 := bitset.New(n)
	g1.SetRange(0, 5000)
	row(g1)
	g2 := bitset.New(n)
	g2.SetRange(40000, 41000)
	g2.Set(99999)
	row(g2)
	freed := cb.Intern(bitset.FromIndices(n, 7))
	cb.Retain(freed)
	cb.Release(freed) // leaves a freed slot in the stream
	data, err := cb.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if magic, _ := binary.Uvarint(data); magic != codebookV2Magic {
		t.Fatalf("wide codebook did not use the v2 framing (leading uvarint %d)", magic)
	}
	if len(data) > 1024 {
		t.Fatalf("sparse serialization is %d bytes; dense rows would be ~%d", len(data), cb.Bytes())
	}
	var back Codebook
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if back.NumSubjects() != n || back.Len() != cb.Len() || back.Cap() != cb.Cap() {
		t.Fatalf("round-trip shape: subjects=%d len=%d cap=%d", back.NumSubjects(), back.Len(), back.Cap())
	}
	for c := 0; c < cb.Cap(); c++ {
		if cb.entries[c] == nil {
			if back.entries[c] != nil {
				t.Fatalf("code %d: freed slot resurrected", c)
			}
			continue
		}
		if !back.entries[c].Equal(cb.entries[c]) {
			t.Fatalf("code %d: ACL changed across round-trip", c)
		}
		if back.Refs(Code(c)) != cb.Refs(Code(c)) {
			t.Fatalf("code %d: refs %d -> %d", c, cb.Refs(Code(c)), back.Refs(Code(c)))
		}
	}
	// Re-marshal is a byte fixpoint.
	again, err := back.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != string(data) {
		t.Fatal("v2 marshal is not a fixpoint")
	}
}

// TestCodebookSmallStaysV1 pins the compatibility promise: populations
// under the sparse threshold keep the version-1 bytes.
func TestCodebookSmallStaysV1(t *testing.T) {
	cb := NewCodebook(8)
	c := cb.Intern(mustBits("10100000"))
	cb.Retain(c)
	data, err := cb.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if ns, _ := binary.Uvarint(data); ns != 8 {
		t.Fatalf("small codebook no longer opens with its subject count (got %d)", ns)
	}
	var back Codebook
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if back.Len() != 1 || !back.ACL(c).EqualBits(cb.ACL(c)) {
		t.Fatal("v1 round-trip broken")
	}
}

// TestCodebookV2DenseFallback pins that incompressible wide rows stay
// dense inside the v2 framing and still round-trip.
func TestCodebookV2DenseFallback(t *testing.T) {
	const n = 2048
	rng := rand.New(rand.NewSource(9))
	cb := NewCodebook(n)
	noisy := bitset.New(n)
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 0 {
			noisy.Set(i)
		}
	}
	nc := cb.Intern(noisy)
	cb.Retain(nc)
	sparse := bitset.New(n)
	sparse.SetRange(0, 64)
	sc := cb.Intern(sparse)
	cb.Retain(sc)
	data, err := cb.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if magic, _ := binary.Uvarint(data); magic != codebookV2Magic {
		t.Fatal("mixed codebook should use v2 framing")
	}
	var back Codebook
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if !back.ACL(nc).EqualBits(noisy) || !back.ACL(sc).EqualBits(sparse) {
		t.Fatal("mixed dense/sparse rows did not round-trip")
	}
}
