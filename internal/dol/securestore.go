package dol

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"dolxml/internal/acl"
	"dolxml/internal/bitset"
	"dolxml/internal/nok"
	"dolxml/internal/obs"
	"dolxml/internal/storage"
	"dolxml/internal/xmltree"
)

// SecureStore is the physical DOL representation (§3): a NoK structure
// store with embedded transition codes, per-block access headers mirrored
// in the in-memory page directory, and the codebook in memory.
type SecureStore struct {
	store *nok.Store
	cb    *Codebook
	// cbShared marks the codebook as shared with a frozen clone (see
	// Freeze); the next mutation must go through WillMutate to clone it
	// first. Only the owning writer touches it.
	cbShared bool

	// stats is shared by the live store and every frozen clone, so view
	// counters registered once keep counting across snapshots.
	stats *viewStats
}

// viewStats holds the view-layer counters, registered under view_* via
// RegisterMetrics. checks counts memoized access-decision lookups,
// decisions the slow-path codebook intersections behind them, bitmapBuilds
// the per-view page-deny bitmap constructions.
type viewStats struct {
	checks       obs.Counter
	decisions    obs.Counter
	bitmapBuilds obs.Counter
}

// BuildSecureStore labels doc with the accessibility matrix m and writes
// the combined structure + access control representation into blocks from
// pool in a single document-order pass.
func BuildSecureStore(pool *storage.BufferPool, doc *xmltree.Document, m *acl.Matrix, opts nok.BuildOptions) (*SecureStore, error) {
	if m.NumNodes() != doc.Len() {
		return nil, fmt.Errorf("dol: matrix covers %d nodes, document has %d", m.NumNodes(), doc.Len())
	}
	lab := FromMatrix(m)
	opts.Codes = lab
	st, err := nok.Build(pool, doc, opts)
	if err != nil {
		return nil, err
	}
	ss := &SecureStore{store: st, cb: lab.Codebook(), stats: &viewStats{}}
	// Establish the reference-count invariant refs(code) = #headers +
	// #inline entries carrying it. The stream builder retained one
	// reference per logical transition; blocks store block-first
	// transition codes in their headers instead of inline, so transfer
	// those references to the headers and add header references for
	// blocks whose first node is not a transition.
	for i := 0; i < st.NumPages(); i++ {
		pi := st.PageInfoAt(i)
		ss.cb.Retain(pi.AccessCode)
		if lab.IsTransition(pi.FirstNode) {
			ss.cb.Release(lab.CodeInForce(pi.FirstNode))
		}
	}
	return ss, nil
}

// OpenSecureStore wraps an existing NoK store (reopened via nok.Open) and
// its codebook.
func OpenSecureStore(store *nok.Store, cb *Codebook) *SecureStore {
	return &SecureStore{store: store, cb: cb, stats: &viewStats{}}
}

// Store returns the underlying NoK structure store.
func (ss *SecureStore) Store() *nok.Store { return ss.store }

// Freeze returns a read-only clone over the given frozen NoK store,
// sharing the codebook and the view counters. The live store's next
// codebook mutation must go through WillMutate, which clones the codebook
// so the frozen view keeps its exact access state. The clone must not be
// mutated.
func (ss *SecureStore) Freeze(frozen *nok.Store) *SecureStore {
	ss.cbShared = true
	return &SecureStore{store: frozen, cb: ss.cb, cbShared: true, stats: ss.stats}
}

// WillMutate prepares the store for a codebook mutation: if the codebook is
// shared with a frozen clone it is deep-copied first (carrying entries,
// refcounts and generation), so in-place Intern/Retain/Release/AddSubject
// mutations never reach a published snapshot. The codebook is compact by
// design (the paper's central claim), so the copy is cheap relative to the
// page writes of any update.
func (ss *SecureStore) WillMutate() {
	if ss.cbShared {
		ss.cb = ss.cb.Clone()
		ss.cbShared = false
	}
}

// RegisterMetrics registers the view-layer counters with reg under prefix
// (prefix "view" yields view_checks, view_decisions_computed,
// view_bitmap_builds). Codebook-shape gauges are the facade's concern: it
// reads them off its current snapshot so exports never race an update.
func (ss *SecureStore) RegisterMetrics(reg *obs.Registry, prefix string) error {
	for _, m := range []struct {
		name, help string
		c          *obs.Counter
	}{
		{"checks", "Node accessibility checks answered.", &ss.stats.checks},
		{"decisions_computed", "Access decisions computed from the codebook.", &ss.stats.decisions},
		{"bitmap_builds", "Page deny-bitmaps materialized.", &ss.stats.bitmapBuilds},
	} {
		if err := reg.RegisterCounter(prefix+"_"+m.name, m.c); err != nil {
			return err
		}
		reg.SetHelp(prefix+"_"+m.name, m.help)
	}
	return nil
}

// Codebook returns the in-memory codebook.
func (ss *SecureStore) Codebook() *Codebook { return ss.cb }

// Accessible reports whether subject s may access node n: locate the
// governing transition code within n's block and test bit s of the
// codebook entry (§3.3). When n's block is already buffered the check
// costs no physical I/O.
func (ss *SecureStore) Accessible(n xmltree.NodeID, s acl.SubjectID) (bool, error) {
	c, err := ss.store.AccessCodeAt(n)
	if err != nil {
		return false, err
	}
	return ss.cb.Accessible(c, s), nil
}

// AccessibleAny reports whether any subject of the effective set may
// access node n.
func (ss *SecureStore) AccessibleAny(n xmltree.NodeID, effective *bitset.Bitset) (bool, error) {
	c, err := ss.store.AccessCodeAt(n)
	if err != nil {
		return false, err
	}
	return ss.cb.AccessibleAny(c, effective), nil
}

// PageFullyInaccessible reports, using only the in-memory page directory,
// whether every node in block pageIdx is inaccessible to the effective
// subject set — the page-skipping test of §3.3: the header's starting code
// denies access and the change bit is clear.
func (ss *SecureStore) PageFullyInaccessible(pageIdx int, effective *bitset.Bitset) bool {
	pi := ss.store.PageInfoAt(pageIdx)
	if pi.ChangeBit {
		return false
	}
	return !ss.cb.AccessibleAny(pi.AccessCode, effective)
}

// PageFullyInaccessibleTo is PageFullyInaccessible for a single subject.
func (ss *SecureStore) PageFullyInaccessibleTo(pageIdx int, s acl.SubjectID) bool {
	pi := ss.store.PageInfoAt(pageIdx)
	if pi.ChangeBit {
		return false
	}
	return !ss.cb.Accessible(pi.AccessCode, s)
}

// SubjectView binds a SecureStore to one effective subject set, giving the
// single-argument access predicate the secure query evaluator consumes.
//
// A view memoizes its access decisions: the first lookup of each distinct
// DOL code pays one codebook intersection; every later node governed by the
// same code is a table lookup. A lazily built per-page bitmap likewise
// reduces the §3.3 page-skipping test to a single bit probe. Both caches key
// themselves by the codebook's mutation generation, so a view observed
// across updates transparently rebuilds rather than serving stale
// decisions. Views are safe for concurrent readers; updates to the
// underlying store must not run concurrently with view reads (securexml
// serializes them behind its store lock).
type SubjectView struct {
	ss        *SecureStore
	effective *bitset.Bitset
	cache     atomic.Pointer[viewCache]
}

// decision-cache cell states; the zero state means "not yet computed".
const (
	decUnknown uint32 = iota
	decAllow
	decDeny
)

// viewCache is one generation's worth of memoized decisions. It is replaced
// wholesale (never mutated structurally) when the codebook generation moves.
type viewCache struct {
	gen uint64
	// decisions[c] holds the memoized accessibility of code c.
	decisions []atomic.Uint32
	// pageOnce guards the lazy build of pageDeny, a bitmap with bit i set
	// when block i is wholly inaccessible to the view's subject set.
	pageOnce sync.Once
	pageDeny []uint64
}

// cacheFor returns the current-generation cache, building a fresh one when
// the codebook has mutated since the last lookup. Concurrent callers may
// race to install the same generation; any winner is correct.
func (v *SubjectView) cacheFor() *viewCache {
	cb := v.ss.cb
	gen := cb.Gen()
	if c := v.cache.Load(); c != nil && c.gen == gen {
		return c
	}
	c := &viewCache{gen: gen, decisions: make([]atomic.Uint32, cb.Cap())}
	v.cache.Store(c)
	return c
}

// accessibleCode resolves the access decision for code c through the cache.
func (v *SubjectView) accessibleCode(ca *viewCache, c Code) bool {
	v.ss.stats.checks.Inc()
	if int(c) < len(ca.decisions) {
		switch ca.decisions[c].Load() {
		case decAllow:
			return true
		case decDeny:
			return false
		}
	}
	v.ss.stats.decisions.Inc()
	ok := v.ss.cb.AccessibleAny(c, v.effective)
	if int(c) < len(ca.decisions) {
		if ok {
			ca.decisions[c].Store(decAllow)
		} else {
			ca.decisions[c].Store(decDeny)
		}
	}
	return ok
}

// buildPageBitmap fills ca.pageDeny from the in-memory page directory: bit
// i is set exactly when PageFullyInaccessible(i) holds. One pass over the
// directory (no I/O) turns every later SkipPage call into a bit probe.
func (v *SubjectView) buildPageBitmap(ca *viewCache) {
	v.ss.stats.bitmapBuilds.Inc()
	st := v.ss.store
	n := st.NumPages()
	bits := make([]uint64, (n+63)/64)
	for i := 0; i < n; i++ {
		pi := st.PageInfoAt(i)
		if !pi.ChangeBit && !v.accessibleCode(ca, pi.AccessCode) {
			bits[i/64] |= 1 << uint(i%64)
		}
	}
	ca.pageDeny = bits
}

// View returns a SubjectView for the given effective subject set (a user's
// own subject plus their transitive groups; see acl.Directory).
func (ss *SecureStore) View(effective *bitset.Bitset) *SubjectView {
	return &SubjectView{ss: ss, effective: effective}
}

// ViewSubject returns a SubjectView for a single subject.
func (ss *SecureStore) ViewSubject(s acl.SubjectID) *SubjectView {
	return ss.View(bitset.FromIndices(ss.cb.NumSubjects(), int(s)))
}

// Accessible reports whether the view's subject set may access node n. The
// governing code is located in n's block as usual (§3.3); the codebook
// intersection is memoized per distinct code.
func (v *SubjectView) Accessible(n xmltree.NodeID) (bool, error) {
	return v.AccessibleCtx(context.Background(), n)
}

// AccessibleCtx is Accessible with cancellation: the code lookup honors the
// context at its page-fetch boundary, so a cancelled query stops without
// pinning n's block.
func (v *SubjectView) AccessibleCtx(ctx context.Context, n xmltree.NodeID) (bool, error) {
	c, err := v.ss.store.AccessCodeAtCtx(ctx, n)
	if err != nil {
		return false, err
	}
	return v.accessibleCode(v.cacheFor(), c), nil
}

// SkipPage reports, from the in-memory directory alone, that every node of
// block pageIdx is inaccessible to the view's subject set. The answer comes
// from a lazily built per-view bitmap, so the per-sibling-step test during
// ε-NoK scans is a single bit probe.
func (v *SubjectView) SkipPage(pageIdx int) bool {
	ca := v.cacheFor()
	ca.pageOnce.Do(func() { v.buildPageBitmap(ca) })
	if pageIdx < 0 || pageIdx >= len(ca.pageDeny)*64 {
		return false
	}
	return ca.pageDeny[pageIdx/64]&(1<<uint(pageIdx%64)) != 0
}

// PageDenyBits returns the view's page-deny bitmap — bit i set exactly when
// block i is wholly inaccessible to the view's subject set — building it on
// first use. The slice is shared with the view's cache and must be treated
// as read-only; it reflects the codebook generation current at the call, so
// callers that must stay consistent across store updates should re-fetch it
// per query (securexml's store lock already guarantees this).
func (v *SubjectView) PageDenyBits() []uint64 {
	ca := v.cacheFor()
	ca.pageOnce.Do(func() { v.buildPageBitmap(ca) })
	return ca.pageDeny
}

// CodeAllowed resolves the view's access decision for a bare code, through
// the same memoized cache AccessibleCtx uses, with no I/O. The path-summary
// compiler uses it to pre-resolve whole path classes whose occurrences all
// share one code.
func (v *SubjectView) CodeAllowed(c Code) bool {
	return v.accessibleCode(v.cacheFor(), c)
}

// InvalidateCache drops the view's memoized decisions. It is not normally
// needed — caches self-invalidate via the codebook generation — but lets
// callers that bypass the codebook release memory eagerly.
func (v *SubjectView) InvalidateCache() { v.cache.Store(nil) }

// Effective returns the view's effective subject set (shared; read-only).
func (v *SubjectView) Effective() *bitset.Bitset { return v.effective }

// Store returns the view's secure store.
func (v *SubjectView) Store() *SecureStore { return v.ss }

// Matrix reconstructs the accessibility matrix encoded in the physical
// representation by streaming every block; used by tests and consistency
// checks.
func (ss *SecureStore) Matrix() (*acl.Matrix, error) {
	m := acl.NewMatrix(ss.store.NumNodes(), ss.cb.NumSubjects())
	err := ss.store.WalkSubtree(0, func(ni nok.NodeInfo) bool {
		m.SetRow(ni.ID, ss.cb.ACL(ni.Code))
		return true
	})
	if err != nil {
		return nil, err
	}
	return m, nil
}

// TransitionCount returns the number of embedded transition entries plus
// block-initial codes, the physical analogue of Labeling.NumTransitions.
func (ss *SecureStore) TransitionCount() (int, error) {
	count := 0
	var prev Code
	first := true
	err := ss.store.WalkSubtree(0, func(ni nok.NodeInfo) bool {
		if first || ni.Code != prev {
			count++
		}
		prev = ni.Code
		first = false
		return true
	})
	if err != nil {
		return 0, err
	}
	return count, nil
}
