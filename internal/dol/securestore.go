package dol

import (
	"fmt"

	"dolxml/internal/acl"
	"dolxml/internal/bitset"
	"dolxml/internal/nok"
	"dolxml/internal/storage"
	"dolxml/internal/xmltree"
)

// SecureStore is the physical DOL representation (§3): a NoK structure
// store with embedded transition codes, per-block access headers mirrored
// in the in-memory page directory, and the codebook in memory.
type SecureStore struct {
	store *nok.Store
	cb    *Codebook
}

// BuildSecureStore labels doc with the accessibility matrix m and writes
// the combined structure + access control representation into blocks from
// pool in a single document-order pass.
func BuildSecureStore(pool *storage.BufferPool, doc *xmltree.Document, m *acl.Matrix, opts nok.BuildOptions) (*SecureStore, error) {
	if m.NumNodes() != doc.Len() {
		return nil, fmt.Errorf("dol: matrix covers %d nodes, document has %d", m.NumNodes(), doc.Len())
	}
	lab := FromMatrix(m)
	opts.Codes = lab
	st, err := nok.Build(pool, doc, opts)
	if err != nil {
		return nil, err
	}
	ss := &SecureStore{store: st, cb: lab.Codebook()}
	// Establish the reference-count invariant refs(code) = #headers +
	// #inline entries carrying it. The stream builder retained one
	// reference per logical transition; blocks store block-first
	// transition codes in their headers instead of inline, so transfer
	// those references to the headers and add header references for
	// blocks whose first node is not a transition.
	for i := 0; i < st.NumPages(); i++ {
		pi := st.PageInfoAt(i)
		ss.cb.Retain(pi.AccessCode)
		if lab.IsTransition(pi.FirstNode) {
			ss.cb.Release(lab.CodeInForce(pi.FirstNode))
		}
	}
	return ss, nil
}

// OpenSecureStore wraps an existing NoK store (reopened via nok.Open) and
// its codebook.
func OpenSecureStore(store *nok.Store, cb *Codebook) *SecureStore {
	return &SecureStore{store: store, cb: cb}
}

// Store returns the underlying NoK structure store.
func (ss *SecureStore) Store() *nok.Store { return ss.store }

// Codebook returns the in-memory codebook.
func (ss *SecureStore) Codebook() *Codebook { return ss.cb }

// Accessible reports whether subject s may access node n: locate the
// governing transition code within n's block and test bit s of the
// codebook entry (§3.3). When n's block is already buffered the check
// costs no physical I/O.
func (ss *SecureStore) Accessible(n xmltree.NodeID, s acl.SubjectID) (bool, error) {
	c, err := ss.store.AccessCodeAt(n)
	if err != nil {
		return false, err
	}
	return ss.cb.Accessible(c, s), nil
}

// AccessibleAny reports whether any subject of the effective set may
// access node n.
func (ss *SecureStore) AccessibleAny(n xmltree.NodeID, effective *bitset.Bitset) (bool, error) {
	c, err := ss.store.AccessCodeAt(n)
	if err != nil {
		return false, err
	}
	return ss.cb.AccessibleAny(c, effective), nil
}

// PageFullyInaccessible reports, using only the in-memory page directory,
// whether every node in block pageIdx is inaccessible to the effective
// subject set — the page-skipping test of §3.3: the header's starting code
// denies access and the change bit is clear.
func (ss *SecureStore) PageFullyInaccessible(pageIdx int, effective *bitset.Bitset) bool {
	pi := ss.store.PageInfoAt(pageIdx)
	if pi.ChangeBit {
		return false
	}
	return !ss.cb.AccessibleAny(pi.AccessCode, effective)
}

// PageFullyInaccessibleTo is PageFullyInaccessible for a single subject.
func (ss *SecureStore) PageFullyInaccessibleTo(pageIdx int, s acl.SubjectID) bool {
	pi := ss.store.PageInfoAt(pageIdx)
	if pi.ChangeBit {
		return false
	}
	return !ss.cb.Accessible(pi.AccessCode, s)
}

// SubjectView binds a SecureStore to one effective subject set, giving the
// single-argument access predicate the secure query evaluator consumes.
type SubjectView struct {
	ss        *SecureStore
	effective *bitset.Bitset
}

// View returns a SubjectView for the given effective subject set (a user's
// own subject plus their transitive groups; see acl.Directory).
func (ss *SecureStore) View(effective *bitset.Bitset) *SubjectView {
	return &SubjectView{ss: ss, effective: effective}
}

// ViewSubject returns a SubjectView for a single subject.
func (ss *SecureStore) ViewSubject(s acl.SubjectID) *SubjectView {
	return ss.View(bitset.FromIndices(ss.cb.NumSubjects(), int(s)))
}

// Accessible reports whether the view's subject set may access node n.
func (v *SubjectView) Accessible(n xmltree.NodeID) (bool, error) {
	return v.ss.AccessibleAny(n, v.effective)
}

// SkipPage reports, from the in-memory directory alone, that every node of
// block pageIdx is inaccessible to the view's subject set.
func (v *SubjectView) SkipPage(pageIdx int) bool {
	return v.ss.PageFullyInaccessible(pageIdx, v.effective)
}

// Effective returns the view's effective subject set (shared; read-only).
func (v *SubjectView) Effective() *bitset.Bitset { return v.effective }

// Store returns the view's secure store.
func (v *SubjectView) Store() *SecureStore { return v.ss }

// Matrix reconstructs the accessibility matrix encoded in the physical
// representation by streaming every block; used by tests and consistency
// checks.
func (ss *SecureStore) Matrix() (*acl.Matrix, error) {
	m := acl.NewMatrix(ss.store.NumNodes(), ss.cb.NumSubjects())
	err := ss.store.WalkSubtree(0, func(ni nok.NodeInfo) bool {
		m.SetRow(ni.ID, ss.cb.ACL(ni.Code))
		return true
	})
	if err != nil {
		return nil, err
	}
	return m, nil
}

// TransitionCount returns the number of embedded transition entries plus
// block-initial codes, the physical analogue of Labeling.NumTransitions.
func (ss *SecureStore) TransitionCount() (int, error) {
	count := 0
	var prev Code
	first := true
	err := ss.store.WalkSubtree(0, func(ni nok.NodeInfo) bool {
		if first || ni.Code != prev {
			count++
		}
		prev = ni.Code
		first = false
		return true
	})
	if err != nil {
		return 0, err
	}
	return count, nil
}
