package dol

import (
	"bytes"
	"testing"

	"dolxml/internal/bitset"
)

// FuzzCodebookUnmarshal hardens the codebook decoder: arbitrary bytes must
// either fail cleanly or produce a codebook that round-trips.
func FuzzCodebookUnmarshal(f *testing.F) {
	mk := func(build func(cb *Codebook)) []byte {
		cb := NewCodebook(4)
		build(cb)
		data, err := cb.MarshalBinary()
		if err != nil {
			f.Fatal(err)
		}
		return data
	}
	f.Add(mk(func(cb *Codebook) {}))
	f.Add(mk(func(cb *Codebook) {
		c := cb.Intern(mustBits("1010"))
		cb.Retain(c)
		d := cb.Intern(mustBits("0001"))
		cb.Retain(d)
		cb.Release(d)
	}))
	f.Add([]byte{0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		var cb Codebook
		if err := cb.UnmarshalBinary(data); err != nil {
			return
		}
		out, err := cb.MarshalBinary()
		if err != nil {
			t.Fatalf("decoded codebook fails to marshal: %v", err)
		}
		var cb2 Codebook
		if err := cb2.UnmarshalBinary(out); err != nil {
			t.Fatalf("re-marshaled codebook fails to decode: %v", err)
		}
		if !bytes.Equal(out, mustMarshal(t, &cb2)) {
			t.Fatal("marshal not a fixpoint")
		}
	})
}

func mustMarshal(t *testing.T, cb *Codebook) []byte {
	t.Helper()
	data, err := cb.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func mustBits(s string) *bitset.Bitset {
	b, err := bitset.Parse(s)
	if err != nil {
		panic(err)
	}
	return b
}
