package dol

import (
	"bytes"
	"testing"

	"dolxml/internal/bitset"
)

// FuzzCodebookUnmarshal hardens the codebook decoder: arbitrary bytes must
// either fail cleanly or produce a codebook that round-trips.
func FuzzCodebookUnmarshal(f *testing.F) {
	mk := func(build func(cb *Codebook)) []byte {
		cb := NewCodebook(4)
		build(cb)
		data, err := cb.MarshalBinary()
		if err != nil {
			f.Fatal(err)
		}
		return data
	}
	f.Add(mk(func(cb *Codebook) {}))
	f.Add(mk(func(cb *Codebook) {
		c := cb.Intern(mustBits("1010"))
		cb.Retain(c)
		d := cb.Intern(mustBits("0001"))
		cb.Retain(d)
		cb.Release(d)
	}))
	f.Add([]byte{0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		var cb Codebook
		if err := cb.UnmarshalBinary(data); err != nil {
			return
		}
		out, err := cb.MarshalBinary()
		if err != nil {
			t.Fatalf("decoded codebook fails to marshal: %v", err)
		}
		var cb2 Codebook
		if err := cb2.UnmarshalBinary(out); err != nil {
			t.Fatalf("re-marshaled codebook fails to decode: %v", err)
		}
		if !bytes.Equal(out, mustMarshal(t, &cb2)) {
			t.Fatal("marshal not a fixpoint")
		}
	})
}

// FuzzCodebookMeta drives a codebook through a fuzzer-chosen op sequence
// (interning sparse and dense rows over a wide population, retains,
// releases, subject adds), then requires the serialized form — version 2
// with run-length rows once the population is wide — to decode to the same
// dictionary and re-marshal to the same bytes. The raw input is also fed
// straight to the decoder, which must fail cleanly or round-trip.
func FuzzCodebookMeta(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 0, 10, 2, 3, 40, 1, 2, 0})
	f.Add([]byte{3, 200, 200, 1, 4, 4, 4, 2, 0, 0, 1, 1, 1})
	f.Fuzz(func(t *testing.T, ops []byte) {
		const pop = 4096 // wide enough that run rows are eligible
		cb := NewCodebook(pop)
		var live []Code
		next := func(i *int) int {
			if *i >= len(ops) {
				return 0
			}
			v := int(ops[*i])
			*i++
			return v
		}
		for i := 0; i < len(ops); {
			switch next(&i) % 4 {
			case 0: // intern a run-structured row
				b := bitset.New(pop)
				nRuns := next(&i)%4 + 1
				at := 0
				for r := 0; r < nRuns; r++ {
					at += next(&i) * 7
					ln := next(&i)%97 + 1
					if at+ln > pop {
						break
					}
					b.SetRange(at, at+ln)
					at += ln + 1
				}
				c := cb.Intern(b)
				cb.Retain(c)
				live = append(live, c)
			case 1: // intern a scattered (dense-ish) row
				b := bitset.New(pop)
				for j := 0; j < next(&i); j++ {
					b.Set((j*2654435761 + next(&i)) % pop)
				}
				c := cb.Intern(b)
				cb.Retain(c)
				live = append(live, c)
			case 2: // release a live reference
				if len(live) > 0 {
					k := next(&i) % len(live)
					cb.Release(live[k])
					live = append(live[:k], live[k+1:]...)
				}
			case 3:
				cb.AddSubject()
			}
		}
		data, err := cb.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var back Codebook
		if err := back.UnmarshalBinary(data); err != nil {
			t.Fatalf("own serialization rejected: %v", err)
		}
		if back.NumSubjects() != cb.NumSubjects() || back.Len() != cb.Len() || back.Cap() != cb.Cap() {
			t.Fatalf("shape changed: subjects %d->%d len %d->%d cap %d->%d",
				cb.NumSubjects(), back.NumSubjects(), cb.Len(), back.Len(), cb.Cap(), back.Cap())
		}
		for c := 0; c < cb.Cap(); c++ {
			if cb.entries[c] == nil {
				if back.entries[c] != nil {
					t.Fatalf("code %d: freed slot decoded live", c)
				}
				continue
			}
			if back.entries[c] == nil || !back.entries[c].EqualBits(cb.entries[c]) {
				t.Fatalf("code %d: ACL changed across round-trip", c)
			}
			if back.Refs(Code(c)) != cb.Refs(Code(c)) {
				t.Fatalf("code %d: refs %d -> %d", c, cb.Refs(Code(c)), back.Refs(Code(c)))
			}
		}
		again, err := back.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(again, data) {
			t.Fatal("marshal not a fixpoint")
		}
		// Decoder hardening: the raw op bytes fed straight in must fail
		// cleanly or produce a re-marshalable book.
		var raw Codebook
		if err := raw.UnmarshalBinary(ops); err == nil {
			if _, err := raw.MarshalBinary(); err != nil {
				t.Fatalf("decoded raw input fails to marshal: %v", err)
			}
		}
	})
}

func mustMarshal(t *testing.T, cb *Codebook) []byte {
	t.Helper()
	data, err := cb.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func mustBits(s string) *bitset.Bitset {
	b, err := bitset.Parse(s)
	if err != nil {
		panic(err)
	}
	return b
}
