package query

import (
	"math/bits"

	"dolxml/internal/dol"
	"dolxml/internal/nok"
	"dolxml/internal/pathsum"
)

// compiledShape is the view-independent half of a query's compiled skip
// state: everything derivable from the pattern tree and the store's
// structural metadata alone (per-page summaries, depth bounds, path
// summary). Shapes depend only on (pattern string, ablation flags,
// snapshot), so the facade memoizes them per snapshot sequence in a
// MaskCache; per-node slices are indexed by PatternNode.id, which is
// stable across reparses of the same pattern string.
type compiledShape struct {
	// words sizes the page bitmaps.
	words int
	// emptyStruct is set when the path summary admits no embedding of the
	// pattern: the query has no answers under any view or semantics.
	emptyStruct bool
	// global holds query-wide struct dead-page bits (depth bound), nil
	// when none apply.
	global []uint64
	// perNode holds, by pattern node id, the struct dead-page bits its
	// child scans may skip (per-page tag summaries fused with path-class
	// placement); nil entries mean no refinement beyond global.
	perNode [][]uint64
	// pathOn records whether path-summary routing contributed; down and
	// matched are then the per-pattern-node class sets.
	pathOn bool
	// down[p.id] is the set of path classes reachable for p walking the
	// pattern top-down; matched[p.id] additionally requires the whole
	// pattern fragment below p to embed in the summary (matched ⊆ down).
	down    [][]uint64
	matched [][]uint64
	// candKeep[i], when non-nil, is the bitmap of blocks that hold at
	// least one class subtree i's root can bind: index postings on other
	// blocks cannot contribute and are rejected before any I/O.
	candKeep [][]uint64
}

// compileShape builds the view-independent skip state. structSkip gates
// the per-page tag/depth bits, pathOn the path-summary routing; both do
// in-memory work only.
func compileShape(st *nok.Store, t *PatternTree, subs []NoKSubtree, structSkip, pathOn bool) *compiledShape {
	n := st.NumPages()
	sh := &compiledShape{words: (n + 63) / 64, perNode: make([][]uint64, t.Len())}

	if structSkip {
		// Depth bound: a pattern reachable only through child axes from
		// the document root cannot bind nodes deeper than its deepest
		// pattern node, so blocks living entirely below that depth are
		// dead to the query.
		if maxD, ok := boundedDepth(t); ok {
			dir := st.Directory()
			g := make([]uint64, sh.words)
			for i := 0; i < n; i++ {
				if int(dir[i].MinDepth) > maxD {
					g[i>>6] |= 1 << (uint(i) & 63)
				}
			}
			sh.global = g
		}
		// Per-pattern-node refinement: for each node with child-axis
		// pattern children, the pages whose summaries exclude every tag
		// those children could match. A wildcard child matches any tag,
		// so its parent gets no refinement.
		sums := st.Summaries()
		var walk func(p *PatternNode)
		walk = func(p *PatternNode) {
			for _, c := range p.Children {
				walk(c)
			}
			kids := nokChildren(p)
			if len(kids) == 0 {
				return
			}
			codes := make([]int32, 0, len(kids))
			for _, c := range kids {
				if c.Tag == "*" {
					return
				}
				if code, ok := st.LookupTag(c.Tag); ok {
					codes = append(codes, code)
				}
				// A tag absent from the dictionary matches nowhere and
				// cannot keep any page alive.
			}
			bitsOut := make([]uint64, sh.words)
			for i := 0; i < n; i++ {
				mayMatch := false
				for _, code := range codes {
					if sums[i].MayContainTag(code) {
						mayMatch = true
						break
					}
				}
				if !mayMatch {
					bitsOut[i>>6] |= 1 << (uint(i) & 63)
				}
			}
			sh.perNode[p.id] = bitsOut
		}
		walk(t.Root)
	}
	if pathOn {
		compilePathShape(st, t, subs, sh)
	}
	return sh
}

// compilePathShape embeds the pattern tree into the path summary: a
// top-down pass computes each pattern node's reachable class set, a
// bottom-up pass prunes classes under which the remaining fragment cannot
// embed. An empty set anywhere proves the query unsatisfiable before any
// I/O; otherwise the matched classes' block placement refines the dead-
// page bits and routes candidate postings.
func compilePathShape(st *nok.Store, t *PatternTree, subs []NoKSubtree, sh *compiledShape) {
	sum := st.Paths()
	if sum == nil {
		return
	}
	sh.pathOn = true
	nc := sum.NumNodes()
	cw := (nc + 63) / 64
	if cw == 0 {
		cw = 1
	}

	tagClasses := func(tag string) []uint64 {
		out := make([]uint64, cw)
		if tag == "*" {
			for id := 0; id < nc; id++ {
				out[id>>6] |= 1 << (uint(id) & 63)
			}
			return out
		}
		code, ok := st.LookupTag(tag)
		if !ok {
			return out
		}
		for id := int32(0); int(id) < nc; id++ {
			if sum.NodeAt(id).Tag == code {
				out[id>>6] |= 1 << (uint(id) & 63)
			}
		}
		return out
	}

	down := make([][]uint64, t.Len())
	if t.Root.Axis == AxisChild {
		out := make([]uint64, cw)
		forEachSet(tagClasses(t.Root.Tag), func(id int32) {
			if sum.NodeAt(id).Depth == 0 {
				out[id>>6] |= 1 << (uint(id) & 63)
			}
		})
		down[t.Root.id] = out
	} else {
		down[t.Root.id] = tagClasses(t.Root.Tag)
	}
	var downWalk func(p *PatternNode)
	downWalk = func(p *PatternNode) {
		for _, c := range p.Children {
			tc := tagClasses(c.Tag)
			out := make([]uint64, cw)
			if c.Axis == AxisChild {
				forEachSet(down[p.id], func(u int32) {
					for _, k := range sum.ChildrenOf(u) {
						if tc[k>>6]&(1<<(uint(k)&63)) != 0 {
							out[k>>6] |= 1 << (uint(k) & 63)
						}
					}
				})
			} else {
				// Proper-descendant closure of down[p], then tag filter.
				desc := make([]uint64, cw)
				var frontier []int32
				forEachSet(down[p.id], func(u int32) { frontier = append(frontier, u) })
				for len(frontier) > 0 {
					u := frontier[len(frontier)-1]
					frontier = frontier[:len(frontier)-1]
					for _, k := range sum.ChildrenOf(u) {
						w, b := k>>6, uint64(1)<<(uint(k)&63)
						if desc[w]&b == 0 {
							desc[w] |= b
							frontier = append(frontier, k)
						}
					}
				}
				for i := range out {
					out[i] = desc[i] & tc[i]
				}
			}
			down[c.id] = out
			downWalk(c)
		}
	}
	downWalk(t.Root)

	matched := make([][]uint64, t.Len())
	empty := false
	var upWalk func(p *PatternNode)
	upWalk = func(p *PatternNode) {
		for _, c := range p.Children {
			upWalk(c)
		}
		m := append([]uint64(nil), down[p.id]...)
		for _, c := range p.Children {
			req := make([]uint64, cw)
			if c.Axis == AxisChild {
				forEachSet(matched[c.id], func(d int32) {
					if par := sum.NodeAt(d).Parent; par >= 0 {
						req[par>>6] |= 1 << (uint(par) & 63)
					}
				})
			} else {
				forEachSet(matched[c.id], func(d int32) {
					for a := sum.NodeAt(d).Parent; a >= 0; a = sum.NodeAt(a).Parent {
						w, b := a>>6, uint64(1)<<(uint(a)&63)
						if req[w]&b != 0 {
							break // this chain is already marked upward
						}
						req[w] |= b
					}
				})
			}
			for i := range m {
				m[i] &= req[i]
			}
		}
		matched[p.id] = m
		if isEmptySet(m) {
			empty = true
		}
	}
	upWalk(t.Root)
	sh.down, sh.matched = down, matched
	if empty {
		sh.emptyStruct = true
		return
	}

	n := st.NumPages()
	for _, p := range t.nodes {
		kids := nokChildren(p)
		if len(kids) == 0 {
			continue
		}
		keep := make([]uint64, cw)
		for _, q := range kids {
			for i, w := range matched[q.id] {
				keep[i] |= w
			}
		}
		alive := sum.PageBits(keep)
		dead := sh.perNode[p.id]
		if dead == nil {
			dead = make([]uint64, sh.words)
			sh.perNode[p.id] = dead
		}
		for i := 0; i < n; i++ {
			if !hasBit(alive, i) {
				dead[i>>6] |= 1 << (uint(i) & 63)
			}
		}
	}
	sh.candKeep = make([][]uint64, len(subs))
	for i := range subs {
		if i == 0 && t.Root.Axis == AxisChild {
			continue // the document root needs no routing
		}
		sh.candKeep[i] = sum.PageBits(matched[subs[i].Root.id])
	}
}

// pathRoute is the view-dependent half of path routing: access verdicts
// stamped on the summary's path classes for one SubjectView. Resolved per
// query (it is as cheap as a handful of memoized codebook probes), on top
// of a memoized shape.
type pathRoute struct {
	// emptyAccess is set when every class some pattern node can bind is
	// uniformly denied: the query has no accessible answers.
	emptyAccess bool
	// preAllow[p.id] means every class a child scan of p can accept is
	// uniformly allowed — the per-child access checks are skipped.
	preAllow []bool
	// preAllowRoot[root.id] means every on-path class of a subtree root
	// is uniformly allowed — the per-candidate root check is skipped.
	// (Off-path candidates admitted this way produce only join-doomed
	// matches, so answers are unchanged.)
	preAllowRoot []bool
	// preResolved counts the distinct path classes whose verdict was
	// pre-resolved from a uniform code.
	preResolved int64
}

// resolvePathAccess stamps the view's allow/deny verdicts onto the
// shape's class sets. Returns nil when path routing is off or no view is
// set.
func resolvePathAccess(st *nok.Store, t *PatternTree, subs []NoKSubtree, sh *compiledShape, view *dol.SubjectView) *pathRoute {
	sum := st.Paths()
	if sum == nil || sh == nil || !sh.pathOn || sh.emptyStruct || view == nil {
		return nil
	}
	r := &pathRoute{
		preAllow:     make([]bool, t.Len()),
		preAllowRoot: make([]bool, t.Len()),
	}
	const (
		vAllow = 1
		vDeny  = 2
		vMixed = 3
	)
	state := make([]uint8, sum.NumNodes())
	verdict := func(id int32) uint8 {
		if s := state[id]; s != 0 {
			return s
		}
		v := uint8(vMixed)
		if n := sum.NodeAt(id); n.Mode == pathsum.CodeUniform {
			r.preResolved++
			if view.CodeAllowed(n.Code) {
				v = vAllow
			} else {
				v = vDeny
			}
		}
		state[id] = v
		return v
	}
	all := func(set []uint64, want uint8) bool {
		ok := true
		forEachSet(set, func(id int32) {
			if verdict(id) != want {
				ok = false
			}
		})
		return ok
	}
	for _, p := range t.nodes {
		// Every binding of p must be accessible (scans and candidate
		// checks enforce it); all bindable classes uniformly denied means
		// no answer can exist.
		if all(sh.matched[p.id], vDeny) {
			r.emptyAccess = true
			return r
		}
	}
	for _, p := range t.nodes {
		kids := nokChildren(p)
		if len(kids) == 0 {
			continue
		}
		u := make([]uint64, len(sh.down[kids[0].id]))
		for _, q := range kids {
			for i, w := range sh.down[q.id] {
				u[i] |= w
			}
		}
		r.preAllow[p.id] = all(u, vAllow)
	}
	for i := range subs {
		r.preAllowRoot[subs[i].Root.id] = all(sh.down[subs[i].Root.id], vAllow)
	}
	return r
}

func forEachSet(w []uint64, fn func(id int32)) {
	for i, word := range w {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			fn(int32(i*64 + b))
			word &^= 1 << uint(b)
		}
	}
}

func isEmptySet(w []uint64) bool {
	for _, word := range w {
		if word != 0 {
			return false
		}
	}
	return true
}

func hasBit(w []uint64, i int) bool {
	return i >= 0 && i>>6 < len(w) && w[i>>6]&(1<<(uint(i)&63)) != 0
}
