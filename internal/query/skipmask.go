package query

import (
	"dolxml/internal/dol"
	"dolxml/internal/nok"
	"dolxml/internal/obs"
)

// SkipStats count the pages a query's evaluation avoided reading, split by
// the evidence that justified each skip. Counters are per skip event: a
// block passed over by several scans counts once per scan, mirroring the
// reads it would otherwise have cost.
type SkipStats struct {
	// AccessPages counts scan blocks skipped because the subject view's
	// page-deny bitmap proves every node in them inaccessible (§3.3).
	AccessPages int64
	// StructPages counts scan blocks skipped because the per-page
	// structural summary proves they contain nothing the current pattern
	// step could match.
	StructPages int64
	// Candidates counts root candidates rejected by the page-deny bitmap
	// alone, before any page was read for them.
	Candidates int64
	// PathCandidates counts root candidates rejected because the path
	// summary proves their block holds no class the subtree root can bind.
	PathCandidates int64
	// PathClasses counts path classes whose access verdict the query
	// resolved once from a uniform code instead of per candidate node.
	PathClasses int64
	// PathEmpty is 1 when the path summary (or the view's verdicts over
	// it) proved the query empty before any page was pinned.
	PathEmpty int64
}

// skipMask is one query's compiled page-skip state: the subject view's
// page-deny bitmap fused with structural bits derived from the per-page
// summaries, plus per-pattern-node refinements for child scans. Every probe
// during evaluation is a single uint64-word bitmap test; compilation itself
// touches only in-memory state (directory, summaries, deny bitmap) and
// performs no page I/O.
type skipMask struct {
	words int
	// access is the view's page-deny bitmap (nil without a view or with
	// access skipping disabled). Shared read-only with the view's cache;
	// used both for skip attribution and for candidate rejection.
	access []uint64
	// global fuses access with query-wide structural bits (depth bound).
	global []uint64
	// perNode maps a pattern node with child-axis children to the fused
	// mask its child scans consult: global plus the pages whose summaries
	// exclude every tag those pattern children could match. A scan of p's
	// children may skip such a page because unmatched siblings are never
	// descended into — the page can only hold unmatchable siblings and
	// their subtrees.
	perNode map[*PatternNode][]uint64
	// pages is the store's page directory, for resolving a block index to
	// its storage page when recording trace events.
	pages []nok.PageInfo
	// trace, when non-nil, receives one page-skip event per skip and one
	// candidate-reject event per pre-I/O rejection (set from Options.Trace
	// at Open).
	trace *obs.Trace
	// nodeTrace, when populated, maps each pattern node to the ForOp
	// handle of its subtree's scan operator so skips attribute
	// per-operator; scanSkipFn resolves it once per closure, falling back
	// to trace.
	nodeTrace map[*PatternNode]*obs.Trace

	accessCt obs.Counter
	structCt obs.Counter
	candCt   obs.Counter
}

// stats snapshots the mask's counters.
func (sm *skipMask) stats() SkipStats {
	if sm == nil {
		return SkipStats{}
	}
	return SkipStats{
		AccessPages: sm.accessCt.Load(),
		StructPages: sm.structCt.Load(),
		Candidates:  sm.candCt.Load(),
	}
}

// pageIDOf resolves block index i to its storage page for trace events.
func (sm *skipMask) pageIDOf(i int) int64 {
	if sm == nil || i < 0 || i >= len(sm.pages) {
		return -1
	}
	return int64(sm.pages[i].Page)
}

// pageDenied reports whether the deny bitmap covers page i (meaning every
// node on it is inaccessible to the view).
func (sm *skipMask) pageDenied(i int) bool {
	if sm == nil || sm.access == nil || i < 0 || i>>6 >= len(sm.access) {
		return false
	}
	return sm.access[i>>6]&(1<<(uint(i)&63)) != 0
}

// nodeBits returns the fused bitmap a child scan of pattern node p consults
// (read-only), or nil when the mask has nothing for it.
func (sm *skipMask) nodeBits(p *PatternNode) []uint64 {
	if sm == nil {
		return nil
	}
	if bits := sm.perNode[p]; bits != nil {
		return bits
	}
	return sm.global
}

// scanSkipFn returns the skip predicate a child scan of pattern node p
// should pass to the store's sibling scans, or nil when nothing can be
// skipped. The predicate attributes each skip to access control when the
// deny bitmap alone suffices, otherwise to the structural summary.
func (sm *skipMask) scanSkipFn(p *PatternNode) func(int) bool {
	bits := sm.nodeBits(p)
	if bits == nil {
		return nil
	}
	access := sm.access
	tr := sm.nodeTrace[p]
	if tr == nil {
		tr = sm.trace
	}
	return func(i int) bool {
		if i < 0 || i>>6 >= len(bits) {
			return false
		}
		b := uint64(1) << (uint(i) & 63)
		if bits[i>>6]&b == 0 {
			return false
		}
		byAccess := access != nil && access[i>>6]&b != 0
		if byAccess {
			sm.accessCt.Inc()
		} else {
			sm.structCt.Inc()
		}
		if tr != nil {
			tr.PageSkip(sm.pageIDOf(i), byAccess)
		}
		return true
	}
}

// fuseMask combines the query's view-independent shape (depth bound,
// per-page tag summaries, path-class placement — see compileShape) with
// the view's page-deny bitmap into the mask evaluation consults.
// accessSkip gates the §3.3 access-based bits; with it off and an empty
// shape it returns nil and scans run unassisted. Compilation touches only
// in-memory state and performs no page I/O.
func fuseMask(st *nok.Store, t *PatternTree, shape *compiledShape, view *dol.SubjectView, accessSkip bool) *skipMask {
	accessSkip = accessSkip && view != nil
	hasShape := false
	if shape != nil {
		if shape.global != nil {
			hasShape = true
		} else {
			for _, b := range shape.perNode {
				if b != nil {
					hasShape = true
					break
				}
			}
		}
	}
	if !accessSkip && !hasShape {
		return nil
	}
	n := st.NumPages()
	words := (n + 63) / 64
	sm := &skipMask{words: words, pages: st.Directory()}

	if accessSkip {
		sm.access = view.PageDenyBits()
	}
	if !hasShape {
		// Access-only mask: the fused global mask is the deny bitmap and no
		// per-node refinement exists.
		sm.global = sm.access
		return sm
	}

	global := make([]uint64, words)
	copy(global, sm.access) // nil access copies nothing
	if shape.global != nil {
		for i := range global {
			global[i] |= shape.global[i]
		}
	}
	sm.global = global
	sm.perNode = make(map[*PatternNode][]uint64)
	for _, p := range t.nodes {
		sb := shape.perNode[p.id]
		if sb == nil {
			continue
		}
		bits := make([]uint64, words)
		copy(bits, global)
		for i := range bits {
			bits[i] |= sb[i]
		}
		sm.perNode[p] = bits
	}
	return sm
}

// boundedDepth returns the maximum depth any pattern node can bind when the
// whole pattern is anchored at the document root through child axes only.
func boundedDepth(t *PatternTree) (int, bool) {
	if t.Root.Axis != AxisChild {
		return 0, false
	}
	maxD := 0
	var walk func(p *PatternNode, d int) bool
	walk = func(p *PatternNode, d int) bool {
		if d > maxD {
			maxD = d
		}
		for _, c := range p.Children {
			if c.Axis != AxisChild {
				return false
			}
			if !walk(c, d+1) {
				return false
			}
		}
		return true
	}
	if !walk(t.Root, 0) {
		return 0, false
	}
	return maxD, true
}
