package query

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"dolxml/internal/acl"
	"dolxml/internal/btree"
	"dolxml/internal/dol"
	"dolxml/internal/nok"
	"dolxml/internal/obs"
	"dolxml/internal/storage"
	"dolxml/internal/xmltree"
)

// newExplainEnv builds the store on one pool and the tag/value index on a
// second one: index postings lookups go through btree readers that record
// no trace events, so the reconciliation invariant (operator pins sum to
// the store pool's Gets delta) needs them off the store pool — the same
// separation securexml's snapshot layer maintains.
func newExplainEnv(t testing.TB, doc *xmltree.Document, m *acl.Matrix, pageSize int) *env {
	t.Helper()
	pool := storage.NewBufferPool(storage.NewMemPager(pageSize), 1024)
	ss, err := dol.BuildSecureStore(pool, doc, m, nok.BuildOptions{StoreValues: true})
	if err != nil {
		t.Fatal(err)
	}
	ipool := storage.NewBufferPool(storage.NewMemPager(pageSize), 1024)
	idx, err := btree.BuildFromDocument(ipool, doc)
	if err != nil {
		t.Fatal(err)
	}
	return &env{doc: doc, m: m, ss: ss, ev: NewEvaluator(ss.Store(), idx), pool: pool}
}

// Explain of an unsatisfiable pattern must report the short-circuit and
// pin no store page; an executed run under a trace must confirm the same
// zero-page property.
func TestExplainUnsatisfiableZeroPages(t *testing.T) {
	doc := junkDoc(500)
	e := newExplainEnv(t, doc, allowAll(doc, 1), 256)
	if e.ev.store.Paths() == nil {
		t.Fatal("store has no path summary")
	}
	ctx := context.Background()
	// Both tags exist in the document, but no <hit> has a <junk> parent:
	// only the path summary can prove the query empty.
	pt := MustParse("/r/junk/hit")

	before := e.pool.Stats()
	plan, err := e.ev.Explain(ctx, pt, Options{View: e.ss.ViewSubject(0)})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Unsatisfiable {
		t.Fatalf("plan not marked unsatisfiable: %+v", plan)
	}
	if len(plan.Operators) != 0 {
		t.Fatalf("unsatisfiable plan has %d operators", len(plan.Operators))
	}
	if d := e.pool.Stats().Sub(before); d.Gets != 0 {
		t.Fatalf("EXPLAIN pinned %d store pages", d.Gets)
	}

	// The executed form of the same short-circuit: a traced run records no
	// page pin at all.
	tr := obs.NewTrace()
	res, err := e.ev.EvaluateCtx(ctx, pt, Options{View: e.ss.ViewSubject(0), Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Nodes) != 0 {
		t.Fatalf("unsatisfiable query returned %d nodes", len(res.Nodes))
	}
	if tr.PageReads() != 0 {
		t.Fatalf("unsatisfiable run pinned %d pages", tr.PageReads())
	}
	if res.Skips.PathEmpty != 1 {
		t.Fatalf("PathEmpty = %d, want 1", res.Skips.PathEmpty)
	}
}

// The plan's operator pipeline must mirror what Open builds: one scan per
// NoK subtree, the root-path filter only under pruned semantics, one join
// per cut edge, dedup always, limit when set.
func TestExplainOperatorShape(t *testing.T) {
	doc := miniXMark(t)
	e := newExplainEnv(t, doc, allowAll(doc, 1), 512)
	ctx := context.Background()
	view := e.ss.ViewSubject(0)

	for _, tc := range []struct {
		expr   string
		opts   Options
		filter bool
	}{
		{"/site/regions/africa/item[location][name]", Options{}, false},
		{"//item[location]", Options{View: view}, false},
		{"//item[location]", Options{View: view, Semantics: SemanticsPrunedSubtree}, true},
		{"/site/categories//description", Options{View: view, Limit: 2}, false},
	} {
		pt := MustParse(tc.expr)
		plan, err := e.ev.Explain(ctx, pt, tc.opts)
		if err != nil {
			t.Fatalf("%s: %v", tc.expr, err)
		}
		subs := pt.Decompose()
		var scans, joins, filters, dedups, limits int
		for _, op := range plan.Operators {
			switch op.Kind {
			case "scan":
				scans++
			case "join":
				joins++
			case "filter":
				filters++
			case "dedup":
				dedups++
			case "limit":
				limits++
			}
		}
		if scans != len(subs) || joins != len(subs)-1 || dedups != 1 {
			t.Errorf("%s: got %d scans / %d joins / %d dedups for %d subtrees",
				tc.expr, scans, joins, dedups, len(subs))
		}
		wantFilters := 0
		if tc.filter {
			wantFilters = 1
		}
		if filters != wantFilters {
			t.Errorf("%s: got %d filters, want %d", tc.expr, filters, wantFilters)
		}
		wantLimits := 0
		if tc.opts.Limit > 0 {
			wantLimits = 1
		}
		if limits != wantLimits {
			t.Errorf("%s: got %d limits, want %d", tc.expr, limits, wantLimits)
		}
		if len(plan.Nodes) != pt.Len() {
			t.Errorf("%s: plan has %d nodes, pattern has %d", tc.expr, len(plan.Nodes), pt.Len())
		}
	}
}

// ANALYZE attribution must partition the trace exactly: the per-operator
// pins sum to the store pool's Gets delta with nothing left in the
// residual bucket at the evaluator level, and the skip/reject totals
// equal the result's own accounting.
func TestAnalyzeAttributionReconciles(t *testing.T) {
	doc := miniXMark(t)
	e := newExplainEnv(t, doc, allowAll(doc, 1), 512)
	ctx := context.Background()
	view := e.ss.ViewSubject(0)

	exprs := []string{
		"/site/regions/africa/item[location][name][quantity]",
		"//item[location]",
		"/site/categories/category[name]/description/text/bold",
		"//parlist//parlist",
	}
	for _, expr := range exprs {
		for _, base := range []Options{
			{},
			{View: view},
			{View: view, Semantics: SemanticsPrunedSubtree},
		} {
			for _, par := range []int{1, 4} {
				opts := base
				opts.Parallelism = par
				name := fmt.Sprintf("%s/sem=%d/view=%v/par=%d", expr, opts.Semantics, opts.View != nil, par)
				pt := MustParse(expr)

				plan, err := e.ev.Explain(ctx, pt, opts)
				if err != nil {
					t.Fatalf("%s: explain: %v", name, err)
				}
				tr := obs.NewTrace()
				opts.Trace = tr
				before := e.pool.Stats()
				res, err := e.ev.EvaluateCtx(ctx, pt, opts)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				d := e.pool.Stats().Sub(before)

				an := AnalyzeTrace(plan, tr.Events(), tr.Dropped())
				tot := an.Totals()
				if tot.Pins != d.Gets || tot.Hits != d.Hits {
					t.Errorf("%s: attributed pins/hits %d/%d != pool delta %d/%d",
						name, tot.Pins, tot.Hits, d.Gets, d.Hits)
				}
				// Every pin at the evaluator level happens under some
				// operator's context: the residual bucket must be empty.
				if an.Other.Pins != 0 {
					t.Errorf("%s: %d pins in the residual bucket", name, an.Other.Pins)
				}
				if got, want := tot.SkipAccess+tot.SkipStruct, res.Skips.AccessPages+res.Skips.StructPages; got != want {
					t.Errorf("%s: attributed skips %d != result skips %d", name, got, want)
				}
				if got, want := tot.CandRejects, res.Skips.Candidates+res.Skips.PathCandidates; got != want {
					t.Errorf("%s: attributed rejects %d != result rejects %d", name, got, want)
				}
				// Merge events only under a plan that chose parallel scans.
				anyParallel := false
				for i, op := range plan.Operators {
					if op.Kind == "scan" && op.Parallel {
						anyParallel = true
						if an.Ops[i].MergeChunks == 0 {
							t.Errorf("%s: parallel scan %s merged no chunks", name, op.Op)
						}
					}
				}
				if !anyParallel && tot.MergeChunks != 0 {
					t.Errorf("%s: %d merge events without a parallel scan", name, tot.MergeChunks)
				}
				if tr.Dropped() != 0 {
					t.Errorf("%s: trace dropped %d events", name, tr.Dropped())
				}
			}
		}
	}
}

// Randomized reconciliation: attribution stays exact on arbitrary
// documents, patterns, ACLs and page sizes.
func TestAnalyzeAttributionRandom(t *testing.T) {
	ctx := context.Background()
	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		doc := randomDoc(rng, 80+rng.Intn(300))
		const subjects = 2
		m := acl.NewMatrix(doc.Len(), subjects)
		for n := 0; n < doc.Len(); n++ {
			for s := 0; s < subjects; s++ {
				m.Set(xmltree.NodeID(n), acl.SubjectID(s), rng.Intn(100) < 70)
			}
		}
		e := newExplainEnv(t, doc, m, 96+rng.Intn(300))
		pt := randomPattern(rng)
		opts := Options{Parallelism: 1 + rng.Intn(4)}
		if rng.Intn(3) > 0 {
			opts.View = e.ss.ViewSubject(acl.SubjectID(rng.Intn(subjects)))
			if rng.Intn(2) == 0 {
				opts.Semantics = SemanticsPrunedSubtree
			}
		}
		plan, err := e.ev.Explain(ctx, pt, opts)
		if err != nil {
			t.Fatalf("seed %d: explain: %v", seed, err)
		}
		tr := obs.NewTrace()
		opts.Trace = tr
		before := e.pool.Stats()
		if _, err := e.ev.EvaluateCtx(ctx, pt, opts); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		d := e.pool.Stats().Sub(before)
		if plan.Unsatisfiable || plan.EmptyAccess {
			if d.Gets != 0 {
				t.Errorf("seed %d: short-circuited query pinned %d pages", seed, d.Gets)
			}
			continue
		}
		an := AnalyzeTrace(plan, tr.Events(), tr.Dropped())
		if tot := an.Totals(); tot.Pins != d.Gets || an.Other.Pins != 0 {
			t.Errorf("seed %d: attributed %d pins (residual %d), pool delta %d",
				seed, tot.Pins, an.Other.Pins, d.Gets)
		}
	}
}
