package query

import "testing"

// FuzzParse hardens the XPath-subset parser: it must never panic, and any
// expression it accepts must produce a pattern tree that re-renders and
// decomposes without errors.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"/site/regions/africa/item[location][name][quantity]",
		"/site/categories/category[name]/description/text/bold",
		"//parlist//parlist",
		"//listitem//keyword",
		"//item//emph",
		`/site/*[name='socks']`,
		"/a[//b]/c",
		"//",
		"/a[",
		"/a]'",
		"/@attr",
		"/a[b='x\"y']",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, expr string) {
		pt, err := Parse(expr)
		if err != nil {
			return
		}
		if pt.Root == nil || pt.Len() == 0 {
			t.Fatalf("accepted %q but produced empty tree", expr)
		}
		if pt.ReturningNode() == nil {
			t.Fatalf("accepted %q without returning node", expr)
		}
		_ = pt.String()
		subs := pt.Decompose()
		if len(subs) == 0 || subs[0].Parent != -1 {
			t.Fatalf("bad decomposition for %q", expr)
		}
	})
}
