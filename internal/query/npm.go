package query

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"dolxml/internal/btree"
	"dolxml/internal/nok"
	"dolxml/internal/obs"
	"dolxml/internal/xmltree"
)

// AccessChecker abstracts the DOL access decisions the secure matcher
// needs, bound to one subject view (dol.SubjectView implements it). A nil
// AccessChecker means non-secure evaluation.
type AccessChecker interface {
	// AccessibleCtx reports whether the subject may access node n,
	// honoring ctx at the page-fetch boundary.
	AccessibleCtx(ctx context.Context, n xmltree.NodeID) (bool, error)
	// SkipPage reports, from the in-memory page directory alone, that
	// every node in block pageIdx is inaccessible.
	SkipPage(pageIdx int) bool
}

// binding records where a pattern node matched and at what depth.
type binding struct {
	node  xmltree.NodeID
	level int
}

// subtreeMatch is one successful NoK-subtree match: the binding of the
// subtree root plus a consistent assignment of its tracked pattern nodes
// (link sources and the returning node).
type subtreeMatch struct {
	root     binding
	bindings map[*PatternNode]binding
}

// matcher runs ε-NoK pattern matching (Algorithm 1 of the paper) over a
// NoK structure store. Like the paper's recursive NPM it scans each
// matched node's children once with FIRST-CHILD/FOLLOWING-SIBLING and
// checks accessibility as nodes stream off their blocks; unlike the
// paper's pseudo-code, which keeps the first witness per pattern child, it
// enumerates every binding of the *tracked* pattern nodes (the returning
// node and the link sources feeding structural joins), collapsing all
// untracked subtrees existentially — the completion needed for "the nodes
// in the data tree that match [the returning] node" to all be returned.
type matcher struct {
	store   *nok.Store
	values  *nok.ValueStore
	checker AccessChecker
	// pageSkip enables the §3.3 optimization: sibling scans skip whole
	// blocks that the page directory proves fully inaccessible.
	pageSkip bool
	// tracked marks the pattern nodes whose bindings must be recorded.
	tracked map[*PatternNode]bool
	// hasTracked caches, per pattern node, whether its NoK subtree
	// fragment contains a tracked node. It is filled by prepare before
	// matching begins; afterwards the matcher is read-only and may be
	// shared by parallel workers.
	hasTracked map[*PatternNode]bool
	// skipFn caches checker.SkipPage so the hot sibling scan does not
	// materialize a method value per step.
	skipFn func(int) bool
	// masks is the query's compiled skip mask (nil when both access and
	// structural skipping are disabled).
	masks *skipMask
	// scanSkip holds, per pattern node with child-axis children, the fused
	// skip state its child scans consult. Filled by prepare; read-only
	// afterwards.
	scanSkip map[*PatternNode]*nodeSkip
	// preAllow, indexed by PatternNode.id, marks pattern nodes whose child
	// scans need no per-node access checks: every path class the scan can
	// accept is uniformly allowed to the view. preAllowRoot is the same
	// verdict for subtree-root candidates. Both nil when path routing is
	// off. (A pre-allowed scan may admit off-path nodes; those produce
	// only join-doomed matches, so answers are unchanged.)
	preAllow     []bool
	preAllowRoot []bool
	// trace, when non-nil, receives candidate-reject and merge-chunk
	// events (page pins and skips are recorded elsewhere).
	trace *obs.Trace
}

// nodeSkip pairs one pattern node's fused skip bitmap with its counting
// scan predicate. The bitmap answers "is this page dead to the scan?"
// without touching the skip counters; fn is handed to the store's sibling
// scans, which call it exactly once per block they actually pass over, so
// the counters stay an honest census of avoided reads.
type nodeSkip struct {
	bits []uint64
	fn   func(int) bool
}

// masked is the count-free probe of the fused bitmap.
func (ns *nodeSkip) masked(i int) bool {
	return i >= 0 && i>>6 < len(ns.bits) && ns.bits[i>>6]&(1<<(uint(i)&63)) != 0
}

// scanPreAllowed reports that p's child scans carry a pre-resolved allow
// verdict for every acceptable path class.
func (m *matcher) scanPreAllowed(p *PatternNode) bool {
	return m.preAllow != nil && p.id < len(m.preAllow) && m.preAllow[p.id]
}

// rootPreAllowed is the candidate-root counterpart of scanPreAllowed.
func (m *matcher) rootPreAllowed(root *PatternNode) bool {
	return m.preAllowRoot != nil && root.id < len(m.preAllowRoot) && m.preAllowRoot[root.id]
}

// prepare precomputes every lazily derived field for the given
// decomposition, leaving the matcher immutable. Required before sharing the
// matcher across goroutines.
func (m *matcher) prepare(subs []NoKSubtree) {
	for i := range subs {
		m.trackedIn(subs[i].Root)
	}
	if m.checker != nil {
		m.skipFn = m.checker.SkipPage
	}
	if m.masks != nil {
		m.scanSkip = make(map[*PatternNode]*nodeSkip)
		var walk func(p *PatternNode)
		walk = func(p *PatternNode) {
			if len(nokChildren(p)) > 0 {
				if fn := m.masks.scanSkipFn(p); fn != nil {
					m.scanSkip[p] = &nodeSkip{bits: m.masks.nodeBits(p), fn: fn}
				}
			}
			for _, c := range p.Children {
				walk(c)
			}
		}
		for i := range subs {
			walk(subs[i].Root)
		}
	}
}

// trackedIn reports whether p's child-axis pattern fragment contains a
// tracked node.
func (m *matcher) trackedIn(p *PatternNode) bool {
	if v, ok := m.hasTracked[p]; ok {
		return v
	}
	v := m.tracked[p]
	for _, c := range nokChildren(p) {
		if m.trackedIn(c) {
			v = true
		}
	}
	if m.hasTracked == nil {
		m.hasTracked = make(map[*PatternNode]bool)
	}
	m.hasTracked[p] = v
	return v
}

// matchesNode checks proot's tag constraint against a decoded entry.
func (m *matcher) matchesNode(proot *PatternNode, e nok.Entry) bool {
	if proot.Tag == "*" {
		return true
	}
	code, ok := m.store.LookupTag(proot.Tag)
	return ok && code == e.Tag
}

func (m *matcher) matchesValue(ctx context.Context, proot *PatternNode, u xmltree.NodeID) (bool, error) {
	if proot.Value == "" {
		return true, nil
	}
	if m.values == nil {
		return false, nil
	}
	v, err := m.values.ValueCtx(ctx, u)
	if err != nil {
		return false, err
	}
	return v == proot.Value, nil
}

// combo is one consistent assignment of tracked pattern nodes.
type combo map[*PatternNode]binding

func comboKey(c combo) string {
	type kv struct {
		id int
		n  xmltree.NodeID
	}
	var kvs []kv
	for p, b := range c {
		kvs = append(kvs, kv{p.id, b.node})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].id < kvs[j].id })
	var sb strings.Builder
	for _, e := range kvs {
		fmt.Fprintf(&sb, "%d:%d;", e.id, e.n)
	}
	return sb.String()
}

// emitFn consumes one completed tracked-binding combination; returning
// false stops the enumeration (early termination) and unwinds the whole
// match.
type emitFn func(combo) bool

// npmStream matches proot's NoK fragment at data node u (whose tag, value
// and accessibility the caller has verified), emitting each distinct
// tracked-binding combination the moment its last component is discovered
// instead of materializing a cross product after the child scan. It
// reports whether the fragment matched and whether the consumer stopped
// the enumeration early.
//
// Incremental emission rule: a product (c_1, …, c_k) over the tracked
// children's combos is emitted exactly once, when its last-arriving
// component arrives. The first time every pattern child is matched, the
// full cross product of the combos collected so far goes out; every later
// combo arrival for child i emits only the products that pin child i to
// the new combo. Per-child dedup happens on arrival (comboKey), matching
// the pre-product dedup of a batch cross product, so the emitted multiset
// is exactly the batch product — but the first combination surfaces as
// soon as the first witness of every child has been seen, which is what
// lets Limit-bounded queries stop their page reads mid-scan.
func (m *matcher) npmStream(ctx context.Context, proot *PatternNode, u binding, emit emitFn) (bool, bool, error) {
	s := nokChildren(proot)
	if len(s) == 0 {
		c := combo{}
		if m.tracked[proot] {
			c[proot] = u
		}
		return true, !emit(c), nil
	}

	trackedChild := make([]bool, len(s))
	anyTracked := false
	for i, pc := range s {
		trackedChild[i] = m.trackedIn(pc)
		anyTracked = anyTracked || trackedChild[i]
	}

	var (
		matched  = make([]bool, len(s))
		nMatched int
		complete bool // every pattern child matched at least once
		combosOf = make([][]combo, len(s))
		seen     = make([]map[string]bool, len(s))
		acc      = combo{} // scratch assignment for product enumeration
	)

	// product emits the cross product of the collected combos, with child
	// `fixed` (when >= 0) pinned to fixedCombo, adding proot's own binding
	// when tracked. Returns false when the consumer stopped.
	product := func(fixed int, fixedCombo combo) bool {
		var rec func(i int) bool
		rec = func(i int) bool {
			if i == len(s) {
				out := make(combo, len(acc)+1)
				for p, b := range acc {
					out[p] = b
				}
				if m.tracked[proot] {
					out[proot] = u
				}
				return emit(out)
			}
			if !trackedChild[i] {
				return rec(i + 1)
			}
			list := combosOf[i]
			if i == fixed {
				list = []combo{fixedCombo}
			}
			for _, c := range list {
				for p, b := range c {
					acc[p] = b
				}
				ok := rec(i + 1)
				for p := range c {
					delete(acc, p)
				}
				if !ok {
					return false
				}
			}
			return true
		}
		return rec(0)
	}

	// arrive records a combo from tracked child i, emitting the products
	// it completes. Returns false when the consumer stopped.
	arrive := func(i int, c combo) bool {
		if seen[i] == nil {
			seen[i] = make(map[string]bool)
		}
		k := comboKey(c)
		if seen[i][k] {
			return true
		}
		seen[i][k] = true
		combosOf[i] = append(combosOf[i], c)
		if !matched[i] {
			matched[i] = true
			nMatched++
		}
		if nMatched < len(s) {
			return true
		}
		if !complete {
			complete = true
			return product(-1, nil)
		}
		return product(i, c)
	}

	// existMatch records that untracked child i matched. Returns false
	// when the consumer stopped.
	existMatch := func(i int) bool {
		if matched[i] {
			return true
		}
		matched[i] = true
		nMatched++
		if nMatched == len(s) && !complete {
			complete = true
			return product(-1, nil)
		}
		return true
	}

	childLevel := u.level + 1
	ns := m.scanSkip[proot] // nil when the query compiled no mask
	v, err := m.store.FirstChildCtx(ctx, u.node)
	if err != nil {
		return false, false, err
	}
	for v != xmltree.InvalidNode {
		if ns != nil {
			// Block-boundary fast path: when the scan lands on the first
			// node of a block the fused mask excludes, the whole block is
			// known unmatchable — dispose of it (and any further maskable
			// blocks) from the directory without pinning a frame. Only a
			// block-first v qualifies: mid-block, the block also holds the
			// prefix up to v, so its directory depths do not describe the
			// remainder alone.
			if k := m.store.PageIndexOf(v); m.store.PageInfoAt(k).FirstNode == v && ns.masked(k) {
				v, err = m.store.NextSiblingFromBlockCtx(ctx, k, childLevel, ns.fn)
				if err != nil {
					return false, false, err
				}
				continue
			}
		}
		info, err := m.store.InfoCtx(ctx, v)
		if err != nil {
			return false, false, err
		}
		accessible := true
		// When path routing proved every class this scan can accept
		// uniformly allowed, the per-node check is redundant and skipped.
		if m.checker != nil && !m.scanPreAllowed(proot) {
			accessible, err = m.checker.AccessibleCtx(ctx, v)
			if err != nil {
				return false, false, err
			}
		}
		if accessible {
			allDone := true
			for i, pc := range s {
				if matched[i] && !trackedChild[i] {
					continue // existential child already satisfied
				}
				if !m.matchesNode(pc, info.Entry) {
					if !matched[i] {
						allDone = false
					}
					continue
				}
				ok, err := m.matchesValue(ctx, pc, v)
				if err != nil {
					return false, false, err
				}
				if !ok {
					if !matched[i] {
						allDone = false
					}
					continue
				}
				i := i
				sub, stopped, err := m.npmStream(ctx, pc, binding{v, info.Level}, func(c combo) bool {
					if !trackedChild[i] {
						// Existential fragment: only the fact that it
						// matched matters, handled below.
						return true
					}
					return arrive(i, c)
				})
				if err != nil {
					return false, false, err
				}
				if stopped {
					return false, true, nil
				}
				if sub && !trackedChild[i] && !existMatch(i) {
					return false, true, nil
				}
				if !matched[i] {
					allDone = false
				}
			}
			// Early exit: everything matched and no tracked child needs
			// further enumeration.
			if allDone && !anyTracked {
				break
			}
		}
		v, err = m.nextSibling(ctx, proot, v)
		if err != nil {
			return false, false, err
		}
	}
	return nMatched == len(s), false, nil
}

// nextSibling advances the child scan of pattern node proot. With a
// compiled skip mask the scan consults proot's fused bitmap, skipping
// blocks that are wholly inaccessible (§3.3) or that the structural
// summaries prove free of every tag proot's pattern children could match;
// otherwise the legacy access-only predicate applies.
func (m *matcher) nextSibling(ctx context.Context, proot *PatternNode, u xmltree.NodeID) (xmltree.NodeID, error) {
	if ns := m.scanSkip[proot]; ns != nil {
		return m.store.FollowingSiblingSkipCtx(ctx, u, ns.fn)
	}
	if m.checker != nil && m.pageSkip {
		// prepare normally pre-binds skipFn; fall back locally (without
		// mutating the shared matcher) for unprepared matchers.
		skip := m.skipFn
		if skip == nil {
			skip = m.checker.SkipPage
		}
		return m.store.FollowingSiblingSkipCtx(ctx, u, skip)
	}
	return m.store.FollowingSiblingSkipCtx(ctx, u, nil)
}

// minParallelCandidates is the candidate-list size below which fanning out
// is not worth the goroutine overhead.
const minParallelCandidates = 16

// matchCandidate runs ε-NoK matching for one root candidate (normally a
// tag-index posting), streaming each successful match to emit. It reports
// whether emit stopped the enumeration early.
func (m *matcher) matchCandidate(ctx context.Context, sub NoKSubtree, c btree.Posting, emit func(subtreeMatch) bool) (bool, error) {
	if err := ctx.Err(); err != nil {
		return false, err
	}
	// Pre-condition of Algorithm 1: the data-tree root of the match must
	// itself be accessible. When the deny bitmap covers the candidate's
	// whole page, that settles it from the directory alone — no block read.
	if m.masks != nil {
		if pi := m.store.PageIndexOf(c.Node); m.masks.pageDenied(pi) {
			m.masks.candCt.Inc()
			// Attribute the reject to the operator stamped on ctx (the
			// owning scan) when the pipeline provided one.
			tr := obs.TraceFromContext(ctx)
			if tr == nil {
				tr = m.trace
			}
			tr.CandidateReject(int64(c.Node), m.masks.pageIDOf(pi))
			return false, nil
		}
	}
	if m.checker != nil && !m.rootPreAllowed(sub.Root) {
		ok, err := m.checker.AccessibleCtx(ctx, c.Node)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	info, err := m.store.InfoCtx(ctx, c.Node)
	if err != nil {
		return false, err
	}
	if !m.matchesNode(sub.Root, info.Entry) {
		return false, nil
	}
	ok, err := m.matchesValue(ctx, sub.Root, c.Node)
	if err != nil {
		return false, err
	}
	if !ok {
		return false, nil
	}
	rootBind := binding{c.Node, int(c.Level)}
	_, stopped, err := m.npmStream(ctx, sub.Root, rootBind, func(cb combo) bool {
		return emit(subtreeMatch{root: rootBind, bindings: cb})
	})
	return stopped, err
}

// matchSubtree collects every match of the given root candidates, in
// candidate order — the materialized form used by the parallel match
// cursor's chunk workers.
func (m *matcher) matchSubtree(ctx context.Context, sub NoKSubtree, candidates []btree.Posting) ([]subtreeMatch, error) {
	var out []subtreeMatch
	for _, c := range candidates {
		_, err := m.matchCandidate(ctx, sub, c, func(sm subtreeMatch) bool {
			out = append(out, sm)
			return true
		})
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
