package query

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"dolxml/internal/btree"
	"dolxml/internal/nok"
	"dolxml/internal/xmltree"
)

// AccessChecker abstracts the DOL access decisions the secure matcher
// needs, bound to one subject view (dol.SubjectView implements it). A nil
// AccessChecker means non-secure evaluation.
type AccessChecker interface {
	// Accessible reports whether the subject may access node n.
	Accessible(n xmltree.NodeID) (bool, error)
	// SkipPage reports, from the in-memory page directory alone, that
	// every node in block pageIdx is inaccessible.
	SkipPage(pageIdx int) bool
}

// binding records where a pattern node matched and at what depth.
type binding struct {
	node  xmltree.NodeID
	level int
}

// subtreeMatch is one successful NoK-subtree match: the binding of the
// subtree root plus a consistent assignment of its tracked pattern nodes
// (link sources and the returning node).
type subtreeMatch struct {
	root     binding
	bindings map[*PatternNode]binding
}

// matcher runs ε-NoK pattern matching (Algorithm 1 of the paper) over a
// NoK structure store. Like the paper's recursive NPM it scans each
// matched node's children once with FIRST-CHILD/FOLLOWING-SIBLING and
// checks accessibility as nodes stream off their blocks; unlike the
// paper's pseudo-code, which keeps the first witness per pattern child, it
// enumerates every binding of the *tracked* pattern nodes (the returning
// node and the link sources feeding structural joins), collapsing all
// untracked subtrees existentially — the completion needed for "the nodes
// in the data tree that match [the returning] node" to all be returned.
type matcher struct {
	store   *nok.Store
	values  *nok.ValueStore
	checker AccessChecker
	// pageSkip enables the §3.3 optimization: sibling scans skip whole
	// blocks that the page directory proves fully inaccessible.
	pageSkip bool
	// tracked marks the pattern nodes whose bindings must be recorded.
	tracked map[*PatternNode]bool
	// hasTracked caches, per pattern node, whether its NoK subtree
	// fragment contains a tracked node. It is filled by prepare before
	// matching begins; afterwards the matcher is read-only and may be
	// shared by parallel workers.
	hasTracked map[*PatternNode]bool
	// skipFn caches checker.SkipPage so the hot sibling scan does not
	// materialize a method value per step.
	skipFn func(int) bool
}

// prepare precomputes every lazily derived field for the given
// decomposition, leaving the matcher immutable. Required before sharing the
// matcher across goroutines.
func (m *matcher) prepare(subs []NoKSubtree) {
	for i := range subs {
		m.trackedIn(subs[i].Root)
	}
	if m.checker != nil {
		m.skipFn = m.checker.SkipPage
	}
}

// trackedIn reports whether p's child-axis pattern fragment contains a
// tracked node.
func (m *matcher) trackedIn(p *PatternNode) bool {
	if v, ok := m.hasTracked[p]; ok {
		return v
	}
	v := m.tracked[p]
	for _, c := range nokChildren(p) {
		if m.trackedIn(c) {
			v = true
		}
	}
	if m.hasTracked == nil {
		m.hasTracked = make(map[*PatternNode]bool)
	}
	m.hasTracked[p] = v
	return v
}

// matchesNode checks proot's tag constraint against a decoded entry.
func (m *matcher) matchesNode(proot *PatternNode, e nok.Entry) bool {
	if proot.Tag == "*" {
		return true
	}
	code, ok := m.store.LookupTag(proot.Tag)
	return ok && code == e.Tag
}

func (m *matcher) matchesValue(proot *PatternNode, u xmltree.NodeID) (bool, error) {
	if proot.Value == "" {
		return true, nil
	}
	if m.values == nil {
		return false, nil
	}
	v, err := m.values.Value(u)
	if err != nil {
		return false, err
	}
	return v == proot.Value, nil
}

// combo is one consistent assignment of tracked pattern nodes.
type combo map[*PatternNode]binding

func comboKey(c combo) string {
	type kv struct {
		id int
		n  xmltree.NodeID
	}
	var kvs []kv
	for p, b := range c {
		kvs = append(kvs, kv{p.id, b.node})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].id < kvs[j].id })
	var sb strings.Builder
	for _, e := range kvs {
		fmt.Fprintf(&sb, "%d:%d;", e.id, e.n)
	}
	return sb.String()
}

// npm matches proot's NoK fragment at data node u (whose tag, value and
// accessibility the caller has verified). It reports whether the fragment
// matches and, when the fragment contains tracked nodes, the distinct
// tracked-binding combinations.
func (m *matcher) npm(proot *PatternNode, u binding) (bool, []combo, error) {
	s := nokChildren(proot)
	// Per pattern child: whether any data child matched, and the tracked
	// combos contributed.
	matched := make([]bool, len(s))
	combosOf := make([][]combo, len(s))

	if len(s) > 0 {
		v, err := m.store.FirstChild(u.node)
		if err != nil {
			return false, nil, err
		}
		for v != xmltree.InvalidNode {
			info, err := m.store.Info(v)
			if err != nil {
				return false, nil, err
			}
			accessible := true
			if m.checker != nil {
				accessible, err = m.checker.Accessible(v)
				if err != nil {
					return false, nil, err
				}
			}
			if accessible {
				allDone := true
				for i, pc := range s {
					if matched[i] && !m.trackedIn(pc) {
						continue // existential child already satisfied
					}
					if !m.matchesNode(pc, info.Entry) {
						if !matched[i] {
							allDone = false
						}
						continue
					}
					ok, err := m.matchesValue(pc, v)
					if err != nil {
						return false, nil, err
					}
					if !ok {
						if !matched[i] {
							allDone = false
						}
						continue
					}
					sub, subCombos, err := m.npm(pc, binding{v, info.Level})
					if err != nil {
						return false, nil, err
					}
					if sub {
						matched[i] = true
						combosOf[i] = append(combosOf[i], subCombos...)
					}
					if !matched[i] {
						allDone = false
					}
				}
				// Early exit: everything matched and no tracked child
				// needs further enumeration.
				if allDone {
					trackedLeft := false
					for _, pc := range s {
						if m.trackedIn(pc) {
							trackedLeft = true
						}
					}
					if !trackedLeft {
						break
					}
				}
			}
			v, err = m.nextSibling(v)
			if err != nil {
				return false, nil, err
			}
		}
		for i := range s {
			if !matched[i] {
				return false, nil, nil
			}
		}
	}

	// Combine: cross product of tracked children's combos.
	out := []combo{{}}
	for i, pc := range s {
		if !m.trackedIn(pc) {
			continue
		}
		// Dedupe this child's combos first.
		seen := map[string]bool{}
		var cs []combo
		for _, c := range combosOf[i] {
			k := comboKey(c)
			if !seen[k] {
				seen[k] = true
				cs = append(cs, c)
			}
		}
		var next []combo
		for _, base := range out {
			for _, c := range cs {
				merged := combo{}
				for p, b := range base {
					merged[p] = b
				}
				for p, b := range c {
					merged[p] = b
				}
				next = append(next, merged)
			}
		}
		out = next
	}
	if m.tracked[proot] {
		for _, c := range out {
			c[proot] = u
		}
	}
	return true, out, nil
}

// nextSibling advances the child scan. In secure mode with page skipping
// enabled, blocks that the directory proves wholly inaccessible are
// skipped without I/O (§3.3).
func (m *matcher) nextSibling(u xmltree.NodeID) (xmltree.NodeID, error) {
	if m.checker != nil && m.pageSkip {
		// prepare normally pre-binds skipFn; fall back locally (without
		// mutating the shared matcher) for unprepared matchers.
		skip := m.skipFn
		if skip == nil {
			skip = m.checker.SkipPage
		}
		return m.store.FollowingSiblingSkip(u, skip)
	}
	return m.store.FollowingSibling(u)
}

// minParallelCandidates is the candidate-list size below which fanning out
// is not worth the goroutine overhead.
const minParallelCandidates = 16

// matchSubtreeParallel fans matchSubtree out over a bounded worker pool.
// The candidate list is split into index-ordered chunks claimed by workers
// off a shared counter; per-chunk match lists are concatenated in chunk
// order, so the output is byte-identical to the sequential matchSubtree
// (candidates are processed in the same document order). The matcher must
// have been prepared and is shared read-only by the workers.
func (m *matcher) matchSubtreeParallel(sub NoKSubtree, candidates []btree.Posting, workers int) ([]subtreeMatch, error) {
	if workers <= 1 || len(candidates) < minParallelCandidates {
		return m.matchSubtree(sub, candidates)
	}
	// More chunks than workers evens out skew: one pathological candidate
	// (a huge subtree) does not leave the other workers idle for long.
	chunks := workers * 4
	if chunks > len(candidates) {
		chunks = len(candidates)
	}
	if workers > chunks {
		workers = chunks
	}
	bounds := func(i int) (int, int) {
		lo := i * len(candidates) / chunks
		hi := (i + 1) * len(candidates) / chunks
		return lo, hi
	}
	results := make([][]subtreeMatch, chunks)
	errs := make([]error, chunks)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= chunks {
					return
				}
				lo, hi := bounds(i)
				results[i], errs[i] = m.matchSubtree(sub, candidates[lo:hi])
			}
		}()
	}
	wg.Wait()
	var out []subtreeMatch
	for i := range results {
		if errs[i] != nil {
			return nil, errs[i]
		}
		out = append(out, results[i]...)
	}
	return out, nil
}

// matchSubtree runs ε-NoK matching for one NoK subtree over the given root
// candidates (normally tag-index postings). It returns the successful
// matches with their tracked bindings.
func (m *matcher) matchSubtree(sub NoKSubtree, candidates []btree.Posting) ([]subtreeMatch, error) {
	var out []subtreeMatch
	for _, c := range candidates {
		// Pre-condition of Algorithm 1: the data-tree root of the match
		// must itself be accessible.
		if m.checker != nil {
			ok, err := m.checker.Accessible(c.Node)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		info, err := m.store.Info(c.Node)
		if err != nil {
			return nil, err
		}
		if !m.matchesNode(sub.Root, info.Entry) {
			continue
		}
		ok, err := m.matchesValue(sub.Root, c.Node)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		rootBind := binding{c.Node, int(c.Level)}
		matched, combos, err := m.npm(sub.Root, rootBind)
		if err != nil {
			return nil, err
		}
		if !matched {
			continue
		}
		for _, cb := range combos {
			out = append(out, subtreeMatch{root: rootBind, bindings: cb})
		}
	}
	return out, nil
}
