package query

import (
	"math/rand"
	"testing"

	"dolxml/internal/acl"
	"dolxml/internal/xmltree"
)

// junkDoc builds a document whose root interleaves a few <a><hit/></a>
// targets with a long run of <junk/> leaves: at a small page size the run
// fills many blocks whose MinDepth equals the child-scan level, so only the
// structural summaries (not the depth directory) can prove them skippable.
func junkDoc(junk int) *xmltree.Document {
	b := xmltree.NewBuilder()
	b.Begin("r")
	b.Begin("a")
	b.Begin("hit")
	b.End()
	b.End()
	for i := 0; i < junk; i++ {
		b.Begin("junk")
		b.End()
	}
	b.Begin("a")
	b.Begin("hit")
	b.End()
	b.End()
	b.End()
	return b.MustFinish()
}

// coldPages evaluates from a cold pool and returns the result plus the
// physical pages read.
func (e *env) coldPages(t *testing.T, pt *PatternTree, opts Options) (*Result, int64) {
	t.Helper()
	if err := e.pool.DropAll(); err != nil {
		t.Fatal(err)
	}
	e.pool.ResetStats()
	res, err := e.ev.Evaluate(pt, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res, e.pool.Stats().Misses
}

func TestSummarySkipReducesPages(t *testing.T) {
	doc := junkDoc(2000)
	e := newEnv(t, doc, allowAll(doc, 1), 256)
	pt := MustParse("/r/a[hit]")
	view := e.ss.ViewSubject(0)

	for _, cfg := range []struct {
		name string
		opts Options
	}{
		{"no view", Options{Parallelism: 1}},
		{"bindings", Options{View: view, Parallelism: 1}},
		{"pruned", Options{View: view, Semantics: SemanticsPrunedSubtree, Parallelism: 1}},
	} {
		off := cfg.opts
		off.DisableSummarySkip = true
		// Path routing skips the same junk blocks by class; disable it too
		// so the comparison isolates the per-page summaries.
		off.DisablePathSummary = true
		resOff, pagesOff := e.coldPages(t, pt, off)
		resOn, pagesOn := e.coldPages(t, pt, cfg.opts)
		if len(resOn.Nodes) != 2 {
			t.Fatalf("%s: got %d answers, want 2", cfg.name, len(resOn.Nodes))
		}
		if !equalIDs(resOn.Nodes, resOff.Nodes) || resOn.Matches != resOff.Matches {
			t.Fatalf("%s: answers differ with summaries: %v vs %v", cfg.name, resOn.Nodes, resOff.Nodes)
		}
		if pagesOn >= pagesOff {
			t.Fatalf("%s: summaries read %d pages, disabled read %d", cfg.name, pagesOn, pagesOff)
		}
		if resOn.Skips.StructPages == 0 {
			t.Fatalf("%s: no structural skips recorded despite page reduction", cfg.name)
		}
		if resOff.Skips.StructPages != 0 {
			t.Fatalf("%s: disabled run recorded %d structural skips", cfg.name, resOff.Skips.StructPages)
		}
	}
}

// Candidate rejection: when the deny bitmap covers a candidate's whole
// page, the matcher drops it before any block read, and the answer set is
// unchanged relative to the unassisted run.
func TestAccessMaskRejectsCandidates(t *testing.T) {
	b := xmltree.NewBuilder()
	b.Begin("r")
	for i := 0; i < 1500; i++ {
		b.Begin("x")
		b.End()
	}
	b.End()
	doc := b.MustFinish()
	m := allowAll(doc, 1)
	// Deny a long contiguous middle run so whole pages are denied.
	for n := 200; n < 1200; n++ {
		m.Set(xmltree.NodeID(n), 0, false)
	}
	e := newEnv(t, doc, m, 256)
	pt := MustParse("//x")
	view := e.ss.ViewSubject(0)

	resOn, pagesOn := e.coldPages(t, pt, Options{View: view, Parallelism: 1})
	resOff, pagesOff := e.coldPages(t, pt, Options{View: view, Parallelism: 1, DisablePageSkip: true, DisableSummarySkip: true})
	if !equalIDs(resOn.Nodes, resOff.Nodes) {
		t.Fatalf("answers differ: %d vs %d nodes", len(resOn.Nodes), len(resOff.Nodes))
	}
	if resOn.Skips.Candidates == 0 {
		t.Fatal("no candidates rejected from the deny bitmap")
	}
	if pagesOn >= pagesOff {
		t.Fatalf("mask run read %d pages, unassisted read %d", pagesOn, pagesOff)
	}
}

// Property: summaries on/off, with and without a view, under both secure
// semantics and several parallelism levels, produce byte-identical results
// on random documents, patterns and ACLs.
func TestSummarySkipEquivalence(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		doc := randomDoc(rng, 50+rng.Intn(400))
		const subjects = 3
		m := acl.NewMatrix(doc.Len(), subjects)
		for n := 0; n < doc.Len(); n++ {
			for s := 0; s < subjects; s++ {
				m.Set(xmltree.NodeID(n), acl.SubjectID(s), rng.Intn(100) < 70)
			}
		}
		pageSize := 96 + rng.Intn(300)
		e := newEnv(t, doc, m, pageSize)
		pt := randomPattern(rng)
		view := e.ss.ViewSubject(acl.SubjectID(rng.Intn(subjects)))

		base := []Options{
			{},
			{View: view},
			{View: view, Semantics: SemanticsPrunedSubtree},
		}
		for bi, opts := range base {
			opts.Parallelism = 1
			opts.DisableSummarySkip = true
			want, err := e.ev.Evaluate(pt, opts)
			if err != nil {
				t.Fatalf("seed %d base %d: %v", seed, bi, err)
			}
			for _, par := range []int{1, 4} {
				on := opts
				on.Parallelism = par
				on.DisableSummarySkip = false
				got, err := e.ev.Evaluate(pt, on)
				if err != nil {
					t.Fatalf("seed %d base %d par %d: %v", seed, bi, par, err)
				}
				if !equalIDs(got.Nodes, want.Nodes) || got.Matches != want.Matches {
					t.Fatalf("seed %d base %d par %d (page %d): summaries changed the result: %v/%d vs %v/%d",
						seed, bi, par, pageSize, got.Nodes, got.Matches, want.Nodes, want.Matches)
				}
			}
		}
	}
}

func equalIDs(a, b []xmltree.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
