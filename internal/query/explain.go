package query

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"strings"

	"dolxml/internal/obs"
)

// explain.go renders the query compiler's already-computed state — the
// memoized compiledShape, the view's pathRoute verdicts, the fused skip
// mask, and the operator choices Open would make — into a structured Plan,
// with zero execution (EXPLAIN), and folds a traced run's event stream
// into per-operator attribution reconciled exactly against the registry
// deltas (ANALYZE).
//
// Operator identity rides on trace events as an op label (obs.TraceEvent
// .Op): Open stamps each match producer's context, each join, and the
// pruned-subtree path filter with a handle from Trace.ForOp, so every
// buffer-pool pin, skip, reject, probe and merge lands in exactly one
// operator bucket. Events recorded outside any operator (the facade's
// parse span, answer conversion, snapshot pin) fold into the residual
// bucket — the partition stays exact by construction, which is what lets
// the ANALYZE invariant "per-operator page counts sum to the pool's pin
// delta" hold without any second accounting system.

// Operator labels. Plan.Operators[].Op uses the same strings the stamped
// trace events carry, so the ANALYZE fold joins them directly.
func opScan(i int) string { return fmt.Sprintf("scan%d", i) }
func opJoin(i int) string { return fmt.Sprintf("join%d", i) }

const (
	opFilter = "filter"
	opDedup  = "dedup"
	opLimit  = "limit"
	// OpOutput is the label the facade stamps on answer-conversion work
	// (value reads for returned matches) so it attributes to the output
	// step rather than the residual bucket.
	OpOutput = "output"
)

// Plan is the structured form of one query's compiled evaluation plan:
// the pattern tree annotated with mask and routing state, the embedding
// verdict, and the operator pipeline Open would build. It marshals to
// JSON and renders as an indented text tree; building it performs no
// execution and pins no store pages.
type Plan struct {
	// Query is the canonical pattern render (PatternTree.String).
	Query string `json:"query"`
	// Semantics is "bindings", "pruned", or "unsecured" (no view).
	Semantics string `json:"semantics"`
	// Parallelism is the resolved worker count.
	Parallelism int `json:"parallelism"`
	// Limit is the answer limit (0 = none).
	Limit int `json:"limit,omitempty"`
	// PathRouting / StructSkip / AccessSkip record which halves of the
	// skip machinery are active for this query.
	PathRouting bool `json:"path_routing"`
	StructSkip  bool `json:"struct_skip"`
	AccessSkip  bool `json:"access_skip"`
	// TotalPages is the store's page count — the denominator for every
	// dead-page figure below.
	TotalPages int `json:"total_pages"`
	// Unsatisfiable is set when the path summary admits no embedding of
	// the pattern: the plan is the 0-page short-circuit and Operators is
	// empty.
	Unsatisfiable bool `json:"unsatisfiable,omitempty"`
	// EmptyAccess is set when every class some pattern node can bind is
	// uniformly denied to the view — same short-circuit, access-side.
	EmptyAccess bool `json:"empty_access,omitempty"`
	// PreResolvedClasses counts path classes whose access verdict was
	// resolved once from a uniform code instead of per node.
	PreResolvedClasses int64 `json:"preresolved_classes,omitempty"`
	// GlobalDeadPages is the query-wide structural dead-page count (depth
	// bound); AccessDeniedPages the view's page-deny bitmap population.
	GlobalDeadPages   int `json:"global_dead_pages"`
	AccessDeniedPages int `json:"access_denied_pages"`
	// Nodes is the annotated pattern tree, by PatternNode id (preorder).
	Nodes []PlanNode `json:"nodes"`
	// Operators is the pipeline bottom-up: per-subtree scans, the
	// pruned-subtree path filter, one join per cut edge, dedup, limit.
	Operators []PlanOp `json:"operators,omitempty"`
}

// PlanNode annotates one pattern node with its compiled mask and routing
// state.
type PlanNode struct {
	ID   int    `json:"id"`
	Step string `json:"step"`
	// Subtree is the NoK subtree the node belongs to.
	Subtree   int  `json:"subtree"`
	Returning bool `json:"returning,omitempty"`
	// StructDeadPages counts pages the node's child scans may skip on
	// structural evidence alone; FusedDeadPages the same after fusing the
	// view's deny bitmap (what evaluation actually consults).
	StructDeadPages int `json:"struct_dead_pages"`
	FusedDeadPages  int `json:"fused_dead_pages"`
	// ClassesDown / ClassesMatched are the path-summary embedding sets
	// (matched ⊆ down); zero when routing is off.
	ClassesDown    int `json:"classes_down,omitempty"`
	ClassesMatched int `json:"classes_matched,omitempty"`
	// PreAllowChildren / PreAllowRoot are the uniform-class access
	// preresolution verdicts: child scans (or root-candidate checks) skip
	// per-node access checks entirely.
	PreAllowChildren bool  `json:"pre_allow_children,omitempty"`
	PreAllowRoot     bool  `json:"pre_allow_root,omitempty"`
	Children         []int `json:"children,omitempty"`
}

// PlanOp is one pipeline operator.
type PlanOp struct {
	// Op is the attribution label stamped on the operator's trace events.
	Op string `json:"op"`
	// Kind is "scan", "filter", "join", "dedup", or "limit".
	Kind string `json:"kind"`
	// Subtree is the NoK subtree index for scans and joins (-1 otherwise).
	Subtree int `json:"subtree"`
	// Root is the subtree root's pattern step for scans and joins.
	Root string `json:"root,omitempty"`
	// Algorithm names the operator variant: "nok" / "eps-nok" for scans,
	// "std" / "eps-std" for joins and the path filter.
	Algorithm string `json:"algorithm,omitempty"`
	// Candidates counts root candidates after path routing;
	// RejectedByPath the postings routing rejected before any I/O.
	Candidates     int    `json:"candidates,omitempty"`
	RejectedByPath int    `json:"rejected_by_path,omitempty"`
	CandidateSrc   string `json:"candidate_source,omitempty"`
	// Parallel / Workers / Chunks describe the scan fan-out decision.
	Parallel bool `json:"parallel,omitempty"`
	Workers  int  `json:"workers,omitempty"`
	Chunks   int  `json:"chunks,omitempty"`
	// Limit is the answer bound for the limit operator.
	Limit int `json:"limit,omitempty"`
	// Inputs are the op labels feeding this operator (render tree edges).
	Inputs []string `json:"inputs,omitempty"`
}

// stepString renders one pattern node as its XPath step.
func stepString(p *PatternNode) string {
	s := p.Axis.String() + p.Tag
	if p.Value != "" {
		s += fmt.Sprintf("[.=%q]", p.Value)
	}
	return s
}

// popcountSet counts set bits across a bitmap.
func popcountSet(w []uint64) int {
	n := 0
	for _, word := range w {
		n += bits.OnesCount64(word)
	}
	return n
}

// Explain compiles the pattern under the given options and renders the
// plan without executing it. It mirrors Open's compile path exactly —
// including the unsatisfiable and uniform-deny short-circuits, which
// return before any candidate lookup so no store page is pinned (the
// anchored top subtree's candidate would otherwise pin one). For
// satisfiable plans the candidate counts come from the tag/value index
// only; no store page is read.
func (ev *Evaluator) Explain(ctx context.Context, t *PatternTree, opts Options) (*Plan, error) {
	subs := t.Decompose()
	accessSkip := opts.View != nil && !opts.DisablePageSkip
	structSkip := !opts.DisableSummarySkip
	pathOn := !opts.DisablePathSummary && ev.store.Paths() != nil
	workers := opts.workers()

	sem := "unsecured"
	if opts.View != nil {
		if opts.Semantics == SemanticsPrunedSubtree {
			sem = "pruned"
		} else {
			sem = "bindings"
		}
	}
	plan := &Plan{
		Query:       t.String(),
		Semantics:   sem,
		Parallelism: workers,
		Limit:       opts.Limit,
		PathRouting: pathOn,
		StructSkip:  structSkip,
		AccessSkip:  accessSkip,
		TotalPages:  ev.store.NumPages(),
	}

	// Subtree membership, for annotating nodes and labeling scans.
	subtreeOf := map[*PatternNode]int{}
	for i := range subs {
		var walk func(p *PatternNode)
		walk = func(p *PatternNode) {
			subtreeOf[p] = i
			for _, c := range nokChildren(p) {
				walk(c)
			}
		}
		walk(subs[i].Root)
	}
	plan.Nodes = make([]PlanNode, t.Len())
	for _, p := range t.nodes {
		pn := PlanNode{
			ID:        p.id,
			Step:      stepString(p),
			Subtree:   subtreeOf[p],
			Returning: p.Returning,
		}
		for _, c := range p.Children {
			pn.Children = append(pn.Children, c.id)
		}
		plan.Nodes[p.id] = pn
	}

	// Mirror Open's compile path: shape, embedding verdict, route, mask.
	var (
		shape *compiledShape
		route *pathRoute
		sm    *skipMask
	)
	if accessSkip || structSkip || pathOn {
		if structSkip || pathOn {
			shape = ev.shapeFor(t, subs, structSkip, pathOn)
		}
		if shape != nil && shape.emptyStruct {
			plan.Unsatisfiable = true
			return plan, nil
		}
		route = resolvePathAccess(ev.store, t, subs, shape, opts.View)
		if route != nil {
			plan.PreResolvedClasses = route.preResolved
			if route.emptyAccess {
				plan.EmptyAccess = true
				return plan, nil
			}
		}
		sm = fuseMask(ev.store, t, shape, opts.View, accessSkip)
	}
	if shape != nil {
		plan.GlobalDeadPages = popcountSet(shape.global)
		for _, p := range t.nodes {
			plan.Nodes[p.id].StructDeadPages = popcountSet(shape.perNode[p.id])
			if shape.pathOn {
				plan.Nodes[p.id].ClassesDown = popcountSet(shape.down[p.id])
				plan.Nodes[p.id].ClassesMatched = popcountSet(shape.matched[p.id])
			}
		}
	}
	if sm != nil {
		plan.AccessDeniedPages = popcountSet(sm.access)
		for _, p := range t.nodes {
			plan.Nodes[p.id].FusedDeadPages = popcountSet(sm.nodeBits(p))
		}
	}
	if route != nil {
		for _, p := range t.nodes {
			plan.Nodes[p.id].PreAllowChildren = route.preAllow[p.id]
			plan.Nodes[p.id].PreAllowRoot = route.preAllowRoot[p.id]
		}
	}

	// Operator pipeline, mirroring Open's assembly loop. Candidate counts
	// for the anchored top subtree are known without I/O (the document
	// root); other subtrees count index postings — no store page is read.
	secure := opts.View != nil
	scanAlg := "nok"
	if secure {
		scanAlg = "eps-nok"
	}
	var topLabel string
	for i := range subs {
		op := PlanOp{
			Op:        opScan(i),
			Kind:      "scan",
			Subtree:   i,
			Root:      stepString(subs[i].Root),
			Algorithm: scanAlg,
		}
		if i == 0 && t.Root.Axis == AxisChild {
			op.Candidates = 1
			op.CandidateSrc = "doc-root"
		} else {
			cands, err := ev.candidates(ctx, t, subs[i], i == 0)
			if err != nil {
				return nil, err
			}
			switch {
			case subs[i].Root.Tag == "*":
				op.CandidateSrc = "wildcard-union"
			case subs[i].Root.Value != "" && ev.vindex != nil:
				op.CandidateSrc = "value-index"
			default:
				op.CandidateSrc = "tag-index"
			}
			kept := len(cands)
			if shape != nil && shape.candKeep != nil && shape.candKeep[i] != nil {
				kept = 0
				for _, c := range cands {
					if hasBit(shape.candKeep[i], ev.store.PageIndexOf(c.Node)) {
						kept++
					}
				}
				op.RejectedByPath = len(cands) - kept
			}
			op.Candidates = kept
		}
		if workers > 1 && op.Candidates >= minParallelCandidates {
			op.Parallel = true
			chunks := workers * 4
			if chunks > op.Candidates {
				chunks = op.Candidates
			}
			w := workers
			if w > chunks {
				w = chunks
			}
			op.Workers, op.Chunks = w, chunks
		}
		label := op.Op
		plan.Operators = append(plan.Operators, op)
		if i == 0 {
			if secure && opts.Semantics == SemanticsPrunedSubtree {
				plan.Operators = append(plan.Operators, PlanOp{
					Op:        opFilter,
					Kind:      "filter",
					Subtree:   0,
					Algorithm: "eps-std",
					Inputs:    []string{label},
				})
				label = opFilter
			}
			topLabel = label
		} else {
			alg := "std"
			if secure && opts.Semantics == SemanticsPrunedSubtree {
				alg = "eps-std"
			}
			jop := PlanOp{
				Op:        opJoin(i),
				Kind:      "join",
				Subtree:   i,
				Root:      stepString(subs[i].Root),
				Algorithm: alg,
				Inputs:    []string{topLabel, label},
			}
			plan.Operators = append(plan.Operators, jop)
			topLabel = jop.Op
		}
	}
	plan.Operators = append(plan.Operators, PlanOp{
		Op: opDedup, Kind: "dedup", Subtree: -1, Inputs: []string{topLabel},
	})
	topLabel = opDedup
	if opts.Limit > 0 {
		plan.Operators = append(plan.Operators, PlanOp{
			Op: opLimit, Kind: "limit", Subtree: -1, Limit: opts.Limit, Inputs: []string{topLabel},
		})
	}
	return plan, nil
}

// WriteJSON writes the plan as indented JSON.
func (p *Plan) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(p)
}

// WriteText renders the plan as an indented text tree: header, annotated
// pattern, and the operator pipeline top-down.
func (p *Plan) WriteText(w io.Writer) error {
	var err error
	pr := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	pr("query %s  semantics=%s parallelism=%d", p.Query, p.Semantics, p.Parallelism)
	if p.Limit > 0 {
		pr(" limit=%d", p.Limit)
	}
	pr("\n")
	pr("skip: access=%v struct=%v path-routing=%v  pages=%d global-dead=%d access-denied=%d",
		p.AccessSkip, p.StructSkip, p.PathRouting, p.TotalPages, p.GlobalDeadPages, p.AccessDeniedPages)
	if p.PreResolvedClasses > 0 {
		pr(" preresolved-classes=%d", p.PreResolvedClasses)
	}
	pr("\n")
	if p.Unsatisfiable {
		pr("result: EMPTY — pattern has no embedding in the path summary (0 pages)\n")
	}
	if p.EmptyAccess {
		pr("result: EMPTY — every bindable path class uniformly denied (0 pages)\n")
	}
	pr("pattern:\n")
	var walkNode func(id, depth int)
	walkNode = func(id, depth int) {
		n := p.Nodes[id]
		pr("%s%s", strings.Repeat("  ", depth+1), n.Step)
		if n.Returning {
			pr(" (returning)")
		}
		pr(" [subtree=%d", n.Subtree)
		if n.FusedDeadPages > 0 || n.StructDeadPages > 0 {
			pr(" dead: struct=%d fused=%d", n.StructDeadPages, n.FusedDeadPages)
		}
		if n.ClassesDown > 0 || n.ClassesMatched > 0 {
			pr(" classes: down=%d matched=%d", n.ClassesDown, n.ClassesMatched)
		}
		if n.PreAllowChildren {
			pr(" pre-allow-children")
		}
		if n.PreAllowRoot {
			pr(" pre-allow-root")
		}
		pr("]\n")
		for _, c := range n.Children {
			walkNode(c, depth+1)
		}
	}
	if len(p.Nodes) > 0 {
		walkNode(0, 0)
	}
	if len(p.Operators) == 0 {
		return err
	}
	byOp := map[string]*PlanOp{}
	consumed := map[string]bool{}
	for i := range p.Operators {
		byOp[p.Operators[i].Op] = &p.Operators[i]
		for _, in := range p.Operators[i].Inputs {
			consumed[in] = true
		}
	}
	pr("plan:\n")
	var walkOp func(op *PlanOp, depth int)
	walkOp = func(op *PlanOp, depth int) {
		pr("%s%s", strings.Repeat("  ", depth+1), op.Kind)
		switch op.Kind {
		case "scan":
			pr(" %s %s candidates=%d via %s", op.Root, op.Algorithm, op.Candidates, op.CandidateSrc)
			if op.RejectedByPath > 0 {
				pr(" (rejected-by-path=%d)", op.RejectedByPath)
			}
			if op.Parallel {
				pr(" parallel workers=%d chunks=%d", op.Workers, op.Chunks)
			} else {
				pr(" streaming")
			}
		case "join":
			pr(" %s link=%s", op.Algorithm, op.Root)
		case "filter":
			pr(" root-path %s", op.Algorithm)
		case "limit":
			pr(" %d", op.Limit)
		}
		pr("  [op=%s]\n", op.Op)
		for _, in := range op.Inputs {
			if child := byOp[in]; child != nil {
				walkOp(child, depth+1)
			}
		}
	}
	for i := len(p.Operators) - 1; i >= 0; i-- {
		if !consumed[p.Operators[i].Op] {
			walkOp(&p.Operators[i], 0)
		}
	}
	return err
}

// OpStats is one operator's attribution bucket after the ANALYZE fold.
type OpStats struct {
	Op string `json:"op"`
	// Pins / Hits / Decodes count buffer-pool page acquisitions the
	// operator performed, pool hits among them, and block decodes.
	Pins    int64 `json:"pins"`
	Hits    int64 `json:"hits"`
	Decodes int64 `json:"decodes,omitempty"`
	// SkipAccess / SkipStruct count pages the operator's scans skipped,
	// by cause; CandRejects root candidates rejected pre-I/O (deny bitmap
	// or path routing).
	SkipAccess  int64 `json:"skip_access,omitempty"`
	SkipStruct  int64 `json:"skip_struct,omitempty"`
	CandRejects int64 `json:"cand_rejects,omitempty"`
	// Probes / ProbePairs count structural-join probes and their pairs.
	Probes     int64 `json:"probes,omitempty"`
	ProbePairs int64 `json:"probe_pairs,omitempty"`
	// MergeChunks / MergeTuples count parallel-merge forwarding.
	MergeChunks int64 `json:"merge_chunks,omitempty"`
	MergeTuples int64 `json:"merge_tuples,omitempty"`
	// Emits counts answers leaving the pipeline (residual bucket: the
	// facade records them).
	Emits int64 `json:"emits,omitempty"`
	// SpanUs sums span durations stamped with this op (join_open).
	SpanUs int64 `json:"span_us,omitempty"`
}

// add folds one event into the bucket.
func (s *OpStats) add(e obs.TraceEvent) {
	switch e.Kind {
	case obs.EvPagePin:
		s.Pins++
		if e.Hit {
			s.Hits++
		}
	case obs.EvPageDecode:
		s.Decodes++
	case obs.EvPageSkipAccess:
		s.SkipAccess++
	case obs.EvPageSkipStruct:
		s.SkipStruct++
	case obs.EvCandidateReject:
		s.CandRejects++
	case obs.EvJoinProbe:
		s.Probes++
		s.ProbePairs += e.N
	case obs.EvMerge:
		s.MergeChunks++
		s.MergeTuples += e.N
	case obs.EvEmit:
		s.Emits++
	default:
		if e.Dur > 0 {
			s.SpanUs += e.Dur.Microseconds()
		}
	}
}

// Analysis is the outcome of ANALYZE: the plan plus per-operator
// attribution folded from the executed query's trace. Every trace event
// lands in exactly one bucket (a plan operator, or Other for facade
// work), so the totals reconcile exactly against the buffer pool and
// registry deltas — the invariant the `dolbench -exp explain` strict gate
// holds.
type Analysis struct {
	Plan *Plan `json:"plan"`
	// Ops is aligned with Plan.Operators.
	Ops []OpStats `json:"ops"`
	// Other is the residual bucket: events recorded outside any operator
	// (parse and open spans, snapshot pins, answer conversion, emits).
	Other OpStats `json:"other"`
	// SpanUs sums op-less span durations by kind (parse,
	// compile_skip_mask, open_pipeline).
	SpanUs map[string]int64 `json:"span_us,omitempty"`
	// Events / Dropped describe the folded trace; a non-zero Dropped
	// voids the exact-reconciliation guarantee.
	Events  int   `json:"events"`
	Dropped int64 `json:"dropped,omitempty"`
}

// AnalyzeTrace folds a completed traced run into per-operator buckets.
func AnalyzeTrace(plan *Plan, events []obs.TraceEvent, dropped int64) *Analysis {
	an := &Analysis{
		Plan:    plan,
		Ops:     make([]OpStats, len(plan.Operators)),
		SpanUs:  map[string]int64{},
		Events:  len(events),
		Dropped: dropped,
	}
	an.Other.Op = "other"
	byLabel := map[string]*OpStats{}
	for i := range plan.Operators {
		an.Ops[i].Op = plan.Operators[i].Op
		byLabel[plan.Operators[i].Op] = &an.Ops[i]
	}
	for _, e := range events {
		b := byLabel[e.Op]
		if b == nil {
			b = &an.Other
			if e.Dur > 0 && e.Op == "" {
				an.SpanUs[string(e.Kind)] += e.Dur.Microseconds()
			}
		}
		b.add(e)
	}
	return an
}

// Totals sums every bucket (operators plus residual) — the left-hand side
// of the reconciliation invariant.
func (an *Analysis) Totals() OpStats {
	var t OpStats
	t.Op = "total"
	for _, b := range append(an.Ops, an.Other) {
		t.Pins += b.Pins
		t.Hits += b.Hits
		t.Decodes += b.Decodes
		t.SkipAccess += b.SkipAccess
		t.SkipStruct += b.SkipStruct
		t.CandRejects += b.CandRejects
		t.Probes += b.Probes
		t.ProbePairs += b.ProbePairs
		t.MergeChunks += b.MergeChunks
		t.MergeTuples += b.MergeTuples
		t.Emits += b.Emits
	}
	return t
}

// WriteJSON writes the analysis as indented JSON.
func (an *Analysis) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(an)
}

// WriteText renders the plan followed by the attribution table.
func (an *Analysis) WriteText(w io.Writer) error {
	if err := an.Plan.WriteText(w); err != nil {
		return err
	}
	var err error
	pr := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	pr("attribution (%d events", an.Events)
	if an.Dropped > 0 {
		pr(", %d DROPPED — totals not exact", an.Dropped)
	}
	pr("):\n")
	pr("  %-8s %6s %6s %7s %6s %6s %7s %7s %7s\n",
		"op", "pins", "hits", "decodes", "skipA", "skipS", "rejects", "probes", "span_us")
	row := func(b OpStats) {
		pr("  %-8s %6d %6d %7d %6d %6d %7d %7d %7d\n",
			b.Op, b.Pins, b.Hits, b.Decodes, b.SkipAccess, b.SkipStruct, b.CandRejects, b.Probes, b.SpanUs)
	}
	for _, b := range an.Ops {
		row(b)
	}
	row(an.Other)
	row(an.Totals())
	for _, k := range []string{"parse", "compile_skip_mask", "open_pipeline"} {
		if us, ok := an.SpanUs[k]; ok {
			pr("  span %-18s %dus\n", k, us)
		}
	}
	return err
}
