package query

import (
	"sync"

	"dolxml/internal/obs"
)

// maskCacheCap bounds the number of memoized shapes; past it the cache
// resets wholesale (distinct live patterns per snapshot are few).
const maskCacheCap = 256

// maskKey identifies a compiled shape: the pattern's canonical string plus
// the ablation flags that change what the shape contains. PatternNode ids
// are assigned deterministically by the parser, so a shape compiled from
// one parse of a pattern string applies to any reparse of it.
type maskKey struct {
	pattern    string
	structSkip bool
	pathOn     bool
}

type maskEntry struct {
	seq   uint64
	shape *compiledShape
}

// MaskCache memoizes compiled query shapes per snapshot sequence. The
// facade attaches one cache to each published index state; queries on the
// same snapshot then compile each distinct pattern once. Entries carry
// the publishing sequence and hit only on an exact match: every commit
// (structural or ACL-only) bumps the sequence, so shapes never outlive
// the page directory and summaries they were computed from.
type MaskCache struct {
	mu      sync.Mutex
	entries map[maskKey]*maskEntry
	hits    *obs.Counter
	misses  *obs.Counter
}

// NewMaskCache returns an empty cache. hits/misses, when non-nil, receive
// one increment per lookup outcome.
func NewMaskCache(hits, misses *obs.Counter) *MaskCache {
	return &MaskCache{entries: make(map[maskKey]*maskEntry), hits: hits, misses: misses}
}

// shapeFor returns the memoized shape for key at sequence seq, building
// and caching it on a miss. build runs under the cache lock: it is pure
// in-memory work (no page I/O), and serializing concurrent compilations
// of the same pattern is the point.
func (mc *MaskCache) shapeFor(key maskKey, seq uint64, build func() *compiledShape) *compiledShape {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	if e := mc.entries[key]; e != nil && e.seq == seq {
		if mc.hits != nil {
			mc.hits.Inc()
		}
		return e.shape
	}
	if mc.misses != nil {
		mc.misses.Inc()
	}
	sh := build()
	if len(mc.entries) >= maskCacheCap {
		mc.entries = make(map[maskKey]*maskEntry)
	}
	mc.entries[key] = &maskEntry{seq: seq, shape: sh}
	return sh
}
