package query

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dolxml/internal/acl"
	"dolxml/internal/bitset"
	"dolxml/internal/btree"
	"dolxml/internal/dol"
	"dolxml/internal/nok"
	"dolxml/internal/storage"
	"dolxml/internal/xmltree"
)

// --- XPath parsing ---

func TestParseSimplePath(t *testing.T) {
	pt := MustParse("/site/regions/africa/item")
	if pt.Root.Tag != "site" || pt.Root.Axis != AxisChild {
		t.Fatalf("root = %+v", pt.Root)
	}
	n := pt.Root
	for _, tag := range []string{"regions", "africa", "item"} {
		if len(n.Children) != 1 {
			t.Fatalf("expected single chain at %s", n.Tag)
		}
		n = n.Children[0]
		if n.Tag != tag || n.Axis != AxisChild {
			t.Fatalf("step = %+v, want %s", n, tag)
		}
	}
	if !n.Returning {
		t.Fatal("last step should be returning")
	}
}

func TestParsePredicates(t *testing.T) {
	// Q1 from Table 1.
	pt := MustParse("/site/regions/africa/item[location][name][quantity]")
	item := pt.Root.Children[0].Children[0].Children[0]
	if item.Tag != "item" || !item.Returning {
		t.Fatalf("item = %+v", item)
	}
	if len(item.Children) != 3 {
		t.Fatalf("item has %d predicates", len(item.Children))
	}
	for i, tag := range []string{"location", "name", "quantity"} {
		if item.Children[i].Tag != tag || item.Children[i].Axis != AxisChild {
			t.Fatalf("predicate %d = %+v", i, item.Children[i])
		}
		if item.Children[i].Returning {
			t.Fatal("predicates must not be returning")
		}
	}
}

func TestParseNestedPredicatePath(t *testing.T) {
	// Q3: /site/categories/category/name[description/text/bold]
	pt := MustParse("/site/categories/category/name[description/text/bold]")
	name := pt.Root.Children[0].Children[0].Children[0]
	if name.Tag != "name" || !name.Returning {
		t.Fatalf("name = %+v", name)
	}
	d := name.Children[0]
	if d.Tag != "description" || d.Children[0].Tag != "text" || d.Children[0].Children[0].Tag != "bold" {
		t.Fatal("nested predicate path wrong")
	}
}

func TestParseDescendantAxis(t *testing.T) {
	pt := MustParse("//parlist//parlist")
	if pt.Root.Axis != AxisDescendant || pt.Root.Tag != "parlist" {
		t.Fatalf("root = %+v", pt.Root)
	}
	c := pt.Root.Children[0]
	if c.Axis != AxisDescendant || c.Tag != "parlist" || !c.Returning {
		t.Fatalf("child = %+v", c)
	}
}

func TestParseValuePredicateAndWildcard(t *testing.T) {
	pt := MustParse(`/site/*[name='socks']`)
	star := pt.Root.Children[0]
	if star.Tag != "*" || !star.Returning {
		t.Fatalf("star = %+v", star)
	}
	if star.Children[0].Tag != "name" || star.Children[0].Value != "socks" {
		t.Fatalf("value predicate = %+v", star.Children[0])
	}
}

func TestParseDescendantInsidePredicate(t *testing.T) {
	pt := MustParse(`/a[//b]/c`)
	if pt.Root.Children[0].Tag != "b" || pt.Root.Children[0].Axis != AxisDescendant {
		t.Fatalf("predicate = %+v", pt.Root.Children[0])
	}
	if pt.Root.Children[1].Tag != "c" || !pt.Root.Children[1].Returning {
		t.Fatal("main path continuation wrong")
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"", "site", "/", "//", "/site[", "/site[name", "/site]x",
		"/site/item[name=socks]", "/site/item[name='socks]", "/si te/x$",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestPatternTreeValidation(t *testing.T) {
	a := &PatternNode{Tag: "a", Returning: true}
	b := &PatternNode{Tag: "b", Returning: true}
	a.Children = []*PatternNode{b}
	if _, err := NewPatternTree(a); err == nil {
		t.Fatal("two returning nodes should fail")
	}
	if _, err := NewPatternTree(nil); err == nil {
		t.Fatal("nil root should fail")
	}
	if _, err := NewPatternTree(&PatternNode{}); err == nil {
		t.Fatal("empty tag should fail")
	}
}

func TestDecompose(t *testing.T) {
	pt := MustParse("/a/b[c]//d[e]//f")
	subs := pt.Decompose()
	if len(subs) != 3 {
		t.Fatalf("got %d subtrees", len(subs))
	}
	if subs[0].Root.Tag != "a" || subs[0].Parent != -1 {
		t.Fatalf("top = %+v", subs[0])
	}
	if subs[1].Root.Tag != "d" || subs[1].Link.Tag != "b" || subs[1].Parent != 0 {
		t.Fatalf("sub1 = root %s link %s parent %d", subs[1].Root.Tag, subs[1].Link.Tag, subs[1].Parent)
	}
	if subs[2].Root.Tag != "f" || subs[2].Link.Tag != "d" || subs[2].Parent != 1 {
		t.Fatalf("sub2 = root %s link %s parent %d", subs[2].Root.Tag, subs[2].Link.Tag, subs[2].Parent)
	}
}

// --- Evaluation ---

// env bundles a document with its stores for evaluation tests.
type env struct {
	doc  *xmltree.Document
	m    *acl.Matrix
	ss   *dol.SecureStore
	ev   *Evaluator
	pool *storage.BufferPool
}

func newEnv(t testing.TB, doc *xmltree.Document, m *acl.Matrix, pageSize int) *env {
	t.Helper()
	pool := storage.NewBufferPool(storage.NewMemPager(pageSize), 1024)
	ss, err := dol.BuildSecureStore(pool, doc, m, nok.BuildOptions{StoreValues: true})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := btree.BuildFromDocument(pool, doc)
	if err != nil {
		t.Fatal(err)
	}
	return &env{doc: doc, m: m, ss: ss, ev: NewEvaluator(ss.Store(), idx), pool: pool}
}

// oracleAnswers enumerates all pattern embeddings by brute force and
// returns the distinct returning-node bindings.
//
// mode: 0 = non-secure, 1 = bindings semantics, 2 = pruned-subtree.
func oracleAnswers(doc *xmltree.Document, m *acl.Matrix, eff *bitset.Bitset, pt *PatternTree, mode int) map[xmltree.NodeID]bool {
	ret := pt.ReturningNode()
	validNode := func(n xmltree.NodeID) bool {
		switch mode {
		case 0:
			return true
		case 1:
			return m.AccessibleAny(n, eff)
		default:
			for v := n; v != xmltree.InvalidNode; v = doc.Parent(v) {
				if !m.AccessibleAny(v, eff) {
					return false
				}
			}
			return true
		}
	}
	matchesTag := func(p *PatternNode, n xmltree.NodeID) bool {
		if p.Tag != "*" && doc.Tag(n) != p.Tag {
			return false
		}
		if p.Value != "" && doc.Value(n) != p.Value {
			return false
		}
		return true
	}
	// eo returns whether p's pattern subtree embeds at u and, when the
	// subtree contains ret, the achievable ret bindings.
	containsRet := map[*PatternNode]bool{}
	var mark func(p *PatternNode) bool
	mark = func(p *PatternNode) bool {
		v := p == ret
		for _, c := range p.Children {
			if mark(c) {
				v = true
			}
		}
		containsRet[p] = v
		return v
	}
	mark(pt.Root)

	var eo func(p *PatternNode, u xmltree.NodeID) (bool, map[xmltree.NodeID]bool)
	eo = func(p *PatternNode, u xmltree.NodeID) (bool, map[xmltree.NodeID]bool) {
		if !matchesTag(p, u) || !validNode(u) {
			return false, nil
		}
		rets := map[xmltree.NodeID]bool{}
		if p == ret {
			rets[u] = true
		}
		for _, c := range p.Children {
			var vs []xmltree.NodeID
			if c.Axis == AxisChild {
				vs = doc.Children(u)
			} else {
				for v := u + 1; v <= doc.End(u); v++ {
					vs = append(vs, v)
				}
			}
			okAny := false
			sub := map[xmltree.NodeID]bool{}
			for _, v := range vs {
				ok, r := eo(c, v)
				if ok {
					okAny = true
					for k := range r {
						sub[k] = true
					}
				}
			}
			if !okAny {
				return false, nil
			}
			if containsRet[c] {
				rets = sub
			}
		}
		return true, rets
	}

	answers := map[xmltree.NodeID]bool{}
	var roots []xmltree.NodeID
	if pt.Root.Axis == AxisChild {
		roots = []xmltree.NodeID{0}
	} else {
		for n := 0; n < doc.Len(); n++ {
			roots = append(roots, xmltree.NodeID(n))
		}
	}
	for _, r := range roots {
		ok, rets := eo(pt.Root, r)
		if ok {
			for k := range rets {
				answers[k] = true
			}
		}
	}
	return answers
}

func checkAnswers(t *testing.T, got *Result, want map[xmltree.NodeID]bool, label string) {
	t.Helper()
	if len(got.Nodes) != len(want) {
		t.Fatalf("%s: got %v, want %v", label, got.Nodes, keys(want))
	}
	for _, n := range got.Nodes {
		if !want[n] {
			t.Fatalf("%s: unexpected answer %d (want %v)", label, n, keys(want))
		}
	}
}

func keys(m map[xmltree.NodeID]bool) []xmltree.NodeID {
	var out []xmltree.NodeID
	for k := range m {
		out = append(out, k)
	}
	return out
}

func miniXMark(t testing.TB) *xmltree.Document {
	t.Helper()
	return xmltree.MustParseString(`<site>
	  <regions>
	    <africa>
	      <item><location>Ghana</location><name>mask</name><quantity>2</quantity></item>
	      <item><location>Kenya</location><name>drum</name></item>
	      <item><location>Mali</location><name>cloth</name><quantity>1</quantity></item>
	    </africa>
	  </regions>
	  <categories>
	    <category><name>art</name><description><text><bold>bold art</bold></text></description></category>
	    <category><name>music</name><description><text>plain</text></description></category>
	  </categories>
	  <parlist><listitem><parlist><listitem><keyword>deep</keyword></listitem></parlist></listitem></parlist>
	</site>`)
}

func allowAll(doc *xmltree.Document, subjects int) *acl.Matrix {
	m := acl.NewMatrix(doc.Len(), subjects)
	for n := 0; n < doc.Len(); n++ {
		for s := 0; s < subjects; s++ {
			m.Set(xmltree.NodeID(n), acl.SubjectID(s), true)
		}
	}
	return m
}

func TestEvaluateNonSecureBasics(t *testing.T) {
	doc := miniXMark(t)
	e := newEnv(t, doc, allowAll(doc, 1), 4096)
	cases := []struct {
		expr string
		want int
	}{
		{"/site/regions/africa/item[location][name][quantity]", 2},
		{"/site/categories/category[name]/description/text/bold", 1},
		{"/site/categories/category/name[description/text/bold]", 0}, // name has no description child
		{"//parlist//parlist", 1},
		{"//listitem//keyword", 1},
		{"//item", 3},
		{"/site/*", 3},
		{"/nosuch", 0},
		{"//nosuchtag", 0},
	}
	for _, tc := range cases {
		res, err := e.ev.Evaluate(MustParse(tc.expr), Options{})
		if err != nil {
			t.Fatalf("%s: %v", tc.expr, err)
		}
		if len(res.Nodes) != tc.want {
			t.Errorf("%s: got %d answers (%v), want %d", tc.expr, len(res.Nodes), res.Nodes, tc.want)
		}
		// Cross-check against the oracle.
		want := oracleAnswers(doc, e.m, nil, MustParse(tc.expr), 0)
		checkAnswers(t, res, want, tc.expr)
	}
}

func TestEvaluateValuePredicate(t *testing.T) {
	doc := miniXMark(t)
	e := newEnv(t, doc, allowAll(doc, 1), 4096)
	res, err := e.ev.Evaluate(MustParse(`//item[location='Kenya']`), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Nodes) != 1 {
		t.Fatalf("answers = %v", res.Nodes)
	}
	if doc.Value(res.Nodes[0]+1) != "Kenya" {
		t.Fatal("wrong item matched")
	}
}

func TestEvaluateSecureBindings(t *testing.T) {
	doc := miniXMark(t)
	m := allowAll(doc, 2)
	// Deny subject 1 the second africa item subtree.
	items := doc.NodesWithTag("item")
	for n := items[1]; n <= doc.End(items[1]); n++ {
		m.Set(n, 1, false)
	}
	e := newEnv(t, doc, m, 4096)
	q := MustParse("//item[name]")

	res0, err := e.ev.Evaluate(q, Options{View: e.ss.ViewSubject(0)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res0.Nodes) != 3 {
		t.Fatalf("subject 0 answers = %v", res0.Nodes)
	}
	res1, err := e.ev.Evaluate(q, Options{View: e.ss.ViewSubject(1)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res1.Nodes) != 2 {
		t.Fatalf("subject 1 answers = %v", res1.Nodes)
	}
}

func TestEvaluateSemanticsDiffer(t *testing.T) {
	// Paper §4.2 example: an accessible node under an inaccessible one is
	// an answer under Cho semantics but not under Gabillon–Bruno.
	doc := xmltree.MustParseString(`<a><e><h><k/></h></e></a>`)
	m := allowAll(doc, 1)
	m.Set(1, 0, false) // e inaccessible
	e := newEnv(t, doc, m, 4096)
	q := MustParse("//k")
	view := e.ss.ViewSubject(0)

	cho, err := e.ev.Evaluate(q, Options{View: view, Semantics: SemanticsBindings})
	if err != nil {
		t.Fatal(err)
	}
	if len(cho.Nodes) != 1 {
		t.Fatalf("bindings semantics answers = %v", cho.Nodes)
	}
	gb, err := e.ev.Evaluate(q, Options{View: view, Semantics: SemanticsPrunedSubtree})
	if err != nil {
		t.Fatal(err)
	}
	if len(gb.Nodes) != 0 {
		t.Fatalf("pruned-subtree semantics answers = %v", gb.Nodes)
	}
}

func TestEvaluateJoinSemanticsPruned(t *testing.T) {
	// //a//c with an inaccessible b between: the bindings semantics keeps
	// the pair, the pruned semantics drops it.
	doc := xmltree.MustParseString(`<a><b><c/></b><c/></a>`)
	m := allowAll(doc, 1)
	m.Set(1, 0, false) // b
	e := newEnv(t, doc, m, 4096)
	q := MustParse("//a//c")
	view := e.ss.ViewSubject(0)

	cho, _ := e.ev.Evaluate(q, Options{View: view, Semantics: SemanticsBindings})
	if len(cho.Nodes) != 2 {
		t.Fatalf("bindings semantics = %v", cho.Nodes)
	}
	gb, _ := e.ev.Evaluate(q, Options{View: view, Semantics: SemanticsPrunedSubtree})
	if len(gb.Nodes) != 1 || doc.Tag(gb.Nodes[0]) != "c" || gb.Nodes[0] != 3 {
		t.Fatalf("pruned semantics = %v", gb.Nodes)
	}
}

func randomDoc(rng *rand.Rand, n int) *xmltree.Document {
	b := xmltree.NewBuilder()
	b.Begin("r")
	open := 1
	for i := 1; i < n; i++ {
		for open > 1 && rng.Intn(3) == 0 {
			b.End()
			open--
		}
		b.Begin([]string{"x", "y", "z", "w"}[rng.Intn(4)])
		open++
	}
	for ; open > 0; open-- {
		b.End()
	}
	return b.MustFinish()
}

// randomPattern builds a small random pattern tree.
func randomPattern(rng *rand.Rand) *PatternTree {
	tags := []string{"x", "y", "z", "w", "r", "*"}
	var build func(depth int, axis Axis) *PatternNode
	var all []*PatternNode
	build = func(depth int, axis Axis) *PatternNode {
		p := &PatternNode{Tag: tags[rng.Intn(len(tags))], Axis: axis}
		all = append(all, p)
		if depth < 3 {
			for k := 0; k < rng.Intn(3); k++ {
				p.Children = append(p.Children, build(depth+1, Axis(rng.Intn(2))))
			}
		}
		return p
	}
	root := build(0, Axis(rng.Intn(2)))
	all[rng.Intn(len(all))].Returning = true
	pt, err := NewPatternTree(root)
	if err != nil {
		panic(err)
	}
	return pt
}

// Property: the evaluator agrees with the brute-force oracle in all three
// modes, across page sizes, random documents, patterns and ACLs.
func TestEvaluateMatchesOracle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		doc := randomDoc(rng, 2+rng.Intn(80))
		numSubjects := 1 + rng.Intn(2)
		m := acl.NewMatrix(doc.Len(), numSubjects)
		for n := 0; n < doc.Len(); n++ {
			for s := 0; s < numSubjects; s++ {
				if rng.Intn(4) > 0 {
					m.Set(xmltree.NodeID(n), acl.SubjectID(s), true)
				}
			}
		}
		pageSize := 64 + rng.Intn(200)
		pool := storage.NewBufferPool(storage.NewMemPager(pageSize), 1024)
		ss, err := dol.BuildSecureStore(pool, doc, m, nok.BuildOptions{})
		if err != nil {
			return false
		}
		idx, err := btree.BuildFromDocument(pool, doc)
		if err != nil {
			return false
		}
		ev := NewEvaluator(ss.Store(), idx)
		pt := randomPattern(rng)
		subj := acl.SubjectID(rng.Intn(numSubjects))
		eff := bitset.FromIndices(numSubjects, int(subj))

		// Non-secure.
		res, err := ev.Evaluate(pt, Options{})
		if err != nil {
			return false
		}
		if !sameAnswers(res, oracleAnswers(doc, m, nil, pt, 0)) {
			return false
		}
		// Secure, bindings semantics.
		res, err = ev.Evaluate(pt, Options{View: ss.ViewSubject(subj)})
		if err != nil {
			return false
		}
		if !sameAnswers(res, oracleAnswers(doc, m, eff, pt, 1)) {
			return false
		}
		// Secure, bindings semantics, page skip disabled (ablation must
		// not change results).
		res2, err := ev.Evaluate(pt, Options{View: ss.ViewSubject(subj), DisablePageSkip: true})
		if err != nil {
			return false
		}
		if !sameAnswers(res2, oracleAnswers(doc, m, eff, pt, 1)) {
			return false
		}
		// Secure, pruned-subtree semantics.
		res, err = ev.Evaluate(pt, Options{View: ss.ViewSubject(subj), Semantics: SemanticsPrunedSubtree})
		if err != nil {
			return false
		}
		return sameAnswers(res, oracleAnswers(doc, m, eff, pt, 2))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func sameAnswers(res *Result, want map[xmltree.NodeID]bool) bool {
	if len(res.Nodes) != len(want) {
		return false
	}
	for _, n := range res.Nodes {
		if !want[n] {
			return false
		}
	}
	return true
}

func BenchmarkEvaluateTwig(b *testing.B) {
	rng := rand.New(rand.NewSource(17))
	doc := benchDoc(rng, 50000)
	m := allowAll(doc, 4)
	pool := storage.NewBufferPool(storage.NewMemPager(4096), 4096)
	ss, err := dol.BuildSecureStore(pool, doc, m, nok.BuildOptions{})
	if err != nil {
		b.Fatal(err)
	}
	idx, err := btree.BuildFromDocument(pool, doc)
	if err != nil {
		b.Fatal(err)
	}
	ev := NewEvaluator(ss.Store(), idx)
	pt := MustParse("//x[y]//z")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.Evaluate(pt, Options{View: ss.ViewSubject(0)}); err != nil {
			b.Fatal(err)
		}
	}
}

// Property: MatchDocument agrees with the brute-force oracle (non-secure).
func TestMatchDocumentMatchesOracle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		doc := randomDoc(rng, 2+rng.Intn(100))
		pt := randomPattern(rng)
		got := MatchDocument(doc, pt)
		want := oracleAnswers(doc, acl.NewMatrix(doc.Len(), 1), nil, pt, 0)
		if len(got) != len(want) {
			return false
		}
		for _, n := range got {
			if !want[n] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// The value index must not change results, only shrink candidate lists.
func TestValueIndexConsistency(t *testing.T) {
	doc := miniXMark(t)
	e := newEnv(t, doc, allowAll(doc, 1), 4096)
	vt, err := btree.BuildValueIndex(e.pool, doc)
	if err != nil {
		t.Fatal(err)
	}
	evWith := NewEvaluator(e.ss.Store(), nil).WithValueIndex(vt)
	// Pattern whose ROOT carries the value constraint so the value index
	// supplies the candidates; the tag index is deliberately nil to prove
	// it is not consulted.
	root := &PatternNode{Tag: "location", Value: "Kenya", Axis: AxisDescendant, Returning: true}
	pt, err := NewPatternTree(root)
	if err != nil {
		t.Fatal(err)
	}
	got, err := evWith.Evaluate(pt, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := e.ev.Evaluate(pt, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Nodes) != 1 || len(want.Nodes) != 1 || got.Nodes[0] != want.Nodes[0] {
		t.Fatalf("value-indexed answers %v, tag-indexed %v", got.Nodes, want.Nodes)
	}
}

// Property: evaluation with a value index equals evaluation without, for
// random value-constrained patterns.
func TestValueIndexProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := xmltree.NewBuilder()
		b.Begin("r")
		for i := 0; i < 2+rng.Intn(60); i++ {
			b.Begin([]string{"x", "y"}[rng.Intn(2)])
			if rng.Intn(2) == 0 {
				b.Text([]string{"v1", "v2", "v3"}[rng.Intn(3)])
			}
			if rng.Intn(3) == 0 {
				b.Element([]string{"x", "y"}[rng.Intn(2)], [4]string{"", "v1", "v2", "v3"}[rng.Intn(4)])
			}
			b.End()
		}
		b.End()
		doc := b.MustFinish()
		e := newEnv(t, doc, allowAll(doc, 1), 128)
		vt, err := btree.BuildValueIndex(e.pool, doc)
		if err != nil {
			return false
		}
		evWith := NewEvaluator(e.ss.Store(), nil).WithValueIndex(vt)
		root := &PatternNode{
			Tag:       []string{"x", "y"}[rng.Intn(2)],
			Value:     []string{"v1", "v2", "v3"}[rng.Intn(3)],
			Axis:      AxisDescendant,
			Returning: true,
		}
		pt, err := NewPatternTree(root)
		if err != nil {
			return false
		}
		got, err := evWith.Evaluate(pt, Options{})
		if err != nil {
			return false
		}
		want, err := e.ev.Evaluate(pt, Options{})
		if err != nil {
			return false
		}
		if len(got.Nodes) != len(want.Nodes) {
			return false
		}
		for i := range want.Nodes {
			if got.Nodes[i] != want.Nodes[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// benchDoc builds a random document with realistic bounded depth (~12) for
// benchmarks; the unconstrained randomDoc drifts toward path-shaped trees
// whose depth grows linearly with size, which misrepresents join and
// navigation costs on document-shaped data.
func benchDoc(rng *rand.Rand, n int) *xmltree.Document {
	b := xmltree.NewBuilder()
	b.Begin("r")
	depth := 1
	tags := []string{"x", "y", "z"}
	for i := 1; i < n; i++ {
		for depth > 1 && (depth >= 12 || rng.Intn(3) == 0) {
			b.End()
			depth--
		}
		b.Begin(tags[rng.Intn(len(tags))])
		depth++
	}
	for ; depth > 0; depth-- {
		b.End()
	}
	return b.MustFinish()
}
