package query

import (
	"sort"

	"dolxml/internal/xmltree"
)

// MatchDocument evaluates a pattern tree directly against an in-memory
// document, without access control or physical storage — used for rule
// target selection before a store is sealed, and as a reference
// implementation. It returns the distinct bindings of the returning node
// in document order.
func MatchDocument(doc *xmltree.Document, t *PatternTree) []xmltree.NodeID {
	ret := t.ReturningNode()

	// containsRet marks pattern nodes whose subtree holds the returning
	// node.
	containsRet := map[*PatternNode]bool{}
	var mark func(p *PatternNode) bool
	mark = func(p *PatternNode) bool {
		v := p == ret
		for _, c := range p.Children {
			if mark(c) {
				v = true
			}
		}
		containsRet[p] = v
		return v
	}
	mark(t.Root)

	matchesTag := func(p *PatternNode, n xmltree.NodeID) bool {
		if p.Tag != "*" && doc.Tag(n) != p.Tag {
			return false
		}
		return p.Value == "" || doc.Value(n) == p.Value
	}

	// Existential match memo for (pattern node, data node) pairs.
	type key struct {
		p *PatternNode
		n xmltree.NodeID
	}
	memo := map[key]bool{}
	var exists func(p *PatternNode, n xmltree.NodeID) bool
	exists = func(p *PatternNode, n xmltree.NodeID) bool {
		k := key{p, n}
		if v, ok := memo[k]; ok {
			return v
		}
		memo[k] = false // break cycles defensively; trees have none
		ok := matchesTag(p, n)
		if ok {
			for _, c := range p.Children {
				found := false
				if c.Axis == AxisChild {
					for v := doc.FirstChild(n); v != xmltree.InvalidNode && !found; v = doc.NextSibling(v) {
						found = exists(c, v)
					}
				} else {
					for v := n + 1; v <= doc.End(n) && !found; v++ {
						found = exists(c, v)
					}
				}
				if !found {
					ok = false
					break
				}
			}
		}
		memo[k] = ok
		return ok
	}

	// Walk the pattern path from the root toward ret, narrowing data
	// candidates; every node on the path must fully match (its other
	// branches existentially).
	var roots []xmltree.NodeID
	if t.Root.Axis == AxisChild {
		roots = []xmltree.NodeID{doc.Root()}
	} else {
		for n := 0; n < doc.Len(); n++ {
			roots = append(roots, xmltree.NodeID(n))
		}
	}
	cur := map[xmltree.NodeID]bool{}
	for _, r := range roots {
		if exists(t.Root, r) {
			cur[r] = true
		}
	}
	p := t.Root
	for p != ret {
		// Descend into the child whose subtree holds ret.
		var next *PatternNode
		for _, c := range p.Children {
			if containsRet[c] {
				next = c
				break
			}
		}
		if next == nil {
			break
		}
		nxt := map[xmltree.NodeID]bool{}
		for n := range cur {
			if next.Axis == AxisChild {
				for v := doc.FirstChild(n); v != xmltree.InvalidNode; v = doc.NextSibling(v) {
					if exists(next, v) {
						nxt[v] = true
					}
				}
			} else {
				for v := n + 1; v <= doc.End(n); v++ {
					if exists(next, v) {
						nxt[v] = true
					}
				}
			}
		}
		cur = nxt
		p = next
	}
	out := make([]xmltree.NodeID, 0, len(cur))
	for n := range cur {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
