package query

import (
	"context"
	"sync"
	"sync/atomic"

	"dolxml/internal/btree"
	"dolxml/internal/dol"
	"dolxml/internal/join"
	"dolxml/internal/obs"
	"dolxml/internal/xmltree"
)

// Tuple is one row of the operator pipeline: a full-width binding vector
// with one slot per tracked pattern node (see Evaluator.slotNodes). Unset
// slots hold binding{xmltree.InvalidNode, 0}.
type Tuple []binding

// Cursor is a pull-based pipeline operator in the Volcano style. Next
// returns the next tuple, or (nil, nil) once the input is exhausted; after
// an error or exhaustion the cursor must not be advanced again. Close
// stops any producer goroutines and releases their resources; it is
// idempotent and must be called no matter how far the cursor was drained.
type Cursor interface {
	Next(ctx context.Context) (Tuple, error)
	Close() error
}

// matchMsg carries one produced tuple (or a producer error) through a
// bounded channel.
type matchMsg struct {
	t   Tuple
	err error
}

// matchBuf bounds the run-ahead of match producers: small enough that a
// Limit-terminated query stops its page reads shortly after the limit is
// hit, large enough to decouple producer I/O from consumer processing.
const matchBuf = 8

// chanCursor adapts a push-style producer goroutine to the pull Cursor
// interface through a bounded channel. The producer starts lazily on the
// first Next, must honor its context, and the channel is closed when it
// returns — so a join whose left side is empty never starts its right
// producer at all.
type chanCursor struct {
	pctx    context.Context
	cancel  context.CancelFunc
	start   func(ctx context.Context, out chan<- matchMsg)
	once    sync.Once
	started bool
	out     chan matchMsg
	wg      sync.WaitGroup
	closed  bool
}

func newChanCursor(parent context.Context, start func(ctx context.Context, out chan<- matchMsg)) *chanCursor {
	pctx, cancel := context.WithCancel(parent)
	return &chanCursor{pctx: pctx, cancel: cancel, start: start, out: make(chan matchMsg, matchBuf)}
}

func (c *chanCursor) launch() {
	c.once.Do(func() {
		c.started = true
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			defer close(c.out)
			c.start(c.pctx, c.out)
		}()
	})
}

func (c *chanCursor) Next(ctx context.Context) (Tuple, error) {
	// Checked before the select so a cancelled consumer gets ctx's error
	// deterministically, even while buffered tuples remain.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	c.launch()
	select {
	case msg, ok := <-c.out:
		if !ok {
			return nil, nil
		}
		return msg.t, msg.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Close cancels the producer's context, then drains the channel until the
// producer closes it — unblocking any in-flight send — and waits for the
// goroutine to exit, so every buffer-pool pin the producer held is
// released before Close returns.
func (c *chanCursor) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	c.cancel()
	if c.started {
		for range c.out {
		}
		c.wg.Wait()
	}
	return nil
}

// sendMsg sends on the bounded channel, abandoning the send when the
// producer's context is cancelled. Reports whether the send happened.
func sendMsg(ctx context.Context, out chan<- matchMsg, msg matchMsg) bool {
	select {
	case out <- msg:
		return true
	case <-ctx.Done():
		return false
	}
}

// newMatchCursor returns a cursor producing subtree i's matches as tuples,
// in candidate order. Matches stream out of the ε-NoK matcher as they are
// found (npmStream), so the first tuple surfaces before the candidate scan
// finishes — the early-termination property Limit relies on. With enough
// candidates and workers > 1 the scan fans out across a worker pool.
func newMatchCursor(parent context.Context, ev *Evaluator, m *matcher, subs []NoKSubtree, i int, cands []btree.Posting, workers int) Cursor {
	if workers > 1 && len(cands) >= minParallelCandidates {
		return newParallelMatchCursor(parent, ev, m, subs, i, cands, workers)
	}
	sub := subs[i]
	return newChanCursor(parent, func(ctx context.Context, out chan<- matchMsg) {
		for _, c := range cands {
			stopped, err := m.matchCandidate(ctx, sub, c, func(sm subtreeMatch) bool {
				return sendMsg(ctx, out, matchMsg{t: ev.tupleFrom(subs, i, sm)})
			})
			if err != nil {
				sendMsg(ctx, out, matchMsg{err: err})
				return
			}
			if stopped {
				return
			}
		}
	})
}

// newParallelMatchCursor fans candidate matching out over a worker pool
// that feeds the cursor incrementally: workers claim candidate chunks from
// an atomic counter and deposit each chunk's matches into its own slot; an
// emitter forwards the slots in chunk order into the bounded output
// channel, so the tuple stream is byte-identical to the sequential scan.
// A semaphore caps how many chunks may be claimed beyond what the emitter
// has forwarded, so a consumer that stops pulling (Limit, cancellation)
// stops the workers' page reads after bounded run-ahead instead of
// matching every candidate.
func newParallelMatchCursor(parent context.Context, ev *Evaluator, m *matcher, subs []NoKSubtree, i int, cands []btree.Posting, workers int) Cursor {
	sub := subs[i]
	// More chunks than workers evens out candidate skew; clamp both so
	// fewer candidates than workers never spawns idle goroutines.
	chunks := workers * 4
	if chunks > len(cands) {
		chunks = len(cands)
	}
	if workers > chunks {
		workers = chunks
	}
	bounds := func(k int) (int, int) {
		return k * len(cands) / chunks, (k + 1) * len(cands) / chunks
	}
	return newChanCursor(parent, func(ctx context.Context, out chan<- matchMsg) {
		type chunkRes struct {
			ms  []subtreeMatch
			err error
		}
		slots := make([]chan chunkRes, chunks)
		for k := range slots {
			slots[k] = make(chan chunkRes, 1)
		}
		// Run-ahead bound: at most 2*workers chunks claimed beyond the
		// emitter's progress. Tokens are released by the emitter; a worker
		// that grabs a token after the last chunk was claimed keeps it,
		// which is harmless — no chunk is left for anyone to wait on.
		sem := make(chan struct{}, workers*2)
		var next atomic.Int64
		var wg sync.WaitGroup
		defer wg.Wait()
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case sem <- struct{}{}:
					case <-ctx.Done():
						return
					}
					k := int(next.Add(1)) - 1
					if k >= chunks {
						return
					}
					lo, hi := bounds(k)
					ms, err := m.matchSubtree(ctx, sub, cands[lo:hi])
					slots[k] <- chunkRes{ms, err} // cap 1: never blocks
				}
			}()
		}
		// Merge events attribute to this scan's operator when the pipeline
		// stamped one on the producer context, else to the plain trace.
		mergeTr := obs.TraceFromContext(ctx)
		if mergeTr == nil {
			mergeTr = m.trace
		}
		for k := 0; k < chunks; k++ {
			var res chunkRes
			select {
			case res = <-slots[k]:
			case <-ctx.Done():
				return
			}
			if res.err != nil {
				sendMsg(ctx, out, matchMsg{err: res.err})
				return
			}
			mergeTr.MergeChunk(k, len(res.ms))
			for _, sm := range res.ms {
				if !sendMsg(ctx, out, matchMsg{t: ev.tupleFrom(subs, i, sm)}) {
					return
				}
			}
			<-sem
		}
	})
}

// pathFilterCursor implements the Gabillon–Bruno root-path check on the
// top subtree's matches (pruned-subtree semantics): a match passes only if
// every node from the document root down to the match root is accessible.
// It probes an incremental ε-STD join with the document root as the lone
// ancestor; since input tuples arrive in candidate (document) order, the
// joiner's resumable page pass never reads past the last match probed.
type pathFilterCursor struct {
	ev   *Evaluator
	view *dol.SubjectView
	in   Cursor
	// tr is the operator's trace handle; the filter's own page reads run
	// under a context stamped with it (cached per incoming context so the
	// per-tuple path does not allocate).
	tr      *obs.Trace
	inCtx   context.Context
	wrapped context.Context

	opened        bool
	eps           *join.EpsJoiner
	lastRoot      xmltree.NodeID
	lastRootValid bool
	lastPass      bool
}

// opCtx returns ctx stamped with the filter's operator handle.
func (pc *pathFilterCursor) opCtx(ctx context.Context) context.Context {
	if pc.tr == nil {
		return ctx
	}
	if ctx != pc.inCtx {
		pc.inCtx = ctx
		pc.wrapped = obs.WithTrace(ctx, pc.tr)
	}
	return pc.wrapped
}

func (pc *pathFilterCursor) Next(ctx context.Context) (Tuple, error) {
	fctx := pc.opCtx(ctx)
	for {
		t, err := pc.in.Next(ctx)
		if err != nil || t == nil {
			return nil, err
		}
		root := t[0] // slot 0 is the top subtree's root binding
		pass := false
		switch {
		case pc.lastRootValid && root.node == pc.lastRoot:
			pass = pc.lastPass
		case root.node == 0:
			// The document root itself, when matched, is valid iff
			// accessible (it has no proper-ancestor path to check).
			pass, err = pc.view.AccessibleCtx(fctx, 0)
			if err != nil {
				return nil, err
			}
		default:
			if !pc.opened {
				rootEnd, err := pc.ev.store.SubtreeEndCtx(fctx, 0)
				if err != nil {
					return nil, err
				}
				pc.eps = join.NewEpsJoiner(pc.view.Store(), pc.view.Effective(),
					[]join.Item{{Node: 0, End: rootEnd, Level: 0}})
				pc.opened = true
			}
			end, err := pc.ev.store.SubtreeEndCtx(fctx, root.node)
			if err != nil {
				return nil, err
			}
			pairs, err := pc.eps.Probe(fctx, join.Item{Node: root.node, End: end, Level: root.level})
			if err != nil {
				return nil, err
			}
			pass = len(pairs) > 0
		}
		pc.lastRoot, pc.lastRootValid, pc.lastPass = root.node, true, pass
		if pass {
			return t, nil
		}
	}
}

func (pc *pathFilterCursor) Close() error { return pc.in.Close() }

// joinCursor combines the accumulated left tuples with subtree i's match
// stream via an incremental structural join on (link binding, subtree-root
// binding) — STD, or ε-STD under pruned-subtree semantics. The left side
// is small (already filtered/joined tuples) and is drained on the first
// Next; the right side streams, and because its match roots arrive in
// strictly increasing document order the stateful joiner is probed once
// per distinct root, with the ε-STD page pass stopping at the last root
// probed.
type joinCursor struct {
	ev       *Evaluator
	opts     Options
	left     Cursor
	right    Cursor
	linkSlot int
	base     int
	nSlots   int
	// tr is the operator's trace handle; the join's own page reads (the
	// ancestor and right-root SubtreeEnd lookups, the ε-STD page pass) run
	// under a context stamped with it.
	tr      *obs.Trace
	inCtx   context.Context
	wrapped context.Context

	opened      bool
	leftTuples  []Tuple
	tuplesByAnc map[xmltree.NodeID][]int

	std *join.STDJoiner
	eps *join.EpsJoiner

	lastRoot      xmltree.NodeID
	lastRootValid bool
	lastAncs      []xmltree.NodeID

	buf       []Tuple
	bufIdx    int
	rightDone bool
}

// opCtx returns ctx stamped with the join's operator handle.
func (jc *joinCursor) opCtx(ctx context.Context) context.Context {
	if jc.tr == nil {
		return ctx
	}
	if ctx != jc.inCtx {
		jc.inCtx = ctx
		jc.wrapped = obs.WithTrace(ctx, jc.tr)
	}
	return jc.wrapped
}

func (jc *joinCursor) open(ctx context.Context) error {
	defer jc.tr.Span(obs.EvJoinOpen)()
	jctx := jc.opCtx(ctx)
	jc.opened = true
	for {
		t, err := jc.left.Next(ctx)
		if err != nil {
			return err
		}
		if t == nil {
			break
		}
		jc.leftTuples = append(jc.leftTuples, t)
	}
	if len(jc.leftTuples) == 0 {
		// Empty join: never start the right producer.
		jc.rightDone = true
		return nil
	}
	// Distinct ancestor candidates from the link slot.
	ancSet := map[xmltree.NodeID]join.Item{}
	jc.tuplesByAnc = map[xmltree.NodeID][]int{}
	for ti, tp := range jc.leftTuples {
		b := tp[jc.linkSlot]
		jc.tuplesByAnc[b.node] = append(jc.tuplesByAnc[b.node], ti)
		if _, ok := ancSet[b.node]; ok {
			continue
		}
		end, err := jc.ev.store.SubtreeEndCtx(jctx, b.node)
		if err != nil {
			return err
		}
		ancSet[b.node] = join.Item{Node: b.node, End: end, Level: b.level}
	}
	ancs := make([]join.Item, 0, len(ancSet))
	for _, it := range ancSet {
		ancs = append(ancs, it)
	}
	join.SortItems(ancs)
	if jc.opts.View != nil && jc.opts.Semantics == SemanticsPrunedSubtree {
		jc.eps = join.NewEpsJoiner(jc.opts.View.Store(), jc.opts.View.Effective(), ancs)
	} else {
		jc.std = join.NewSTDJoiner(ancs)
	}
	return nil
}

func (jc *joinCursor) Next(ctx context.Context) (Tuple, error) {
	if !jc.opened {
		if err := jc.open(ctx); err != nil {
			return nil, err
		}
	}
	for {
		if jc.bufIdx < len(jc.buf) {
			t := jc.buf[jc.bufIdx]
			jc.bufIdx++
			return t, nil
		}
		jc.buf, jc.bufIdx = jc.buf[:0], 0
		if jc.rightDone {
			return nil, nil
		}
		rt, err := jc.right.Next(ctx)
		if err != nil {
			return nil, err
		}
		if rt == nil {
			jc.rightDone = true
			return nil, nil
		}
		root := rt[jc.base]
		if !jc.lastRootValid || root.node != jc.lastRoot {
			jctx := jc.opCtx(ctx)
			end, err := jc.ev.store.SubtreeEndCtx(jctx, root.node)
			if err != nil {
				return nil, err
			}
			d := join.Item{Node: root.node, End: end, Level: root.level}
			var pairs []join.Pair
			if jc.eps != nil {
				pairs, err = jc.eps.Probe(jctx, d)
				if err != nil {
					return nil, err
				}
			} else {
				pairs = jc.std.Probe(d)
			}
			jc.tr.JoinProbe(int64(root.node), len(pairs))
			jc.lastRoot, jc.lastRootValid = root.node, true
			jc.lastAncs = jc.lastAncs[:0]
			for _, p := range pairs {
				jc.lastAncs = append(jc.lastAncs, p.Anc)
			}
		}
		// Expand: one output per (left tuple whose link binds a paired
		// ancestor), with subtree i's slots taken from the right tuple.
		for _, anc := range jc.lastAncs {
			for _, ti := range jc.tuplesByAnc[anc] {
				tp := jc.leftTuples[ti]
				ntp := make(Tuple, len(tp))
				copy(ntp, tp)
				copy(ntp[jc.base:jc.base+jc.nSlots], rt[jc.base:jc.base+jc.nSlots])
				jc.buf = append(jc.buf, ntp)
			}
		}
	}
}

func (jc *joinCursor) Close() error {
	err := jc.left.Close()
	if err2 := jc.right.Close(); err == nil {
		err = err2
	}
	return err
}

// dedupCursor passes through only the first tuple per distinct
// returning-node binding, counting every input tuple (Result.Matches).
type dedupCursor struct {
	in      Cursor
	retSlot int
	seen    map[xmltree.NodeID]bool
	matches int
}

func (dc *dedupCursor) Next(ctx context.Context) (Tuple, error) {
	for {
		t, err := dc.in.Next(ctx)
		if err != nil || t == nil {
			return nil, err
		}
		dc.matches++
		n := t[dc.retSlot].node
		if !dc.seen[n] {
			dc.seen[n] = true
			return t, nil
		}
	}
}

func (dc *dedupCursor) Close() error { return dc.in.Close() }

// limitCursor stops the stream after n tuples — the early-termination
// operator behind Options.Limit.
type limitCursor struct {
	in        Cursor
	remaining int
}

func (lc *limitCursor) Next(ctx context.Context) (Tuple, error) {
	if lc.remaining <= 0 {
		return nil, nil
	}
	t, err := lc.in.Next(ctx)
	if err != nil || t == nil {
		return nil, err
	}
	lc.remaining--
	return t, nil
}

func (lc *limitCursor) Close() error { return lc.in.Close() }

// pipeline is the root of an opened operator tree. Close cancels the
// pipeline context first, so producers blocked on sends or page fetches
// unwind, then closes the operator tree (which waits for them).
type pipeline struct {
	Cursor
	cancel context.CancelFunc
	closed bool
}

func (p *pipeline) Close() error {
	if p.closed {
		return nil
	}
	p.closed = true
	p.cancel()
	return p.Cursor.Close()
}
