// Package query implements twig queries over NoK/DOL stores: an XPath
// subset parser producing pattern trees, the decomposition of pattern
// trees into NoK subtrees connected by ancestor-descendant edges (paper
// §3.1), the ε-NoK secure pattern-matching algorithm (Algorithm 1) and its
// non-secure counterpart, and the end-to-end evaluator that combines NoK
// subtree matches with structural joins under either of the paper's two
// secure-evaluation semantics (§4, §4.2).
package query

import (
	"fmt"
	"strings"
)

// Axis is the relationship of a pattern node to its pattern parent.
type Axis int

// Supported axes.
const (
	// AxisChild is the parent-child axis ("/"). On the pattern root it
	// anchors the match to the document root.
	AxisChild Axis = iota
	// AxisDescendant is the ancestor-descendant axis ("//"). On the
	// pattern root it allows matches anywhere in the document.
	AxisDescendant
)

func (a Axis) String() string {
	if a == AxisDescendant {
		return "//"
	}
	return "/"
}

// PatternNode is one node of a twig query pattern tree.
type PatternNode struct {
	// Tag is the required tag name; "*" matches any tag.
	Tag string
	// Value, when non-empty, requires the matched node's text value to
	// equal it.
	Value string
	// Axis relates the node to its pattern parent (or anchors the root).
	Axis Axis
	// Children are the node's pattern children in query order.
	Children []*PatternNode
	// Returning marks the node whose bindings form the query result.
	Returning bool

	id int // dense index assigned by the pattern tree
}

// PatternTree is a twig query.
type PatternTree struct {
	Root  *PatternNode
	nodes []*PatternNode // by id, in a preorder walk
}

// NewPatternTree finalizes a hand-built pattern rooted at root: it assigns
// node IDs and validates that exactly one node is marked returning (when
// none is, the root becomes the returning node, matching the paper's
// convention of one returning node per pattern tree).
func NewPatternTree(root *PatternNode) (*PatternTree, error) {
	if root == nil {
		return nil, fmt.Errorf("query: nil pattern root")
	}
	t := &PatternTree{Root: root}
	returning := 0
	var walk func(p *PatternNode) error
	walk = func(p *PatternNode) error {
		if p.Tag == "" {
			return fmt.Errorf("query: pattern node with empty tag")
		}
		p.id = len(t.nodes)
		t.nodes = append(t.nodes, p)
		if p.Returning {
			returning++
		}
		for _, c := range p.Children {
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(root); err != nil {
		return nil, err
	}
	switch returning {
	case 0:
		root.Returning = true
	case 1:
	default:
		return nil, fmt.Errorf("query: %d returning nodes, want at most 1", returning)
	}
	return t, nil
}

// Len returns the number of pattern nodes.
func (t *PatternTree) Len() int { return len(t.nodes) }

// ReturningNode returns the pattern node whose bindings are the result.
func (t *PatternTree) ReturningNode() *PatternNode {
	for _, n := range t.nodes {
		if n.Returning {
			return n
		}
	}
	return t.Root
}

// String renders the pattern as an XPath-like expression.
func (t *PatternTree) String() string {
	var sb strings.Builder
	var walk func(p *PatternNode, top bool)
	walk = func(p *PatternNode, top bool) {
		sb.WriteString(p.Axis.String())
		sb.WriteString(p.Tag)
		if p.Value != "" {
			fmt.Fprintf(&sb, "[.=%q]", p.Value)
		}
		// Render all but the last child as predicates, the last child as
		// path continuation — a readable approximation.
		for i, c := range p.Children {
			if i < len(p.Children)-1 {
				sb.WriteString("[")
				walk(c, false)
				sb.WriteString("]")
			} else {
				walk(c, false)
			}
		}
	}
	walk(t.Root, true)
	return sb.String()
}

// NoKSubtree is one unit of the pattern decomposition: a maximal pattern
// fragment connected purely by parent-child edges. Subtrees are linked by
// the ancestor-descendant edges that were cut.
type NoKSubtree struct {
	// Root is the subtree's pattern root.
	Root *PatternNode
	// Parent is the index of the parent subtree (-1 for the top).
	Parent int
	// Link is the pattern node inside the parent subtree from which the
	// cut ancestor-descendant edge originates (nil for the top).
	Link *PatternNode
}

// Decompose splits the pattern tree into NoK subtrees at its descendant
// edges, returning the subtrees in a parents-before-children order (§3.1).
func (t *PatternTree) Decompose() []NoKSubtree {
	var subs []NoKSubtree
	var walk func(p *PatternNode, subIdx int)
	walk = func(p *PatternNode, subIdx int) {
		for _, c := range p.Children {
			if c.Axis == AxisDescendant {
				childIdx := len(subs)
				subs = append(subs, NoKSubtree{Root: c, Parent: subIdx, Link: p})
				walk(c, childIdx)
			} else {
				walk(c, subIdx)
			}
		}
	}
	subs = append(subs, NoKSubtree{Root: t.Root, Parent: -1})
	walk(t.Root, 0)
	return subs
}

// nokChildren returns p's pattern children connected by the child axis —
// the children Algorithm 1 must match within one NoK subtree.
func nokChildren(p *PatternNode) []*PatternNode {
	var out []*PatternNode
	for _, c := range p.Children {
		if c.Axis == AxisChild {
			out = append(out, c)
		}
	}
	return out
}

// descendantChildren returns p's pattern children connected by the
// descendant axis (the cut edges).
func descendantChildren(p *PatternNode) []*PatternNode {
	var out []*PatternNode
	for _, c := range p.Children {
		if c.Axis == AxisDescendant {
			out = append(out, c)
		}
	}
	return out
}
