package query

import (
	"fmt"
	"strings"
	"unicode"
)

// Parse compiles an XPath-subset expression into a pattern tree. The
// supported grammar covers the paper's query classes (Table 1):
//
//	path      := ("/" | "//") step { ("/" | "//") step }
//	step      := name { predicate }
//	predicate := "[" relpath "]" | "[" relpath "=" literal "]"
//	relpath   := step { ("/" | "//") step } | "//" step { ... }
//	name      := NCName | "*"
//	literal   := "'" chars "'" | `"` chars `"`
//
// The last step of the main path is the returning node. A leading "/"
// anchors the match at the document root; "//" matches anywhere.
func Parse(expr string) (*PatternTree, error) {
	p := &parser{src: expr}
	root, err := p.parsePath(true)
	if err != nil {
		return nil, fmt.Errorf("query: parse %q: %w", expr, err)
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("query: parse %q: trailing input at offset %d", expr, p.pos)
	}
	return NewPatternTree(root)
}

// MustParse is Parse that panics on error, for statically correct queries.
func MustParse(expr string) *PatternTree {
	t, err := Parse(expr)
	if err != nil {
		panic(err)
	}
	return t
}

type parser struct {
	src string
	pos int
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) && p.src[p.pos] == ' ' {
		p.pos++
	}
}

func (p *parser) peek() byte {
	if p.pos < len(p.src) {
		return p.src[p.pos]
	}
	return 0
}

// parseAxis consumes "/" or "//" and returns the axis.
func (p *parser) parseAxis() (Axis, error) {
	p.skipSpace()
	if p.peek() != '/' {
		return AxisChild, fmt.Errorf("expected '/' at offset %d", p.pos)
	}
	p.pos++
	if p.peek() == '/' {
		p.pos++
		return AxisDescendant, nil
	}
	return AxisChild, nil
}

func isNameStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_' || r == '@'
}

func isNamePart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || strings.ContainsRune("_-.", r)
}

func (p *parser) parseName() (string, error) {
	p.skipSpace()
	if p.peek() == '*' {
		p.pos++
		return "*", nil
	}
	start := p.pos
	for i, r := range p.src[p.pos:] {
		if i == 0 {
			if !isNameStart(r) {
				return "", fmt.Errorf("expected name at offset %d", p.pos)
			}
			continue
		}
		if !isNamePart(r) {
			p.pos += i
			return p.src[start:p.pos], nil
		}
	}
	if start == len(p.src) {
		return "", fmt.Errorf("expected name at end of input")
	}
	p.pos = len(p.src)
	return p.src[start:], nil
}

// parsePath parses a slash-separated path; the final step is marked
// returning when top is true.
func (p *parser) parsePath(top bool) (*PatternNode, error) {
	axis, err := p.parseAxis()
	if err != nil {
		return nil, err
	}
	root, err := p.parseStep(axis)
	if err != nil {
		return nil, err
	}
	last := root
	for {
		p.skipSpace()
		if p.peek() != '/' {
			break
		}
		axis, err := p.parseAxis()
		if err != nil {
			return nil, err
		}
		step, err := p.parseStep(axis)
		if err != nil {
			return nil, err
		}
		last.Children = append(last.Children, step)
		last = step
	}
	if top {
		last.Returning = true
	}
	return root, nil
}

// parseStep parses a name plus predicates.
func (p *parser) parseStep(axis Axis) (*PatternNode, error) {
	name, err := p.parseName()
	if err != nil {
		return nil, err
	}
	node := &PatternNode{Tag: name, Axis: axis}
	for {
		p.skipSpace()
		if p.peek() != '[' {
			break
		}
		p.pos++ // consume '['
		pred, err := p.parsePredicate()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.peek() != ']' {
			return nil, fmt.Errorf("expected ']' at offset %d", p.pos)
		}
		p.pos++
		node.Children = append(node.Children, pred)
	}
	return node, nil
}

// parsePredicate parses the inside of a [...] qualifier: a relative path
// with optional "= literal" value constraint on its last step.
func (p *parser) parsePredicate() (*PatternNode, error) {
	p.skipSpace()
	var axis Axis = AxisChild
	if p.peek() == '/' {
		var err error
		axis, err = p.parseAxis()
		if err != nil {
			return nil, err
		}
	}
	root, err := p.parseStep(axis)
	if err != nil {
		return nil, err
	}
	last := root
	for {
		p.skipSpace()
		if p.peek() != '/' {
			break
		}
		axis, err := p.parseAxis()
		if err != nil {
			return nil, err
		}
		step, err := p.parseStep(axis)
		if err != nil {
			return nil, err
		}
		last.Children = append(last.Children, step)
		last = step
	}
	p.skipSpace()
	if p.peek() == '=' {
		p.pos++
		lit, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		last.Value = lit
	}
	return root, nil
}

func (p *parser) parseLiteral() (string, error) {
	p.skipSpace()
	q := p.peek()
	if q != '\'' && q != '"' {
		return "", fmt.Errorf("expected quoted literal at offset %d", p.pos)
	}
	p.pos++
	end := strings.IndexByte(p.src[p.pos:], q)
	if end < 0 {
		return "", fmt.Errorf("unterminated literal at offset %d", p.pos)
	}
	lit := p.src[p.pos : p.pos+end]
	p.pos += end + 1
	return lit, nil
}
