package query

import (
	"context"
	"fmt"
	"runtime"
	"sort"

	"dolxml/internal/btree"
	"dolxml/internal/dol"
	"dolxml/internal/nok"
	"dolxml/internal/obs"
	"dolxml/internal/xmltree"
)

// Semantics selects the secure-evaluation semantics.
type Semantics int

const (
	// SemanticsBindings is the Cho et al. semantics used throughout §4:
	// a result is valid when every data node bound by the pattern match
	// is accessible; inaccessible nodes elsewhere (including on the
	// ancestor-descendant paths between NoK subtrees) do not disqualify
	// it.
	SemanticsBindings Semantics = iota
	// SemanticsPrunedSubtree is the Gabillon–Bruno semantics of §4.2: a
	// subtree rooted at an inaccessible node can contribute nothing, so
	// every node on the path from the document root through all join
	// edges to the bound nodes must be accessible. Joins use ε-STD.
	SemanticsPrunedSubtree
)

// Options configure an evaluation.
type Options struct {
	// View enables secure evaluation for the given subject view; nil
	// evaluates without access control.
	View *dol.SubjectView
	// Semantics selects the secure semantics (ignored when View is nil).
	Semantics Semantics
	// DisablePageSkip turns off the §3.3 page-skipping optimization, for
	// ablation experiments.
	DisablePageSkip bool
	// DisableSummarySkip turns off the structure-aware half of the fused
	// skip mask: child scans then skip pages only on access-control
	// grounds, never because the per-page summaries exclude the pattern's
	// tags. For ablation experiments; answers are identical either way.
	DisableSummarySkip bool
	// DisablePathSummary turns off path-summary routing: unsatisfiable
	// patterns are then discovered by scanning, candidate postings are not
	// filtered by path class, dead-page bits lose the path refinement, and
	// uniform-class access verdicts are checked per node again. For
	// ablation experiments; answers are identical either way.
	DisablePathSummary bool
	// Parallelism bounds the worker pool that fans NoK-subtree candidate
	// matching out across goroutines. 0 (the zero value) means
	// runtime.GOMAXPROCS(0); 1 forces fully sequential evaluation.
	// Results are deterministic: every setting produces byte-identical
	// Result contents.
	Parallelism int
	// Limit, when positive, stops evaluation after that many distinct
	// answers: the cursor pipeline terminates early and the pages beyond
	// the last match needed are never read. Result.Matches then counts
	// only the tuples consumed before the limit was reached.
	Limit int
	// Trace, when non-nil, records the evaluation's span and page events:
	// skip-mask compilation, every page skipped (with cause), candidate
	// rejections, join probes, parallel merge chunks, and emitted answers.
	// Carry the same trace in the ctx passed to Open/Next (obs.WithTrace)
	// so buffer-pool pin events are attributed too — the securexml facade
	// does both.
	Trace *obs.Trace
}

// workers resolves the effective worker count.
func (o Options) workers() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// Result is the outcome of evaluating a twig query.
type Result struct {
	// Nodes are the distinct bindings of the returning pattern node, in
	// document order — the "answers returned" of Figure 7.
	Nodes []xmltree.NodeID
	// Matches counts the combined pattern-match tuples before returning-
	// node deduplication.
	Matches int
	// Skips reports how many page reads the fused skip mask avoided.
	Skips SkipStats
}

// Evaluator evaluates twig queries against one NoK store using a tag
// index for NoK-subtree root candidates, and optionally a value index for
// value-constrained roots ("B+ trees on the subtree root's value or tag
// names", §4.1).
type Evaluator struct {
	store  *nok.Store
	index  *btree.Tree
	vindex *btree.ValueTree
	// masks, when non-nil, memoizes compiled query shapes for the snapshot
	// identified by seq (see Snapshot.Masks).
	masks *MaskCache
	seq   uint64
}

// NewEvaluator returns an evaluator over the given store and tag index.
func NewEvaluator(store *nok.Store, index *btree.Tree) *Evaluator {
	return &Evaluator{store: store, index: index}
}

// Snapshot bundles the immutable structures one query evaluates against: a
// frozen structure store plus the tag and value indexes built from it. The
// facade pins one snapshot per query (or per repeatable-read session) and
// threads it through the evaluator and cursor pipeline, so evaluation
// never assumes "the current store" and concurrent updates cannot change
// an in-flight query's view.
type Snapshot struct {
	// Store is the frozen structure store (pages, directory, summaries,
	// codes); it must not be mutated while the snapshot is in use.
	Store *nok.Store
	// Index is the tag index over Store.
	Index *btree.Tree
	// Values is the optional (tag, value) index over Store; nil disables
	// value-constraint index lookups.
	Values *btree.ValueTree
	// Masks, when non-nil, memoizes compiled query shapes for this
	// snapshot; Seq is the publishing sequence stamped on cache entries
	// (every commit bumps it, so stale shapes can never hit).
	Masks *MaskCache
	Seq   uint64
}

// NewEvaluatorAt returns an evaluator bound to one immutable snapshot.
func NewEvaluatorAt(sn Snapshot) *Evaluator {
	return &Evaluator{store: sn.Store, index: sn.Index, vindex: sn.Values, masks: sn.Masks, seq: sn.Seq}
}

// WithValueIndex attaches a (tag, value) index consulted when a NoK
// subtree root carries a value constraint, shrinking its candidate list
// from all same-tag nodes to exact matches. Returns the evaluator for
// chaining.
func (ev *Evaluator) WithValueIndex(vt *btree.ValueTree) *Evaluator {
	ev.vindex = vt
	return ev
}

// Evaluate runs the pattern tree under the given options: it decomposes
// the pattern into NoK subtrees, matches each with (ε-)NoK pattern
// matching, and combines the matches with (ε-)STD structural joins.
func (ev *Evaluator) Evaluate(t *PatternTree, opts Options) (*Result, error) {
	return ev.EvaluateCtx(context.Background(), t, opts)
}

// EvaluateCtx is Evaluate with cancellation and early termination: it
// opens the cursor pipeline, drains it (up to opts.Limit answers when
// set), and assembles the Result. Cancelling ctx aborts the evaluation at
// the next page-fetch boundary with ctx's error; no buffer-pool frames
// stay pinned.
func (ev *Evaluator) EvaluateCtx(ctx context.Context, t *PatternTree, opts Options) (*Result, error) {
	a, err := ev.Open(ctx, t, opts)
	if err != nil {
		return nil, err
	}
	defer a.Close()
	var nodes []xmltree.NodeID
	for {
		n, ok, err := a.Next(ctx)
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	return &Result{Nodes: nodes, Matches: a.Matches(), Skips: a.SkipStats()}, nil
}

// Answers is a streaming cursor over a query's answers: the distinct
// bindings of the returning pattern node, in discovery order (not document
// order — sort after draining if document order matters). It is the public
// face of the operator pipeline; Close must be called exactly once, and
// releases the pipeline's producers and page pins no matter how far the
// cursor was drained.
type Answers struct {
	p       *pipeline
	retSlot int
	matches *int
	skips   *skipMask
	trace   *obs.Trace
	// pathEmpty records that path routing proved the query empty before
	// any page was pinned; pathClasses counts access verdicts resolved at
	// the path-class level, pathCands counts candidates it rejected.
	pathEmpty   bool
	pathClasses int64
	pathCands   int64
}

// Open builds the cursor pipeline for the pattern tree without draining
// it. ctx governs the whole lifetime of the returned cursor: cancelling it
// aborts in-flight producers at their next page-fetch boundary.
func (ev *Evaluator) Open(ctx context.Context, t *PatternTree, opts Options) (*Answers, error) {
	defer opts.Trace.Span(obs.EvOpen)()
	subs := t.Decompose()
	ret := t.ReturningNode()

	// Track bindings for link sources and the returning node.
	tracked := map[*PatternNode]bool{ret: true}
	for _, sub := range subs {
		if sub.Link != nil {
			tracked[sub.Link] = true
		}
		tracked[sub.Root] = true
	}
	var checker AccessChecker
	if opts.View != nil {
		checker = opts.View
	}
	retSlot := -1
	for i := range subs {
		if s := ev.slotOfNode(subs, i, ret); s >= 0 {
			retSlot = s
			break
		}
	}
	if retSlot < 0 {
		return nil, fmt.Errorf("query: returning node not tracked")
	}

	// Compile the query's fused skip mask once: the view's page-deny bitmap
	// (unless access skipping is ablated) plus the view-independent shape —
	// per-page tag/depth bits and, when path routing is on, the path
	// summary's class placement. The shape is memoized per (pattern,
	// snapshot) when the evaluator carries a MaskCache.
	accessSkip := opts.View != nil && !opts.DisablePageSkip
	structSkip := !opts.DisableSummarySkip
	pathOn := !opts.DisablePathSummary && ev.store.Paths() != nil
	var (
		sm    *skipMask
		shape *compiledShape
		route *pathRoute
	)
	if accessSkip || structSkip || pathOn {
		endCompile := opts.Trace.Span(obs.EvCompile)
		if structSkip || pathOn {
			shape = ev.shapeFor(t, subs, structSkip, pathOn)
		}
		if shape != nil && shape.emptyStruct {
			// The pattern has no embedding in the path summary: no document
			// node can match it. Return before any candidate lookup — an
			// anchored top subtree's candidate would otherwise pin pages.
			endCompile()
			opts.Trace.Mark(obs.EvPathEmpty)
			return emptyAnswers(opts, retSlot), nil
		}
		route = resolvePathAccess(ev.store, t, subs, shape, opts.View)
		if route != nil && route.emptyAccess {
			// Every class some pattern node can bind is uniformly denied to
			// this view: no accessible answer exists.
			endCompile()
			opts.Trace.Mark(obs.EvPathEmpty)
			a := emptyAnswers(opts, retSlot)
			a.pathClasses = route.preResolved
			return a, nil
		}
		sm = fuseMask(ev.store, t, shape, opts.View, accessSkip)
		if sm != nil {
			sm.trace = opts.Trace
			// Per-node operator handles: a page skipped while scanning for
			// pattern node p attributes to p's subtree's scan operator.
			// Resolved here, before prepare captures the scan closures.
			if opts.Trace != nil {
				sm.nodeTrace = make(map[*PatternNode]*obs.Trace, t.Len())
				for i := range subs {
					h := opts.Trace.ForOp(opScan(i))
					var walk func(p *PatternNode)
					walk = func(p *PatternNode) {
						sm.nodeTrace[p] = h
						for _, c := range nokChildren(p) {
							walk(c)
						}
					}
					walk(subs[i].Root)
				}
			}
		}
		endCompile()
	}
	m := &matcher{
		store:    ev.store,
		values:   ev.store.Values(),
		checker:  checker,
		pageSkip: !opts.DisablePageSkip,
		tracked:  tracked,
		masks:    sm,
		trace:    opts.Trace,
	}
	if route != nil {
		m.preAllow = route.preAllow
		m.preAllowRoot = route.preAllowRoot
	}
	// Freeze the matcher's derived state so match producers can share it
	// across workers.
	m.prepare(subs)
	workers := opts.workers()

	// Assemble the operator tree bottom-up: per-subtree match producers,
	// the pruned-subtree root-path filter on the top subtree, one
	// structural-join operator per cut edge, then dedup and limit.
	pctx, cancel := context.WithCancel(ctx)
	var cur Cursor
	var pathCands int64
	for i := range subs {
		// Stamp this subtree's scan operator on every page pin its
		// candidate lookup and match producers perform: the anchored top
		// candidate, streaming matches, and parallel chunk workers all run
		// under sctx.
		scanTr := opts.Trace.ForOp(opScan(i))
		sctx := pctx
		if scanTr != nil {
			sctx = obs.WithTrace(pctx, scanTr)
		}
		cands, err := ev.candidates(sctx, t, subs[i], i == 0)
		if err != nil {
			cancel()
			if cur != nil {
				cur.Close()
			}
			return nil, err
		}
		// Route candidates through the path summary: a posting whose block
		// holds no class this subtree root can bind cannot contribute an
		// answer, so it is rejected before any page is read for it.
		if shape != nil && shape.candKeep != nil && shape.candKeep[i] != nil {
			kept := make([]btree.Posting, 0, len(cands))
			for _, c := range cands {
				if hasBit(shape.candKeep[i], ev.store.PageIndexOf(c.Node)) {
					kept = append(kept, c)
					continue
				}
				pathCands++
				scanTr.CandidateReject(int64(c.Node), sm.pageIDOf(ev.store.PageIndexOf(c.Node)))
			}
			cands = kept
		}
		rc := newMatchCursor(sctx, ev, m, subs, i, cands, workers)
		if i == 0 {
			if opts.View != nil && opts.Semantics == SemanticsPrunedSubtree {
				rc = &pathFilterCursor{ev: ev, view: opts.View, in: rc, tr: opts.Trace.ForOp(opFilter)}
			}
			cur = rc
		} else {
			cur = &joinCursor{
				ev:       ev,
				opts:     opts,
				tr:       opts.Trace.ForOp(opJoin(i)),
				left:     cur,
				right:    rc,
				linkSlot: ev.slotOf(subs, subs[i].Parent, subs[i].Link),
				base:     ev.slotBase(subs, i),
				nSlots:   len(ev.slotNodes(subs, i)),
			}
		}
	}
	dd := &dedupCursor{in: cur, retSlot: retSlot, seen: map[xmltree.NodeID]bool{}}
	var top Cursor = dd
	if opts.Limit > 0 {
		top = &limitCursor{in: dd, remaining: opts.Limit}
	}
	a := &Answers{
		p:         &pipeline{Cursor: top, cancel: cancel},
		retSlot:   retSlot,
		matches:   &dd.matches,
		skips:     sm,
		trace:     opts.Trace,
		pathCands: pathCands,
	}
	if route != nil {
		a.pathClasses = route.preResolved
	}
	return a, nil
}

// shapeFor compiles (or recalls) the query's view-independent shape.
func (ev *Evaluator) shapeFor(t *PatternTree, subs []NoKSubtree, structSkip, pathOn bool) *compiledShape {
	build := func() *compiledShape { return compileShape(ev.store, t, subs, structSkip, pathOn) }
	if ev.masks == nil {
		return build()
	}
	key := maskKey{pattern: t.String(), structSkip: structSkip, pathOn: pathOn}
	return ev.masks.shapeFor(key, ev.seq, build)
}

// emptyCursor is the pipeline of a query proven empty at compile time.
type emptyCursor struct{}

func (emptyCursor) Next(ctx context.Context) (Tuple, error) { return nil, nil }
func (emptyCursor) Close() error                            { return nil }

// emptyAnswers builds the Answers of a query proven empty before any page
// was pinned.
func emptyAnswers(opts Options, retSlot int) *Answers {
	return &Answers{
		p:         &pipeline{Cursor: emptyCursor{}, cancel: func() {}},
		retSlot:   retSlot,
		matches:   new(int),
		trace:     opts.Trace,
		pathEmpty: true,
	}
}

// Next returns the next distinct answer; ok is false once the stream is
// exhausted or the Limit was reached.
func (a *Answers) Next(ctx context.Context) (n xmltree.NodeID, ok bool, err error) {
	tp, err := a.p.Next(ctx)
	if err != nil || tp == nil {
		return xmltree.InvalidNode, false, err
	}
	n = tp[a.retSlot].node
	a.trace.Emit(int64(n))
	return n, true, nil
}

// Matches counts the combined pattern-match tuples consumed so far — after
// a full drain, the Result.Matches of Evaluate.
func (a *Answers) Matches() int { return *a.matches }

// SkipStats snapshots how many page reads the query's fused skip mask has
// avoided so far, by cause, plus the path-routing outcomes fixed at Open.
// Zero when skipping was disabled.
func (a *Answers) SkipStats() SkipStats {
	s := a.skips.stats()
	s.PathCandidates = a.pathCands
	s.PathClasses = a.pathClasses
	if a.pathEmpty {
		s.PathEmpty = 1
	}
	return s
}

// Close stops the pipeline's producers, waits for them to exit, and
// releases every buffer-pool pin they held. Idempotent.
func (a *Answers) Close() error { return a.p.Close() }

// subtreeContains reports whether pattern node p belongs to subtree i
// (reachable from its root through child-axis edges).
func (ev *Evaluator) subtreeContains(subs []NoKSubtree, i int, p *PatternNode) bool {
	var walk func(x *PatternNode) bool
	walk = func(x *PatternNode) bool {
		if x == p {
			return true
		}
		for _, c := range nokChildren(x) {
			if walk(c) {
				return true
			}
		}
		return false
	}
	return walk(subs[i].Root)
}

func (ev *Evaluator) slotBase(subs []NoKSubtree, i int) int {
	base := 0
	for k := 0; k < i; k++ {
		base += len(ev.slotNodes(subs, k))
	}
	return base
}

// slotNodes lists the pattern nodes of subtree i that occupy tuple slots:
// the subtree root, link sources inside it, and the returning node when it
// lies inside.
func (ev *Evaluator) slotNodes(subs []NoKSubtree, i int) []*PatternNode {
	sub := subs[i]
	set := map[*PatternNode]bool{sub.Root: true}
	order := []*PatternNode{sub.Root}
	for _, other := range subs {
		if other.Link != nil && ev.subtreeContains(subs, i, other.Link) && !set[other.Link] {
			set[other.Link] = true
			order = append(order, other.Link)
		}
	}
	// Returning node.
	var ret *PatternNode
	var findRet func(x *PatternNode)
	findRet = func(x *PatternNode) {
		if x.Returning {
			ret = x
		}
		for _, c := range x.Children {
			findRet(c)
		}
	}
	for _, s := range subs {
		findRet(s.Root)
	}
	if ret != nil && ev.subtreeContains(subs, i, ret) && !set[ret] {
		set[ret] = true
		order = append(order, ret)
	}
	return order
}

// slotOf returns the tuple slot of pattern node p within subtree i.
func (ev *Evaluator) slotOf(subs []NoKSubtree, i int, p *PatternNode) int {
	s := ev.slotOfNode(subs, i, p)
	if s < 0 {
		panic("query: pattern node has no tuple slot")
	}
	return s
}

func (ev *Evaluator) slotOfNode(subs []NoKSubtree, i int, p *PatternNode) int {
	nodes := ev.slotNodes(subs, i)
	for k, n := range nodes {
		if n == p {
			return ev.slotBase(subs, i) + k
		}
	}
	return -1
}

// tupleFrom expands a subtree match into a full-width tuple with only this
// subtree's slots populated.
func (ev *Evaluator) tupleFrom(subs []NoKSubtree, i int, sm subtreeMatch) Tuple {
	width := ev.slotBase(subs, len(subs)-1) + len(ev.slotNodes(subs, len(subs)-1))
	tp := make(Tuple, width)
	for k := range tp {
		tp[k] = binding{xmltree.InvalidNode, 0}
	}
	base := ev.slotBase(subs, i)
	for k, n := range ev.slotNodes(subs, i) {
		if b, ok := sm.bindings[n]; ok {
			tp[base+k] = b
		} else if n == subs[i].Root {
			tp[base+k] = sm.root
		}
	}
	return tp
}

// candidates returns the root candidates for a NoK subtree: the document
// root for an anchored top subtree, otherwise the tag-index postings
// ("using B+ trees on the subtree root's ... tag names", §4.1).
func (ev *Evaluator) candidates(ctx context.Context, t *PatternTree, sub NoKSubtree, top bool) ([]btree.Posting, error) {
	if top && t.Root.Axis == AxisChild {
		end, err := ev.store.SubtreeEndCtx(ctx, 0)
		if err != nil {
			return nil, err
		}
		return []btree.Posting{{Node: 0, End: end, Level: 0}}, nil
	}
	if sub.Root.Tag == "*" {
		// Wildcard root: union of all tags' postings, in document order.
		var all []btree.Posting
		for code := 0; code < ev.store.NumTags(); code++ {
			ps, err := ev.index.Postings(int32(code))
			if err != nil {
				return nil, err
			}
			all = append(all, ps...)
		}
		sort.Slice(all, func(i, j int) bool { return all[i].Node < all[j].Node })
		return all, nil
	}
	code, ok := ev.store.LookupTag(sub.Root.Tag)
	if !ok {
		return nil, nil
	}
	if sub.Root.Value != "" && ev.vindex != nil {
		return ev.vindex.ValuePostings(code, sub.Root.Value)
	}
	return ev.index.Postings(code)
}
