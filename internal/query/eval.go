package query

import (
	"fmt"
	"runtime"
	"sort"

	"dolxml/internal/btree"
	"dolxml/internal/dol"
	"dolxml/internal/join"
	"dolxml/internal/nok"
	"dolxml/internal/xmltree"
)

// Semantics selects the secure-evaluation semantics.
type Semantics int

const (
	// SemanticsBindings is the Cho et al. semantics used throughout §4:
	// a result is valid when every data node bound by the pattern match
	// is accessible; inaccessible nodes elsewhere (including on the
	// ancestor-descendant paths between NoK subtrees) do not disqualify
	// it.
	SemanticsBindings Semantics = iota
	// SemanticsPrunedSubtree is the Gabillon–Bruno semantics of §4.2: a
	// subtree rooted at an inaccessible node can contribute nothing, so
	// every node on the path from the document root through all join
	// edges to the bound nodes must be accessible. Joins use ε-STD.
	SemanticsPrunedSubtree
)

// Options configure an evaluation.
type Options struct {
	// View enables secure evaluation for the given subject view; nil
	// evaluates without access control.
	View *dol.SubjectView
	// Semantics selects the secure semantics (ignored when View is nil).
	Semantics Semantics
	// DisablePageSkip turns off the §3.3 page-skipping optimization, for
	// ablation experiments.
	DisablePageSkip bool
	// Parallelism bounds the worker pool that fans NoK-subtree candidate
	// matching out across goroutines. 0 (the zero value) means
	// runtime.GOMAXPROCS(0); 1 forces fully sequential evaluation.
	// Results are deterministic: every setting produces byte-identical
	// Result contents.
	Parallelism int
}

// workers resolves the effective worker count.
func (o Options) workers() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// Result is the outcome of evaluating a twig query.
type Result struct {
	// Nodes are the distinct bindings of the returning pattern node, in
	// document order — the "answers returned" of Figure 7.
	Nodes []xmltree.NodeID
	// Matches counts the combined pattern-match tuples before returning-
	// node deduplication.
	Matches int
}

// Evaluator evaluates twig queries against one NoK store using a tag
// index for NoK-subtree root candidates, and optionally a value index for
// value-constrained roots ("B+ trees on the subtree root's value or tag
// names", §4.1).
type Evaluator struct {
	store  *nok.Store
	index  *btree.Tree
	vindex *btree.ValueTree
}

// NewEvaluator returns an evaluator over the given store and tag index.
func NewEvaluator(store *nok.Store, index *btree.Tree) *Evaluator {
	return &Evaluator{store: store, index: index}
}

// WithValueIndex attaches a (tag, value) index consulted when a NoK
// subtree root carries a value constraint, shrinking its candidate list
// from all same-tag nodes to exact matches. Returns the evaluator for
// chaining.
func (ev *Evaluator) WithValueIndex(vt *btree.ValueTree) *Evaluator {
	ev.vindex = vt
	return ev
}

// Evaluate runs the pattern tree under the given options: it decomposes
// the pattern into NoK subtrees, matches each with (ε-)NoK pattern
// matching, and combines the matches with (ε-)STD structural joins.
func (ev *Evaluator) Evaluate(t *PatternTree, opts Options) (*Result, error) {
	subs := t.Decompose()
	ret := t.ReturningNode()

	// Track bindings for link sources and the returning node.
	tracked := map[*PatternNode]bool{ret: true}
	for _, sub := range subs {
		if sub.Link != nil {
			tracked[sub.Link] = true
		}
		tracked[sub.Root] = true
	}
	var checker AccessChecker
	if opts.View != nil {
		checker = opts.View
	}
	m := &matcher{
		store:    ev.store,
		values:   ev.store.Values(),
		checker:  checker,
		pageSkip: !opts.DisablePageSkip,
		tracked:  tracked,
	}
	// Freeze the matcher's derived state so the candidate fan-out below can
	// share it across workers.
	m.prepare(subs)
	workers := opts.workers()

	// Match every NoK subtree, fanning the candidate list of each subtree
	// out over the worker pool (candidates are independent; chunk-ordered
	// merging keeps the match list identical to sequential evaluation).
	matches := make([][]subtreeMatch, len(subs))
	for i, sub := range subs {
		cands, err := ev.candidates(t, sub, i == 0)
		if err != nil {
			return nil, err
		}
		ms, err := m.matchSubtreeParallel(sub, cands, workers)
		if err != nil {
			return nil, err
		}
		if i == 0 && opts.View != nil && opts.Semantics == SemanticsPrunedSubtree {
			ms, err = ev.filterRootPaths(ms, opts)
			if err != nil {
				return nil, err
			}
		}
		matches[i] = ms
		if len(ms) == 0 {
			return &Result{}, nil
		}
	}

	// Combine subtree matches along the cut descendant edges.
	tuples := make([][]binding, 0, len(matches[0]))
	for _, sm := range matches[0] {
		tuples = append(tuples, ev.tupleFrom(subs, 0, sm))
	}
	for i := 1; i < len(subs); i++ {
		sub := subs[i]
		linkSlot := ev.slotOf(subs, sub.Parent, sub.Link)
		var err error
		tuples, err = ev.joinSubtree(tuples, linkSlot, subs, i, matches[i], opts)
		if err != nil {
			return nil, err
		}
		if len(tuples) == 0 {
			return &Result{}, nil
		}
	}

	// Extract returning bindings.
	retSlot := -1
	for i := range subs {
		if s := ev.slotOfNode(subs, i, ret); s >= 0 {
			retSlot = s
			break
		}
	}
	if retSlot < 0 {
		return nil, fmt.Errorf("query: returning node not tracked")
	}
	seen := map[xmltree.NodeID]bool{}
	var nodes []xmltree.NodeID
	for _, tp := range tuples {
		n := tp[retSlot].node
		if !seen[n] {
			seen[n] = true
			nodes = append(nodes, n)
		}
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	return &Result{Nodes: nodes, Matches: len(tuples)}, nil
}

// subtreeContains reports whether pattern node p belongs to subtree i
// (reachable from its root through child-axis edges).
func (ev *Evaluator) subtreeContains(subs []NoKSubtree, i int, p *PatternNode) bool {
	var walk func(x *PatternNode) bool
	walk = func(x *PatternNode) bool {
		if x == p {
			return true
		}
		for _, c := range nokChildren(x) {
			if walk(c) {
				return true
			}
		}
		return false
	}
	return walk(subs[i].Root)
}

func (ev *Evaluator) slotBase(subs []NoKSubtree, i int) int {
	base := 0
	for k := 0; k < i; k++ {
		base += len(ev.slotNodes(subs, k))
	}
	return base
}

// slotNodes lists the pattern nodes of subtree i that occupy tuple slots:
// the subtree root, link sources inside it, and the returning node when it
// lies inside.
func (ev *Evaluator) slotNodes(subs []NoKSubtree, i int) []*PatternNode {
	sub := subs[i]
	set := map[*PatternNode]bool{sub.Root: true}
	order := []*PatternNode{sub.Root}
	for _, other := range subs {
		if other.Link != nil && ev.subtreeContains(subs, i, other.Link) && !set[other.Link] {
			set[other.Link] = true
			order = append(order, other.Link)
		}
	}
	// Returning node.
	var ret *PatternNode
	var findRet func(x *PatternNode)
	findRet = func(x *PatternNode) {
		if x.Returning {
			ret = x
		}
		for _, c := range x.Children {
			findRet(c)
		}
	}
	for _, s := range subs {
		findRet(s.Root)
	}
	if ret != nil && ev.subtreeContains(subs, i, ret) && !set[ret] {
		set[ret] = true
		order = append(order, ret)
	}
	return order
}

// slotOf returns the tuple slot of pattern node p within subtree i.
func (ev *Evaluator) slotOf(subs []NoKSubtree, i int, p *PatternNode) int {
	s := ev.slotOfNode(subs, i, p)
	if s < 0 {
		panic("query: pattern node has no tuple slot")
	}
	return s
}

func (ev *Evaluator) slotOfNode(subs []NoKSubtree, i int, p *PatternNode) int {
	nodes := ev.slotNodes(subs, i)
	for k, n := range nodes {
		if n == p {
			return ev.slotBase(subs, i) + k
		}
	}
	return -1
}

// tupleFrom expands a subtree match into a full-width tuple with only this
// subtree's slots populated.
func (ev *Evaluator) tupleFrom(subs []NoKSubtree, i int, sm subtreeMatch) []binding {
	width := ev.slotBase(subs, len(subs)-1) + len(ev.slotNodes(subs, len(subs)-1))
	tp := make([]binding, width)
	for k := range tp {
		tp[k] = binding{xmltree.InvalidNode, 0}
	}
	base := ev.slotBase(subs, i)
	for k, n := range ev.slotNodes(subs, i) {
		if b, ok := sm.bindings[n]; ok {
			tp[base+k] = b
		} else if n == subs[i].Root {
			tp[base+k] = sm.root
		}
	}
	return tp
}

// joinSubtree joins the accumulated tuples with subtree i's matches via a
// structural join on (link binding, subtree-root binding).
func (ev *Evaluator) joinSubtree(tuples [][]binding, linkSlot int, subs []NoKSubtree, i int, ms []subtreeMatch, opts Options) ([][]binding, error) {
	// Distinct ancestor candidates from the link slot.
	ancSet := map[xmltree.NodeID]join.Item{}
	for _, tp := range tuples {
		b := tp[linkSlot]
		if _, ok := ancSet[b.node]; ok {
			continue
		}
		end, err := ev.store.SubtreeEnd(b.node)
		if err != nil {
			return nil, err
		}
		ancSet[b.node] = join.Item{Node: b.node, End: end, Level: b.level}
	}
	ancs := make([]join.Item, 0, len(ancSet))
	for _, it := range ancSet {
		ancs = append(ancs, it)
	}
	join.SortItems(ancs)

	// Distinct descendant candidates from subtree roots; group matches by
	// root for tuple expansion.
	byRoot := map[xmltree.NodeID][]subtreeMatch{}
	var descs []join.Item
	for _, sm := range ms {
		if _, ok := byRoot[sm.root.node]; !ok {
			end, err := ev.store.SubtreeEnd(sm.root.node)
			if err != nil {
				return nil, err
			}
			descs = append(descs, join.Item{Node: sm.root.node, End: end, Level: sm.root.level})
		}
		byRoot[sm.root.node] = append(byRoot[sm.root.node], sm)
	}
	join.SortItems(descs)

	var pairs []join.Pair
	var err error
	if opts.View != nil && opts.Semantics == SemanticsPrunedSubtree {
		pairs, err = join.SecureSTD(opts.View.Store(), opts.View.Effective(), ancs, descs)
		if err != nil {
			return nil, err
		}
	} else {
		pairs = join.STD(ancs, descs)
	}
	descsOf := map[xmltree.NodeID][]xmltree.NodeID{}
	for _, p := range pairs {
		descsOf[p.Anc] = append(descsOf[p.Anc], p.Desc)
	}

	base := ev.slotBase(subs, i)
	slotNodes := ev.slotNodes(subs, i)
	var out [][]binding
	for _, tp := range tuples {
		for _, d := range descsOf[tp[linkSlot].node] {
			for _, sm := range byRoot[d] {
				ntp := make([]binding, len(tp))
				copy(ntp, tp)
				for k, n := range slotNodes {
					if b, ok := sm.bindings[n]; ok {
						ntp[base+k] = b
					} else if n == subs[i].Root {
						ntp[base+k] = sm.root
					}
				}
				out = append(out, ntp)
			}
		}
	}
	return out, nil
}

// candidates returns the root candidates for a NoK subtree: the document
// root for an anchored top subtree, otherwise the tag-index postings
// ("using B+ trees on the subtree root's ... tag names", §4.1).
func (ev *Evaluator) candidates(t *PatternTree, sub NoKSubtree, top bool) ([]btree.Posting, error) {
	if top && t.Root.Axis == AxisChild {
		end, err := ev.store.SubtreeEnd(0)
		if err != nil {
			return nil, err
		}
		return []btree.Posting{{Node: 0, End: end, Level: 0}}, nil
	}
	if sub.Root.Tag == "*" {
		// Wildcard root: union of all tags' postings, in document order.
		var all []btree.Posting
		for code := 0; code < ev.store.NumTags(); code++ {
			ps, err := ev.index.Postings(int32(code))
			if err != nil {
				return nil, err
			}
			all = append(all, ps...)
		}
		sort.Slice(all, func(i, j int) bool { return all[i].Node < all[j].Node })
		return all, nil
	}
	code, ok := ev.store.LookupTag(sub.Root.Tag)
	if !ok {
		return nil, nil
	}
	if sub.Root.Value != "" && ev.vindex != nil {
		return ev.vindex.ValuePostings(code, sub.Root.Value)
	}
	return ev.index.Postings(code)
}

// filterRootPaths keeps only the top-subtree matches whose path from the
// document root is fully accessible (Gabillon–Bruno semantics): computed
// with one ε-STD pass using the document root as the lone ancestor.
func (ev *Evaluator) filterRootPaths(ms []subtreeMatch, opts Options) ([]subtreeMatch, error) {
	if len(ms) == 0 {
		return ms, nil
	}
	rootEnd, err := ev.store.SubtreeEnd(0)
	if err != nil {
		return nil, err
	}
	rootItem := []join.Item{{Node: 0, End: rootEnd, Level: 0}}
	var descs []join.Item
	byRoot := map[xmltree.NodeID][]subtreeMatch{}
	for _, sm := range ms {
		if _, ok := byRoot[sm.root.node]; !ok {
			end, err := ev.store.SubtreeEnd(sm.root.node)
			if err != nil {
				return nil, err
			}
			descs = append(descs, join.Item{Node: sm.root.node, End: end, Level: sm.root.level})
		}
		byRoot[sm.root.node] = append(byRoot[sm.root.node], sm)
	}
	join.SortItems(descs)
	pairs, err := join.SecureSTD(opts.View.Store(), opts.View.Effective(), rootItem, descs)
	if err != nil {
		return nil, err
	}
	var out []subtreeMatch
	for _, p := range pairs {
		out = append(out, byRoot[p.Desc]...)
	}
	// The document root itself, when matched, is valid iff accessible.
	if sms, ok := byRoot[0]; ok {
		acc, err := opts.View.Accessible(0)
		if err != nil {
			return nil, err
		}
		if acc {
			out = append(sms, out...)
		}
	}
	return out, nil
}
