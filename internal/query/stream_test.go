package query

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"dolxml/internal/xmark"
	"dolxml/internal/xmltree"
)

// The public cursor must be a faithful streaming view of Evaluate: draining
// it yields exactly Result.Nodes (as a set; the cursor streams in discovery
// order) and the same Matches count, under every semantics and parallelism
// setting.
func TestAnswersCursorEquivalence(t *testing.T) {
	doc := miniXMark(t)
	m := allowAll(doc, 2)
	rng := rand.New(rand.NewSource(7))
	for n := 1; n < doc.Len(); n++ {
		if rng.Intn(3) == 0 {
			m.Set(xmltree.NodeID(n), 0, false)
		}
	}
	e := newEnv(t, doc, m, 256)
	view := e.ss.ViewSubject(0)
	ctx := context.Background()

	queries := []string{
		`//item/name`,
		`//category//text`,
		`//parlist//keyword`,
		`/site/regions/africa/item[location][name][quantity]`,
		`//listitem//listitem`,
	}
	for _, expr := range queries {
		pt := MustParse(expr)
		for _, base := range []Options{
			{},
			{View: view, Semantics: SemanticsBindings},
			{View: view, Semantics: SemanticsPrunedSubtree},
		} {
			for _, p := range parallelismLevels {
				opts := base
				opts.Parallelism = p
				want, err := e.ev.Evaluate(pt, opts)
				if err != nil {
					t.Fatalf("%s: %v", expr, err)
				}
				a, err := e.ev.Open(ctx, pt, opts)
				if err != nil {
					t.Fatalf("%s open: %v", expr, err)
				}
				var got []xmltree.NodeID
				for {
					n, ok, err := a.Next(ctx)
					if err != nil {
						t.Fatalf("%s next: %v", expr, err)
					}
					if !ok {
						break
					}
					got = append(got, n)
				}
				matches := a.Matches()
				if err := a.Close(); err != nil {
					t.Fatalf("%s close: %v", expr, err)
				}
				sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
				if !reflect.DeepEqual(got, want.Nodes) {
					t.Errorf("%s (p=%d): cursor %v, Evaluate %v", expr, p, got, want.Nodes)
				}
				if matches != want.Matches {
					t.Errorf("%s (p=%d): cursor matches %d, Evaluate %d", expr, p, matches, want.Matches)
				}
				if got := e.pool.Pinned(); got != 0 {
					t.Fatalf("%s (p=%d): %d frames still pinned after Close", expr, p, got)
				}
			}
		}
	}
}

// Limit must truncate the answer stream to a subset of the full result and
// never consume more tuples than needed.
func TestLimitTruncates(t *testing.T) {
	doc := miniXMark(t)
	e := newEnv(t, doc, allowAll(doc, 1), 256)
	pt := MustParse(`//item/name`)
	full, err := e.ev.Evaluate(pt, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Nodes) < 2 {
		t.Fatalf("need >= 2 answers, got %d", len(full.Nodes))
	}
	fullSet := map[xmltree.NodeID]bool{}
	for _, n := range full.Nodes {
		fullSet[n] = true
	}
	for limit := 1; limit <= len(full.Nodes)+1; limit++ {
		res, err := e.ev.Evaluate(pt, Options{Limit: limit})
		if err != nil {
			t.Fatalf("limit %d: %v", limit, err)
		}
		wantLen := limit
		if wantLen > len(full.Nodes) {
			wantLen = len(full.Nodes)
		}
		if len(res.Nodes) != wantLen {
			t.Errorf("limit %d: got %d answers, want %d", limit, len(res.Nodes), wantLen)
		}
		for _, n := range res.Nodes {
			if !fullSet[n] {
				t.Errorf("limit %d: answer %d not in full result", limit, n)
			}
		}
		if res.Matches > full.Matches {
			t.Errorf("limit %d: consumed %d tuples, full drain has %d", limit, res.Matches, full.Matches)
		}
	}
}

// Cancelling the context mid-scan must surface ctx.Err() on the next pull
// and, after Close, leave no buffer-pool frame pinned — producers unwind at
// the page-fetch boundary before pinning.
func TestCancellationMidScan(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	doc := randomDoc(rng, 4000)
	e := newEnv(t, doc, allowAll(doc, 1), 256)
	pt := MustParse(`//x//y`)

	for _, p := range parallelismLevels {
		ctx, cancel := context.WithCancel(context.Background())
		a, err := e.ev.Open(ctx, pt, Options{Parallelism: p})
		if err != nil {
			t.Fatal(err)
		}
		if _, ok, err := a.Next(ctx); err != nil || !ok {
			t.Fatalf("p=%d: first answer: ok=%v err=%v", p, ok, err)
		}
		cancel()
		if _, _, err := a.Next(ctx); !errors.Is(err, context.Canceled) {
			t.Fatalf("p=%d: Next after cancel = %v, want context.Canceled", p, err)
		}
		if err := a.Close(); err != nil {
			t.Fatalf("p=%d: close: %v", p, err)
		}
		if err := a.Close(); err != nil {
			t.Fatalf("p=%d: second close: %v", p, err)
		}
		if got := e.pool.Pinned(); got != 0 {
			t.Fatalf("p=%d: %d frames still pinned after cancelled scan", p, got)
		}
	}

	// A context cancelled before evaluation starts aborts immediately.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.ev.EvaluateCtx(ctx, pt, Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("EvaluateCtx on cancelled ctx = %v, want context.Canceled", err)
	}
	if got := e.pool.Pinned(); got != 0 {
		t.Fatalf("%d frames still pinned after pre-cancelled evaluation", got)
	}
}

// Limit = 1 on Q1 must perform strictly fewer page reads than the full
// drain: Q1 is one anchored NoK subtree with a single candidate (the
// document root), so the saving can only come from streaming *inside* the
// ε-NoK match — the matcher emits the first item the moment its predicates
// are satisfied and the limited pipeline stops the scan.
func TestLimitOneReadsFewerPages(t *testing.T) {
	doc := xmark.Generate(xmark.Scaled(3, 8000))
	e := newEnv(t, doc, allowAll(doc, 1), 512)
	pt := MustParse(`/site/regions/africa/item[location][name][quantity]`)
	opts := Options{Parallelism: 1}

	pages := func(o Options) (int64, *Result) {
		t.Helper()
		if err := e.pool.DropAll(); err != nil {
			t.Fatal(err)
		}
		e.pool.ResetStats()
		res, err := e.ev.EvaluateCtx(context.Background(), pt, o)
		if err != nil {
			t.Fatal(err)
		}
		return e.pool.Stats().Misses, res
	}

	fullPages, full := pages(opts)
	limited := opts
	limited.Limit = 1
	limPages, lim := pages(limited)

	if len(full.Nodes) < 2 {
		t.Fatalf("Q1 full drain returned %d answers; need >= 2 for the comparison", len(full.Nodes))
	}
	if len(lim.Nodes) != 1 {
		t.Fatalf("Limit=1 returned %d answers", len(lim.Nodes))
	}
	if limPages >= fullPages {
		t.Fatalf("Limit=1 read %d pages, full drain read %d — early termination saved nothing",
			limPages, fullPages)
	}
	if got := e.pool.Pinned(); got != 0 {
		t.Fatalf("%d frames still pinned", got)
	}
}
