package query

import (
	"math/rand"
	"reflect"
	"testing"

	"dolxml/internal/acl"
	"dolxml/internal/btree"
	"dolxml/internal/dol"
	"dolxml/internal/nok"
	"dolxml/internal/storage"
	"dolxml/internal/xmltree"
)

// parallelism settings exercised against the sequential baseline.
var parallelismLevels = []int{1, 2, 8}

// Parallel evaluation must be invisible: for every worker count the result
// — Nodes order included — is identical to the sequential path, under both
// secure semantics and with page skipping on or off.
func TestEvaluateParallelEquivalence(t *testing.T) {
	doc := miniXMark(t)
	m := allowAll(doc, 2)
	// Deny subject 0 a scattering of nodes so the secure paths do real work.
	rng := rand.New(rand.NewSource(7))
	for n := 1; n < doc.Len(); n++ {
		if rng.Intn(3) == 0 {
			m.Set(xmltree.NodeID(n), 0, false)
		}
	}
	e := newEnv(t, doc, m, 256)
	view := e.ss.ViewSubject(0)

	queries := []string{
		`//item/name`,
		`//item[location='Kenya']`,
		`//category//text`,
		`//parlist//keyword`,
		`/site/regions/africa/item`,
		`//listitem//listitem`,
	}
	for _, expr := range queries {
		pt := MustParse(expr)
		for _, base := range []Options{
			{},
			{View: view, Semantics: SemanticsBindings},
			{View: view, Semantics: SemanticsPrunedSubtree},
			{View: view, Semantics: SemanticsBindings, DisablePageSkip: true},
			{View: view, Semantics: SemanticsPrunedSubtree, DisablePageSkip: true},
		} {
			want, err := e.ev.Evaluate(pt, base)
			if err != nil {
				t.Fatalf("%s sequential: %v", expr, err)
			}
			for _, p := range parallelismLevels {
				opts := base
				opts.Parallelism = p
				got, err := e.ev.Evaluate(pt, opts)
				if err != nil {
					t.Fatalf("%s parallelism=%d: %v", expr, p, err)
				}
				if !reflect.DeepEqual(got.Nodes, want.Nodes) {
					t.Errorf("%s parallelism=%d (opts %+v): nodes %v, sequential %v",
						expr, p, base, got.Nodes, want.Nodes)
				}
				if got.Matches != want.Matches {
					t.Errorf("%s parallelism=%d (opts %+v): matches %d, sequential %d",
						expr, p, base, got.Matches, want.Matches)
				}
			}
		}
	}
}

// Randomized variant: many documents, patterns and page sizes, larger
// candidate lists (so the parallel path actually fans out past
// minParallelCandidates), byte-identical results at every worker count.
func TestEvaluateParallelEquivalenceRandom(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		doc := randomDoc(rng, 50+rng.Intn(400))
		numSubjects := 1 + rng.Intn(2)
		m := acl.NewMatrix(doc.Len(), numSubjects)
		for n := 0; n < doc.Len(); n++ {
			for s := 0; s < numSubjects; s++ {
				if rng.Intn(4) > 0 {
					m.Set(xmltree.NodeID(n), acl.SubjectID(s), true)
				}
			}
		}
		pageSize := 64 + rng.Intn(200)
		pool := storage.NewBufferPool(storage.NewMemPager(pageSize), 1024)
		ss, err := dol.BuildSecureStore(pool, doc, m, nok.BuildOptions{})
		if err != nil {
			t.Fatal(err)
		}
		idx, err := btree.BuildFromDocument(pool, doc)
		if err != nil {
			t.Fatal(err)
		}
		ev := NewEvaluator(ss.Store(), idx)
		pt := randomPattern(rng)
		view := ss.ViewSubject(acl.SubjectID(rng.Intn(numSubjects)))
		for _, sem := range []Semantics{SemanticsBindings, SemanticsPrunedSubtree} {
			want, err := ev.Evaluate(pt, Options{View: view, Semantics: sem, Parallelism: 1})
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			for _, p := range parallelismLevels[1:] {
				got, err := ev.Evaluate(pt, Options{View: view, Semantics: sem, Parallelism: p})
				if err != nil {
					t.Fatalf("seed %d parallelism=%d: %v", seed, p, err)
				}
				if !reflect.DeepEqual(got.Nodes, want.Nodes) || got.Matches != want.Matches {
					t.Fatalf("seed %d sem=%d parallelism=%d: (%v, %d) != sequential (%v, %d)",
						seed, sem, p, got.Nodes, got.Matches, want.Nodes, want.Matches)
				}
			}
		}
	}
}
