package btree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"dolxml/internal/storage"
	"dolxml/internal/xmltree"
)

func newTree(t testing.TB, pageSize int) (*Tree, *storage.BufferPool) {
	t.Helper()
	pool := storage.NewBufferPool(storage.NewMemPager(pageSize), 64)
	tr, err := New(pool)
	if err != nil {
		t.Fatal(err)
	}
	return tr, pool
}

func TestEmptyTree(t *testing.T) {
	tr, _ := newTree(t, 256)
	if tr.Len() != 0 || tr.Height() != 1 {
		t.Fatalf("empty tree: len %d height %d", tr.Len(), tr.Height())
	}
	ps, err := tr.Postings(5)
	if err != nil {
		t.Fatal(err)
	}
	if ps != nil {
		t.Fatal("empty tree returned postings")
	}
}

func TestInsertAndScanSingleLeaf(t *testing.T) {
	tr, _ := newTree(t, 4096)
	for i := 10; i > 0; i-- {
		if err := tr.Insert(1, Posting{Node: xmltree.NodeID(i), End: xmltree.NodeID(i), Level: 2}); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != 10 || tr.Height() != 1 {
		t.Fatalf("len %d height %d", tr.Len(), tr.Height())
	}
	ps, err := tr.Postings(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 10 {
		t.Fatalf("got %d postings", len(ps))
	}
	for i, p := range ps {
		if p.Node != xmltree.NodeID(i+1) {
			t.Fatalf("postings out of order: %v", ps)
		}
	}
}

func TestDuplicateRejected(t *testing.T) {
	tr, _ := newTree(t, 4096)
	p := Posting{Node: 3, End: 3}
	if err := tr.Insert(1, p); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(1, p); err == nil {
		t.Fatal("duplicate insert should fail")
	}
}

func TestSplitsAndHeightGrowth(t *testing.T) {
	tr, _ := newTree(t, 128) // tiny pages force splits
	const n = 2000
	perm := rand.New(rand.NewSource(5)).Perm(n)
	for _, v := range perm {
		if err := tr.Insert(int32(v%7), Posting{Node: xmltree.NodeID(v), End: xmltree.NodeID(v)}); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d", tr.Len())
	}
	if tr.Height() < 3 {
		t.Fatalf("expected height >= 3 with tiny pages, got %d", tr.Height())
	}
	for tag := int32(0); tag < 7; tag++ {
		ps, err := tr.Postings(tag)
		if err != nil {
			t.Fatal(err)
		}
		var want []int
		for v := 0; v < n; v++ {
			if int32(v%7) == tag {
				want = append(want, v)
			}
		}
		if len(ps) != len(want) {
			t.Fatalf("tag %d: %d postings, want %d", tag, len(ps), len(want))
		}
		for i := range want {
			if ps[i].Node != xmltree.NodeID(want[i]) {
				t.Fatalf("tag %d: posting %d = %d, want %d", tag, i, ps[i].Node, want[i])
			}
		}
	}
}

func TestScanEarlyStop(t *testing.T) {
	tr, _ := newTree(t, 4096)
	for i := 0; i < 100; i++ {
		tr.Insert(1, Posting{Node: xmltree.NodeID(i), End: xmltree.NodeID(i)})
	}
	count := 0
	if err := tr.Scan(1, func(Posting) bool {
		count++
		return count < 5
	}); err != nil {
		t.Fatal(err)
	}
	if count != 5 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestScanMissingTag(t *testing.T) {
	tr, _ := newTree(t, 256)
	for i := 0; i < 50; i++ {
		tr.Insert(2, Posting{Node: xmltree.NodeID(i), End: xmltree.NodeID(i)})
		tr.Insert(9, Posting{Node: xmltree.NodeID(i), End: xmltree.NodeID(i)})
	}
	ps, err := tr.Postings(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 0 {
		t.Fatalf("missing tag returned %d postings", len(ps))
	}
}

func TestOpenPersistence(t *testing.T) {
	pool := storage.NewBufferPool(storage.NewMemPager(128), 64)
	tr, err := New(pool)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if err := tr.Insert(int32(i%3), Posting{Node: xmltree.NodeID(i), End: xmltree.NodeID(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	re := Open(pool, tr.Root(), tr.Height(), tr.Len())
	ps, err := re.Postings(2)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := tr.Postings(2)
	if len(ps) != len(want) {
		t.Fatalf("reopened scan %d postings, want %d", len(ps), len(want))
	}
}

func TestBuildFromDocument(t *testing.T) {
	doc := xmltree.MustParseString(
		`<a><b/><c/><b><c/><b/></b></a>`)
	bp := storage.NewBufferPool(storage.NewMemPager(4096), 64)
	tree, err := BuildFromDocument(bp, doc)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Len() != doc.Len() {
		t.Fatalf("Len = %d, want %d", tree.Len(), doc.Len())
	}
	tagB, _ := doc.LookupTag("b")
	ps, err := tree.Postings(int32(tagB))
	if err != nil {
		t.Fatal(err)
	}
	want := doc.NodesWithTag("b")
	if len(ps) != len(want) {
		t.Fatalf("tag b: %d postings, want %d", len(ps), len(want))
	}
	for i, p := range ps {
		if p.Node != want[i] {
			t.Fatalf("posting %d: node %d, want %d", i, p.Node, want[i])
		}
		if p.End != doc.End(want[i]) || int(p.Level) != doc.Level(want[i]) {
			t.Fatalf("posting %d extent/level wrong", i)
		}
	}
}

// Property: the tree agrees with a map oracle under random inserts across
// page sizes.
func TestTreeMatchesOracle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pageSize := []int{64, 128, 256, 512}[rng.Intn(4)]
		pool := storage.NewBufferPool(storage.NewMemPager(pageSize), 128)
		tr, err := New(pool)
		if err != nil {
			return false
		}
		oracle := map[int32][]Posting{}
		n := 1 + rng.Intn(800)
		used := map[[2]int32]bool{}
		for i := 0; i < n; i++ {
			tag := int32(rng.Intn(5))
			node := int32(rng.Intn(3000))
			if used[[2]int32{tag, node}] {
				continue
			}
			used[[2]int32{tag, node}] = true
			p := Posting{Node: xmltree.NodeID(node), End: xmltree.NodeID(node + int32(rng.Intn(10))), Level: uint16(rng.Intn(20))}
			if err := tr.Insert(tag, p); err != nil {
				return false
			}
			oracle[tag] = append(oracle[tag], p)
		}
		for tag, want := range oracle {
			sort.Slice(want, func(i, j int) bool { return want[i].Node < want[j].Node })
			got, err := tr.Postings(tag)
			if err != nil || len(got) != len(want) {
				return false
			}
			for i := range want {
				if got[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkInsert(b *testing.B) {
	pool := storage.NewBufferPool(storage.NewMemPager(4096), 1024)
	tr, err := New(pool)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.Insert(int32(i%16), Posting{Node: xmltree.NodeID(i), End: xmltree.NodeID(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScan(b *testing.B) {
	pool := storage.NewBufferPool(storage.NewMemPager(4096), 1024)
	tr, _ := New(pool)
	for i := 0; i < 100000; i++ {
		tr.Insert(int32(i%16), Posting{Node: xmltree.NodeID(i), End: xmltree.NodeID(i)})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		count := 0
		tr.Scan(int32(i%16), func(Posting) bool { count++; return true })
	}
}
