// Package btree implements a disk-resident B+-tree mapping (tag, node)
// keys to node postings (subtree extent and level). The NoK query
// processor uses it to find candidate matches for pattern-tree roots
// ("using B+ trees on the subtree root's value or tag names", paper §4.1),
// and the structural join operators consume its postings, which carry the
// (start, end, level) region encoding the Stack-Tree-Desc algorithm needs.
//
// Keys are composite (tag, node) pairs ordered lexicographically; postings
// for one tag are therefore stored contiguously in document order, and a
// tag scan is a ranged leaf walk.
package btree

import (
	"encoding/binary"
	"fmt"

	"dolxml/internal/storage"
	"dolxml/internal/xmltree"
)

// Posting is the value stored per (tag, node) key.
type Posting struct {
	// Node is the posting's document-order ID (the region start).
	Node xmltree.NodeID
	// End is the last node of the subtree (the region end).
	End xmltree.NodeID
	// Level is the node's depth.
	Level uint16
}

// Page layout:
//
//	offset 0  u8   kind (0 = leaf, 1 = internal)
//	offset 1  u16  count
//	offset 3  u32  next (leaf: right sibling page or InvalidPage)
//	offset 7       payload
//
// Leaf entry (14 bytes): tag i32, node u32, end u32, level u16.
// Internal layout: count children (u32 each) followed by count-1 separator
// keys (tag i32, node u32).
const (
	pageHeader   = 7
	leafEntry    = 14
	childPtr     = 4
	sepKey       = 8
	kindLeaf     = 0
	kindInternal = 1
)

type key struct {
	tag  int32
	node xmltree.NodeID
}

func (k key) less(o key) bool {
	if k.tag != o.tag {
		return k.tag < o.tag
	}
	return k.node < o.node
}

// Tree is a B+-tree over a buffer pool. A Tree is not safe for concurrent
// mutation.
type Tree struct {
	pool     *storage.BufferPool
	root     storage.PageID
	height   int
	numKeys  int
	leafCap  int
	innerCap int
}

// New creates an empty tree, allocating its root leaf from pool.
func New(pool *storage.BufferPool) (*Tree, error) {
	t := &Tree{pool: pool}
	t.computeCaps()
	f, err := pool.Allocate()
	if err != nil {
		return nil, err
	}
	initLeaf(f.Data)
	t.root = f.ID()
	t.height = 1
	if err := pool.Unpin(f.ID(), true); err != nil {
		return nil, err
	}
	return t, nil
}

// Open re-attaches to an existing tree given its root and metadata.
func Open(pool *storage.BufferPool, root storage.PageID, height, numKeys int) *Tree {
	t := &Tree{pool: pool, root: root, height: height, numKeys: numKeys}
	t.computeCaps()
	return t
}

func (t *Tree) computeCaps() {
	ps := t.pool.Pager().PageSize()
	t.leafCap = (ps - pageHeader) / leafEntry
	t.innerCap = (ps - pageHeader - childPtr) / (childPtr + sepKey)
	if t.leafCap < 2 || t.innerCap < 2 {
		panic(fmt.Sprintf("btree: page size %d too small", ps))
	}
}

// Root returns the root page ID (persisted by callers for Open).
func (t *Tree) Root() storage.PageID { return t.root }

// Height returns the tree height (1 = a single leaf).
func (t *Tree) Height() int { return t.height }

// Len returns the number of stored keys.
func (t *Tree) Len() int { return t.numKeys }

func initLeaf(data []byte) {
	data[0] = kindLeaf
	binary.LittleEndian.PutUint16(data[1:3], 0)
	binary.LittleEndian.PutUint32(data[3:7], uint32(storage.InvalidPage))
}

func initInternal(data []byte) {
	data[0] = kindInternal
	binary.LittleEndian.PutUint16(data[1:3], 0)
	binary.LittleEndian.PutUint32(data[3:7], uint32(storage.InvalidPage))
}

func pageCount(data []byte) int   { return int(binary.LittleEndian.Uint16(data[1:3])) }
func setCount(data []byte, n int) { binary.LittleEndian.PutUint16(data[1:3], uint16(n)) }
func pageNext(data []byte) storage.PageID {
	return storage.PageID(binary.LittleEndian.Uint32(data[3:7]))
}
func setNext(data []byte, p storage.PageID) {
	binary.LittleEndian.PutUint32(data[3:7], uint32(p))
}

func leafKeyAt(data []byte, i int) key {
	off := pageHeader + i*leafEntry
	return key{
		tag:  int32(binary.LittleEndian.Uint32(data[off : off+4])),
		node: xmltree.NodeID(binary.LittleEndian.Uint32(data[off+4 : off+8])),
	}
}

func leafPostingAt(data []byte, i int) (int32, Posting) {
	off := pageHeader + i*leafEntry
	return int32(binary.LittleEndian.Uint32(data[off : off+4])), Posting{
		Node:  xmltree.NodeID(binary.LittleEndian.Uint32(data[off+4 : off+8])),
		End:   xmltree.NodeID(binary.LittleEndian.Uint32(data[off+8 : off+12])),
		Level: binary.LittleEndian.Uint16(data[off+12 : off+14]),
	}
}

func putLeafEntry(data []byte, i int, tag int32, p Posting) {
	off := pageHeader + i*leafEntry
	binary.LittleEndian.PutUint32(data[off:off+4], uint32(tag))
	binary.LittleEndian.PutUint32(data[off+4:off+8], uint32(p.Node))
	binary.LittleEndian.PutUint32(data[off+8:off+12], uint32(p.End))
	binary.LittleEndian.PutUint16(data[off+12:off+14], p.Level)
}

// Internal node accessors. Children first, then separator keys.
func childAt(data []byte, i int) storage.PageID {
	off := pageHeader + i*childPtr
	return storage.PageID(binary.LittleEndian.Uint32(data[off : off+4]))
}

func setChildAt(data []byte, i int, p storage.PageID) {
	off := pageHeader + i*childPtr
	binary.LittleEndian.PutUint32(data[off:off+4], uint32(p))
}

func (t *Tree) sepOff(i int) int {
	// Separator keys start after innerCap+1 child slots (fixed region so
	// inserts don't slide both arrays' bases).
	return pageHeader + (t.innerCap+1)*childPtr + i*sepKey
}

func (t *Tree) sepKeyAt(data []byte, i int) key {
	off := t.sepOff(i)
	return key{
		tag:  int32(binary.LittleEndian.Uint32(data[off : off+4])),
		node: xmltree.NodeID(binary.LittleEndian.Uint32(data[off+4 : off+8])),
	}
}

func (t *Tree) putSepKey(data []byte, i int, k key) {
	off := t.sepOff(i)
	binary.LittleEndian.PutUint32(data[off:off+4], uint32(k.tag))
	binary.LittleEndian.PutUint32(data[off+4:off+8], uint32(k.node))
}

// Insert adds a posting for (tag, p.Node). Duplicate keys are rejected.
func (t *Tree) Insert(tag int32, p Posting) error {
	k := key{tag, p.Node}
	promoted, newChild, err := t.insertAt(t.root, t.height, k, tag, p)
	if err != nil {
		return err
	}
	if newChild == storage.InvalidPage {
		t.numKeys++
		return nil
	}
	// Root split: build a new root.
	f, err := t.pool.Allocate()
	if err != nil {
		return err
	}
	initInternal(f.Data)
	setCount(f.Data, 2)
	setChildAt(f.Data, 0, t.root)
	setChildAt(f.Data, 1, newChild)
	t.putSepKey(f.Data, 0, promoted)
	t.root = f.ID()
	t.height++
	t.numKeys++
	return t.pool.Unpin(f.ID(), true)
}

// insertAt inserts into the subtree rooted at page at depth `level` (1 =
// leaf). On split it returns the promoted separator key and the new right
// sibling page.
func (t *Tree) insertAt(page storage.PageID, level int, k key, tag int32, p Posting) (key, storage.PageID, error) {
	f, err := t.pool.Get(page)
	if err != nil {
		return key{}, storage.InvalidPage, err
	}
	data := f.Data
	if level == 1 {
		defer t.pool.Unpin(page, true)
		n := pageCount(data)
		// Binary search insert position.
		lo, hi := 0, n
		for lo < hi {
			mid := (lo + hi) / 2
			mk := leafKeyAt(data, mid)
			if mk.less(k) {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < n && leafKeyAt(data, lo) == k {
			return key{}, storage.InvalidPage, fmt.Errorf("btree: duplicate key (tag %d, node %d)", k.tag, k.node)
		}
		if n < t.leafCap {
			off := pageHeader + lo*leafEntry
			copy(data[off+leafEntry:pageHeader+(n+1)*leafEntry], data[off:pageHeader+n*leafEntry])
			putLeafEntry(data, lo, tag, p)
			setCount(data, n+1)
			return key{}, storage.InvalidPage, nil
		}
		// Split leaf: gather entries, divide.
		type rec struct {
			tag int32
			p   Posting
		}
		recs := make([]rec, 0, n+1)
		for i := 0; i < n; i++ {
			tg, pp := leafPostingAt(data, i)
			recs = append(recs, rec{tg, pp})
		}
		recs = append(recs, rec{})
		copy(recs[lo+1:], recs[lo:])
		recs[lo] = rec{tag, p}
		mid := (n + 1) / 2

		rf, err := t.pool.Allocate()
		if err != nil {
			return key{}, storage.InvalidPage, err
		}
		initLeaf(rf.Data)
		setNext(rf.Data, pageNext(data))
		setNext(data, rf.ID())
		for i, r := range recs[:mid] {
			putLeafEntry(data, i, r.tag, r.p)
		}
		setCount(data, mid)
		for i, r := range recs[mid:] {
			putLeafEntry(rf.Data, i, r.tag, r.p)
		}
		setCount(rf.Data, len(recs)-mid)
		promoted := key{recs[mid].tag, recs[mid].p.Node}
		newPage := rf.ID()
		if err := t.pool.Unpin(newPage, true); err != nil {
			return key{}, storage.InvalidPage, err
		}
		return promoted, newPage, nil
	}

	// Internal node: find child.
	n := pageCount(data)
	lo, hi := 0, n-1
	for lo < hi {
		mid := (lo + hi) / 2
		if t.sepKeyAt(data, mid).less(k) || t.sepKeyAt(data, mid) == k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	childIdx := lo
	child := childAt(data, childIdx)
	// Unpin before recursing to keep pin counts bounded by height? We
	// hold the parent pinned across the child insert so the frame cannot
	// be evicted while we may still modify it.
	promoted, newChild, err := t.insertAt(child, level-1, k, tag, p)
	if err != nil {
		t.pool.Unpin(page, false)
		return key{}, storage.InvalidPage, err
	}
	if newChild == storage.InvalidPage {
		return key{}, storage.InvalidPage, t.pool.Unpin(page, false)
	}
	defer t.pool.Unpin(page, true)
	if n < t.innerCap+1 {
		// Shift children after childIdx and keys after childIdx-1... the
		// new child goes at childIdx+1, the promoted key at childIdx.
		for i := n; i > childIdx+1; i-- {
			setChildAt(data, i, childAt(data, i-1))
		}
		setChildAt(data, childIdx+1, newChild)
		for i := n - 1; i > childIdx; i-- {
			t.putSepKey(data, i, t.sepKeyAt(data, i-1))
		}
		t.putSepKey(data, childIdx, promoted)
		setCount(data, n+1)
		return key{}, storage.InvalidPage, nil
	}
	// Split internal node.
	children := make([]storage.PageID, 0, n+1)
	keys := make([]key, 0, n)
	for i := 0; i < n; i++ {
		children = append(children, childAt(data, i))
	}
	for i := 0; i < n-1; i++ {
		keys = append(keys, t.sepKeyAt(data, i))
	}
	children = append(children, storage.InvalidPage)
	copy(children[childIdx+2:], children[childIdx+1:])
	children[childIdx+1] = newChild
	keys = append(keys, key{})
	copy(keys[childIdx+1:], keys[childIdx:])
	keys[childIdx] = promoted

	midIdx := len(keys) / 2
	upKey := keys[midIdx]
	rf, err := t.pool.Allocate()
	if err != nil {
		return key{}, storage.InvalidPage, err
	}
	initInternal(rf.Data)
	leftChildren := children[:midIdx+1]
	leftKeys := keys[:midIdx]
	rightChildren := children[midIdx+1:]
	rightKeys := keys[midIdx+1:]
	for i, c := range leftChildren {
		setChildAt(data, i, c)
	}
	for i, kk := range leftKeys {
		t.putSepKey(data, i, kk)
	}
	setCount(data, len(leftChildren))
	for i, c := range rightChildren {
		setChildAt(rf.Data, i, c)
	}
	for i, kk := range rightKeys {
		t.putSepKey(rf.Data, i, kk)
	}
	setCount(rf.Data, len(rightChildren))
	newPage := rf.ID()
	if err := t.pool.Unpin(newPage, true); err != nil {
		return key{}, storage.InvalidPage, err
	}
	return upKey, newPage, nil
}

// Scan calls visit for every posting with the given tag, in document
// order; returning false stops the scan.
func (t *Tree) Scan(tag int32, visit func(Posting) bool) error {
	k := key{tag, 0}
	page := t.root
	for level := t.height; level > 1; level-- {
		f, err := t.pool.Get(page)
		if err != nil {
			return err
		}
		n := pageCount(f.Data)
		lo, hi := 0, n-1
		for lo < hi {
			mid := (lo + hi) / 2
			if t.sepKeyAt(f.Data, mid).less(k) || t.sepKeyAt(f.Data, mid) == k {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		next := childAt(f.Data, lo)
		if err := t.pool.Unpin(page, false); err != nil {
			return err
		}
		page = next
	}
	for page != storage.InvalidPage {
		f, err := t.pool.Get(page)
		if err != nil {
			return err
		}
		n := pageCount(f.Data)
		done := false
		advanced := false
		for i := 0; i < n; i++ {
			tg, p := leafPostingAt(f.Data, i)
			if tg < tag {
				continue
			}
			if tg > tag {
				done = true
				break
			}
			advanced = true
			if !visit(p) {
				done = true
				break
			}
		}
		next := pageNext(f.Data)
		if err := t.pool.Unpin(page, false); err != nil {
			return err
		}
		if done {
			return nil
		}
		_ = advanced
		page = next
	}
	return nil
}

// Postings returns every posting for tag as a slice.
func (t *Tree) Postings(tag int32) ([]Posting, error) {
	var out []Posting
	err := t.Scan(tag, func(p Posting) bool {
		out = append(out, p)
		return true
	})
	return out, err
}

// BuildFromDocument indexes every node of doc (keyed by the document's own
// tag codes) into a fresh tree over pool.
func BuildFromDocument(pool *storage.BufferPool, doc *xmltree.Document) (*Tree, error) {
	t, err := New(pool)
	if err != nil {
		return nil, err
	}
	for n := xmltree.NodeID(0); int(n) < doc.Len(); n++ {
		p := Posting{Node: n, End: doc.End(n), Level: uint16(doc.Level(n))}
		if err := t.Insert(int32(doc.TagIDOf(n)), p); err != nil {
			return nil, err
		}
	}
	return t, nil
}
