package btree

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"dolxml/internal/storage"
	"dolxml/internal/xmltree"
)

func newValueTree(t testing.TB, pageSize int) (*ValueTree, *storage.BufferPool) {
	t.Helper()
	pool := storage.NewBufferPool(storage.NewMemPager(pageSize), 128)
	vt, err := NewValueTree(pool)
	if err != nil {
		t.Fatal(err)
	}
	return vt, pool
}

func TestValueTreeBasics(t *testing.T) {
	vt, _ := newValueTree(t, 4096)
	if vt.Len() != 0 || vt.Height() != 1 {
		t.Fatalf("fresh tree: len %d height %d", vt.Len(), vt.Height())
	}
	vals := []string{"carved mask", "drum", "silk cloth", "drum"}
	for i, v := range vals {
		if err := vt.Insert(1, v, Posting{Node: xmltree.NodeID(i * 10), End: xmltree.NodeID(i * 10)}); err != nil {
			t.Fatal(err)
		}
	}
	ps, err := vt.ValuePostings(1, "drum")
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 2 || ps[0].Node != 10 || ps[1].Node != 30 {
		t.Fatalf("drum postings = %v", ps)
	}
	ps, _ = vt.ValuePostings(1, "missing")
	if len(ps) != 0 {
		t.Fatal("missing value matched")
	}
	ps, _ = vt.ValuePostings(9, "drum")
	if len(ps) != 0 {
		t.Fatal("wrong tag matched")
	}
}

func TestValueTreeDuplicateRejected(t *testing.T) {
	vt, _ := newValueTree(t, 4096)
	p := Posting{Node: 5, End: 5}
	if err := vt.Insert(1, "x", p); err != nil {
		t.Fatal(err)
	}
	if err := vt.Insert(1, "x", p); err == nil {
		t.Fatal("duplicate (tag,value,node) should fail")
	}
	// Same value at a different node is fine.
	if err := vt.Insert(1, "x", Posting{Node: 6, End: 6}); err != nil {
		t.Fatal(err)
	}
}

func TestValueTreeOversizedValue(t *testing.T) {
	vt, _ := newValueTree(t, 256)
	if err := vt.Insert(1, strings.Repeat("v", 400), Posting{Node: 1, End: 1}); err == nil {
		t.Fatal("oversized value should fail")
	}
}

func TestValueTreeSplitsAndOrder(t *testing.T) {
	vt, _ := newValueTree(t, 256) // force many splits
	const n = 800
	perm := rand.New(rand.NewSource(3)).Perm(n)
	for _, v := range perm {
		val := fmt.Sprintf("value-%03d", v%40)
		if err := vt.Insert(int32(v%5), val, Posting{Node: xmltree.NodeID(v), End: xmltree.NodeID(v)}); err != nil {
			t.Fatal(err)
		}
	}
	if vt.Height() < 2 {
		t.Fatalf("expected splits, height %d", vt.Height())
	}
	for tag := int32(0); tag < 5; tag++ {
		for g := 0; g < 40; g++ {
			val := fmt.Sprintf("value-%03d", g)
			ps, err := vt.ValuePostings(tag, val)
			if err != nil {
				t.Fatal(err)
			}
			var want []int
			for v := 0; v < n; v++ {
				if int32(v%5) == tag && v%40 == g {
					want = append(want, v)
				}
			}
			if len(ps) != len(want) {
				t.Fatalf("tag %d %q: %d postings, want %d", tag, val, len(ps), len(want))
			}
			for i := range want {
				if ps[i].Node != xmltree.NodeID(want[i]) {
					t.Fatalf("tag %d %q: out of order", tag, val)
				}
			}
		}
	}
}

func TestValueTreePersistence(t *testing.T) {
	pool := storage.NewBufferPool(storage.NewMemPager(256), 128)
	vt, err := NewValueTree(pool)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		if err := vt.Insert(2, fmt.Sprintf("k%d", i%7), Posting{Node: xmltree.NodeID(i), End: xmltree.NodeID(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	re := OpenValueTree(pool, vt.Root(), vt.Height(), vt.Len())
	want, _ := vt.ValuePostings(2, "k3")
	got, err := re.ValuePostings(2, "k3")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("reopened scan %d postings, want %d", len(got), len(want))
	}
}

func TestBuildValueIndex(t *testing.T) {
	doc := xmltree.MustParseString(
		`<r><a>x</a><b/><a>y</a><c><a>x</a></c></r>`)
	pool := storage.NewBufferPool(storage.NewMemPager(4096), 64)
	vt, err := BuildValueIndex(pool, doc)
	if err != nil {
		t.Fatal(err)
	}
	tagA, _ := doc.LookupTag("a")
	ps, err := vt.ValuePostings(int32(tagA), "x")
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 2 {
		t.Fatalf("a=x postings = %v", ps)
	}
	// Only valued nodes are indexed.
	if vt.Len() != 3 {
		t.Fatalf("Len = %d, want 3", vt.Len())
	}
}

func TestValueTreeEarlyStop(t *testing.T) {
	vt, _ := newValueTree(t, 4096)
	for i := 0; i < 20; i++ {
		vt.Insert(1, "same", Posting{Node: xmltree.NodeID(i), End: xmltree.NodeID(i)})
	}
	count := 0
	if err := vt.ScanValue(1, "same", func(Posting) bool {
		count++
		return count < 4
	}); err != nil {
		t.Fatal(err)
	}
	if count != 4 {
		t.Fatalf("early stop visited %d", count)
	}
}

// Property: the value tree agrees with a map oracle across page sizes,
// including values with varied lengths and embedded separators.
func TestValueTreeMatchesOracle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pageSize := []int{128, 256, 512, 4096}[rng.Intn(4)]
		pool := storage.NewBufferPool(storage.NewMemPager(pageSize), 256)
		vt, err := NewValueTree(pool)
		if err != nil {
			return false
		}
		type key struct {
			tag  int32
			val  string
			node int32
		}
		oracle := map[key]Posting{}
		n := 1 + rng.Intn(600)
		for i := 0; i < n; i++ {
			k := key{
				tag:  int32(rng.Intn(4)),
				val:  strings.Repeat("ab,x ", rng.Intn(4)) + fmt.Sprint(rng.Intn(9)),
				node: int32(rng.Intn(5000)),
			}
			if _, dup := oracle[k]; dup {
				continue
			}
			p := Posting{Node: xmltree.NodeID(k.node), End: xmltree.NodeID(k.node + int32(rng.Intn(9))), Level: uint16(rng.Intn(30))}
			if err := vt.Insert(k.tag, k.val, p); err != nil {
				return false
			}
			oracle[k] = p
		}
		// Group oracle by (tag, val).
		grouped := map[[2]string][]Posting{}
		for k, p := range oracle {
			grouped[[2]string{fmt.Sprint(k.tag), k.val}] = append(grouped[[2]string{fmt.Sprint(k.tag), k.val}], p)
		}
		for gk, want := range grouped {
			var tag int32
			fmt.Sscan(gk[0], &tag)
			got, err := vt.ValuePostings(tag, gk[1])
			if err != nil || len(got) != len(want) {
				return false
			}
			// got is sorted by node; check set equality via map.
			seen := map[xmltree.NodeID]Posting{}
			for _, p := range want {
				seen[p.Node] = p
			}
			last := xmltree.NodeID(-1)
			for _, p := range got {
				if p.Node <= last {
					return false
				}
				last = p.Node
				if seen[p.Node] != p {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkValueTreeInsert(b *testing.B) {
	pool := storage.NewBufferPool(storage.NewMemPager(4096), 2048)
	vt, err := NewValueTree(pool)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := vt.Insert(int32(i%8), fmt.Sprintf("value-%d", i%100), Posting{Node: xmltree.NodeID(i), End: xmltree.NodeID(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
