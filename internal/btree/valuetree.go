package btree

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"dolxml/internal/storage"
	"dolxml/internal/xmltree"
)

// ValueTree is a disk-resident B+-tree over (tag, value, node) keys: the
// "B+ trees on the subtree root's value" of paper §4.1. It lets the query
// processor fetch, in document order, the postings of nodes with a given
// tag *and* text value, so value-constrained NoK subtree roots start from
// an already-filtered candidate list.
//
// Keys are variable length, so pages use a decode–modify–reencode scheme:
// a node is read as a whole, mutated in memory, and written back; splits
// divide entries by half when the encoding outgrows the page.
type ValueTree struct {
	pool    *storage.BufferPool
	root    storage.PageID
	height  int
	numKeys int
	// capacity is the byte budget for a page's payload.
	capacity int
}

// vkey orders (tag, value, node) lexicographically.
type vkey struct {
	tag   int32
	value string
	node  xmltree.NodeID
}

func (k vkey) less(o vkey) bool {
	if k.tag != o.tag {
		return k.tag < o.tag
	}
	if k.value != o.value {
		return k.value < o.value
	}
	return k.node < o.node
}

// vleaf and vinner are the decoded page forms.
type vleafEntry struct {
	key vkey
	p   Posting
}

type vnode struct {
	leaf     bool
	next     storage.PageID // leaf chain
	entries  []vleafEntry   // leaf payload
	children []storage.PageID
	keys     []vkey // len(children)-1 separators
}

// NewValueTree creates an empty tree over pool.
func NewValueTree(pool *storage.BufferPool) (*ValueTree, error) {
	t := &ValueTree{pool: pool, capacity: pool.Pager().PageSize() - pageHeader}
	if t.capacity < 64 {
		return nil, fmt.Errorf("btree: page size %d too small for a value tree", pool.Pager().PageSize())
	}
	f, err := pool.Allocate()
	if err != nil {
		return nil, err
	}
	encodeVNode(f.Data, &vnode{leaf: true, next: storage.InvalidPage})
	t.root = f.ID()
	t.height = 1
	return t, pool.Unpin(f.ID(), true)
}

// OpenValueTree re-attaches to a persisted tree.
func OpenValueTree(pool *storage.BufferPool, root storage.PageID, height, numKeys int) *ValueTree {
	return &ValueTree{
		pool: pool, root: root, height: height, numKeys: numKeys,
		capacity: pool.Pager().PageSize() - pageHeader,
	}
}

// Root, Height and Len expose reopen metadata.
func (t *ValueTree) Root() storage.PageID { return t.root }

// Height returns the tree height (1 = a single leaf).
func (t *ValueTree) Height() int { return t.height }

// Len returns the number of stored keys.
func (t *ValueTree) Len() int { return t.numKeys }

// Page encoding. Reuses the fixed header of the posting tree
// (kind, count, next) and serializes the payload with varints:
//
//	leaf entry:  tag uv, len(value) uv, value, node uv, end uv, level uv
//	inner:       count children (u32 each) then count-1 keys
//	             (tag uv, len uv, value, node uv)
func encodeVNode(data []byte, n *vnode) {
	for i := range data {
		data[i] = 0
	}
	if n.leaf {
		data[0] = kindLeaf
		binary.LittleEndian.PutUint16(data[1:3], uint16(len(n.entries)))
		binary.LittleEndian.PutUint32(data[3:7], uint32(n.next))
		buf := data[pageHeader:pageHeader]
		for _, e := range n.entries {
			buf = binary.AppendUvarint(buf, uint64(uint32(e.key.tag)))
			buf = binary.AppendUvarint(buf, uint64(len(e.key.value)))
			buf = append(buf, e.key.value...)
			buf = binary.AppendUvarint(buf, uint64(uint32(e.key.node)))
			buf = binary.AppendUvarint(buf, uint64(uint32(e.p.End)))
			buf = binary.AppendUvarint(buf, uint64(e.p.Level))
		}
		return
	}
	data[0] = kindInternal
	binary.LittleEndian.PutUint16(data[1:3], uint16(len(n.children)))
	binary.LittleEndian.PutUint32(data[3:7], uint32(storage.InvalidPage))
	buf := data[pageHeader:pageHeader]
	for _, c := range n.children {
		var cb [4]byte
		binary.LittleEndian.PutUint32(cb[:], uint32(c))
		buf = append(buf, cb[:]...)
	}
	for _, k := range n.keys {
		buf = binary.AppendUvarint(buf, uint64(uint32(k.tag)))
		buf = binary.AppendUvarint(buf, uint64(len(k.value)))
		buf = append(buf, k.value...)
		buf = binary.AppendUvarint(buf, uint64(uint32(k.node)))
	}
}

func decodeVNode(data []byte) (*vnode, error) {
	n := &vnode{leaf: data[0] == kindLeaf}
	count := int(binary.LittleEndian.Uint16(data[1:3]))
	buf := bytes.NewReader(data[pageHeader:])
	readUv := func() (uint64, error) { return binary.ReadUvarint(buf) }
	if n.leaf {
		n.next = storage.PageID(binary.LittleEndian.Uint32(data[3:7]))
		for i := 0; i < count; i++ {
			tag, err := readUv()
			if err != nil {
				return nil, fmt.Errorf("btree: corrupt value leaf: %w", err)
			}
			vlen, err := readUv()
			if err != nil {
				return nil, err
			}
			val := make([]byte, vlen)
			if _, err := buf.Read(val); err != nil {
				return nil, err
			}
			node, err := readUv()
			if err != nil {
				return nil, err
			}
			end, err := readUv()
			if err != nil {
				return nil, err
			}
			level, err := readUv()
			if err != nil {
				return nil, err
			}
			n.entries = append(n.entries, vleafEntry{
				key: vkey{tag: int32(tag), value: string(val), node: xmltree.NodeID(node)},
				p:   Posting{Node: xmltree.NodeID(node), End: xmltree.NodeID(end), Level: uint16(level)},
			})
		}
		return n, nil
	}
	for i := 0; i < count; i++ {
		var cb [4]byte
		if _, err := buf.Read(cb[:]); err != nil {
			return nil, err
		}
		n.children = append(n.children, storage.PageID(binary.LittleEndian.Uint32(cb[:])))
	}
	for i := 0; i < count-1; i++ {
		tag, err := readUv()
		if err != nil {
			return nil, fmt.Errorf("btree: corrupt value inner: %w", err)
		}
		vlen, err := readUv()
		if err != nil {
			return nil, err
		}
		val := make([]byte, vlen)
		if _, err := buf.Read(val); err != nil {
			return nil, err
		}
		node, err := readUv()
		if err != nil {
			return nil, err
		}
		n.keys = append(n.keys, vkey{tag: int32(tag), value: string(val), node: xmltree.NodeID(node)})
	}
	return n, nil
}

// encodedSize returns the byte size of the node's payload encoding.
func (t *ValueTree) encodedSize(n *vnode) int {
	size := 0
	uv := func(v uint64) int {
		c := 1
		for v >= 0x80 {
			v >>= 7
			c++
		}
		return c
	}
	if n.leaf {
		for _, e := range n.entries {
			size += uv(uint64(uint32(e.key.tag))) + uv(uint64(len(e.key.value))) + len(e.key.value) +
				uv(uint64(uint32(e.key.node))) + uv(uint64(uint32(e.p.End))) + uv(uint64(e.p.Level))
		}
		return size
	}
	size += 4 * len(n.children)
	for _, k := range n.keys {
		size += uv(uint64(uint32(k.tag))) + uv(uint64(len(k.value))) + len(k.value) + uv(uint64(uint32(k.node)))
	}
	return size
}

func (t *ValueTree) load(p storage.PageID) (*vnode, error) {
	f, err := t.pool.Get(p)
	if err != nil {
		return nil, err
	}
	defer t.pool.Unpin(p, false)
	return decodeVNode(f.Data)
}

func (t *ValueTree) store(p storage.PageID, n *vnode) error {
	f, err := t.pool.Get(p)
	if err != nil {
		return err
	}
	encodeVNode(f.Data, n)
	return t.pool.Unpin(p, true)
}

// Insert adds a posting for (tag, value, p.Node). The value may be long,
// but a single entry must fit in a page.
func (t *ValueTree) Insert(tag int32, value string, p Posting) error {
	one := &vnode{leaf: true, entries: []vleafEntry{{key: vkey{tag, value, p.Node}, p: p}}}
	if t.encodedSize(one) > t.capacity {
		return fmt.Errorf("btree: value of %d bytes exceeds page capacity", len(value))
	}
	k := vkey{tag, value, p.Node}
	promoted, newChild, err := t.insertAt(t.root, t.height, k, p)
	if err != nil {
		return err
	}
	if newChild == storage.InvalidPage {
		t.numKeys++
		return nil
	}
	f, err := t.pool.Allocate()
	if err != nil {
		return err
	}
	encodeVNode(f.Data, &vnode{
		leaf:     false,
		children: []storage.PageID{t.root, newChild},
		keys:     []vkey{promoted},
	})
	t.root = f.ID()
	t.height++
	t.numKeys++
	return t.pool.Unpin(f.ID(), true)
}

func (t *ValueTree) insertAt(page storage.PageID, level int, k vkey, p Posting) (vkey, storage.PageID, error) {
	n, err := t.load(page)
	if err != nil {
		return vkey{}, storage.InvalidPage, err
	}
	if level == 1 {
		// Find insert position.
		lo, hi := 0, len(n.entries)
		for lo < hi {
			mid := (lo + hi) / 2
			if n.entries[mid].key.less(k) {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < len(n.entries) && n.entries[lo].key == k {
			return vkey{}, storage.InvalidPage, fmt.Errorf("btree: duplicate value key (tag %d, node %d)", k.tag, k.node)
		}
		n.entries = append(n.entries, vleafEntry{})
		copy(n.entries[lo+1:], n.entries[lo:])
		n.entries[lo] = vleafEntry{key: k, p: p}
		if t.encodedSize(n) <= t.capacity {
			return vkey{}, storage.InvalidPage, t.store(page, n)
		}
		// Split by entry count.
		mid := len(n.entries) / 2
		right := &vnode{leaf: true, next: n.next, entries: append([]vleafEntry{}, n.entries[mid:]...)}
		n.entries = n.entries[:mid]
		rf, err := t.pool.Allocate()
		if err != nil {
			return vkey{}, storage.InvalidPage, err
		}
		n.next = rf.ID()
		encodeVNode(rf.Data, right)
		if err := t.pool.Unpin(rf.ID(), true); err != nil {
			return vkey{}, storage.InvalidPage, err
		}
		if err := t.store(page, n); err != nil {
			return vkey{}, storage.InvalidPage, err
		}
		return right.entries[0].key, rf.ID(), nil
	}
	// Internal: route.
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if n.keys[mid].less(k) || n.keys[mid] == k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	promoted, newChild, err := t.insertAt(n.children[lo], level-1, k, p)
	if err != nil {
		return vkey{}, storage.InvalidPage, err
	}
	if newChild == storage.InvalidPage {
		return vkey{}, storage.InvalidPage, nil
	}
	n.children = append(n.children, storage.InvalidPage)
	copy(n.children[lo+2:], n.children[lo+1:])
	n.children[lo+1] = newChild
	n.keys = append(n.keys, vkey{})
	copy(n.keys[lo+1:], n.keys[lo:])
	n.keys[lo] = promoted
	if t.encodedSize(n) <= t.capacity {
		return vkey{}, storage.InvalidPage, t.store(page, n)
	}
	// Split internal node.
	midIdx := len(n.keys) / 2
	upKey := n.keys[midIdx]
	right := &vnode{
		leaf:     false,
		children: append([]storage.PageID{}, n.children[midIdx+1:]...),
		keys:     append([]vkey{}, n.keys[midIdx+1:]...),
	}
	n.children = n.children[:midIdx+1]
	n.keys = n.keys[:midIdx]
	rf, err := t.pool.Allocate()
	if err != nil {
		return vkey{}, storage.InvalidPage, err
	}
	encodeVNode(rf.Data, right)
	if err := t.pool.Unpin(rf.ID(), true); err != nil {
		return vkey{}, storage.InvalidPage, err
	}
	if err := t.store(page, n); err != nil {
		return vkey{}, storage.InvalidPage, err
	}
	return upKey, rf.ID(), nil
}

// ScanValue calls visit for every posting whose node has the given tag and
// exact text value, in document order; returning false stops early.
func (t *ValueTree) ScanValue(tag int32, value string, visit func(Posting) bool) error {
	k := vkey{tag: tag, value: value, node: 0}
	page := t.root
	for level := t.height; level > 1; level-- {
		n, err := t.load(page)
		if err != nil {
			return err
		}
		lo, hi := 0, len(n.keys)
		for lo < hi {
			mid := (lo + hi) / 2
			if n.keys[mid].less(k) {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		page = n.children[lo]
	}
	for page != storage.InvalidPage {
		n, err := t.load(page)
		if err != nil {
			return err
		}
		for _, e := range n.entries {
			if e.key.tag < tag || (e.key.tag == tag && e.key.value < value) {
				continue
			}
			if e.key.tag > tag || e.key.value > value {
				return nil
			}
			if !visit(e.p) {
				return nil
			}
		}
		page = n.next
	}
	return nil
}

// ValuePostings returns every posting with the tag and value as a slice.
func (t *ValueTree) ValuePostings(tag int32, value string) ([]Posting, error) {
	var out []Posting
	err := t.ScanValue(tag, value, func(p Posting) bool {
		out = append(out, p)
		return true
	})
	return out, err
}

// BuildValueIndex indexes every node of doc that carries a non-empty text
// value into a fresh ValueTree over pool.
func BuildValueIndex(pool *storage.BufferPool, doc *xmltree.Document) (*ValueTree, error) {
	t, err := NewValueTree(pool)
	if err != nil {
		return nil, err
	}
	for n := xmltree.NodeID(0); int(n) < doc.Len(); n++ {
		v := doc.Value(n)
		if v == "" {
			continue
		}
		p := Posting{Node: n, End: doc.End(n), Level: uint16(doc.Level(n))}
		if err := t.Insert(int32(doc.TagIDOf(n)), v, p); err != nil {
			return nil, err
		}
	}
	return t, nil
}
