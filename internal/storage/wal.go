package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"

	"dolxml/internal/obs"
)

// This file implements the page-level write-ahead log that makes update
// batches atomic: a crash at any instant leaves the data pager either
// exactly as it was before the batch or exactly as the batch committed it —
// never a torn mixture. The DOL encoding makes this a security property,
// not merely a consistency one: a transition region torn mid-rewrite can
// grant access that was being revoked.
//
// Protocol. A batch buffers after-images of every page it touches (reads
// see the batch's own writes); nothing reaches the data pager before
// commit. Commit appends the batch to the log — begin record, one frame per
// page, an optional opaque metadata blob, commit record, every record
// CRC32-guarded — and fsyncs the log. Only then are the images applied to
// the data pager and fsynced, the metadata handed to the MetaSink, and a
// checkpoint record appended before the log is truncated back to its
// header. The fsync ordering is therefore log → data → checkpoint.
//
// Recovery. Opening the log classifies its tail:
//
//   - a committed batch without a checkpoint is redone (idempotent: the log
//     holds full after-images) and its metadata re-delivered to the sink;
//   - an uncommitted batch — missing or CRC-corrupt records, a torn tail —
//     is discarded; by construction the data pager was never touched, so
//     the pre-batch state is intact.

// TxnPager is a Pager with atomic update batches. Begin/Commit nest: only
// the outermost pair acts, so layered update entry points (securexml over
// dol over nok) compose into a single atomic batch.
type TxnPager interface {
	Pager
	// Begin opens a batch (or joins the enclosing one).
	Begin() error
	// Commit seals the batch. meta, when non-nil, is an opaque blob stored
	// with the commit record and delivered to the recovery sink; the last
	// non-nil meta of nested commits wins.
	Commit(meta []byte) error
	// Rollback abandons the batch. Inside a nesting it poisons the
	// enclosing batch: the outermost Commit will fail and discard.
	Rollback() error
}

// ErrBatchAborted is returned by Commit after an inner Rollback poisoned
// the batch.
var ErrBatchAborted = errors.New("storage: update batch aborted")

// walMagic identifies a WAL file and its format version.
var walMagic = [8]byte{'D', 'O', 'L', 'W', 'A', 'L', '0', '1'}

const walHeaderSize = 12 // magic + u32 pageSize

// WAL record types.
const (
	walRecBegin      = 1
	walRecPage       = 2
	walRecMeta       = 3
	walRecCommit     = 4
	walRecCheckpoint = 5
)

// WALPager wraps a Pager with write-ahead-logged update batches. Outside a
// batch it is a transparent proxy (bulk loads journal nothing); inside one,
// writes and allocations are buffered and only reach the wrapped pager
// after the commit record is durable.
type WALPager struct {
	mu   sync.Mutex
	data Pager
	log  File
	// sink receives the committed metadata blob after the data pager is
	// synced and before the checkpoint record — both at commit and when
	// recovery redoes a batch. It must be idempotent.
	sink func([]byte) error

	seq     uint64
	depth   int
	aborted bool
	// pending maps page → after-image for the open batch; order preserves
	// first-write order for deterministic apply.
	pending map[PageID][]byte
	order   []PageID
	meta    []byte
	// numPages is the logical page count (data pages + batch allocations).
	numPages int
	// lastAbortDirty records whether the most recent outermost rollback
	// discarded buffered writes — the caller's in-memory state is then
	// ahead of disk and must be rebuilt by reopening.
	lastAbortDirty bool

	// Protocol counters, registered under wal_* via RegisterMetrics. Only
	// outermost Begin/Commit/Rollback count; fsyncs counts every Sync the
	// commit protocol and recovery issue (log → data → checkpoint).
	begins     obs.Counter
	commits    obs.Counter
	rollbacks  obs.Counter
	fsyncs     obs.Counter
	logAppends obs.Counter
	logBytes   obs.Counter
}

// RecoveryInfo reports what opening a WAL found.
type RecoveryInfo struct {
	// Redone counts committed batches re-applied to the data pager.
	Redone int
	// MetaApplied reports that a redone batch carried a metadata blob that
	// was (re)delivered to the sink.
	MetaApplied bool
	// Discarded reports that an uncommitted tail (torn or unfinished
	// batch) was dropped.
	Discarded bool
}

// OpenWALPager wraps data with a write-ahead log stored in log, first
// running crash recovery: committed-but-unapplied batches are redone into
// data (and their metadata delivered to sink, which may be nil), torn or
// uncommitted tails are discarded. The log is truncated to its header
// afterwards.
func OpenWALPager(data Pager, log File, sink func([]byte) error) (*WALPager, RecoveryInfo, error) {
	w := &WALPager{
		data:     data,
		log:      log,
		sink:     sink,
		numPages: data.NumPages(),
	}
	info, err := w.recover()
	if err != nil {
		return nil, info, err
	}
	return w, info, nil
}

// Data returns the wrapped pager.
func (w *WALPager) Data() Pager { return w.data }

// Log returns the log file.
func (w *WALPager) Log() File { return w.log }

// PageSize implements Pager.
func (w *WALPager) PageSize() int { return w.data.PageSize() }

// NumPages implements Pager: inside a batch it includes the batch's not
// yet materialized allocations.
func (w *WALPager) NumPages() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.numPages
}

// Allocate implements Pager. Inside a batch the page exists only in the
// batch until commit.
func (w *WALPager) Allocate() (PageID, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.depth == 0 {
		id, err := w.data.Allocate()
		if err == nil {
			w.numPages = w.data.NumPages()
		}
		return id, err
	}
	id := PageID(w.numPages)
	w.numPages++
	w.stage(id, make([]byte, w.data.PageSize()))
	return id, nil
}

// stage records buf (retained, not copied — callers pass fresh slices) as
// the batch's after-image of id. Caller holds w.mu.
func (w *WALPager) stage(id PageID, buf []byte) {
	if _, ok := w.pending[id]; !ok {
		w.order = append(w.order, id)
	}
	w.pending[id] = buf
}

// ReadPage implements Pager, reading through the open batch.
func (w *WALPager) ReadPage(id PageID, buf []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if int(id) >= w.numPages {
		return fmt.Errorf("%w: read %d of %d", ErrPageOutOfRange, id, w.numPages)
	}
	if img, ok := w.pending[id]; ok {
		if len(buf) != len(img) {
			return fmt.Errorf("storage: buffer size %d != page size %d", len(buf), len(img))
		}
		copy(buf, img)
		return nil
	}
	return w.data.ReadPage(id, buf)
}

// WritePage implements Pager. Inside a batch the write is journaled, not
// applied.
func (w *WALPager) WritePage(id PageID, buf []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.depth == 0 {
		return w.data.WritePage(id, buf)
	}
	if int(id) >= w.numPages {
		return fmt.Errorf("%w: write %d of %d", ErrPageOutOfRange, id, w.numPages)
	}
	if len(buf) != w.data.PageSize() {
		return fmt.Errorf("storage: buffer size %d != page size %d", len(buf), w.data.PageSize())
	}
	img := make([]byte, len(buf))
	copy(img, buf)
	w.stage(id, img)
	return nil
}

// Sync implements Pager. Inside a batch durability is deferred to Commit.
func (w *WALPager) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.depth > 0 {
		return nil
	}
	return w.data.Sync()
}

// Close implements Pager, discarding any open batch (equivalent to a crash
// before commit) and closing both files.
func (w *WALPager) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.discardLocked()
	lerr := w.log.Close()
	derr := w.data.Close()
	if derr != nil {
		return derr
	}
	return lerr
}

// Stats implements Pager. Batched writes are counted when they reach the
// data pager at commit, keeping the physical counters honest.
func (w *WALPager) Stats() IOStats { return w.data.Stats() }

// InBatch reports whether an update batch is open.
func (w *WALPager) InBatch() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.depth > 0
}

// Begin implements TxnPager.
func (w *WALPager) Begin() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.depth++
	if w.depth == 1 {
		w.begins.Inc()
		w.pending = make(map[PageID][]byte)
		w.order = w.order[:0]
		w.meta = nil
		w.aborted = false
		w.numPages = w.data.NumPages()
	}
	return nil
}

// Rollback implements TxnPager.
func (w *WALPager) Rollback() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.depth == 0 {
		return errors.New("storage: rollback without batch")
	}
	w.aborted = true
	w.depth--
	if w.depth == 0 {
		w.rollbacks.Inc()
		w.discardLocked()
	}
	return nil
}

// LastAbortDirty reports whether the most recent outermost rollback threw
// away buffered page writes. When true, the caller's in-memory structures
// were built against state that never reached disk; the store must be
// reopened (recovery restores the pre-batch pages).
func (w *WALPager) LastAbortDirty() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lastAbortDirty
}

// discardLocked drops the open batch. Caller holds w.mu.
func (w *WALPager) discardLocked() {
	w.lastAbortDirty = len(w.order) > 0
	w.pending = nil
	w.order = w.order[:0]
	w.meta = nil
	w.depth = 0
	w.aborted = false
	w.numPages = w.data.NumPages()
}

// Commit implements TxnPager. The outermost commit makes the batch durable
// and applies it; nested commits only merge their metadata.
func (w *WALPager) Commit(meta []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.depth == 0 {
		return errors.New("storage: commit without batch")
	}
	if meta != nil {
		w.meta = meta
	}
	if w.depth > 1 {
		w.depth--
		return nil
	}
	if w.aborted {
		w.discardLocked()
		return ErrBatchAborted
	}
	if len(w.order) == 0 && w.meta == nil {
		w.depth = 0
		w.pending = nil
		w.lastAbortDirty = false
		w.commits.Inc()
		return nil
	}
	err := w.commitLocked()
	if err != nil {
		// The caller's in-memory state is ahead of disk whether the batch
		// died before the commit record (pre-state on disk) or during
		// apply (recovery will finish the redo); either way it must
		// reopen. Mark the discard dirty so callers poison themselves.
		w.discardLocked()
		w.lastAbortDirty = true
		return err
	}
	w.depth = 0
	w.pending = nil
	w.order = w.order[:0]
	w.meta = nil
	w.lastAbortDirty = false
	w.commits.Inc()
	return nil
}

// commitLocked runs the durable commit protocol. Caller holds w.mu.
func (w *WALPager) commitLocked() error {
	w.seq++
	if err := w.ensureHeaderLocked(); err != nil {
		return err
	}
	// 1. Journal: begin, frames, meta, commit — then make the log durable.
	if err := w.appendRecord(encodeBegin(w.seq, w.data.NumPages())); err != nil {
		return err
	}
	for _, id := range w.order {
		if err := w.appendRecord(encodePage(id, w.pending[id])); err != nil {
			return err
		}
	}
	if w.meta != nil {
		if err := w.appendRecord(encodeMeta(w.meta)); err != nil {
			return err
		}
	}
	if err := w.appendRecord(encodeCommit(w.seq, w.numPages, len(w.order))); err != nil {
		return err
	}
	w.fsyncs.Inc()
	if err := w.log.Sync(); err != nil {
		return fmt.Errorf("storage: wal commit sync: %w", err)
	}
	// 2. Apply to the data pager and make it durable.
	if err := w.applyLocked(w.numPages, w.order, w.pending); err != nil {
		return err
	}
	// 3. Deliver metadata, then checkpoint and reset the log.
	if w.sink != nil && w.meta != nil {
		if err := w.sink(w.meta); err != nil {
			return fmt.Errorf("storage: wal meta sink: %w", err)
		}
	}
	if err := w.appendRecord(encodeCheckpoint(w.seq)); err != nil {
		return err
	}
	w.fsyncs.Inc()
	if err := w.log.Sync(); err != nil {
		return fmt.Errorf("storage: wal checkpoint sync: %w", err)
	}
	if err := w.log.Truncate(walHeaderSize); err != nil {
		return fmt.Errorf("storage: wal truncate: %w", err)
	}
	return nil
}

// applyLocked materializes a batch in the data pager: allocate up to
// finalPages, write every after-image, sync. Caller holds w.mu.
func (w *WALPager) applyLocked(finalPages int, order []PageID, images map[PageID][]byte) error {
	for w.data.NumPages() < finalPages {
		if _, err := w.data.Allocate(); err != nil {
			return fmt.Errorf("storage: wal apply allocate: %w", err)
		}
	}
	for _, id := range order {
		if err := w.data.WritePage(id, images[id]); err != nil {
			return fmt.Errorf("storage: wal apply: %w", err)
		}
	}
	w.fsyncs.Inc()
	if err := w.data.Sync(); err != nil {
		return fmt.Errorf("storage: wal apply sync: %w", err)
	}
	return nil
}

// ensureHeaderLocked writes the log header if the file is empty, and
// validates it otherwise. Caller holds w.mu.
func (w *WALPager) ensureHeaderLocked() error {
	size, err := w.log.Size()
	if err != nil {
		return err
	}
	if size >= walHeaderSize {
		return nil
	}
	if size != 0 {
		if err := w.log.Truncate(0); err != nil {
			return err
		}
	}
	hdr := make([]byte, walHeaderSize)
	copy(hdr, walMagic[:])
	binary.LittleEndian.PutUint32(hdr[8:], uint32(w.data.PageSize()))
	if _, err := w.log.Append(hdr); err != nil {
		return fmt.Errorf("storage: wal header: %w", err)
	}
	return nil
}

// appendRecord appends one framed record (payload already includes the
// type byte) plus its CRC32.
func (w *WALPager) appendRecord(rec []byte) error {
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(rec))
	if _, err := w.log.Append(append(rec, crc[:]...)); err != nil {
		return fmt.Errorf("storage: wal append: %w", err)
	}
	w.logAppends.Inc()
	w.logBytes.Add(int64(len(rec) + 4))
	return nil
}

// RegisterMetrics registers the WAL protocol counters with reg under
// prefix (prefix "wal" yields wal_begins, wal_commits, …).
func (w *WALPager) RegisterMetrics(reg *obs.Registry, prefix string) error {
	for _, m := range []struct {
		name string
		c    *obs.Counter
	}{
		{"begins", &w.begins},
		{"commits", &w.commits},
		{"rollbacks", &w.rollbacks},
		{"fsyncs", &w.fsyncs},
		{"log_appends", &w.logAppends},
		{"log_bytes", &w.logBytes},
	} {
		if err := reg.RegisterCounter(prefix+"_"+m.name, m.c); err != nil {
			return err
		}
	}
	return nil
}

func encodeBegin(seq uint64, basePages int) []byte {
	b := make([]byte, 13)
	b[0] = walRecBegin
	binary.LittleEndian.PutUint64(b[1:], seq)
	binary.LittleEndian.PutUint32(b[9:], uint32(basePages))
	return b
}

func encodePage(id PageID, data []byte) []byte {
	b := make([]byte, 5+len(data))
	b[0] = walRecPage
	binary.LittleEndian.PutUint32(b[1:], uint32(id))
	copy(b[5:], data)
	return b
}

func encodeMeta(meta []byte) []byte {
	b := make([]byte, 5+len(meta))
	b[0] = walRecMeta
	binary.LittleEndian.PutUint32(b[1:], uint32(len(meta)))
	copy(b[5:], meta)
	return b
}

func encodeCommit(seq uint64, finalPages, frames int) []byte {
	b := make([]byte, 17)
	b[0] = walRecCommit
	binary.LittleEndian.PutUint64(b[1:], seq)
	binary.LittleEndian.PutUint32(b[9:], uint32(finalPages))
	binary.LittleEndian.PutUint32(b[13:], uint32(frames))
	return b
}

func encodeCheckpoint(seq uint64) []byte {
	b := make([]byte, 9)
	b[0] = walRecCheckpoint
	binary.LittleEndian.PutUint64(b[1:], seq)
	return b
}

// walBatch is one parsed batch during recovery.
type walBatch struct {
	seq          uint64
	finalPages   int
	order        []PageID
	images       map[PageID][]byte
	meta         []byte
	committed    bool
	checkpointed bool
}

// recover scans the log, redoes committed-but-unapplied batches, discards
// torn or uncommitted tails, and truncates the log to its header.
func (w *WALPager) recover() (RecoveryInfo, error) {
	var info RecoveryInfo
	size, err := w.log.Size()
	if err != nil {
		return info, err
	}
	if size < walHeaderSize {
		// Fresh (or unusable-short) log: reset to a bare header.
		if size != 0 {
			info.Discarded = true
		}
		if err := w.log.Truncate(0); err != nil {
			return info, err
		}
		return info, w.ensureHeaderLocked()
	}
	buf := make([]byte, size)
	if _, err := w.log.ReadAt(buf, 0); err != nil {
		return info, fmt.Errorf("storage: wal read: %w", err)
	}
	if [8]byte(buf[:8]) != walMagic {
		return info, fmt.Errorf("storage: wal bad magic %q", buf[:8])
	}
	if ps := int(binary.LittleEndian.Uint32(buf[8:12])); ps != w.data.PageSize() {
		return info, fmt.Errorf("storage: wal page size %d, data pager has %d", ps, w.data.PageSize())
	}
	batches, tail := parseWAL(buf[walHeaderSize:], w.data.PageSize())
	info.Discarded = tail
	for _, b := range batches {
		if b.seq > w.seq {
			w.seq = b.seq
		}
		if !b.committed {
			info.Discarded = true
			continue
		}
		if b.checkpointed {
			continue
		}
		if err := w.applyLocked(b.finalPages, b.order, b.images); err != nil {
			return info, fmt.Errorf("storage: wal redo batch %d: %w", b.seq, err)
		}
		w.numPages = w.data.NumPages()
		if w.sink != nil && b.meta != nil {
			if err := w.sink(b.meta); err != nil {
				return info, fmt.Errorf("storage: wal redo meta sink: %w", err)
			}
			info.MetaApplied = true
		}
		info.Redone++
	}
	if err := w.log.Truncate(walHeaderSize); err != nil {
		return info, err
	}
	if err := w.log.Sync(); err != nil {
		return info, err
	}
	return info, nil
}

// parseWAL splits the record region into batches. It stops at the first
// malformed or CRC-corrupt record; tail reports whether such a stop dropped
// bytes (a torn log).
func parseWAL(b []byte, pageSize int) (batches []*walBatch, tail bool) {
	var cur *walBatch
	for len(b) > 0 {
		rec, rest, ok := nextRecord(b, pageSize)
		if !ok {
			return batches, true
		}
		b = rest
		switch rec[0] {
		case walRecBegin:
			cur = &walBatch{
				seq:    binary.LittleEndian.Uint64(rec[1:]),
				images: make(map[PageID][]byte),
			}
			batches = append(batches, cur)
		case walRecPage:
			if cur == nil || cur.committed {
				return batches, true
			}
			id := PageID(binary.LittleEndian.Uint32(rec[1:]))
			img := append([]byte(nil), rec[5:]...)
			if _, ok := cur.images[id]; !ok {
				cur.order = append(cur.order, id)
			}
			cur.images[id] = img
		case walRecMeta:
			if cur == nil || cur.committed {
				return batches, true
			}
			cur.meta = append([]byte(nil), rec[5:]...)
		case walRecCommit:
			if cur == nil || cur.committed ||
				binary.LittleEndian.Uint64(rec[1:]) != cur.seq ||
				int(binary.LittleEndian.Uint32(rec[13:])) != len(cur.order) {
				return batches, true
			}
			cur.finalPages = int(binary.LittleEndian.Uint32(rec[9:]))
			cur.committed = true
		case walRecCheckpoint:
			if cur == nil || !cur.committed ||
				binary.LittleEndian.Uint64(rec[1:]) != cur.seq {
				return batches, true
			}
			cur.checkpointed = true
		default:
			return batches, true
		}
	}
	return batches, false
}

// nextRecord slices one CRC-validated record (without its CRC) off b.
func nextRecord(b []byte, pageSize int) (rec, rest []byte, ok bool) {
	if len(b) < 1 {
		return nil, nil, false
	}
	var n int // record length excluding CRC
	switch b[0] {
	case walRecBegin:
		n = 13
	case walRecPage:
		n = 5 + pageSize
	case walRecMeta:
		if len(b) < 5 {
			return nil, nil, false
		}
		n = 5 + int(binary.LittleEndian.Uint32(b[1:]))
	case walRecCommit:
		n = 17
	case walRecCheckpoint:
		n = 9
	default:
		return nil, nil, false
	}
	if n < 0 || len(b) < n+4 {
		return nil, nil, false
	}
	if crc32.ChecksumIEEE(b[:n]) != binary.LittleEndian.Uint32(b[n:]) {
		return nil, nil, false
	}
	return b[:n], b[n+4:], true
}
