package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"

	"dolxml/internal/obs"
)

// This file implements the page-level write-ahead log that makes update
// batches atomic: a crash at any instant leaves the data pager either
// exactly as it was before the batch or exactly as the batch committed it —
// never a torn mixture. The DOL encoding makes this a security property,
// not merely a consistency one: a transition region torn mid-rewrite can
// grant access that was being revoked.
//
// Protocol. A batch buffers after-images of every page it touches (reads
// see the batch's own writes); nothing reaches the data pager before
// commit. Commit seals the batch onto the flush queue; a flush takes every
// queued batch — one or many — and appends them all to the log (begin
// record, one frame per page, an optional opaque metadata blob, commit
// record per batch, every record CRC32-guarded), then fsyncs the log ONCE
// for the whole group. Only then are the merged after-images applied to the
// data pager and fsynced, the newest metadata blob handed to the MetaSink,
// and a single checkpoint record covering the whole group appended before
// the log is truncated back to its header. The fsync ordering is therefore
// log → data → checkpoint, exactly as for a lone batch, but shared by every
// batch in the group — the group-commit machinery lives in groupcommit.go.
//
// Recovery. Opening the log classifies its tail:
//
//   - a committed batch without a checkpoint is redone (idempotent: the log
//     holds full after-images) and its metadata re-delivered to the sink;
//   - an uncommitted batch — missing or CRC-corrupt records, a torn tail —
//     is discarded; by construction the data pager was never touched, so
//     the pre-batch state is intact.
//
// A crash inside a group flush therefore recovers to an exact prefix of
// the group: batches whose commit records reached the log roll forward in
// seal order, the first torn or missing one and everything after it rolls
// back. There is no interleaving — records are appended batch by batch.

// TxnPager is a Pager with atomic update batches. Begin/Commit nest: only
// the outermost pair acts, so layered update entry points (securexml over
// dol over nok) compose into a single atomic batch. Batch building is
// single-owner: callers serialize Begin..Commit externally (securexml holds
// its write lock across them); concurrency comes from overlapping one
// batch's flush with the next batch's build (see groupcommit.go).
type TxnPager interface {
	Pager
	// Begin opens a batch (or joins the enclosing one).
	Begin() error
	// Commit seals the batch. meta, when non-nil, is an opaque blob stored
	// with the commit record and delivered to the recovery sink; the last
	// non-nil meta of nested commits wins.
	Commit(meta []byte) error
	// Rollback abandons the batch. Inside a nesting it poisons the
	// enclosing batch: the outermost Commit will fail and discard.
	Rollback() error
}

// ErrBatchAborted is returned by Commit after an inner Rollback poisoned
// the batch.
var ErrBatchAborted = errors.New("storage: update batch aborted")

// walMagic identifies a WAL file and its format version.
var walMagic = [8]byte{'D', 'O', 'L', 'W', 'A', 'L', '0', '1'}

const walHeaderSize = 12 // magic + u32 pageSize

// walTruncateThreshold bounds how large the log may grow before a
// background flush forces the deferred checkpoint (sidecar delivery + log
// truncation). Checkpointed batches are dead weight — recovery skips their
// redo — so keeping them until the log crosses this size trades a little
// replay scanning for removing the two sidecar fsyncs from every flush.
const walTruncateThreshold = 1 << 20

// WAL record types.
const (
	walRecBegin      = 1
	walRecPage       = 2
	walRecMeta       = 3
	walRecCommit     = 4
	walRecCheckpoint = 5
	// walRecMetaDelta journals a batch's metadata as (prefixLen, suffix)
	// against the previous meta record in the same log: the blob is the
	// first prefixLen bytes of that record's (reconstructed) blob followed
	// by the suffix. Metadata blobs are full sidecar images that differ
	// only in a small mutated region from batch to batch, so within a group
	// flush only the first batch pays the full blob; without this, meta
	// dominated the log traffic (a 140 KB blob per ~16 KB of page images)
	// and large coalesced groups made flushes slower, not faster.
	walRecMetaDelta = 6
)

// WALPager wraps a Pager with write-ahead-logged update batches. Outside a
// batch it is a transparent proxy (bulk loads journal nothing); inside one,
// writes and allocations are buffered and only reach the wrapped pager
// after the commit record is durable.
type WALPager struct {
	mu   sync.Mutex
	data Pager
	log  File
	// sink receives the committed metadata blob once its batch is durable:
	// at checkpoint (the newest pending blob), and from recovery — both
	// when it redoes a batch and when the newest committed blob in the log
	// belongs to an already-checkpointed batch whose deferred sidecar
	// delivery never happened. It must be idempotent.
	sink func([]byte) error

	seq     uint64
	depth   int
	aborted bool
	// pending maps page → after-image for the open batch; order preserves
	// first-write order for deterministic apply.
	pending map[PageID][]byte
	order   []PageID
	meta    []byte
	// numPages is the logical page count: data pages, plus allocations of
	// sealed-but-unflushed batches, plus the open batch's allocations.
	numPages int
	// lastAbortDirty records whether the most recent outermost rollback
	// (or failed flush) discarded buffered writes — the caller's in-memory
	// state is then ahead of disk and must be rebuilt by reopening.
	lastAbortDirty bool

	// Group-commit state (see groupcommit.go). queue holds sealed batches
	// not yet applied to the data pager; reads consult it newest-first, so
	// committed-but-unflushed pages stay visible. broken latches the first
	// flush failure: the log is in an unknown state and every later commit
	// fails until the store is reopened (recovery sorts out the log).
	queue  []*sealedBatch
	broken error
	// flushMu serializes the flush protocol (log appends, data apply,
	// checkpoint). It is never held together with mu across an I/O call,
	// so readers do not stall behind a flush's fsyncs.
	flushMu sync.Mutex
	// Deferred-checkpoint state, guarded by flushMu. Background (lazy)
	// flushes leave checkpointed batches in the log and their sidecar
	// delivery outstanding until the log crosses walTruncateThreshold;
	// pendingSidecar is the newest committed metadata blob the sink has
	// not seen, prevLoggedMeta the last blob journaled since the log was
	// truncated (the cross-flush base for meta delta records).
	pendingSidecar []byte
	prevLoggedMeta []byte
	// held pauses flushing (test hook for deterministic group formation).
	held bool
	// Flusher goroutine lifecycle: started lazily by the first async or
	// grouped commit, stopped by Close.
	flusherOn bool
	kick      chan struct{}
	stop      chan struct{}
	stopOnce  sync.Once
	wg        sync.WaitGroup

	// Protocol counters, registered under wal_* via RegisterMetrics. Only
	// outermost Begin/Commit/Rollback count; fsyncs counts every Sync the
	// flush protocol and recovery issue (log → data → checkpoint).
	begins     obs.Counter
	commits    obs.Counter
	rollbacks  obs.Counter
	fsyncs     obs.Counter
	logAppends obs.Counter
	logBytes   obs.Counter
	// groupSize observes how many batches each flush coalesced;
	// commitWait observes seal-to-durable latency per batch in µs.
	groupSize  obs.Histogram
	commitWait obs.Histogram
}

// RecoveryInfo reports what opening a WAL found.
type RecoveryInfo struct {
	// Redone counts committed batches re-applied to the data pager.
	Redone int
	// MetaApplied reports that a redone batch carried a metadata blob that
	// was (re)delivered to the sink.
	MetaApplied bool
	// Discarded reports that an uncommitted tail (torn or unfinished
	// batch) was dropped.
	Discarded bool
}

// OpenWALPager wraps data with a write-ahead log stored in log, first
// running crash recovery: committed-but-unapplied batches are redone into
// data (and their metadata delivered to sink, which may be nil), torn or
// uncommitted tails are discarded. The log is truncated to its header
// afterwards.
func OpenWALPager(data Pager, log File, sink func([]byte) error) (*WALPager, RecoveryInfo, error) {
	w := &WALPager{
		data:     data,
		log:      log,
		sink:     sink,
		numPages: data.NumPages(),
		kick:     make(chan struct{}, 1),
		stop:     make(chan struct{}),
	}
	info, err := w.recover()
	if err != nil {
		return nil, info, err
	}
	return w, info, nil
}

// Data returns the wrapped pager.
func (w *WALPager) Data() Pager { return w.data }

// Log returns the log file.
func (w *WALPager) Log() File { return w.log }

// PageSize implements Pager.
func (w *WALPager) PageSize() int { return w.data.PageSize() }

// NumPages implements Pager: it includes allocations of sealed batches
// still queued for flush and, inside a batch, the batch's own not yet
// materialized allocations.
func (w *WALPager) NumPages() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.numPages
}

// queueTopLocked is the logical page count excluding the open batch: the
// last sealed batch's final count, or the data pager's. Caller holds w.mu.
func (w *WALPager) queueTopLocked() int {
	if n := len(w.queue); n > 0 {
		return w.queue[n-1].final
	}
	return w.data.NumPages()
}

// Allocate implements Pager. Inside a batch the page exists only in the
// batch until commit. Outside one, any sealed batches are flushed first so
// the data pager's allocation cannot collide with a queued batch's.
func (w *WALPager) Allocate() (PageID, error) {
	for {
		w.mu.Lock()
		if w.depth > 0 {
			id := PageID(w.numPages)
			w.numPages++
			w.stage(id, make([]byte, w.data.PageSize()))
			w.mu.Unlock()
			return id, nil
		}
		if len(w.queue) == 0 {
			id, err := w.data.Allocate()
			if err == nil {
				w.numPages = w.data.NumPages()
			}
			w.mu.Unlock()
			return id, err
		}
		w.mu.Unlock()
		if err := w.FlushBarrier(); err != nil {
			return InvalidPage, err
		}
	}
}

// stage records buf (retained, not copied — callers pass fresh slices) as
// the batch's after-image of id. Caller holds w.mu.
func (w *WALPager) stage(id PageID, buf []byte) {
	if _, ok := w.pending[id]; !ok {
		w.order = append(w.order, id)
	}
	w.pending[id] = buf
}

// ReadPage implements Pager, reading through the open batch and any sealed
// batches still queued for flush (newest first). The fall-through read of
// the data pager runs outside w.mu, so cold reads do not serialize behind
// batch bookkeeping; the data pager synchronizes itself, and a page being
// applied by a flush stays in the queue overlay until the apply is durable,
// so no reader can observe a torn or stale image.
func (w *WALPager) ReadPage(id PageID, buf []byte) error {
	w.mu.Lock()
	if int(id) >= w.numPages {
		n := w.numPages
		w.mu.Unlock()
		return fmt.Errorf("%w: read %d of %d", ErrPageOutOfRange, id, n)
	}
	img, ok := w.pending[id]
	if !ok {
		for i := len(w.queue) - 1; i >= 0; i-- {
			if qi, hit := w.queue[i].images[id]; hit {
				img, ok = qi, true
				break
			}
		}
	}
	if ok {
		if len(buf) != len(img) {
			w.mu.Unlock()
			return fmt.Errorf("storage: buffer size %d != page size %d", len(buf), len(img))
		}
		copy(buf, img)
		w.mu.Unlock()
		return nil
	}
	w.mu.Unlock()
	return w.data.ReadPage(id, buf)
}

// WritePage implements Pager. Inside a batch the write is journaled, not
// applied; outside one, queued batches are flushed first so the direct
// write cannot be overwritten by an older sealed image.
func (w *WALPager) WritePage(id PageID, buf []byte) error {
	for {
		w.mu.Lock()
		if w.depth > 0 {
			if int(id) >= w.numPages {
				n := w.numPages
				w.mu.Unlock()
				return fmt.Errorf("%w: write %d of %d", ErrPageOutOfRange, id, n)
			}
			if len(buf) != w.data.PageSize() {
				ps := w.data.PageSize()
				w.mu.Unlock()
				return fmt.Errorf("storage: buffer size %d != page size %d", len(buf), ps)
			}
			img := make([]byte, len(buf))
			copy(img, buf)
			w.stage(id, img)
			w.mu.Unlock()
			return nil
		}
		if len(w.queue) == 0 {
			w.mu.Unlock()
			return w.data.WritePage(id, buf)
		}
		w.mu.Unlock()
		if err := w.FlushBarrier(); err != nil {
			return err
		}
	}
}

// Sync implements Pager. Inside a batch durability is deferred to Commit;
// outside one it first flushes any queued batches, so Sync remains a full
// durability barrier under asynchronous commits.
func (w *WALPager) Sync() error {
	w.mu.Lock()
	inBatch := w.depth > 0
	w.mu.Unlock()
	if inBatch {
		return nil
	}
	if err := w.FlushBarrier(); err != nil {
		return err
	}
	return w.data.Sync()
}

// Close implements Pager: it stops the flusher, flushes any sealed batches
// still queued (waking their waiters), discards an open batch (equivalent
// to a crash before commit), and closes both files. After a flush failure
// the queued batches are resolved with the failure instead — recovery on
// reopen decides their fate from the log.
func (w *WALPager) Close() error {
	w.stopFlusher()
	ferr := w.FlushBarrier()
	if ferr == nil {
		// Force the deferred checkpoint: a clean close leaves the sidecar
		// current and the log a bare header, so reopening redoes nothing.
		w.flushMu.Lock()
		ferr = w.checkpointLocked()
		w.flushMu.Unlock()
	}
	w.mu.Lock()
	w.discardLocked()
	w.mu.Unlock()
	lerr := w.log.Close()
	derr := w.data.Close()
	if ferr != nil && !errors.Is(ferr, errWALBroken) {
		return ferr
	}
	if derr != nil {
		return derr
	}
	return lerr
}

// Stats implements Pager. Batched writes are counted when they reach the
// data pager at flush, keeping the physical counters honest.
func (w *WALPager) Stats() IOStats { return w.data.Stats() }

// InBatch reports whether an update batch is open.
func (w *WALPager) InBatch() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.depth > 0
}

// Begin implements TxnPager.
func (w *WALPager) Begin() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.depth++
	if w.depth == 1 {
		w.begins.Inc()
		w.pending = make(map[PageID][]byte)
		w.order = w.order[:0]
		w.meta = nil
		w.aborted = false
		w.numPages = w.queueTopLocked()
	}
	return nil
}

// Rollback implements TxnPager.
func (w *WALPager) Rollback() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.depth == 0 {
		return errors.New("storage: rollback without batch")
	}
	w.aborted = true
	w.depth--
	if w.depth == 0 {
		w.rollbacks.Inc()
		w.discardLocked()
	}
	return nil
}

// LastAbortDirty reports whether the most recent outermost rollback or
// failed flush threw away buffered page writes. When true, the caller's
// in-memory structures were built against state that never reached disk;
// the store must be reopened (recovery restores the pre-batch pages).
func (w *WALPager) LastAbortDirty() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lastAbortDirty
}

// discardLocked drops the open batch. Caller holds w.mu.
func (w *WALPager) discardLocked() {
	w.lastAbortDirty = len(w.order) > 0
	w.pending = nil
	w.order = w.order[:0]
	w.meta = nil
	w.depth = 0
	w.aborted = false
	w.numPages = w.queueTopLocked()
}

// Commit implements TxnPager with synchronous durability: the outermost
// commit seals the batch, flushes the queue inline (coalescing any batches
// an async committer queued before it), and returns once its own batch is
// durable and applied. Nested commits only merge their metadata. See
// CommitGrouped and CommitAsync for the deferred-durability variants.
func (w *WALPager) Commit(meta []byte) error {
	b, err := w.sealForCommit(meta)
	if err != nil || b == nil {
		return err
	}
	if ferr := w.flushGroup(false); ferr != nil {
		if !b.resolved() {
			// The flush died before reaching our batch (e.g. the log broke
			// on an earlier group): fail it now so the wait below returns.
			w.failQueued(ferr)
		}
		// Even when our batch reached durability (waiter resolved nil at
		// the log sync), a synchronous committer promised "durable AND
		// applied": a failure in the flush tail poisons the pager and must
		// surface here, not be swallowed by the resolved waiter.
		<-b.done
		return ferr
	}
	<-b.done
	return b.err
}

// sealForCommit handles the shared Commit bookkeeping: nested commits merge
// meta and return (nil, nil); an empty outermost batch resolves in place;
// otherwise the batch is sealed onto the flush queue and returned.
func (w *WALPager) sealForCommit(meta []byte) (*sealedBatch, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.depth == 0 {
		return nil, errors.New("storage: commit without batch")
	}
	if meta != nil {
		w.meta = meta
	}
	if w.depth > 1 {
		w.depth--
		return nil, nil
	}
	if w.aborted {
		w.discardLocked()
		return nil, ErrBatchAborted
	}
	if w.broken != nil {
		w.discardLocked()
		w.lastAbortDirty = true
		return nil, fmt.Errorf("%w: %w", errWALBroken, w.broken)
	}
	if len(w.order) == 0 && w.meta == nil {
		w.depth = 0
		w.pending = nil
		w.lastAbortDirty = false
		w.commits.Inc()
		return nil, nil
	}
	w.seq++
	b := newSealedBatch(w.seq, w.numPages, w.order, w.pending, w.meta)
	w.queue = append(w.queue, b)
	w.depth = 0
	w.pending = nil
	w.order = nil
	w.meta = nil
	w.lastAbortDirty = false
	return b, nil
}

// ensureHeader writes the log header if the file is empty, and validates it
// otherwise. Caller holds w.flushMu (or is recovery, which runs before any
// concurrency exists).
func (w *WALPager) ensureHeader() error {
	size, err := w.log.Size()
	if err != nil {
		return err
	}
	if size >= walHeaderSize {
		return nil
	}
	if size != 0 {
		if err := w.log.Truncate(0); err != nil {
			return err
		}
	}
	hdr := make([]byte, walHeaderSize)
	copy(hdr, walMagic[:])
	binary.LittleEndian.PutUint32(hdr[8:], uint32(w.data.PageSize()))
	if _, err := w.log.Append(hdr); err != nil {
		return fmt.Errorf("storage: wal header: %w", err)
	}
	return nil
}

// appendRecord appends one framed record (payload already includes the
// type byte) plus its CRC32.
func (w *WALPager) appendRecord(rec []byte) error {
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(rec))
	if _, err := w.log.Append(append(rec, crc[:]...)); err != nil {
		return fmt.Errorf("storage: wal append: %w", err)
	}
	w.logAppends.Inc()
	w.logBytes.Add(int64(len(rec) + 4))
	return nil
}

// applyImages materializes committed after-images in the data pager:
// allocate up to finalPages, write every image, sync. Used both by the
// flush protocol (with the group's merged images) and by recovery redo.
func (w *WALPager) applyImages(finalPages int, order []PageID, images map[PageID][]byte) error {
	for w.data.NumPages() < finalPages {
		if _, err := w.data.Allocate(); err != nil {
			return fmt.Errorf("storage: wal apply allocate: %w", err)
		}
	}
	for _, id := range order {
		if err := w.data.WritePage(id, images[id]); err != nil {
			return fmt.Errorf("storage: wal apply: %w", err)
		}
	}
	w.fsyncs.Inc()
	if err := w.data.Sync(); err != nil {
		return fmt.Errorf("storage: wal apply sync: %w", err)
	}
	return nil
}

// RegisterMetrics registers the WAL protocol counters with reg under
// prefix (prefix "wal" yields wal_begins, wal_commits, …), plus the
// group-commit observability: wal_group_size (batches coalesced per
// flush), wal_pending_batches (sealed batches awaiting flush) and
// commit_wait_us (seal-to-durable latency per batch).
func (w *WALPager) RegisterMetrics(reg *obs.Registry, prefix string) error {
	for _, m := range []struct {
		name, help string
		c          *obs.Counter
	}{
		{"begins", "Transactions begun against the WAL.", &w.begins},
		{"commits", "Transactions committed durably.", &w.commits},
		{"rollbacks", "Transactions rolled back.", &w.rollbacks},
		{"fsyncs", "fsync calls issued by the WAL.", &w.fsyncs},
		{"log_appends", "Records appended to the log.", &w.logAppends},
		{"log_bytes", "Bytes appended to the log.", &w.logBytes},
	} {
		if err := reg.RegisterCounter(prefix+"_"+m.name, m.c); err != nil {
			return err
		}
		reg.SetHelp(prefix+"_"+m.name, m.help)
	}
	if err := reg.RegisterHistogram(prefix+"_group_size", &w.groupSize); err != nil {
		return err
	}
	reg.SetHelp(prefix+"_group_size", "Commit batches coalesced per group flush.")
	if err := reg.RegisterGauge(prefix+"_pending_batches", func() int64 {
		return int64(w.PendingBatches())
	}); err != nil {
		return err
	}
	reg.SetHelp(prefix+"_pending_batches", "Sealed commit batches awaiting flush.")
	if err := reg.RegisterHistogram("commit_wait_us", &w.commitWait); err != nil {
		return err
	}
	reg.SetHelp("commit_wait_us", "Seal-to-durable commit latency in microseconds.")
	return nil
}

func encodeBegin(seq uint64, basePages int) []byte {
	b := make([]byte, 13)
	b[0] = walRecBegin
	binary.LittleEndian.PutUint64(b[1:], seq)
	binary.LittleEndian.PutUint32(b[9:], uint32(basePages))
	return b
}

func encodePage(id PageID, data []byte) []byte {
	b := make([]byte, 5+len(data))
	b[0] = walRecPage
	binary.LittleEndian.PutUint32(b[1:], uint32(id))
	copy(b[5:], data)
	return b
}

func encodeMeta(meta []byte) []byte {
	b := make([]byte, 5+len(meta))
	b[0] = walRecMeta
	binary.LittleEndian.PutUint32(b[1:], uint32(len(meta)))
	copy(b[5:], meta)
	return b
}

func encodeMetaDelta(prefixLen int, suffix []byte) []byte {
	b := make([]byte, 9+len(suffix))
	b[0] = walRecMetaDelta
	binary.LittleEndian.PutUint32(b[1:], uint32(prefixLen))
	binary.LittleEndian.PutUint32(b[5:], uint32(len(suffix)))
	copy(b[9:], suffix)
	return b
}

// encodeMetaRecord picks the meta encoding for a batch: a delta against the
// previous meta record in the same log when the shared prefix is worth it,
// the full blob otherwise. prev must be the blob of the log's most recent
// meta record (nil if none) — recovery reconstructs deltas against exactly
// that chain.
func encodeMetaRecord(prev, meta []byte) []byte {
	p := 0
	for p < len(prev) && p < len(meta) && prev[p] == meta[p] {
		p++
	}
	if p < 16 {
		return encodeMeta(meta)
	}
	return encodeMetaDelta(p, meta[p:])
}

func encodeCommit(seq uint64, finalPages, frames int) []byte {
	b := make([]byte, 17)
	b[0] = walRecCommit
	binary.LittleEndian.PutUint32(b[9:], uint32(finalPages))
	binary.LittleEndian.PutUint64(b[1:], seq)
	binary.LittleEndian.PutUint32(b[13:], uint32(frames))
	return b
}

func encodeCheckpoint(seq uint64) []byte {
	b := make([]byte, 9)
	b[0] = walRecCheckpoint
	binary.LittleEndian.PutUint64(b[1:], seq)
	return b
}

// walBatch is one parsed batch during recovery.
type walBatch struct {
	seq          uint64
	finalPages   int
	order        []PageID
	images       map[PageID][]byte
	meta         []byte
	committed    bool
	checkpointed bool
}

// recover scans the log, redoes committed-but-unapplied batches, discards
// torn or uncommitted tails, and truncates the log to its header.
func (w *WALPager) recover() (RecoveryInfo, error) {
	var info RecoveryInfo
	size, err := w.log.Size()
	if err != nil {
		return info, err
	}
	if size < walHeaderSize {
		// Fresh (or unusable-short) log: reset to a bare header.
		if size != 0 {
			info.Discarded = true
		}
		if err := w.log.Truncate(0); err != nil {
			return info, err
		}
		return info, w.ensureHeader()
	}
	buf := make([]byte, size)
	if _, err := w.log.ReadAt(buf, 0); err != nil {
		return info, fmt.Errorf("storage: wal read: %w", err)
	}
	if [8]byte(buf[:8]) != walMagic {
		return info, fmt.Errorf("storage: wal bad magic %q", buf[:8])
	}
	if ps := int(binary.LittleEndian.Uint32(buf[8:12])); ps != w.data.PageSize() {
		return info, fmt.Errorf("storage: wal page size %d, data pager has %d", ps, w.data.PageSize())
	}
	batches, tail := parseWAL(buf[walHeaderSize:], w.data.PageSize())
	info.Discarded = tail
	// pendingMeta tracks the newest committed metadata blob whose sidecar
	// delivery may still be outstanding: background flushes defer sidecar
	// writes (see checkpointLocked), so a checkpointed batch's blob can be
	// newer than the sidecar on disk even though its pages need no redo.
	// Redelivering is safe — the sink is idempotent — and required before
	// this truncation discards the only durable copy.
	var pendingMeta []byte
	for _, b := range batches {
		if b.seq > w.seq {
			w.seq = b.seq
		}
		if !b.committed {
			info.Discarded = true
			continue
		}
		if b.meta != nil {
			pendingMeta = b.meta
		}
		if b.checkpointed {
			continue
		}
		if err := w.applyImages(b.finalPages, b.order, b.images); err != nil {
			return info, fmt.Errorf("storage: wal redo batch %d: %w", b.seq, err)
		}
		w.numPages = w.data.NumPages()
		if w.sink != nil && b.meta != nil {
			if err := w.sink(b.meta); err != nil {
				return info, fmt.Errorf("storage: wal redo meta sink: %w", err)
			}
			info.MetaApplied = true
			pendingMeta = nil
		}
		info.Redone++
	}
	if w.sink != nil && pendingMeta != nil {
		if err := w.sink(pendingMeta); err != nil {
			return info, fmt.Errorf("storage: wal recovered meta sink: %w", err)
		}
		info.MetaApplied = true
	}
	if err := w.log.Truncate(walHeaderSize); err != nil {
		return info, err
	}
	if err := w.log.Sync(); err != nil {
		return info, err
	}
	return info, nil
}

// parseWAL splits the record region into batches. It stops at the first
// malformed or CRC-corrupt record; tail reports whether such a stop dropped
// bytes (a torn log).
func parseWAL(b []byte, pageSize int) (batches []*walBatch, tail bool) {
	var cur *walBatch
	// prevMeta is the blob of the most recent meta record, the base of the
	// delta chain. Records are strictly sequential and parsing stops at the
	// first bad record, so any delta reached here has its whole base chain
	// already parsed — a torn tail can never orphan a delta.
	var prevMeta []byte
	for len(b) > 0 {
		rec, rest, ok := nextRecord(b, pageSize)
		if !ok {
			return batches, true
		}
		b = rest
		switch rec[0] {
		case walRecBegin:
			cur = &walBatch{
				seq:    binary.LittleEndian.Uint64(rec[1:]),
				images: make(map[PageID][]byte),
			}
			batches = append(batches, cur)
		case walRecPage:
			if cur == nil || cur.committed {
				return batches, true
			}
			id := PageID(binary.LittleEndian.Uint32(rec[1:]))
			img := append([]byte(nil), rec[5:]...)
			if _, ok := cur.images[id]; !ok {
				cur.order = append(cur.order, id)
			}
			cur.images[id] = img
		case walRecMeta:
			if cur == nil || cur.committed {
				return batches, true
			}
			cur.meta = append([]byte(nil), rec[5:]...)
			prevMeta = cur.meta
		case walRecMetaDelta:
			p := int(binary.LittleEndian.Uint32(rec[1:]))
			if cur == nil || cur.committed || p > len(prevMeta) {
				return batches, true
			}
			meta := make([]byte, p+len(rec[9:]))
			copy(meta, prevMeta[:p])
			copy(meta[p:], rec[9:])
			cur.meta = meta
			prevMeta = meta
		case walRecCommit:
			if cur == nil || cur.committed ||
				binary.LittleEndian.Uint64(rec[1:]) != cur.seq ||
				int(binary.LittleEndian.Uint32(rec[13:])) != len(cur.order) {
				return batches, true
			}
			cur.finalPages = int(binary.LittleEndian.Uint32(rec[9:]))
			cur.committed = true
		case walRecCheckpoint:
			// A group flush writes one checkpoint covering every batch it
			// applied: seq S marks all committed batches up to S. A lone
			// batch is the degenerate group of one.
			seq := binary.LittleEndian.Uint64(rec[1:])
			covered := false
			for _, cb := range batches {
				if cb.committed && cb.seq <= seq {
					cb.checkpointed = true
					if cb.seq == seq {
						covered = true
					}
				}
			}
			if !covered {
				return batches, true
			}
		default:
			return batches, true
		}
	}
	return batches, false
}

// nextRecord slices one CRC-validated record (without its CRC) off b.
func nextRecord(b []byte, pageSize int) (rec, rest []byte, ok bool) {
	if len(b) < 1 {
		return nil, nil, false
	}
	var n int // record length excluding CRC
	switch b[0] {
	case walRecBegin:
		n = 13
	case walRecPage:
		n = 5 + pageSize
	case walRecMeta:
		if len(b) < 5 {
			return nil, nil, false
		}
		n = 5 + int(binary.LittleEndian.Uint32(b[1:]))
	case walRecMetaDelta:
		if len(b) < 9 {
			return nil, nil, false
		}
		n = 9 + int(binary.LittleEndian.Uint32(b[5:]))
	case walRecCommit:
		n = 17
	case walRecCheckpoint:
		n = 9
	default:
		return nil, nil, false
	}
	if n < 0 || len(b) < n+4 {
		return nil, nil, false
	}
	if crc32.ChecksumIEEE(b[:n]) != binary.LittleEndian.Uint32(b[n:]) {
		return nil, nil, false
	}
	return b[:n], b[n+4:], true
}
