package storage

import (
	"context"
	"sync"
	"testing"

	"dolxml/internal/obs"
)

// TestPoolStatsConcurrentReaders is the -race regression test for the
// stats migration: Stats() used to copy a mutex-guarded struct, and a
// caller reading it while workers updated the counters was only safe by
// accident of every path honoring bp.mu. Now each field is an obs atomic;
// this test hammers Get/Unpin from many goroutines while other goroutines
// poll Stats and a registry snapshot, and then checks the totals add up.
func TestPoolStatsConcurrentReaders(t *testing.T) {
	pager := NewMemPager(128)
	const pages = 32
	for i := 0; i < pages; i++ {
		if _, err := pager.Allocate(); err != nil {
			t.Fatal(err)
		}
	}
	bp := NewBufferPool(pager, 8)
	reg := obs.NewRegistry()
	if err := bp.RegisterMetrics(reg, "pool"); err != nil {
		t.Fatal(err)
	}

	const workers = 8
	const getsPerWorker = 500
	var wg, pollWg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 2; r++ {
		pollWg.Add(1)
		go func() {
			defer pollWg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := bp.Stats()
				if s.Hits+s.Misses > s.Gets {
					t.Errorf("hits+misses %d > gets %d", s.Hits+s.Misses, s.Gets)
					return
				}
				reg.Snapshot()
			}
		}()
	}
	ctx := context.Background()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < getsPerWorker; i++ {
				id := PageID((w*getsPerWorker + i) % pages)
				f, err := bp.GetCtx(ctx, id)
				if err != nil {
					t.Error(err)
					return
				}
				if err := bp.Unpin(f.ID(), false); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	pollWg.Wait()

	s := bp.Stats()
	if s.Gets != workers*getsPerWorker {
		t.Fatalf("Gets = %d, want %d", s.Gets, workers*getsPerWorker)
	}
	if s.Hits+s.Misses != s.Gets {
		t.Fatalf("hits %d + misses %d != gets %d", s.Hits, s.Misses, s.Gets)
	}
	snap := reg.Snapshot()
	if snap.Get("pool_gets") != s.Gets || snap.Get("pool_hits") != s.Hits {
		t.Fatalf("registry disagrees with Stats(): %+v vs %+v", snap.Counters, s)
	}
	if snap.Get("pool_pinned") != 0 {
		t.Fatalf("pool_pinned = %d after all unpins", snap.Get("pool_pinned"))
	}
	if snap.Get("pool_capacity") != 8 {
		t.Fatalf("pool_capacity = %d", snap.Get("pool_capacity"))
	}
}

// TestPoolTracePinAccounting asserts the contract the query-level
// invariant tests build on: one trace pin event per pool Get performed
// under a traced context, with the hit flag matching the pool's own
// hit/miss classification.
func TestPoolTracePinAccounting(t *testing.T) {
	pager := NewMemPager(128)
	for i := 0; i < 4; i++ {
		if _, err := pager.Allocate(); err != nil {
			t.Fatal(err)
		}
	}
	bp := NewBufferPool(pager, 4)
	tr := obs.NewTrace()
	ctx := obs.WithTrace(context.Background(), tr)
	before := bp.Stats()
	for pass := 0; pass < 2; pass++ {
		for id := PageID(0); id < 4; id++ {
			f, err := bp.GetCtx(ctx, id)
			if err != nil {
				t.Fatal(err)
			}
			if err := bp.Unpin(f.ID(), false); err != nil {
				t.Fatal(err)
			}
		}
	}
	d := bp.Stats().Sub(before)
	if tr.PageReads() != d.Gets {
		t.Fatalf("trace pins %d != pool gets %d", tr.PageReads(), d.Gets)
	}
	hits, misses := 0, 0
	for _, e := range tr.Events() {
		if e.Kind != obs.EvPagePin {
			continue
		}
		if e.Hit {
			hits++
		} else {
			misses++
		}
	}
	if int64(hits) != d.Hits || int64(misses) != d.Misses {
		t.Fatalf("trace hit/miss %d/%d != pool %d/%d", hits, misses, d.Hits, d.Misses)
	}
}
