package storage

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// pageBytes builds a page-sized buffer whose first bytes spell out a marker.
func pageBytes(size int, marker byte) []byte {
	b := make([]byte, size)
	for i := 0; i < 8; i++ {
		b[i] = marker
	}
	return b
}

func readPageOrFatal(t *testing.T, p Pager, id PageID) []byte {
	t.Helper()
	buf := make([]byte, p.PageSize())
	if err := p.ReadPage(id, buf); err != nil {
		t.Fatalf("read page %d: %v", id, err)
	}
	return buf
}

func newMemWAL(t *testing.T) (*WALPager, *MemPager, *MemFile) {
	t.Helper()
	mem := NewMemPager(128)
	log := NewMemFile()
	w, _, err := OpenWALPager(mem, log, nil)
	if err != nil {
		t.Fatalf("open wal: %v", err)
	}
	return w, mem, log
}

func TestWALPassthroughOutsideBatch(t *testing.T) {
	w, mem, _ := newMemWAL(t)
	id, err := w.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WritePage(id, pageBytes(128, 'a')); err != nil {
		t.Fatal(err)
	}
	if got := readPageOrFatal(t, mem, id); got[0] != 'a' {
		t.Fatalf("write did not pass through: %q", got[0])
	}
}

func TestWALCommitAppliesBatch(t *testing.T) {
	w, mem, log := newMemWAL(t)
	base, _ := w.Allocate()
	if err := w.WritePage(base, pageBytes(128, 'a')); err != nil {
		t.Fatal(err)
	}

	if err := w.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := w.WritePage(base, pageBytes(128, 'b')); err != nil {
		t.Fatal(err)
	}
	grown, err := w.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WritePage(grown, pageBytes(128, 'c')); err != nil {
		t.Fatal(err)
	}
	// Batch-local reads see the batch; the data pager does not.
	if got := readPageOrFatal(t, w, base); got[0] != 'b' {
		t.Fatalf("batch read = %q, want b", got[0])
	}
	if got := readPageOrFatal(t, mem, base); got[0] != 'a' {
		t.Fatalf("data pager leaked batch write: %q", got[0])
	}
	if mem.NumPages() != 1 {
		t.Fatalf("allocation leaked into data pager: %d pages", mem.NumPages())
	}
	if w.NumPages() != 2 {
		t.Fatalf("logical NumPages = %d, want 2", w.NumPages())
	}

	if err := w.Commit([]byte("meta-blob")); err != nil {
		t.Fatal(err)
	}
	if got := readPageOrFatal(t, mem, base); got[0] != 'b' {
		t.Fatalf("commit did not apply: %q", got[0])
	}
	if got := readPageOrFatal(t, mem, grown); got[0] != 'c' {
		t.Fatalf("commit did not materialize allocation: %q", got[0])
	}
	if sz, _ := log.Size(); sz != walHeaderSize {
		t.Fatalf("log not truncated after checkpoint: %d bytes", sz)
	}
}

func TestWALRollbackDiscards(t *testing.T) {
	w, mem, _ := newMemWAL(t)
	id, _ := w.Allocate()
	if err := w.WritePage(id, pageBytes(128, 'a')); err != nil {
		t.Fatal(err)
	}
	if err := w.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := w.WritePage(id, pageBytes(128, 'x')); err != nil {
		t.Fatal(err)
	}
	if err := w.Rollback(); err != nil {
		t.Fatal(err)
	}
	if !w.LastAbortDirty() {
		t.Fatal("rollback with writes should report dirty")
	}
	if got := readPageOrFatal(t, mem, id); got[0] != 'a' {
		t.Fatalf("rollback leaked: %q", got[0])
	}
	// A clean (write-free) rollback is not dirty.
	w.Begin()
	w.Rollback()
	if w.LastAbortDirty() {
		t.Fatal("write-free rollback should not be dirty")
	}
}

func TestWALNestedBatches(t *testing.T) {
	w, mem, _ := newMemWAL(t)
	id, _ := w.Allocate()
	w.Begin()
	w.Begin() // inner
	if err := w.WritePage(id, pageBytes(128, 'n')); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(nil); err != nil {
		t.Fatal(err) // inner commit: no effect yet
	}
	if got := readPageOrFatal(t, mem, id); got[0] == 'n' {
		t.Fatal("inner commit applied early")
	}
	if err := w.Commit(nil); err != nil {
		t.Fatal(err)
	}
	if got := readPageOrFatal(t, mem, id); got[0] != 'n' {
		t.Fatalf("outer commit did not apply: %q", got[0])
	}
}

func TestWALInnerRollbackPoisonsOuterCommit(t *testing.T) {
	w, mem, _ := newMemWAL(t)
	id, _ := w.Allocate()
	w.Begin()
	if err := w.WritePage(id, pageBytes(128, 'p')); err != nil {
		t.Fatal(err)
	}
	w.Begin()
	if err := w.Rollback(); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(nil); !errors.Is(err, ErrBatchAborted) {
		t.Fatalf("outer commit after inner rollback: %v, want ErrBatchAborted", err)
	}
	if got := readPageOrFatal(t, mem, id); got[0] == 'p' {
		t.Fatal("aborted batch leaked")
	}
}

// TestWALRecoveryRedo simulates a crash after the commit record became
// durable but before the data pages were written: recovery must redo the
// batch from the log.
func TestWALRecoveryRedo(t *testing.T) {
	mem := NewMemPager(128)
	log := NewMemFile()
	fp := NewFaultPager(mem)
	w, _, err := OpenWALPager(fp, log, nil)
	if err != nil {
		t.Fatal(err)
	}
	id, _ := w.Allocate()
	if err := w.WritePage(id, pageBytes(128, 'a')); err != nil {
		t.Fatal(err)
	}
	// Crash at the first data write of the apply phase (Arm resets the
	// counters, so the pre-batch write above is not counted).
	fp.Arm(Fault{Op: FaultWrite, N: 1})
	w.Begin()
	if err := w.WritePage(id, pageBytes(128, 'z')); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit([]byte("m")); !errors.Is(err, ErrInjected) {
		t.Fatalf("commit survived injected apply failure: %v", err)
	}
	if !w.LastAbortDirty() {
		t.Fatal("failed commit must report dirty")
	}

	// Reopen "the disk": same MemPager and MemFile, fresh handles.
	var sunk []byte
	w2, info, err := OpenWALPager(mem, log, func(m []byte) error {
		sunk = append([]byte(nil), m...)
		return nil
	})
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	if info.Redone != 1 {
		t.Fatalf("Redone = %d, want 1", info.Redone)
	}
	if !info.MetaApplied || !bytes.Equal(sunk, []byte("m")) {
		t.Fatalf("meta not redelivered: applied=%v sunk=%q", info.MetaApplied, sunk)
	}
	if got := readPageOrFatal(t, w2, id); got[0] != 'z' {
		t.Fatalf("redo lost the committed image: %q", got[0])
	}
}

// TestWALRecoveryDiscardsUncommitted simulates a crash before the commit
// record: the log holds a torn batch, the data pager the pre-state.
func TestWALRecoveryDiscardsUncommitted(t *testing.T) {
	mem := NewMemPager(128)
	log := NewMemFile()
	ff := NewFaultFile(log)
	w, _, err := OpenWALPager(mem, ff, nil)
	if err != nil {
		t.Fatal(err)
	}
	id, _ := w.Allocate()
	if err := w.WritePage(id, pageBytes(128, 'a')); err != nil {
		t.Fatal(err)
	}
	// Tear the page frame append (header=1, begin=2, page=3).
	ff.Arm(Fault{Op: FaultWrite, N: 3, Torn: true})
	w.Begin()
	if err := w.WritePage(id, pageBytes(128, 'z')); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(nil); !errors.Is(err, ErrInjected) {
		t.Fatalf("commit survived torn log: %v", err)
	}

	w2, info, err := OpenWALPager(mem, log, nil)
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	if info.Redone != 0 {
		t.Fatalf("redid a batch that never committed")
	}
	if !info.Discarded {
		t.Fatal("torn tail not reported as discarded")
	}
	if got := readPageOrFatal(t, w2, id); got[0] != 'a' {
		t.Fatalf("pre-state lost: %q", got[0])
	}
}

// TestWALRecoveryEveryLogPrefix replays a crash at every byte length of the
// log produced by one committed batch: any prefix short of the commit
// record must recover to the pre-state, any prefix including it to the
// post-state. This is the torn-log exhaustiveness check.
func TestWALRecoveryEveryLogPrefix(t *testing.T) {
	// First, produce a full pre-truncation log image by crashing just
	// before the apply phase (data write #1).
	build := func() (*MemPager, []byte, int) {
		mem := NewMemPager(128)
		log := NewMemFile()
		fp := NewFaultPager(mem)
		w, _, err := OpenWALPager(fp, log, nil)
		if err != nil {
			t.Fatal(err)
		}
		a, _ := w.Allocate()
		b, _ := w.Allocate()
		w.WritePage(a, pageBytes(128, 'a'))
		w.WritePage(b, pageBytes(128, 'b'))
		fp.Arm(Fault{Op: FaultWrite, N: 1})
		w.Begin()
		w.WritePage(a, pageBytes(128, 'A'))
		w.WritePage(b, pageBytes(128, 'B'))
		if err := w.Commit(nil); !errors.Is(err, ErrInjected) {
			t.Fatalf("commit: %v", err)
		}
		full := log.Bytes()
		// Commit-record boundary: everything except the trailing
		// commit record (17+4 bytes) is "before commit".
		return mem, full, len(full) - (17 + 4)
	}

	_, full, commitStart := build()
	for cut := 0; cut <= len(full); cut++ {
		mem, fullNow, _ := build()
		log := NewMemFile()
		log.SetBytes(fullNow[:cut])
		w, _, err := OpenWALPager(mem, log, nil)
		if err != nil {
			t.Fatalf("cut %d: recovery failed: %v", cut, err)
		}
		pa := readPageOrFatal(t, w, 0)[0]
		pb := readPageOrFatal(t, w, 1)[0]
		wantPre := cut < commitStart+17+4
		switch {
		case wantPre && (pa != 'a' || pb != 'b'):
			t.Fatalf("cut %d: want pre-state, got %c%c", cut, pa, pb)
		case !wantPre && (pa != 'A' || pb != 'B'):
			t.Fatalf("cut %d: want post-state, got %c%c", cut, pa, pb)
		}
		if sz, _ := log.Size(); sz != walHeaderSize {
			t.Fatalf("cut %d: log not reset (size %d)", cut, sz)
		}
	}
}

// TestWALRecoveryCorruptedCommitCRC flips a byte inside the commit record:
// the batch must be discarded, not half-applied.
func TestWALRecoveryCorruptedCommitCRC(t *testing.T) {
	mem := NewMemPager(128)
	log := NewMemFile()
	fp := NewFaultPager(mem)
	w, _, err := OpenWALPager(fp, log, nil)
	if err != nil {
		t.Fatal(err)
	}
	id, _ := w.Allocate()
	w.WritePage(id, pageBytes(128, 'a'))
	fp.Arm(Fault{Op: FaultWrite, N: 1})
	w.Begin()
	w.WritePage(id, pageBytes(128, 'z'))
	if err := w.Commit(nil); !errors.Is(err, ErrInjected) {
		t.Fatalf("commit: %v", err)
	}
	img := log.Bytes()
	img[len(img)-6] ^= 0xff // inside the commit record payload/CRC
	log.SetBytes(img)
	w2, info, err := OpenWALPager(mem, log, nil)
	if err != nil {
		t.Fatal(err)
	}
	if info.Redone != 0 {
		t.Fatal("redid a batch with a corrupt commit record")
	}
	if got := readPageOrFatal(t, w2, id); got[0] != 'a' {
		t.Fatalf("pre-state lost: %q", got[0])
	}
}

// TestWALFilePair runs the commit + recovery protocol over real files.
func TestWALFilePair(t *testing.T) {
	dir := t.TempDir()
	dataPath := filepath.Join(dir, "pages.db")
	walPath := filepath.Join(dir, "wal.log")

	open := func() (*WALPager, func()) {
		fp, err := OpenFilePager(dataPath, 256)
		if err != nil {
			t.Fatal(err)
		}
		lf, err := OpenOSFile(walPath)
		if err != nil {
			t.Fatal(err)
		}
		w, _, err := OpenWALPager(fp, lf, nil)
		if err != nil {
			t.Fatal(err)
		}
		return w, func() { w.Close() }
	}

	w, done := open()
	id, _ := w.Allocate()
	if err := w.WritePage(id, pageBytes(256, 'a')); err != nil {
		t.Fatal(err)
	}
	w.Begin()
	if err := w.WritePage(id, pageBytes(256, 'b')); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(nil); err != nil {
		t.Fatal(err)
	}
	done()

	w, done = open()
	defer done()
	if got := readPageOrFatal(t, w, id); got[0] != 'b' {
		t.Fatalf("reopened page = %q, want b", got[0])
	}
	info, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() != walHeaderSize {
		t.Fatalf("wal file size %d, want bare header %d", info.Size(), walHeaderSize)
	}
}

// TestFilePagerShortWriteContext checks that torn-write errors carry the
// page ID and byte offset.
func TestFilePagerShortWriteContext(t *testing.T) {
	dir := t.TempDir()
	p, err := OpenFilePager(filepath.Join(dir, "p.db"), 512)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if _, err := p.Allocate(); err != nil {
		t.Fatal(err)
	}
	err = p.WritePage(7, make([]byte, 512))
	if err == nil {
		t.Fatal("out-of-range write succeeded")
	}
	if want := "write 7 of 1"; !errors.Is(err, ErrPageOutOfRange) || !contains(err.Error(), want) {
		t.Fatalf("error %q lacks context %q", err, want)
	}
}

func contains(s, sub string) bool { return bytes.Contains([]byte(s), []byte(sub)) }
