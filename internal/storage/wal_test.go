package storage

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// pageBytes builds a page-sized buffer whose first bytes spell out a marker.
func pageBytes(size int, marker byte) []byte {
	b := make([]byte, size)
	for i := 0; i < 8; i++ {
		b[i] = marker
	}
	return b
}

func readPageOrFatal(t *testing.T, p Pager, id PageID) []byte {
	t.Helper()
	buf := make([]byte, p.PageSize())
	if err := p.ReadPage(id, buf); err != nil {
		t.Fatalf("read page %d: %v", id, err)
	}
	return buf
}

func newMemWAL(t *testing.T) (*WALPager, *MemPager, *MemFile) {
	t.Helper()
	mem := NewMemPager(128)
	log := NewMemFile()
	w, _, err := OpenWALPager(mem, log, nil)
	if err != nil {
		t.Fatalf("open wal: %v", err)
	}
	return w, mem, log
}

func TestWALPassthroughOutsideBatch(t *testing.T) {
	w, mem, _ := newMemWAL(t)
	id, err := w.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WritePage(id, pageBytes(128, 'a')); err != nil {
		t.Fatal(err)
	}
	if got := readPageOrFatal(t, mem, id); got[0] != 'a' {
		t.Fatalf("write did not pass through: %q", got[0])
	}
}

func TestWALCommitAppliesBatch(t *testing.T) {
	w, mem, log := newMemWAL(t)
	base, _ := w.Allocate()
	if err := w.WritePage(base, pageBytes(128, 'a')); err != nil {
		t.Fatal(err)
	}

	if err := w.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := w.WritePage(base, pageBytes(128, 'b')); err != nil {
		t.Fatal(err)
	}
	grown, err := w.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WritePage(grown, pageBytes(128, 'c')); err != nil {
		t.Fatal(err)
	}
	// Batch-local reads see the batch; the data pager does not.
	if got := readPageOrFatal(t, w, base); got[0] != 'b' {
		t.Fatalf("batch read = %q, want b", got[0])
	}
	if got := readPageOrFatal(t, mem, base); got[0] != 'a' {
		t.Fatalf("data pager leaked batch write: %q", got[0])
	}
	if mem.NumPages() != 1 {
		t.Fatalf("allocation leaked into data pager: %d pages", mem.NumPages())
	}
	if w.NumPages() != 2 {
		t.Fatalf("logical NumPages = %d, want 2", w.NumPages())
	}

	if err := w.Commit([]byte("meta-blob")); err != nil {
		t.Fatal(err)
	}
	if got := readPageOrFatal(t, mem, base); got[0] != 'b' {
		t.Fatalf("commit did not apply: %q", got[0])
	}
	if got := readPageOrFatal(t, mem, grown); got[0] != 'c' {
		t.Fatalf("commit did not materialize allocation: %q", got[0])
	}
	if sz, _ := log.Size(); sz != walHeaderSize {
		t.Fatalf("log not truncated after checkpoint: %d bytes", sz)
	}
}

func TestWALRollbackDiscards(t *testing.T) {
	w, mem, _ := newMemWAL(t)
	id, _ := w.Allocate()
	if err := w.WritePage(id, pageBytes(128, 'a')); err != nil {
		t.Fatal(err)
	}
	if err := w.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := w.WritePage(id, pageBytes(128, 'x')); err != nil {
		t.Fatal(err)
	}
	if err := w.Rollback(); err != nil {
		t.Fatal(err)
	}
	if !w.LastAbortDirty() {
		t.Fatal("rollback with writes should report dirty")
	}
	if got := readPageOrFatal(t, mem, id); got[0] != 'a' {
		t.Fatalf("rollback leaked: %q", got[0])
	}
	// A clean (write-free) rollback is not dirty.
	w.Begin()
	w.Rollback()
	if w.LastAbortDirty() {
		t.Fatal("write-free rollback should not be dirty")
	}
}

func TestWALNestedBatches(t *testing.T) {
	w, mem, _ := newMemWAL(t)
	id, _ := w.Allocate()
	w.Begin()
	w.Begin() // inner
	if err := w.WritePage(id, pageBytes(128, 'n')); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(nil); err != nil {
		t.Fatal(err) // inner commit: no effect yet
	}
	if got := readPageOrFatal(t, mem, id); got[0] == 'n' {
		t.Fatal("inner commit applied early")
	}
	if err := w.Commit(nil); err != nil {
		t.Fatal(err)
	}
	if got := readPageOrFatal(t, mem, id); got[0] != 'n' {
		t.Fatalf("outer commit did not apply: %q", got[0])
	}
}

func TestWALInnerRollbackPoisonsOuterCommit(t *testing.T) {
	w, mem, _ := newMemWAL(t)
	id, _ := w.Allocate()
	w.Begin()
	if err := w.WritePage(id, pageBytes(128, 'p')); err != nil {
		t.Fatal(err)
	}
	w.Begin()
	if err := w.Rollback(); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(nil); !errors.Is(err, ErrBatchAborted) {
		t.Fatalf("outer commit after inner rollback: %v, want ErrBatchAborted", err)
	}
	if got := readPageOrFatal(t, mem, id); got[0] == 'p' {
		t.Fatal("aborted batch leaked")
	}
}

// TestWALRecoveryRedo simulates a crash after the commit record became
// durable but before the data pages were written: recovery must redo the
// batch from the log.
func TestWALRecoveryRedo(t *testing.T) {
	mem := NewMemPager(128)
	log := NewMemFile()
	fp := NewFaultPager(mem)
	w, _, err := OpenWALPager(fp, log, nil)
	if err != nil {
		t.Fatal(err)
	}
	id, _ := w.Allocate()
	if err := w.WritePage(id, pageBytes(128, 'a')); err != nil {
		t.Fatal(err)
	}
	// Crash at the first data write of the apply phase (Arm resets the
	// counters, so the pre-batch write above is not counted).
	fp.Arm(Fault{Op: FaultWrite, N: 1})
	w.Begin()
	if err := w.WritePage(id, pageBytes(128, 'z')); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit([]byte("m")); !errors.Is(err, ErrInjected) {
		t.Fatalf("commit survived injected apply failure: %v", err)
	}
	if !w.LastAbortDirty() {
		t.Fatal("failed commit must report dirty")
	}

	// Reopen "the disk": same MemPager and MemFile, fresh handles.
	var sunk []byte
	w2, info, err := OpenWALPager(mem, log, func(m []byte) error {
		sunk = append([]byte(nil), m...)
		return nil
	})
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	if info.Redone != 1 {
		t.Fatalf("Redone = %d, want 1", info.Redone)
	}
	if !info.MetaApplied || !bytes.Equal(sunk, []byte("m")) {
		t.Fatalf("meta not redelivered: applied=%v sunk=%q", info.MetaApplied, sunk)
	}
	if got := readPageOrFatal(t, w2, id); got[0] != 'z' {
		t.Fatalf("redo lost the committed image: %q", got[0])
	}
}

// TestWALRecoveryDiscardsUncommitted simulates a crash before the commit
// record: the log holds a torn batch, the data pager the pre-state.
func TestWALRecoveryDiscardsUncommitted(t *testing.T) {
	mem := NewMemPager(128)
	log := NewMemFile()
	ff := NewFaultFile(log)
	w, _, err := OpenWALPager(mem, ff, nil)
	if err != nil {
		t.Fatal(err)
	}
	id, _ := w.Allocate()
	if err := w.WritePage(id, pageBytes(128, 'a')); err != nil {
		t.Fatal(err)
	}
	// Tear the page frame append (header=1, begin=2, page=3).
	ff.Arm(Fault{Op: FaultWrite, N: 3, Torn: true})
	w.Begin()
	if err := w.WritePage(id, pageBytes(128, 'z')); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(nil); !errors.Is(err, ErrInjected) {
		t.Fatalf("commit survived torn log: %v", err)
	}

	w2, info, err := OpenWALPager(mem, log, nil)
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	if info.Redone != 0 {
		t.Fatalf("redid a batch that never committed")
	}
	if !info.Discarded {
		t.Fatal("torn tail not reported as discarded")
	}
	if got := readPageOrFatal(t, w2, id); got[0] != 'a' {
		t.Fatalf("pre-state lost: %q", got[0])
	}
}

// TestWALRecoveryEveryLogPrefix replays a crash at every byte length of the
// log produced by one committed batch: any prefix short of the commit
// record must recover to the pre-state, any prefix including it to the
// post-state. This is the torn-log exhaustiveness check.
func TestWALRecoveryEveryLogPrefix(t *testing.T) {
	// First, produce a full pre-truncation log image by crashing just
	// before the apply phase (data write #1).
	build := func() (*MemPager, []byte, int) {
		mem := NewMemPager(128)
		log := NewMemFile()
		fp := NewFaultPager(mem)
		w, _, err := OpenWALPager(fp, log, nil)
		if err != nil {
			t.Fatal(err)
		}
		a, _ := w.Allocate()
		b, _ := w.Allocate()
		w.WritePage(a, pageBytes(128, 'a'))
		w.WritePage(b, pageBytes(128, 'b'))
		fp.Arm(Fault{Op: FaultWrite, N: 1})
		w.Begin()
		w.WritePage(a, pageBytes(128, 'A'))
		w.WritePage(b, pageBytes(128, 'B'))
		if err := w.Commit(nil); !errors.Is(err, ErrInjected) {
			t.Fatalf("commit: %v", err)
		}
		full := log.Bytes()
		// Commit-record boundary: everything except the trailing
		// commit record (17+4 bytes) is "before commit".
		return mem, full, len(full) - (17 + 4)
	}

	_, full, commitStart := build()
	for cut := 0; cut <= len(full); cut++ {
		mem, fullNow, _ := build()
		log := NewMemFile()
		log.SetBytes(fullNow[:cut])
		w, _, err := OpenWALPager(mem, log, nil)
		if err != nil {
			t.Fatalf("cut %d: recovery failed: %v", cut, err)
		}
		pa := readPageOrFatal(t, w, 0)[0]
		pb := readPageOrFatal(t, w, 1)[0]
		wantPre := cut < commitStart+17+4
		switch {
		case wantPre && (pa != 'a' || pb != 'b'):
			t.Fatalf("cut %d: want pre-state, got %c%c", cut, pa, pb)
		case !wantPre && (pa != 'A' || pb != 'B'):
			t.Fatalf("cut %d: want post-state, got %c%c", cut, pa, pb)
		}
		if sz, _ := log.Size(); sz != walHeaderSize {
			t.Fatalf("cut %d: log not reset (size %d)", cut, sz)
		}
	}
}

// TestWALRecoveryCorruptedCommitCRC flips a byte inside the commit record:
// the batch must be discarded, not half-applied.
func TestWALRecoveryCorruptedCommitCRC(t *testing.T) {
	mem := NewMemPager(128)
	log := NewMemFile()
	fp := NewFaultPager(mem)
	w, _, err := OpenWALPager(fp, log, nil)
	if err != nil {
		t.Fatal(err)
	}
	id, _ := w.Allocate()
	w.WritePage(id, pageBytes(128, 'a'))
	fp.Arm(Fault{Op: FaultWrite, N: 1})
	w.Begin()
	w.WritePage(id, pageBytes(128, 'z'))
	if err := w.Commit(nil); !errors.Is(err, ErrInjected) {
		t.Fatalf("commit: %v", err)
	}
	img := log.Bytes()
	img[len(img)-6] ^= 0xff // inside the commit record payload/CRC
	log.SetBytes(img)
	w2, info, err := OpenWALPager(mem, log, nil)
	if err != nil {
		t.Fatal(err)
	}
	if info.Redone != 0 {
		t.Fatal("redid a batch with a corrupt commit record")
	}
	if got := readPageOrFatal(t, w2, id); got[0] != 'a' {
		t.Fatalf("pre-state lost: %q", got[0])
	}
}

// TestWALFilePair runs the commit + recovery protocol over real files.
func TestWALFilePair(t *testing.T) {
	dir := t.TempDir()
	dataPath := filepath.Join(dir, "pages.db")
	walPath := filepath.Join(dir, "wal.log")

	open := func() (*WALPager, func()) {
		fp, err := OpenFilePager(dataPath, 256)
		if err != nil {
			t.Fatal(err)
		}
		lf, err := OpenOSFile(walPath)
		if err != nil {
			t.Fatal(err)
		}
		w, _, err := OpenWALPager(fp, lf, nil)
		if err != nil {
			t.Fatal(err)
		}
		return w, func() { w.Close() }
	}

	w, done := open()
	id, _ := w.Allocate()
	if err := w.WritePage(id, pageBytes(256, 'a')); err != nil {
		t.Fatal(err)
	}
	w.Begin()
	if err := w.WritePage(id, pageBytes(256, 'b')); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(nil); err != nil {
		t.Fatal(err)
	}
	done()

	w, done = open()
	defer done()
	if got := readPageOrFatal(t, w, id); got[0] != 'b' {
		t.Fatalf("reopened page = %q, want b", got[0])
	}
	info, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() != walHeaderSize {
		t.Fatalf("wal file size %d, want bare header %d", info.Size(), walHeaderSize)
	}
}

// TestFilePagerShortWriteContext checks that torn-write errors carry the
// page ID and byte offset.
func TestFilePagerShortWriteContext(t *testing.T) {
	dir := t.TempDir()
	p, err := OpenFilePager(filepath.Join(dir, "p.db"), 512)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if _, err := p.Allocate(); err != nil {
		t.Fatal(err)
	}
	err = p.WritePage(7, make([]byte, 512))
	if err == nil {
		t.Fatal("out-of-range write succeeded")
	}
	if want := "write 7 of 1"; !errors.Is(err, ErrPageOutOfRange) || !contains(err.Error(), want) {
		t.Fatalf("error %q lacks context %q", err, want)
	}
}

func contains(s, sub string) bool { return bytes.Contains([]byte(s), []byte(sub)) }

// TestWALMetaDeltaChain seals a group whose batches carry large, mostly-
// identical metadata blobs, crashes the flush after the log sync (the
// group's durability point), and checks that recovery reconstructs every
// batch's exact blob from the delta chain. It also asserts the chain was
// actually used: the journaled group must be far smaller than the sum of
// its blobs, and the log must hold exactly one full meta record.
func TestWALMetaDeltaChain(t *testing.T) {
	mem := NewMemPager(128)
	log := NewMemFile()
	fp := NewFaultPager(mem)
	ff := NewFaultFile(log)
	w, _, err := OpenWALPager(fp, ff, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Allocate(); err != nil {
		t.Fatal(err)
	}

	head := bytes.Repeat([]byte{'h'}, 4096)
	metas := [][]byte{
		append(append([]byte(nil), head...), []byte("-one")...),
		append(append([]byte(nil), head...), []byte("-two-longer")...),
		append(append([]byte(nil), head...), []byte("-3")...), // shrinks
	}
	w.HoldFlushes()
	for i, m := range metas {
		if err := w.Begin(); err != nil {
			t.Fatal(err)
		}
		if err := w.WritePage(0, pageBytes(128, byte('A'+i))); err != nil {
			t.Fatal(err)
		}
		if _, err := w.CommitAsync(m); err != nil {
			t.Fatal(err)
		}
	}
	// Crash at the data sync: the log holds the whole journaled group.
	fp.Arm(Fault{Op: FaultSync, N: 1})
	if err := w.ReleaseFlushes(); !errors.Is(err, ErrInjected) {
		t.Fatalf("ReleaseFlushes = %v, want injected fault", err)
	}

	raw := log.Bytes()
	var total int
	for _, m := range metas {
		total += len(m)
	}
	if len(raw) > total {
		t.Fatalf("log holds %d bytes, delta chain should keep it under the %d bytes of raw metas", len(raw), total)
	}
	full, delta := 0, 0
	for b := raw[walHeaderSize:]; len(b) > 0; {
		rec, rest, ok := nextRecord(b, 128)
		if !ok {
			t.Fatalf("unparseable record at tail of %d bytes", len(b))
		}
		switch rec[0] {
		case walRecMeta:
			full++
		case walRecMetaDelta:
			delta++
		}
		b = rest
	}
	if full != 1 || delta != 2 {
		t.Fatalf("log holds %d full + %d delta meta records, want 1 + 2", full, delta)
	}

	// Recovery must redo all three batches and hand the sink each batch's
	// exact blob, reconstructed through the chain.
	var delivered [][]byte
	sink := func(m []byte) error {
		delivered = append(delivered, append([]byte(nil), m...))
		return nil
	}
	w2, info, err := OpenWALPager(mem, log, sink)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if info.Redone != len(metas) {
		t.Fatalf("Redone = %d, want %d", info.Redone, len(metas))
	}
	if len(delivered) != len(metas) {
		t.Fatalf("sink got %d blobs, want %d", len(delivered), len(metas))
	}
	for i, m := range metas {
		if !bytes.Equal(delivered[i], m) {
			t.Fatalf("batch %d meta reconstructed wrong: %d bytes vs %d", i, len(delivered[i]), len(m))
		}
	}
	if got := readPageOrFatal(t, mem, 0); got[0] != 'C' {
		t.Fatalf("page 0 = %q after redo, want 'C'", got[0])
	}
}

// TestWALMetaDeltaWithoutBase feeds parseWAL a delta record with no meta
// record before it: the record region is malformed and must be treated as a
// torn tail, not reconstructed from garbage.
func TestWALMetaDeltaWithoutBase(t *testing.T) {
	var region []byte
	addRec := func(rec []byte) {
		var crc [4]byte
		binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(rec))
		region = append(region, rec...)
		region = append(region, crc[:]...)
	}
	addRec(encodeBegin(1, 0))
	addRec(encodeMetaDelta(10, []byte("suffix")))
	addRec(encodeCommit(1, 0, 0))
	batches, tail := parseWAL(region, 128)
	if !tail {
		t.Fatal("orphan delta accepted, want torn tail")
	}
	for _, b := range batches {
		if b.committed {
			t.Fatal("batch after orphan delta parsed as committed")
		}
	}
}

// TestWALLazyCheckpointDeferral pins the background flusher's deferred
// checkpoint: lazy flushes leave checkpointed batches in the log and hold
// the sidecar back (amortizing its fsyncs), the meta delta chain continues
// across those flushes, crash recovery redelivers the newest committed
// blob even though no batch needs redo, and both the size threshold and
// Close force the checkpoint eagerly.
func TestWALLazyCheckpointDeferral(t *testing.T) {
	mem := NewMemPager(128)
	log := NewMemFile()
	var delivered [][]byte
	sink := func(m []byte) error {
		delivered = append(delivered, append([]byte(nil), m...))
		return nil
	}
	w, _, err := OpenWALPager(mem, log, sink)
	if err != nil {
		t.Fatal(err)
	}
	id, _ := w.Allocate()
	if err := w.WritePage(id, pageBytes(128, 'a')); err != nil {
		t.Fatal(err)
	}

	head := bytes.Repeat([]byte{'H'}, 64)
	meta := func(tail string) []byte { return append(append([]byte(nil), head...), tail...) }
	lazyCommit := func(marker byte, m []byte) {
		t.Helper()
		if err := w.Begin(); err != nil {
			t.Fatal(err)
		}
		if err := w.WritePage(id, pageBytes(128, marker)); err != nil {
			t.Fatal(err)
		}
		cw, err := w.SealCommit(m)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.flushGroup(true); err != nil {
			t.Fatal(err)
		}
		if err := cw.Wait(); err != nil {
			t.Fatal(err)
		}
	}

	lazyCommit('b', meta("one"))
	sz1, _ := log.Size()
	if sz1 <= walHeaderSize {
		t.Fatalf("lazy flush truncated the log eagerly (size %d)", sz1)
	}
	if len(delivered) != 0 {
		t.Fatalf("lazy flush delivered the sidecar eagerly: %d blobs", len(delivered))
	}
	if got := readPageOrFatal(t, mem, id); got[0] != 'b' {
		t.Fatalf("lazy flush did not apply: %q", got[0])
	}

	lazyCommit('c', meta("two!"))
	sz2, _ := log.Size()
	if sz2 <= sz1 {
		t.Fatalf("second lazy flush did not append to the retained log (%d -> %d)", sz1, sz2)
	}
	if len(delivered) != 0 {
		t.Fatalf("second lazy flush delivered the sidecar: %d blobs", len(delivered))
	}
	// The second flush's meta must delta-chain against the first flush's
	// record, which is still in the log: exactly one full blob overall.
	raw := log.Bytes()
	fulls, deltas := 0, 0
	for b := raw[walHeaderSize:]; len(b) > 0; {
		rec, rest, ok := nextRecord(b, 128)
		if !ok {
			t.Fatal("log scan hit a bad record")
		}
		switch rec[0] {
		case walRecMeta:
			fulls++
		case walRecMetaDelta:
			deltas++
		}
		b = rest
	}
	if fulls != 1 || deltas != 1 {
		t.Fatalf("meta records across lazy flushes = %d full + %d delta, want 1 + 1", fulls, deltas)
	}

	// Crash (no Close): recovery must redo nothing — both batches are
	// checkpointed — but still deliver the newest blob, whose deferred
	// sidecar write never happened.
	var recovered [][]byte
	w2, info, err := OpenWALPager(mem, log, func(m []byte) error {
		recovered = append(recovered, append([]byte(nil), m...))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if info.Redone != 0 {
		t.Fatalf("recovery redid %d checkpointed batches", info.Redone)
	}
	if !info.MetaApplied {
		t.Fatal("recovery did not report the redelivered metadata")
	}
	if len(recovered) != 1 || !bytes.Equal(recovered[0], meta("two!")) {
		t.Fatalf("recovery delivered %d blobs, want exactly the newest", len(recovered))
	}
	if sz, _ := log.Size(); sz != walHeaderSize {
		t.Fatalf("recovery left the log at %d bytes", sz)
	}

	// A lazy flush that pushes the log past walTruncateThreshold must
	// checkpoint inline: sidecar delivered, log reset.
	recovered = recovered[:0]
	big := append(meta("three"), bytes.Repeat([]byte{'x'}, walTruncateThreshold)...)
	if err := w2.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := w2.WritePage(id, pageBytes(128, 'd')); err != nil {
		t.Fatal(err)
	}
	cw, err := w2.SealCommit(big)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.flushGroup(true); err != nil {
		t.Fatal(err)
	}
	if err := cw.Wait(); err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 1 || !bytes.Equal(recovered[0], big) {
		t.Fatalf("threshold crossing delivered %d blobs", len(recovered))
	}
	if sz, _ := log.Size(); sz != walHeaderSize {
		t.Fatalf("threshold crossing left the log at %d bytes", sz)
	}

	// Close after one more deferred flush forces the final checkpoint.
	lazySecond := func() {
		if err := w2.Begin(); err != nil {
			t.Fatal(err)
		}
		if err := w2.WritePage(id, pageBytes(128, 'e')); err != nil {
			t.Fatal(err)
		}
		cw, err := w2.SealCommit(meta("four"))
		if err != nil {
			t.Fatal(err)
		}
		if err := w2.flushGroup(true); err != nil {
			t.Fatal(err)
		}
		if err := cw.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	lazySecond()
	if len(recovered) != 1 {
		t.Fatalf("deferred flush after threshold delivered early: %d blobs", len(recovered))
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 2 || !bytes.Equal(recovered[1], meta("four")) {
		t.Fatalf("Close delivered %d blobs, want the deferred one", len(recovered))
	}
	if sz, _ := log.Size(); sz != walHeaderSize {
		t.Fatalf("Close left the log at %d bytes", sz)
	}
}
