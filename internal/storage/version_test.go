package storage

import (
	"sync"
	"testing"
	"time"
)

func TestVersionTablePublishRetiresUnpinned(t *testing.T) {
	vt := NewVersionTable()
	if got := vt.LiveVersions(); got != 1 {
		t.Fatalf("fresh table: LiveVersions = %d, want 1", got)
	}
	v2 := vt.Publish([]PageID{7, 8})
	if v2.Seq() != 2 {
		t.Fatalf("Seq = %d, want 2", v2.Seq())
	}
	// No readers pinned version 1, so it retires at publish and the freed
	// pages become reusable immediately.
	if got := vt.LiveVersions(); got != 1 {
		t.Fatalf("after publish: LiveVersions = %d, want 1", got)
	}
	got := vt.Harvest()
	if len(got) != 2 || got[0] != 7 || got[1] != 8 {
		t.Fatalf("Harvest = %v, want [7 8]", got)
	}
	if vt.Harvest() != nil {
		t.Fatalf("second Harvest should be empty")
	}
}

func TestVersionTablePinDefersReuse(t *testing.T) {
	vt := NewVersionTable()
	v1 := vt.Pin()
	if v1.Seq() != 1 {
		t.Fatalf("pinned Seq = %d, want 1", v1.Seq())
	}
	vt.Publish([]PageID{3})
	if got := vt.LiveVersions(); got != 2 {
		t.Fatalf("LiveVersions with pinned reader = %d, want 2", got)
	}
	// Page 3 was freed by version 2's commit; version 1's reader may still
	// need it, so it must stay quarantined.
	if got := vt.Harvest(); got != nil {
		t.Fatalf("Harvest while v1 pinned = %v, want nil", got)
	}
	if vt.OldestPinnedAge(time.Now().Add(time.Second)) <= 0 {
		t.Fatalf("OldestPinnedAge should be positive while v1 pinned")
	}
	vt.CountUnpin(v1)
	if got := vt.LiveVersions(); got != 1 {
		t.Fatalf("after unpin: LiveVersions = %d, want 1", got)
	}
	if got := vt.Harvest(); len(got) != 1 || got[0] != 3 {
		t.Fatalf("Harvest after unpin = %v, want [3]", got)
	}
	if vt.OldestPinnedAge(time.Now()) != 0 {
		t.Fatalf("OldestPinnedAge should be 0 with only the current version live")
	}
	if vt.Pins() != 1 || vt.Unpins() != 1 {
		t.Fatalf("pins/unpins = %d/%d, want 1/1", vt.Pins(), vt.Unpins())
	}
}

func TestVersionTableQuarantineOrdering(t *testing.T) {
	vt := NewVersionTable()
	r1 := vt.Pin() // pins seq 1
	vt.Publish([]PageID{10})
	r2 := vt.Pin() // pins seq 2
	vt.Publish([]PageID{20})
	// minLive is 1: nothing reusable.
	if got := vt.Harvest(); got != nil {
		t.Fatalf("Harvest = %v, want nil", got)
	}
	vt.CountUnpin(r1)
	// minLive is now 2: page 10 (freed at seq 2) is safe, page 20 (freed at
	// seq 3) still waits on r2.
	if got := vt.Harvest(); len(got) != 1 || got[0] != 10 {
		t.Fatalf("Harvest after r1 unpin = %v, want [10]", got)
	}
	vt.CountUnpin(r2)
	if got := vt.Harvest(); len(got) != 1 || got[0] != 20 {
		t.Fatalf("Harvest after r2 unpin = %v, want [20]", got)
	}
	if got := vt.LiveVersions(); got != 1 {
		t.Fatalf("LiveVersions = %d, want 1", got)
	}
}

func TestVersionTryPinRetiredFails(t *testing.T) {
	vt := NewVersionTable()
	v1 := vt.Current()
	vt.Publish(nil) // retires v1 (no reader refs)
	if v1.TryPin() {
		t.Fatalf("TryPin on retired version should fail")
	}
	if vt.Current().TryPin() != true {
		t.Fatalf("TryPin on current version should succeed")
	}
}

func TestVersionTableConcurrentPinUnpin(t *testing.T) {
	vt := NewVersionTable()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				v := vt.Pin()
				_ = v.Seq()
				vt.CountUnpin(v)
			}
		}()
	}
	for i := 0; i < 200; i++ {
		vt.Publish([]PageID{PageID(i)})
		vt.Harvest()
	}
	close(stop)
	wg.Wait()
	if got := vt.LiveVersions(); got != 1 {
		t.Fatalf("LiveVersions after drain = %d, want 1", got)
	}
	if vt.Pins() != vt.Unpins() {
		t.Fatalf("pin/unpin mismatch: %d vs %d", vt.Pins(), vt.Unpins())
	}
	// Everything pending must eventually drain once all readers are gone.
	vt.Publish(nil)
	total := 0
	for _, got := range [][]PageID{vt.Harvest()} {
		total += len(got)
	}
	if vt.PendingPages() != 0 && total == 0 {
		t.Fatalf("pages stuck in quarantine with no live readers")
	}
}
