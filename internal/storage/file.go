package storage

import (
	"fmt"
	"io"
	"os"
	"sync"
)

// File is the minimal durable byte-stream abstraction the write-ahead log
// runs on: sequential appends, random reads, truncation, and an explicit
// durability barrier. *os.File satisfies it via OSFile; MemFile provides an
// in-memory implementation for tests, and FaultFile (fault.go) wraps either
// to inject crashes at chosen append or sync points.
type File interface {
	io.ReaderAt
	// Append writes p at the current end of the file. A short append must
	// return a non-nil error (torn appends are how log corruption enters
	// the recovery test matrix).
	Append(p []byte) (int, error)
	// Size returns the current length in bytes.
	Size() (int64, error)
	// Truncate shrinks (or extends with zeros) the file to size bytes.
	Truncate(size int64) error
	// Sync makes all preceding appends durable.
	Sync() error
	// Close releases the file.
	Close() error
}

// OSFile adapts *os.File to the File interface, tracking the append offset.
type OSFile struct {
	mu  sync.Mutex
	f   *os.File
	end int64
}

// OpenOSFile opens (creating if necessary) path for appending and random
// reads.
func OpenOSFile(path string) (*OSFile, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open %s: %w", path, err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: stat %s: %w", path, err)
	}
	return &OSFile{f: f, end: info.Size()}, nil
}

// ReadAt implements File.
func (o *OSFile) ReadAt(p []byte, off int64) (int, error) { return o.f.ReadAt(p, off) }

// Append implements File.
func (o *OSFile) Append(p []byte) (int, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	n, err := o.f.WriteAt(p, o.end)
	o.end += int64(n)
	if err != nil {
		return n, fmt.Errorf("storage: append %d bytes at offset %d: wrote %d: %w", len(p), o.end-int64(n), n, err)
	}
	return n, nil
}

// Size implements File.
func (o *OSFile) Size() (int64, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.end, nil
}

// Truncate implements File.
func (o *OSFile) Truncate(size int64) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if err := o.f.Truncate(size); err != nil {
		return err
	}
	o.end = size
	return nil
}

// Sync implements File.
func (o *OSFile) Sync() error { return o.f.Sync() }

// Close implements File.
func (o *OSFile) Close() error { return o.f.Close() }

// MemFile is an in-memory File. Its contents survive Close so crash tests
// can reopen "the disk" after abandoning a faulted handle.
type MemFile struct {
	mu   sync.Mutex
	data []byte
}

// NewMemFile returns an empty in-memory file.
func NewMemFile() *MemFile { return &MemFile{} }

// ReadAt implements File.
func (m *MemFile) ReadAt(p []byte, off int64) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if off >= int64(len(m.data)) {
		return 0, io.EOF
	}
	n := copy(p, m.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// Append implements File.
func (m *MemFile) Append(p []byte) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.data = append(m.data, p...)
	return len(p), nil
}

// Size implements File.
func (m *MemFile) Size() (int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return int64(len(m.data)), nil
}

// Truncate implements File.
func (m *MemFile) Truncate(size int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	switch {
	case size <= int64(len(m.data)):
		m.data = m.data[:size]
	default:
		m.data = append(m.data, make([]byte, size-int64(len(m.data)))...)
	}
	return nil
}

// Sync implements File (a no-op in memory).
func (m *MemFile) Sync() error { return nil }

// Close implements File. The contents remain readable through new handles
// (crash tests reuse the same MemFile after a simulated process death).
func (m *MemFile) Close() error { return nil }

// Bytes returns a copy of the file contents, for tests that snapshot or
// corrupt log state.
func (m *MemFile) Bytes() []byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]byte(nil), m.data...)
}

// SetBytes replaces the file contents, for tests that restore a snapshot.
func (m *MemFile) SetBytes(b []byte) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.data = append([]byte(nil), b...)
}
