package storage

import (
	"sync"
	"sync/atomic"
	"time"
)

// Version is one published, immutable state of a store. A version is born
// when a commit publishes it and stays live while anything holds a
// reference: the table itself keeps one reference on the current version,
// and every pinned reader holds one more. When the last reference drops,
// the version retires and any pages freed *after* it was published become
// eligible for reuse (no snapshot at or before that point can still read
// them).
type Version struct {
	vt   *VersionTable
	seq  uint64
	born time.Time
	refs atomic.Int64
}

// Seq returns the version's sequence number. Sequence numbers start at 1
// and increase by one per publish.
func (v *Version) Seq() uint64 { return v.seq }

// TryPin takes an additional reference on the version. It fails only when
// the version has already retired (its reference count reached zero),
// which can happen if a publish raced the caller's load of the current
// version; the caller should reload and retry.
func (v *Version) TryPin() bool {
	for {
		n := v.refs.Load()
		if n <= 0 {
			return false
		}
		if v.refs.CompareAndSwap(n, n+1) {
			return true
		}
	}
}

// Unpin drops one reference. When the count reaches zero the version
// retires: it leaves the live set and releases any deferred page frees
// that were waiting on it.
func (v *Version) Unpin() {
	if v.refs.Add(-1) == 0 {
		v.vt.retire(v)
	}
}

type pendingFree struct {
	seq  uint64 // version whose publish freed the page
	page PageID
}

// VersionTable tracks the live set of published versions and defers reuse
// of freed pages until no live version can still reference them. It is the
// MVCC backbone for shadow-paged stores: writers only ever write freshly
// allocated (or safely harvested) pages, so a page's content is immutable
// for as long as any pinned version references it, and the table's job
// reduces to deciding when "as long as" is over.
//
// Pages freed while building version N are tagged with N at publish time
// and become reusable once the minimum live sequence number is ≥ N: every
// remaining reader then sees a state in which the page is already free.
type VersionTable struct {
	mu       sync.Mutex
	cur      *Version
	live     map[uint64]*Version
	pending  []pendingFree
	reusable []PageID
	pins     atomic.Int64 // cumulative reader pins (monitoring)
	unpins   atomic.Int64 // cumulative reader unpins (monitoring)
}

// NewVersionTable returns a table with an initial current version (seq 1)
// holding the table's own reference.
func NewVersionTable() *VersionTable {
	vt := &VersionTable{live: make(map[uint64]*Version)}
	v := &Version{vt: vt, seq: 1, born: time.Now()}
	v.refs.Store(1)
	vt.cur = v
	vt.live[v.seq] = v
	return vt
}

// Current returns the current version without pinning it. Callers that
// need the version to stay valid must Pin instead.
func (vt *VersionTable) Current() *Version {
	vt.mu.Lock()
	defer vt.mu.Unlock()
	return vt.cur
}

// Pin takes a reference on the current version and returns it. The caller
// must Unpin when done. Pin never fails: while the table lock is held the
// current version always carries the table's own reference.
func (vt *VersionTable) Pin() *Version {
	vt.mu.Lock()
	v := vt.cur
	v.refs.Add(1)
	vt.mu.Unlock()
	vt.pins.Add(1)
	return v
}

// CountUnpin records a reader unpin for monitoring and drops the
// reference. Publisher-side reference drops go through Version.Unpin
// directly and are not counted as reader traffic.
func (vt *VersionTable) CountUnpin(v *Version) {
	vt.unpins.Add(1)
	v.Unpin()
}

// Publish registers the successor of the current version and returns it.
// The pages in freed were released by the commit being published; they
// stay quarantined until every version preceding the new one has retired.
// The new version starts with one reference (the table's), and the table's
// reference on the previous version is dropped — with no readers pinning
// it, the previous version retires immediately.
func (vt *VersionTable) Publish(freed []PageID) *Version {
	vt.mu.Lock()
	prev := vt.cur
	v := &Version{vt: vt, seq: prev.seq + 1, born: time.Now()}
	v.refs.Store(1)
	vt.cur = v
	vt.live[v.seq] = v
	for _, p := range freed {
		vt.pending = append(vt.pending, pendingFree{seq: v.seq, page: p})
	}
	vt.mu.Unlock()
	prev.Unpin()
	return v
}

// retire removes v from the live set and promotes any pending frees whose
// publishing version is now at or below the minimum live sequence.
func (vt *VersionTable) retire(v *Version) {
	vt.mu.Lock()
	defer vt.mu.Unlock()
	delete(vt.live, v.seq)
	minLive := ^uint64(0)
	for seq := range vt.live {
		if seq < minLive {
			minLive = seq
		}
	}
	kept := vt.pending[:0]
	for _, pf := range vt.pending {
		if pf.seq <= minLive {
			vt.reusable = append(vt.reusable, pf.page)
		} else {
			kept = append(kept, pf)
		}
	}
	vt.pending = kept
}

// Harvest returns every page whose quarantine has ended and removes them
// from the table. The caller owns the returned pages and may overwrite
// them.
func (vt *VersionTable) Harvest() []PageID {
	vt.mu.Lock()
	defer vt.mu.Unlock()
	if len(vt.reusable) == 0 {
		return nil
	}
	out := vt.reusable
	vt.reusable = nil
	return out
}

// LiveVersions returns the number of live (unretired) versions, including
// the current one. A quiescent store reports 1; anything higher means a
// reader still pins an older version.
func (vt *VersionTable) LiveVersions() int {
	vt.mu.Lock()
	defer vt.mu.Unlock()
	return len(vt.live)
}

// PendingPages returns the number of freed pages still quarantined behind
// a live version.
func (vt *VersionTable) PendingPages() int {
	vt.mu.Lock()
	defer vt.mu.Unlock()
	return len(vt.pending) + len(vt.reusable)
}

// OldestPinnedAge returns how long the oldest non-current live version has
// been alive, or zero when only the current version is live. It measures
// retirement lag induced by long-running readers.
func (vt *VersionTable) OldestPinnedAge(now time.Time) time.Duration {
	vt.mu.Lock()
	defer vt.mu.Unlock()
	var oldest *Version
	for _, v := range vt.live {
		if v == vt.cur {
			continue
		}
		if oldest == nil || v.seq < oldest.seq {
			oldest = v
		}
	}
	if oldest == nil {
		return 0
	}
	return now.Sub(oldest.born)
}

// Pins and Unpins return the cumulative reader pin/unpin counts.
func (vt *VersionTable) Pins() int64   { return vt.pins.Load() }
func (vt *VersionTable) Unpins() int64 { return vt.unpins.Load() }
