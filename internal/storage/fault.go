package storage

import (
	"errors"
	"fmt"
	"sync"
)

// ErrInjected is the root of every injected failure. Once a fault trips,
// the faulted component keeps failing: the wrapped handle behaves like the
// file descriptors of a crashed process, so tests exercise exactly the
// state a real crash leaves on disk.
var ErrInjected = errors.New("storage: injected fault")

// FaultOp names an operation class a fault can target.
type FaultOp int

// Fault targets.
const (
	// FaultWrite trips on the Nth page write (FaultPager) or log append
	// (FaultFile).
	FaultWrite FaultOp = iota
	// FaultSync trips on the Nth Sync call.
	FaultSync
)

// Fault describes one injected failure: the Nth occurrence (1-based) of Op
// fails. With Torn set, the failing write first applies only the first half
// of its payload — a torn page or log record — before the error surfaces.
type Fault struct {
	Op   FaultOp
	N    int
	Torn bool
}

// faultState is the shared trip logic of FaultPager and FaultFile.
type faultState struct {
	mu      sync.Mutex
	fault   Fault
	armed   bool
	writes  int
	syncs   int
	tripped bool
}

// arm installs the fault and resets counters.
func (fs *faultState) arm(f Fault) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.fault = f
	fs.armed = f.N > 0
	fs.writes = 0
	fs.syncs = 0
	fs.tripped = false
}

// op counts one occurrence of op and reports (torn, err): err non-nil when
// the component is dead or the fault fires now; torn additionally requests
// the half-write behavior from the caller before returning err.
func (fs *faultState) op(op FaultOp) (bool, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.tripped {
		return false, fmt.Errorf("%w (component dead after earlier fault)", ErrInjected)
	}
	var count int
	switch op {
	case FaultWrite:
		fs.writes++
		count = fs.writes
	case FaultSync:
		fs.syncs++
		count = fs.syncs
	}
	if fs.armed && fs.fault.Op == op && count == fs.fault.N {
		fs.tripped = true
		return fs.fault.Torn, fmt.Errorf("%w: %v #%d", ErrInjected, opName(fs.fault.Op), count)
	}
	return false, nil
}

// observe fails when the component is already dead (for reads and other
// non-targeted operations after the crash).
func (fs *faultState) observe() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.tripped {
		return fmt.Errorf("%w (component dead after earlier fault)", ErrInjected)
	}
	return nil
}

func (fs *faultState) counts() (writes, syncs int, tripped bool) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.writes, fs.syncs, fs.tripped
}

func opName(op FaultOp) string {
	switch op {
	case FaultWrite:
		return "write"
	case FaultSync:
		return "sync"
	}
	return "unknown"
}

// FaultPager wraps a Pager and fails a chosen page write or sync, optionally
// tearing the failing write across the page (first half new bytes, second
// half old). A clean pass with no fault armed counts operations, so the
// recovery matrix can enumerate every crash point of an update.
type FaultPager struct {
	inner Pager
	state faultState
}

// NewFaultPager wraps p with no fault armed (counting only).
func NewFaultPager(p Pager) *FaultPager { return &FaultPager{inner: p} }

// Arm installs the fault and resets the operation counters.
func (p *FaultPager) Arm(f Fault) { p.state.arm(f) }

// Counts reports the page writes and syncs observed since the last Arm (or
// construction), plus whether the fault has tripped.
func (p *FaultPager) Counts() (writes, syncs int, tripped bool) { return p.state.counts() }

// Inner returns the wrapped pager (the surviving "disk" after a crash).
func (p *FaultPager) Inner() Pager { return p.inner }

// PageSize implements Pager.
func (p *FaultPager) PageSize() int { return p.inner.PageSize() }

// NumPages implements Pager.
func (p *FaultPager) NumPages() int { return p.inner.NumPages() }

// Allocate implements Pager; an allocation is not a counted write (the
// zero-fill of a fresh page carries no information to tear).
func (p *FaultPager) Allocate() (PageID, error) {
	if err := p.state.observe(); err != nil {
		return InvalidPage, err
	}
	return p.inner.Allocate()
}

// ReadPage implements Pager.
func (p *FaultPager) ReadPage(id PageID, buf []byte) error {
	if err := p.state.observe(); err != nil {
		return err
	}
	return p.inner.ReadPage(id, buf)
}

// WritePage implements Pager.
func (p *FaultPager) WritePage(id PageID, buf []byte) error {
	torn, err := p.state.op(FaultWrite)
	if err == nil {
		return p.inner.WritePage(id, buf)
	}
	if torn {
		// A torn page: the first half of the sector run made it to disk,
		// the rest kept its previous contents.
		old := make([]byte, p.inner.PageSize())
		if rerr := p.inner.ReadPage(id, old); rerr == nil {
			copy(old[:len(old)/2], buf[:len(buf)/2])
			_ = p.inner.WritePage(id, old)
		}
	}
	return err
}

// Sync implements Pager.
func (p *FaultPager) Sync() error {
	if _, err := p.state.op(FaultSync); err != nil {
		return err
	}
	return p.inner.Sync()
}

// Close implements Pager. Closing a tripped pager does not flush anything;
// the inner pager keeps whatever reached it before the crash.
func (p *FaultPager) Close() error { return p.inner.Close() }

// Stats implements Pager.
func (p *FaultPager) Stats() IOStats { return p.inner.Stats() }

// FaultFile wraps a File (the WAL log) and fails a chosen append or sync,
// optionally tearing the failing append in half.
type FaultFile struct {
	inner File
	state faultState
}

// NewFaultFile wraps f with no fault armed (counting only).
func NewFaultFile(f File) *FaultFile { return &FaultFile{inner: f} }

// Arm installs the fault and resets the operation counters.
func (f *FaultFile) Arm(fault Fault) { f.state.arm(fault) }

// Counts reports the appends and syncs observed since the last Arm, plus
// whether the fault has tripped.
func (f *FaultFile) Counts() (appends, syncs int, tripped bool) { return f.state.counts() }

// Inner returns the wrapped file.
func (f *FaultFile) Inner() File { return f.inner }

// ReadAt implements File.
func (f *FaultFile) ReadAt(p []byte, off int64) (int, error) {
	if err := f.state.observe(); err != nil {
		return 0, err
	}
	return f.inner.ReadAt(p, off)
}

// Append implements File.
func (f *FaultFile) Append(p []byte) (int, error) {
	torn, err := f.state.op(FaultWrite)
	if err == nil {
		return f.inner.Append(p)
	}
	if torn && len(p) > 0 {
		n, _ := f.inner.Append(p[:(len(p)+1)/2])
		return n, err
	}
	return 0, err
}

// Size implements File.
func (f *FaultFile) Size() (int64, error) {
	if err := f.state.observe(); err != nil {
		return 0, err
	}
	return f.inner.Size()
}

// Truncate implements File.
func (f *FaultFile) Truncate(size int64) error {
	if err := f.state.observe(); err != nil {
		return err
	}
	return f.inner.Truncate(size)
}

// Sync implements File.
func (f *FaultFile) Sync() error {
	if _, err := f.state.op(FaultSync); err != nil {
		return err
	}
	return f.inner.Sync()
}

// Close implements File.
func (f *FaultFile) Close() error { return f.inner.Close() }
