package storage

import (
	"sync"
	"testing"
)

func poolWithPages(t *testing.T, capacity, pages int) (*BufferPool, []PageID) {
	t.Helper()
	bp := NewBufferPool(NewMemPager(64), capacity)
	ids := make([]PageID, pages)
	for i := range ids {
		f, err := bp.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = f.ID()
		f.Data[0] = byte(i)
		if err := bp.Unpin(f.ID(), true); err != nil {
			t.Fatal(err)
		}
	}
	return bp, ids
}

func TestSetCapacityShrinkEvictsAndWritesBack(t *testing.T) {
	bp, ids := poolWithPages(t, 16, 8)
	if bp.Buffered() != 8 {
		t.Fatalf("Buffered = %d, want 8", bp.Buffered())
	}
	if err := bp.SetCapacity(3); err != nil {
		t.Fatal(err)
	}
	if got := bp.Buffered(); got != 3 {
		t.Fatalf("Buffered after shrink = %d, want 3", got)
	}
	if got := bp.Capacity(); got != 3 {
		t.Fatalf("Capacity = %d, want 3", got)
	}
	// Evicted dirty pages were written back: rereading returns the data.
	for i, id := range ids {
		f, err := bp.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if f.Data[0] != byte(i) {
			t.Fatalf("page %d lost its write on shrink eviction", id)
		}
		if err := bp.Unpin(id, false); err != nil {
			t.Fatal(err)
		}
	}
	if got := bp.Buffered(); got > 3 {
		t.Fatalf("rereads grew the pool to %d frames over capacity 3", got)
	}
}

func TestSetCapacityGrow(t *testing.T) {
	bp, ids := poolWithPages(t, 2, 2)
	if err := bp.SetCapacity(8); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		f, err := bp.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		defer bp.Unpin(f.ID(), false)
	}
	if bp.Buffered() != 2 {
		t.Fatalf("Buffered = %d", bp.Buffered())
	}
}

// TestSetCapacityBelowPins pins more frames than the new capacity: the
// shrink must stop at the pinned set (not error, not reclaim pinned data)
// and later admissions complete the shrink as pins release.
func TestSetCapacityBelowPins(t *testing.T) {
	bp, ids := poolWithPages(t, 8, 4)
	for _, id := range ids[:3] {
		if _, err := bp.Get(id); err != nil {
			t.Fatal(err)
		}
	}
	if err := bp.SetCapacity(2); err != nil {
		t.Fatal(err)
	}
	if got := bp.Buffered(); got != 3 {
		t.Fatalf("Buffered = %d, want the 3 pinned frames", got)
	}
	for _, id := range ids[:3] {
		if err := bp.Unpin(id, false); err != nil {
			t.Fatal(err)
		}
	}
	// Next admission loop-evicts down to capacity.
	f, err := bp.Get(ids[3])
	if err != nil {
		t.Fatal(err)
	}
	if err := bp.Unpin(f.ID(), false); err != nil {
		t.Fatal(err)
	}
	if got := bp.Buffered(); got > 2 {
		t.Fatalf("Buffered = %d after release + admission, want <= 2", got)
	}
}

// TestSetCapacityConcurrent rebudgets while readers hammer the pool; run
// under -race this is the registry's shared-budget interleaving in
// miniature. Invariant: occupancy never exceeds the largest capacity in
// play once the dust settles.
func TestSetCapacityConcurrent(t *testing.T) {
	bp, ids := poolWithPages(t, 8, 8)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				id := ids[(i+w)%len(ids)]
				f, err := bp.Get(id)
				if err != nil {
					t.Error(err)
					return
				}
				_ = f.Data[0]
				if err := bp.Unpin(id, false); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	for i := 0; i < 200; i++ {
		if err := bp.SetCapacity(1 + i%8); err != nil {
			t.Error(err)
			break
		}
	}
	close(stop)
	wg.Wait()
	if err := bp.SetCapacity(4); err != nil {
		t.Fatal(err)
	}
	if got := bp.Buffered(); got > 4 {
		t.Fatalf("Buffered = %d with capacity 4 and no pins", got)
	}
}
