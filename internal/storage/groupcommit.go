package storage

import (
	"errors"
	"fmt"
	"time"
)

// Group commit. Sealing a batch (sealForCommit in wal.go) is cheap — it
// moves the buffered after-images onto the flush queue under w.mu and
// never touches a file. The expensive part, the flush protocol, drains the
// WHOLE queue in one pass: every queued batch is appended to the log back
// to back, the log is fsynced once, the merged images are applied to the
// data pager and fsynced once, and a single checkpoint covering the whole
// group is appended and fsynced once. N committers therefore share ~3
// fsyncs instead of paying 3 each — the classic group-commit bargain, and
// the entire 40–100× WAL write-path gap is fsync-bound.
//
// Three durability modes build on the same seal+flush core:
//
//   - Commit (sync): the committer seals, then runs the flush itself.
//     With no concurrency this is byte-for-byte the old protocol; with
//     concurrency the inline flush still drains whatever the queue holds,
//     so sync committers coalesce too.
//   - CommitGrouped: seal, kick the flusher goroutine, wait. The caller's
//     locks can be released between seal and wait, which is how
//     securexml.Store lets readers run during the flush.
//   - CommitAsync: seal, kick, return a CommitWaiter immediately. The
//     batch is visible to reads at once (the queue is a read overlay) and
//     durable when the waiter resolves.
//
// Failure latches: if a flush fails mid-protocol the log's tail state is
// unknown, so the pager marks itself broken, resolves every queued waiter
// with the error, and refuses further commits. Reopening the store runs
// recovery, which keeps the committed prefix of the interrupted group and
// discards the rest.
//
// Lock ordering: flushMu is acquired before w.mu and never the other way;
// w.mu is never held across an I/O call on the log or the data pager.

// errWALBroken marks commits refused because an earlier flush failure left
// the log in an unknown state; the store must be reopened to recover.
var errWALBroken = errors.New("storage: wal broken by earlier flush failure")

// sealedBatch is a committed-but-not-yet-durable batch on the flush queue.
// Its images serve double duty: flush input, and read overlay for pages
// the data pager does not have yet.
type sealedBatch struct {
	seq    uint64
	final  int // logical page count after this batch
	order  []PageID
	images map[PageID][]byte
	meta   []byte
	sealed time.Time
	done   chan struct{}
	err    error
}

func newSealedBatch(seq uint64, final int, order []PageID, images map[PageID][]byte, meta []byte) *sealedBatch {
	return &sealedBatch{
		seq:    seq,
		final:  final,
		order:  order,
		images: images,
		meta:   meta,
		sealed: time.Now(),
		done:   make(chan struct{}),
	}
}

// resolve publishes the batch's outcome exactly once; later calls are
// ignored (a batch can race between an inline flush and Close's drain).
func (b *sealedBatch) resolve(err error) {
	select {
	case <-b.done:
		return
	default:
	}
	b.err = err
	close(b.done)
}

func (b *sealedBatch) resolved() bool {
	select {
	case <-b.done:
		return true
	default:
		return false
	}
}

// CommitWaiter is the durability handle returned by CommitAsync: it
// resolves when the batch's group flush completes (or fails). The batch's
// effects are already visible to reads when CommitAsync returns; the
// waiter only reports durability.
type CommitWaiter struct {
	b *sealedBatch
}

// Done returns a channel closed when the batch is durable or failed.
func (cw *CommitWaiter) Done() <-chan struct{} { return cw.b.done }

// Err returns the batch's outcome. Valid only after Done is closed.
func (cw *CommitWaiter) Err() error { return cw.b.err }

// Wait blocks until the batch is durable and returns its outcome.
func (cw *CommitWaiter) Wait() error {
	<-cw.b.done
	return cw.b.err
}

// resolvedWaiter is returned for commits with nothing to flush (empty
// batches, or nested commits folded into their parent — already covered by
// the parent's waiter).
func resolvedWaiter() *CommitWaiter {
	b := &sealedBatch{done: make(chan struct{})}
	close(b.done)
	return &CommitWaiter{b: b}
}

// SealCommit seals the outermost batch onto the flush queue and returns
// its durability waiter WITHOUT scheduling a flush — the two-phase form
// behind every durability mode. The caller typically seals under its own
// exclusive lock (cheap, no I/O), releases it, and then either flushes
// inline (Flush), kicks the background flusher (ScheduleFlush), or leaves
// the flush to a later committer, barrier, or Close. Nested calls merge
// metadata like Commit and return an already-resolved waiter.
func (w *WALPager) SealCommit(meta []byte) (*CommitWaiter, error) {
	b, err := w.sealForCommit(meta)
	if err != nil {
		return nil, err
	}
	if b == nil {
		return resolvedWaiter(), nil
	}
	return &CommitWaiter{b: b}, nil
}

// Flush runs one group flush inline on the calling goroutine, draining
// whatever the queue holds. Its return is the authoritative outcome of the
// whole protocol: waiters resolve as soon as the log sync makes the group
// durable, so a failure in the apply/checkpoint tail (which poisons the
// pager) is visible here but not through already-resolved waiters.
//
// Inline flushes checkpoint eagerly — sidecar delivered, log truncated —
// keeping the synchronous durability mode byte-for-byte the deterministic
// single-writer protocol the recovery fault matrix enumerates. Only the
// background flusher defers the checkpoint (see flushProtocol).
func (w *WALPager) Flush() error { return w.flushGroup(false) }

// ScheduleFlush starts the background flusher if needed and kicks it. The
// flush happens on the flusher goroutine; callers learn the outcome from
// their CommitWaiter.
func (w *WALPager) ScheduleFlush() {
	w.ensureFlusher()
	w.kickFlusher()
}

// CommitAsync implements the asynchronous arm of TxnPager's Commit: the
// outermost call seals the batch onto the flush queue, schedules a
// background flush, and returns a CommitWaiter that resolves when the
// flush makes the batch durable.
func (w *WALPager) CommitAsync(meta []byte) (*CommitWaiter, error) {
	cw, err := w.SealCommit(meta)
	if err != nil {
		return nil, err
	}
	w.ScheduleFlush()
	return cw, nil
}

// CommitGrouped seals the batch and blocks until the shared flusher's next
// flush covers it. Unlike Commit, the flush runs on the flusher goroutine;
// callers wanting to release their own locks between sealing and waiting
// should use CommitAsync and Wait separately (securexml does).
func (w *WALPager) CommitGrouped(meta []byte) error {
	cw, err := w.CommitAsync(meta)
	if err != nil {
		return err
	}
	return cw.Wait()
}

// ensureFlusher lazily starts the flusher goroutine. Stores that only ever
// use synchronous Commit never start it, keeping their I/O single-threaded
// and deterministic (the recovery fault matrix depends on that).
func (w *WALPager) ensureFlusher() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.flusherOn {
		return
	}
	w.flusherOn = true
	w.wg.Add(1)
	go w.flusherLoop()
}

// kickFlusher nudges the flusher; the buffered channel coalesces kicks.
func (w *WALPager) kickFlusher() {
	select {
	case w.kick <- struct{}{}:
	default:
	}
}

func (w *WALPager) flusherLoop() {
	defer w.wg.Done()
	for {
		select {
		case <-w.stop:
			return
		case <-w.kick:
			w.gatherWindow()
			// Errors are latched in w.broken and delivered to every
			// waiter; nothing to do with them here. Background flushes
			// are lazy: they defer sidecar delivery and log truncation
			// until the log crosses walTruncateThreshold.
			w.flushGroup(true)
		}
	}
}

// gatherWindow briefly lets a group form before the background flusher
// flushes. When a flush completes, its waiters wake and re-seal staggered
// (sealing serializes on the store's write lock, so arrivals are spaced by
// a whole seal, several hundred microseconds); flushing the instant the
// first of them kicks would produce singleton groups and per-update fsync
// behavior all over again. The window extends in 400µs steps — longer than
// one seal, so a re-sealing wave registers as growth — only while the
// queue keeps growing, and is bounded by a WALL-CLOCK deadline rather than
// an iteration count: under CPU saturation (committers are compute-heavy
// between commits, or GOMAXPROCS is low) each sleep can overshoot by a
// scheduler quantum, and eight overshoots of 10ms would starve the flusher
// far longer than any group is worth. A lone committer pays one step of
// extra latency; a burst of committers lands in one flush. Only the
// flusher goroutine waits here — inline flushes (Commit, FlushBarrier,
// ReleaseFlushes) never do.
func (w *WALPager) gatherWindow() {
	prev := w.PendingBatches()
	if prev == 0 {
		return
	}
	deadline := time.Now().Add(2 * time.Millisecond)
	for {
		step := 400 * time.Microsecond
		if rest := time.Until(deadline); rest <= 0 {
			return
		} else if step > rest {
			step = rest
		}
		time.Sleep(step)
		cur := w.PendingBatches()
		if cur == prev {
			return
		}
		prev = cur
	}
}

// stopFlusher shuts the flusher goroutine down (idempotent).
func (w *WALPager) stopFlusher() {
	w.stopOnce.Do(func() { close(w.stop) })
	w.wg.Wait()
}

// flushGroup drains the current queue as one flush. Concurrent callers
// serialize on flushMu: the loser finds the queue empty (or flushes the
// batches that arrived meanwhile). Returns the flush error; waiters see it
// too unless they already resolved at the group's durability point (the
// first log sync) before the failure. lazy selects the background
// flusher's deferred-checkpoint tail.
func (w *WALPager) flushGroup(lazy bool) error {
	w.flushMu.Lock()
	defer w.flushMu.Unlock()
	w.mu.Lock()
	if w.held {
		w.mu.Unlock()
		return nil
	}
	if w.broken != nil {
		err := fmt.Errorf("%w: %w", errWALBroken, w.broken)
		w.failQueuedLocked(err)
		w.mu.Unlock()
		return err
	}
	group := make([]*sealedBatch, len(w.queue))
	copy(group, w.queue)
	w.mu.Unlock()
	if len(group) == 0 {
		return nil
	}
	err := w.flushProtocol(group, lazy)
	w.mu.Lock()
	if err != nil {
		w.broken = err
		w.lastAbortDirty = true
		w.failQueuedLocked(err)
		w.mu.Unlock()
		return err
	}
	// The group is durable and applied: only now may the batches leave the
	// read overlay (their pages are readable from the data pager). The
	// waiters resolved earlier, inside flushProtocol, the moment the log
	// sync made the group durable.
	w.queue = w.queue[len(group):]
	if w.depth == 0 {
		w.numPages = w.queueTopLocked()
	}
	w.groupSize.Observe(int64(len(group)))
	for range group {
		w.commits.Inc()
	}
	w.mu.Unlock()
	return nil
}

// failQueuedLocked resolves every queued batch with err and empties the
// queue. Caller holds w.mu.
func (w *WALPager) failQueuedLocked(err error) {
	for _, b := range w.queue {
		b.resolve(err)
	}
	w.queue = nil
	if w.depth == 0 {
		w.numPages = w.data.NumPages()
	}
}

// failQueued is failQueuedLocked for callers not holding w.mu.
func (w *WALPager) failQueued(err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.failQueuedLocked(err)
}

// flushProtocol runs the durable group flush: journal every batch, fsync
// the log, apply the merged images, fsync the data pager, checkpoint,
// fsync, then — eagerly, or lazily once the log is large enough — deliver
// the newest metadata to the sink and truncate the log. Caller holds
// flushMu but NOT w.mu — the protocol only reads the immutable contents of
// sealed batches, so readers proceed concurrently.
func (w *WALPager) flushProtocol(group []*sealedBatch, lazy bool) error {
	if err := w.ensureHeader(); err != nil {
		return err
	}
	// 1. Journal every batch — begin, frames, meta, commit — then one
	// fsync makes the whole group's commit records durable. Meta blobs are
	// delta-chained (each batch's blob shares most of its bytes with the
	// previous one); the chain continues across lazy flushes — the base is
	// whatever meta record is already in the log — and restarts whenever a
	// checkpoint truncates the log back to its header.
	base := w.data.NumPages()
	prevMeta := w.prevLoggedMeta
	for _, b := range group {
		if err := w.appendRecord(encodeBegin(b.seq, base)); err != nil {
			return err
		}
		for _, id := range b.order {
			if err := w.appendRecord(encodePage(id, b.images[id])); err != nil {
				return err
			}
		}
		if b.meta != nil {
			if err := w.appendRecord(encodeMetaRecord(prevMeta, b.meta)); err != nil {
				return err
			}
			prevMeta = b.meta
		}
		if err := w.appendRecord(encodeCommit(b.seq, b.final, len(b.order))); err != nil {
			return err
		}
		base = b.final
	}
	w.prevLoggedMeta = prevMeta
	w.fsyncs.Inc()
	if err := w.log.Sync(); err != nil {
		return fmt.Errorf("storage: wal commit sync: %w", err)
	}
	// The group is durable from this point: its commit records are synced,
	// and the log is only truncated after the apply/deliver/checkpoint tail
	// below succeeds, so a crash (or a tail failure, which latches w.broken
	// and forces a reopen) replays every batch from the log. Resolve the
	// waiters now — blocked committers overlap their next seal with the
	// remaining four fsyncs of this flush. Tail failures thus reach inline
	// flushers through Flush's return, not through these waiters.
	now := time.Now()
	for _, b := range group {
		w.commitWait.Observe(now.Sub(b.sealed).Microseconds())
		b.resolve(nil)
	}
	// 2. Apply the merged group to the data pager and make it durable.
	// Later batches win on overlapping pages; first-touch order keeps the
	// apply deterministic.
	finalPages := group[len(group)-1].final
	var order []PageID
	images := make(map[PageID][]byte)
	for _, b := range group {
		for _, id := range b.order {
			if _, ok := images[id]; !ok {
				order = append(order, id)
			}
			images[id] = b.images[id]
		}
	}
	if err := w.applyImages(finalPages, order, images); err != nil {
		return err
	}
	// 3. Checkpoint the whole group, then deliver the newest metadata blob
	// (each is a full sidecar image, so the last one subsumes the rest) and
	// reset the log. A lazy flush defers that last step until the log
	// crosses walTruncateThreshold: the two sidecar fsyncs then amortize
	// across many flushes instead of taxing each one, and crash safety is
	// unchanged because recovery redelivers the newest committed blob it
	// finds in the log, checkpointed or not.
	if w.sink != nil {
		for _, b := range group {
			if b.meta != nil {
				w.pendingSidecar = b.meta
			}
		}
	}
	if err := w.appendRecord(encodeCheckpoint(group[len(group)-1].seq)); err != nil {
		return err
	}
	w.fsyncs.Inc()
	if err := w.log.Sync(); err != nil {
		return fmt.Errorf("storage: wal checkpoint sync: %w", err)
	}
	if lazy {
		size, err := w.log.Size()
		if err != nil {
			return fmt.Errorf("storage: wal size: %w", err)
		}
		if size < walTruncateThreshold {
			return nil
		}
	}
	return w.checkpointLocked()
}

// checkpointLocked completes a deferred (or eager) checkpoint: deliver the
// pending metadata sidecar, then truncate the log to its header. Delivery
// precedes truncation so a crash between the two merely redelivers on
// reopen (the sink is idempotent) rather than losing the newest blob.
// Caller holds flushMu and has ensured every record in the log belongs to
// a checkpointed batch.
func (w *WALPager) checkpointLocked() error {
	size, err := w.log.Size()
	if err != nil {
		return err
	}
	if size <= walHeaderSize {
		// Nothing journaled since the last truncation (and therefore no
		// sidecar can be pending).
		return nil
	}
	if w.sink != nil && w.pendingSidecar != nil {
		if err := w.sink(w.pendingSidecar); err != nil {
			return fmt.Errorf("storage: wal meta sink: %w", err)
		}
	}
	w.pendingSidecar = nil
	if err := w.log.Truncate(walHeaderSize); err != nil {
		return fmt.Errorf("storage: wal truncate: %w", err)
	}
	w.prevLoggedMeta = nil
	return nil
}

// Checkpoint flushes everything queued, delivers any deferred metadata
// sidecar and truncates the log to a bare header. Close runs it
// implicitly; long-lived stores using the background flusher otherwise
// checkpoint whenever the log crosses walTruncateThreshold.
func (w *WALPager) Checkpoint() error {
	if err := w.FlushBarrier(); err != nil {
		return err
	}
	w.flushMu.Lock()
	defer w.flushMu.Unlock()
	return w.checkpointLocked()
}

// FlushBarrier flushes until no sealed batch remains queued, overriding a
// test hold. It is the durability barrier behind Sync, Save and direct
// page access outside batches.
func (w *WALPager) FlushBarrier() error {
	for {
		w.mu.Lock()
		if w.broken != nil {
			err := fmt.Errorf("%w: %w", errWALBroken, w.broken)
			w.failQueuedLocked(err)
			w.mu.Unlock()
			return err
		}
		if len(w.queue) == 0 {
			w.mu.Unlock()
			return nil
		}
		w.held = false
		w.mu.Unlock()
		if err := w.flushGroup(false); err != nil {
			return err
		}
	}
}

// Broken returns the latched flush failure, if any. A broken pager rejects
// further commits; the store must be reopened to recover.
func (w *WALPager) Broken() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.broken == nil {
		return nil
	}
	return fmt.Errorf("%w: %w", errWALBroken, w.broken)
}

// PendingBatches reports how many sealed batches await flush.
func (w *WALPager) PendingBatches() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.queue)
}

// HoldFlushes pauses group flushing so tests can assemble a multi-batch
// group deterministically: sealed batches accumulate on the queue (and
// stay readable through the overlay) until ReleaseFlushes.
func (w *WALPager) HoldFlushes() {
	w.mu.Lock()
	w.held = true
	w.mu.Unlock()
}

// ReleaseFlushes ends a HoldFlushes window and immediately flushes the
// accumulated group inline, returning the flush outcome.
func (w *WALPager) ReleaseFlushes() error {
	w.mu.Lock()
	w.held = false
	w.mu.Unlock()
	return w.flushGroup(false)
}
