package storage

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"
)

func pagers(t *testing.T) map[string]Pager {
	t.Helper()
	fp, err := OpenFilePager(filepath.Join(t.TempDir(), "pages.db"), 256)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fp.Close() })
	return map[string]Pager{
		"mem":  NewMemPager(256),
		"file": fp,
	}
}

func TestPagerBasics(t *testing.T) {
	for name, p := range pagers(t) {
		t.Run(name, func(t *testing.T) {
			if p.PageSize() != 256 {
				t.Fatalf("PageSize = %d", p.PageSize())
			}
			if p.NumPages() != 0 {
				t.Fatalf("NumPages = %d, want 0", p.NumPages())
			}
			id, err := p.Allocate()
			if err != nil {
				t.Fatal(err)
			}
			if id != 0 || p.NumPages() != 1 {
				t.Fatalf("first page id=%d num=%d", id, p.NumPages())
			}
			buf := make([]byte, 256)
			if err := p.ReadPage(id, buf); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf, make([]byte, 256)) {
				t.Fatal("new page not zeroed")
			}
			for i := range buf {
				buf[i] = byte(i)
			}
			if err := p.WritePage(id, buf); err != nil {
				t.Fatal(err)
			}
			got := make([]byte, 256)
			if err := p.ReadPage(id, got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, buf) {
				t.Fatal("read back mismatch")
			}
			st := p.Stats()
			if st.Reads != 2 || st.Writes != 1 || st.Allocs != 1 {
				t.Fatalf("stats = %v", st)
			}
		})
	}
}

func TestPagerErrors(t *testing.T) {
	for name, p := range pagers(t) {
		t.Run(name, func(t *testing.T) {
			buf := make([]byte, 256)
			if err := p.ReadPage(5, buf); err == nil {
				t.Error("read out of range should fail")
			}
			if err := p.WritePage(5, buf); err == nil {
				t.Error("write out of range should fail")
			}
			id, _ := p.Allocate()
			if err := p.ReadPage(id, make([]byte, 10)); err == nil {
				t.Error("short buffer read should fail")
			}
			if err := p.WritePage(id, make([]byte, 10)); err == nil {
				t.Error("short buffer write should fail")
			}
		})
	}
}

func TestFilePagerPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "persist.db")
	p, err := OpenFilePager(path, 128)
	if err != nil {
		t.Fatal(err)
	}
	id, _ := p.Allocate()
	data := bytes.Repeat([]byte{0xAB}, 128)
	if err := p.WritePage(id, data); err != nil {
		t.Fatal(err)
	}
	if err := p.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	p2, err := OpenFilePager(path, 128)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if p2.NumPages() != 1 {
		t.Fatalf("NumPages after reopen = %d", p2.NumPages())
	}
	got := make([]byte, 128)
	if err := p2.ReadPage(0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data lost across reopen")
	}
}

func TestFilePagerRejectsBadSize(t *testing.T) {
	path := filepath.Join(t.TempDir(), "odd.db")
	p, err := OpenFilePager(path, 128)
	if err != nil {
		t.Fatal(err)
	}
	p.Allocate()
	p.Close()
	if _, err := OpenFilePager(path, 100); err == nil {
		t.Fatal("mismatched page size should fail to open")
	}
}

func TestMemPagerClosed(t *testing.T) {
	p := NewMemPager(64)
	p.Close()
	if _, err := p.Allocate(); err == nil {
		t.Fatal("allocate after close should fail")
	}
}

func TestDefaultPageSize(t *testing.T) {
	if NewMemPager(0).PageSize() != DefaultPageSize {
		t.Fatal("zero page size should default")
	}
}

func TestBufferPoolHitAndMiss(t *testing.T) {
	p := NewMemPager(64)
	bp := NewBufferPool(p, 4)
	f, err := bp.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	f.Data[0] = 42
	if err := bp.Unpin(f.ID(), true); err != nil {
		t.Fatal(err)
	}

	g, err := bp.Get(f.ID())
	if err != nil {
		t.Fatal(err)
	}
	if g.Data[0] != 42 {
		t.Fatal("buffered data lost")
	}
	bp.Unpin(g.ID(), false)

	st := bp.Stats()
	if st.Hits != 1 {
		t.Fatalf("hits = %d, want 1", st.Hits)
	}
	if p.Stats().Reads != 0 {
		t.Fatal("hit should not touch the pager")
	}
}

func TestBufferPoolEvictionWritesDirty(t *testing.T) {
	p := NewMemPager(64)
	bp := NewBufferPool(p, 2)
	var ids []PageID
	for i := 0; i < 3; i++ {
		f, err := bp.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		f.Data[0] = byte(i + 1)
		ids = append(ids, f.ID())
		if err := bp.Unpin(f.ID(), true); err != nil {
			t.Fatal(err)
		}
	}
	// Capacity 2, three pages: page 0 must have been evicted and flushed.
	if bp.Buffered() > 2 {
		t.Fatalf("buffered = %d, want <= 2", bp.Buffered())
	}
	buf := make([]byte, 64)
	if err := p.ReadPage(ids[0], buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 1 {
		t.Fatal("evicted dirty page not written back")
	}
	st := bp.Stats()
	if st.Evictions == 0 || st.Flushes == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestBufferPoolPinnedNotEvicted(t *testing.T) {
	p := NewMemPager(64)
	bp := NewBufferPool(p, 1)
	f, err := bp.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	// Pool full with a pinned page; next allocation must fail.
	if _, err := bp.Allocate(); err == nil {
		t.Fatal("allocation should fail when all frames pinned")
	}
	bp.Unpin(f.ID(), false)
	if _, err := bp.Allocate(); err != nil {
		t.Fatalf("allocation after unpin: %v", err)
	}
}

func TestBufferPoolUnpinErrors(t *testing.T) {
	bp := NewBufferPool(NewMemPager(64), 2)
	if err := bp.Unpin(0, false); err == nil {
		t.Fatal("unpin unbuffered should fail")
	}
	f, _ := bp.Allocate()
	bp.Unpin(f.ID(), false)
	if err := bp.Unpin(f.ID(), false); err == nil {
		t.Fatal("double unpin should fail")
	}
}

func TestBufferPoolFlushAll(t *testing.T) {
	p := NewMemPager(64)
	bp := NewBufferPool(p, 4)
	f, _ := bp.Allocate()
	f.Data[5] = 99
	bp.Unpin(f.ID(), true)
	if err := bp.FlushAll(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	p.ReadPage(f.ID(), buf)
	if buf[5] != 99 {
		t.Fatal("FlushAll did not persist dirty page")
	}
}

func TestBufferPoolDropAll(t *testing.T) {
	p := NewMemPager(64)
	bp := NewBufferPool(p, 4)
	f, _ := bp.Allocate()
	f.Data[1] = 7
	bp.Unpin(f.ID(), true)
	if err := bp.DropAll(); err != nil {
		t.Fatal(err)
	}
	if bp.Buffered() != 0 {
		t.Fatal("DropAll left frames")
	}
	// Data must have been flushed before dropping.
	buf := make([]byte, 64)
	p.ReadPage(f.ID(), buf)
	if buf[1] != 7 {
		t.Fatal("DropAll lost dirty data")
	}
	// Re-read counts as a miss and physical read.
	before := p.Stats().Reads
	g, err := bp.Get(f.ID())
	if err != nil {
		t.Fatal(err)
	}
	bp.Unpin(g.ID(), false)
	if p.Stats().Reads != before+1 {
		t.Fatal("cold read should hit the pager")
	}
}

func TestBufferPoolDropAllPinned(t *testing.T) {
	bp := NewBufferPool(NewMemPager(64), 4)
	bp.Allocate() // stays pinned
	if err := bp.DropAll(); err == nil {
		t.Fatal("DropAll with pinned frame should fail")
	}
}

func TestPoolStatsHitRatioAndSub(t *testing.T) {
	var s PoolStats
	if s.HitRatio() != 0 {
		t.Fatal("empty HitRatio should be 0")
	}
	a := PoolStats{Gets: 10, Hits: 5, Misses: 5}
	b := PoolStats{Gets: 4, Hits: 2, Misses: 2}
	d := a.Sub(b)
	if d.Gets != 6 || d.Hits != 3 {
		t.Fatalf("Sub = %+v", d)
	}
	if a.HitRatio() != 0.5 {
		t.Fatalf("HitRatio = %v", a.HitRatio())
	}
}

func TestIOStatsSubString(t *testing.T) {
	a := IOStats{Reads: 5, Writes: 3, Allocs: 1}
	d := a.Sub(IOStats{Reads: 2})
	if d.Reads != 3 || d.Writes != 3 {
		t.Fatalf("Sub = %+v", d)
	}
	if a.String() == "" {
		t.Fatal("String empty")
	}
}

// Property: under random workloads the buffer pool is transparent — reads
// through the pool always observe the most recent write through the pool.
func TestBufferPoolTransparency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := NewMemPager(32)
		bp := NewBufferPool(p, 3)
		const numPages = 8
		shadow := make(map[PageID]byte)
		for i := 0; i < numPages; i++ {
			fr, err := bp.Allocate()
			if err != nil {
				return false
			}
			shadow[fr.ID()] = 0
			bp.Unpin(fr.ID(), false)
		}
		for step := 0; step < 200; step++ {
			id := PageID(rng.Intn(numPages))
			fr, err := bp.Get(id)
			if err != nil {
				return false
			}
			if fr.Data[0] != shadow[id] {
				return false
			}
			if rng.Intn(2) == 0 {
				v := byte(rng.Intn(256))
				fr.Data[0] = v
				shadow[id] = v
				bp.Unpin(id, true)
			} else {
				bp.Unpin(id, false)
			}
		}
		if err := bp.FlushAll(); err != nil {
			return false
		}
		buf := make([]byte, 32)
		for id, v := range shadow {
			if err := p.ReadPage(id, buf); err != nil {
				return false
			}
			if buf[0] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBufferPoolGetHit(b *testing.B) {
	bp := NewBufferPool(NewMemPager(4096), 16)
	f, _ := bp.Allocate()
	bp.Unpin(f.ID(), false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fr, err := bp.Get(f.ID())
		if err != nil {
			b.Fatal(err)
		}
		bp.Unpin(fr.ID(), false)
	}
}

func BenchmarkBufferPoolChurn(b *testing.B) {
	bp := NewBufferPool(NewMemPager(4096), 4)
	var ids []PageID
	for i := 0; i < 32; i++ {
		f, _ := bp.Allocate()
		ids = append(ids, f.ID())
		bp.Unpin(f.ID(), false)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := ids[i%len(ids)]
		f, err := bp.Get(id)
		if err != nil {
			b.Fatal(err)
		}
		bp.Unpin(f.ID(), false)
	}
}
