package storage

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"sync"

	"dolxml/internal/obs"
)

// PoolStats counts logical page requests against the buffer pool. Together
// with the underlying pager's IOStats they quantify the I/O savings of the
// DOL page-skipping optimization.
type PoolStats struct {
	Gets      int64 // logical page requests
	Hits      int64 // served from the pool without physical I/O
	Misses    int64 // required a physical read
	Evictions int64 // frames reclaimed
	Flushes   int64 // dirty pages written back
}

// HitRatio returns Hits/Gets, or 0 when no requests have been made.
func (s PoolStats) HitRatio() float64 {
	if s.Gets == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Gets)
}

// Sub returns the difference s - o.
func (s PoolStats) Sub(o PoolStats) PoolStats {
	return PoolStats{
		Gets:      s.Gets - o.Gets,
		Hits:      s.Hits - o.Hits,
		Misses:    s.Misses - o.Misses,
		Evictions: s.Evictions - o.Evictions,
		Flushes:   s.Flushes - o.Flushes,
	}
}

// Frame is a buffered page. Data is valid while the frame is pinned.
type Frame struct {
	id      PageID
	Data    []byte
	pins    int
	dirty   bool
	lruElem *list.Element // non-nil only while unpinned
	// ready is closed once Data holds the page contents. Frames are
	// published to the pool map before their physical read completes so
	// that the pool mutex is never held across I/O; concurrent getters of
	// the same page wait on ready instead of issuing a duplicate read.
	ready chan struct{}
	// loadErr is set (before ready closes) when the physical read failed;
	// the frame is withdrawn from the pool and waiters propagate the error.
	loadErr error
}

// ID returns the page this frame buffers.
func (f *Frame) ID() PageID { return f.id }

// BufferPool caches pages of a Pager with LRU replacement and pin counting.
// It is safe for concurrent use.
type BufferPool struct {
	mu       sync.Mutex
	pager    Pager
	capacity int
	frames   map[PageID]*Frame
	lru      *list.List // of PageID, front = most recently used
	// Counters are obs atomics rather than fields of a mutex-guarded
	// struct: Stats() and the metrics registry read them while workers
	// update them, without coordinating on bp.mu. They register under
	// pool_* via RegisterMetrics.
	gets      obs.Counter
	hits      obs.Counter
	misses    obs.Counter
	evictions obs.Counter
	flushes   obs.Counter
	// dirty indexes the buffered frames whose dirty bit is set, so FlushAll
	// visits exactly the write-back set instead of scanning every frame —
	// the scan sat inside each update commit's sealing critical section and
	// grew with pool capacity, not with the update's footprint. Invariant
	// (under mu): id ∈ dirty ⇔ frames[id].dirty.
	dirty map[PageID]struct{}
}

// NewBufferPool wraps pager with a pool of at most capacity frames.
func NewBufferPool(pager Pager, capacity int) *BufferPool {
	if capacity < 1 {
		capacity = 1
	}
	return &BufferPool{
		pager:    pager,
		capacity: capacity,
		frames:   make(map[PageID]*Frame, capacity),
		lru:      list.New(),
		dirty:    make(map[PageID]struct{}),
	}
}

// Pager returns the underlying pager.
func (bp *BufferPool) Pager() Pager { return bp.pager }

// Capacity returns the maximum number of buffered frames.
func (bp *BufferPool) Capacity() int {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return bp.capacity
}

// closedReady is shared by frames whose contents are valid from birth
// (allocations and reloads), so waiting on ready never blocks for them.
var closedReady = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// Get pins and returns the frame for page id, reading it from the pager on
// a miss. The caller must Unpin the frame when done.
//
// The pool mutex is held only for bookkeeping, never across pager I/O: on a
// miss the frame is published pinned-but-loading, the read proceeds outside
// the lock, and concurrent hits on other pages are unaffected. A concurrent
// Get of the same still-loading page counts as a hit (no second physical
// read happens) and blocks until the load completes.
func (bp *BufferPool) Get(id PageID) (*Frame, error) {
	return bp.GetCtx(context.Background(), id)
}

// GetCtx is Get with cancellation. The page-fetch boundary is the natural
// cancellation point of every scan in the system, so the context is
// consulted exactly once here, before the frame is pinned: a cancelled
// query observes ctx.Err() without ever acquiring a pin, which is what lets
// the query layers guarantee that pin counts return to zero on
// cancellation. A Get that has already passed the check completes its read
// normally (worst-case cancellation latency is one physical page read).
func (bp *BufferPool) GetCtx(ctx context.Context, id PageID) (*Frame, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	tr := obs.TraceFromContext(ctx)
	bp.mu.Lock()
	bp.gets.Inc()
	if f, ok := bp.frames[id]; ok {
		bp.hits.Inc()
		bp.pin(f)
		bp.mu.Unlock()
		// Recorded per Get, mirroring the gets counter exactly: the
		// invariant tests hold trace pin events == pool Gets delta.
		tr.PagePin(int64(id), true)
		<-f.ready
		if f.loadErr != nil {
			// The loader withdrew the frame; the pin died with it.
			return nil, f.loadErr
		}
		return f, nil
	}
	bp.misses.Inc()
	f, err := bp.newFrame(id)
	if err != nil {
		bp.mu.Unlock()
		return nil, err
	}
	f.ready = make(chan struct{})
	bp.pin(f)
	bp.mu.Unlock()
	tr.PagePin(int64(id), false)

	err = bp.pager.ReadPage(id, f.Data)
	bp.mu.Lock()
	if err != nil {
		f.loadErr = err
		delete(bp.frames, id)
	}
	close(f.ready)
	bp.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return f, nil
}

// Allocate creates a new page in the pager and returns it pinned and zeroed.
func (bp *BufferPool) Allocate() (*Frame, error) {
	id, err := bp.pager.Allocate()
	if err != nil {
		return nil, err
	}
	bp.mu.Lock()
	defer bp.mu.Unlock()
	bp.gets.Inc()
	f, err := bp.newFrame(id)
	if err != nil {
		return nil, err
	}
	bp.pin(f)
	return f, nil
}

// newFrame installs an empty frame for id, evicting if needed. The frame is
// born ready (callers that must load it asynchronously replace the channel
// before releasing the mutex). The loop matters once SetCapacity can shrink
// a pool below its occupancy: one admission may have to reclaim several
// frames before the pool is back under budget. Caller holds bp.mu.
func (bp *BufferPool) newFrame(id PageID) (*Frame, error) {
	for len(bp.frames) >= bp.capacity {
		if err := bp.evict(); err != nil {
			return nil, err
		}
	}
	f := &Frame{id: id, Data: make([]byte, bp.pager.PageSize()), ready: closedReady}
	bp.frames[id] = f
	return f, nil
}

// SetCapacity re-budgets the pool to at most capacity frames, evicting LRU
// frames (writing back dirty ones) until occupancy fits. Pinned frames
// cannot be reclaimed; if pins alone exceed the new capacity the shrink
// stops there and completes lazily as later admissions evict. The tenant
// registry calls this on every open and close to keep the sum of per-store
// capacities under one global byte budget.
func (bp *BufferPool) SetCapacity(capacity int) error {
	if capacity < 1 {
		capacity = 1
	}
	bp.mu.Lock()
	defer bp.mu.Unlock()
	bp.capacity = capacity
	for len(bp.frames) > bp.capacity && bp.lru.Back() != nil {
		if err := bp.evict(); err != nil {
			return err
		}
	}
	return nil
}

// pin marks f in use. Caller holds bp.mu.
func (bp *BufferPool) pin(f *Frame) {
	f.pins++
	if f.lruElem != nil {
		bp.lru.Remove(f.lruElem)
		f.lruElem = nil
	}
}

// Unpin releases one pin on the frame for page id; dirty records that the
// caller modified the page.
func (bp *BufferPool) Unpin(id PageID, dirty bool) error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	f, ok := bp.frames[id]
	if !ok {
		return fmt.Errorf("storage: unpin of unbuffered page %d", id)
	}
	if f.pins == 0 {
		return fmt.Errorf("storage: unpin of unpinned page %d", id)
	}
	if dirty {
		f.dirty = true
		bp.dirty[id] = struct{}{}
	}
	f.pins--
	if f.pins == 0 {
		f.lruElem = bp.lru.PushFront(id)
	}
	return nil
}

// evict removes the least recently used unpinned frame, writing it back if
// dirty. Caller holds bp.mu.
func (bp *BufferPool) evict() error {
	elem := bp.lru.Back()
	if elem == nil {
		return errors.New("storage: buffer pool exhausted (all frames pinned)")
	}
	id := elem.Value.(PageID)
	f := bp.frames[id]
	if f.dirty {
		if err := bp.pager.WritePage(id, f.Data); err != nil {
			return err
		}
		delete(bp.dirty, id)
		bp.flushes.Inc()
	}
	bp.lru.Remove(elem)
	delete(bp.frames, id)
	bp.evictions.Inc()
	return nil
}

// FlushAll writes every dirty buffered page back to the pager.
func (bp *BufferPool) FlushAll() error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	for id := range bp.dirty {
		f := bp.frames[id]
		if err := bp.pager.WritePage(id, f.Data); err != nil {
			return err
		}
		f.dirty = false
		delete(bp.dirty, id)
		bp.flushes.Inc()
	}
	return bp.pager.Sync()
}

// Stats returns cumulative pool counters. Each field is an atomic load, so
// Stats never races with concurrent workers (the fields are not sampled at
// one instant, but each is individually exact).
func (bp *BufferPool) Stats() PoolStats {
	return PoolStats{
		Gets:      bp.gets.Load(),
		Hits:      bp.hits.Load(),
		Misses:    bp.misses.Load(),
		Evictions: bp.evictions.Load(),
		Flushes:   bp.flushes.Load(),
	}
}

// ResetStats zeroes the pool counters (the pager's physical counters are
// unaffected).
func (bp *BufferPool) ResetStats() {
	bp.gets.Reset()
	bp.hits.Reset()
	bp.misses.Reset()
	bp.evictions.Reset()
	bp.flushes.Reset()
}

// RegisterMetrics registers the pool's counters plus pinned/buffered/
// capacity gauges with reg under prefix (prefix "pool" yields pool_gets,
// pool_hits, …).
func (bp *BufferPool) RegisterMetrics(reg *obs.Registry, prefix string) error {
	for _, m := range []struct {
		name, help string
		c          *obs.Counter
	}{
		{"gets", "Page pins served by the buffer pool.", &bp.gets},
		{"hits", "Page pins satisfied without a pager read.", &bp.hits},
		{"misses", "Page pins that required a pager read.", &bp.misses},
		{"evictions", "Frames evicted to make room.", &bp.evictions},
		{"flushes", "Dirty frames written back on eviction or flush.", &bp.flushes},
	} {
		if err := reg.RegisterCounter(prefix+"_"+m.name, m.c); err != nil {
			return err
		}
		reg.SetHelp(prefix+"_"+m.name, m.help)
	}
	if err := reg.RegisterGauge(prefix+"_pinned", func() int64 { return int64(bp.Pinned()) }); err != nil {
		return err
	}
	if err := reg.RegisterGauge(prefix+"_buffered", func() int64 { return int64(bp.Buffered()) }); err != nil {
		return err
	}
	if err := reg.RegisterGauge(prefix+"_capacity", func() int64 { return int64(bp.Capacity()) }); err != nil {
		return err
	}
	reg.SetHelp(prefix+"_pinned", "Outstanding page pins across all frames.")
	reg.SetHelp(prefix+"_buffered", "Frames currently holding a page.")
	reg.SetHelp(prefix+"_capacity", "Configured frame capacity of the pool.")
	return nil
}

// Pinned returns the total number of outstanding pins across all frames.
// Tests use it to assert that cancelled or closed query pipelines released
// every page they touched.
func (bp *BufferPool) Pinned() int {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	n := 0
	for _, f := range bp.frames {
		n += f.pins
	}
	return n
}

// Buffered returns the number of frames currently in the pool.
func (bp *BufferPool) Buffered() int {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return len(bp.frames)
}

// DropAll discards every unpinned clean frame and flushes+drops dirty ones,
// emptying the cache. It fails if any frame is still pinned. Used by
// experiments that measure cold-cache I/O.
func (bp *BufferPool) DropAll() error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	for id, f := range bp.frames {
		if f.pins > 0 {
			return fmt.Errorf("storage: DropAll with page %d still pinned", id)
		}
		if f.dirty {
			if err := bp.pager.WritePage(id, f.Data); err != nil {
				return err
			}
			bp.flushes.Inc()
		}
	}
	bp.frames = make(map[PageID]*Frame, bp.capacity)
	bp.lru.Init()
	bp.dirty = make(map[PageID]struct{})
	return nil
}
