// Package storage provides the block-oriented storage substrate used by the
// NoK physical encoding, the embedded DOL access-control data, and the
// B+-tree indexes: fixed-size pages, file-backed and in-memory pagers, and
// an LRU buffer pool with pin counting and I/O statistics.
//
// The DOL paper's performance claims are about I/O behavior (access checks
// piggy-back on structure pages; inaccessible pages can be skipped), so all
// page traffic is counted and exposed via Stats.
package storage

import (
	"errors"
	"fmt"
	"os"
	"sync"
)

// DefaultPageSize matches the 4 KB pages used in the paper's evaluation (§5.2).
const DefaultPageSize = 4096

// PageID identifies a page within a pager. Pages are allocated densely
// starting at 0.
type PageID uint32

// InvalidPage is the null page reference.
const InvalidPage PageID = ^PageID(0)

// ErrPageOutOfRange is returned when reading or writing an unallocated page.
var ErrPageOutOfRange = errors.New("storage: page out of range")

// Pager is a flat array of fixed-size pages on some medium.
type Pager interface {
	// PageSize returns the fixed size of every page in bytes.
	PageSize() int
	// NumPages returns the number of allocated pages.
	NumPages() int
	// Allocate appends a zeroed page and returns its ID.
	Allocate() (PageID, error)
	// ReadPage copies page id into buf, which must be PageSize() long.
	ReadPage(id PageID, buf []byte) error
	// WritePage copies buf, which must be PageSize() long, into page id.
	WritePage(id PageID, buf []byte) error
	// Sync flushes buffered writes to the medium.
	Sync() error
	// Close releases the pager's resources.
	Close() error
	// Stats returns cumulative physical I/O counters.
	Stats() IOStats
}

// IOStats counts physical page operations at the pager level.
type IOStats struct {
	Reads  int64 // pages physically read
	Writes int64 // pages physically written
	Allocs int64 // pages allocated
}

// Sub returns the difference s - o, for measuring an interval.
func (s IOStats) Sub(o IOStats) IOStats {
	return IOStats{Reads: s.Reads - o.Reads, Writes: s.Writes - o.Writes, Allocs: s.Allocs - o.Allocs}
}

func (s IOStats) String() string {
	return fmt.Sprintf("reads=%d writes=%d allocs=%d", s.Reads, s.Writes, s.Allocs)
}

// MemPager is an in-memory Pager, used in tests and for small documents.
type MemPager struct {
	mu       sync.Mutex
	pageSize int
	pages    [][]byte
	stats    IOStats
	closed   bool
}

// NewMemPager returns an empty in-memory pager with the given page size.
func NewMemPager(pageSize int) *MemPager {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	return &MemPager{pageSize: pageSize}
}

// PageSize implements Pager.
func (m *MemPager) PageSize() int { return m.pageSize }

// NumPages implements Pager.
func (m *MemPager) NumPages() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.pages)
}

// Allocate implements Pager.
func (m *MemPager) Allocate() (PageID, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return InvalidPage, errors.New("storage: pager closed")
	}
	m.pages = append(m.pages, make([]byte, m.pageSize))
	m.stats.Allocs++
	return PageID(len(m.pages) - 1), nil
}

// ReadPage implements Pager.
func (m *MemPager) ReadPage(id PageID, buf []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if int(id) >= len(m.pages) {
		return fmt.Errorf("%w: read %d of %d", ErrPageOutOfRange, id, len(m.pages))
	}
	if len(buf) != m.pageSize {
		return fmt.Errorf("storage: buffer size %d != page size %d", len(buf), m.pageSize)
	}
	copy(buf, m.pages[id])
	m.stats.Reads++
	return nil
}

// WritePage implements Pager.
func (m *MemPager) WritePage(id PageID, buf []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if int(id) >= len(m.pages) {
		return fmt.Errorf("%w: write %d of %d", ErrPageOutOfRange, id, len(m.pages))
	}
	if len(buf) != m.pageSize {
		return fmt.Errorf("storage: buffer size %d != page size %d", len(buf), m.pageSize)
	}
	copy(m.pages[id], buf)
	m.stats.Writes++
	return nil
}

// Sync implements Pager (a no-op in memory).
func (m *MemPager) Sync() error { return nil }

// Close implements Pager.
func (m *MemPager) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	m.pages = nil
	return nil
}

// Stats implements Pager.
func (m *MemPager) Stats() IOStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// FilePager is a Pager over a single operating-system file.
type FilePager struct {
	mu       sync.Mutex
	f        *os.File
	pageSize int
	numPages int
	stats    IOStats
}

// OpenFilePager opens (creating if necessary) the file at path as a pager
// with the given page size. An existing file must be a whole number of pages
// long.
func OpenFilePager(path string, pageSize int) (*FilePager, error) {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open %s: %w", path, err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: stat %s: %w", path, err)
	}
	if info.Size()%int64(pageSize) != 0 {
		f.Close()
		return nil, fmt.Errorf("storage: %s size %d is not a multiple of page size %d", path, info.Size(), pageSize)
	}
	return &FilePager{f: f, pageSize: pageSize, numPages: int(info.Size() / int64(pageSize))}, nil
}

// PageSize implements Pager.
func (p *FilePager) PageSize() int { return p.pageSize }

// NumPages implements Pager.
func (p *FilePager) NumPages() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.numPages
}

// Allocate implements Pager.
func (p *FilePager) Allocate() (PageID, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	zero := make([]byte, p.pageSize)
	off := int64(p.numPages) * int64(p.pageSize)
	if n, err := p.f.WriteAt(zero, off); err != nil {
		return InvalidPage, fmt.Errorf("storage: allocate page %d at offset %d: wrote %d of %d bytes: %w",
			p.numPages, off, n, p.pageSize, err)
	}
	id := PageID(p.numPages)
	p.numPages++
	p.stats.Allocs++
	return id, nil
}

// ReadPage implements Pager.
func (p *FilePager) ReadPage(id PageID, buf []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if int(id) >= p.numPages {
		return fmt.Errorf("%w: read %d of %d", ErrPageOutOfRange, id, p.numPages)
	}
	if len(buf) != p.pageSize {
		return fmt.Errorf("storage: buffer size %d != page size %d", len(buf), p.pageSize)
	}
	off := int64(id) * int64(p.pageSize)
	if n, err := p.f.ReadAt(buf, off); err != nil {
		return fmt.Errorf("storage: read page %d at offset %d: got %d of %d bytes: %w",
			id, off, n, p.pageSize, err)
	}
	p.stats.Reads++
	return nil
}

// WritePage implements Pager.
func (p *FilePager) WritePage(id PageID, buf []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if int(id) >= p.numPages {
		return fmt.Errorf("%w: write %d of %d", ErrPageOutOfRange, id, p.numPages)
	}
	if len(buf) != p.pageSize {
		return fmt.Errorf("storage: buffer size %d != page size %d", len(buf), p.pageSize)
	}
	off := int64(id) * int64(p.pageSize)
	if n, err := p.f.WriteAt(buf, off); err != nil {
		// A short write tears the page; the ID and offset say exactly
		// which one, which recovery diagnostics depend on.
		return fmt.Errorf("storage: write page %d at offset %d: wrote %d of %d bytes: %w",
			id, off, n, p.pageSize, err)
	}
	p.stats.Writes++
	return nil
}

// Sync implements Pager.
func (p *FilePager) Sync() error { return p.f.Sync() }

// Close implements Pager.
func (p *FilePager) Close() error { return p.f.Close() }

// Stats implements Pager.
func (p *FilePager) Stats() IOStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}
