package storage

import (
	"math/rand"
	"sync"
	"testing"
)

// stressPager returns a MemPager pre-filled with numPages pages whose every
// byte equals the page id, so readers can verify frame contents.
func stressPager(t testing.TB, pageSize, numPages int) Pager {
	t.Helper()
	p := NewMemPager(pageSize)
	buf := make([]byte, pageSize)
	for i := 0; i < numPages; i++ {
		id, err := p.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		for j := range buf {
			buf[j] = byte(id)
		}
		if err := p.WritePage(id, buf); err != nil {
			t.Fatal(err)
		}
	}
	return p
}

// Concurrent Get/Unpin over a pool much smaller than the page set: frames
// evict constantly, yet every reader must observe the right page bytes and
// the stats invariant Gets == Hits + Misses must hold exactly.
func TestBufferPoolConcurrentStress(t *testing.T) {
	const (
		pageSize   = 128
		numPages   = 64
		capacity   = 8 // forces evictions
		goroutines = 16
		getsEach   = 500
	)
	bp := NewBufferPool(stressPager(t, pageSize, numPages), capacity)

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < getsEach; i++ {
				id := PageID(rng.Intn(numPages))
				f, err := bp.Get(id)
				if err != nil {
					t.Errorf("Get(%d): %v", id, err)
					return
				}
				// Spot-check the frame under pin: eviction must never
				// recycle a pinned frame's bytes.
				for _, j := range []int{0, pageSize / 2, pageSize - 1} {
					if f.Data[j] != byte(id) {
						t.Errorf("page %d byte %d = %d, want %d", id, j, f.Data[j], id)
						return
					}
				}
				if err := bp.Unpin(id, false); err != nil {
					t.Errorf("Unpin(%d): %v", id, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	st := bp.Stats()
	if st.Gets != goroutines*getsEach {
		t.Errorf("Gets = %d, want %d", st.Gets, goroutines*getsEach)
	}
	if st.Gets != st.Hits+st.Misses {
		t.Errorf("Gets (%d) != Hits (%d) + Misses (%d)", st.Gets, st.Hits, st.Misses)
	}
	if st.Misses < int64(capacity) {
		t.Errorf("Misses = %d, expected at least the pool capacity %d", st.Misses, capacity)
	}
	if st.Evictions == 0 {
		t.Error("no evictions despite capacity < working set")
	}
	if got := bp.Buffered(); got > capacity {
		t.Errorf("Buffered() = %d > capacity %d", got, capacity)
	}
}

// Many goroutines hammering the same single page: the first Get is the only
// miss; every other Get — including those that arrive while the page is
// still loading — must count as a hit.
func TestBufferPoolConcurrentSamePage(t *testing.T) {
	bp := NewBufferPool(stressPager(t, 64, 1), 4)
	const goroutines = 32
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				f, err := bp.Get(0)
				if err != nil {
					t.Error(err)
					return
				}
				if f.Data[0] != 0 {
					t.Errorf("byte = %d", f.Data[0])
					return
				}
				if err := bp.Unpin(0, false); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	st := bp.Stats()
	if st.Misses != 1 {
		t.Errorf("Misses = %d, want 1", st.Misses)
	}
	if st.Gets != st.Hits+st.Misses {
		t.Errorf("Gets (%d) != Hits (%d) + Misses (%d)", st.Gets, st.Hits, st.Misses)
	}
}

// BenchmarkBufferPoolGetHitParallel measures the hit path of Get/Unpin on
// an already-resident page under goroutine contention — the case the
// reduced lock hold time targets (the serial twin lives in storage_test.go).
func BenchmarkBufferPoolGetHitParallel(b *testing.B) {
	bp := NewBufferPool(stressPager(b, DefaultPageSize, 4), 16)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := bp.Get(0); err != nil {
				b.Fatal(err)
			}
			if err := bp.Unpin(0, false); err != nil {
				b.Fatal(err)
			}
		}
	})
}
