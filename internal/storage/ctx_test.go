package storage

import (
	"context"
	"errors"
	"testing"
)

// GetCtx must refuse a cancelled context before pinning anything, so a
// cancelled query can never leak a pinned frame.
func TestGetCtxCancelled(t *testing.T) {
	p := NewMemPager(64)
	bp := NewBufferPool(p, 4)
	f, err := bp.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	id := f.ID()
	if err := bp.Unpin(id, false); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := bp.GetCtx(ctx, id); !errors.Is(err, context.Canceled) {
		t.Fatalf("GetCtx on cancelled ctx = %v, want context.Canceled", err)
	}
	if got := bp.Pinned(); got != 0 {
		t.Fatalf("Pinned = %d after refused GetCtx, want 0", got)
	}

	// A live context behaves exactly like Get.
	fr, err := bp.GetCtx(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if fr.ID() != id {
		t.Fatalf("GetCtx returned frame %v, want %v", fr.ID(), id)
	}
	if got := bp.Pinned(); got != 1 {
		t.Fatalf("Pinned = %d with one frame held, want 1", got)
	}
	if err := bp.Unpin(id, false); err != nil {
		t.Fatal(err)
	}
	if got := bp.Pinned(); got != 0 {
		t.Fatalf("Pinned = %d after Unpin, want 0", got)
	}
}
