package storage

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
)

// groupFixture builds K sealed single-page batches under a flush hold: page
// i holds 'A'+i after batch i commits, 'a'+i before the run (page images
// are staged by a pre-batch pass so every batch overwrites existing data).
// The WAL sits on fault-wrapped handles so crash points can be enumerated.
func groupFixture(t *testing.T, k int) (*WALPager, *MemPager, *MemFile, *FaultFile, *FaultPager, []*CommitWaiter) {
	t.Helper()
	mem := NewMemPager(128)
	log := NewMemFile()
	fp := NewFaultPager(mem)
	ff := NewFaultFile(log)
	w, _, err := OpenWALPager(fp, ff, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < k; i++ {
		id, _ := w.Allocate()
		if err := w.WritePage(id, pageBytes(128, byte('a'+i))); err != nil {
			t.Fatal(err)
		}
	}
	w.HoldFlushes()
	waiters := make([]*CommitWaiter, k)
	for i := 0; i < k; i++ {
		if err := w.Begin(); err != nil {
			t.Fatal(err)
		}
		if err := w.WritePage(PageID(i), pageBytes(128, byte('A'+i))); err != nil {
			t.Fatal(err)
		}
		cw, err := w.CommitAsync(nil)
		if err != nil {
			t.Fatal(err)
		}
		waiters[i] = cw
	}
	return w, mem, log, ff, fp, waiters
}

// TestGroupCommitCoalesces checks the core bargain: K batches sealed while
// flushing is held share one flush — 2 log syncs + 1 data sync total — and
// every waiter resolves durable.
func TestGroupCommitCoalesces(t *testing.T) {
	const k = 4
	w, mem, log, ff, fp, waiters := groupFixture(t, k)
	if got := w.PendingBatches(); got != k {
		t.Fatalf("PendingBatches = %d, want %d", got, k)
	}
	for _, cw := range waiters {
		if cw.b.resolved() {
			t.Fatal("waiter resolved before flush")
		}
	}
	// Sealed-but-unflushed pages must already be visible through the pager
	// while the data pager still holds the pre-state.
	for i := 0; i < k; i++ {
		if got := readPageOrFatal(t, w, PageID(i))[0]; got != byte('A'+i) {
			t.Fatalf("overlay read page %d = %c, want %c", i, got, 'A'+i)
		}
		var buf [128]byte
		if err := mem.ReadPage(PageID(i), buf[:]); err != nil {
			t.Fatal(err)
		}
		if buf[0] != byte('a'+i) {
			t.Fatalf("data pager page %d mutated before flush: %c", i, buf[0])
		}
	}
	ff.Arm(Fault{}) // reset counters, no fault
	fp.Arm(Fault{})
	if err := w.ReleaseFlushes(); err != nil {
		t.Fatal(err)
	}
	for i, cw := range waiters {
		if err := cw.Wait(); err != nil {
			t.Fatalf("waiter %d: %v", i, err)
		}
	}
	if got := w.PendingBatches(); got != 0 {
		t.Fatalf("PendingBatches after flush = %d", got)
	}
	// One group flush: log sync (commits) + checkpoint sync; one data sync.
	if _, syncs, _ := ff.Counts(); syncs != 2 {
		t.Fatalf("log syncs = %d, want 2 for the whole group", syncs)
	}
	if _, syncs, _ := fp.Counts(); syncs != 1 {
		t.Fatalf("data syncs = %d, want 1 for the whole group", syncs)
	}
	for i := 0; i < k; i++ {
		var buf [128]byte
		if err := mem.ReadPage(PageID(i), buf[:]); err != nil {
			t.Fatal(err)
		}
		if buf[0] != byte('A'+i) {
			t.Fatalf("page %d not applied: %c", i, buf[0])
		}
	}
	if sz, _ := log.Size(); sz != walHeaderSize {
		t.Fatalf("log not truncated after group flush: %d", sz)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestGroupCommitPrefixRecovery enumerates every crash point inside a
// 3-batch group flush — each log append (clean and torn), each log sync,
// each data write, the data sync — and checks the reopened store holds an
// exact prefix of the group: batches 0..j-1 applied, j..2 rolled back, for
// some j. Interior tearing (batch 1 applied without batch 0) must never
// happen.
func TestGroupCommitPrefixRecovery(t *testing.T) {
	const k = 3
	// Clean pass to count the flush's operations.
	w, _, _, ff, fp, _ := groupFixture(t, k)
	ff.Arm(Fault{})
	fp.Arm(Fault{})
	if err := w.ReleaseFlushes(); err != nil {
		t.Fatal(err)
	}
	logAppends, logSyncs, _ := ff.Counts()
	dataWrites, dataSyncs, _ := fp.Counts()
	w.Close()
	// 3 × (begin, page, commit) + checkpoint; commits sync + checkpoint
	// sync; merged apply of 3 pages + one data sync.
	if logAppends != 10 || logSyncs != 2 || dataWrites != 3 || dataSyncs != 1 {
		t.Fatalf("unexpected clean op counts: appends=%d logSyncs=%d writes=%d dataSyncs=%d",
			logAppends, logSyncs, dataWrites, dataSyncs)
	}

	type crash struct {
		name  string
		logF  Fault
		dataF Fault
		// wantPrefix < 0 means "any prefix is legal" (fault after the
		// group's commit records are durable ⇒ recovery redoes all).
		wantPrefix int
		// durable: the fault strikes after the first log sync, so the
		// waiters resolved nil before it — the failure only reaches the
		// flush return (and latches the pager broken).
		durable bool
	}
	var crashes []crash
	for n := 1; n <= logAppends; n++ {
		// Append i belongs to batch (i-1)/3 while i <= 9; append 10 is the
		// checkpoint, after which all three batches are already durable.
		want := (n - 1) / 3
		if n > 9 {
			want = k
		}
		crashes = append(crashes,
			crash{fmt.Sprintf("log-append-%d", n), Fault{Op: FaultWrite, N: n}, Fault{}, want, n > 9},
			crash{fmt.Sprintf("log-append-%d-torn", n), Fault{Op: FaultWrite, N: n, Torn: true}, Fault{}, want, n > 9},
		)
	}
	// Log sync #1 fails after all commit records were appended: the
	// in-memory file retains them, so recovery redoes the whole group.
	crashes = append(crashes,
		crash{"log-sync-1", Fault{Op: FaultSync, N: 1}, Fault{}, k, false},
		crash{"log-sync-2", Fault{Op: FaultSync, N: 2}, Fault{}, k, true},
	)
	for n := 1; n <= dataWrites; n++ {
		crashes = append(crashes,
			crash{fmt.Sprintf("data-write-%d", n), Fault{}, Fault{Op: FaultWrite, N: n}, k, true},
			crash{fmt.Sprintf("data-write-%d-torn", n), Fault{}, Fault{Op: FaultWrite, N: n, Torn: true}, k, true},
		)
	}
	crashes = append(crashes, crash{"data-sync", Fault{}, Fault{Op: FaultSync, N: 1}, k, true})

	for _, c := range crashes {
		t.Run(c.name, func(t *testing.T) {
			w, mem, log, ff, fp, waiters := groupFixture(t, k)
			ff.Arm(c.logF)
			fp.Arm(c.dataF)
			err := w.ReleaseFlushes()
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("flush survived injected fault: %v", err)
			}
			for i, cw := range waiters {
				werr := cw.Wait()
				if c.durable && werr != nil {
					t.Fatalf("waiter %d resolved %v, want nil: the group was durable before the fault", i, werr)
				}
				if !c.durable && !errors.Is(werr, ErrInjected) {
					t.Fatalf("waiter %d resolved %v, want injected failure", i, werr)
				}
			}
			if w.Broken() == nil {
				t.Fatal("pager not broken after flush failure")
			}
			if !w.LastAbortDirty() {
				t.Fatal("failed group flush must report dirty")
			}
			// Further commits must be refused until reopen.
			w.Begin()
			if cerr := w.Commit(nil); cerr == nil || errors.Is(cerr, ErrBatchAborted) {
				t.Fatalf("commit on broken pager: %v", cerr)
			}
			// "Reboot": reopen the surviving disk state with fresh handles.
			logBytes := append([]byte(nil), log.Bytes()...)
			log2 := NewMemFile()
			log2.SetBytes(logBytes)
			w2, _, err := OpenWALPager(mem, log2, nil)
			if err != nil {
				t.Fatalf("recovery: %v", err)
			}
			prefix := -1
			for j := 0; j <= k; j++ {
				match := true
				for i := 0; i < k; i++ {
					want := byte('a' + i)
					if i < j {
						want = byte('A' + i)
					}
					if readPageOrFatal(t, w2, PageID(i))[0] != want {
						match = false
						break
					}
				}
				if match {
					prefix = j
					break
				}
			}
			if prefix < 0 {
				var state []byte
				for i := 0; i < k; i++ {
					state = append(state, readPageOrFatal(t, w2, PageID(i))[0])
				}
				t.Fatalf("recovered state %q is not a prefix of the group", state)
			}
			if c.wantPrefix >= 0 && prefix != c.wantPrefix {
				t.Fatalf("recovered prefix %d, want %d", prefix, c.wantPrefix)
			}
			w2.Close()
		})
	}
}

// TestGroupCommitConcurrentCommitters drives mixed-mode committers from
// many goroutines (batch building serialized, as the TxnPager contract
// requires) and checks every page lands and fsyncs were shared.
func TestGroupCommitConcurrentCommitters(t *testing.T) {
	const committers = 8
	const perCommitter = 16
	mem := NewMemPager(128)
	log := NewMemFile()
	ff := NewFaultFile(log)
	w, _, err := OpenWALPager(mem, ff, nil)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]PageID, committers)
	for i := range ids {
		ids[i], _ = w.Allocate()
	}
	var batchMu sync.Mutex // single-owner batch building
	var wg sync.WaitGroup
	errs := make(chan error, committers*perCommitter)
	for g := 0; g < committers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for n := 0; n < perCommitter; n++ {
				batchMu.Lock()
				w.Begin()
				err := w.WritePage(ids[g], pageBytes(128, byte('0'+n%10)))
				var cw *CommitWaiter
				if err == nil {
					switch n % 3 {
					case 0:
						err = w.Commit(nil)
					case 1:
						err = w.CommitGrouped(nil)
					default:
						cw, err = w.CommitAsync(nil)
					}
				}
				batchMu.Unlock()
				if err == nil && cw != nil {
					err = cw.Wait()
				}
				if err != nil {
					errs <- fmt.Errorf("committer %d op %d: %w", g, n, err)
					return
				}
				// Concurrent readers must always see a full page image.
				var buf [128]byte
				if rerr := w.ReadPage(ids[g%committers], buf[:]); rerr != nil {
					errs <- rerr
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := w.FlushBarrier(); err != nil {
		t.Fatal(err)
	}
	want := pageBytes(128, byte('0'+(perCommitter-1)%10))
	for g := 0; g < committers; g++ {
		var buf [128]byte
		if err := mem.ReadPage(ids[g], buf[:]); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf[:], want) {
			t.Fatalf("page %d final image %c, want %c", ids[g], buf[0], want[0])
		}
	}
	// Total log syncs must not exceed the serial cost (2 per commit); with
	// any coalescing at all it is strictly below.
	if _, syncs, _ := ff.Counts(); syncs > 2*committers*perCommitter {
		t.Fatalf("log syncs = %d, exceeds serial cost", syncs)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestGroupCommitDirectAccessDrainsQueue checks that pass-through writes,
// allocations and Sync outside a batch flush queued batches first, so the
// queue overlay can never shadow (or be shadowed by) direct page access.
func TestGroupCommitDirectAccessDrainsQueue(t *testing.T) {
	w, mem, _, _, _, waiters := groupFixture(t, 2)
	if err := w.WritePage(0, pageBytes(128, 'Z')); err != nil {
		t.Fatal(err)
	}
	if got := w.PendingBatches(); got != 0 {
		t.Fatalf("direct write left %d batches queued", got)
	}
	for i, cw := range waiters {
		if err := cw.Wait(); err != nil {
			t.Fatalf("waiter %d: %v", i, err)
		}
	}
	var buf [128]byte
	if err := mem.ReadPage(0, buf[:]); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 'Z' {
		t.Fatalf("direct write lost: %c", buf[0])
	}
	if got := readPageOrFatal(t, w, 1)[0]; got != 'B' {
		t.Fatalf("queued batch lost by drain: %c", got)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestGroupCommitNumPagesIncludesQueue checks allocations of sealed
// batches stay visible to NumPages and later batches before the flush.
func TestGroupCommitNumPagesIncludesQueue(t *testing.T) {
	mem := NewMemPager(128)
	w, _, err := OpenWALPager(mem, NewMemFile(), nil)
	if err != nil {
		t.Fatal(err)
	}
	w.HoldFlushes()
	w.Begin()
	a, _ := w.Allocate()
	w.WritePage(a, pageBytes(128, 'q'))
	cw, err := w.CommitAsync(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := w.NumPages(); got != 1 {
		t.Fatalf("NumPages = %d, want 1 (queued allocation)", got)
	}
	if mem.NumPages() != 0 {
		t.Fatalf("data pager allocated before flush")
	}
	// A new batch builds on top of the queued allocation.
	w.Begin()
	b, _ := w.Allocate()
	if b != 1 {
		t.Fatalf("allocation after queued batch = %d, want 1", b)
	}
	w.WritePage(b, pageBytes(128, 'r'))
	cw2, err := w.CommitAsync(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.ReleaseFlushes(); err != nil {
		t.Fatal(err)
	}
	if err := cw.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := cw2.Wait(); err != nil {
		t.Fatal(err)
	}
	if mem.NumPages() != 2 {
		t.Fatalf("data pager has %d pages, want 2", mem.NumPages())
	}
	if got := readPageOrFatal(t, w, 1)[0]; got != 'r' {
		t.Fatalf("stacked allocation lost: %c", got)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}
