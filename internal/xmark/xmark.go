// Package xmark generates deterministic, XMark-like synthetic auction
// documents. The real XMark generator (xml-benchmark.org) is external C
// software; this generator emits the subset of the XMark schema exercised
// by the paper's six benchmark queries (Table 1) with configurable size:
//
//	site
//	├── regions/{africa,asia,australia,europe,namerica,samerica}/item*
//	│     item: location, quantity, name, payment, description, mailbox
//	├── categories/category*: name, description
//	│     description: text | parlist; parlist: listitem*: text | parlist
//	├── people/person*: name, emailaddress, ...
//	├── open_auctions/open_auction*: initial, bidder*, annotation
//	└── closed_auctions/closed_auction*: price, date, annotation
//
// Recursive parlists give //parlist//parlist (Q4) matches at varying
// depths; listitem text carries keyword/bold/emph phrases for Q5 and Q2;
// item descriptions carry emph for Q6.
package xmark

import (
	"fmt"
	"math/rand"

	"dolxml/internal/xmltree"
)

// Config controls generation.
type Config struct {
	// Seed makes generation deterministic.
	Seed int64
	// Items is the number of items per region (6 regions).
	Items int
	// Categories is the number of categories.
	Categories int
	// People is the number of person records.
	People int
	// OpenAuctions and ClosedAuctions size the auction sections.
	OpenAuctions   int
	ClosedAuctions int
	// MaxParlistDepth bounds parlist recursion (≥ 1; default 3).
	MaxParlistDepth int
}

// Scaled returns a configuration whose generated document has roughly
// targetNodes nodes, using the section proportions of XMark.
func Scaled(seed int64, targetNodes int) Config {
	// Empirically ~42 nodes per item "unit" across sections at these
	// ratios (one unit = 1 item + 0.4 categories + 1 person + 0.5 open +
	// 0.5 closed auctions).
	units := targetNodes / 42
	if units < 1 {
		units = 1
	}
	return Config{
		Seed:            seed,
		Items:           (units + 5) / 6,
		Categories:      units*2/5 + 1,
		People:          units,
		OpenAuctions:    units/2 + 1,
		ClosedAuctions:  units/2 + 1,
		MaxParlistDepth: 3,
	}
}

var regions = []string{"africa", "asia", "australia", "europe", "namerica", "samerica"}

var words = []string{
	"gold", "silver", "amber", "carved", "mask", "drum", "cloth", "silk",
	"jade", "ivory", "brass", "antique", "rare", "vintage", "classic",
}

// Generate builds the document.
func Generate(cfg Config) *xmltree.Document {
	if cfg.MaxParlistDepth < 1 {
		cfg.MaxParlistDepth = 3
	}
	g := &gen{rng: rand.New(rand.NewSource(cfg.Seed)), cfg: cfg, b: xmltree.NewBuilder()}
	g.b.Begin("site")
	g.regions()
	g.categories()
	g.people()
	g.openAuctions()
	g.closedAuctions()
	g.b.End()
	return g.b.MustFinish()
}

type gen struct {
	rng *rand.Rand
	cfg Config
	b   *xmltree.Builder
	seq int
}

func (g *gen) word() string { return words[g.rng.Intn(len(words))] }

func (g *gen) phrase(n int) string {
	s := g.word()
	for i := 1; i < n; i++ {
		s += " " + g.word()
	}
	return s
}

func (g *gen) regions() {
	g.b.Begin("regions")
	for _, r := range regions {
		g.b.Begin(r)
		for i := 0; i < g.cfg.Items; i++ {
			g.item(r)
		}
		g.b.End()
	}
	g.b.End()
}

func (g *gen) item(region string) {
	g.seq++
	g.b.Begin("item")
	g.b.Attr("id", fmt.Sprintf("item%d", g.seq))
	g.b.Element("location", region)
	// ~80% of items have a quantity, exercising Q1's triple predicate.
	if g.rng.Intn(5) > 0 {
		g.b.Element("quantity", fmt.Sprintf("%d", 1+g.rng.Intn(5)))
	}
	g.b.Element("name", g.phrase(2))
	if g.rng.Intn(2) == 0 {
		g.b.Begin("payment")
		g.b.Text("Cash")
		g.b.End()
	}
	g.b.Begin("description")
	g.text(true)
	g.b.End()
	if g.rng.Intn(3) == 0 {
		g.b.Begin("mailbox")
		g.b.Begin("mail")
		g.b.Element("from", g.word())
		g.b.Element("to", g.word())
		g.b.End()
		g.b.End()
	}
	g.b.End()
}

// text emits a text element that may contain bold/keyword/emph children.
func (g *gen) text(allowEmph bool) {
	g.b.Begin("text")
	g.b.Text(g.phrase(3))
	if g.rng.Intn(2) == 0 {
		g.b.Element("bold", g.word())
	}
	if g.rng.Intn(3) == 0 {
		g.b.Element("keyword", g.word())
	}
	if allowEmph && g.rng.Intn(3) == 0 {
		g.b.Element("emph", g.word())
	}
	g.b.End()
}

func (g *gen) parlist(depth int) {
	g.b.Begin("parlist")
	n := 1 + g.rng.Intn(3)
	for i := 0; i < n; i++ {
		g.b.Begin("listitem")
		if depth < g.cfg.MaxParlistDepth && g.rng.Intn(3) == 0 {
			g.parlist(depth + 1)
		} else {
			g.text(false)
		}
		g.b.End()
	}
	g.b.End()
}

func (g *gen) categories() {
	g.b.Begin("categories")
	for i := 0; i < g.cfg.Categories; i++ {
		g.b.Begin("category")
		g.b.Attr("id", fmt.Sprintf("category%d", i))
		g.b.Element("name", g.phrase(1))
		g.b.Begin("description")
		if g.rng.Intn(3) == 0 {
			g.parlist(1)
		} else {
			g.text(true)
		}
		g.b.End()
		g.b.End()
	}
	g.b.End()
}

func (g *gen) people() {
	g.b.Begin("people")
	for i := 0; i < g.cfg.People; i++ {
		g.b.Begin("person")
		g.b.Attr("id", fmt.Sprintf("person%d", i))
		g.b.Element("name", g.phrase(2))
		g.b.Element("emailaddress", fmt.Sprintf("mailto:%s%d@example.com", g.word(), i))
		if g.rng.Intn(2) == 0 {
			g.b.Begin("address")
			g.b.Element("city", g.word())
			g.b.Element("country", g.word())
			g.b.End()
		}
		g.b.End()
	}
	g.b.End()
}

func (g *gen) annotation() {
	g.b.Begin("annotation")
	g.b.Begin("description")
	if g.rng.Intn(2) == 0 {
		g.parlist(1)
	} else {
		g.text(true)
	}
	g.b.End()
	g.b.End()
}

func (g *gen) openAuctions() {
	g.b.Begin("open_auctions")
	for i := 0; i < g.cfg.OpenAuctions; i++ {
		g.b.Begin("open_auction")
		g.b.Element("initial", fmt.Sprintf("%d.%02d", g.rng.Intn(200), g.rng.Intn(100)))
		for k := 0; k < g.rng.Intn(3); k++ {
			g.b.Begin("bidder")
			g.b.Element("increase", fmt.Sprintf("%d.00", 1+g.rng.Intn(20)))
			g.b.End()
		}
		g.annotation()
		g.b.End()
	}
	g.b.End()
}

func (g *gen) closedAuctions() {
	g.b.Begin("closed_auctions")
	for i := 0; i < g.cfg.ClosedAuctions; i++ {
		g.b.Begin("closed_auction")
		g.b.Element("price", fmt.Sprintf("%d.%02d", g.rng.Intn(500), g.rng.Intn(100)))
		g.b.Element("date", fmt.Sprintf("%02d/%02d/%d", 1+g.rng.Intn(12), 1+g.rng.Intn(28), 1998+g.rng.Intn(5)))
		g.annotation()
		g.b.End()
	}
	g.b.End()
}
