package xmark

import (
	"testing"

	"dolxml/internal/xmltree"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Scaled(42, 5000))
	b := Generate(Scaled(42, 5000))
	if a.Len() != b.Len() {
		t.Fatalf("non-deterministic size: %d vs %d", a.Len(), b.Len())
	}
	for n := 0; n < a.Len(); n++ {
		id := xmltree.NodeID(n)
		if a.Tag(id) != b.Tag(id) || a.Value(id) != b.Value(id) {
			t.Fatalf("non-deterministic node %d", n)
		}
	}
	c := Generate(Scaled(43, 5000))
	if c.Len() == a.Len() {
		same := true
		for n := 0; n < a.Len() && same; n++ {
			id := xmltree.NodeID(n)
			same = a.Tag(id) == c.Tag(id) && a.Value(id) == c.Value(id)
		}
		if same {
			t.Fatal("different seeds produced identical documents")
		}
	}
}

func TestScaledSize(t *testing.T) {
	for _, target := range []int{1000, 10000, 50000} {
		doc := Generate(Scaled(7, target))
		if doc.Len() < target/2 || doc.Len() > target*2 {
			t.Errorf("target %d: got %d nodes (want within 2x)", target, doc.Len())
		}
	}
}

func TestSchemaSupportsTable1Queries(t *testing.T) {
	doc := Generate(Scaled(11, 20000))
	h := doc.TagHistogram()
	// Every tag the six queries mention must occur.
	for _, tag := range []string{
		"site", "regions", "africa", "item", "location", "name", "quantity",
		"categories", "category", "description", "text", "bold",
		"parlist", "listitem", "keyword", "emph",
	} {
		if h[tag] == 0 {
			t.Errorf("tag %q missing from generated document", tag)
		}
	}
	if h["site"] != 1 {
		t.Errorf("site count = %d", h["site"])
	}
	// Q4 needs nested parlists.
	nested := 0
	for _, p := range doc.NodesWithTag("parlist") {
		for a := doc.Parent(p); a != xmltree.InvalidNode; a = doc.Parent(a) {
			if doc.Tag(a) == "parlist" {
				nested++
				break
			}
		}
	}
	if nested == 0 {
		t.Error("no nested parlists; Q4 would be empty")
	}
	// Q6 needs emph under items.
	itemEmph := 0
	for _, e := range doc.NodesWithTag("emph") {
		for a := doc.Parent(e); a != xmltree.InvalidNode; a = doc.Parent(a) {
			if doc.Tag(a) == "item" {
				itemEmph++
				break
			}
		}
	}
	if itemEmph == 0 {
		t.Error("no emph under items; Q6 would be empty")
	}
}

func TestQ1HasMatchesAndNonMatches(t *testing.T) {
	doc := Generate(Scaled(3, 20000))
	withAll, without := 0, 0
	for _, item := range doc.NodesWithTag("item") {
		has := map[string]bool{}
		for c := doc.FirstChild(item); c != xmltree.InvalidNode; c = doc.NextSibling(c) {
			has[doc.Tag(c)] = true
		}
		if has["location"] && has["name"] && has["quantity"] {
			withAll++
		} else {
			without++
		}
	}
	if withAll == 0 || without == 0 {
		t.Fatalf("Q1 selectivity degenerate: %d with, %d without", withAll, without)
	}
}

func TestParlistDepthBounded(t *testing.T) {
	cfg := Scaled(5, 10000)
	cfg.MaxParlistDepth = 2
	doc := Generate(cfg)
	for _, p := range doc.NodesWithTag("parlist") {
		depth := 1
		for a := doc.Parent(p); a != xmltree.InvalidNode; a = doc.Parent(a) {
			if doc.Tag(a) == "parlist" {
				depth++
			}
		}
		if depth > 2 {
			t.Fatalf("parlist nesting %d exceeds configured max 2", depth)
		}
	}
}

func BenchmarkGenerate(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Generate(Scaled(int64(i), 50000))
	}
}
