package synthacl

import (
	"math"
	"math/rand"
	"sort"
	"time"

	"dolxml/internal/bitset"
	"dolxml/internal/dol"
)

// StreamConfig parameterizes the streamed subject-scaling generator, the
// workload behind the codebook-sublinearity experiment. LiveLink and UnixFS
// materialize a nodes×subjects matrix, which caps them at hundreds of
// subjects; this generator streams subjects in ID order and touches only a
// run-length codebook plus a fixed folder partition, so it reaches 10⁶
// subjects in memory proportional to the *rule* vocabulary, not the
// population.
//
// The model keeps the property the paper's claim rests on: rights are
// group-correlated. Subjects join groups of GroupSize consecutive IDs; each
// group owns FoldersPerGroup contiguous document-order folders inside its
// region of the node space and every member is granted the group's folders.
// Personal deviations happen at a fixed per-subject rate — a member skips
// one of its group's folders (a revocation hole) or is granted one foreign
// group's folder — so the distinct-ACL vocabulary stays bounded by the
// folder partition while row *width* (runs per codebook entry) grows with
// the deviating population, which is exactly what sparse rows must absorb.
type StreamConfig struct {
	Seed int64
	// Subjects is the population size (users, streamed in ID order).
	Subjects int
	// Nodes is the document-order node count the folders partition.
	Nodes int
	// GroupSize is the number of consecutive subject IDs per group;
	// 0 means ceil(sqrt(Subjects)), giving ~sqrt(Subjects) groups — the
	// administrative-rule growth real directories exhibit.
	GroupSize int
	// FoldersPerGroup is the number of folders in each group's region.
	FoldersPerGroup int
	// DeviationRate is the per-subject probability of one personal
	// deviation (half skip-a-folder, half foreign-folder grant).
	DeviationRate float64
}

// DefaultStream returns the sweep configuration for the given population.
func DefaultStream(seed int64, subjects int) StreamConfig {
	return StreamConfig{
		Seed:            seed,
		Subjects:        subjects,
		Nodes:           100000,
		FoldersPerGroup: 4,
		DeviationRate:   0.05,
	}
}

func (cfg StreamConfig) normalized() StreamConfig {
	if cfg.Subjects < 1 {
		cfg.Subjects = 1
	}
	if cfg.GroupSize < 1 {
		cfg.GroupSize = int(math.Ceil(math.Sqrt(float64(cfg.Subjects))))
	}
	if cfg.FoldersPerGroup < 1 {
		cfg.FoldersPerGroup = 1
	}
	groups := (cfg.Subjects + cfg.GroupSize - 1) / cfg.GroupSize
	if min := groups * cfg.FoldersPerGroup; cfg.Nodes < min {
		cfg.Nodes = min // at least one node per folder
	}
	return cfg
}

// Groups returns the number of groups cfg produces.
func (cfg StreamConfig) Groups() int {
	cfg = cfg.normalized()
	return (cfg.Subjects + cfg.GroupSize - 1) / cfg.GroupSize
}

// Folder is one contiguous document-order range owned by a group. Folders
// partition [0, Nodes): folder k of group g spans its slice of the group's
// region.
type Folder struct {
	Lo, Hi int // half-open node range [Lo, Hi)
	Group  int
}

// Folders returns the deterministic folder partition for cfg.
func (cfg StreamConfig) Folders() []Folder {
	cfg = cfg.normalized()
	groups := cfg.Groups()
	total := groups * cfg.FoldersPerGroup
	folders := make([]Folder, 0, total)
	for i := 0; i < total; i++ {
		lo := cfg.Nodes * i / total
		hi := cfg.Nodes * (i + 1) / total
		folders = append(folders, Folder{Lo: lo, Hi: hi, Group: i / cfg.FoldersPerGroup})
	}
	return folders
}

// StreamGrants streams the workload's grant events — (node range, subject)
// pairs — in subject-ID order, calling grant for each. The sequence is a
// pure function of cfg, so the sparse builder and a dense oracle replaying
// the same events see identical workloads.
func StreamGrants(cfg StreamConfig, grant func(lo, hi, subject int)) {
	cfg = cfg.normalized()
	rng := rand.New(rand.NewSource(cfg.Seed))
	folders := cfg.Folders()
	groups := cfg.Groups()
	for u := 0; u < cfg.Subjects; u++ {
		g := u / cfg.GroupSize
		skip := -1
		foreign := -1
		if rng.Float64() < cfg.DeviationRate {
			if rng.Intn(2) == 0 {
				skip = rng.Intn(cfg.FoldersPerGroup)
			} else if groups > 1 {
				og := rng.Intn(groups - 1)
				if og >= g {
					og++
				}
				foreign = og*cfg.FoldersPerGroup + rng.Intn(cfg.FoldersPerGroup)
			}
		}
		base := g * cfg.FoldersPerGroup
		for k := 0; k < cfg.FoldersPerGroup; k++ {
			if k == skip {
				continue
			}
			f := folders[base+k]
			grant(f.Lo, f.Hi, u)
		}
		if foreign >= 0 {
			f := folders[foreign]
			grant(f.Lo, f.Hi, u)
		}
	}
}

// StreamStats summarizes one streamed build — the measurements the
// codebook-growth experiment reports per population point.
type StreamStats struct {
	Subjects    int
	Groups      int
	Folders     int   // distinct document-order intervals carrying an ACL
	Entries     int   // live codebook entries (the paper's Figure 5 metric)
	LiveRuns    int64 // total runs across live entries
	MaxRuns     int   // widest row (runs) ever interned
	SparseBytes int64 // run-encoded size of the live dictionary
	DenseBytes  int64 // the same dictionary as dense bit-vector rows
	BuildTime   time.Duration
}

// StreamResult is a streamed build: the sparse codebook, the final code of
// every folder, and the summary statistics.
type StreamResult struct {
	Codebook *dol.RunCodebook
	Folders  []Folder
	Codes    []dol.Code // final code per folder
	Stats    StreamStats
}

// StreamCodebook runs the generator, interning every folder's evolving ACL
// into a RunCodebook. Memory stays proportional to the folder partition:
// the nodes×subjects matrix is never materialized.
func StreamCodebook(cfg StreamConfig) *StreamResult {
	cfg = cfg.normalized()
	start := time.Now()
	cb := dol.NewRunCodebook(cfg.Subjects)
	folders := cfg.Folders()
	empty := cb.Intern(nil)
	codes := make([]dol.Code, len(folders))
	for i := range codes {
		codes[i] = empty
		cb.Retain(empty)
	}
	starts := make([]int, len(folders))
	for i, f := range folders {
		starts[i] = f.Lo
	}
	StreamGrants(cfg, func(lo, _, subject int) {
		i := sort.SearchInts(starts, lo)
		next := cb.WithBit(codes[i], subject)
		if next != codes[i] {
			cb.Retain(next)
			cb.Release(codes[i])
			codes[i] = next
		}
	})
	return &StreamResult{
		Codebook: cb,
		Folders:  folders,
		Codes:    codes,
		Stats: StreamStats{
			Subjects:    cfg.Subjects,
			Groups:      cfg.Groups(),
			Folders:     len(folders),
			Entries:     cb.Len(),
			LiveRuns:    cb.LiveRuns(),
			MaxRuns:     cb.MaxRuns(),
			SparseBytes: cb.SparseBytes(),
			DenseBytes:  cb.DenseBytes(),
			BuildTime:   time.Since(start),
		},
	}
}

// StreamCodebookDense replays the same grant stream into a dense Codebook
// over materialized per-folder bitsets — the small-scale oracle that
// validates the sparse path. It costs folders×subjects bits of memory, so
// only use it at populations where that is affordable. It returns the
// codebook and the final code per folder.
func StreamCodebookDense(cfg StreamConfig) (*dol.Codebook, []dol.Code) {
	cfg = cfg.normalized()
	cb := dol.NewCodebook(cfg.Subjects)
	folders := cfg.Folders()
	acls := make([]*bitset.Bitset, len(folders))
	starts := make([]int, len(folders))
	for i, f := range folders {
		acls[i] = bitset.New(cfg.Subjects)
		starts[i] = f.Lo
	}
	codes := make([]dol.Code, len(folders))
	for i := range codes {
		codes[i] = cb.Intern(acls[i])
		cb.Retain(codes[i])
	}
	StreamGrants(cfg, func(lo, _, subject int) {
		i := sort.SearchInts(starts, lo)
		acls[i].Set(subject)
		next := cb.Intern(acls[i])
		if next != codes[i] {
			cb.Retain(next)
			cb.Release(codes[i])
			codes[i] = next
		}
	})
	return cb, codes
}
