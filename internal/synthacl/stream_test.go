package synthacl

import (
	"reflect"
	"testing"
)

// TestStreamSparseMatchesDenseOracle replays one grant stream into both the
// run-length codebook and a dense materialized codebook and requires the
// same dictionary: equal entry counts and, folder by folder, equal ACLs.
func TestStreamSparseMatchesDenseOracle(t *testing.T) {
	cfg := DefaultStream(42, 3000)
	cfg.Nodes = 5000
	res := StreamCodebook(cfg)
	dense, denseCodes := StreamCodebookDense(cfg)
	if res.Codebook.Len() != dense.Len() {
		t.Fatalf("sparse has %d entries, dense oracle %d", res.Codebook.Len(), dense.Len())
	}
	if len(res.Codes) != len(denseCodes) {
		t.Fatalf("folder counts differ: %d vs %d", len(res.Codes), len(denseCodes))
	}
	for i := range res.Codes {
		sparse := res.Codebook.ACL(res.Codes[i])
		if !sparse.EqualBits(dense.ACL(denseCodes[i])) {
			t.Fatalf("folder %d: sparse and dense ACLs diverge", i)
		}
	}
	// Membership probes through the sparse path.
	for u := 0; u < cfg.Subjects; u += 97 {
		for i := 0; i < len(res.Codes); i += 13 {
			if res.Codebook.Accessible(res.Codes[i], u) != dense.ACL(denseCodes[i]).Test(u) {
				t.Fatalf("folder %d subject %d: Accessible disagrees with oracle", i, u)
			}
		}
	}
}

// TestStreamDeterministic pins that the generator is a pure function of its
// configuration — the multitenant and codebook gates depend on replays
// agreeing byte for byte.
func TestStreamDeterministic(t *testing.T) {
	cfg := DefaultStream(7, 2000)
	a := StreamCodebook(cfg)
	b := StreamCodebook(cfg)
	a.Stats.BuildTime, b.Stats.BuildTime = 0, 0
	if !reflect.DeepEqual(a.Stats, b.Stats) {
		t.Fatalf("stats diverged across replays: %+v vs %+v", a.Stats, b.Stats)
	}
	if !reflect.DeepEqual(a.Codes, b.Codes) {
		t.Fatal("folder codes diverged across replays")
	}
}

// TestStreamSublinearGrowth checks the shape the full sweep gates on: a 10×
// subject increase must grow codebook entries by well under 10×.
func TestStreamSublinearGrowth(t *testing.T) {
	sizes := []int{1000, 10000}
	if !testing.Short() {
		sizes = append(sizes, 100000)
	}
	prev := 0
	for i, n := range sizes {
		res := StreamCodebook(DefaultStream(1, n))
		st := res.Stats
		if st.Entries < st.Groups/2 {
			t.Fatalf("%d subjects: implausibly few entries (%d) for %d groups", n, st.Entries, st.Groups)
		}
		if i > 0 {
			factor := float64(st.Entries) / float64(prev)
			if factor > 5 {
				t.Fatalf("entries grew %.1f× on a 10× subject step (%d -> %d)", factor, prev, st.Entries)
			}
		}
		// Sparse rows must beat dense rows decisively once rows are wide.
		if n >= 10000 && st.SparseBytes*10 > st.DenseBytes {
			t.Fatalf("%d subjects: sparse %d B not under 10%% of dense %d B", n, st.SparseBytes, st.DenseBytes)
		}
		prev = st.Entries
	}
}
