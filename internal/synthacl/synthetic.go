// Package synthacl generates access-control workloads for the paper's
// experiments: the seed-based single-subject synthetic labeling of §5
// (propagation ratio, accessibility ratio, horizontal and vertical
// structural locality with Most-Specific-Override), plus multi-user
// simulators standing in for the paper's two proprietary datasets — the
// OpenText LiveLink production ACL dump and the University of Waterloo
// Unix file system — with the same structural statistics and, crucially,
// the same correlation-by-construction among subjects' rights that drives
// the paper's codebook compression results.
package synthacl

import (
	"math/rand"

	"dolxml/internal/bitset"
	"dolxml/internal/xmltree"
)

// SynthConfig parameterizes the §5 synthetic generator.
type SynthConfig struct {
	// Seed makes generation deterministic.
	Seed int64
	// PropagationRatio is the fraction of nodes chosen as seeds ("the
	// propagation ratio determines the percentage of nodes that are
	// seeds").
	PropagationRatio float64
	// AccessibilityRatio is the fraction of seeds labeled accessible.
	AccessibilityRatio float64
	// SiblingProb is the probability that a seed's non-seed direct
	// sibling receives the seed's label (horizontal locality). The
	// paper's generator always simulates horizontal locality; 0.5 is the
	// default when unset; a negative value disables it.
	SiblingProb float64
	// ForceRootAccessible pins the root seed to accessible. The query
	// experiments use it so that anchored queries are not trivially
	// emptied by an inaccessible document root.
	ForceRootAccessible bool
}

// Synthetic labels doc for a single subject following §5: random seeds
// (always including the root) labeled accessible with probability
// AccessibilityRatio, horizontal locality via sibling copying, and
// vertical locality via Most-Specific-Override propagation. Bit n of the
// result is node n's accessibility.
func Synthetic(doc *xmltree.Document, cfg SynthConfig) *bitset.Bitset {
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := doc.Len()
	sibProb := cfg.SiblingProb
	if sibProb == 0 {
		sibProb = 0.5
	}
	if sibProb < 0 {
		sibProb = 0
	}

	type label struct {
		set        bool
		accessible bool
		isSeed     bool
	}
	labels := make([]label, n)
	// Seeds: each node independently; the root always.
	for v := 0; v < n; v++ {
		if v == 0 || rng.Float64() < cfg.PropagationRatio {
			labels[v] = label{set: true, accessible: rng.Float64() < cfg.AccessibilityRatio, isSeed: true}
		}
	}
	if cfg.ForceRootAccessible {
		labels[0].accessible = true
	}
	// Horizontal locality: a seed's non-seed direct siblings may copy its
	// label.
	for v := 0; v < n; v++ {
		if !labels[v].isSeed {
			continue
		}
		p := doc.Parent(xmltree.NodeID(v))
		if p == xmltree.InvalidNode {
			continue
		}
		for c := doc.FirstChild(p); c != xmltree.InvalidNode; c = doc.NextSibling(c) {
			if int(c) == v || labels[c].isSeed {
				continue
			}
			if rng.Float64() < sibProb {
				labels[c].set = true
				labels[c].accessible = labels[v].accessible
			}
		}
	}
	// Vertical locality: Most-Specific-Override — inherit from the
	// closest labeled ancestor. Preorder pass: parent precedes child.
	acc := bitset.New(n)
	effective := make([]bool, n)
	for v := 0; v < n; v++ {
		var inherited bool
		if p := doc.Parent(xmltree.NodeID(v)); p != xmltree.InvalidNode {
			inherited = effective[p]
		}
		if labels[v].set {
			inherited = labels[v].accessible
		}
		effective[v] = inherited
		if inherited {
			acc.Set(v)
		}
	}
	return acc
}

// AccessibleFraction reports the fraction of set bits in acc over n nodes,
// a sanity metric for the generators.
func AccessibleFraction(acc *bitset.Bitset, n int) float64 {
	if n == 0 {
		return 0
	}
	return float64(acc.Count()) / float64(n)
}
