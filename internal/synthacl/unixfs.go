package synthacl

import (
	"fmt"
	"math/rand"

	"dolxml/internal/acl"
	"dolxml/internal/xmltree"
)

// UnixFSConfig parameterizes the Unix-filesystem-like simulator standing
// in for the University of Waterloo multiuser file system of the paper
// (182 users, 65 groups, over 1.3 million files and directories).
type UnixFSConfig struct {
	Seed int64
	// Files is the approximate number of files and directories.
	Files int
	// Users and Groups size the subject population.
	Users  int
	Groups int
}

// DefaultUnixFS returns a laptop-scale configuration with the real
// system's user/group proportions.
func DefaultUnixFS(seed int64) UnixFSConfig {
	return UnixFSConfig{Seed: seed, Files: 100000, Users: 182, Groups: 65}
}

// UnixMode identifies the three Unix permission action modes.
type UnixMode int

// The three Unix action modes.
const (
	UnixRead UnixMode = iota
	UnixWrite
	UnixExec
)

// UnixFSData is the simulator's output.
type UnixFSData struct {
	Doc *xmltree.Document
	Dir *acl.Directory
	// Matrices[UnixRead], [UnixWrite], [UnixExec] are the per-mode
	// accessibility matrices over all subjects (groups first, then
	// users), derived from per-file owner/group/mode bits exactly as the
	// kernel would: a user subject's bit is the owner bit where it owns
	// the file and the "other" bit elsewhere; a group subject's bit is
	// the group bit on its files and the "other" bit elsewhere.
	Matrices [3]*acl.Matrix
	Users    []acl.SubjectID
	Groups   []acl.SubjectID
}

// perm is a Unix permission triple for one class.
type perm struct{ r, w, x bool }

func bitsOf(octal int) perm {
	return perm{r: octal&4 != 0, w: octal&2 != 0, x: octal&1 != 0}
}

// UnixFS generates the simulated file system and its accessibility
// matrices.
func UnixFS(cfg UnixFSConfig) *UnixFSData {
	rng := rand.New(rand.NewSource(cfg.Seed))

	dir := acl.NewDirectory()
	groups := make([]acl.SubjectID, cfg.Groups)
	for g := range groups {
		groups[g] = dir.MustAddGroup(fmt.Sprintf("group%d", g))
	}
	users := make([]acl.SubjectID, cfg.Users)
	primary := make([]int, cfg.Users) // primary group index per user
	for u := range users {
		users[u] = dir.MustAddUser(fmt.Sprintf("user%d", u))
		primary[u] = rng.Intn(cfg.Groups)
		if err := dir.AddMember(groups[primary[u]], users[u]); err != nil {
			panic(err)
		}
	}

	// File metadata collected in document order during generation.
	type meta struct {
		owner      int // user index
		group      int // group index
		mode       [3]perm
		isDir      bool
		worldWrite bool
	}
	var metas []meta
	b := xmltree.NewBuilder()

	dirModes := []int{0o755, 0o750, 0o700, 0o775}
	fileModes := []int{0o644, 0o640, 0o600, 0o664, 0o444}
	exeModes := []int{0o755, 0o750, 0o700}

	addEntry := func(tag string, owner, group, octal int, isDir bool) {
		b.Begin(tag)
		metas = append(metas, meta{
			owner: owner,
			group: group,
			mode:  [3]perm{bitsOf(octal >> 6), bitsOf(octal >> 3 & 7), bitsOf(octal & 7)},
			isDir: isDir,
		})
		if !isDir {
			b.End()
		}
	}
	closeDir := func() { b.End() }

	// Root directory: owned by user 0 ("root"), world-readable.
	addEntry("fs", 0, 0, 0o755, true)

	// populate fills a directory with a subtree of roughly budget
	// entries, inheriting ownership with occasional noise.
	var populate func(owner, group, budget, depth int, restricted bool)
	populate = func(owner, group, budget, depth int, restricted bool) {
		for budget > 0 {
			if rng.Float64() < 0.25 && depth < 10 {
				// Subdirectory.
				sub := budget / (2 + rng.Intn(3))
				if sub < 1 {
					sub = 1
				}
				o, g := owner, group
				if rng.Float64() < 0.03 {
					o = rng.Intn(cfg.Users)
				}
				octal := dirModes[rng.Intn(len(dirModes))]
				if restricted {
					octal = []int{0o700, 0o750}[rng.Intn(2)]
				}
				addEntry("dir", o, g, octal, true)
				populate(o, g, sub-1, depth+1, restricted && rng.Float64() < 0.9)
				closeDir()
				budget -= sub
			} else {
				octal := fileModes[rng.Intn(len(fileModes))]
				if rng.Float64() < 0.1 {
					octal = exeModes[rng.Intn(len(exeModes))]
				}
				if restricted && octal&0o044 != 0 {
					octal &^= 0o044 // strip group/other read in private trees
				}
				addEntry("file", owner, group, octal, false)
				budget--
			}
		}
	}

	// Layout: /home/<user>, /proj/<group>, /usr (system).
	homeBudget := cfg.Files / 2
	projBudget := cfg.Files / 3
	sysBudget := cfg.Files - homeBudget - projBudget

	addEntry("home", 0, 0, 0o755, true)
	perUser := homeBudget / cfg.Users
	for u := 0; u < cfg.Users; u++ {
		private := rng.Float64() < 0.5
		octal := 0o755
		if private {
			octal = 0o700
		}
		addEntry("userdir", u, primary[u], octal, true)
		populate(u, primary[u], perUser, 3, private)
		closeDir()
	}
	closeDir()

	addEntry("proj", 0, 0, 0o755, true)
	perGroup := projBudget / cfg.Groups
	for g := 0; g < cfg.Groups; g++ {
		ownerIdx := rng.Intn(cfg.Users)
		addEntry("projdir", ownerIdx, g, []int{0o775, 0o750}[rng.Intn(2)], true)
		populate(ownerIdx, g, perGroup, 3, false)
		closeDir()
	}
	closeDir()

	addEntry("usr", 0, 0, 0o755, true)
	populate(0, 0, sysBudget, 2, false)
	closeDir()

	closeDir() // fs
	doc := b.MustFinish()
	if doc.Len() != len(metas) {
		panic(fmt.Sprintf("synthacl: %d nodes but %d metadata records", doc.Len(), len(metas)))
	}

	// Expand owner/group/other bits into per-subject matrices.
	numSubjects := dir.Len()
	var out UnixFSData
	out.Doc = doc
	out.Dir = dir
	out.Users = users
	out.Groups = groups
	for mode := 0; mode < 3; mode++ {
		m := acl.NewMatrix(doc.Len(), numSubjects)
		for n, mt := range metas {
			var bit func(p perm) bool
			switch UnixMode(mode) {
			case UnixRead:
				bit = func(p perm) bool { return p.r }
			case UnixWrite:
				bit = func(p perm) bool { return p.w }
			default:
				bit = func(p perm) bool { return p.x }
			}
			ownerBit := bit(mt.mode[0])
			groupBit := bit(mt.mode[1])
			otherBit := bit(mt.mode[2])
			node := xmltree.NodeID(n)
			for gi, g := range groups {
				if gi == mt.group {
					m.Set(node, g, groupBit)
				} else {
					m.Set(node, g, otherBit)
				}
			}
			for ui, u := range users {
				if ui == mt.owner {
					m.Set(node, u, ownerBit)
				} else {
					m.Set(node, u, otherBit)
				}
			}
		}
		out.Matrices[mode] = m
	}
	return &out
}
